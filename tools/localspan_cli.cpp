/// localspan command-line tool: generate, span, verify, route, trace, churn,
/// and query serving.
///
///   localspan_cli gen  --n 512 --alpha 0.75 --dim 2 --seed 7 --out net.lsi
///   localspan_cli span --in net.lsi --eps 0.5 --algo relaxed [--opt k=9 ...]
///                      [--strict] [--out-dot spanner.dot] [--out-csv spanner.csv]
///   localspan_cli span --algo list            # enumerate the registry
///   localspan_cli verify --in net.lsi --eps 0.5 [--algo NAME]
///   localspan_cli route --in net.lsi --eps 0.5 --trials 200 [--algo NAME]
///   localspan_cli trace --in net.lsi --model poisson --events 64 --out churn.json
///   localspan_cli dynamic --in net.lsi --churn churn.json --eps 0.5
///   localspan_cli dynamic --batch --threads 4 --trace out.json --obs-json stats.json
///   localspan_cli serve --readers 4 --queries 5000 --eps 0.5 --obs-json stats.json
///
/// Every construction goes through the api::AlgorithmRegistry — `--algo`
/// picks any registered algorithm, `--opt key=value` (repeatable) passes
/// algorithm options, and `--algo list` prints the full self-description.
/// Unknown flags and unknown algorithm options are usage errors.
/// Exit code 0 on success / verification pass, 1 otherwise.
///
/// Observability: `--obs-json FILE` (metrics snapshot) and `--trace FILE`
/// (Chrome trace events, loadable in chrome://tracing or Perfetto) on
/// span/verify/dynamic flip the obs layer on for the run. `dynamic` with no
/// `--in` generates a demo instance (and with no `--churn` a demo poisson
/// trace), so the observability pipeline can be exercised with no files.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/spanner_algorithm.hpp"
#include "core/verify.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/dynamic_spanner.hpp"
#include "graph/metrics.hpp"
#include "io/serialize.hpp"
#include "io/trace_io.hpp"
#include "obs/obs.hpp"
#include "route/routing.hpp"
#include "runtime/parallel.hpp"
#include "serve/query_engine.hpp"
#include "ubg/generator.hpp"

using namespace localspan;

namespace {

/// Tiny flag parser: --key value pairs, boolean --key switches, repeatable
/// flags. Every token must be a flag or a flag's value; each command then
/// declares its allowed flag set and anything else is a usage error
/// (mirroring the BuildRequest unknown-option rejection).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("stray argument '" + key + "' (flags start with --)");
      }
      key = key.substr(2);
      if (key.empty()) throw std::invalid_argument("empty flag '--'");
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        kv_[key].push_back(argv[++i]);
      } else {
        kv_[key].push_back("1");
      }
    }
  }

  /// Reject flags outside `allowed`. \throws std::invalid_argument naming
  /// the unknown flag and the command's flag set.
  void require_known(const std::string& cmd, const std::set<std::string>& allowed) const {
    for (const auto& [key, values] : kv_) {
      if (!allowed.contains(key)) {
        std::string known;
        for (const std::string& a : allowed) {
          if (!known.empty()) known += ", --";
          known += a;
        }
        throw std::invalid_argument(cmd + ": unknown flag --" + key + " (allowed: --" + known +
                                    ")");
      }
      static_cast<void>(values);
    }
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second.back();
  }
  [[nodiscard]] int get_int(const std::string& key, int dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : api::parse_int("--" + key, it->second.back());
  }
  [[nodiscard]] double get_double(const std::string& key, double dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : api::parse_double("--" + key, it->second.back());
  }
  [[nodiscard]] bool has(const std::string& key) const { return kv_.contains(key); }
  [[nodiscard]] std::vector<std::string> get_all(const std::string& key) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? std::vector<std::string>{} : it->second;
  }

 private:
  std::map<std::string, std::vector<std::string>> kv_;
};

/// Flags shared by every command that builds a topology via the registry.
const std::set<std::string> kBuildFlags{"in",   "eps", "strict",  "distributed", "seed",
                                        "algo", "opt", "threads", "obs-json",    "trace"};

/// `--obs-json`/`--trace` imply observability for the run; call before any
/// instrumented work so every probe records.
void obs_enable_if_requested(const Args& args) {
  if (args.has("obs-json") || args.has("trace")) obs::set_enabled(true);
}

/// Write the requested observability artifacts (after the instrumented
/// work): `--obs-json` gets the aggregated metrics snapshot, `--trace` the
/// Chrome trace events of every thread that recorded.
void obs_write_outputs(const Args& args) {
  const std::string obs_path = args.get("obs-json", "");
  if (!obs_path.empty()) {
    std::ofstream os(obs_path);
    if (!os) throw std::runtime_error("cannot open " + obs_path);
    os << obs::to_json(obs::snapshot()) << "\n";
    std::printf("wrote %s (metrics snapshot)\n", obs_path.c_str());
  }
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) throw std::runtime_error("cannot open " + trace_path);
    os << obs::trace_json() << "\n";
    std::printf("wrote %s (Chrome trace: chrome://tracing or https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
}

std::set<std::string> with_build_flags(std::set<std::string> extra) {
  extra.insert(kBuildFlags.begin(), kBuildFlags.end());
  return extra;
}

int usage() {
  std::fprintf(stderr,
               "usage: localspan_cli <gen|span|verify|route|trace|dynamic|serve> [--flags]\n"
               "  gen     --n N --alpha A --dim D --seed S [--placement uniform|clustered|corridor]\n"
               "          [--policy always|never|prob|threshold] [--p P] --out FILE\n"
               "  span    --in FILE --eps E [--algo NAME|list] [--opt k=v ...] [--strict]\n"
               "          [--distributed] [--seed S] [--threads N] [--out-dot FILE] [--out-csv FILE]\n"
               "          [--net sync|async] [--loss P] [--net-json FILE]\n"
               "          (--net async runs distributed algorithms on the adversarial event-queue\n"
               "          transport; fault knobs via --loss or --opt dup=/reorder=/straggle=/\n"
               "          partition=START:HEAL/net-seed=/retries=; --net-json writes the fault report)\n"
               "  verify  --in FILE --eps E [--algo NAME|list] [--opt k=v ...] [--strict] [--threads N]\n"
               "  route   --in FILE --eps E [--algo NAME|list] [--opt k=v ...] [--trials T] [--seed S]\n"
               "  trace   --in FILE --model poisson|waypoint|failure --out FILE[.ctb]\n"
               "          [--seed S] [--events K] [--rate R] [--join-frac F]     (poisson)\n"
               "          [--movers M] [--speed V] [--dt T] [--duration T]      (waypoint)\n"
               "          [--radius R] [--fail-time T] [--no-rejoin]            (failure)\n"
               "  dynamic [--in FILE] [--churn FILE] --eps E [--strict] [--check off|local|full]\n"
               "          [--baseline-full] [--linear-scan] [--batch [N]] [--threads N] [--quiet]\n"
               "          [--n N] [--events K] [--seed S] [--out-json FILE]\n"
               "          (--batch ingests N-event windows via apply_batch, N defaults to 64;\n"
               "          --threads T repairs disjoint regions of a window in parallel; with no\n"
               "          --in/--churn a demo instance of --n nodes and --events churn events runs)\n"
               "  serve   [--in FILE] [--churn FILE] --eps E [--strict] [--check off|local|full]\n"
               "          [--batch N] [--readers R] [--queries Q] [--threads N] [--quiet]\n"
               "          [--n N] [--events K] [--seed S]\n"
               "          (R reader threads serve distance/route queries from epoch-published\n"
               "          snapshots while churn windows repair and republish; same demo-mode\n"
               "          defaults as dynamic)\n"
               "observability (span/verify/route/dynamic/serve): --obs-json FILE writes the metrics\n"
               "  snapshot, --trace FILE writes a Chrome/Perfetto trace; either flag enables obs\n"
               "run 'localspan_cli span --algo list' to enumerate registered algorithms\n");
  return 1;
}

ubg::UbgInstance load(const Args& args) {
  const std::string path = args.get("in", "");
  if (path.empty()) throw std::runtime_error("missing --in FILE");
  return io::load_instance(path);
}

/// Print the registry enumeration (`--algo list`). The README algorithm
/// table is generated from exactly this output.
void print_algorithm_list() {
  const api::AlgorithmRegistry& reg = api::registry();
  std::printf("registered algorithms (%d):\n", reg.size());
  for (const std::string& name : reg.names()) {
    const api::AlgorithmInfo& info = reg.at(name).info();
    std::string opts;
    for (const api::OptionSpec& spec : info.options) {
      if (!opts.empty()) opts += ' ';
      opts += spec.key + "=" + spec.default_value;
    }
    if (opts.empty()) opts = "-";
    std::string caps;
    if (info.caps.dim2_only) caps += " dim2-only";
    if (info.caps.needs_k) caps += " needs-k";
    if (!info.caps.uses_params) caps += " ignores-params";
    if (info.caps.randomized) caps += " seeded";
    if (info.caps.distributed) caps += " distributed";
    if (caps.empty()) caps = " -";
    std::printf("  %-12s %s\n", name.c_str(), info.summary.c_str());
    std::printf("  %-12s   options: %s | caps:%s | ref: %s\n", "", opts.c_str(), caps.c_str(),
                info.reference.c_str());
  }
}

/// Resolve --algo/--strict/--distributed/--opt into one registry build.
/// `command_uses_seed` is set by commands that consume --seed themselves
/// (route seeds its trials), so the flag is only a no-op — and rejected —
/// when neither the command nor the algorithm reads it; `command_uses_threads`
/// likewise for commands with their own query-side pool (route's trial
/// evaluation), where --threads is meaningful even if the construction
/// algorithm is serial. Commands that discard the quality metrics (verify,
/// route) pass measure=false to skip the superlinear measurement pass.
api::BuildResult build_topology(const ubg::UbgInstance& inst, const Args& args,
                                bool command_uses_seed = false, bool measure = true,
                                bool command_uses_threads = false) {
  std::string algo = args.get("algo", "relaxed");
  if (args.has("distributed")) {
    if (args.has("algo") && algo != "relaxed-dist") {
      throw std::invalid_argument("--distributed conflicts with --algo " + algo);
    }
    algo = "relaxed-dist";
  }
  const api::Capabilities& caps = api::registry().at(algo).info().caps;
  if (args.has("strict") && !caps.uses_params) {
    throw std::invalid_argument("--strict has no effect: algorithm '" + algo +
                                "' ignores params");
  }
  if (args.has("seed") && !caps.randomized && !command_uses_seed) {
    throw std::invalid_argument("--seed has no effect: algorithm '" + algo +
                                "' is deterministic");
  }
  const double eps = args.get_double("eps", 0.5);
  const double alpha = inst.config.alpha;
  const core::Params params = args.has("strict") ? core::Params::strict_params(eps, alpha)
                                                 : core::Params::practical_params(eps, alpha);
  api::Options opts = api::Options::parse(args.get_all("opt"));
  // Back-compat sugar: --seed feeds seeded algorithms unless --opt seed= given.
  if (args.has("seed") && !opts.has("seed") && caps.randomized) {
    opts.set("seed", args.get("seed", "1"));
  }
  // --net/--loss: sugar for --opt net=/loss=, only meaningful for
  // message-passing constructions (the registry validates the values and
  // rejects fault knobs under net=sync).
  for (const char* flag : {"net", "loss"}) {
    if (!args.has(flag)) continue;
    if (!caps.distributed) {
      throw std::invalid_argument(std::string("--") + flag + " has no effect: algorithm '" +
                                  algo + "' is not distributed");
    }
    if (!opts.has(flag)) opts.set(flag, args.get(flag, ""));
  }
  // --threads N: sugar for --opt threads=N, rejected when the algorithm has
  // no parallel path (LOCALSPAN_THREADS remains the env default for
  // algorithms that do). Results are bit-identical for every value.
  if (args.has("threads")) {
    const auto& schema = api::registry().at(algo).info().options;
    const bool supported = std::any_of(schema.begin(), schema.end(), [](const api::OptionSpec& s) {
      return s.key == "threads";
    });
    if (!supported && !command_uses_threads) {
      throw std::invalid_argument("--threads has no effect: algorithm '" + algo +
                                  "' has no parallel construction path");
    }
    if (supported && !opts.has("threads")) opts.set("threads", args.get("threads", "0"));
  }
  return api::registry().build(algo, api::BuildRequest{inst, params, std::move(opts)}, measure);
}

int cmd_gen(const Args& args) {
  args.require_known("gen", {"n", "alpha", "dim", "seed", "target-degree", "placement", "policy",
                             "p", "out"});
  ubg::UbgConfig cfg;
  cfg.n = args.get_int("n", 256);
  cfg.alpha = args.get_double("alpha", 0.75);
  cfg.dim = args.get_int("dim", 2);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.target_degree = args.get_double("target-degree", 10.0);
  const std::string placement = args.get("placement", "uniform");
  if (placement == "clustered") cfg.placement = ubg::Placement::kClustered;
  if (placement == "corridor") cfg.placement = ubg::Placement::kCorridor;
  std::unique_ptr<ubg::GrayZonePolicy> policy;
  const std::string pol = args.get("policy", "always");
  if (pol == "never") {
    policy = ubg::never_connect();
  } else if (pol == "prob") {
    policy = ubg::probabilistic(args.get_double("p", 0.5), cfg.seed ^ 0xABCDULL);
  } else if (pol == "threshold") {
    policy = ubg::threshold(args.get_double("p", 0.5 * (cfg.alpha + 1.0)));
  } else {
    policy = ubg::always_connect();
  }
  const ubg::UbgInstance inst = ubg::make_ubg(cfg, *policy);
  const std::string out = args.get("out", "network.lsi");
  io::save_instance(out, inst);
  std::printf("wrote %s: n=%d, m=%d, policy=%s\n", out.c_str(), inst.g.n(), inst.g.m(),
              policy->name());
  return 0;
}

/// True when the request routes a distributed algorithm onto the async
/// transport (via --net async or --opt net=async).
bool net_async_requested(const Args& args) {
  if (args.get("net", "") == "async") return true;
  return api::Options::parse(args.get_all("opt")).get_string("net", "sync") == "async";
}

/// `--net-json FILE`: the adversarial-network fault report — the adversary
/// knobs as requested plus every `net.*` metric the run recorded (physical
/// frame counters, protocol retries/timeouts, the delivery-latency
/// histogram). Built from the obs snapshot, so it works through the
/// registry without widening BuildResult.
void write_net_json(const Args& args, const std::string& path) {
  const api::Options opts = api::Options::parse(args.get_all("opt"));
  const auto knob = [&](const char* key, const char* flag, const std::string& dflt) {
    return args.has(flag) ? args.get(flag, dflt) : opts.get_string(key, dflt);
  };
  const obs::Snapshot snap = obs::snapshot();
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path);
  os << "{\n  \"command\": \"span\",\n  \"net\": \"async\",\n  \"adversary\": {\n";
  os << "    \"loss\": " << knob("loss", "loss", "0") << ",\n";
  os << "    \"dup\": " << opts.get_string("dup", "0") << ",\n";
  os << "    \"reorder\": " << opts.get_string("reorder", "0") << ",\n";
  os << "    \"straggle\": " << opts.get_string("straggle", "0") << ",\n";
  os << "    \"partition\": \"" << opts.get_string("partition", "") << "\",\n";
  os << "    \"net_seed\": " << opts.get_string("net-seed", "1") << ",\n";
  os << "    \"retries\": " << opts.get_string("retries", "24") << "\n  },\n";
  const auto is_net = [](const std::string& name) { return name.rfind("net.", 0) == 0; };
  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!is_net(name)) continue;
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!is_net(name)) continue;
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!is_net(name)) continue;
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": " << h.count
       << ", \"sum\": " << h.sum << ", \"max\": " << h.max << ", \"mean\": " << h.mean
       << ", \"p50\": " << h.p50 << ", \"p90\": " << h.p90 << ", \"p99\": " << h.p99 << "}";
    first = false;
  }
  os << "\n  }\n}\n";
  std::printf("wrote %s (adversarial-network fault report)\n", path.c_str());
}

int cmd_span(const Args& args) {
  args.require_known("span", with_build_flags({"out-dot", "out-csv", "net", "loss", "net-json"}));
  if (args.get("algo", "") == "list") {
    print_algorithm_list();
    return 0;
  }
  if (args.has("net-json")) {
    if (!net_async_requested(args)) {
      throw std::invalid_argument(
          "--net-json has no effect without --net async (there is no fault activity to report)");
    }
    obs::set_enabled(true);  // the report reads the net.* metrics.
  }
  obs_enable_if_requested(args);
  const ubg::UbgInstance inst = load(args);
  const api::BuildResult result = build_topology(inst, args);
  // Print a stretch bound only when the algorithm actually declares one —
  // 1+eps is meaningless for, say, the MST row.
  char bound[32] = "";
  if (result.guarantees.stretch > 0.0) {
    std::snprintf(bound, sizeof(bound), " (bound %.2f)", result.guarantees.stretch);
  }
  std::printf("spanner: %d -> %d edges, stretch %.4f%s, maxdeg %d, lightness %.3f, %.1f ms\n",
              inst.g.m(), result.spanner.m(), result.metrics.stretch, bound,
              result.metrics.max_degree, result.metrics.lightness, 1e3 * result.seconds);
  std::printf("declared: %s\n", result.guarantees.describe().c_str());
  for (const api::PhaseCost& pc : result.phase_breakdown) {
    std::printf("  phase %-16s x%-6lld %8.2f ms\n", pc.name.c_str(),
                static_cast<long long>(pc.count), 1e3 * pc.seconds);
  }
  obs_write_outputs(args);
  const std::string net_json = args.get("net-json", "");
  if (!net_json.empty()) write_net_json(args, net_json);
  const std::string violation = api::check_guarantees(inst, result);
  if (!violation.empty()) {
    std::fprintf(stderr, "declared-guarantee violation: %s\n", violation.c_str());
    return 1;
  }
  const std::string dot = args.get("out-dot", "");
  if (!dot.empty()) {
    std::ofstream os(dot);
    io::write_dot(os, inst, inst.g, &result.spanner);
    std::printf("wrote %s (render: neato -n2 -Tpng %s -o out.png)\n", dot.c_str(), dot.c_str());
  }
  const std::string csv = args.get("out-csv", "");
  if (!csv.empty()) {
    std::ofstream os(csv);
    io::write_edge_csv(os, result.spanner);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}

int cmd_verify(const Args& args) {
  args.require_known("verify", with_build_flags({}));
  if (args.get("algo", "") == "list") {
    print_algorithm_list();
    return 0;
  }
  obs_enable_if_requested(args);
  const ubg::UbgInstance inst = load(args);
  const api::BuildResult result =
      build_topology(inst, args, /*command_uses_seed=*/false, /*measure=*/false);
  const double eps = args.get_double("eps", 0.5);
  // Transformed-metric algorithms (energy) must be verified against the same
  // reweighted reference graph their guarantees and metrics are stated in.
  const ubg::UbgInstance* verify_against = &inst;
  ubg::UbgInstance ref_inst;
  if (result.metric_reference) {
    ref_inst = ubg::UbgInstance{inst.config, inst.points, *result.metric_reference};
    verify_against = &ref_inst;
    std::printf("verifying in the algorithm's transformed metric (reweighted reference)\n");
  }
  const core::VerificationReport rep =
      core::verify_spanner(*verify_against, result.spanner, 1.0 + eps);
  std::printf("%s\n", rep.summary().c_str());
  obs_write_outputs(args);
  return rep.ok() ? 0 : 1;
}

int cmd_route(const Args& args) {
  args.require_known("route", with_build_flags({"trials"}));
  if (args.get("algo", "") == "list") {
    print_algorithm_list();
    return 0;
  }
  obs_enable_if_requested(args);
  const ubg::UbgInstance inst = load(args);
  if (inst.config.dim != 2) {
    std::fprintf(stderr, "route: geometric routing demo expects dim=2\n");
    return 1;
  }
  const api::BuildResult result =
      build_topology(inst, args, /*command_uses_seed=*/true, /*measure=*/false,
                     /*command_uses_threads=*/true);
  const int trials = args.get_int("trials", 200);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  // One warmed workspace (and optional pool) shared by both topologies: the
  // second evaluation reuses the first one's buffers, and a pool parallelizes
  // the per-trial Dijkstras without changing the accepted-trial sequence.
  graph::DijkstraWorkspace ws(inst.g.n());
  const int threads = runtime::resolve_threads(args.get_int("threads", 0));
  std::optional<runtime::WorkerPool> pool;
  if (threads > 1) pool.emplace(threads);
  graph::CsrView csr;
  for (const auto& [name, topo] : {std::pair<const char*, const graph::Graph*>{"max power", &inst.g},
                                   {"spanner", &result.spanner}}) {
    csr.assign(*topo);
    const route::RoutingStats st = route::evaluate_routing(
        inst, csr, route::Forwarding::kGreedy, trials, seed, ws, pool ? &*pool : nullptr);
    std::printf("%-10s greedy routing: delivery %.1f%%, mean stretch %.3f, mean hops %.1f\n",
                name, 100.0 * st.delivery_rate, st.mean_route_stretch, st.mean_hops);
  }
  obs_write_outputs(args);
  return 0;
}

int cmd_trace(const Args& args) {
  args.require_known("trace", {"in", "model", "out", "seed", "events", "rate", "join-frac",
                               "movers", "speed", "dt", "duration", "radius", "fail-time",
                               "no-rejoin", "rejoin-time"});
  const ubg::UbgInstance inst = load(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string model = args.get("model", "poisson");
  dynamic::ChurnTrace trace;
  if (model == "poisson") {
    dynamic::PoissonChurnConfig cfg;
    cfg.events = args.get_int("events", 64);
    cfg.rate = args.get_double("rate", 4.0);
    cfg.join_fraction = args.get_double("join-frac", 0.5);
    cfg.seed = seed;
    trace = dynamic::poisson_churn(inst, cfg);
  } else if (model == "waypoint") {
    dynamic::WaypointConfig cfg;
    cfg.movers = args.get_int("movers", 8);
    cfg.speed = args.get_double("speed", 0.25);
    cfg.sample_dt = args.get_double("dt", 0.25);
    cfg.duration = args.get_double("duration", 8.0);
    cfg.seed = seed;
    trace = dynamic::random_waypoint(inst, cfg);
  } else if (model == "failure") {
    dynamic::RegionalFailureConfig cfg;
    cfg.radius = args.get_double("radius", 1.5);
    cfg.fail_time = args.get_double("fail-time", 1.0);
    cfg.rejoin = !args.has("no-rejoin");
    cfg.rejoin_time = args.get_double("rejoin-time", 2.0 * cfg.fail_time);
    cfg.seed = seed;
    trace = dynamic::regional_failure(inst, cfg);
  } else {
    std::fprintf(stderr, "trace: unknown model '%s'\n", model.c_str());
    return 1;
  }
  const std::string check = dynamic::validate_trace(trace, inst);
  if (!check.empty()) {
    std::fprintf(stderr, "trace: generated trace failed validation: %s\n", check.c_str());
    return 1;
  }
  const std::string out = args.get("out", "churn.json");
  io::save_trace(out, trace);
  int joins = 0;
  int leaves = 0;
  int moves = 0;
  for (const dynamic::ChurnEvent& ev : trace.events) {
    if (ev.kind == dynamic::EventKind::kJoin) ++joins;
    else if (ev.kind == dynamic::EventKind::kLeave) ++leaves;
    else ++moves;
  }
  std::printf("wrote %s: model=%s, %zu events (%d joins, %d leaves, %d moves)\n", out.c_str(),
              model.c_str(), trace.events.size(), joins, leaves, moves);
  return 0;
}

int cmd_dynamic(const Args& args) {
  args.require_known("dynamic", {"in", "churn", "eps", "strict", "check", "baseline-full",
                                 "quiet", "out-json", "linear-scan", "batch", "threads",
                                 "obs-json", "trace", "n", "events", "seed"});
  obs_enable_if_requested(args);

  // Demo mode: with no --in, generate an instance in place (and with no
  // --churn, a poisson trace over it) so the full batch/obs pipeline runs
  // with zero input files.
  ubg::UbgInstance inst;
  if (args.has("in")) {
    inst = load(args);
  } else {
    ubg::UbgConfig cfg;
    cfg.n = args.get_int("n", 2048);
    cfg.alpha = 0.75;
    cfg.dim = 2;
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    inst = ubg::make_ubg(cfg, *ubg::always_connect());
    std::printf("demo instance: n=%d, m=%d (no --in given)\n", inst.g.n(), inst.g.m());
  }
  dynamic::ChurnTrace trace;
  const std::string churn_path = args.get("churn", "");
  if (!churn_path.empty()) {
    trace = io::load_trace(churn_path);
  } else {
    dynamic::PoissonChurnConfig cfg;
    cfg.events = args.get_int("events", 256);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    trace = dynamic::poisson_churn(inst, cfg);
    std::printf("demo churn: %zu poisson events (no --churn given)\n", trace.events.size());
  }
  const std::string invalid = dynamic::validate_trace(trace, inst);
  if (!invalid.empty()) {
    std::fprintf(stderr, "dynamic: invalid trace: %s\n", invalid.c_str());
    return 1;
  }

  const double eps = args.get_double("eps", 0.5);
  const double alpha = inst.config.alpha;
  const core::Params params = args.has("strict") ? core::Params::strict_params(eps, alpha)
                                                 : core::Params::practical_params(eps, alpha);
  dynamic::DynamicOptions opts;
  const std::string check = args.get("check", "local");
  if (check == "off") opts.check = dynamic::CheckLevel::kOff;
  else if (check == "full") opts.check = dynamic::CheckLevel::kFull;
  else if (check == "local") opts.check = dynamic::CheckLevel::kLocal;
  else throw std::runtime_error("dynamic: --check must be off|local|full");
  opts.always_full_recompute = args.has("baseline-full");
  opts.linear_scan_discovery = args.has("linear-scan");
  opts.threads = args.get_int("threads", 0);
  const bool quiet = args.has("quiet");
  // `--batch` alone (no value) means "windowed, default width": the parser
  // stores "1" for valueless flags, and a 1-event window is the per-event
  // path anyway, so 1 promotes to the default width.
  int batch = args.get_int("batch", 1);
  if (batch < 1) throw std::runtime_error("dynamic: --batch must be >= 1");
  if (batch == 1 && args.has("batch")) batch = 64;
  if (batch > 1 && args.has("out-json")) {
    throw std::runtime_error("dynamic: --out-json records per-event stats; drop it or drop --batch");
  }

  dynamic::DynamicSpanner engine(std::move(inst), params, opts);
  std::printf("initial: n=%d live, %d UBG edges, %d spanner edges (%s repair, check=%s)\n",
              engine.active_count(), engine.instance().g.m(), engine.spanner().m(),
              opts.always_full_recompute ? "full-recompute" : "incremental", check.c_str());

  if (batch > 1) {
    // Windowed ingestion: each window is coalesced, partitioned into disjoint
    // dirty regions, repaired (in parallel across regions when --threads > 1)
    // and certified once.
    double total_seconds = 0.0;
    long long regions = 0;
    long long ball_union = 0;
    int windows = 0;
    int fallbacks = 0;
    for (std::size_t i = 0; i < trace.events.size(); i += static_cast<std::size_t>(batch)) {
      const std::size_t len =
          std::min<std::size_t>(static_cast<std::size_t>(batch), trace.events.size() - i);
      const dynamic::BatchStats st =
          engine.apply_batch(std::span<const dynamic::ChurnEvent>(trace.events.data() + i, len));
      total_seconds += st.seconds;
      regions += st.regions;
      ball_union += st.ball_union;
      ++windows;
      if (st.fell_back) ++fallbacks;
      if (!quiet) {
        std::printf(
            "window %-4d %3d events -> %2d regions (%d merged), |balls|=%-5d scope=%-5d "
            "+%d/-%d edges  %.2f ms%s\n",
            windows, st.events, st.regions, st.merged_events, st.ball_union, st.certify_scope,
            st.spanner_edges_added, st.spanner_edges_removed, 1e3 * st.seconds,
            st.fell_back ? "  [fallback]" : (st.check_ran && !st.check_passed ? "  [CHECK FAILED]"
                                                                              : ""));
      }
    }
    const double denom = std::max(total_seconds, 1e-12);
    std::printf(
        "\napplied %zu events in %d windows of <=%d in %.3f s (%.0f events/s, "
        "%.2f regions/window, mean ball union %.1f, %d fallbacks)\n",
        trace.events.size(), windows, batch, total_seconds,
        static_cast<double>(trace.events.size()) / denom,
        static_cast<double>(regions) / std::max(windows, 1),
        static_cast<double>(ball_union) / std::max(windows, 1), fallbacks);
    std::printf("final: n=%d live, %d UBG edges, %d spanner edges\n", engine.active_count(),
                engine.instance().g.m(), engine.spanner().m());
    // Per-region distributions (the flat BatchStats sums these away): the
    // obs histograms keep every region's harvest cost and ball size.
    if (obs::enabled()) {
      const obs::Snapshot snap = obs::snapshot();
      for (const auto& [name, h] : snap.histograms) {
        if (name == "dyn.region_harvest_us") {
          std::printf("per-region harvest: %lld regions, p50=%.0f us, p99=%.0f us, max=%lld us\n",
                      static_cast<long long>(h.count), h.p50, h.p99,
                      static_cast<long long>(h.max));
        } else if (name == "dyn.region_ball") {
          std::printf("per-region ball:    p50=%.0f, p99=%.0f, max=%lld nodes\n", h.p50, h.p99,
                      static_cast<long long>(h.max));
        }
      }
    }
    const core::VerificationReport rep =
        core::verify_spanner(engine.instance(), engine.spanner(), params.t);
    std::printf("final audit: %s\n", rep.summary().c_str());
    obs_write_outputs(args);
    return rep.ok() ? 0 : 1;
  }

  std::vector<dynamic::RepairStats> stats;
  stats.reserve(trace.events.size());
  double total_seconds = 0.0;
  long long balls = 0;
  int fallbacks = 0;
  for (const dynamic::ChurnEvent& ev : trace.events) {
    const dynamic::RepairStats st = engine.apply(ev);
    total_seconds += st.seconds;
    balls += st.ball_size;
    if (st.fell_back) ++fallbacks;
    if (!quiet) {
      std::printf("t=%-8.3f %-5s node=%-5d |ball|=%-5d |scope|=%-5d +%d/-%d edges  %.2f ms%s\n",
                  st.time, dynamic::to_string(st.kind), st.node, st.ball_size, st.certify_scope,
                  st.spanner_edges_added, st.spanner_edges_removed, 1e3 * st.seconds,
                  st.fell_back ? "  [fallback]" : (st.check_passed ? "" : "  [CHECK FAILED]"));
    }
    stats.push_back(st);
  }

  const std::size_t count = std::max<std::size_t>(1, stats.size());
  std::printf(
      "\napplied %zu events in %.3f s (%.1f events/s, mean ball %.1f nodes, %d fallbacks)\n",
      stats.size(), total_seconds, static_cast<double>(stats.size()) / std::max(total_seconds, 1e-12),
      static_cast<double>(balls) / static_cast<double>(count), fallbacks);
  std::printf("final: n=%d live, %d UBG edges, %d spanner edges\n", engine.active_count(),
              engine.instance().g.m(), engine.spanner().m());

  const std::string out_json = args.get("out-json", "");
  if (!out_json.empty()) {
    std::ofstream os(out_json);
    if (!os) throw std::runtime_error("dynamic: cannot open " + out_json);
    os << "{\n  \"events\": [";
    for (std::size_t i = 0; i < stats.size(); ++i) {
      const dynamic::RepairStats& st = stats[i];
      os << (i ? ",\n    " : "\n    ");
      char row[256];
      std::snprintf(row, sizeof(row),
                    "{\"t\": %.6f, \"kind\": \"%s\", \"node\": %d, \"ball\": %d, \"scope\": %d, "
                    "\"added\": %d, \"removed\": %d, \"fell_back\": %s, \"seconds\": %.6f}",
                    st.time, dynamic::to_string(st.kind), st.node, st.ball_size, st.certify_scope,
                    st.spanner_edges_added, st.spanner_edges_removed,
                    st.fell_back ? "true" : "false", st.seconds);
      os << row;
    }
    os << (stats.empty() ? "]\n" : "\n  ]\n") << "}\n";
    std::printf("wrote %s\n", out_json.c_str());
  }

  // Final audit, independent of the per-event checks.
  const core::VerificationReport rep =
      core::verify_spanner(engine.instance(), engine.spanner(), params.t);
  std::printf("final audit: %s\n", rep.summary().c_str());
  obs_write_outputs(args);
  return rep.ok() ? 0 : 1;
}

/// `serve`: the end-to-end query-serving demo (experiment E16). A writer
/// thread ingests churn windows through the dynamic engine, whose commit
/// hook republishes an immutable snapshot (frozen CSR + routing oracle)
/// after every window; R reader threads hammer distance/route queries
/// against whichever snapshot is current while the writer repairs the next
/// one. Exit code checks the served answers against exact Dijkstra on the
/// final snapshot: every estimate must be >= the true distance and within
/// the oracle's declared stretch bound.
int cmd_serve(const Args& args) {
  args.require_known("serve", {"in", "churn", "eps", "strict", "check", "n", "events", "seed",
                               "batch", "readers", "queries", "threads", "quiet", "obs-json",
                               "trace"});
  obs_enable_if_requested(args);

  // Demo mode mirrors `dynamic`: no --in generates an instance, no --churn a
  // poisson trace, so `localspan_cli serve` runs the whole pipeline bare.
  ubg::UbgInstance inst;
  if (args.has("in")) {
    inst = load(args);
  } else {
    ubg::UbgConfig cfg;
    cfg.n = args.get_int("n", 2048);
    cfg.alpha = 0.75;
    cfg.dim = 2;
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    inst = ubg::make_ubg(cfg, *ubg::always_connect());
    std::printf("demo instance: n=%d, m=%d (no --in given)\n", inst.g.n(), inst.g.m());
  }
  dynamic::ChurnTrace trace;
  const std::string churn_path = args.get("churn", "");
  if (!churn_path.empty()) {
    trace = io::load_trace(churn_path);
  } else {
    dynamic::PoissonChurnConfig cfg;
    cfg.events = args.get_int("events", 256);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    trace = dynamic::poisson_churn(inst, cfg);
    std::printf("demo churn: %zu poisson events (no --churn given)\n", trace.events.size());
  }
  const std::string invalid = dynamic::validate_trace(trace, inst);
  if (!invalid.empty()) {
    std::fprintf(stderr, "serve: invalid trace: %s\n", invalid.c_str());
    return 1;
  }

  const double eps = args.get_double("eps", 0.5);
  const double alpha = inst.config.alpha;
  const core::Params params = args.has("strict") ? core::Params::strict_params(eps, alpha)
                                                 : core::Params::practical_params(eps, alpha);
  dynamic::DynamicOptions dopts;
  const std::string check = args.get("check", "local");
  if (check == "off") dopts.check = dynamic::CheckLevel::kOff;
  else if (check == "full") dopts.check = dynamic::CheckLevel::kFull;
  else if (check == "local") dopts.check = dynamic::CheckLevel::kLocal;
  else throw std::runtime_error("serve: --check must be off|local|full");
  dopts.threads = args.get_int("threads", 0);
  int batch = args.get_int("batch", 64);
  if (batch < 1) throw std::runtime_error("serve: --batch must be >= 1");
  const int readers = args.get_int("readers", 2);
  if (readers < 1) throw std::runtime_error("serve: --readers must be >= 1");
  const int queries = args.get_int("queries", 2000);
  if (queries < 1) throw std::runtime_error("serve: --queries must be >= 1");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool quiet = args.has("quiet");
  const int n0 = inst.g.n();
  if (n0 < 2) throw std::runtime_error("serve: need at least 2 nodes");

  dynamic::DynamicSpanner engine(std::move(inst), params, dopts);
  serve::ServeOptions sopts;
  sopts.threads = args.get_int("threads", 0);
  serve::QueryEngine qe(sopts);
  qe.attach(engine);              // republish on every window commit...
  const std::uint64_t epoch0 = qe.publish(engine);  // ...and once for the initial build.
  {
    serve::QueryEngine::Reader r0 = qe.reader();
    const serve::SnapshotStore::ReadGuard g0 = r0.pin();
    std::printf(
        "serving: n=%d, %d spanner edges, oracle %d levels (%lld label entries, bound %.2f%s)\n",
        engine.active_count(), engine.spanner().m(), g0->oracle.levels(),
        static_cast<long long>(g0->oracle.total_label_entries()), g0->oracle.stretch_bound(),
        g0->oracle.truncated() ? ", truncated" : "");
  }

  // Reader threads: each owns a Reader (slot + private workspace) and a
  // private latency log; results merge after the join so the hot loop has
  // no shared state at all.
  struct ReaderReport {
    std::vector<std::int64_t> lat_ns;
    long long oracle_answered = 0;
    long long exact_answered = 0;
    long long routed = 0;
    long long unreachable = 0;
    double seconds = 0.0;
    std::exception_ptr error;
  };
  std::vector<ReaderReport> reports(static_cast<std::size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers));
  for (int k = 0; k < readers; ++k) {
    threads.emplace_back([&qe, &reports, k, n0, queries, seed] {
      ReaderReport& rep = reports[static_cast<std::size_t>(k)];
      try {
        const std::string label = "reader-" + std::to_string(k);
        obs::set_thread_label(label.c_str());
        serve::QueryEngine::Reader reader = qe.reader();
        std::mt19937_64 rng(seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(k + 1)));
        std::uniform_int_distribution<int> pick(0, n0 - 1);
        rep.lat_ns.reserve(static_cast<std::size_t>(queries));
        const auto t0 = std::chrono::steady_clock::now();
        for (int q = 0; q < queries; ++q) {
          const int s = pick(rng);
          int d = pick(rng);
          if (s == d) d = (d + 1) % n0;
          const auto q0 = std::chrono::steady_clock::now();
          if (q % 8 == 7) {
            const serve::QueryEngine::RouteAnswer a = reader.route(s, d);
            ++rep.routed;
            if (!a.reachable) ++rep.unreachable;
          } else {
            const serve::QueryEngine::DistanceAnswer a = reader.distance(s, d);
            if (a.via_oracle) ++rep.oracle_answered;
            else ++rep.exact_answered;
            if (a.distance == graph::kInf) ++rep.unreachable;
          }
          rep.lat_ns.push_back(
              std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                                   q0)
                  .count());
        }
        rep.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      } catch (...) {
        rep.error = std::current_exception();
      }
    });
  }

  // The writer: ingest churn windows while the readers run. Every
  // apply_batch commit fires the hook and flips the published snapshot.
  double churn_seconds = 0.0;
  int windows = 0;
  for (std::size_t i = 0; i < trace.events.size(); i += static_cast<std::size_t>(batch)) {
    const std::size_t len =
        std::min<std::size_t>(static_cast<std::size_t>(batch), trace.events.size() - i);
    const dynamic::BatchStats st =
        engine.apply_batch(std::span<const dynamic::ChurnEvent>(trace.events.data() + i, len));
    churn_seconds += st.seconds;
    ++windows;
    if (!quiet) {
      std::printf("window %-4d %3zu events -> epoch %llu (%zu retired pending)  %.2f ms\n",
                  windows, len, static_cast<unsigned long long>(qe.store().current_epoch()),
                  qe.store().retired_pending(), 1e3 * st.seconds);
    }
  }
  for (std::thread& t : threads) t.join();
  for (const ReaderReport& rep : reports) {
    if (rep.error) std::rethrow_exception(rep.error);
  }

  // Merge the per-thread latency logs for exact percentiles.
  std::vector<std::int64_t> lat;
  long long oracle_answered = 0;
  long long exact_answered = 0;
  long long routed = 0;
  long long unreachable = 0;
  double slowest = 0.0;
  for (const ReaderReport& rep : reports) {
    lat.insert(lat.end(), rep.lat_ns.begin(), rep.lat_ns.end());
    oracle_answered += rep.oracle_answered;
    exact_answered += rep.exact_answered;
    routed += rep.routed;
    unreachable += rep.unreachable;
    slowest = std::max(slowest, rep.seconds);
  }
  std::sort(lat.begin(), lat.end());
  const auto pct = [&lat](double p) {
    if (lat.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(p * (static_cast<double>(lat.size()) - 1.0));
    return static_cast<double>(lat[idx]) / 1e3;  // ns -> us
  };
  const double qps = slowest > 0.0 ? static_cast<double>(lat.size()) / slowest : 0.0;
  std::printf(
      "\n%d readers x %d queries against live churn (%zu events, %d windows, %.3f s repair):\n",
      readers, queries, trace.events.size(), windows, churn_seconds);
  std::printf("  %.0f queries/s, latency p50=%.1f us p99=%.1f us max=%.1f us\n", qps, pct(0.50),
              pct(0.99), pct(1.0));
  std::printf("  %lld oracle-answered, %lld exact-fallback, %lld routed, %lld unreachable\n",
              oracle_answered, exact_answered, routed, unreachable);
  std::printf("  epochs: %llu published (initial %llu), %zu retired pending, %llu reclaimed\n",
              static_cast<unsigned long long>(qe.store().current_epoch()),
              static_cast<unsigned long long>(epoch0), qe.store().retired_pending(),
              static_cast<unsigned long long>(qe.store().reclaimed()));

  // Exit-code audit: sample pairs on the final snapshot and check every
  // served distance against the exact one (route() is exact by construction,
  // so it doubles as the reference). The oracle may only overestimate, and
  // only up to its declared bound.
  serve::QueryEngine::Reader auditor = qe.reader();
  double bound = 0.0;
  bool bound_holds = false;
  {
    // Scoped pin: distance()/route() below pin per call, and a reader slot
    // holds at most one guard at a time.
    const serve::SnapshotStore::ReadGuard snap = auditor.pin();
    bound = snap->oracle.stretch_bound();
    bound_holds = !snap->oracle.truncated();
  }
  std::mt19937_64 rng(seed ^ 0xA5A5A5A5ULL);
  std::uniform_int_distribution<int> pick(0, n0 - 1);
  int audited = 0;
  int violations = 0;
  for (int i = 0; i < 256; ++i) {
    const int s = pick(rng);
    int d = pick(rng);
    if (s == d) d = (d + 1) % n0;
    const serve::QueryEngine::DistanceAnswer est = auditor.distance(s, d);
    const serve::QueryEngine::RouteAnswer exact = auditor.route(s, d);
    if (!exact.reachable) {
      if (est.distance != graph::kInf) {
        ++violations;
        if (violations <= 5) {
          std::fprintf(stderr, "audit violation: d(%d,%d) served %.6f but route unreachable\n", s,
                       d, est.distance);
        }
      }
      continue;
    }
    ++audited;
    const bool too_small = est.distance < exact.distance - 1e-9 * std::max(1.0, exact.distance);
    const bool too_big =
        bound_holds && est.distance > bound * exact.distance + 1e-9 * std::max(1.0, exact.distance);
    if (too_small || too_big) {
      ++violations;
      if (violations <= 5) {
        std::fprintf(stderr, "audit violation: d(%d,%d) served %.6f, exact %.6f (bound %.2f)\n", s,
                     d, est.distance, exact.distance, bound);
      }
    }
  }
  std::printf("final audit: %d pairs served within stretch bound %.2f -> %s\n", audited, bound,
              violations == 0 ? "PASS" : "FAIL");
  obs_write_outputs(args);
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  obs::set_thread_label("main");
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "span") return cmd_span(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "route") return cmd_route(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "dynamic") return cmd_dynamic(args);
    if (cmd == "serve") return cmd_serve(args);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return usage();
}
