/// localspan command-line tool: generate, span, verify, export, churn.
///
///   localspan_cli gen  --n 512 --alpha 0.75 --dim 2 --seed 7 --out net.lsi
///   localspan_cli span --in net.lsi --eps 0.5 [--strict] [--distributed]
///                      [--out-dot spanner.dot] [--out-csv spanner.csv]
///   localspan_cli verify --in net.lsi --eps 0.5
///   localspan_cli route --in net.lsi --eps 0.5 --trials 200
///   localspan_cli trace --in net.lsi --model poisson --events 64 --out churn.json
///   localspan_cli dynamic --in net.lsi --trace churn.json --eps 0.5
///
/// Exit code 0 on success / verification pass, 1 otherwise.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/distributed.hpp"
#include "core/relaxed_greedy.hpp"
#include "core/verify.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/dynamic_spanner.hpp"
#include "graph/metrics.hpp"
#include "io/serialize.hpp"
#include "io/trace_io.hpp"
#include "route/routing.hpp"
#include "ubg/generator.hpp"

using namespace localspan;

namespace {

/// Tiny flag parser: --key value pairs plus boolean --key switches.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        kv_[key] = argv[++i];
      } else {
        kv_[key] = "1";
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key, const std::string& dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }
  [[nodiscard]] int get_int(const std::string& key, int dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stoi(it->second);
  }
  [[nodiscard]] double get_double(const std::string& key, double dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stod(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const { return kv_.contains(key); }

 private:
  std::map<std::string, std::string> kv_;
};

int usage() {
  std::fprintf(stderr,
               "usage: localspan_cli <gen|span|verify|route|trace|dynamic> [--flags]\n"
               "  gen     --n N --alpha A --dim D --seed S [--placement uniform|clustered|corridor]\n"
               "          [--policy always|never|prob|threshold] [--p P] --out FILE\n"
               "  span    --in FILE --eps E [--strict] [--distributed] [--seed S]\n"
               "          [--out-dot FILE] [--out-csv FILE]\n"
               "  verify  --in FILE --eps E [--strict]\n"
               "  route   --in FILE --eps E [--trials T] [--seed S]\n"
               "  trace   --in FILE --model poisson|waypoint|failure --out FILE[.ctb]\n"
               "          [--seed S] [--events K] [--rate R] [--join-frac F]     (poisson)\n"
               "          [--movers M] [--speed V] [--dt T] [--duration T]      (waypoint)\n"
               "          [--radius R] [--fail-time T] [--no-rejoin]            (failure)\n"
               "  dynamic --in FILE --trace FILE --eps E [--strict] [--check off|local|full]\n"
               "          [--baseline-full] [--quiet] [--out-json FILE]\n");
  return 1;
}

ubg::UbgInstance load(const Args& args) {
  const std::string path = args.get("in", "");
  if (path.empty()) throw std::runtime_error("missing --in FILE");
  return io::load_instance(path);
}

graph::Graph build_spanner(const ubg::UbgInstance& inst, const Args& args) {
  const double eps = args.get_double("eps", 0.5);
  const double alpha = inst.config.alpha;
  const core::Params params = args.has("strict") ? core::Params::strict_params(eps, alpha)
                                                 : core::Params::practical_params(eps, alpha);
  if (args.has("distributed")) {
    return core::distributed_relaxed_greedy(inst, params, {},
                                            static_cast<std::uint64_t>(args.get_int("seed", 1)))
        .base.spanner;
  }
  return core::relaxed_greedy(inst, params).spanner;
}

int cmd_gen(const Args& args) {
  ubg::UbgConfig cfg;
  cfg.n = args.get_int("n", 256);
  cfg.alpha = args.get_double("alpha", 0.75);
  cfg.dim = args.get_int("dim", 2);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.target_degree = args.get_double("target-degree", 10.0);
  const std::string placement = args.get("placement", "uniform");
  if (placement == "clustered") cfg.placement = ubg::Placement::kClustered;
  if (placement == "corridor") cfg.placement = ubg::Placement::kCorridor;
  std::unique_ptr<ubg::GrayZonePolicy> policy;
  const std::string pol = args.get("policy", "always");
  if (pol == "never") {
    policy = ubg::never_connect();
  } else if (pol == "prob") {
    policy = ubg::probabilistic(args.get_double("p", 0.5), cfg.seed ^ 0xABCDULL);
  } else if (pol == "threshold") {
    policy = ubg::threshold(args.get_double("p", 0.5 * (cfg.alpha + 1.0)));
  } else {
    policy = ubg::always_connect();
  }
  const ubg::UbgInstance inst = ubg::make_ubg(cfg, *policy);
  const std::string out = args.get("out", "network.lsi");
  io::save_instance(out, inst);
  std::printf("wrote %s: n=%d, m=%d, policy=%s\n", out.c_str(), inst.g.n(), inst.g.m(),
              policy->name());
  return 0;
}

int cmd_span(const Args& args) {
  const ubg::UbgInstance inst = load(args);
  const graph::Graph spanner = build_spanner(inst, args);
  const double eps = args.get_double("eps", 0.5);
  std::printf("spanner: %d -> %d edges, stretch %.4f (bound %.2f), maxdeg %d, lightness %.3f\n",
              inst.g.m(), spanner.m(), graph::max_edge_stretch(inst.g, spanner), 1.0 + eps,
              spanner.max_degree(), graph::lightness(inst.g, spanner));
  const std::string dot = args.get("out-dot", "");
  if (!dot.empty()) {
    std::ofstream os(dot);
    io::write_dot(os, inst, inst.g, &spanner);
    std::printf("wrote %s (render: neato -n2 -Tpng %s -o out.png)\n", dot.c_str(), dot.c_str());
  }
  const std::string csv = args.get("out-csv", "");
  if (!csv.empty()) {
    std::ofstream os(csv);
    io::write_edge_csv(os, spanner);
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}

int cmd_verify(const Args& args) {
  const ubg::UbgInstance inst = load(args);
  const graph::Graph spanner = build_spanner(inst, args);
  const double eps = args.get_double("eps", 0.5);
  const core::VerificationReport rep = core::verify_spanner(inst, spanner, 1.0 + eps);
  std::printf("%s\n", rep.summary().c_str());
  return rep.ok() ? 0 : 1;
}

int cmd_route(const Args& args) {
  const ubg::UbgInstance inst = load(args);
  if (inst.config.dim != 2) {
    std::fprintf(stderr, "route: geometric routing demo expects dim=2\n");
    return 1;
  }
  const graph::Graph spanner = build_spanner(inst, args);
  const int trials = args.get_int("trials", 200);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  for (const auto& [name, topo] : {std::pair<const char*, const graph::Graph*>{"max power", &inst.g},
                                   {"spanner", &spanner}}) {
    const route::RoutingStats st =
        route::evaluate_routing(inst, *topo, route::Forwarding::kGreedy, trials, seed);
    std::printf("%-10s greedy routing: delivery %.1f%%, mean stretch %.3f, mean hops %.1f\n",
                name, 100.0 * st.delivery_rate, st.mean_route_stretch, st.mean_hops);
  }
  return 0;
}

int cmd_trace(const Args& args) {
  const ubg::UbgInstance inst = load(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string model = args.get("model", "poisson");
  dynamic::ChurnTrace trace;
  if (model == "poisson") {
    dynamic::PoissonChurnConfig cfg;
    cfg.events = args.get_int("events", 64);
    cfg.rate = args.get_double("rate", 4.0);
    cfg.join_fraction = args.get_double("join-frac", 0.5);
    cfg.seed = seed;
    trace = dynamic::poisson_churn(inst, cfg);
  } else if (model == "waypoint") {
    dynamic::WaypointConfig cfg;
    cfg.movers = args.get_int("movers", 8);
    cfg.speed = args.get_double("speed", 0.25);
    cfg.sample_dt = args.get_double("dt", 0.25);
    cfg.duration = args.get_double("duration", 8.0);
    cfg.seed = seed;
    trace = dynamic::random_waypoint(inst, cfg);
  } else if (model == "failure") {
    dynamic::RegionalFailureConfig cfg;
    cfg.radius = args.get_double("radius", 1.5);
    cfg.fail_time = args.get_double("fail-time", 1.0);
    cfg.rejoin = !args.has("no-rejoin");
    cfg.rejoin_time = args.get_double("rejoin-time", 2.0 * cfg.fail_time);
    cfg.seed = seed;
    trace = dynamic::regional_failure(inst, cfg);
  } else {
    std::fprintf(stderr, "trace: unknown model '%s'\n", model.c_str());
    return 1;
  }
  const std::string check = dynamic::validate_trace(trace, inst);
  if (!check.empty()) {
    std::fprintf(stderr, "trace: generated trace failed validation: %s\n", check.c_str());
    return 1;
  }
  const std::string out = args.get("out", "churn.json");
  io::save_trace(out, trace);
  int joins = 0;
  int leaves = 0;
  int moves = 0;
  for (const dynamic::ChurnEvent& ev : trace.events) {
    if (ev.kind == dynamic::EventKind::kJoin) ++joins;
    else if (ev.kind == dynamic::EventKind::kLeave) ++leaves;
    else ++moves;
  }
  std::printf("wrote %s: model=%s, %zu events (%d joins, %d leaves, %d moves)\n", out.c_str(),
              model.c_str(), trace.events.size(), joins, leaves, moves);
  return 0;
}

int cmd_dynamic(const Args& args) {
  ubg::UbgInstance inst = load(args);
  const std::string trace_path = args.get("trace", "");
  if (trace_path.empty()) throw std::runtime_error("missing --trace FILE");
  const dynamic::ChurnTrace trace = io::load_trace(trace_path);
  const std::string invalid = dynamic::validate_trace(trace, inst);
  if (!invalid.empty()) {
    std::fprintf(stderr, "dynamic: invalid trace: %s\n", invalid.c_str());
    return 1;
  }

  const double eps = args.get_double("eps", 0.5);
  const double alpha = inst.config.alpha;
  const core::Params params = args.has("strict") ? core::Params::strict_params(eps, alpha)
                                                 : core::Params::practical_params(eps, alpha);
  dynamic::DynamicOptions opts;
  const std::string check = args.get("check", "local");
  if (check == "off") opts.check = dynamic::CheckLevel::kOff;
  else if (check == "full") opts.check = dynamic::CheckLevel::kFull;
  else if (check == "local") opts.check = dynamic::CheckLevel::kLocal;
  else throw std::runtime_error("dynamic: --check must be off|local|full");
  opts.always_full_recompute = args.has("baseline-full");
  const bool quiet = args.has("quiet");

  dynamic::DynamicSpanner engine(std::move(inst), params, opts);
  std::printf("initial: n=%d live, %d UBG edges, %d spanner edges (%s repair, check=%s)\n",
              engine.active_count(), engine.instance().g.m(), engine.spanner().m(),
              opts.always_full_recompute ? "full-recompute" : "incremental", check.c_str());

  std::vector<dynamic::RepairStats> stats;
  stats.reserve(trace.events.size());
  double total_seconds = 0.0;
  long long balls = 0;
  int fallbacks = 0;
  for (const dynamic::ChurnEvent& ev : trace.events) {
    const dynamic::RepairStats st = engine.apply(ev);
    total_seconds += st.seconds;
    balls += st.ball_size;
    if (st.fell_back) ++fallbacks;
    if (!quiet) {
      std::printf("t=%-8.3f %-5s node=%-5d |ball|=%-5d +%d/-%d edges  %.2f ms%s\n", st.time,
                  dynamic::to_string(st.kind), st.node, st.ball_size, st.spanner_edges_added,
                  st.spanner_edges_removed, 1e3 * st.seconds,
                  st.fell_back ? "  [fallback]" : (st.check_passed ? "" : "  [CHECK FAILED]"));
    }
    stats.push_back(st);
  }

  const std::size_t count = std::max<std::size_t>(1, stats.size());
  std::printf(
      "\napplied %zu events in %.3f s (%.1f events/s, mean ball %.1f nodes, %d fallbacks)\n",
      stats.size(), total_seconds, static_cast<double>(stats.size()) / std::max(total_seconds, 1e-12),
      static_cast<double>(balls) / static_cast<double>(count), fallbacks);
  std::printf("final: n=%d live, %d UBG edges, %d spanner edges\n", engine.active_count(),
              engine.instance().g.m(), engine.spanner().m());

  const std::string out_json = args.get("out-json", "");
  if (!out_json.empty()) {
    std::ofstream os(out_json);
    if (!os) throw std::runtime_error("dynamic: cannot open " + out_json);
    os << "{\n  \"events\": [";
    for (std::size_t i = 0; i < stats.size(); ++i) {
      const dynamic::RepairStats& st = stats[i];
      os << (i ? ",\n    " : "\n    ");
      char row[256];
      std::snprintf(row, sizeof(row),
                    "{\"t\": %.6f, \"kind\": \"%s\", \"node\": %d, \"ball\": %d, \"added\": %d, "
                    "\"removed\": %d, \"fell_back\": %s, \"seconds\": %.6f}",
                    st.time, dynamic::to_string(st.kind), st.node, st.ball_size,
                    st.spanner_edges_added, st.spanner_edges_removed,
                    st.fell_back ? "true" : "false", st.seconds);
      os << row;
    }
    os << (stats.empty() ? "]\n" : "\n  ]\n") << "}\n";
    std::printf("wrote %s\n", out_json.c_str());
  }

  // Final audit, independent of the per-event checks.
  const core::VerificationReport rep =
      core::verify_spanner(engine.instance(), engine.spanner(), params.t);
  std::printf("final audit: %s\n", rep.summary().c_str());
  return rep.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "span") return cmd_span(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "route") return cmd_route(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "dynamic") return cmd_dynamic(args);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return usage();
}
