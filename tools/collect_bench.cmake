# Aggregate all BENCH_<id>.json artifacts in a directory into one
# BENCH_SUMMARY.json, validating each artifact's schema on the way:
#
#   cmake -DDIR=<dir> [-DOUT=<file>] -P tools/collect_bench.cmake
#
# Output shape (consumed by perf-trajectory tooling and CI uploads):
#
#   { "schema_version": 1, "count": N,
#     "gates": [ {"artifact": "E15", "gate": "thread_scaling_speedup",
#                 "verdict": "passed"}, ... ],
#     "benches": [ <BENCH_E1.json payload>, ... ] }   # sorted by filename
#
# Every speedup gate records a machine-readable verdict in "gates":
# "passed", or the reason it could not run — "skipped_1core" (fewer than 4
# cores at bench time), "skipped_quick" (quick-mode problem sizes),
# "skipped_no_nproc" (artifact predates nproc recording). A skip still
# warns in the log; the verdict row is what trajectory tooling consumes.
#
# Fails hard on malformed artifacts — aggregation doubles as validation.

if(NOT DEFINED DIR)
  message(FATAL_ERROR "usage: cmake -DDIR=<dir> [-DOUT=<file>] -P collect_bench.cmake")
endif()

# CMake math() is integral: convert a decimal string like "6.456" to integer
# microseconds for latency comparisons.
function(to_micro out val)
  if(val MATCHES "^([0-9]+)\\.([0-9]+)$")
    set(ip "${CMAKE_MATCH_1}")
    string(SUBSTRING "${CMAKE_MATCH_2}000000" 0 6 fp)
  elseif(val MATCHES "^([0-9]+)$")
    set(ip "${CMAKE_MATCH_1}")
    set(fp "000000")
  else()
    message(FATAL_ERROR "collect_bench: '${val}' is not a decimal number")
  endif()
  string(REGEX REPLACE "^0+" "" fp "${fp}")
  if(fp STREQUAL "")
    set(fp 0)
  endif()
  math(EXPR micro "${ip} * 1000000 + ${fp}")
  set(${out} "${micro}" PARENT_SCOPE)
endfunction()
if(NOT IS_DIRECTORY "${DIR}")
  message(FATAL_ERROR "collect_bench: '${DIR}' is not a directory")
endif()

# Append one machine-readable gate verdict (see the header comment) to the
# summary's "gates" array. Callers inside functions must re-export
# GATES_JSON to their own parent scope.
macro(record_gate artifact gate verdict)
  if(NOT GATES_JSON STREQUAL "")
    string(APPEND GATES_JSON ",\n")
  endif()
  string(APPEND GATES_JSON
    "{\"artifact\": \"${artifact}\", \"gate\": \"${gate}\", \"verdict\": \"${verdict}\"}")
endmacro()
set(GATES_JSON "")

# Thread-scaling table validation (E12/E15): the artifact must contain a
# table shaped (<size>, threads, <time>, speedup) — column 1 named "threads",
# last column "speedup" — with every row carrying threads >= 1 and a positive
# decimal speedup. Quick-mode artifacts emit the table too, so this check is
# unconditional for the benches that declare it.
function(check_thread_scaling payload artifact)
  string(JSON n_tables LENGTH "${payload}" "tables")
  math(EXPR last_table "${n_tables} - 1")
  set(found FALSE)
  foreach(t_idx RANGE ${last_table})
    string(JSON n_cols LENGTH "${payload}" "tables" ${t_idx} "columns")
    if(n_cols LESS 3)
      continue()
    endif()
    string(JSON col1 GET "${payload}" "tables" ${t_idx} "columns" 1)
    math(EXPR last_col "${n_cols} - 1")
    string(JSON col_last GET "${payload}" "tables" ${t_idx} "columns" ${last_col})
    if(NOT col1 STREQUAL "threads" OR NOT col_last STREQUAL "speedup")
      continue()
    endif()
    set(found TRUE)
    string(JSON n_rows LENGTH "${payload}" "tables" ${t_idx} "rows")
    if(n_rows LESS 1)
      message(FATAL_ERROR "collect_bench: ${artifact} thread-scaling table is empty")
    endif()
    math(EXPR last_row "${n_rows} - 1")
    set(max_speedup_us 0)
    foreach(row_idx RANGE ${last_row})
      string(JSON threads_cell GET "${payload}" "tables" ${t_idx} "rows" ${row_idx} 1)
      string(JSON speedup_cell GET "${payload}" "tables" ${t_idx} "rows" ${row_idx} ${last_col})
      if(NOT threads_cell MATCHES "^[0-9]+$" OR threads_cell LESS 1)
        message(FATAL_ERROR "collect_bench: ${artifact} thread-scaling row ${row_idx} has invalid "
          "threads '${threads_cell}'")
      endif()
      to_micro(speedup_us "${speedup_cell}")
      if(speedup_us LESS 1)
        message(FATAL_ERROR "collect_bench: ${artifact} thread-scaling row ${row_idx} has "
          "non-positive speedup '${speedup_cell}'")
      endif()
      if(speedup_us GREATER max_speedup_us)
        set(max_speedup_us "${speedup_us}")
      endif()
    endforeach()
    message(STATUS "collect_bench: ${artifact} thread-scaling table valid (${n_rows} rows)")
    # Speedup gate: on a machine with real parallelism, the best parallel
    # point must actually beat serial. On fewer than 4 cores the parallel
    # rows cannot win (a 1-core container runs every thread count at the
    # same speed minus scheduling overhead), so the gate is skipped — loudly,
    # never silently — keyed on the nproc the bench recorded at run time.
    string(JSON nproc ERROR_VARIABLE nproc_err GET "${payload}" "meta" "nproc")
    string(JSON is_quick ERROR_VARIABLE quick_err GET "${payload}" "meta" "quick")
    if(NOT nproc_err STREQUAL "NOTFOUND")
      record_gate("${artifact}" "thread_scaling_speedup" "skipped_no_nproc")
      message(WARNING "collect_bench: ${artifact} meta lacks nproc — skipping the "
        "thread-scaling speedup gate (verdict skipped_no_nproc)")
    elseif(quick_err STREQUAL "NOTFOUND" AND is_quick STREQUAL "yes")
      record_gate("${artifact}" "thread_scaling_speedup" "skipped_quick")
      message(WARNING "collect_bench: ${artifact} is a quick-mode artifact (problem sizes too "
        "small to scale) — skipping the thread-scaling speedup gate (verdict skipped_quick)")
    elseif(nproc LESS 4)
      record_gate("${artifact}" "thread_scaling_speedup" "skipped_1core")
      message(WARNING "collect_bench: ${artifact} ran on ${nproc} core(s) (< 4) — skipping the "
        "thread-scaling speedup gate (verdict skipped_1core)")
    elseif(max_speedup_us LESS 1200000)
      message(FATAL_ERROR "collect_bench: ${artifact} best thread-scaling speedup is "
        "${max_speedup_us}/1000000 on ${nproc} cores — expected >= 1.2x over serial")
    else()
      record_gate("${artifact}" "thread_scaling_speedup" "passed")
      message(STATUS "collect_bench: ${artifact} thread-scaling speedup gate passed "
        "(best ${max_speedup_us}/1000000 on ${nproc} cores)")
    endif()
  endforeach()
  if(NOT found)
    message(FATAL_ERROR "collect_bench: ${artifact} lacks a thread-scaling table "
      "(column 1 'threads', last column 'speedup')")
  endif()
  set(GATES_JSON "${GATES_JSON}" PARENT_SCOPE)
endfunction()
if(NOT DEFINED OUT)
  set(OUT "${DIR}/BENCH_SUMMARY.json")
endif()

file(GLOB artifacts "${DIR}/BENCH_*.json")
list(SORT artifacts)
# The summary itself (and google-benchmark native output, which has its own
# schema) are not aggregation inputs.
list(FILTER artifacts EXCLUDE REGEX "BENCH_SUMMARY\\.json$")

set(payloads "")
set(count 0)
set(ids "")
foreach(artifact IN LISTS artifacts)
  file(READ "${artifact}" payload)
  # Foreign-schema artifacts (bench_e12_runtime emits google-benchmark's
  # native JSON under the shared naming convention) have no "bench" field:
  # skip them rather than fail, so a full-sweep directory still aggregates.
  string(JSON id ERROR_VARIABLE id_err GET "${payload}" "bench")
  if(NOT id_err STREQUAL "NOTFOUND")
    message(STATUS "collect_bench: skipping ${artifact} (not a localspan artifact: ${id_err})")
    continue()
  endif()
  # For localspan-schema artifacts, aggregation doubles as validation: a
  # half-written artifact must not slip into the summary.
  string(JSON schema_version GET "${payload}" "schema_version")
  if(NOT schema_version EQUAL 1)
    message(FATAL_ERROR "collect_bench: ${artifact} has schema_version '${schema_version}'")
  endif()
  string(JSON n_tables LENGTH "${payload}" "tables")
  if(n_tables LESS 1)
    message(FATAL_ERROR "collect_bench: ${artifact} has no tables")
  endif()
  # E6 is the registry sweep: its first table must carry one uniform record
  # per registered algorithm — an "algo" first column, at least 9 rows, and a
  # non-empty algorithm name plus declared-guarantee cell in every row.
  if(id STREQUAL "E6")
    string(JSON first_col GET "${payload}" "tables" 0 "columns" 0)
    if(NOT first_col STREQUAL "algo")
      message(FATAL_ERROR "collect_bench: E6 first column is '${first_col}', expected 'algo'")
    endif()
    string(JSON n_cols LENGTH "${payload}" "tables" 0 "columns")
    string(JSON n_rows LENGTH "${payload}" "tables" 0 "rows")
    if(n_rows LESS 9)
      message(FATAL_ERROR "collect_bench: E6 has ${n_rows} algorithm records, expected >= 9")
    endif()
    math(EXPR last_row "${n_rows} - 1")
    math(EXPR declared_col "${n_cols} - 1")
    foreach(row_idx RANGE ${last_row})
      string(JSON algo_cell GET "${payload}" "tables" 0 "rows" ${row_idx} 0)
      string(JSON row_len LENGTH "${payload}" "tables" 0 "rows" ${row_idx})
      string(JSON declared_cell GET "${payload}" "tables" 0 "rows" ${row_idx} ${declared_col})
      if(algo_cell STREQUAL "" OR NOT row_len EQUAL n_cols OR declared_cell STREQUAL "")
        message(FATAL_ERROR "collect_bench: E6 row ${row_idx} malformed (algo='${algo_cell}', ${row_len}/${n_cols} cells)")
      endif()
    endforeach()
    message(STATUS "collect_bench: E6 per-algorithm records valid (${n_rows} algorithms)")
  endif()
  # E12 is the runtime-scaling bench; it must carry the parallel
  # construction scaling table (threads/speedup columns).
  if(id STREQUAL "E12")
    check_thread_scaling("${payload}" "E12")
  endif()
  # E15 is the dynamic-churn bench: its artifact must carry the workspace
  # perf fields (alloc-free steady state in meta, the certify-scope column,
  # the repair-path threads column, the static-build thread-scaling table),
  # and its full-mode n=2048 incremental latency is guarded against the
  # checked-in baseline (the repo's first perf-regression gate).
  if(id STREQUAL "E15")
    check_thread_scaling("${payload}" "E15")
    string(JSON alloc_free ERROR_VARIABLE af_err GET "${payload}" "meta" "alloc_free_steady_state")
    if(NOT af_err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "collect_bench: E15 meta lacks alloc_free_steady_state")
    endif()
    if(NOT alloc_free STREQUAL "yes")
      message(FATAL_ERROR "collect_bench: E15 alloc_free_steady_state is '${alloc_free}' — the "
        "workspace/certify steady state has started allocating")
    endif()
    string(JSON nproc_meta ERROR_VARIABLE nproc_meta_err GET "${payload}" "meta" "nproc")
    if(NOT nproc_meta_err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "collect_bench: E15 meta lacks nproc")
    endif()
    # Observability hygiene: the artifact must say whether the obs layer was
    # ambiently on, carry the measured off/on wall pair, and — in full mode —
    # prove that compiling the probes in costs <= 3% when enabled (quick-mode
    # cells are too small to time a single-digit percentage, so the gate is
    # skipped loudly there).
    string(JSON obs_enabled ERROR_VARIABLE oe_err GET "${payload}" "meta" "obs_enabled")
    if(NOT oe_err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "collect_bench: E15 meta lacks obs_enabled")
    endif()
    if(NOT obs_enabled MATCHES "^(yes|no)$")
      message(FATAL_ERROR "collect_bench: E15 meta obs_enabled is '${obs_enabled}', expected yes/no")
    endif()
    foreach(obs_key obs_off_ms obs_on_ms obs_overhead_pct)
      string(JSON obs_val ERROR_VARIABLE ov_err GET "${payload}" "meta" "${obs_key}")
      if(NOT ov_err STREQUAL "NOTFOUND")
        message(FATAL_ERROR "collect_bench: E15 meta lacks ${obs_key}")
      endif()
      to_micro(ignored "${obs_val}")  # must be a non-negative decimal
    endforeach()
    string(JSON obs_pct GET "${payload}" "meta" "obs_overhead_pct")
    string(JSON e15_quick ERROR_VARIABLE e15_quick_err GET "${payload}" "meta" "quick")
    to_micro(obs_pct_us "${obs_pct}")
    if(e15_quick_err STREQUAL "NOTFOUND" AND e15_quick STREQUAL "yes")
      message(WARNING "collect_bench: E15 is a quick-mode artifact — skipping the obs overhead "
        "gate (measured ${obs_pct}%)")
    elseif(obs_pct_us GREATER 3000000)
      message(FATAL_ERROR "collect_bench: E15 obs overhead is ${obs_pct}% at n=2048 — the "
        "observability layer must cost <= 3% (one branch per probe when off, cheap "
        "relaxed-atomic bumps when on)")
    else()
      message(STATUS "collect_bench: E15 obs overhead gate passed (${obs_pct}% <= 3%)")
    endif()
    # When the artifact embeds an obs snapshot, it must have the stable shape
    # (counters/gauges/histograms/spans members) so trajectory tooling can
    # rely on it.
    string(JSON obs_block ERROR_VARIABLE ob_err GET "${payload}" "obs")
    if(ob_err STREQUAL "NOTFOUND")
      foreach(obs_member counters gauges histograms spans)
        string(JSON obs_member_len ERROR_VARIABLE om_err LENGTH "${payload}" "obs" "${obs_member}")
        if(NOT om_err STREQUAL "NOTFOUND")
          message(FATAL_ERROR "collect_bench: E15 obs block lacks '${obs_member}': ${om_err}")
        endif()
      endforeach()
      message(STATUS "collect_bench: E15 obs block shape valid")
    endif()
    # Batched-ingestion table (apply_batch): identified by its 'batch'
    # column. Quick-mode artifacts carry it too, so the presence check is
    # unconditional; the 10^4 events/s floor applies only when an n=100000
    # row exists (full mode).
    string(JSON e15_tables LENGTH "${payload}" "tables")
    math(EXPR e15_last_table "${e15_tables} - 1")
    set(batch_tbl -1)
    foreach(t_idx RANGE ${e15_last_table})
      string(JSON bt_cols LENGTH "${payload}" "tables" ${t_idx} "columns")
      math(EXPR bt_last_col "${bt_cols} - 1")
      set(b_col -1)
      set(bt_threads_col -1)
      set(evs_col -1)
      foreach(col_idx RANGE ${bt_last_col})
        string(JSON col GET "${payload}" "tables" ${t_idx} "columns" ${col_idx})
        if(col STREQUAL "batch")
          set(b_col ${col_idx})
        elseif(col STREQUAL "threads")
          set(bt_threads_col ${col_idx})
        elseif(col STREQUAL "batch ev/s")
          set(evs_col ${col_idx})
        endif()
      endforeach()
      if(b_col EQUAL -1)
        continue()
      endif()
      if(bt_threads_col EQUAL -1 OR evs_col EQUAL -1)
        message(FATAL_ERROR "collect_bench: E15 batched-ingestion table lacks the "
          "'threads'/'batch ev/s' columns")
      endif()
      set(batch_tbl ${t_idx})
      string(JSON bt_rows LENGTH "${payload}" "tables" ${t_idx} "rows")
      if(bt_rows LESS 1)
        message(FATAL_ERROR "collect_bench: E15 batched-ingestion table is empty")
      endif()
      math(EXPR bt_last_row "${bt_rows} - 1")
      set(scale_rows 0)
      set(best_scale_evs_us 0)
      foreach(row_idx RANGE ${bt_last_row})
        string(JSON row_n GET "${payload}" "tables" ${t_idx} "rows" ${row_idx} 0)
        string(JSON batch_cell GET "${payload}" "tables" ${t_idx} "rows" ${row_idx} ${b_col})
        string(JSON threads_cell GET "${payload}" "tables" ${t_idx} "rows" ${row_idx} ${bt_threads_col})
        string(JSON evs_cell GET "${payload}" "tables" ${t_idx} "rows" ${row_idx} ${evs_col})
        if(NOT batch_cell MATCHES "^[0-9]+$" OR batch_cell LESS 1)
          message(FATAL_ERROR "collect_bench: E15 batched row ${row_idx} has invalid batch "
            "'${batch_cell}'")
        endif()
        if(NOT threads_cell MATCHES "^[0-9]+$" OR threads_cell LESS 1)
          message(FATAL_ERROR "collect_bench: E15 batched row ${row_idx} has invalid threads "
            "'${threads_cell}'")
        endif()
        to_micro(evs_us "${evs_cell}")
        if(evs_us LESS 1)
          message(FATAL_ERROR "collect_bench: E15 batched row ${row_idx} has non-positive "
            "'batch ev/s' '${evs_cell}'")
        endif()
        if(row_n EQUAL 100000)
          math(EXPR scale_rows "${scale_rows} + 1")
          if(evs_us GREATER best_scale_evs_us)
            set(best_scale_evs_us "${evs_us}")
          endif()
        endif()
      endforeach()
      if(scale_rows GREATER 0)
        # 10^4 events/s in integer micro-units.
        if(best_scale_evs_us LESS 10000000000)
          message(FATAL_ERROR "collect_bench: E15 batched ingestion at n=100000 peaks at "
            "${best_scale_evs_us}/1000000 events/s — expected >= 10000")
        endif()
        message(STATUS "collect_bench: E15 batched n=100000 throughput gate passed "
          "(${best_scale_evs_us}/1000000 events/s)")
      endif()
      message(STATUS "collect_bench: E15 batched-ingestion table valid (${bt_rows} rows)")
    endforeach()
    if(batch_tbl EQUAL -1)
      message(FATAL_ERROR "collect_bench: E15 lacks the batched-ingestion table "
        "(no table with a 'batch' column)")
    endif()
    string(JSON n_cols LENGTH "${payload}" "tables" 0 "columns")
    set(inc_col -1)
    set(scope_col -1)
    set(model_col -1)
    set(threads_col -1)
    math(EXPR last_col "${n_cols} - 1")
    foreach(col_idx RANGE ${last_col})
      string(JSON col GET "${payload}" "tables" 0 "columns" ${col_idx})
      if(col STREQUAL "inc ms/ev")
        set(inc_col ${col_idx})
      elseif(col STREQUAL "mean scope")
        set(scope_col ${col_idx})
      elseif(col STREQUAL "model")
        set(model_col ${col_idx})
      elseif(col STREQUAL "threads")
        set(threads_col ${col_idx})
      endif()
    endforeach()
    if(inc_col EQUAL -1 OR scope_col EQUAL -1 OR model_col EQUAL -1 OR threads_col EQUAL -1)
      message(FATAL_ERROR "collect_bench: E15 table lacks the 'inc ms/ev'/'mean scope'/'model'/'threads' columns")
    endif()
    # Regression guard: compare full-mode n=2048 rows against the checked-in
    # baseline artifact. Quick-mode artifacts carry no n=2048 row and skip
    # the comparison (the field validation above still applies).
    set(baseline_file "${CMAKE_CURRENT_LIST_DIR}/../bench/baselines/BENCH_E15.json")
    if(EXISTS "${baseline_file}")
      file(READ "${baseline_file}" baseline)
      string(JSON n_rows LENGTH "${payload}" "tables" 0 "rows")
      string(JSON nb_rows LENGTH "${baseline}" "tables" 0 "rows")
      math(EXPR last_row "${n_rows} - 1")
      math(EXPR nb_last_row "${nb_rows} - 1")
      foreach(row_idx RANGE ${last_row})
        string(JSON row_n GET "${payload}" "tables" 0 "rows" ${row_idx} 0)
        if(NOT row_n EQUAL 2048)
          continue()
        endif()
        string(JSON row_model GET "${payload}" "tables" 0 "rows" ${row_idx} ${model_col})
        string(JSON cur_inc GET "${payload}" "tables" 0 "rows" ${row_idx} ${inc_col})
        foreach(b_idx RANGE ${nb_last_row})
          string(JSON b_n GET "${baseline}" "tables" 0 "rows" ${b_idx} 0)
          string(JSON b_model GET "${baseline}" "tables" 0 "rows" ${b_idx} ${model_col})
          if(b_n EQUAL 2048 AND b_model STREQUAL row_model)
            string(JSON base_inc GET "${baseline}" "tables" 0 "rows" ${b_idx} ${inc_col})
            # Fail when cur > 1.25 * base, in integer microseconds.
            to_micro(cur_us "${cur_inc}")
            to_micro(base_us "${base_inc}")
            math(EXPR limit_us "(${base_us} * 125) / 100")
            if(cur_us GREATER limit_us)
              message(FATAL_ERROR "collect_bench: E15 inc ms/ev regression at n=2048/${row_model}: "
                "${cur_inc} ms vs baseline ${base_inc} ms (>25% regression)")
            endif()
            message(STATUS "collect_bench: E15 n=2048/${row_model} inc ms/ev ${cur_inc} within "
              "25% of baseline ${base_inc}")
          endif()
        endforeach()
      endforeach()
    endif()
  endif()
  # E16 is the query-serving bench: the artifact must carry the stretch
  # verdict (every served distance within the oracle's declared bound), the
  # oracle-vs-Dijkstra table with its speedup column, and the concurrent-
  # serving latency table. The speedup gate is algorithmic (labels vs a
  # per-query graph search), so unlike the thread-scaling gates it applies
  # regardless of core count — only quick mode (problem sizes too small for
  # a stable ratio at n=2048) skips it, loudly.
  if(id STREQUAL "E16")
    foreach(e16_key stretch_ok nproc quick)
      string(JSON e16_val ERROR_VARIABLE e16_err GET "${payload}" "meta" "${e16_key}")
      if(NOT e16_err STREQUAL "NOTFOUND")
        message(FATAL_ERROR "collect_bench: E16 meta lacks ${e16_key}")
      endif()
    endforeach()
    string(JSON e16_stretch GET "${payload}" "meta" "stretch_ok")
    if(NOT e16_stretch STREQUAL "yes")
      message(FATAL_ERROR "collect_bench: E16 stretch_ok is '${e16_stretch}' — a served "
        "distance fell outside [exact, bound * exact]")
    endif()
    string(JSON e16_quick GET "${payload}" "meta" "quick")
    # Table 0: oracle vs per-query Dijkstra. Locate the speedup column.
    string(JSON e16_cols LENGTH "${payload}" "tables" 0 "columns")
    math(EXPR e16_last_col "${e16_cols} - 1")
    set(e16_speedup_col -1)
    foreach(col_idx RANGE ${e16_last_col})
      string(JSON col GET "${payload}" "tables" 0 "columns" ${col_idx})
      if(col STREQUAL "speedup")
        set(e16_speedup_col ${col_idx})
      endif()
    endforeach()
    if(e16_speedup_col EQUAL -1)
      message(FATAL_ERROR "collect_bench: E16 table 0 lacks the 'speedup' column")
    endif()
    string(JSON e16_rows LENGTH "${payload}" "tables" 0 "rows")
    if(e16_rows LESS 1)
      message(FATAL_ERROR "collect_bench: E16 oracle-vs-Dijkstra table is empty")
    endif()
    math(EXPR e16_last_row "${e16_rows} - 1")
    if(e16_quick STREQUAL "yes")
      record_gate("E16" "oracle_speedup" "skipped_quick")
      message(WARNING "collect_bench: E16 is a quick-mode artifact (query counts too small "
        "for a stable ratio) — skipping the oracle speedup gates (verdict skipped_quick)")
    else()
      # Full mode: >= 10x at n=2048, >= 100x at n=100000 (when the row ran).
      foreach(row_idx RANGE ${e16_last_row})
        string(JSON row_n GET "${payload}" "tables" 0 "rows" ${row_idx} 0)
        string(JSON speedup_cell GET "${payload}" "tables" 0 "rows" ${row_idx} ${e16_speedup_col})
        to_micro(speedup_us "${speedup_cell}")
        if(row_n EQUAL 2048 AND speedup_us LESS 10000000)
          message(FATAL_ERROR "collect_bench: E16 oracle speedup at n=2048 is ${speedup_cell}x "
            "— expected >= 10x over per-query Dijkstra")
        endif()
        if(row_n EQUAL 100000 AND speedup_us LESS 100000000)
          message(FATAL_ERROR "collect_bench: E16 oracle speedup at n=100000 is "
            "${speedup_cell}x — expected >= 100x over per-query Dijkstra")
        endif()
      endforeach()
      record_gate("E16" "oracle_speedup" "passed")
      message(STATUS "collect_bench: E16 oracle speedup gates passed (${e16_rows} rows)")
    endif()
    # The concurrent-serving table: identified by its 'p99 us' column; every
    # row needs a positive qps and a p99 (bounded tail latency is the claim,
    # so the field must at least exist and parse).
    string(JSON e16_tables LENGTH "${payload}" "tables")
    math(EXPR e16_last_table "${e16_tables} - 1")
    set(e16_churn_tbl -1)
    foreach(t_idx RANGE ${e16_last_table})
      string(JSON ct_cols LENGTH "${payload}" "tables" ${t_idx} "columns")
      math(EXPR ct_last_col "${ct_cols} - 1")
      set(qps_col -1)
      set(p99_col -1)
      foreach(col_idx RANGE ${ct_last_col})
        string(JSON col GET "${payload}" "tables" ${t_idx} "columns" ${col_idx})
        if(col STREQUAL "qps")
          set(qps_col ${col_idx})
        elseif(col STREQUAL "p99 us")
          set(p99_col ${col_idx})
        endif()
      endforeach()
      if(p99_col EQUAL -1 OR qps_col EQUAL -1)
        continue()
      endif()
      set(e16_churn_tbl ${t_idx})
      string(JSON ct_rows LENGTH "${payload}" "tables" ${t_idx} "rows")
      if(ct_rows LESS 1)
        message(FATAL_ERROR "collect_bench: E16 concurrent-serving table is empty")
      endif()
      math(EXPR ct_last_row "${ct_rows} - 1")
      foreach(row_idx RANGE ${ct_last_row})
        string(JSON qps_cell GET "${payload}" "tables" ${t_idx} "rows" ${row_idx} ${qps_col})
        string(JSON p99_cell GET "${payload}" "tables" ${t_idx} "rows" ${row_idx} ${p99_col})
        to_micro(qps_us "${qps_cell}")
        to_micro(ignored "${p99_cell}")
        if(qps_us LESS 1)
          message(FATAL_ERROR "collect_bench: E16 concurrent row ${row_idx} has non-positive "
            "qps '${qps_cell}'")
        endif()
      endforeach()
      message(STATUS "collect_bench: E16 concurrent-serving table valid (${ct_rows} rows)")
    endforeach()
    if(e16_churn_tbl EQUAL -1)
      message(FATAL_ERROR "collect_bench: E16 lacks the concurrent-serving table "
        "(no table with 'qps' and 'p99 us' columns)")
    endif()
  endif()
  # E17 is the adversarial-async-network bench: its fault-matrix table must
  # carry the message-complexity ('transmissions') and convergence
  # ('convergence vtime') columns, and the robustness claim must hold on
  # every row — terminated=yes (the reliable protocol reached quiescence)
  # and identical=yes (the spanner is bit-identical to the sync build).
  if(id STREQUAL "E17")
    # E15/E16/E17 record meta.nproc uniformly, so trajectory tooling can
    # always key perf numbers on the core count of the run.
    string(JSON e17_nproc ERROR_VARIABLE e17_nproc_err GET "${payload}" "meta" "nproc")
    if(NOT e17_nproc_err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "collect_bench: E17 meta lacks nproc")
    endif()
    if(NOT e17_nproc MATCHES "^[0-9]+$" OR e17_nproc LESS 1)
      message(FATAL_ERROR "collect_bench: E17 meta nproc is '${e17_nproc}', expected a "
        "positive integer")
    endif()
    string(JSON e17_cols LENGTH "${payload}" "tables" 0 "columns")
    math(EXPR e17_last_col "${e17_cols} - 1")
    set(e17_trans_col -1)
    set(e17_conv_col -1)
    set(e17_term_col -1)
    set(e17_ident_col -1)
    foreach(col_idx RANGE ${e17_last_col})
      string(JSON col GET "${payload}" "tables" 0 "columns" ${col_idx})
      if(col STREQUAL "transmissions")
        set(e17_trans_col ${col_idx})
      elseif(col STREQUAL "convergence vtime")
        set(e17_conv_col ${col_idx})
      elseif(col STREQUAL "terminated")
        set(e17_term_col ${col_idx})
      elseif(col STREQUAL "identical")
        set(e17_ident_col ${col_idx})
      endif()
    endforeach()
    if(e17_trans_col EQUAL -1 OR e17_conv_col EQUAL -1)
      message(FATAL_ERROR "collect_bench: E17 table 0 lacks the 'transmissions'/"
        "'convergence vtime' columns")
    endif()
    if(e17_term_col EQUAL -1 OR e17_ident_col EQUAL -1)
      message(FATAL_ERROR "collect_bench: E17 table 0 lacks the 'terminated'/'identical' "
        "verdict columns")
    endif()
    string(JSON e17_rows LENGTH "${payload}" "tables" 0 "rows")
    if(e17_rows LESS 1)
      message(FATAL_ERROR "collect_bench: E17 fault-matrix table is empty")
    endif()
    math(EXPR e17_last_row "${e17_rows} - 1")
    foreach(row_idx RANGE ${e17_last_row})
      string(JSON term_cell GET "${payload}" "tables" 0 "rows" ${row_idx} ${e17_term_col})
      string(JSON ident_cell GET "${payload}" "tables" 0 "rows" ${row_idx} ${e17_ident_col})
      string(JSON trans_cell GET "${payload}" "tables" 0 "rows" ${row_idx} ${e17_trans_col})
      string(JSON conv_cell GET "${payload}" "tables" 0 "rows" ${row_idx} ${e17_conv_col})
      if(NOT term_cell STREQUAL "yes")
        message(FATAL_ERROR "collect_bench: E17 row ${row_idx} terminated='${term_cell}' — "
          "the reliable protocol failed to reach quiescence under this adversary")
      endif()
      if(NOT ident_cell STREQUAL "yes")
        message(FATAL_ERROR "collect_bench: E17 row ${row_idx} identical='${ident_cell}' — "
          "the async spanner diverged from the synchronous build")
      endif()
      to_micro(trans_us "${trans_cell}")
      if(trans_us LESS 1)
        message(FATAL_ERROR "collect_bench: E17 row ${row_idx} has non-positive "
          "'transmissions' '${trans_cell}'")
      endif()
      to_micro(conv_us "${conv_cell}")
      if(conv_us LESS 1)
        message(FATAL_ERROR "collect_bench: E17 row ${row_idx} has non-positive "
          "'convergence vtime' '${conv_cell}'")
      endif()
    endforeach()
    message(STATUS "collect_bench: E17 robustness verdicts hold on all ${e17_rows} rows")
  endif()
  string(STRIP "${payload}" payload)
  if(count GREATER 0)
    string(APPEND payloads ",\n")
  endif()
  string(APPEND payloads "${payload}")
  math(EXPR count "${count} + 1")
  list(APPEND ids "${id}")
endforeach()

if(count EQUAL 0)
  message(FATAL_ERROR "collect_bench: no BENCH_*.json artifacts in ${DIR}")
endif()

file(WRITE "${OUT}" "{\n\"schema_version\": 1,\n\"count\": ${count},\n\"gates\": [\n${GATES_JSON}\n],\n\"benches\": [\n${payloads}\n]\n}\n")

# Self-check: the summary must itself parse, with count entries and a
# well-formed gates array (every verdict from the known vocabulary).
file(READ "${OUT}" summary)
string(JSON n_benches LENGTH "${summary}" "benches")
if(NOT n_benches EQUAL count)
  message(FATAL_ERROR "collect_bench: summary self-check failed (${n_benches} != ${count})")
endif()
string(JSON n_gates LENGTH "${summary}" "gates")
if(n_gates GREATER 0)
  math(EXPR last_gate "${n_gates} - 1")
  foreach(g_idx RANGE ${last_gate})
    string(JSON g_verdict GET "${summary}" "gates" ${g_idx} "verdict")
    if(NOT g_verdict MATCHES "^(passed|skipped_1core|skipped_quick|skipped_no_nproc)$")
      message(FATAL_ERROR "collect_bench: gate ${g_idx} has unknown verdict '${g_verdict}'")
    endif()
  endforeach()
endif()
message(STATUS "collect_bench: recorded ${n_gates} speedup-gate verdict(s)")

list(JOIN ids ", " id_list)
message(STATUS "collect_bench: wrote ${OUT} (${count} benches: ${id_list})")
