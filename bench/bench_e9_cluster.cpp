/// Experiment E9 — the cluster machinery constants (Lemmas 4, 6, 8;
/// Theorem 9; Fig 2) and the doubling-dimension claims (Lemmas 15/20,
/// Figs 5-6) that make the O(log* n) MIS of [11] applicable.
///
/// All reported maxima are taken over every phase of a full run and must be
/// flat in n.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/relaxed_greedy.hpp"
#include "graph/dijkstra.hpp"
#include "graph/metrics.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E9");
  std::printf("E9: per-phase structural constants. eps=0.5, alpha=0.75, d=2, seed=9\n");
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  std::printf("params: %s\n", params.describe().c_str());
  const int lemma8_cap =
      2 + static_cast<int>(std::ceil(params.t * params.r / params.delta));

  benchutil::Table table({"n", "max query edges/cluster (L4)", "max inter-degree (L6)",
                          "max query hops (L8)", "L8 cap 2+ceil(tr/d)"});
  for (int n : {128, 256, 512, 1024, 2048}) {
    const auto inst = benchutil::standard_instance(n, 0.75, 9);
    const auto result = core::relaxed_greedy(inst, params);
    int l4 = 0;
    int l6 = 0;
    int l8 = 0;
    for (const core::PhaseStats& st : result.phases) {
      l4 = std::max(l4, st.max_query_edges_per_cluster);
      l6 = std::max(l6, st.max_inter_degree);
      l8 = std::max(l8, st.max_query_hops);
    }
    table.add_row({fmt_int(n), fmt_int(l4), fmt_int(l6), fmt_int(l8), fmt_int(lemma8_cap)});
  }
  report.print("E9: Lemma 4/6/8 quantities are constant in n", table);

  // Doubling dimension of the spanner's shortest-path metric (the metric in
  // which the derived conflict graphs of Lemmas 15/20 are UBGs). The paper's
  // claim: constant, so the KMW MIS applies.
  benchutil::Table dd_table({"n", "doubling dim estimate (G' sp metric)"});
  for (int n : {128, 256, 512}) {
    const auto inst = benchutil::standard_instance(n, 0.75, 9);
    const auto result = core::relaxed_greedy(inst, params);
    std::vector<std::vector<double>> dist(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      dist[static_cast<std::size_t>(v)] = graph::dijkstra(result.spanner, v).dist;
      for (double& d : dist[static_cast<std::size_t>(v)]) {
        if (d == graph::kInf) d = 1e9;  // disconnected pairs: effectively far
      }
    }
    dd_table.add_row({fmt_int(n), fmt(graph::doubling_dimension_estimate(dist, 60, 9), 2)});
  }
  report.print("E9b: doubling dimension of the derived metric stays constant (Lemmas 15/20)", dd_table);
  return report.write() ? 0 : 1;
}
