/// Experiment E4 — round complexity O(log n · log* n) (§3, Theorems 14-21).
///
/// Sweep n and report the simulator-measured rounds (with Luby MIS, O(log n)
/// w.h.p. per invocation) and the KMW-model rounds (each MIS invocation
/// charged log*(n) iterations, matching the paper's use of [11]). Both are
/// compared against c·log2(n)·log*(n). The message totals confirm the
/// O(log n)-bit-per-edge-per-round budget is respected in aggregate.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/distributed.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E4");
  std::printf("E4: communication rounds vs n (paper: O(log n * log* n)).\n");
  std::printf("eps=0.5, alpha=0.75, d=2, uniform; Luby-measured vs KMW-model rounds\n");
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  benchutil::Table table({"n", "phases", "rounds (Luby)", "rounds (KMW model)", "log2n*log*n",
                          "KMW/ref ratio", "messages", "max Luby iters"});
  for (int n : {128, 256, 512, 1024, 2048, 4096}) {
    const auto inst = benchutil::standard_instance(n, 0.75, 11);
    const auto result = core::distributed_relaxed_greedy(inst, params, {}, 11);
    const double ref = std::log2(static_cast<double>(n)) * core::log_star(n);
    table.add_row({fmt_int(n), fmt_int(result.base.nonempty_bins),
                   fmt_int(result.net.rounds_measured), fmt_int(result.net.rounds_kmw_model),
                   fmt(ref, 1), fmt(static_cast<double>(result.net.rounds_kmw_model) / ref, 2),
                   fmt_int(result.net.messages), fmt_int(result.net.max_luby_iterations)});
  }
  report.print("E4: rounds scale polylogarithmically (flat KMW/ref ratio)", table);

  // Per-phase breakdown at one size: the §3 claim is O(1) rounds for every
  // step except the two MIS invocations.
  const auto inst = benchutil::standard_instance(1024, 0.75, 11);
  const auto result = core::distributed_relaxed_greedy(inst, params, {}, 11);
  benchutil::Table phase_table(
      {"bin", "cover", "select", "clustergraph", "query", "redundancy", "phase total"});
  for (const core::PhaseRounds& pr : result.net.per_phase) {
    phase_table.add_row({fmt_int(pr.bin), fmt_int(pr.cover), fmt_int(pr.select),
                         fmt_int(pr.cluster_graph), fmt_int(pr.query), fmt_int(pr.redundancy),
                         fmt_int(pr.total_measured())});
  }
  report.print("E4b: per-phase round breakdown at n=1024 (steps ii-iv are O(1))", phase_table);
  return report.write() ? 0 : 1;
}
