/// Experiment E3 — lightness w(G') = O(w(MST)) (Theorem 13).
///
/// The lightness ratio w(G')/w(MSF(G)) must stay bounded as n grows, for
/// every ε. Any spanner has lightness >= 1, so these numbers are directly
/// interpretable as "times optimal".
#include <cstdio>

#include "bench_util.hpp"
#include "core/relaxed_greedy.hpp"
#include "graph/metrics.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E3");
  std::printf("E3: lightness vs n and eps (Theorem 13). alpha=0.75, d=2, uniform, seed=3\n");
  benchutil::Table table({"n", "eps=0.25", "eps=0.5", "eps=1.0", "strict eps=0.5"});
  for (int n : {128, 256, 512, 1024, 2048}) {
    const auto inst = benchutil::standard_instance(n, 0.75, 3);
    std::vector<std::string> row{fmt_int(n)};
    for (double eps : {0.25, 0.5, 1.0}) {
      const auto result =
          core::relaxed_greedy(inst, core::Params::practical_params(eps, 0.75));
      row.push_back(fmt(graph::lightness(inst.g, result.spanner), 3));
    }
    if (n <= 1024) {
      const auto result = core::relaxed_greedy(inst, core::Params::strict_params(0.5, 0.75));
      row.push_back(fmt(graph::lightness(inst.g, result.spanner), 3));
    } else {
      row.push_back("-");
    }
    table.add_row(row);
  }
  report.print("E3: w(G')/w(MSF) stays O(1) in n; smaller eps costs more weight", table);
  return report.write() ? 0 : 1;
}
