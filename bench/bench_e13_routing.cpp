/// Experiment E13 — geometric routing on the spanner (§1.3's application
/// motivation, GPSR [9]): greedy and compass forwarding on the raw network
/// versus the topology-control outputs. A good control topology should keep
/// delivery near the raw graph's while using a fraction of the links, and
/// the route stretch should track the spanner stretch.
#include <cstdio>

#include "bench_util.hpp"
#include "baseline/rng_graph.hpp"
#include "baseline/yao.hpp"
#include "core/relaxed_greedy.hpp"
#include "route/routing.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E13");
  std::printf("E13: geometric routing. n=512, alpha=1.0 (UDG), d=2, seed=13, 300 packets\n");
  const auto inst = benchutil::standard_instance(512, 1.0, 13);
  const core::Params params = core::Params::practical_params(0.5, 1.0);
  const auto spanner = core::relaxed_greedy(inst, params).spanner;

  struct Row {
    const char* name;
    graph::Graph g;
  };
  std::vector<Row> rows;
  rows.push_back({"max power", inst.g});
  rows.push_back({"RNG/XTC", baseline::relative_neighborhood_graph(inst)});
  rows.push_back({"theta k=8", baseline::theta_graph(inst, 8)});
  rows.push_back({"relaxed greedy spanner", spanner});

  benchutil::Table table({"topology", "edges", "rule", "delivery %", "mean hops",
                          "mean route stretch", "worst route stretch"});
  for (const Row& row : rows) {
    for (const auto rule : {route::Forwarding::kGreedy, route::Forwarding::kCompass}) {
      const route::RoutingStats st = route::evaluate_routing(inst, row.g, rule, 300, 13);
      table.add_row({row.name, fmt_int(row.g.m()),
                     rule == route::Forwarding::kGreedy ? "greedy" : "compass",
                     fmt(100.0 * st.delivery_rate, 1), fmt(st.mean_hops, 1),
                     fmt(st.mean_route_stretch, 3), fmt(st.worst_route_stretch, 3)});
    }
  }
  report.print("E13: the spanner keeps geometric routing viable at a fraction of the links", table);
  return report.write() ? 0 : 1;
}
