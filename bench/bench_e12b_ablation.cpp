/// Experiment E12 (part 2) — ablations of the design choices DESIGN.md
/// calls out:
///   * strict vs practical parameter presets (bin ratio r, hence phase count),
///   * redundancy removal on/off (§2.2.5; the weight proof needs it on),
///   * covered-edge filtering effect (visible through the query counts).
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/relaxed_greedy.hpp"
#include "graph/metrics.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

namespace {

struct Outcome {
  double ms;
  core::RelaxedGreedyResult result;
};

Outcome run(const ubg::UbgInstance& inst, const core::Params& params,
            const core::RelaxedGreedyOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  auto result = core::relaxed_greedy(inst, params, opts);
  const auto dt = std::chrono::steady_clock::now() - t0;
  return {std::chrono::duration<double, std::milli>(dt).count(), std::move(result)};
}

}  // namespace

int main() {
  benchutil::JsonReport report("E12b");
  std::printf("E12b: ablations. n=768, eps=0.5, alpha=0.75, d=2, seed=12\n");
  const auto inst = benchutil::standard_instance(768, 0.75, 12);
  const core::Params strict = core::Params::strict_params(0.5, 0.75);
  const core::Params practical = core::Params::practical_params(0.5, 0.75);
  core::RelaxedGreedyOptions with;
  core::RelaxedGreedyOptions without;
  without.redundancy_removal = false;
  core::RelaxedGreedyOptions no_filter;
  no_filter.covered_edge_filter = false;

  benchutil::Table table({"variant", "time ms", "bins", "phases", "edges", "stretch",
                          "max deg", "lightness", "removed"});
  struct Case {
    const char* name;
    const core::Params* params;
    const core::RelaxedGreedyOptions* opts;
  };
  for (const Case& c : {Case{"strict + redundancy", &strict, &with},
                        Case{"strict, no redundancy", &strict, &without},
                        Case{"practical + redundancy", &practical, &with},
                        Case{"practical, no redundancy", &practical, &without},
                        Case{"practical, no covered filter", &practical, &no_filter}}) {
    const Outcome o = run(inst, *c.params, *c.opts);
    int removed = 0;
    for (const core::PhaseStats& st : o.result.phases) removed += st.removed;
    table.add_row({c.name, fmt(o.ms, 1), fmt_int(o.result.total_bins),
                   fmt_int(o.result.nonempty_bins), fmt_int(o.result.spanner.m()),
                   fmt(graph::max_edge_stretch(inst.g, o.result.spanner), 4),
                   fmt_int(o.result.spanner.max_degree()),
                   fmt(graph::lightness(inst.g, o.result.spanner), 3), fmt_int(removed)});
  }
  report.print("E12b: strict params buy sparser/lighter output for ~10x more phases; "
              "redundancy removal trims weight at equal stretch", table);
  return report.write() ? 0 : 1;
}
