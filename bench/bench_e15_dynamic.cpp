/// E15 — dynamic topology maintenance: incremental local repair vs full
/// recompute under churn.
///
/// For each (n, trace model) cell the same event trace is applied twice to
/// the same seed instance: once through the DynamicSpanner's dirty-ball
/// repair (with the per-event local certification on, as deployed), once
/// with the pre-spatial-hash Ω(n) neighbor-discovery scan (the DynamicGrid
/// before/after comparison), and once through the rebuild-from-scratch
/// baseline. Reported: per-event wall time for all modes, the speedups,
/// mean dirty-ball and certify-scope sizes (the locality the paper
/// promises), and fallback count (0 = the locality argument held on every
/// event).
///
/// The n=100000 row is the scale smoke leg for the epoch-stamped workspace:
/// incremental repair only (scan and rebuild baselines are pointless at that
/// size), proving per-event cost stays ball-sized when the network is 50x
/// larger than the balls.
///
/// The meta block records `alloc_free_steady_state`: a counting-allocator
/// probe (global operator new/delete override below) verifies that a
/// warmed-up workspace search and a warmed-up local certify perform zero
/// heap allocations — the property that makes repair cost O(|ball|) in
/// memory traffic, not just in work.
///
/// The baseline is timed on a prefix of the trace (the mean is stable after
/// a few events) — `timed` in the table says how many events the baseline
/// mean covers.
///
/// LOCALSPAN_BENCH_QUICK=1 trims sizes/events for CI smoke runs.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <vector>

#include <chrono>

#include "bench_util.hpp"
#include "core/params.hpp"
#include "core/relaxed_greedy.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/dynamic_spanner.hpp"
#include "graph/sp_workspace.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

using namespace localspan;
namespace bu = localspan::benchutil;

// ---------------------------------------------------------------------------
// Counting allocator: every heap allocation in this binary bumps the
// counter, so a window around a warmed-up hot path measures its true
// allocation count (zero is the target).
// ---------------------------------------------------------------------------
namespace {
std::atomic<long long> g_allocs{0};
}  // namespace

// The replacement operator new allocates with std::malloc, so operator
// delete frees with std::free — GCC's new/delete-pair analysis cannot see
// through the replacement and flags the (correct) pairing.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow variants must be replaced too (std::stable_sort's temporary
// buffer allocates through them; a half-replaced set trips ASan's
// alloc-dealloc-mismatch check).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

struct CellResult {
  std::size_t events = 0;
  std::size_t baseline_timed = 0;
  double inc_ms_per_event = 0.0;   ///< spatial-hash discovery (deployed).
  double scan_ms_per_event = 0.0;  ///< pre-spatial-hash Ω(n) scan baseline.
  double full_ms_per_event = 0.0;
  double mean_ball = 0.0;
  double mean_scope = 0.0;  ///< mean certify touched-set size.
  int max_ball = 0;
  int fallbacks = 0;
  bool baselines_ran = true;  ///< false on the scale smoke leg.
};

dynamic::ChurnTrace make_trace(const ubg::UbgInstance& inst, const std::string& model,
                               int events, std::uint64_t seed) {
  if (model == "burst") {
    // Regional failure + rejoin: every node inside the radius leaves at once
    // and rejoins later — the batched-ingestion showcase, where one window
    // coalesces the whole burst into a single repair region. `events` is
    // ignored; the radius dictates the burst size. The radius is chosen
    // large: window cost scales with the repair region (~the disk), events
    // with 2x the disk population, so throughput *rises* with burst size —
    // interior leaves whose whole neighborhood departs in the same window
    // need no repair at all.
    dynamic::RegionalFailureConfig cfg;
    cfg.radius = 12.0;
    cfg.seed = seed;
    return dynamic::regional_failure(inst, cfg);
  }
  if (model == "waypoint") {
    dynamic::WaypointConfig cfg;
    // Cap movers at events/2 so duration >= 2 sample periods per mover —
    // uncapped, large n drives duration below one sample_dt and the trace
    // degenerates to zero events.
    cfg.movers = std::max(2, std::min(events / 2, inst.g.n() / 256));
    cfg.speed = 0.25;
    cfg.sample_dt = 0.25;
    cfg.duration = cfg.sample_dt * events / cfg.movers;
    cfg.seed = seed;
    return dynamic::random_waypoint(inst, cfg);
  }
  dynamic::PoissonChurnConfig cfg;
  cfg.events = events;
  cfg.seed = seed;
  return dynamic::poisson_churn(inst, cfg);
}

CellResult run_cell(const ubg::UbgInstance& inst, const core::Params& params,
                    const dynamic::ChurnTrace& trace, std::size_t baseline_events,
                    bool incremental_only) {
  CellResult res;
  res.events = trace.events.size();
  res.baselines_ran = !incremental_only;

  // Incremental mode, per-event certification on — the deployed config.
  {
    dynamic::DynamicSpanner engine(inst, params);
    double seconds = 0.0;
    long long balls = 0;
    long long scopes = 0;
    for (const dynamic::RepairStats& st : engine.apply_all(trace)) {
      seconds += st.seconds;
      balls += st.ball_size;
      scopes += st.certify_scope;
      res.max_ball = std::max(res.max_ball, st.ball_size);
      if (st.fell_back) ++res.fallbacks;
    }
    const auto count = static_cast<double>(std::max<std::size_t>(1, res.events));
    res.inc_ms_per_event = 1e3 * seconds / count;
    res.mean_ball = static_cast<double>(balls) / count;
    res.mean_scope = static_cast<double>(scopes) / count;
  }
  if (incremental_only) return res;

  // Incremental with the pre-spatial-hash Ω(n) neighbor-discovery scan — the
  // before/after comparison for the DynamicGrid optimization (same repair
  // path and certification; only discovery differs).
  {
    dynamic::DynamicOptions opts;
    opts.linear_scan_discovery = true;
    dynamic::DynamicSpanner engine(inst, params, opts);
    double seconds = 0.0;
    for (const dynamic::RepairStats& st : engine.apply_all(trace)) seconds += st.seconds;
    res.scan_ms_per_event =
        1e3 * seconds / static_cast<double>(std::max<std::size_t>(1, res.events));
  }

  // Full-recompute baseline on a prefix of the same trace.
  {
    dynamic::DynamicOptions opts;
    opts.always_full_recompute = true;
    opts.check = dynamic::CheckLevel::kOff;
    dynamic::DynamicSpanner engine(inst, params, opts);
    res.baseline_timed = std::min(baseline_events, trace.events.size());
    double seconds = 0.0;
    for (std::size_t i = 0; i < res.baseline_timed; ++i) {
      seconds += engine.apply(trace.events[i]).seconds;
    }
    res.full_ms_per_event = 1e3 * seconds / static_cast<double>(std::max<std::size_t>(1, res.baseline_timed));
  }
  return res;
}

/// Counting-allocator probe for the artifact's `alloc_free_steady_state`
/// field: after warm-up, a bounded workspace search and a scoped certify
/// must both allocate nothing.
bool alloc_free_steady_state(const core::Params& params) {
  const ubg::UbgInstance inst = bu::standard_instance(192, 0.75, 7);

  // Workspace search: warm with the exact search that is counted (a
  // different source could have a larger ball and legitimately grow the
  // touched/heap buffers past the warm-up's high-water mark).
  graph::DijkstraWorkspace ws(inst.g.n());
  static_cast<void>(ws.bounded(inst.g, 1, 0.5));
  const long long before_search = g_allocs.load();
  static_cast<void>(ws.bounded(inst.g, 1, 0.5));
  const long long search_allocs = g_allocs.load() - before_search;

  // Local certify: warm the engine scratch with a trace, then count — once
  // with the serial engine and once at threads=4, so the parallel certify
  // sweep (per-worker workspaces + pool dispatch) proves the same property.
  const auto certify_allocs_for = [&](int threads, bool* ok) {
    dynamic::DynamicOptions opts;
    opts.threads = threads;
    dynamic::DynamicSpanner engine(inst, params, opts);
    const dynamic::ChurnTrace trace = make_trace(inst, "poisson", 6, 7);
    static_cast<void>(engine.apply_all(trace));
    int live = 0;
    while (live < engine.instance().g.n() && !engine.is_active(live)) ++live;
    if (live == engine.instance().g.n()) {
      std::printf("alloc probe: no live node after warm-up trace\n");
      *ok = false;
      return 1LL;
    }
    const std::vector<int> modified{live};  // outside the counting window
    static_cast<void>(engine.certify(modified));
    const long long before_certify = g_allocs.load();
    *ok = engine.certify(modified);
    return g_allocs.load() - before_certify;
  };
  bool ok_serial = false;
  bool ok_parallel = false;
  const long long certify_allocs = certify_allocs_for(1, &ok_serial);
  const long long certify4_allocs = certify_allocs_for(4, &ok_parallel);

  if (search_allocs != 0 || certify_allocs != 0 || certify4_allocs != 0) {
    std::printf("alloc probe: search=%lld certify=%lld certify@4threads=%lld allocations "
                "after warm-up\n",
                search_allocs, certify_allocs, certify4_allocs);
  }
  return ok_serial && ok_parallel && search_allocs == 0 && certify_allocs == 0 &&
         certify4_allocs == 0;
}

/// Measured cost of the observability layer itself: the batched-repair
/// workload (the hottest instrumented path — spans, counters and histograms
/// fire on every window) run with obs disabled and enabled, min-of-reps wall
/// each. collect_bench gates the overhead at <= 3% in full mode — the
/// "always-on" claim is that compiling the probes in and leaving them off
/// costs one predictable branch per probe site.
struct ObsOverhead {
  double off_ms = 0.0;
  double on_ms = 0.0;
  double overhead_pct = 0.0;  ///< max(0, (on-off)/off*100).
  std::string obs_json;       ///< snapshot of the enabled run, for the artifact.
};

ObsOverhead measure_obs_overhead(const core::Params& params, bool quick) {
  const int n = quick ? 384 : 2048;
  const int events = quick ? 12 : 256;
  const int batch = quick ? 4 : 64;
  const int reps = 3;
  const ubg::UbgInstance inst = bu::standard_instance(n, 0.75, 7);
  const dynamic::ChurnTrace trace = make_trace(inst, "poisson", events, 7);

  // Serial engine: thread-pool scheduling noise would swamp a single-digit
  // percent measurement.
  const auto run_once_ms = [&] {
    dynamic::DynamicOptions opts;
    opts.threads = 1;
    dynamic::DynamicSpanner engine(inst, params, opts);
    const std::vector<dynamic::ChurnEvent>& evs = trace.events;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < evs.size(); i += static_cast<std::size_t>(batch)) {
      const std::size_t len =
          std::min<std::size_t>(static_cast<std::size_t>(batch), evs.size() - i);
      static_cast<void>(
          engine.apply_batch(std::span<const dynamic::ChurnEvent>(evs.data() + i, len)));
    }
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  const auto min_of_reps = [&] {
    double best = run_once_ms();
    for (int r = 1; r < reps; ++r) best = std::min(best, run_once_ms());
    return best;
  };

  const bool was_enabled = obs::enabled();
  ObsOverhead res;
  obs::set_enabled(false);
  res.off_ms = min_of_reps();
  obs::set_enabled(true);
  obs::reset();
  res.on_ms = min_of_reps();
  res.obs_json = obs::to_json(obs::snapshot());
  obs::reset();
  obs::set_enabled(was_enabled);
  res.overhead_pct =
      std::max(0.0, 100.0 * (res.on_ms - res.off_ms) / std::max(res.off_ms, 1e-9));
  return res;
}

}  // namespace

int main() {
  const bool quick = std::getenv("LOCALSPAN_BENCH_QUICK") != nullptr;
  const std::vector<int> ns = quick ? std::vector<int>{192, 384}
                                    : std::vector<int>{256, 1024, 2048, 16384};
  const int scale_n = 100000;  ///< workspace scale leg, incremental only.
  const int events = quick ? 12 : 32;
  const int scale_events = quick ? 6 : 16;
  const std::size_t baseline_events = quick ? 3 : 8;
  const double eps = 0.5;
  const double alpha = 0.75;

  const core::Params params = core::Params::practical_params(eps, alpha);

  bu::JsonReport report("E15");
  report.meta("eps", eps);
  report.meta("alpha", alpha);
  report.meta("events", static_cast<long long>(events));
  report.meta("quick", std::string(quick ? "yes" : "no"));
  // The machine's core count, so collect_bench can tell a genuine scaling
  // regression from a one-core container (where every speedup column is
  // honestly ~1.0 and the speedup gate must be skipped, not failed).
  report.meta("nproc", static_cast<long long>(runtime::hardware_threads()));
  report.meta("alloc_free_steady_state",
              std::string(alloc_free_steady_state(params) ? "yes" : "no"));
  {
    // Observability cost: the same batched workload with probes off vs on.
    // obs_enabled records the ambient LOCALSPAN_OBS state the *tables* below
    // ran under; the off/on pair is measured explicitly either way.
    const bool ambient_obs = obs::enabled();
    const ObsOverhead ov = measure_obs_overhead(params, quick);
    report.meta("obs_enabled", std::string(ambient_obs ? "yes" : "no"));
    report.meta("obs_off_ms", ov.off_ms);
    report.meta("obs_on_ms", ov.on_ms);
    report.meta("obs_overhead_pct", ov.overhead_pct);
    report.set_obs(ov.obs_json);
  }

  bu::Table table({"n", "model", "threads", "events", "inc ev/s", "inc ms/ev", "scan ms/ev",
                   "disc speedup", "full ms/ev", "speedup", "mean |B|", "max |B|", "mean scope",
                   "ball frac", "timed", "fallbacks"});
  const auto add_row = [&](int n, const char* model, const CellResult& res) {
    const std::string na = "n/a";
    table.add_row({bu::fmt_int(n), model, bu::fmt_int(runtime::default_threads()),
                   bu::fmt_int(static_cast<long long>(res.events)),
                   bu::fmt(1e3 / std::max(res.inc_ms_per_event, 1e-9), 1),
                   bu::fmt(res.inc_ms_per_event),
                   res.baselines_ran ? bu::fmt(res.scan_ms_per_event) : na,
                   res.baselines_ran
                       ? bu::fmt(res.scan_ms_per_event / std::max(res.inc_ms_per_event, 1e-9), 2)
                       : na,
                   res.baselines_ran ? bu::fmt(res.full_ms_per_event) : na,
                   res.baselines_ran
                       ? bu::fmt(res.full_ms_per_event / std::max(res.inc_ms_per_event, 1e-9), 2)
                       : na,
                   bu::fmt(res.mean_ball, 1), bu::fmt_int(res.max_ball),
                   bu::fmt(res.mean_scope, 1), bu::fmt(res.mean_ball / n),
                   bu::fmt_int(static_cast<long long>(res.baseline_timed)),
                   bu::fmt_int(res.fallbacks)});
  };
  for (int n : ns) {
    const ubg::UbgInstance inst = bu::standard_instance(n, alpha, 7);
    for (const char* model : {"poisson", "waypoint"}) {
      const dynamic::ChurnTrace trace = make_trace(inst, model, events, 7);
      add_row(n, model, run_cell(inst, params, trace, baseline_events, false));
    }
  }
  {
    // Scale smoke leg: 10^5 nodes, incremental repair only. The point is the
    // per-event cost staying ball-sized, not another rebuild race.
    const ubg::UbgInstance inst = bu::standard_instance(scale_n, alpha, 7);
    const dynamic::ChurnTrace trace = make_trace(inst, "poisson", scale_events, 7);
    add_row(scale_n, "poisson", run_cell(inst, params, trace, 0, true));
  }
  report.print("E15: incremental repair vs full recompute under churn", table);

  // Batched churn ingestion (apply_batch): batch-size × threads sweep. Each
  // cell replays the same trace through windowed apply_batch and reports
  // per-event cost against a sequential apply() baseline timed on a prefix
  // of the same trace (fresh engine, same seed instance). The burst model is
  // the coalescing showcase: a regional failure + rejoin collapses into one
  // repair region, so the whole window costs one union-ball search, one
  // rerun and one certify. collect_bench validates this table and requires
  // the n=100000 burst leg to sustain >= 10^4 events/s.
  {
    bu::Table batch_table({"n", "model", "batch", "threads", "events", "windows", "regions/win",
                           "mean |RB|", "batch ms/ev", "batch ev/s", "seq ms/ev", "vs seq",
                           "seq timed", "fallbacks"});
    const auto seq_ms_per_event = [&](const ubg::UbgInstance& inst,
                                      const dynamic::ChurnTrace& trace, std::size_t prefix) {
      dynamic::DynamicSpanner engine(inst, params);
      const std::size_t timed = std::min(prefix, trace.events.size());
      double seconds = 0.0;
      for (std::size_t i = 0; i < timed; ++i) seconds += engine.apply(trace.events[i]).seconds;
      return 1e3 * seconds / static_cast<double>(std::max<std::size_t>(1, timed));
    };
    const auto add_batch_row = [&](int n, const char* model, const ubg::UbgInstance& inst,
                                   const dynamic::ChurnTrace& trace, int batch, int threads,
                                   double seq_ms, std::size_t seq_timed) {
      dynamic::DynamicOptions opts;
      opts.threads = threads;
      dynamic::DynamicSpanner engine(inst, params, opts);
      double seconds = 0.0;
      long long regions = 0;
      long long ball_union = 0;
      int windows = 0;
      int fallbacks = 0;
      const std::vector<dynamic::ChurnEvent>& evs = trace.events;
      for (std::size_t i = 0; i < evs.size(); i += static_cast<std::size_t>(batch)) {
        const std::size_t len =
            std::min<std::size_t>(static_cast<std::size_t>(batch), evs.size() - i);
        const dynamic::BatchStats st =
            engine.apply_batch(std::span<const dynamic::ChurnEvent>(evs.data() + i, len));
        seconds += st.seconds;
        regions += st.regions;
        ball_union += st.ball_union;
        ++windows;
        if (st.fell_back) ++fallbacks;
      }
      const auto count = static_cast<double>(std::max<std::size_t>(1, evs.size()));
      const double ms_ev = 1e3 * seconds / count;
      batch_table.add_row(
          {bu::fmt_int(n), model, bu::fmt_int(batch), bu::fmt_int(threads),
           bu::fmt_int(static_cast<long long>(evs.size())), bu::fmt_int(windows),
           bu::fmt(static_cast<double>(regions) / std::max(windows, 1), 2),
           bu::fmt(static_cast<double>(ball_union) / std::max(windows, 1), 1), bu::fmt(ms_ev, 4),
           bu::fmt(1e3 / std::max(ms_ev, 1e-9), 1), bu::fmt(seq_ms),
           bu::fmt(seq_ms / std::max(ms_ev, 1e-9), 2),
           bu::fmt_int(static_cast<long long>(seq_timed)), bu::fmt_int(fallbacks)});
    };
    // Threads to sweep: serial always; the parallel point only where the
    // hardware can actually run one (a 1-core container reports honest
    // serial numbers instead of scheduler-noise "speedups").
    std::vector<int> batch_threads{1};
    if (runtime::hardware_threads() >= 2) {
      batch_threads.push_back(std::min(4, runtime::hardware_threads()));
    }
    {
      // Dispersed churn: events rarely coalesce, so the win is bounded (one
      // certify per window instead of per event).
      const int n = quick ? 384 : 2048;
      const int batch_events = quick ? 12 : 256;
      const std::size_t seq_prefix = quick ? 6 : 64;
      const ubg::UbgInstance inst = bu::standard_instance(n, alpha, 7);
      const dynamic::ChurnTrace trace = make_trace(inst, "poisson", batch_events, 7);
      const std::size_t seq_timed = std::min(seq_prefix, trace.events.size());
      const double seq_ms = seq_ms_per_event(inst, trace, seq_prefix);
      for (const int batch : quick ? std::vector<int>{4} : std::vector<int>{8, 32}) {
        for (const int threads : batch_threads) {
          add_batch_row(n, "poisson", inst, trace, batch, threads, seq_ms, seq_timed);
        }
      }
    }
    if (!quick) {
      // Scale legs: dispersed churn and the coalesced burst at n=100000.
      const ubg::UbgInstance inst = bu::standard_instance(scale_n, alpha, 7);
      {
        const dynamic::ChurnTrace trace = make_trace(inst, "poisson", 512, 7);
        const std::size_t seq_timed = std::min<std::size_t>(32, trace.events.size());
        const double seq_ms = seq_ms_per_event(inst, trace, 32);
        for (const int threads : batch_threads) {
          add_batch_row(scale_n, "poisson", inst, trace, 64, threads, seq_ms, seq_timed);
        }
      }
      {
        const dynamic::ChurnTrace trace = make_trace(inst, "burst", 0, 7);
        const std::size_t seq_timed = std::min<std::size_t>(32, trace.events.size());
        const double seq_ms = seq_ms_per_event(inst, trace, 32);
        // The whole burst in ONE window: splitting a mass failure across
        // windows makes early windows repair around nodes doomed to leave
        // in the next one, destroying the amortization being measured.
        const int burst_batch = static_cast<int>(trace.events.size());
        for (const int threads : batch_threads) {
          add_batch_row(scale_n, "burst", inst, trace, burst_batch, threads, seq_ms, seq_timed);
        }
      }
    }
    report.print("E15: batched churn ingestion (apply_batch), batch x threads", batch_table);
  }

  // Static-build thread scaling: the full relaxed construction (the
  // per-event rebuild-baseline cost driver the ROADMAP names) at 1..8
  // worker threads. The topology is bit-identical at every thread count
  // (tests/test_parallel.cpp), so the speedup column is pure wall clock.
  // collect_bench validates the threads/speedup columns are present.
  {
    bu::Table scaling({"n", "threads", "build s", "speedup"});
    const int build_n = quick ? 384 : 16384;
    const std::vector<int> thread_counts = quick ? std::vector<int>{1, 2}
                                                 : std::vector<int>{1, 2, 4, 8};
    const ubg::UbgInstance inst = bu::standard_instance(build_n, alpha, 7);
    double serial_s = 0.0;
    for (int t : thread_counts) {
      core::RelaxedGreedyOptions opts;
      opts.threads = t;
      const auto t0 = std::chrono::steady_clock::now();
      static_cast<void>(core::relaxed_greedy(inst, params, opts).spanner.m());
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      if (t == 1) serial_s = s;
      scaling.add_row({bu::fmt_int(build_n), bu::fmt_int(t), bu::fmt(s),
                       bu::fmt(serial_s / std::max(s, 1e-9), 2)});
    }
    report.print("E15: static relaxed build, thread scaling", scaling);
  }
  return report.write() ? 0 : 1;
}
