/// E15 — dynamic topology maintenance: incremental local repair vs full
/// recompute under churn.
///
/// For each (n, trace model) cell the same event trace is applied twice to
/// the same seed instance: once through the DynamicSpanner's dirty-ball
/// repair (with the per-event local certification on, as deployed), once
/// with the pre-spatial-hash Ω(n) neighbor-discovery scan (the DynamicGrid
/// before/after comparison), and once through the rebuild-from-scratch
/// baseline. Reported: per-event wall time for all modes, the speedups,
/// mean dirty-ball size (the locality the paper promises), and fallback
/// count (0 = the locality argument held on every event).
///
/// The baseline is timed on a prefix of the trace (full recomputes at
/// n = 2048 cost ~1 s/event; the mean is stable after a few events) —
/// `timed` in the table says how many events the baseline mean covers.
///
/// LOCALSPAN_BENCH_QUICK=1 trims sizes/events for CI smoke runs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/params.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/dynamic_spanner.hpp"

using namespace localspan;
namespace bu = localspan::benchutil;

namespace {

struct CellResult {
  std::size_t events = 0;
  std::size_t baseline_timed = 0;
  double inc_ms_per_event = 0.0;   ///< spatial-hash discovery (deployed).
  double scan_ms_per_event = 0.0;  ///< pre-spatial-hash Ω(n) scan baseline.
  double full_ms_per_event = 0.0;
  double mean_ball = 0.0;
  int max_ball = 0;
  int fallbacks = 0;
};

dynamic::ChurnTrace make_trace(const ubg::UbgInstance& inst, const std::string& model,
                               int events, std::uint64_t seed) {
  if (model == "waypoint") {
    dynamic::WaypointConfig cfg;
    cfg.movers = std::max(2, inst.g.n() / 256);
    cfg.speed = 0.25;
    cfg.sample_dt = 0.25;
    cfg.duration = cfg.sample_dt * events / cfg.movers;
    cfg.seed = seed;
    return dynamic::random_waypoint(inst, cfg);
  }
  dynamic::PoissonChurnConfig cfg;
  cfg.events = events;
  cfg.seed = seed;
  return dynamic::poisson_churn(inst, cfg);
}

CellResult run_cell(const ubg::UbgInstance& inst, const core::Params& params,
                    const dynamic::ChurnTrace& trace, std::size_t baseline_events) {
  CellResult res;
  res.events = trace.events.size();

  // Incremental mode, per-event certification on — the deployed config.
  {
    dynamic::DynamicSpanner engine(inst, params);
    double seconds = 0.0;
    long long balls = 0;
    for (const dynamic::RepairStats& st : engine.apply_all(trace)) {
      seconds += st.seconds;
      balls += st.ball_size;
      res.max_ball = std::max(res.max_ball, st.ball_size);
      if (st.fell_back) ++res.fallbacks;
    }
    const auto count = static_cast<double>(std::max<std::size_t>(1, res.events));
    res.inc_ms_per_event = 1e3 * seconds / count;
    res.mean_ball = static_cast<double>(balls) / count;
  }

  // Incremental with the pre-spatial-hash Ω(n) neighbor-discovery scan — the
  // before/after comparison for the DynamicGrid optimization (same repair
  // path and certification; only discovery differs).
  {
    dynamic::DynamicOptions opts;
    opts.linear_scan_discovery = true;
    dynamic::DynamicSpanner engine(inst, params, opts);
    double seconds = 0.0;
    for (const dynamic::RepairStats& st : engine.apply_all(trace)) seconds += st.seconds;
    res.scan_ms_per_event =
        1e3 * seconds / static_cast<double>(std::max<std::size_t>(1, res.events));
  }

  // Full-recompute baseline on a prefix of the same trace.
  {
    dynamic::DynamicOptions opts;
    opts.always_full_recompute = true;
    opts.check = dynamic::CheckLevel::kOff;
    dynamic::DynamicSpanner engine(inst, params, opts);
    res.baseline_timed = std::min(baseline_events, trace.events.size());
    double seconds = 0.0;
    for (std::size_t i = 0; i < res.baseline_timed; ++i) {
      seconds += engine.apply(trace.events[i]).seconds;
    }
    res.full_ms_per_event = 1e3 * seconds / static_cast<double>(std::max<std::size_t>(1, res.baseline_timed));
  }
  return res;
}

}  // namespace

int main() {
  const bool quick = std::getenv("LOCALSPAN_BENCH_QUICK") != nullptr;
  const std::vector<int> ns = quick ? std::vector<int>{192, 384}
                                    : std::vector<int>{256, 1024, 2048};
  const int events = quick ? 12 : 32;
  const std::size_t baseline_events = quick ? 3 : 8;
  const double eps = 0.5;
  const double alpha = 0.75;

  bu::JsonReport report("E15");
  report.meta("eps", eps);
  report.meta("alpha", alpha);
  report.meta("events", static_cast<long long>(events));
  report.meta("quick", std::string(quick ? "yes" : "no"));

  bu::Table table({"n", "model", "events", "inc ev/s", "inc ms/ev", "scan ms/ev", "disc speedup",
                   "full ms/ev", "speedup", "mean |B|", "max |B|", "ball frac", "timed",
                   "fallbacks"});
  const core::Params params = core::Params::practical_params(eps, alpha);
  for (int n : ns) {
    const ubg::UbgInstance inst = bu::standard_instance(n, alpha, 7);
    for (const char* model : {"poisson", "waypoint"}) {
      const dynamic::ChurnTrace trace = make_trace(inst, model, events, 7);
      const CellResult res = run_cell(inst, params, trace, baseline_events);
      table.add_row({bu::fmt_int(n), model, bu::fmt_int(static_cast<long long>(res.events)),
                     bu::fmt(1e3 / std::max(res.inc_ms_per_event, 1e-9), 1),
                     bu::fmt(res.inc_ms_per_event), bu::fmt(res.scan_ms_per_event),
                     bu::fmt(res.scan_ms_per_event / std::max(res.inc_ms_per_event, 1e-9), 2),
                     bu::fmt(res.full_ms_per_event),
                     bu::fmt(res.full_ms_per_event / std::max(res.inc_ms_per_event, 1e-9), 2),
                     bu::fmt(res.mean_ball, 1), bu::fmt_int(res.max_ball),
                     bu::fmt(res.mean_ball / n), bu::fmt_int(static_cast<long long>(res.baseline_timed)),
                     bu::fmt_int(res.fallbacks)});
    }
  }
  report.print("E15: incremental repair vs full recompute under churn", table);
  return report.write() ? 0 : 1;
}
