/// Experiment E6 — comparison against classical topology-control baselines
/// (§1.3: planar backbones [13-15,19], Yao graphs [20], MST, max power).
///
/// One UDG workload (alpha=1 so every baseline is well-defined), one row per
/// topology: the relaxed greedy spanner should be the only construction that
/// simultaneously has bounded stretch, bounded degree and bounded lightness.
#include <cstdio>

#include "bench_util.hpp"
#include "baseline/gabriel.hpp"
#include "baseline/rng_graph.hpp"
#include "baseline/yao.hpp"
#include "core/distributed.hpp"
#include "core/greedy.hpp"
#include "core/relaxed_greedy.hpp"
#include "graph/metrics.hpp"
#include "graph/mst.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E6");
  std::printf("E6: baseline comparison. n=512, alpha=1.0 (UDG), d=2, uniform, seed=6\n");
  const auto inst = benchutil::standard_instance(512, 1.0, 6);
  const double power_max = graph::power_cost(inst.g);

  struct Row {
    const char* name;
    graph::Graph g;
  };
  std::vector<Row> rows;
  rows.push_back({"max power (G itself)", inst.g});
  rows.push_back({"MST", graph::minimum_spanning_forest(inst.g)});
  rows.push_back({"RNG (XTC [19])", baseline::relative_neighborhood_graph(inst)});
  rows.push_back({"Gabriel", baseline::gabriel_graph(inst)});
  rows.push_back({"Yao k=8 [20]", baseline::yao_graph(inst, 8)});
  rows.push_back({"Theta k=8", baseline::theta_graph(inst, 8)});
  rows.push_back({"SEQ-GREEDY t=1.5", core::seq_greedy(inst.g, 1.5)});
  const core::Params practical = core::Params::practical_params(0.5, 1.0);
  rows.push_back({"relaxed greedy t=1.5", core::relaxed_greedy(inst, practical).spanner});
  rows.push_back({"distributed t=1.5",
                  core::distributed_relaxed_greedy(inst, practical, {}, 6).base.spanner});
  const core::Params strict = core::Params::strict_params(0.5, 1.0);
  rows.push_back({"relaxed greedy strict t=1.5", core::relaxed_greedy(inst, strict).spanner});

  benchutil::Table table({"topology", "edges", "edges/n", "max deg", "stretch (cap 64)",
                          "lightness", "power/maxpower"});
  for (const Row& row : rows) {
    table.add_row({row.name, fmt_int(row.g.m()),
                   fmt(static_cast<double>(row.g.m()) / row.g.n(), 2),
                   fmt_int(row.g.max_degree()), fmt(graph::max_edge_stretch(inst.g, row.g), 3),
                   fmt(graph::lightness(inst.g, row.g), 3),
                   fmt(graph::power_cost(row.g) / power_max, 3)});
  }
  report.print("E6: only the paper's construction bounds stretch, degree AND weight at once", table);
  return report.write() ? 0 : 1;
}
