/// Experiment E6 — comparison against classical topology-control baselines
/// (§1.3: planar backbones [13-15,19], Yao graphs [20], MST, max power).
///
/// The whole table is produced through the api::AlgorithmRegistry — no
/// direct construction calls: every registered algorithm is swept with its
/// default options on one UDG workload (alpha=1 so every baseline is
/// well-defined) and emits one uniform JSON record (name, size, quality
/// metrics, build time, declared guarantees). A second sweep row re-runs the
/// paper's algorithm under the theorem-faithful strict preset.
///
/// LOCALSPAN_BENCH_QUICK=1 trims n for CI smoke runs; the record shape is
/// identical (tools/collect_bench.cmake validates it when aggregating).
#include <cstdio>
#include <cstdlib>

#include "api/spanner_algorithm.hpp"
#include "bench_util.hpp"
#include "core/params.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

namespace {

void add_row(benchutil::Table* table, const std::string& label, const std::string& preset,
             const api::BuildResult& res) {
  // Quality columns are stated in the row's own metric: "euclid" rows share
  // the input UDG as reference and compare directly; "reweighted" rows
  // (energy) are measured against their transformed reference graph and are
  // not unit-comparable with the euclid rows.
  const char* metric = res.metric_reference ? "reweighted" : "euclid";
  table->add_row({label, preset, metric, fmt_int(res.metrics.edges),
                  fmt(res.metrics.edges_per_node, 2), fmt_int(res.metrics.max_degree),
                  fmt(res.metrics.stretch, 3), fmt(res.metrics.lightness, 3),
                  fmt(res.metrics.power_ratio, 3), fmt(1e3 * res.seconds, 2),
                  res.guarantees.describe()});
}

}  // namespace

int main() {
  const bool quick = std::getenv("LOCALSPAN_BENCH_QUICK") != nullptr;
  const int n = quick ? 220 : 512;
  benchutil::JsonReport report("E6");
  report.meta("n", static_cast<long long>(n));
  report.meta("alpha", 1.0);
  report.meta("seed", static_cast<long long>(6));
  report.meta("quick", std::string(quick ? "yes" : "no"));
  std::printf("E6: registry sweep over every algorithm. n=%d, alpha=1.0 (UDG), d=2, uniform, seed=6\n",
              n);
  const auto inst = benchutil::standard_instance(n, 1.0, 6);
  const api::AlgorithmRegistry& reg = api::registry();
  const core::Params practical = core::Params::practical_params(0.5, 1.0);

  benchutil::Table table({"algo", "params", "metric", "edges", "edges/n", "max deg",
                          "stretch (cap 64)", "lightness", "power/ref", "build ms", "declared"});
  for (const std::string& name : reg.names()) {
    const api::BuildResult res = reg.build(name, api::BuildRequest{inst, practical, {}});
    const std::string violation = api::check_guarantees(inst, res);
    if (!violation.empty()) {
      std::fprintf(stderr, "E6: %s violated its declared guarantees: %s\n", name.c_str(),
                   violation.c_str());
      return 1;
    }
    add_row(&table, name, reg.at(name).info().caps.uses_params ? "practical" : "-", res);
  }
  // The theorem-faithful preset for the paper's algorithm, same pipeline
  // (and the same declared-guarantee gate — under strict params the relaxed
  // row additionally declares the lightness cap).
  const core::Params strict = core::Params::strict_params(0.5, 1.0);
  const api::BuildResult strict_res = reg.build("relaxed", api::BuildRequest{inst, strict, {}});
  const std::string strict_violation = api::check_guarantees(inst, strict_res);
  if (!strict_violation.empty()) {
    std::fprintf(stderr, "E6: relaxed (strict) violated its declared guarantees: %s\n",
                 strict_violation.c_str());
    return 1;
  }
  add_row(&table, "relaxed", "strict", strict_res);

  report.print("E6: only the paper's construction bounds stretch, degree AND weight at once", table);
  return report.write() ? 0 : 1;
}
