/// Experiment E17 — the distributed construction under an adversarial
/// asynchronous network (ROADMAP item 4).
///
/// The synchronous simulator (E4) charges one round per lockstep barrier;
/// here the Luby MIS phases run over the discrete-event AsyncNetwork behind
/// the reliable-delivery protocol, and we measure what realism costs:
/// physical transmissions (DATA + retransmits + ACKs + duplicates) versus
/// the app-level message count, and convergence in virtual time versus the
/// synchronous round count — across the fault matrix of adversary
/// intensities. Every row also re-states the robustness claim: terminated =
/// the protocol reached quiescence in every round, identical = the emitted
/// spanner is bit-identical to the synchronous build.
///
/// LOCALSPAN_BENCH_QUICK=1 trims the size sweep for CI smoke runs.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/distributed.hpp"
#include "runtime/async_network.hpp"
#include "runtime/parallel.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

namespace {

struct Preset {
  const char* name;
  runtime::AdversaryConfig cfg;
};

std::vector<Preset> presets() {
  std::vector<Preset> out;
  {
    runtime::AdversaryConfig c;
    out.push_back({"jitter-only", c});
  }
  {
    runtime::AdversaryConfig c;
    c.drop_prob = 0.05;
    out.push_back({"loss-0.05", c});
  }
  {
    runtime::AdversaryConfig c;
    c.drop_prob = 0.2;
    out.push_back({"loss-0.20", c});
  }
  {
    runtime::AdversaryConfig c;
    c.dup_prob = 0.2;
    c.reorder_prob = 0.3;
    out.push_back({"dup+reorder", c});
  }
  {
    runtime::AdversaryConfig c;
    c.straggler_fraction = 0.1;
    out.push_back({"straggler-0.1", c});
  }
  {
    runtime::AdversaryConfig c;
    c.drop_prob = 0.1;
    c.dup_prob = 0.1;
    c.reorder_prob = 0.2;
    c.straggler_fraction = 0.1;
    c.partitions.push_back({3.0, 20.0, 11});
    out.push_back({"combined", c});
  }
  return out;
}

}  // namespace

int main() {
  const bool quick = std::getenv("LOCALSPAN_BENCH_QUICK") != nullptr;
  benchutil::JsonReport report("E17");
  std::printf("E17: relaxed-dist on the adversarial async network vs the sync simulator.\n");
  std::printf("eps=0.5, alpha=0.75, d=2, uniform, seed 11 (same workload shape as E4)\n");
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  report.meta("eps", 0.5);
  report.meta("alpha", 0.75);
  report.meta("seed", 11LL);
  report.meta("quick", std::string(quick ? "yes" : "no"));
  report.meta("nproc", static_cast<long long>(runtime::hardware_threads()));

  const std::vector<int> sizes = quick ? std::vector<int>{256} : std::vector<int>{512, 2048};

  benchutil::Table table({"n", "adversary", "rounds", "app msgs", "transmissions", "overhead",
                          "retransmits", "drops", "dups", "acks", "convergence vtime",
                          "terminated", "identical"});
  for (int n : sizes) {
    const auto inst = benchutil::standard_instance(n, 0.75, 11);
    const auto sync_r = core::distributed_relaxed_greedy(inst, params, {}, 11);

    for (const Preset& p : presets()) {
      core::NetOptions net;
      net.mode = core::NetMode::kAsync;
      net.adversary = p.cfg;
      net.adversary.seed = 11ULL * 1000003ULL + static_cast<std::uint64_t>(n);

      bool terminated = true;
      bool identical = false;
      core::DistributedResult async_r{{graph::Graph(0), params, {}, 0, 0, 0}, {}, {}};
      try {
        async_r = core::distributed_relaxed_greedy(inst, params, {}, 11, net);
        identical = async_r.base.spanner == sync_r.base.spanner &&
                    async_r.net.rounds_measured == sync_r.net.rounds_measured &&
                    async_r.net.messages == sync_r.net.messages;
      } catch (const std::exception& e) {
        terminated = false;
        std::fprintf(stderr, "E17: %s n=%d FAILED to terminate: %s\n", p.name, n, e.what());
      }

      const core::AsyncNetSummary& a = async_r.net.async;
      // Physical transmissions include ACK frames; app msgs is the protocol
      // DATA count, which equals the synchronous message total of the same
      // MIS invocations.
      const long long app = a.protocol.data_sent;
      const double overhead =
          app > 0 ? static_cast<double>(a.physical.posted) / static_cast<double>(app) : 0.0;
      table.add_row({fmt_int(n), p.name, fmt_int(async_r.net.rounds_measured), fmt_int(app),
                     fmt_int(a.physical.posted), fmt(overhead, 2),
                     fmt_int(a.protocol.retransmits), fmt_int(a.physical.dropped),
                     fmt_int(a.physical.duplicated), fmt_int(a.protocol.acks_sent),
                     fmt(a.convergence_time, 1), terminated ? "yes" : "no",
                     identical ? "yes" : "no"});
    }
  }
  report.print("E17: message complexity + convergence under the fault matrix "
               "(terminated/identical must be yes on every row)",
               table);

  // Reference: the synchronous round/message counts this is measured against
  // (the E4 view of the same instances).
  benchutil::Table sync_table({"n", "rounds (Luby)", "rounds (KMW model)", "messages"});
  for (int n : sizes) {
    const auto inst = benchutil::standard_instance(n, 0.75, 11);
    const auto r = core::distributed_relaxed_greedy(inst, params, {}, 11);
    sync_table.add_row({fmt_int(n), fmt_int(r.net.rounds_measured),
                        fmt_int(r.net.rounds_kmw_model), fmt_int(r.net.messages)});
  }
  report.print("E17b: synchronous reference (E4 shape, same instances)", sync_table);
  return report.write() ? 0 : 1;
}
