/// Experiment E7 — generality over the α-UBG model (§1.1).
///
/// Sweep α and the adversarial gray-zone policy; the three guarantees must
/// hold for every combination (the paper's main point versus UDG-only
/// algorithms like [15]).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/relaxed_greedy.hpp"
#include "graph/metrics.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E7");
  std::printf("E7: alpha x gray-zone policy sweep. n=384, eps=0.5, d=2, uniform, seed=7\n");
  benchutil::Table table({"alpha", "policy", "|E(G)|", "stretch", "within t=1.5", "max deg",
                          "lightness"});
  for (double alpha : {0.4, 0.6, 0.8, 1.0}) {
    const core::Params params = core::Params::practical_params(0.5, alpha);
    for (int which = 0; which < 4; ++which) {
      std::unique_ptr<ubg::GrayZonePolicy> policy;
      switch (which) {
        case 0: policy = ubg::always_connect(); break;
        case 1: policy = ubg::never_connect(); break;
        case 2: policy = ubg::probabilistic(0.5, 17); break;
        default: policy = ubg::threshold(0.5 * (alpha + 1.0)); break;
      }
      ubg::UbgConfig cfg;
      cfg.n = 384;
      cfg.alpha = alpha;
      cfg.seed = 7;
      const auto inst = ubg::make_ubg(cfg, *policy);
      const auto result = core::relaxed_greedy(inst, params);
      const double stretch = graph::max_edge_stretch(inst.g, result.spanner);
      table.add_row({fmt(alpha, 1), policy->name(), fmt_int(inst.g.m()), fmt(stretch, 4),
                     stretch <= params.t * (1.0 + 1e-9) ? "yes" : "NO",
                     fmt_int(result.spanner.max_degree()),
                     fmt(graph::lightness(inst.g, result.spanner), 3)});
    }
  }
  report.print("E7: all three properties hold for every alpha and adversarial gray zone", table);
  return report.write() ? 0 : 1;
}
