/// Experiment E11 — the phase/bin structure of §2 and the edge funnel:
/// per bin, how many edges arrive, how many the θ-cone filter covers
/// (Lemma 3, Fig 1), how many candidates survive, how many become the unique
/// per-cluster-pair query edges, how many get added, and how many the
/// redundancy MIS removes. Also the m = O(log n) bin-count scaling.
#include <cstdio>

#include "bench_util.hpp"
#include "core/relaxed_greedy.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E11");
  std::printf("E11: phase structure. eps=0.5, alpha=0.75, d=2, uniform, seed=11\n");
  const core::Params params = core::Params::practical_params(0.5, 0.75);

  benchutil::Table scaling({"n", "total bins (m+1)", "nonempty bins", "phase-0 comps",
                            "covered total", "candidates total", "queries total",
                            "added total", "removed total"});
  for (int n : {128, 256, 512, 1024, 2048, 4096}) {
    const auto inst = benchutil::standard_instance(n, 0.75, 11);
    const auto result = core::relaxed_greedy(inst, params);
    long long covered = 0;
    long long cands = 0;
    long long queries = 0;
    long long added = 0;
    long long removed = 0;
    for (const core::PhaseStats& st : result.phases) {
      covered += st.covered;
      cands += st.candidates;
      queries += st.queries;
      added += st.added;
      removed += st.removed;
    }
    scaling.add_row({fmt_int(n), fmt_int(result.total_bins), fmt_int(result.nonempty_bins),
                     fmt_int(result.phase0_components), fmt_int(covered), fmt_int(cands),
                     fmt_int(queries), fmt_int(added), fmt_int(removed)});
  }
  report.print("E11: m = O(log n) bins; the covered/query funnel trims most edges", scaling);

  // Full per-phase funnel at one size.
  const auto inst = benchutil::standard_instance(1024, 0.75, 11);
  const auto result = core::relaxed_greedy(inst, params);
  benchutil::Table funnel({"bin", "W_lo", "W_hi", "|E_i|", "in spanner", "covered",
                           "candidates", "queries", "added", "removed", "clusters"});
  for (const core::PhaseStats& st : result.phases) {
    funnel.add_row({fmt_int(st.bin), fmt(st.w_lo, 4), fmt(st.w_hi, 4), fmt_int(st.edges_in_bin),
                    fmt_int(st.already_in_spanner), fmt_int(st.covered), fmt_int(st.candidates),
                    fmt_int(st.queries), fmt_int(st.added), fmt_int(st.removed),
                    fmt_int(st.clusters)});
  }
  report.print("E11b: per-phase funnel at n=1024 (lazy updates once per bin)", funnel);
  return report.write() ? 0 : 1;
}
