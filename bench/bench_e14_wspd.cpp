/// Experiment E14 — the computational-geometry reference line (§1.4):
/// WSPD spanners (Callahan–Kosaraju) and SEQ-GREEDY on the COMPLETE
/// Euclidean graph versus the paper's algorithm on the wireless α-UBG.
///
/// The point this table makes: CG constructions assume any pair can be
/// linked (they emit edges far longer than the radio range), so they do not
/// solve topology control — but they calibrate what "linear size, bounded
/// stretch" costs when the constraint is dropped.
#include <cstdio>

#include "bench_util.hpp"
#include "core/greedy.hpp"
#include "core/relaxed_greedy.hpp"
#include "graph/dijkstra.hpp"
#include "graph/metrics.hpp"
#include "wspd/wspd.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

namespace {

/// Max over sampled pairs of sp_topo(u,v) / |uv| (complete-graph stretch).
double complete_stretch(const std::vector<geom::Point>& pts, const graph::Graph& topo) {
  double worst = 1.0;
  const int n = static_cast<int>(pts.size());
  for (int u = 0; u < n; u += 3) {
    const graph::ShortestPaths sp = graph::dijkstra(topo, u);
    for (int v = 0; v < n; v += 5) {
      if (u == v) continue;
      const double direct = geom::distance(pts[static_cast<std::size_t>(u)],
                                           pts[static_cast<std::size_t>(v)]);
      if (direct == 0.0) continue;
      worst = std::max(worst, sp.dist[static_cast<std::size_t>(v)] / direct);
    }
  }
  return worst;
}

}  // namespace

int main() {
  benchutil::JsonReport report("E14");
  std::printf("E14: CG spanners on the complete graph vs topology control on the UBG.\n");
  std::printf("n=256, d=2, t=1.5, seed=14\n");
  const auto inst = benchutil::standard_instance(256, 0.75, 14);
  const int n = inst.g.n();

  // Complete Euclidean graph on the same points.
  graph::Graph complete(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      complete.add_edge(u, v, std::max(inst.dist(u, v), 1e-12));
    }
  }

  benchutil::Table table({"construction", "input", "edges", "edges/n",
                          "stretch vs its input", "max edge length", "max deg"});
  const auto row = [&](const char* name, const char* input, const graph::Graph& g,
                       double stretch) {
    double longest = 0.0;
    for (const graph::Edge& e : g.edges()) longest = std::max(longest, e.w);
    table.add_row({name, input, fmt_int(g.m()), fmt(static_cast<double>(g.m()) / n, 2),
                   fmt(stretch, 3), fmt(longest, 3), fmt_int(g.max_degree())});
  };

  const graph::Graph wspd = wspd::wspd_spanner(inst.points, 1.5);
  row("WSPD spanner (CK)", "complete", wspd, complete_stretch(inst.points, wspd));

  const graph::Graph greedy_complete = core::seq_greedy(complete, 1.5);
  row("SEQ-GREEDY", "complete", greedy_complete,
      complete_stretch(inst.points, greedy_complete));

  const core::Params params = core::Params::practical_params(0.5, 0.75);
  const auto relaxed = core::relaxed_greedy(inst, params);
  row("relaxed greedy (paper)", "alpha-UBG", relaxed.spanner,
      graph::max_edge_stretch(inst.g, relaxed.spanner));

  report.print("E14: CG constructions need radio-infeasible long edges; the paper's "
              "algorithm gets the same guarantees using network links only", table);
  return report.write() ? 0 : 1;
}
