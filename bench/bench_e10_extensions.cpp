/// Experiment E10 — the §1.6 extensions: energy-metric spanners (ext. 2),
/// the power-cost measure (ext. 3) and fault tolerance (ext. 1).
#include <cstdio>

#include "bench_util.hpp"
#include "core/relaxed_greedy.hpp"
#include "ext/energy.hpp"
#include "ext/fault_tolerant.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E10");
  std::printf("E10: section 1.6 extensions. n=384, alpha=0.75, d=2, seed=10\n");
  const auto inst = benchutil::standard_instance(384, 0.75, 10);
  const core::Params params = core::Params::practical_params(0.5, 0.75);

  // --- Energy spanners: run the relaxed algorithm under c·len^gamma weights
  // and evaluate against the energy-reweighted input graph.
  benchutil::Table energy({"gamma", "energy stretch", "within t=1.5", "max deg",
                           "power/maxpower", "edges/n"});
  for (double gamma : {1.0, 2.0, 3.0}) {
    core::RelaxedGreedyOptions opts;
    opts.weight_transform = ext::energy_transform(1.0, gamma);
    const auto result = core::relaxed_greedy(inst, params, opts);
    const graph::Graph reference = ext::energy_reweight(inst, inst.g, 1.0, gamma);
    const double stretch = graph::max_edge_stretch(reference, result.spanner);
    energy.add_row({fmt(gamma, 1), fmt(stretch, 4),
                    stretch <= params.t * (1.0 + 1e-9) ? "yes" : "NO",
                    fmt_int(result.spanner.max_degree()),
                    fmt(graph::power_cost(result.spanner) / graph::power_cost(reference), 3),
                    fmt(static_cast<double>(result.spanner.m()) / inst.g.n(), 2)});
  }
  report.print("E10a: energy spanners (weights c*len^gamma) keep all guarantees", energy);

  // --- Fault tolerance: build k-edge-FT greedy spanners and subject each to
  // random edge faults; report worst observed post-fault stretch over trials.
  benchutil::Table ft({"k", "edges/n", "lightness", "faults injected",
                       "worst post-fault stretch (cap 64)", "components preserved"});
  const double t = 1.5;
  for (int k : {0, 1, 2}) {
    const graph::Graph spanner = ext::fault_tolerant_greedy(inst.g, t, k);
    double worst = 1.0;
    bool connectivity = true;
    for (std::uint64_t trial = 0; trial < 8; ++trial) {
      std::vector<graph::Edge> removed;
      // Fault the spanner and the reference identically.
      graph::Graph faulted_spanner = spanner;
      graph::Graph faulted_g = inst.g;
      const graph::Graph tmp = ext::inject_edge_faults(spanner, k, 100 + trial, &removed);
      faulted_spanner = tmp;
      for (const graph::Edge& e : removed) faulted_g.remove_edge(e.u, e.v);
      worst = std::max(worst, graph::max_edge_stretch(faulted_g, faulted_spanner));
      connectivity = connectivity && graph::connected_components(faulted_g).count ==
                                         graph::connected_components(faulted_spanner).count;
    }
    ft.add_row({fmt_int(k), fmt(static_cast<double>(spanner.m()) / inst.g.n(), 2),
                fmt(graph::lightness(inst.g, spanner), 3), fmt_int(k),
                fmt(worst, 4), connectivity ? "yes" : "NO"});
  }
  report.print("E10b: k-edge fault tolerance (k faults leave a t-spanner of the survivor graph)", ft);

  // --- Vertex-fault variant: stronger guarantee, denser output. Subject the
  // k=1 backbone to single-vertex faults and report the worst stretch.
  benchutil::Table vft({"k", "edges/n (vertex FT)", "edges/n (edge FT)",
                        "worst stretch under 1 vertex fault (sampled)"});
  for (int k : {0, 1}) {
    const graph::Graph vspan = ext::fault_tolerant_greedy_vertex(inst.g, t, k);
    const graph::Graph espan = ext::fault_tolerant_greedy(inst.g, t, k);
    double worst = 1.0;
    for (int victim = 0; victim < inst.g.n(); victim += 23) {
      graph::Graph fs = vspan;
      graph::Graph fg = inst.g;
      for (graph::Graph* g2 : {&fs, &fg}) {
        std::vector<int> nbrs;
        for (const graph::Neighbor& nb : g2->neighbors(victim)) nbrs.push_back(nb.to);
        for (int to : nbrs) g2->remove_edge(victim, to);
      }
      worst = std::max(worst, graph::max_edge_stretch(fg, fs));
    }
    vft.add_row({fmt_int(k), fmt(static_cast<double>(vspan.m()) / inst.g.n(), 2),
                 fmt(static_cast<double>(espan.m()) / inst.g.n(), 2), fmt(worst, 4)});
  }
  report.print("E10c: k-vertex fault tolerance (k=1 bounds stretch under any single node failure)", vft);
  return report.write() ? 0 : 1;
}
