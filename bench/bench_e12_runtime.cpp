/// Experiment E12 (part 1) — sequential running-time scaling, the
/// Das–Narasimhan acceleration story of §1.4: naive SEQ-GREEDY re-runs a
/// bounded Dijkstra per edge on the growing spanner, while the relaxed
/// algorithm answers each bin's queries on the O(1)-hop cluster graph.
/// A second table measures the deterministic parallel construction runtime
/// (runtime/parallel.hpp): the relaxed build at 1/2/4/8 worker threads with
/// the speedup over the serial build — the output is bit-identical at every
/// thread count, so the column is pure wall-clock. The ablation table lives
/// in bench_e12b_ablation.
///
/// Emits the localspan BENCH_E12.json artifact (schema_version 1) so
/// tools/collect_bench.cmake can validate the threads/speedup columns.
/// LOCALSPAN_BENCH_QUICK=1 trims sizes for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/distributed.hpp"
#include "core/greedy.hpp"
#include "core/relaxed_greedy.hpp"
#include "runtime/parallel.hpp"

using namespace localspan;
namespace bu = localspan::benchutil;

namespace {

/// Best-of-`reps` wall time of fn(), in seconds.
template <class Fn>
double time_best(int reps, const Fn& fn) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  const bool quick = std::getenv("LOCALSPAN_BENCH_QUICK") != nullptr;
  const double eps = 0.5;
  const double alpha = 0.75;
  const int reps = quick ? 1 : 2;
  const core::Params practical = core::Params::practical_params(eps, alpha);
  const core::Params strict = core::Params::strict_params(eps, alpha);

  bu::JsonReport report("E12");
  report.meta("eps", eps);
  report.meta("alpha", alpha);
  report.meta("quick", std::string(quick ? "yes" : "no"));

  // Table 1: sequential runtime scaling across the algorithm family.
  {
    bu::Table table({"algo", "n", "m", "ms"});
    const std::vector<int> ns = quick ? std::vector<int>{128, 256}
                                      : std::vector<int>{128, 256, 512, 1024};
    for (int n : ns) {
      const ubg::UbgInstance inst = bu::standard_instance(n, alpha, 12);
      const double seq_ms =
          1e3 * time_best(reps, [&] { static_cast<void>(core::seq_greedy(inst.g, 1.5).m()); });
      table.add_row({"seq-greedy", bu::fmt_int(n), bu::fmt_int(inst.g.m()), bu::fmt(seq_ms)});
      const double rel_ms = 1e3 * time_best(reps, [&] {
        static_cast<void>(core::relaxed_greedy(inst, practical).spanner.m());
      });
      table.add_row(
          {"relaxed (practical)", bu::fmt_int(n), bu::fmt_int(inst.g.m()), bu::fmt(rel_ms)});
      if (n <= 512) {
        const double strict_ms = 1e3 * time_best(reps, [&] {
          static_cast<void>(core::relaxed_greedy(inst, strict).spanner.m());
        });
        table.add_row(
            {"relaxed (strict)", bu::fmt_int(n), bu::fmt_int(inst.g.m()), bu::fmt(strict_ms)});
      }
      if (n <= 512) {
        const double dist_ms = 1e3 * time_best(reps, [&] {
          static_cast<void>(core::distributed_relaxed_greedy(inst, practical, {}, 12));
        });
        table.add_row({"distributed", bu::fmt_int(n), bu::fmt_int(inst.g.m()), bu::fmt(dist_ms)});
      }
    }
    report.print("E12: sequential runtime scaling", table);
  }

  // Table 2: deterministic parallel construction scaling. One serial
  // reference per n; every other row reports speedup = serial / parallel
  // (the topologies are bit-identical, asserted by tests/test_parallel.cpp,
  // so wall time is the only thing that may differ).
  {
    bu::Table table({"n", "threads", "build ms", "speedup"});
    const std::vector<int> ns = quick ? std::vector<int>{256} : std::vector<int>{1024, 4096};
    const std::vector<int> threads = quick ? std::vector<int>{1, 2}
                                           : std::vector<int>{1, 2, 4, 8};
    for (int n : ns) {
      const ubg::UbgInstance inst = bu::standard_instance(n, alpha, 12);
      double serial_ms = 0.0;
      for (int t : threads) {
        core::RelaxedGreedyOptions opts;
        opts.threads = t;
        const double ms = 1e3 * time_best(reps, [&] {
          static_cast<void>(core::relaxed_greedy(inst, practical, opts).spanner.m());
        });
        if (t == 1) serial_ms = ms;
        table.add_row({bu::fmt_int(n), bu::fmt_int(t), bu::fmt(ms),
                       bu::fmt(serial_ms / std::max(ms, 1e-9), 2)});
      }
    }
    report.print("E12: parallel construction scaling (relaxed, practical)", table);
  }

  return report.write() ? 0 : 1;
}
