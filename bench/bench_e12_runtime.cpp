/// Experiment E12 (part 1) — sequential running-time scaling, the
/// Das–Narasimhan acceleration story of §1.4: naive SEQ-GREEDY re-runs a
/// bounded Dijkstra per edge on the growing spanner, while the relaxed
/// algorithm answers each bin's queries on the O(1)-hop cluster graph.
/// google-benchmark timings over an n sweep; the ablation table lives in
/// bench_e12b_ablation.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/distributed.hpp"
#include "core/greedy.hpp"
#include "core/relaxed_greedy.hpp"

using namespace localspan;

namespace {

const ubg::UbgInstance& cached_instance(int n) {
  static std::map<int, ubg::UbgInstance> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, benchutil::standard_instance(n, 0.75, 12)).first;
  }
  return it->second;
}

void BM_SeqGreedy(benchmark::State& state) {
  const auto& inst = cached_instance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::seq_greedy(inst.g, 1.5));
  }
  state.counters["m"] = static_cast<double>(inst.g.m());
}

void BM_RelaxedPractical(benchmark::State& state) {
  const auto& inst = cached_instance(static_cast<int>(state.range(0)));
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::relaxed_greedy(inst, params));
  }
}

void BM_RelaxedStrict(benchmark::State& state) {
  const auto& inst = cached_instance(static_cast<int>(state.range(0)));
  const core::Params params = core::Params::strict_params(0.5, 0.75);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::relaxed_greedy(inst, params));
  }
}

void BM_Distributed(benchmark::State& state) {
  const auto& inst = cached_instance(static_cast<int>(state.range(0)));
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  for (auto _ : state) {
    const auto result = core::distributed_relaxed_greedy(inst, params, {}, 12);
    benchmark::DoNotOptimize(result.base.spanner.m());
    state.counters["rounds"] = static_cast<double>(result.net.rounds_measured);
  }
}

}  // namespace

BENCHMARK(BM_SeqGreedy)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RelaxedPractical)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RelaxedStrict)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Distributed)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

// Like BENCHMARK_MAIN(), but defaults to also writing the machine-readable
// BENCH_E12.json artifact (same convention as the JsonReport benches) unless
// the caller passes an explicit --benchmark_out.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=" + benchutil::bench_json_path("E12");
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
