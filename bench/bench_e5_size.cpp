/// Experiment E5 — linear size |E'| = O(n) (§1.2).
///
/// The spanner's edges-per-node ratio must stay constant as n grows even
/// though the input α-UBG gets denser in absolute terms.
#include <cstdio>

#include "bench_util.hpp"
#include "core/relaxed_greedy.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E5");
  std::printf("E5: spanner size vs n. eps=0.5, alpha=0.75, d=2, uniform, seed=5\n");
  const core::Params practical = core::Params::practical_params(0.5, 0.75);
  const core::Params strict = core::Params::strict_params(0.5, 0.75);
  benchutil::Table table(
      {"n", "|E(G)|", "|E(G)|/n", "|E'| practical", "|E'|/n", "|E'| strict", "strict/n"});
  for (int n : {128, 256, 512, 1024, 2048, 4096}) {
    const auto inst = benchutil::standard_instance(n, 0.75, 5);
    const auto result = core::relaxed_greedy(inst, practical);
    std::string strict_m = "-";
    std::string strict_ratio = "-";
    if (n <= 1024) {
      const auto rs = core::relaxed_greedy(inst, strict);
      strict_m = fmt_int(rs.spanner.m());
      strict_ratio = fmt(static_cast<double>(rs.spanner.m()) / n, 2);
    }
    table.add_row({fmt_int(n), fmt_int(inst.g.m()),
                   fmt(static_cast<double>(inst.g.m()) / n, 2), fmt_int(result.spanner.m()),
                   fmt(static_cast<double>(result.spanner.m()) / n, 2), strict_m, strict_ratio});
  }
  report.print("E5: |E'|/n stays constant (linear-size spanner)", table);
  return report.write() ? 0 : 1;
}
