#pragma once
/// \file bench_util.hpp
/// Shared helpers for the experiment binaries E1..E12: instance
/// construction and markdown table printing. Each bench prints the
/// paper-shaped table documented in DESIGN.md §4 and EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "ubg/generator.hpp"

namespace localspan::benchutil {

inline std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

/// Minimal markdown table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(const std::string& title) const {
    std::printf("\n## %s\n\n", title.c_str());
    print_row(header_);
    std::vector<std::string> rule;
    rule.reserve(header_.size());
    for (const auto& h : header_) rule.push_back(std::string(std::max<std::size_t>(3, h.size()), '-'));
    print_row(rule);
    for (const auto& r : rows_) print_row(r);
    std::fflush(stdout);
  }

  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  void print_row(const std::vector<std::string>& cells) const {
    std::printf("|");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::size_t width = i < header_.size() ? std::max(header_[i].size(), cells[i].size())
                                                   : cells[i].size();
      std::printf(" %-*s |", static_cast<int>(width), cells[i].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// JSON string escaping per RFC 8259 (the cells we emit are plain ASCII, but
/// titles may contain quotes or backslashes).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Emit a table cell as a JSON number when the whole string parses as one
/// (so "0.75" and "512" become numbers, "yes" and "relaxed (strict)" stay
/// strings). Keeps the artifacts machine-readable without a schema per bench.
inline std::string json_cell(const std::string& s) {
  if (!s.empty()) {
    char* end = nullptr;
    std::strtod(s.c_str(), &end);
    if (end == s.c_str() + s.size()) return s;
  }
  std::string quoted = "\"";
  quoted += json_escape(s);
  quoted += '"';
  return quoted;
}

/// Where a bench's JSON artifact goes: `BENCH_<id>.json` in the working
/// directory, or under $LOCALSPAN_BENCH_JSON_DIR when set. Shared by
/// JsonReport and the google-benchmark bench so the convention lives once.
inline std::string bench_json_path(const std::string& id) {
  const char* dir = std::getenv("LOCALSPAN_BENCH_JSON_DIR");
  return (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string()) +
         "BENCH_" + id + ".json";
}

/// Machine-readable companion to the markdown tables: collects every table a
/// bench prints and writes `BENCH_<id>.json` (into $LOCALSPAN_BENCH_JSON_DIR,
/// default the working directory). This is the artifact future perf PRs are
/// compared against, so the shape is stable:
///
///   { "bench": "E1", "schema_version": 1,
///     "meta": {"n": 512, ...},
///     "tables": [ {"title": ..., "columns": [...], "rows": [[...], ...]} ] }
class JsonReport {
 public:
  explicit JsonReport(std::string id) : id_(std::move(id)) {}

  /// Record a run parameter ("n", "alpha", ...) for the meta block.
  void meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, value);
  }
  void meta(const std::string& key, double value) { meta(key, fmt(value, 6)); }
  void meta(const std::string& key, long long value) { meta(key, fmt_int(value)); }

  /// Print the markdown table to stdout AND record it for the JSON artifact.
  void print(const std::string& title, const Table& table) {
    table.print(title);
    add(title, table);
  }

  void add(const std::string& title, const Table& table) {
    tables_.emplace_back(title, table);
  }

  /// Attach an observability block (obs::to_json(obs::snapshot())) — emitted
  /// verbatim as the top-level "obs" member. collect_bench.cmake validates
  /// its shape when present.
  void set_obs(std::string obs_json) {
    while (!obs_json.empty() && (obs_json.back() == '\n' || obs_json.back() == ' ')) {
      obs_json.pop_back();
    }
    obs_json_ = std::move(obs_json);
  }

  /// Write BENCH_<id>.json. Returns false (after printing a diagnostic) on
  /// I/O failure so benches can surface it via their exit code.
  [[nodiscard]] bool write() const {
    const std::string path = bench_json_path(id_);
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "bench_util: cannot open %s for writing\n", path.c_str());
      return false;
    }
    os << "{\n  \"bench\": \"" << json_escape(id_) << "\",\n  \"schema_version\": 1,\n";
    os << "  \"meta\": {";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      if (i > 0) os << ", ";
      os << "\"" << json_escape(meta_[i].first) << "\": " << json_cell(meta_[i].second);
    }
    os << "},\n";
    if (!obs_json_.empty()) os << "  \"obs\": " << obs_json_ << ",\n";
    os << "  \"tables\": [\n";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const auto& [title, table] = tables_[t];
      os << "    {\"title\": \"" << json_escape(title) << "\",\n     \"columns\": [";
      const auto& header = table.header();
      for (std::size_t i = 0; i < header.size(); ++i) {
        if (i > 0) os << ", ";
        os << "\"" << json_escape(header[i]) << "\"";
      }
      os << "],\n     \"rows\": [\n";
      const auto& rows = table.rows();
      for (std::size_t r = 0; r < rows.size(); ++r) {
        os << "       [";
        for (std::size_t i = 0; i < rows[r].size(); ++i) {
          if (i > 0) os << ", ";
          os << json_cell(rows[r][i]);
        }
        os << "]" << (r + 1 < rows.size() ? "," : "") << "\n";
      }
      os << "     ]}" << (t + 1 < tables_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    os.flush();
    if (!os) {
      std::fprintf(stderr, "bench_util: write to %s failed\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string id_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::string obs_json_;
  std::vector<std::pair<std::string, Table>> tables_;
};

/// The standard workload: uniform placement, always-connect gray zone.
inline ubg::UbgInstance standard_instance(int n, double alpha, std::uint64_t seed, int dim = 2,
                                          ubg::Placement placement = ubg::Placement::kUniform) {
  ubg::UbgConfig cfg;
  cfg.n = n;
  cfg.alpha = alpha;
  cfg.dim = dim;
  cfg.placement = placement;
  cfg.seed = seed;
  return ubg::make_ubg(cfg);
}

}  // namespace localspan::benchutil
