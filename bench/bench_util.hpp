#pragma once
/// \file bench_util.hpp
/// Shared helpers for the experiment binaries E1..E12: instance
/// construction and markdown table printing. Each bench prints the
/// paper-shaped table documented in DESIGN.md §4 and EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <vector>

#include "ubg/generator.hpp"

namespace localspan::benchutil {

inline std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

/// Minimal markdown table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(const std::string& title) const {
    std::printf("\n## %s\n\n", title.c_str());
    print_row(header_);
    std::vector<std::string> rule;
    rule.reserve(header_.size());
    for (const auto& h : header_) rule.push_back(std::string(std::max<std::size_t>(3, h.size()), '-'));
    print_row(rule);
    for (const auto& r : rows_) print_row(r);
    std::fflush(stdout);
  }

 private:
  void print_row(const std::vector<std::string>& cells) const {
    std::printf("|");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::size_t width = i < header_.size() ? std::max(header_[i].size(), cells[i].size())
                                                   : cells[i].size();
      std::printf(" %-*s |", static_cast<int>(width), cells[i].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// The standard workload: uniform placement, always-connect gray zone.
inline ubg::UbgInstance standard_instance(int n, double alpha, std::uint64_t seed, int dim = 2,
                                          ubg::Placement placement = ubg::Placement::kUniform) {
  ubg::UbgConfig cfg;
  cfg.n = n;
  cfg.alpha = alpha;
  cfg.dim = dim;
  cfg.placement = placement;
  cfg.seed = seed;
  return ubg::make_ubg(cfg);
}

}  // namespace localspan::benchutil
