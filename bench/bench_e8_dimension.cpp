/// Experiment E8 — dimension generality d >= 2 (§1.1): the algorithm is
/// defined for d-dimensional α-UBGs, beyond the "flat world" of UDGs.
#include <cstdio>

#include "bench_util.hpp"
#include "core/relaxed_greedy.hpp"
#include "graph/metrics.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E8");
  std::printf("E8: dimension sweep. n=384, eps=0.5, alpha=0.7, uniform, seed=8\n");
  const core::Params params = core::Params::practical_params(0.5, 0.7);
  benchutil::Table table(
      {"d", "|E(G)|", "G max deg", "stretch", "within t=1.5", "G' max deg", "lightness",
       "|E'|/n"});
  for (int d : {2, 3, 4}) {
    const auto inst = benchutil::standard_instance(384, 0.7, 8, d);
    const auto result = core::relaxed_greedy(inst, params);
    const double stretch = graph::max_edge_stretch(inst.g, result.spanner);
    table.add_row({fmt_int(d), fmt_int(inst.g.m()), fmt_int(inst.g.max_degree()),
                   fmt(stretch, 4), stretch <= params.t * (1.0 + 1e-9) ? "yes" : "NO",
                   fmt_int(result.spanner.max_degree()),
                   fmt(graph::lightness(inst.g, result.spanner), 3),
                   fmt(static_cast<double>(result.spanner.m()) / inst.g.n(), 2)});
  }
  report.print("E8: guarantees carry to d = 3, 4 (degree constant grows with d, as the theory predicts)", table);
  return report.write() ? 0 : 1;
}
