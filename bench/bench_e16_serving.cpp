/// E16 — query serving: epoch-published snapshots + cluster-cover routing
/// oracle vs per-query Dijkstra, and end-to-end concurrent serving under
/// live churn.
///
/// Table 1 (static snapshot): one topology per n, published once; the
/// serving path (oracle labels with the exact-Dijkstra near/fallback
/// policy, i.e. exactly what QueryEngine::Reader::distance runs) is timed
/// against answering every query with a fresh early-exit Dijkstra. The
/// speedup is algorithmic — label lookups are ~O(label) while Dijkstra is
/// ~O(ball log ball) — so it holds on a 1-core container. Every timed
/// query is also checked against the exact distance: served >= exact and
/// served <= bound * exact (the oracle's declared stretch bound, 5 with
/// the default sigma = beta = 2); `stretch_ok` in meta reports the sweep's
/// verdict and collect_bench fails the artifact when it is not "yes".
///
/// Table 2 (concurrent serving): R reader threads issue distance/route
/// queries nonstop while the writer ingests churn windows through
/// DynamicSpanner::apply_batch; every commit republishes a snapshot via the
/// engine's commit hook, retiring the predecessor through the store's
/// grace-period protocol. Reported: aggregate qps, exact p50/p99/max query
/// latency (merged per-thread logs, so publish pauses show up as tail
/// latency, which is the claim under test), epochs published and the
/// oracle hit rate.
///
/// LOCALSPAN_BENCH_QUICK=1 trims sizes/queries for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/params.hpp"
#include "core/relaxed_greedy.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/dynamic_spanner.hpp"
#include "graph/sp_workspace.hpp"
#include "runtime/parallel.hpp"
#include "serve/query_engine.hpp"

using namespace localspan;
namespace bu = localspan::benchutil;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::pair<int, int>> draw_pairs(int n, int count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, n - 1);
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int s = pick(rng);
    int d = pick(rng);
    if (s == d) d = (d + 1) % n;
    pairs.emplace_back(s, d);
  }
  return pairs;
}

struct StaticCell {
  int n = 0;
  int m = 0;
  int levels = 0;
  double labels_per_v = 0.0;
  double publish_ms = 0.0;  ///< snapshot build incl. oracle labels.
  int queries = 0;
  double serve_us = 0.0;  ///< serving path, fallbacks included.
  double hit_pct = 0.0;
  int dij_timed = 0;
  double dij_us = 0.0;  ///< per-query early-exit Dijkstra baseline.
  double mean_stretch = 0.0;
  double max_stretch = 0.0;
  double bound = 0.0;
  bool stretch_ok = true;
};

StaticCell run_static(int n, int serve_queries, int dij_queries, const core::Params& params) {
  StaticCell cell;
  cell.n = n;
  cell.queries = serve_queries;
  const ubg::UbgInstance inst = bu::standard_instance(n, 0.75, 7);
  const graph::Graph spanner = core::relaxed_greedy(inst, params).spanner;
  cell.m = spanner.m();

  serve::QueryEngine qe;
  {
    const auto t0 = Clock::now();
    qe.publish(spanner, inst.points, params.t);
    cell.publish_ms = 1e3 * seconds_since(t0);
  }
  serve::QueryEngine::Reader reader = qe.reader();
  {
    const serve::SnapshotStore::ReadGuard snap = reader.pin();
    cell.levels = snap->oracle.levels();
    cell.labels_per_v =
        static_cast<double>(snap->oracle.total_label_entries()) / std::max(n, 1);
    cell.bound = snap->oracle.stretch_bound();
  }

  const std::vector<std::pair<int, int>> pairs = draw_pairs(n, serve_queries, 7);
  // Warm the reader workspace (first fallback sizes the buffers).
  for (int i = 0; i < std::min(serve_queries, 32); ++i) {
    static_cast<void>(reader.distance(pairs[static_cast<std::size_t>(i)].first,
                                      pairs[static_cast<std::size_t>(i)].second));
  }

  long long hits = 0;
  {
    const auto t0 = Clock::now();
    for (const auto& [s, d] : pairs) {
      if (reader.distance(s, d).via_oracle) ++hits;
    }
    cell.serve_us = 1e6 * seconds_since(t0) / std::max(serve_queries, 1);
  }
  cell.hit_pct = 100.0 * static_cast<double>(hits) / std::max(serve_queries, 1);

  // Per-query Dijkstra baseline on a prefix of the same pairs (the mean is
  // stable after a few hundred searches; full sweeps at n=100000 would
  // dominate the bench for no information).
  cell.dij_timed = std::min(dij_queries, serve_queries);
  const graph::CsrView csr(spanner);
  graph::DijkstraWorkspace ws(spanner.n());
  std::vector<double> exact(static_cast<std::size_t>(cell.dij_timed));
  {
    const auto t0 = Clock::now();
    for (int i = 0; i < cell.dij_timed; ++i) {
      exact[static_cast<std::size_t>(i)] =
          ws.distance(csr, pairs[static_cast<std::size_t>(i)].first,
                      pairs[static_cast<std::size_t>(i)].second);
    }
    cell.dij_us = 1e6 * seconds_since(t0) / std::max(cell.dij_timed, 1);
  }

  // Stretch audit over the exact prefix: served in [exact, bound * exact].
  double stretch_sum = 0.0;
  int stretch_count = 0;
  for (int i = 0; i < cell.dij_timed; ++i) {
    const double served = reader
                              .distance(pairs[static_cast<std::size_t>(i)].first,
                                        pairs[static_cast<std::size_t>(i)].second)
                              .distance;
    const double ex = exact[static_cast<std::size_t>(i)];
    if (ex == graph::kInf) {
      if (served != graph::kInf) cell.stretch_ok = false;
      continue;
    }
    const double tol = 1e-9 * std::max(1.0, ex);
    if (served < ex - tol || served > cell.bound * ex + tol) cell.stretch_ok = false;
    const double ratio = ex > 0.0 ? served / ex : 1.0;
    stretch_sum += ratio;
    cell.max_stretch = std::max(cell.max_stretch, ratio);
    ++stretch_count;
  }
  cell.mean_stretch = stretch_count > 0 ? stretch_sum / stretch_count : 1.0;
  return cell;
}

struct ChurnCell {
  int readers = 0;
  int queries_per_reader = 0;
  std::size_t events = 0;
  int windows = 0;
  std::uint64_t epochs = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  double hit_pct = 0.0;
  double repair_s = 0.0;
};

ChurnCell run_churn(const ubg::UbgInstance& inst, const dynamic::ChurnTrace& trace,
                    const core::Params& params, int readers, int queries, int batch) {
  ChurnCell cell;
  cell.readers = readers;
  cell.queries_per_reader = queries;
  cell.events = trace.events.size();
  const int n = inst.g.n();

  dynamic::DynamicSpanner engine(inst, params);
  serve::QueryEngine qe;
  qe.attach(engine);
  qe.publish(engine);

  struct ThreadLog {
    std::vector<std::int64_t> lat_ns;
    long long hits = 0;
    double seconds = 0.0;
  };
  std::vector<ThreadLog> logs(static_cast<std::size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers));
  for (int k = 0; k < readers; ++k) {
    threads.emplace_back([&qe, &logs, k, n, queries] {
      ThreadLog& log = logs[static_cast<std::size_t>(k)];
      serve::QueryEngine::Reader reader = qe.reader();
      std::mt19937_64 rng(0xC0FFEEu + static_cast<unsigned>(k));
      std::uniform_int_distribution<int> pick(0, n - 1);
      log.lat_ns.reserve(static_cast<std::size_t>(queries));
      const auto t0 = Clock::now();
      for (int q = 0; q < queries; ++q) {
        const int s = pick(rng);
        int d = pick(rng);
        if (s == d) d = (d + 1) % n;
        const auto q0 = Clock::now();
        if (q % 8 == 7) {
          static_cast<void>(reader.route(s, d));
        } else if (reader.distance(s, d).via_oracle) {
          ++log.hits;
        }
        log.lat_ns.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - q0).count());
      }
      log.seconds = seconds_since(t0);
    });
  }

  for (std::size_t i = 0; i < trace.events.size(); i += static_cast<std::size_t>(batch)) {
    const std::size_t len =
        std::min<std::size_t>(static_cast<std::size_t>(batch), trace.events.size() - i);
    cell.repair_s +=
        engine.apply_batch(std::span<const dynamic::ChurnEvent>(trace.events.data() + i, len))
            .seconds;
    ++cell.windows;
  }
  for (std::thread& t : threads) t.join();
  cell.epochs = qe.store().current_epoch();

  std::vector<std::int64_t> lat;
  long long hits = 0;
  double slowest = 0.0;
  for (const ThreadLog& log : logs) {
    lat.insert(lat.end(), log.lat_ns.begin(), log.lat_ns.end());
    hits += log.hits;
    slowest = std::max(slowest, log.seconds);
  }
  std::sort(lat.begin(), lat.end());
  const auto pct = [&lat](double p) {
    if (lat.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(p * (static_cast<double>(lat.size()) - 1.0));
    return static_cast<double>(lat[idx]) / 1e3;
  };
  cell.qps = slowest > 0.0 ? static_cast<double>(lat.size()) / slowest : 0.0;
  cell.p50_us = pct(0.50);
  cell.p99_us = pct(0.99);
  cell.max_us = pct(1.0);
  const long long distance_queries =
      static_cast<long long>(readers) * queries - static_cast<long long>(readers) * (queries / 8);
  cell.hit_pct = 100.0 * static_cast<double>(hits) / std::max(distance_queries, 1LL);
  return cell;
}

}  // namespace

int main() {
  const bool quick = std::getenv("LOCALSPAN_BENCH_QUICK") != nullptr;
  const double eps = 0.5;
  const double alpha = 0.75;
  const core::Params params = core::Params::practical_params(eps, alpha);

  bu::JsonReport report("E16");
  report.meta("eps", eps);
  report.meta("alpha", alpha);
  report.meta("quick", std::string(quick ? "yes" : "no"));
  report.meta("nproc", static_cast<long long>(runtime::hardware_threads()));

  bool stretch_ok = true;
  {
    // Oracle vs per-query Dijkstra. The n=100000 row is the scale leg the
    // ROADMAP names: labels answer in microseconds while a Dijkstra walks a
    // 10^5-node component.
    const std::vector<int> ns = quick ? std::vector<int>{512, 2048}
                                      : std::vector<int>{2048, 16384, 100000};
    const int serve_queries = quick ? 2000 : 20000;
    bu::Table table({"n", "m", "levels", "labels/v", "publish ms", "queries", "serve us/q",
                     "serve qps", "hit %", "dijkstra us/q", "dij timed", "speedup",
                     "mean stretch", "max stretch", "bound"});
    for (int n : ns) {
      const int dij_queries = n >= 100000 ? 200 : (quick ? 400 : 2000);
      const StaticCell cell = run_static(n, serve_queries, dij_queries, params);
      stretch_ok = stretch_ok && cell.stretch_ok;
      table.add_row({bu::fmt_int(cell.n), bu::fmt_int(cell.m), bu::fmt_int(cell.levels),
                     bu::fmt(cell.labels_per_v, 1), bu::fmt(cell.publish_ms, 1),
                     bu::fmt_int(cell.queries), bu::fmt(cell.serve_us, 3),
                     bu::fmt(1e6 / std::max(cell.serve_us, 1e-9), 0), bu::fmt(cell.hit_pct, 1),
                     bu::fmt(cell.dij_us, 3), bu::fmt_int(cell.dij_timed),
                     bu::fmt(cell.dij_us / std::max(cell.serve_us, 1e-9), 1),
                     bu::fmt(cell.mean_stretch, 4), bu::fmt(cell.max_stretch, 4),
                     bu::fmt(cell.bound, 2)});
    }
    report.print("E16: oracle-served distance queries vs per-query Dijkstra", table);
  }
  report.meta("stretch_ok", std::string(stretch_ok ? "yes" : "no"));

  {
    // Concurrent serving under churn: readers vs one repairing writer.
    const int n = quick ? 384 : 2048;
    const int events = quick ? 12 : 256;
    const int batch = quick ? 4 : 64;
    const int queries = quick ? 500 : 10000;
    const ubg::UbgInstance inst = bu::standard_instance(n, alpha, 7);
    dynamic::PoissonChurnConfig pc;
    pc.events = events;
    pc.seed = 7;
    const dynamic::ChurnTrace trace = dynamic::poisson_churn(inst, pc);

    bu::Table table({"n", "readers", "queries/rdr", "events", "windows", "epochs", "qps",
                     "p50 us", "p99 us", "max us", "hit %", "repair s"});
    for (int readers : quick ? std::vector<int>{2} : std::vector<int>{1, 2, 4}) {
      const ChurnCell cell = run_churn(inst, trace, params, readers, queries, batch);
      table.add_row({bu::fmt_int(n), bu::fmt_int(cell.readers),
                     bu::fmt_int(cell.queries_per_reader),
                     bu::fmt_int(static_cast<long long>(cell.events)), bu::fmt_int(cell.windows),
                     bu::fmt_int(static_cast<long long>(cell.epochs)), bu::fmt(cell.qps, 0),
                     bu::fmt(cell.p50_us, 1), bu::fmt(cell.p99_us, 1), bu::fmt(cell.max_us, 1),
                     bu::fmt(cell.hit_pct, 1), bu::fmt(cell.repair_s, 3)});
    }
    report.print("E16: concurrent serving under live churn (snapshot flips per window)", table);
  }

  if (!stretch_ok) std::printf("E16: STRETCH AUDIT FAILED — see stretch columns above\n");
  return report.write() && stretch_ok ? 0 : 1;
}
