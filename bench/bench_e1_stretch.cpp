/// Experiment E1 — the (1+ε)-spanner guarantee (Theorem 10, Fig 3).
///
/// For each ε, run every algorithm variant on the same α-UBG and report the
/// measured worst-case edge stretch against the bound t = 1+ε. The paper's
/// claim: measured <= t for the relaxed algorithms, for arbitrarily small ε —
/// the first topology-control construction with that property on α-UBGs.
#include <cstdio>

#include "bench_util.hpp"
#include "core/distributed.hpp"
#include "core/greedy.hpp"
#include "core/relaxed_greedy.hpp"
#include "graph/metrics.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E1");
  report.meta("n", 512LL);
  report.meta("alpha", 0.75);
  report.meta("dim", 2LL);
  report.meta("placement", "uniform");
  report.meta("seed", 1LL);
  std::printf("E1: stretch vs eps (Theorem 10). n=512, alpha=0.75, d=2, uniform, seed=1\n");
  const auto inst = benchutil::standard_instance(512, 0.75, 1);
  std::printf("input: m=%d, mean degree %.1f\n", inst.g.m(), 2.0 * inst.g.m() / inst.g.n());

  benchutil::Table table({"eps", "t=1+eps", "algorithm", "measured stretch", "within bound",
                          "edges", "max deg", "lightness"});
  for (double eps : {0.1, 0.25, 0.5, 1.0}) {
    struct Run {
      const char* name;
      graph::Graph g;
    };
    std::vector<Run> runs;
    const core::Params strict = core::Params::strict_params(eps, 0.75);
    const core::Params practical = core::Params::practical_params(eps, 0.75);
    runs.push_back({"relaxed-greedy (strict)", core::relaxed_greedy(inst, strict).spanner});
    runs.push_back({"relaxed-greedy (practical)", core::relaxed_greedy(inst, practical).spanner});
    runs.push_back(
        {"distributed (practical)",
         core::distributed_relaxed_greedy(inst, practical, {}, 1).base.spanner});
    runs.push_back({"SEQ-GREEDY (baseline)", core::seq_greedy(inst.g, 1.0 + eps)});
    for (const Run& run : runs) {
      const double stretch = graph::max_edge_stretch(inst.g, run.g);
      table.add_row({fmt(eps, 2), fmt(1.0 + eps, 2), run.name, fmt(stretch, 4),
                     stretch <= (1.0 + eps) * (1.0 + 1e-9) ? "yes" : "NO",
                     fmt_int(run.g.m()), fmt_int(run.g.max_degree()),
                     fmt(graph::lightness(inst.g, run.g), 3)});
    }
  }
  report.print("E1: measured stretch vs target t (all variants must satisfy <= t)", table);
  return report.write() ? 0 : 1;
}
