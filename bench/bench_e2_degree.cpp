/// Experiment E2 — constant maximum degree (Theorem 11, Fig 4).
///
/// Sweep n with everything else fixed; the spanner's max degree must stay
/// flat while the input graph's max degree grows with density/scale. The
/// strict parameterization is also run up to n=1024 to show its (smaller)
/// constant.
#include <cstdio>

#include "bench_util.hpp"
#include "core/relaxed_greedy.hpp"
#include "graph/metrics.hpp"

using namespace localspan;
using benchutil::fmt;
using benchutil::fmt_int;

int main() {
  benchutil::JsonReport report("E2");
  std::printf("E2: degree vs n (Theorem 11). eps=0.5, alpha=0.75, d=2, uniform\n");
  benchutil::Table table({"n", "G max deg", "G' max deg (practical)", "G' p99", "G' mean",
                          "G' max deg (strict)"});
  const core::Params practical = core::Params::practical_params(0.5, 0.75);
  const core::Params strict = core::Params::strict_params(0.5, 0.75);
  for (int n : {128, 256, 512, 1024, 2048, 4096}) {
    const auto inst = benchutil::standard_instance(n, 0.75, 7);
    const auto result = core::relaxed_greedy(inst, practical);
    const graph::DegreeStats st = graph::degree_stats(result.spanner);
    std::string strict_deg = "-";
    if (n <= 1024) {
      strict_deg = fmt_int(core::relaxed_greedy(inst, strict).spanner.max_degree());
    }
    table.add_row({fmt_int(n), fmt_int(inst.g.max_degree()), fmt_int(st.max), fmt_int(st.p99),
                   fmt(st.mean, 2), strict_deg});
  }
  report.print("E2: max degree stays O(1) while the input degree grows", table);
  return report.write() ? 0 : 1;
}
