#include "wspd/wspd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace localspan::wspd {

SplitTree::SplitTree(const std::vector<geom::Point>& pts) : pts_(&pts) {
  if (pts.empty()) throw std::invalid_argument("SplitTree: empty point set");
  std::vector<int> idx(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) idx[i] = static_cast<int>(i);
  nodes_.reserve(2 * pts.size());
  root_ = build(std::move(idx));
}

int SplitTree::build(std::vector<int> idx) {
  const int dim = (*pts_)[0].dim();
  Node nd;
  nd.lo = geom::Point(dim);
  nd.hi = geom::Point(dim);
  for (int k = 0; k < dim; ++k) {
    nd.lo[k] = 1e300;
    nd.hi[k] = -1e300;
  }
  for (int i : idx) {
    const geom::Point& p = (*pts_)[static_cast<std::size_t>(i)];
    for (int k = 0; k < dim; ++k) {
      nd.lo[k] = std::min(nd.lo[k], p[k]);
      nd.hi[k] = std::max(nd.hi[k], p[k]);
    }
  }
  nd.rep = idx.front();
  nd.points = idx;

  // Leaf: single point or a degenerate (all-coincident) box.
  double longest = 0.0;
  int axis = 0;
  for (int k = 0; k < dim; ++k) {
    const double side = nd.hi[k] - nd.lo[k];
    if (side > longest) {
      longest = side;
      axis = k;
    }
  }
  if (idx.size() == 1 || longest == 0.0) {
    nodes_.push_back(std::move(nd));
    return static_cast<int>(nodes_.size()) - 1;
  }

  const double mid = 0.5 * (nd.lo[axis] + nd.hi[axis]);
  std::vector<int> left_idx;
  std::vector<int> right_idx;
  for (int i : idx) {
    ((*pts_)[static_cast<std::size_t>(i)][axis] <= mid ? left_idx : right_idx).push_back(i);
  }
  // The bounding box is tight, so both sides are nonempty when longest > 0.
  const int l = build(std::move(left_idx));
  const int r = build(std::move(right_idx));
  nd.left = l;
  nd.right = r;
  nodes_.push_back(std::move(nd));
  return static_cast<int>(nodes_.size()) - 1;
}

double SplitTree::radius(int i) const {
  const Node& nd = node(i);
  double s = 0.0;
  for (int k = 0; k < nd.lo.dim(); ++k) {
    const double side = nd.hi[k] - nd.lo[k];
    s += side * side;
  }
  return 0.5 * std::sqrt(s);
}

double SplitTree::center_distance(int a, int b) const {
  const Node& na = node(a);
  const Node& nb = node(b);
  double s = 0.0;
  for (int k = 0; k < na.lo.dim(); ++k) {
    const double d = 0.5 * (na.lo[k] + na.hi[k]) - 0.5 * (nb.lo[k] + nb.hi[k]);
    s += d * d;
  }
  return std::sqrt(s);
}

double SplitTree::box_distance(int a, int b) const {
  const Node& na = node(a);
  const Node& nb = node(b);
  double s = 0.0;
  for (int k = 0; k < na.lo.dim(); ++k) {
    const double gap = std::max({0.0, na.lo[k] - nb.hi[k], nb.lo[k] - na.hi[k]});
    s += gap * gap;
  }
  return std::sqrt(s);
}

namespace {

bool well_separated(const SplitTree& tree, int a, int b, double s) {
  // Standard definition: enclose both sets in balls of radius
  // r = max(radius(a), radius(b)) at the box centers; they are s-well-
  // separated when the gap between the BALLS is at least s·r.
  const double r = std::max(tree.radius(a), tree.radius(b));
  return tree.center_distance(a, b) - 2.0 * r >= s * r;
}

void split_pairs(const SplitTree& tree, int a, int b, double s, std::vector<WsPair>& out) {
  if (well_separated(tree, a, b, s)) {
    out.push_back({a, b});
    return;
  }
  // Split the node with the larger enclosing ball (ties: the first).
  if (tree.radius(a) < tree.radius(b)) std::swap(a, b);
  if (tree.node(a).leaf()) {
    // Both leaves but not separated: only possible for coincident boxes of
    // distinct points collapsed to radius 0 at distance 0; treat as a pair.
    out.push_back({a, b});
    return;
  }
  split_pairs(tree, tree.node(a).left, b, s, out);
  split_pairs(tree, tree.node(a).right, b, s, out);
}

void all_pairs(const SplitTree& tree, int u, double s, std::vector<WsPair>& out) {
  const SplitTree::Node& nd = tree.node(u);
  if (nd.leaf()) return;
  all_pairs(tree, nd.left, s, out);
  all_pairs(tree, nd.right, s, out);
  split_pairs(tree, nd.left, nd.right, s, out);
}

}  // namespace

std::vector<WsPair> well_separated_pairs(const SplitTree& tree, double s) {
  if (!(s > 0.0)) throw std::invalid_argument("well_separated_pairs: s must be positive");
  std::vector<WsPair> out;
  all_pairs(tree, tree.root(), s, out);
  return out;
}

graph::Graph wspd_spanner(const std::vector<geom::Point>& pts, double t) {
  if (!(t > 1.0)) throw std::invalid_argument("wspd_spanner: t must be > 1");
  const SplitTree tree(pts);
  const double s = 4.0 * (t + 1.0) / (t - 1.0);
  graph::Graph g(static_cast<int>(pts.size()));
  for (const WsPair& pr : well_separated_pairs(tree, s)) {
    const int u = tree.node(pr.a).rep;
    const int v = tree.node(pr.b).rep;
    if (u == v) continue;
    const double w = geom::distance(pts[static_cast<std::size_t>(u)],
                                    pts[static_cast<std::size_t>(v)]);
    g.add_edge(u, v, std::max(w, 1e-12));
  }
  return g;
}

}  // namespace localspan::wspd
