#pragma once
/// \file wspd.hpp
/// Well-Separated Pair Decompositions and WSPD spanners (Callahan–Kosaraju).
///
/// §1.4 of the paper situates its contribution inside the computational-
/// geometry spanner line [2,3,4,5,12], whose second classical construction
/// (next to greedy) is the WSPD spanner: build a split tree over the point
/// set, decompose all pairs into O(s^d · n) well-separated set pairs, and
/// connect one representative pair per set pair. For separation
/// s >= 4(t+1)/(t-1) the result is a t-spanner of the COMPLETE Euclidean
/// graph with O(n) edges. We implement it as the §1.4 reference point
/// (experiment E14): unlike the paper's algorithm it is not a subgraph of
/// the wireless network G — it assumes any pair may be connected — which is
/// exactly the gap between CG spanners and topology control.

#include <vector>

#include "geom/point.hpp"
#include "graph/graph.hpp"

namespace localspan::wspd {

/// A fair-split tree over a point set (midpoint splits along the longest
/// box side; empty halves are skipped, singleton boxes become leaves).
class SplitTree {
 public:
  struct Node {
    std::vector<int> points;              ///< point ids in this subtree.
    geom::Point lo = geom::Point(2);      ///< bounding box corners (reassigned
    geom::Point hi = geom::Point(2);      ///< to the true dimension on build).
    int left = -1;
    int right = -1;
    int rep = -1;  ///< representative point id (first in subtree).

    [[nodiscard]] bool leaf() const noexcept { return left == -1; }
  };

  /// \throws std::invalid_argument on an empty point set.
  explicit SplitTree(const std::vector<geom::Point>& pts);

  [[nodiscard]] const Node& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int root() const noexcept { return root_; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(nodes_.size()); }

  /// Radius of the node's bounding-box enclosing ball (half diagonal).
  [[nodiscard]] double radius(int i) const;

  /// Minimum distance between the bounding boxes of two nodes.
  [[nodiscard]] double box_distance(int a, int b) const;

  /// Distance between the bounding-box centers of two nodes.
  [[nodiscard]] double center_distance(int a, int b) const;

 private:
  int build(std::vector<int> idx);

  const std::vector<geom::Point>* pts_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

/// One well-separated pair: indices of two split-tree nodes whose point sets
/// are s-well-separated (ball radius r each, distance >= s·r).
struct WsPair {
  int a;
  int b;
};

/// Compute an s-WSPD of the point set underlying `tree`.
/// \throws std::invalid_argument unless s > 0.
[[nodiscard]] std::vector<WsPair> well_separated_pairs(const SplitTree& tree, double s);

/// The WSPD t-spanner of the complete Euclidean graph on `pts`:
/// separation s = 4(t+1)/(t-1), one representative edge per pair.
/// \throws std::invalid_argument unless t > 1.
[[nodiscard]] graph::Graph wspd_spanner(const std::vector<geom::Point>& pts, double t);

}  // namespace localspan::wspd
