#include "io/trace_io.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace localspan::io {

namespace {

constexpr const char* kFormat = "localspan-churn-trace";
constexpr int kVersion = 1;
// 8-byte binary magic: format id + version byte + NUL padding.
constexpr char kBinaryMagic[8] = {'L', 'S', 'C', 'T', 'R', 'C', 1, 0};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("trace_io: " + what);
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// -------------------------------------------------------------------------
// JSON writing.
// -------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// -------------------------------------------------------------------------
// JSON reading: a strict little RFC-8259 parser producing a generic value
// tree, which the schema layer below interprets.
// -------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "' in JSON input");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = (c == 't');
        if (!consume_literal(c == 't' ? "true" : "false")) fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return {};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return v;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return v;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // The trace schema is pure ASCII; anything else is out of scope.
          if (code >= 0x80) fail("non-ASCII \\u escape unsupported in traces");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape in string");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    // Enforce the RFC 8259 number grammar before converting: strtod alone
    // would also accept hex floats, leading '+', '.5', '1.' and "inf".
    const std::size_t start = pos_;
    std::size_t p = pos_;
    const auto digits = [&]() {
      const std::size_t from = p;
      while (p < text_.size() && text_[p] >= '0' && text_[p] <= '9') ++p;
      return p > from;
    };
    if (p < text_.size() && text_[p] == '-') ++p;
    if (p < text_.size() && text_[p] == '0') {
      ++p;  // a leading zero stands alone
    } else if (!digits()) {
      fail("malformed JSON value");
    }
    if (p < text_.size() && text_[p] == '.') {
      ++p;
      if (!digits()) fail("malformed number: digits required after '.'");
    }
    if (p < text_.size() && (text_[p] == 'e' || text_[p] == 'E')) {
      ++p;
      if (p < text_.size() && (text_[p] == '+' || text_[p] == '-')) ++p;
      if (!digits()) fail("malformed number: digits required in exponent");
    }
    // Convert exactly the validated token (strtod on the full tail could
    // consume more, e.g. "0x10" after the grammar stopped at "0").
    const std::string token = text_.substr(start, p - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed JSON value");
    if (!std::isfinite(d)) fail("number out of double range");
    pos_ = p;
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

double get_number(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    fail(std::string("missing or non-numeric field '") + key + "'");
  }
  return v->number;
}

int get_int(const JsonValue& obj, const char* key) {
  const double d = get_number(obj, key);
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) fail(std::string("field '") + key + "' is not an integer");
  return i;
}

// -------------------------------------------------------------------------
// Binary record I/O. Fixed-width little-endian fields; the format targets
// same-architecture replay artifacts, and kBinaryMagic guards against
// cross-endian surprises only insofar as corrupt fields fail validation.
// -------------------------------------------------------------------------

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T take(std::istream& is) {
  T v{};
  if (!is.read(reinterpret_cast<char*>(&v), sizeof(T))) fail("truncated binary trace");
  return v;
}

// -------------------------------------------------------------------------
// Structural validation shared by both readers. The parsers above enforce
// the *syntax* (grammar, field types, arity); this enforces the *semantics*
// a replayer relies on: header ranges, finite monotone timestamps, node ids,
// in-box coordinates, and trace-local node liveness (a node the trace itself
// made live cannot join again; one it departed cannot leave or move). The
// checks are instance-free — dynamic::validate_trace still owns the deeper
// replay check against a concrete instance — so every load path, including
// the binary one whose raw doubles can smuggle NaN/infinity, yields a typed
// error instead of UB downstream.
// -------------------------------------------------------------------------

void validate_trace_structure(const dynamic::ChurnTrace& trace) {
  if (!std::isfinite(trace.alpha) || trace.alpha <= 0.0 || trace.alpha > 1.0) {
    fail("alpha out of range (0, 1]");
  }
  if (!std::isfinite(trace.side) || trace.side < 0.0) fail("side must be finite and >= 0");
  const double side_slack = trace.side * (1.0 + 1e-9);
  double prev_time = -std::numeric_limits<double>::infinity();
  // 0 = unknown (lives only in the seed instance, if anywhere), 1 = live in
  // trace, 2 = departed in trace.
  std::unordered_map<int, char> state;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const dynamic::ChurnEvent& ev = trace.events[i];
    const std::string at = "event " + std::to_string(i) + ": ";
    if (!std::isfinite(ev.time)) fail(at + "non-finite timestamp");
    if (ev.time < prev_time) fail(at + "non-monotone timestamp");
    prev_time = ev.time;
    if (ev.node < 0) fail(at + "negative node id");
    if (ev.kind != dynamic::EventKind::kLeave) {
      for (int k = 0; k < trace.dim; ++k) {
        const double c = ev.pos[k];
        if (!std::isfinite(c) || c < 0.0 || (trace.side > 0.0 && c > side_slack)) {
          fail(at + "position coordinate out of range [0, side]");
        }
      }
    }
    char& st = state[ev.node];
    switch (ev.kind) {
      case dynamic::EventKind::kJoin:
        if (st == 1) fail(at + "duplicate join of node " + std::to_string(ev.node));
        st = 1;
        break;
      case dynamic::EventKind::kLeave:
        if (st == 2) fail(at + "leave of node " + std::to_string(ev.node) + " after it departed");
        st = 2;
        break;
      case dynamic::EventKind::kMove:
        if (st == 2) fail(at + "move of node " + std::to_string(ev.node) + " after it departed");
        break;
    }
  }
}

}  // namespace

void write_trace_json(std::ostream& os, const dynamic::ChurnTrace& trace) {
  os << "{\n  \"format\": \"" << kFormat << "\",\n  \"version\": " << kVersion << ",\n";
  os << "  \"dim\": " << trace.dim << ",\n";
  os << "  \"alpha\": " << fmt_double(trace.alpha) << ",\n";
  os << "  \"side\": " << fmt_double(trace.side) << ",\n";
  os << "  \"events\": [";
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const dynamic::ChurnEvent& ev = trace.events[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"t\": " << fmt_double(ev.time) << ", \"kind\": \""
       << json_escape(dynamic::to_string(ev.kind)) << "\", \"node\": " << ev.node;
    if (ev.kind != dynamic::EventKind::kLeave) {
      os << ", \"pos\": [";
      for (int k = 0; k < trace.dim; ++k) os << (k ? ", " : "") << fmt_double(ev.pos[k]);
      os << "]";
    }
    os << "}";
  }
  os << (trace.events.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

dynamic::ChurnTrace read_trace_json(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const JsonValue root = JsonParser(buf.str()).parse();
  if (root.type != JsonValue::Type::kObject) fail("top-level JSON value must be an object");
  const JsonValue* format = root.find("format");
  if (format == nullptr || format->type != JsonValue::Type::kString || format->string != kFormat) {
    fail("not a churn trace (bad 'format' field)");
  }
  if (get_int(root, "version") != kVersion) fail("unsupported trace version");

  dynamic::ChurnTrace trace;
  trace.dim = get_int(root, "dim");
  if (trace.dim < 2 || trace.dim > geom::kMaxDim) fail("dim out of range");
  trace.alpha = get_number(root, "alpha");
  trace.side = get_number(root, "side");

  const JsonValue* events = root.find("events");
  if (events == nullptr || events->type != JsonValue::Type::kArray) fail("missing events array");
  trace.events.reserve(events->array.size());
  for (const JsonValue& e : events->array) {
    if (e.type != JsonValue::Type::kObject) fail("event must be an object");
    dynamic::ChurnEvent ev;
    ev.time = get_number(e, "t");
    ev.node = get_int(e, "node");
    const JsonValue* kind = e.find("kind");
    if (kind == nullptr || kind->type != JsonValue::Type::kString) fail("missing event kind");
    if (kind->string == "join") ev.kind = dynamic::EventKind::kJoin;
    else if (kind->string == "leave") ev.kind = dynamic::EventKind::kLeave;
    else if (kind->string == "move") ev.kind = dynamic::EventKind::kMove;
    else fail("unknown event kind '" + kind->string + "'");
    ev.pos = geom::Point(trace.dim);
    if (ev.kind != dynamic::EventKind::kLeave) {
      const JsonValue* pos = e.find("pos");
      if (pos == nullptr || pos->type != JsonValue::Type::kArray ||
          static_cast<int>(pos->array.size()) != trace.dim) {
        fail("event pos must be an array of dim numbers");
      }
      for (int k = 0; k < trace.dim; ++k) {
        const JsonValue& c = pos->array[static_cast<std::size_t>(k)];
        if (c.type != JsonValue::Type::kNumber) fail("pos coordinate must be a number");
        ev.pos[k] = c.number;
      }
    }
    trace.events.push_back(ev);
  }
  validate_trace_structure(trace);
  return trace;
}

void write_trace_binary(std::ostream& os, const dynamic::ChurnTrace& trace) {
  os.write(kBinaryMagic, sizeof(kBinaryMagic));
  put<std::int32_t>(os, trace.dim);
  put<double>(os, trace.alpha);
  put<double>(os, trace.side);
  put<std::uint64_t>(os, trace.events.size());
  for (const dynamic::ChurnEvent& ev : trace.events) {
    put<std::uint8_t>(os, static_cast<std::uint8_t>(ev.kind));
    put<std::int32_t>(os, ev.node);
    put<double>(os, ev.time);
    if (ev.kind != dynamic::EventKind::kLeave) {
      for (int k = 0; k < trace.dim; ++k) put<double>(os, ev.pos[k]);
    }
  }
}

dynamic::ChurnTrace read_trace_binary(std::istream& is) {
  char magic[sizeof(kBinaryMagic)] = {};
  if (!is.read(magic, sizeof(magic)) || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    fail("bad binary trace magic");
  }
  dynamic::ChurnTrace trace;
  trace.dim = take<std::int32_t>(is);
  if (trace.dim < 2 || trace.dim > geom::kMaxDim) fail("dim out of range");
  trace.alpha = take<double>(is);
  trace.side = take<double>(is);
  const std::uint64_t count = take<std::uint64_t>(is);
  // The count comes from an untrusted header: cap the up-front reservation
  // so a corrupt file fails with "truncated binary trace" below instead of
  // attempting an absurd allocation. (Genuine oversized traces still load —
  // the vector grows normally past the reservation.)
  trace.events.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    dynamic::ChurnEvent ev;
    const auto kind = take<std::uint8_t>(is);
    if (kind > 2) fail("corrupt event kind");
    ev.kind = static_cast<dynamic::EventKind>(kind);
    ev.node = take<std::int32_t>(is);
    ev.time = take<double>(is);
    ev.pos = geom::Point(trace.dim);
    if (ev.kind != dynamic::EventKind::kLeave) {
      for (int k = 0; k < trace.dim; ++k) ev.pos[k] = take<double>(is);
    }
    trace.events.push_back(ev);
  }
  validate_trace_structure(trace);
  return trace;
}

void save_trace(const std::string& path, const dynamic::ChurnTrace& trace) {
  const bool binary = path.size() >= 4 && path.compare(path.size() - 4, 4, ".ctb") == 0;
  std::ofstream os(path, binary ? std::ios::binary : std::ios::out);
  if (!os) throw std::runtime_error("save_trace: cannot open " + path);
  if (binary) write_trace_binary(os, trace);
  else write_trace_json(os, trace);
  if (!os) throw std::runtime_error("save_trace: write failed for " + path);
}

dynamic::ChurnTrace load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_trace: cannot open " + path);
  char magic[sizeof(kBinaryMagic)] = {};
  is.read(magic, sizeof(magic));
  const bool binary = is.gcount() == sizeof(magic) &&
                      std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0;
  is.clear();
  is.seekg(0);
  return binary ? read_trace_binary(is) : read_trace_json(is);
}

}  // namespace localspan::io
