#pragma once
/// \file trace_io.hpp
/// Serialization for churn traces (dynamic/churn.hpp), in two formats:
///
///  * JSON — human-readable interchange. Doubles are printed with 17
///    significant digits so replays are bit-exact; the reader is a small
///    strict RFC-8259 parser (objects/arrays/strings/numbers/bools/null)
///    specialized to the trace schema:
///
///      { "format": "localspan-churn-trace", "version": 1,
///        "dim": 2, "alpha": 0.75, "side": 6.73,
///        "events": [ {"t": 0.31, "kind": "join", "node": 12,
///                     "pos": [1.5, 0.25]}, ... ] }
///
///  * binary — compact replay artifact for big benchmark traces: an 8-byte
///    magic, little-endian fixed-width header, then one record per event.
///
/// `save_trace`/`load_trace` pick the format by file extension (".ctb" =
/// binary, anything else JSON); `load_trace` additionally sniffs the magic
/// so a misnamed file still loads.

#include <iosfwd>
#include <string>

#include "dynamic/churn.hpp"

namespace localspan::io {

void write_trace_json(std::ostream& os, const dynamic::ChurnTrace& trace);

/// \throws std::runtime_error on malformed JSON or schema mismatch.
[[nodiscard]] dynamic::ChurnTrace read_trace_json(std::istream& is);

void write_trace_binary(std::ostream& os, const dynamic::ChurnTrace& trace);

/// \throws std::runtime_error on bad magic, truncation or corrupt fields.
[[nodiscard]] dynamic::ChurnTrace read_trace_binary(std::istream& is);

/// File wrappers. \throws std::runtime_error on I/O failure.
void save_trace(const std::string& path, const dynamic::ChurnTrace& trace);
[[nodiscard]] dynamic::ChurnTrace load_trace(const std::string& path);

}  // namespace localspan::io
