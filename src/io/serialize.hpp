#pragma once
/// \file serialize.hpp
/// Persistence and interchange for instances and topologies.
///
/// Formats:
///  * instance text format (versioned, round-trippable): node coordinates +
///    edge list — lets experiments be archived and replayed exactly;
///  * Graphviz DOT with positions (`neato -n2` renders the layout) for
///    eyeballing spanners;
///  * CSV edge lists for spreadsheet/pandas post-processing of experiments.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "ubg/generator.hpp"

namespace localspan::io {

/// Write an instance (config, points, edges) to a stream in the versioned
/// text format. Exact doubles are preserved via hex floats.
void write_instance(std::ostream& os, const ubg::UbgInstance& inst);

/// Parse an instance written by write_instance.
/// \throws std::runtime_error on malformed input or version mismatch.
[[nodiscard]] ubg::UbgInstance read_instance(std::istream& is);

/// Convenience file wrappers. \throws std::runtime_error on I/O failure.
void save_instance(const std::string& path, const ubg::UbgInstance& inst);
[[nodiscard]] ubg::UbgInstance load_instance(const std::string& path);

/// Graphviz DOT of `topo` using the instance's 2-D positions (first two
/// coordinates when dim > 2). Spanner edges can be highlighted by passing
/// the spanner as `highlight` (its edges render bold/colored).
void write_dot(std::ostream& os, const ubg::UbgInstance& inst, const graph::Graph& topo,
               const graph::Graph* highlight = nullptr);

/// CSV edge list: "u,v,weight\n" rows with a header.
void write_edge_csv(std::ostream& os, const graph::Graph& g);

}  // namespace localspan::io
