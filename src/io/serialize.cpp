#include "io/serialize.hpp"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <system_error>

namespace localspan::io {

namespace {

constexpr const char* kMagic = "localspan-instance";
constexpr int kVersion = 1;

/// Strict numeric token reader: whitespace-delimited token, parsed with
/// std::from_chars over the *whole* token. Unlike stream extraction this is
/// locale-independent (a comma-decimal global locale cannot corrupt
/// round-trips) and rejects partial parses ("1.5x" is an error, not 1.5
/// with "x" silently left in the stream).
template <class T>
T read_number(std::istream& is, std::string& token, const char* what) {
  if (!(is >> token)) {
    throw std::runtime_error(std::string("read_instance: malformed input: ") + what);
  }
  T value{};
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const std::from_chars_result res = std::from_chars(first, last, value);
  if (res.ec != std::errc() || res.ptr != last) {
    throw std::runtime_error(std::string("read_instance: malformed input: ") + what + " '" +
                             token + "'");
  }
  return value;
}

ubg::Placement placement_from_int(int v) {
  switch (v) {
    case 0: return ubg::Placement::kUniform;
    case 1: return ubg::Placement::kClustered;
    case 2: return ubg::Placement::kCorridor;
    default: throw std::runtime_error("read_instance: unknown placement code");
  }
}

int placement_to_int(ubg::Placement p) {
  switch (p) {
    case ubg::Placement::kUniform: return 0;
    case ubg::Placement::kClustered: return 1;
    case ubg::Placement::kCorridor: return 2;
  }
  return 0;
}

void expect(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("read_instance: malformed input: ") + what);
}

}  // namespace

void write_instance(std::ostream& os, const ubg::UbgInstance& inst) {
  const ubg::UbgConfig& c = inst.config;
  // max_digits10 decimal digits round-trip IEEE doubles exactly (and, unlike
  // hexfloat, stream extraction can read them back).
  os << std::setprecision(17);
  os << kMagic << " v" << kVersion << "\n";
  os << c.n << ' ' << c.dim << ' ' << c.alpha << ' ' << c.side << ' ' << c.target_degree << ' '
     << placement_to_int(c.placement) << ' ' << c.seed << "\n";
  for (const auto& p : inst.points) {
    for (int k = 0; k < p.dim(); ++k) os << (k ? " " : "") << p[k];
    os << "\n";
  }
  os << inst.g.m() << "\n";
  for (const graph::Edge& e : inst.g.edges()) {
    os << e.u << ' ' << e.v << ' ' << e.w << "\n";
  }
}

ubg::UbgInstance read_instance(std::istream& is) {
  std::string magic;
  std::string version;
  expect(static_cast<bool>(is >> magic >> version), "header");
  expect(magic == kMagic, "magic");
  // Built via += rather than "v" + ...: GCC 12's -O3 inlining of the
  // operator+(const char*, string&&) overload trips a -Werror=restrict
  // false positive (GCC PR105651).
  std::string expected_version = "v";
  expected_version += std::to_string(kVersion);
  expect(version == expected_version, "version");
  ubg::UbgConfig cfg;
  std::string token;
  cfg.n = read_number<int>(is, token, "config n");
  cfg.dim = read_number<int>(is, token, "config dim");
  cfg.alpha = read_number<double>(is, token, "config alpha");
  cfg.side = read_number<double>(is, token, "config side");
  cfg.target_degree = read_number<double>(is, token, "config target_degree");
  const int placement_code = read_number<int>(is, token, "config placement");
  cfg.seed = read_number<std::uint64_t>(is, token, "config seed");
  cfg.placement = placement_from_int(placement_code);
  expect(cfg.n > 0 && cfg.dim >= 2 && cfg.dim <= geom::kMaxDim, "config ranges");

  ubg::UbgInstance inst{cfg, {}, graph::Graph(cfg.n)};
  inst.points.reserve(static_cast<std::size_t>(cfg.n));
  for (int i = 0; i < cfg.n; ++i) {
    geom::Point p(cfg.dim);
    for (int k = 0; k < cfg.dim; ++k) p[k] = read_number<double>(is, token, "point coordinate");
    inst.points.push_back(p);
  }
  const int m = read_number<int>(is, token, "edge count");
  expect(m >= 0, "edge count");
  for (int i = 0; i < m; ++i) {
    const int u = read_number<int>(is, token, "edge endpoint");
    const int v = read_number<int>(is, token, "edge endpoint");
    const double w = read_number<double>(is, token, "edge weight");
    inst.g.add_edge(u, v, w);
  }
  return inst;
}

void save_instance(const std::string& path, const ubg::UbgInstance& inst) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_instance: cannot open " + path);
  write_instance(os, inst);
  if (!os) throw std::runtime_error("save_instance: write failed for " + path);
}

ubg::UbgInstance load_instance(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_instance: cannot open " + path);
  return read_instance(is);
}

void write_dot(std::ostream& os, const ubg::UbgInstance& inst, const graph::Graph& topo,
               const graph::Graph* highlight) {
  os << "graph localspan {\n  node [shape=point, width=0.06];\n";
  // neato -n2 respects pos="x,y!"; scale up for readability.
  const double scale = 100.0;
  for (int v = 0; v < topo.n(); ++v) {
    const auto& p = inst.points[static_cast<std::size_t>(v)];
    os << "  " << v << " [pos=\"" << p[0] * scale << ',' << p[1] * scale << "!\"];\n";
  }
  for (const graph::Edge& e : topo.edges()) {
    os << "  " << e.u << " -- " << e.v;
    if (highlight != nullptr && highlight->has_edge(e.u, e.v)) {
      os << " [color=red, penwidth=2.0]";
    } else {
      os << " [color=gray80]";
    }
    os << ";\n";
  }
  os << "}\n";
}

void write_edge_csv(std::ostream& os, const graph::Graph& g) {
  os << "u,v,weight\n";
  for (const graph::Edge& e : g.edges()) {
    os << e.u << ',' << e.v << ',' << e.w << "\n";
  }
}

}  // namespace localspan::io
