#include "io/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace localspan::io {

namespace {

constexpr const char* kMagic = "localspan-instance";
constexpr int kVersion = 1;

ubg::Placement placement_from_int(int v) {
  switch (v) {
    case 0: return ubg::Placement::kUniform;
    case 1: return ubg::Placement::kClustered;
    case 2: return ubg::Placement::kCorridor;
    default: throw std::runtime_error("read_instance: unknown placement code");
  }
}

int placement_to_int(ubg::Placement p) {
  switch (p) {
    case ubg::Placement::kUniform: return 0;
    case ubg::Placement::kClustered: return 1;
    case ubg::Placement::kCorridor: return 2;
  }
  return 0;
}

void expect(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("read_instance: malformed input: ") + what);
}

}  // namespace

void write_instance(std::ostream& os, const ubg::UbgInstance& inst) {
  const ubg::UbgConfig& c = inst.config;
  // max_digits10 decimal digits round-trip IEEE doubles exactly (and, unlike
  // hexfloat, stream extraction can read them back).
  os << std::setprecision(17);
  os << kMagic << " v" << kVersion << "\n";
  os << c.n << ' ' << c.dim << ' ' << c.alpha << ' ' << c.side << ' ' << c.target_degree << ' '
     << placement_to_int(c.placement) << ' ' << c.seed << "\n";
  for (const auto& p : inst.points) {
    for (int k = 0; k < p.dim(); ++k) os << (k ? " " : "") << p[k];
    os << "\n";
  }
  os << inst.g.m() << "\n";
  for (const graph::Edge& e : inst.g.edges()) {
    os << e.u << ' ' << e.v << ' ' << e.w << "\n";
  }
}

ubg::UbgInstance read_instance(std::istream& is) {
  std::string magic;
  std::string version;
  expect(static_cast<bool>(is >> magic >> version), "header");
  expect(magic == kMagic, "magic");
  // Built via += rather than "v" + ...: GCC 12's -O3 inlining of the
  // operator+(const char*, string&&) overload trips a -Werror=restrict
  // false positive (GCC PR105651).
  std::string expected_version = "v";
  expected_version += std::to_string(kVersion);
  expect(version == expected_version, "version");
  ubg::UbgConfig cfg;
  int placement_code = 0;
  expect(static_cast<bool>(is >> cfg.n >> cfg.dim >> cfg.alpha >> cfg.side >>
                           cfg.target_degree >> placement_code >> cfg.seed),
         "config");
  cfg.placement = placement_from_int(placement_code);
  expect(cfg.n > 0 && cfg.dim >= 2 && cfg.dim <= geom::kMaxDim, "config ranges");

  ubg::UbgInstance inst{cfg, {}, graph::Graph(cfg.n)};
  inst.points.reserve(static_cast<std::size_t>(cfg.n));
  for (int i = 0; i < cfg.n; ++i) {
    geom::Point p(cfg.dim);
    for (int k = 0; k < cfg.dim; ++k) expect(static_cast<bool>(is >> p[k]), "point coordinate");
    inst.points.push_back(p);
  }
  int m = 0;
  expect(static_cast<bool>(is >> m) && m >= 0, "edge count");
  for (int i = 0; i < m; ++i) {
    int u = 0;
    int v = 0;
    double w = 0.0;
    expect(static_cast<bool>(is >> u >> v >> w), "edge");
    inst.g.add_edge(u, v, w);
  }
  return inst;
}

void save_instance(const std::string& path, const ubg::UbgInstance& inst) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_instance: cannot open " + path);
  write_instance(os, inst);
  if (!os) throw std::runtime_error("save_instance: write failed for " + path);
}

ubg::UbgInstance load_instance(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_instance: cannot open " + path);
  return read_instance(is);
}

void write_dot(std::ostream& os, const ubg::UbgInstance& inst, const graph::Graph& topo,
               const graph::Graph* highlight) {
  os << "graph localspan {\n  node [shape=point, width=0.06];\n";
  // neato -n2 respects pos="x,y!"; scale up for readability.
  const double scale = 100.0;
  for (int v = 0; v < topo.n(); ++v) {
    const auto& p = inst.points[static_cast<std::size_t>(v)];
    os << "  " << v << " [pos=\"" << p[0] * scale << ',' << p[1] * scale << "!\"];\n";
  }
  for (const graph::Edge& e : topo.edges()) {
    os << "  " << e.u << " -- " << e.v;
    if (highlight != nullptr && highlight->has_edge(e.u, e.v)) {
      os << " [color=red, penwidth=2.0]";
    } else {
      os << " [color=gray80]";
    }
    os << ";\n";
  }
  os << "}\n";
}

void write_edge_csv(std::ostream& os, const graph::Graph& g) {
  os << "u,v,weight\n";
  for (const graph::Edge& e : g.edges()) {
    os << e.u << ',' << e.v << ',' << e.w << "\n";
  }
}

}  // namespace localspan::io
