#include "ext/energy.hpp"

#include <cmath>
#include <stdexcept>

namespace localspan::ext {

std::function<double(double)> energy_transform(double c, double gamma) {
  if (!(c > 0.0)) throw std::invalid_argument("energy_transform: c must be > 0");
  if (!(gamma >= 1.0)) throw std::invalid_argument("energy_transform: gamma must be >= 1");
  return [c, gamma](double len) { return c * std::pow(len, gamma); };
}

graph::Graph energy_reweight(const ubg::UbgInstance& inst, const graph::Graph& g, double c,
                             double gamma) {
  const auto transform = energy_transform(c, gamma);
  graph::Graph out(g.n());
  for (const graph::Edge& e : g.edges()) {
    out.add_edge(e.u, e.v, transform(std::max(inst.dist(e.u, e.v), 1e-12)));
  }
  return out;
}

}  // namespace localspan::ext
