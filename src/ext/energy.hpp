#pragma once
/// \file energy.hpp
/// Extensions 2-3 of §1.6: energy metrics and the power-cost measure.
///
/// Radio energy grows superlinearly with range: transmitting across distance
/// L costs c·L^γ for a path-loss exponent γ >= 1 (2-4 in practice). The paper
/// states its algorithm still yields all three properties when edge weights
/// are c·|uv|^γ; we realize that by passing `energy_transform` as the
/// RelaxedGreedyOptions::weight_transform hook (bins stay on Euclidean
/// lengths; every weight and threshold is transformed consistently —
/// see DESIGN.md). The power cost of §1.6 is in graph/metrics.hpp.

#include <functional>

#include "graph/graph.hpp"
#include "ubg/generator.hpp"

namespace localspan::ext {

/// The weight transform len -> c·len^γ. \throws std::invalid_argument unless
/// c > 0 and gamma >= 1.
[[nodiscard]] std::function<double(double)> energy_transform(double c, double gamma);

/// Reweight a geometric graph's edges from Euclidean length to energy
/// c·len^γ (edge set unchanged). Used to build the energy-metric reference
/// graph that spanner stretch is measured against in E10.
[[nodiscard]] graph::Graph energy_reweight(const ubg::UbgInstance& inst, const graph::Graph& g,
                                           double c, double gamma);

}  // namespace localspan::ext
