#include "ext/fault_tolerant.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "graph/dijkstra.hpp"
#include "graph/sp_workspace.hpp"
#include "runtime/parallel.hpp"

namespace localspan::ext {

namespace {

/// Count pairwise edge-disjoint uv-paths of length <= bound in g, by greedy
/// peeling: repeatedly find a shortest bounded path, count it, delete its
/// edges. Stops at `needed`. `ws` is shared across all peels (and, by the
/// builders below, across all candidate edges).
int disjoint_bounded_paths(graph::DijkstraWorkspace& ws, graph::Graph g, int u, int v,
                           double bound, int needed) {
  int found = 0;
  while (found < needed) {
    const graph::SpView sp = ws.bounded_to(g, u, v, bound);
    if (sp.dist(v) > bound) break;
    ++found;
    for (int cur = v; sp.parent(cur) != -1;) {
      const int prev = sp.parent(cur);
      g.remove_edge(prev, cur);
      cur = prev;
    }
  }
  return found;
}

/// Count internally vertex-disjoint uv-paths of length <= bound, greedily:
/// find a shortest bounded path, count it, delete its interior vertices.
int disjoint_bounded_vertex_paths(graph::DijkstraWorkspace& ws, graph::Graph g, int u, int v,
                                  double bound, int needed) {
  int found = 0;
  while (found < needed) {
    const graph::SpView sp = ws.bounded_to(g, u, v, bound);
    if (sp.dist(v) > bound) break;
    ++found;
    // Collect the interior, then cut those vertices out of the working copy.
    std::vector<int> interior;
    for (int cur = sp.parent(v); cur != -1 && cur != u; cur = sp.parent(cur)) {
      interior.push_back(cur);
    }
    if (interior.empty()) {
      // The direct edge: remove it so the next peel finds another route.
      g.remove_edge(u, v);
      continue;
    }
    for (int w : interior) {
      std::vector<int> nbrs;
      for (const graph::Neighbor& nb : g.neighbors(w)) nbrs.push_back(nb.to);
      for (int to : nbrs) g.remove_edge(w, to);
    }
  }
  return found;
}

/// Shared driver for both greedy variants. `has_enough(ws, out, e)` answers
/// "does `out` already hold k+1 sufficiently short disjoint uv-paths?" — a
/// pure function of the output snapshot it is handed.
///
/// The serial loop checks each sorted edge against the current output. The
/// parallel path speculates: a wave of upcoming edges is checked against a
/// snapshot of `out` on the workers, then results are consumed in edge
/// order. A "skip" result is valid as long as no earlier wave edge was
/// added (the output is still exactly the snapshot); the first edge that
/// must be *added* invalidates the remaining results (the greedy peel count
/// is not monotone under edge insertion in either direction), so the wave
/// ends there and the next wave re-checks from the following edge. Consumed
/// decisions therefore always saw exactly the serial algorithm's output
/// state — the result is bit-identical at every thread count. The wave size
/// adapts: skip-only waves widen the window (the common regime once the
/// output is dense enough), an add shrinks it back toward one chunk per
/// worker to bound the speculation waste.
template <class HasEnough>
graph::Graph ft_greedy_drive(const graph::Graph& g, int threads, const HasEnough& has_enough) {
  std::vector<graph::Edge> es = g.edges();
  std::sort(es.begin(), es.end(), [](const graph::Edge& a, const graph::Edge& b) {
    if (a.w != b.w) return a.w < b.w;
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  graph::Graph out(g.n());
  const int nthreads = runtime::resolve_threads(threads);
  if (nthreads == 1) {
    graph::DijkstraWorkspace ws(g.n());
    for (const graph::Edge& e : es) {
      if (!has_enough(ws, out, e)) out.add_edge(e.u, e.v, e.w);
    }
    return out;
  }
  runtime::WorkerPool pool(nthreads);
  const int m = static_cast<int>(es.size());
  int wave_cap = pool.threads();
  const int wave_max = 16 * pool.threads();
  std::vector<char> enough;
  int idx = 0;
  while (idx < m) {
    const int wave = std::min(wave_cap, m - idx);
    enough.assign(static_cast<std::size_t>(wave), 0);
    pool.for_each(0, wave, [&](int worker, int i) {
      enough[static_cast<std::size_t>(i)] =
          has_enough(pool.workspace(worker), out, es[static_cast<std::size_t>(idx + i)]) ? 1 : 0;
    });
    int consumed = 0;
    bool added = false;
    for (int i = 0; i < wave; ++i) {
      const graph::Edge& e = es[static_cast<std::size_t>(idx + i)];
      if (enough[static_cast<std::size_t>(i)]) {
        ++consumed;
        continue;
      }
      out.add_edge(e.u, e.v, e.w);
      ++consumed;
      added = true;
      break;  // output changed: the rest of the wave saw a stale snapshot
    }
    idx += consumed;
    wave_cap = added ? std::max(pool.threads(), wave_cap / 2) : std::min(wave_cap * 2, wave_max);
  }
  return out;
}

}  // namespace

graph::Graph fault_tolerant_greedy_vertex(const graph::Graph& g, double t, int k, int threads) {
  if (!(t >= 1.0)) throw std::invalid_argument("fault_tolerant_greedy_vertex: t must be >= 1");
  if (k < 0) throw std::invalid_argument("fault_tolerant_greedy_vertex: k must be >= 0");
  return ft_greedy_drive(g, threads,
                         [&](graph::DijkstraWorkspace& ws, const graph::Graph& out,
                             const graph::Edge& e) {
                           return disjoint_bounded_vertex_paths(ws, out, e.u, e.v, t * e.w,
                                                                k + 1) >= k + 1;
                         });
}

graph::Graph fault_tolerant_greedy(const graph::Graph& g, double t, int k, int threads) {
  if (!(t >= 1.0)) throw std::invalid_argument("fault_tolerant_greedy: t must be >= 1");
  if (k < 0) throw std::invalid_argument("fault_tolerant_greedy: k must be >= 0");
  return ft_greedy_drive(g, threads,
                         [&](graph::DijkstraWorkspace& ws, const graph::Graph& out,
                             const graph::Edge& e) {
                           return disjoint_bounded_paths(ws, out, e.u, e.v, t * e.w, k + 1) >=
                                  k + 1;
                         });
}

graph::Graph inject_edge_faults(const graph::Graph& g, int faults, std::uint64_t seed,
                                std::vector<graph::Edge>* removed) {
  if (faults < 0) throw std::invalid_argument("inject_edge_faults: negative fault count");
  graph::Graph out = g;
  std::vector<graph::Edge> es = g.edges();
  std::mt19937_64 rng(seed);
  std::shuffle(es.begin(), es.end(), rng);
  const int kill = std::min<int>(faults, static_cast<int>(es.size()));
  if (removed != nullptr) removed->clear();
  for (int i = 0; i < kill; ++i) {
    out.remove_edge(es[static_cast<std::size_t>(i)].u, es[static_cast<std::size_t>(i)].v);
    if (removed != nullptr) removed->push_back(es[static_cast<std::size_t>(i)]);
  }
  return out;
}

graph::Graph inject_vertex_faults(const graph::Graph& g, int faults, std::uint64_t seed,
                                  std::vector<int>* removed_vertices) {
  if (faults < 0) throw std::invalid_argument("inject_vertex_faults: negative fault count");
  graph::Graph out = g;
  std::vector<int> ids(static_cast<std::size_t>(g.n()));
  for (int i = 0; i < g.n(); ++i) ids[static_cast<std::size_t>(i)] = i;
  std::mt19937_64 rng(seed);
  std::shuffle(ids.begin(), ids.end(), rng);
  const int kill = std::min<int>(faults, g.n());
  if (removed_vertices != nullptr) removed_vertices->clear();
  for (int i = 0; i < kill; ++i) {
    const int victim = ids[static_cast<std::size_t>(i)];
    // Copy the neighbor list: remove_edge mutates adjacency under iteration.
    std::vector<int> nbrs;
    for (const graph::Neighbor& nb : out.neighbors(victim)) nbrs.push_back(nb.to);
    for (int to : nbrs) out.remove_edge(victim, to);
    if (removed_vertices != nullptr) removed_vertices->push_back(victim);
  }
  return out;
}

}  // namespace localspan::ext
