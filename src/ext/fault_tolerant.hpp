#pragma once
/// \file fault_tolerant.hpp
/// Extension 1 of §1.6: k-fault-tolerant spanners (ideas from Czumaj–Zhao [2]).
///
/// A k-edge fault-tolerant t-spanner G' of G guarantees that for every edge
/// set F, |F| <= k, G'−F is a t-spanner of G−F. The paper only sketches this
/// extension; we implement the greedy edge-fault variant: process edges in
/// non-decreasing weight; keep {u,v} unless the current output already holds
/// k+1 pairwise edge-disjoint uv-paths each of length <= t·w(u,v). Disjoint
/// paths are peeled greedily (shortest first), which can only over-include
/// edges — never violating the fault-tolerance property being built.
/// Experiment E10 injects random faults and re-measures stretch.

#include <cstdint>

#include "graph/graph.hpp"

namespace localspan::ext {

/// Greedy k-edge fault-tolerant t-spanner.
/// k = 0 degenerates to the classical SEQ-GREEDY.
///
/// `threads` > 1 runs the per-edge peeling checks speculatively in parallel
/// waves: a wave of upcoming edges is checked against a snapshot of the
/// output, and results are consumed in sorted-edge order up to (and
/// including) the first edge that gets added — later results saw a stale
/// output and are recomputed in the next wave, so the output is
/// bit-identical to the serial greedy at every thread count. <= 0 uses the
/// process default (LOCALSPAN_THREADS, else 1).
/// \throws std::invalid_argument unless t >= 1 and k >= 0.
[[nodiscard]] graph::Graph fault_tolerant_greedy(const graph::Graph& g, double t, int k,
                                                 int threads = 0);

/// Greedy k-VERTEX fault-tolerant t-spanner (§1.6 names this variant first):
/// keep {u,v} unless the output already holds k+1 internally vertex-disjoint
/// uv-paths of length <= t·w(u,v) (greedy peel of interior vertices).
/// Vertex-disjointness implies edge-disjointness, so this output also
/// survives k edge faults; it is denser than the edge variant.
/// `threads` as in fault_tolerant_greedy (bit-identical speculative waves).
[[nodiscard]] graph::Graph fault_tolerant_greedy_vertex(const graph::Graph& g, double t, int k,
                                                        int threads = 0);

/// Remove `faults` random edges (seeded) from a copy of `g'` — the fault
/// injector for the E10 resilience measurements. Returns the faulted copy
/// and writes the removed edges to `removed` when non-null.
[[nodiscard]] graph::Graph inject_edge_faults(const graph::Graph& g, int faults,
                                              std::uint64_t seed,
                                              std::vector<graph::Edge>* removed = nullptr);

/// Remove `faults` random vertices (all incident edges) from a copy of g.
/// Vertex ids are preserved; the victims are reported via `removed_vertices`.
[[nodiscard]] graph::Graph inject_vertex_faults(const graph::Graph& g, int faults,
                                                std::uint64_t seed,
                                                std::vector<int>* removed_vertices = nullptr);

}  // namespace localspan::ext
