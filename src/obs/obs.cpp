/// \file obs.cpp
/// Slab-per-thread observability backend. See obs.hpp for the contract.
///
/// Layout: a leaked singleton Registry holds the name tables, the list of
/// live slabs (one per thread that ever recorded), retired integer totals,
/// preserved trace events of exited threads, and a slab free list so a
/// process that churns ThreadPools reuses slab memory instead of growing.
/// Hot-path writes touch only the calling thread's slab with relaxed
/// atomics (single writer; the scraper reads relaxed — no torn values, no
/// TSan reports). Trace events publish through a release store of the
/// per-slab event count; the scraper's acquire load makes the event bytes
/// visible.

#include "obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace localspan::obs {

namespace {

constexpr int kMaxCounters = 192;
constexpr int kMaxGauges = 32;
constexpr int kMaxHistograms = 48;
constexpr int kMaxSpans = 64;
constexpr int kHistBuckets = 128;  ///< base-sqrt(2) buckets cover all int64.
constexpr int kMaxEvents = 16384;  ///< per-thread trace buffer (then drop).
constexpr int kLabelCap = 32;

struct TraceEvent {
  std::int32_t span = 0;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

/// One thread's metric storage. Owner writes relaxed; scraper reads
/// relaxed (integers — order-independent sums). ~0.5 MB, heap-allocated.
struct Slab {
  std::atomic<std::int64_t> counters[kMaxCounters] = {};
  std::atomic<std::int64_t> gauges[kMaxGauges] = {};
  std::atomic<std::int64_t> hist[kMaxHistograms][kHistBuckets] = {};
  std::atomic<std::int64_t> hist_sum[kMaxHistograms] = {};
  std::atomic<std::int64_t> hist_max[kMaxHistograms] = {};
  std::atomic<std::int64_t> span_count[kMaxSpans] = {};
  std::atomic<std::int64_t> span_ns[kMaxSpans] = {};
  TraceEvent events[kMaxEvents];
  std::atomic<std::int32_t> event_count{0};
  std::atomic<std::int64_t> events_dropped{0};
  char label[kLabelCap] = {};  ///< guarded by Registry::mu.
  int tid = 0;

  void zero() noexcept {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : gauges) g.store(0, std::memory_order_relaxed);
    for (auto& row : hist) {
      for (auto& b : row) b.store(0, std::memory_order_relaxed);
    }
    for (auto& s : hist_sum) s.store(0, std::memory_order_relaxed);
    for (auto& m : hist_max) m.store(0, std::memory_order_relaxed);
    for (auto& c : span_count) c.store(0, std::memory_order_relaxed);
    for (auto& n : span_ns) n.store(0, std::memory_order_relaxed);
    event_count.store(0, std::memory_order_relaxed);
    events_dropped.store(0, std::memory_order_relaxed);
  }
};

/// Integer totals folded out of retired slabs (plain fields; Registry::mu).
struct RetiredTotals {
  std::int64_t counters[kMaxCounters] = {};
  std::int64_t gauges[kMaxGauges] = {};
  std::int64_t hist[kMaxHistograms][kHistBuckets] = {};
  std::int64_t hist_sum[kMaxHistograms] = {};
  std::int64_t hist_max[kMaxHistograms] = {};
  std::int64_t span_count[kMaxSpans] = {};
  std::int64_t span_ns[kMaxSpans] = {};
  std::int64_t events_dropped = 0;
};

/// Trace events preserved from an exited thread.
struct RetiredTrack {
  int tid = 0;
  std::string label;
  std::vector<TraceEvent> events;
};

struct Registry {
  std::mutex mu;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;
  std::vector<std::string> span_names;
  std::vector<Slab*> live;
  std::vector<Slab*> free_list;
  RetiredTotals retired;
  std::vector<RetiredTrack> retired_tracks;
  int next_tid = 0;
  std::chrono::steady_clock::time_point anchor = std::chrono::steady_clock::now();
};

/// Leaked: slabs of still-live threads may outlast static destruction.
Registry& reg() {
  static Registry* r = new Registry;
  return *r;
}

MetricId intern(std::vector<std::string>& names, const std::string& name, int cap,
                const char* kind) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<MetricId>(i);
  }
  if (static_cast<int>(names.size()) >= cap) {
    throw std::length_error(std::string("obs: ") + kind + " capacity exhausted at '" + name + "'");
  }
  names.push_back(name);
  return static_cast<MetricId>(names.size() - 1);
}

Slab* acquire_slab() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  Slab* s;
  if (!r.free_list.empty()) {
    s = r.free_list.back();
    r.free_list.pop_back();
  } else {
    s = new Slab;
  }
  s->tid = r.next_tid++;
  s->label[0] = '\0';
  r.live.push_back(s);
  return s;
}

void retire_slab(Slab* s) noexcept {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  RetiredTotals& t = r.retired;
  for (int i = 0; i < kMaxCounters; ++i) {
    t.counters[i] += s->counters[i].load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kMaxGauges; ++i) {
    t.gauges[i] = std::max(t.gauges[i], s->gauges[i].load(std::memory_order_relaxed));
  }
  for (int i = 0; i < kMaxHistograms; ++i) {
    for (int b = 0; b < kHistBuckets; ++b) {
      t.hist[i][b] += s->hist[i][b].load(std::memory_order_relaxed);
    }
    t.hist_sum[i] += s->hist_sum[i].load(std::memory_order_relaxed);
    t.hist_max[i] = std::max(t.hist_max[i], s->hist_max[i].load(std::memory_order_relaxed));
  }
  for (int i = 0; i < kMaxSpans; ++i) {
    t.span_count[i] += s->span_count[i].load(std::memory_order_relaxed);
    t.span_ns[i] += s->span_ns[i].load(std::memory_order_relaxed);
  }
  t.events_dropped += s->events_dropped.load(std::memory_order_relaxed);
  const int n = s->event_count.load(std::memory_order_acquire);
  if (n > 0) {
    RetiredTrack track;
    track.tid = s->tid;
    track.label = s->label;
    track.events.assign(s->events, s->events + n);
    r.retired_tracks.push_back(std::move(track));
  }
  r.live.erase(std::remove(r.live.begin(), r.live.end(), s), r.live.end());
  s->zero();
  r.free_list.push_back(s);
}

struct SlabOwner {
  Slab* s = nullptr;
  ~SlabOwner() {
    if (s != nullptr) retire_slab(s);
  }
};

Slab* my_slab() {
  thread_local SlabOwner owner;
  if (owner.s == nullptr) owner.s = acquire_slab();  // once per thread.
  return owner.s;
}

/// Single-writer add: cheaper than fetch_add, identical semantics here.
inline void bump(std::atomic<std::int64_t>& slot, std::int64_t delta) noexcept {
  slot.store(slot.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

/// Base-sqrt(2) bucket index: 0 holds v <= 0; bucket 1 + 2b + half holds
/// [2^b, 1.5*2^b) (half=0) and [1.5*2^b, 2^(b+1)) (half=1).
int bucket_index(std::int64_t v) noexcept {
  if (v <= 0) return 0;
  const auto u = static_cast<std::uint64_t>(v);
  const int b = std::bit_width(u) - 1;
  const int half = (b >= 1 && u >= (std::uint64_t{3} << (b - 1))) ? 1 : 0;
  const int idx = 1 + 2 * b + half;
  return idx < kHistBuckets ? idx : kHistBuckets - 1;
}

/// Geometric midpoint of the bucket's [lo, hi) range — the quantile
/// representative (relative error <= 2^(1/4) by construction).
double bucket_rep(int idx) noexcept {
  if (idx <= 0) return 0.0;
  const int b = (idx - 1) / 2;
  const int half = (idx - 1) % 2;
  const double lo = half != 0 ? 3.0 * std::ldexp(1.0, b - 1) : std::ldexp(1.0, b);
  const double hi = half != 0 ? std::ldexp(1.0, b + 1) : 3.0 * std::ldexp(1.0, b - 1);
  return std::sqrt(lo * hi);
}

double quantile_from_buckets(const std::int64_t* buckets, std::int64_t count, double q) noexcept {
  if (count <= 0) return 0.0;
  const auto rank = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count)));
  std::int64_t seen = 0;
  for (int i = 0; i < kHistBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank && buckets[i] > 0) return bucket_rep(i);
    if (seen >= rank) {
      // rank fell on an empty tail of a bucket run; keep scanning for the
      // next populated bucket (can only happen with rank<=0 edge cases).
      for (int j = i; j < kHistBuckets; ++j) {
        if (buckets[j] > 0) return bucket_rep(j);
      }
      return 0.0;
    }
  }
  for (int j = kHistBuckets - 1; j >= 0; --j) {
    if (buckets[j] > 0) return bucket_rep(j);
  }
  return 0.0;
}

bool env_default() noexcept {
  const char* e = std::getenv("LOCALSPAN_OBS");
  return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

/// Microseconds with nanosecond fraction, formatted without locale or
/// floating-point round-trip concerns.
void append_us(std::string& out, std::int64_t ns) {
  if (ns < 0) ns = 0;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{env_default()};

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                              reg().anchor)
      .count();
}

void counter_add_slow(MetricId id, std::int64_t delta) noexcept {
  if (id < 0 || id >= kMaxCounters) return;
  bump(my_slab()->counters[id], delta);
}

void gauge_set_slow(MetricId id, std::int64_t value) noexcept {
  if (id < 0 || id >= kMaxGauges) return;
  my_slab()->gauges[id].store(value, std::memory_order_relaxed);
}

void histogram_record_slow(MetricId id, std::int64_t value) noexcept {
  if (id < 0 || id >= kMaxHistograms) return;
  Slab* s = my_slab();
  bump(s->hist[id][bucket_index(value)], 1);
  bump(s->hist_sum[id], value > 0 ? value : 0);
  auto& mx = s->hist_max[id];
  if (value > mx.load(std::memory_order_relaxed)) {
    mx.store(value, std::memory_order_relaxed);
  }
}

void span_end_slow(MetricId id, std::int64_t start_ns) noexcept {
  if (id < 0 || id >= kMaxSpans) return;
  const std::int64_t dur = now_ns() - start_ns;
  Slab* s = my_slab();
  bump(s->span_count[id], 1);
  bump(s->span_ns[id], dur > 0 ? dur : 0);
  const std::int32_t i = s->event_count.load(std::memory_order_relaxed);
  if (i < kMaxEvents) {
    s->events[i] = TraceEvent{id, start_ns, dur > 0 ? dur : 0};
    s->event_count.store(i + 1, std::memory_order_release);
  } else {
    bump(s->events_dropped, 1);
  }
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

MetricId counter_id(const std::string& name) {
  return intern(reg().counter_names, name, kMaxCounters, "counter");
}

MetricId gauge_id(const std::string& name) {
  return intern(reg().gauge_names, name, kMaxGauges, "gauge");
}

MetricId histogram_id(const std::string& name) {
  return intern(reg().hist_names, name, kMaxHistograms, "histogram");
}

MetricId span_id(const std::string& name) {
  return intern(reg().span_names, name, kMaxSpans, "span");
}

void set_thread_label(const char* label) noexcept {
  Slab* s = my_slab();  // before the lock: acquire_slab locks the same mutex.
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  std::snprintf(s->label, kLabelCap, "%s", label);
}

Snapshot snapshot() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot out;
  out.obs_enabled = enabled();

  const auto nc = static_cast<int>(r.counter_names.size());
  const auto ng = static_cast<int>(r.gauge_names.size());
  const auto nh = static_cast<int>(r.hist_names.size());
  const auto ns = static_cast<int>(r.span_names.size());

  std::vector<std::int64_t> counters(r.retired.counters, r.retired.counters + nc);
  std::vector<std::int64_t> gauges(r.retired.gauges, r.retired.gauges + ng);
  std::vector<std::vector<std::int64_t>> hist(nh);
  std::vector<std::int64_t> hist_sum(r.retired.hist_sum, r.retired.hist_sum + nh);
  std::vector<std::int64_t> hist_max(r.retired.hist_max, r.retired.hist_max + nh);
  for (int i = 0; i < nh; ++i) {
    hist[i].assign(r.retired.hist[i], r.retired.hist[i] + kHistBuckets);
  }
  std::vector<std::int64_t> span_count(r.retired.span_count, r.retired.span_count + ns);
  std::vector<std::int64_t> span_ns(r.retired.span_ns, r.retired.span_ns + ns);

  for (const Slab* s : r.live) {
    for (int i = 0; i < nc; ++i) counters[i] += s->counters[i].load(std::memory_order_relaxed);
    for (int i = 0; i < ng; ++i) {
      gauges[i] = std::max(gauges[i], s->gauges[i].load(std::memory_order_relaxed));
    }
    for (int i = 0; i < nh; ++i) {
      for (int b = 0; b < kHistBuckets; ++b) {
        hist[i][b] += s->hist[i][b].load(std::memory_order_relaxed);
      }
      hist_sum[i] += s->hist_sum[i].load(std::memory_order_relaxed);
      hist_max[i] = std::max(hist_max[i], s->hist_max[i].load(std::memory_order_relaxed));
    }
    for (int i = 0; i < ns; ++i) {
      span_count[i] += s->span_count[i].load(std::memory_order_relaxed);
      span_ns[i] += s->span_ns[i].load(std::memory_order_relaxed);
    }
  }

  for (int i = 0; i < nc; ++i) out.counters.emplace_back(r.counter_names[i], counters[i]);
  for (int i = 0; i < ng; ++i) out.gauges.emplace_back(r.gauge_names[i], gauges[i]);
  for (int i = 0; i < nh; ++i) {
    HistogramSummary h;
    for (int b = 0; b < kHistBuckets; ++b) h.count += hist[i][b];
    h.sum = hist_sum[i];
    h.max = hist_max[i];
    h.mean = h.count > 0 ? static_cast<double>(h.sum) / static_cast<double>(h.count) : 0.0;
    // Bucket midpoints can overshoot the true top order statistic; the exact
    // max is tracked separately, so clamp the quantiles to it (keeps the
    // p50 <= p90 <= p99 <= max invariant readable and stays deterministic —
    // the max is an integer aggregate like the bucket counts).
    const auto max_d = static_cast<double>(h.max);
    h.p50 = std::min(quantile_from_buckets(hist[i].data(), h.count, 0.50), max_d);
    h.p90 = std::min(quantile_from_buckets(hist[i].data(), h.count, 0.90), max_d);
    h.p99 = std::min(quantile_from_buckets(hist[i].data(), h.count, 0.99), max_d);
    out.histograms.emplace_back(r.hist_names[i], h);
  }
  for (int i = 0; i < ns; ++i) {
    out.spans.push_back(SpanStat{r.span_names[i], span_count[i], span_ns[i]});
  }

  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  std::sort(out.spans.begin(), out.spans.end(),
            [](const SpanStat& a, const SpanStat& b) { return a.name < b.name; });
  return out;
}

std::vector<SpanStat> span_totals() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto ns = static_cast<int>(r.span_names.size());
  std::vector<SpanStat> out(static_cast<std::size_t>(ns));
  for (int i = 0; i < ns; ++i) {
    out[i].name = r.span_names[i];
    out[i].count = r.retired.span_count[i];
    out[i].total_ns = r.retired.span_ns[i];
  }
  for (const Slab* s : r.live) {
    for (int i = 0; i < ns; ++i) {
      out[i].count += s->span_count[i].load(std::memory_order_relaxed);
      out[i].total_ns += s->span_ns[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::string to_json(const Snapshot& snap) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"enabled\": ";
  out += snap.obs_enabled ? "true" : "false";
  out += ",\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_json_escaped(out, snap.counters[i].first);
    out += "\": " + std::to_string(snap.counters[i].second);
  }
  out += snap.counters.empty() ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_json_escaped(out, snap.gauges[i].first);
    out += "\": " + std::to_string(snap.gauges[i].second);
  }
  out += snap.gauges.empty() ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSummary& h = snap.histograms[i].second;
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_json_escaped(out, snap.histograms[i].first);
    out += "\": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    out += ", \"max\": " + std::to_string(h.max);
    out += ", \"mean\": ";
    append_double(out, h.mean);
    out += ", \"p50\": ";
    append_double(out, h.p50);
    out += ", \"p90\": ";
    append_double(out, h.p90);
    out += ", \"p99\": ";
    append_double(out, h.p99);
    out += "}";
  }
  out += snap.histograms.empty() ? "}" : "\n  }";
  out += ",\n  \"spans\": {";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const SpanStat& s = snap.spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_json_escaped(out, s.name);
    out += "\": {\"count\": " + std::to_string(s.count);
    out += ", \"total_ns\": " + std::to_string(s.total_ns) + "}";
  }
  out += snap.spans.empty() ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

std::string trace_json() {
  struct Track {
    int tid;
    std::string label;
  };
  struct Ev {
    int tid;
    TraceEvent e;
  };
  std::vector<Track> tracks;
  std::vector<Ev> events;
  std::vector<std::string> span_names;
  {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    span_names = r.span_names;
    for (const RetiredTrack& t : r.retired_tracks) {
      tracks.push_back(Track{t.tid, t.label});
      for (const TraceEvent& e : t.events) events.push_back(Ev{t.tid, e});
    }
    for (const Slab* s : r.live) {
      const int n = s->event_count.load(std::memory_order_acquire);
      tracks.push_back(Track{s->tid, s->label});
      for (int i = 0; i < n; ++i) events.push_back(Ev{s->tid, s->events[i]});
    }
  }
  std::sort(tracks.begin(), tracks.end(),
            [](const Track& a, const Track& b) { return a.tid < b.tid; });
  std::stable_sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    return a.e.start_ns < b.e.start_ns;
  });

  std::string out;
  out.reserve(256 + events.size() * 96);
  out += "{\"traceEvents\": [\n";
  bool first = true;
  for (const Track& t : tracks) {
    out += first ? "" : ",\n";
    first = false;
    out += R"({"name": "thread_name", "ph": "M", "pid": 1, "tid": )" + std::to_string(t.tid) +
           R"(, "args": {"name": ")";
    append_json_escaped(out, t.label.empty() ? "thread " + std::to_string(t.tid) : t.label);
    out += "\"}}";
  }
  for (const Ev& ev : events) {
    out += first ? "" : ",\n";
    first = false;
    out += "{\"name\": \"";
    const auto id = static_cast<std::size_t>(ev.e.span);
    append_json_escaped(out, id < span_names.size() ? span_names[id] : "span?");
    out += R"(", "ph": "X", "pid": 1, "tid": )" + std::to_string(ev.tid) + ", \"ts\": ";
    append_us(out, ev.e.start_ns);
    out += ", \"dur\": ";
    append_us(out, ev.e.dur_ns);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

void reset() noexcept {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired = RetiredTotals{};
  r.retired_tracks.clear();
  for (Slab* s : r.live) s->zero();
  for (Slab* s : r.free_list) s->zero();
}

}  // namespace localspan::obs
