#pragma once
/// \file obs.hpp
/// Deterministic, near-zero-overhead observability: lock-free per-thread
/// counters/gauges, log-bucketed latency/size histograms, and RAII scoped
/// spans exporting Chrome-trace-event JSON (chrome://tracing / Perfetto).
///
/// Design rules (enforced by tests/test_obs.cpp):
///   * One runtime switch. `LOCALSPAN_OBS` env (unset/"0" = off) seeds
///     `enabled()`; `set_enabled()` flips it at runtime. When off, every
///     probe is ONE inlined relaxed load + predictable branch — the
///     counting-allocator suites keep proving hot paths allocate nothing.
///   * Lock-free hot path. Each thread owns a fixed-capacity slab of
///     relaxed atomics (single writer, scrape-time readers — TSan-clean);
///     the only lock is taken at registration, thread retirement and
///     scrape time, never per probe. A warmed thread's probes (counter
///     bump, histogram record, span begin/end) allocate nothing.
///   * Deterministic aggregation. Counter/gauge/histogram-bucket scrapes
///     are integer sums over slabs — independent of thread count and of
///     summation order. Slabs of exited threads are folded into retired
///     totals (and their trace events preserved), so nothing is lost when
///     a ThreadPool is destroyed. Wall-clock fields (span ns, histogram
///     sums of recorded durations) are inherently nondeterministic and
///     excluded from the determinism contract.
///
/// Metric names are dot-scoped by layer: `rg.*` (relaxed greedy),
/// `cover.*`/`cg.*` (cluster machinery), `dyn.*` (dynamic engine),
/// `pool.*` (ThreadPool), `net.*` (SyncNetwork), `io.*` (trace IO).
/// Register once per site via a function-local static:
///
///     static const obs::MetricId id = obs::counter_id("rg.edges_added");
///     obs::counter_add(id, st.added);

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace localspan::obs {

using MetricId = int;

namespace detail {
extern std::atomic<bool> g_enabled;
void counter_add_slow(MetricId id, std::int64_t delta) noexcept;
void gauge_set_slow(MetricId id, std::int64_t value) noexcept;
void histogram_record_slow(MetricId id, std::int64_t value) noexcept;
void span_end_slow(MetricId id, std::int64_t start_ns) noexcept;
[[nodiscard]] std::int64_t now_ns() noexcept;
}  // namespace detail

/// The one switch. Reads a process-global relaxed atomic; callers treat the
/// result as advisory (a concurrent flip may land mid-operation — the slabs
/// tolerate that by construction).
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Override the `LOCALSPAN_OBS` default at runtime (CLI does this when
/// `--obs-json`/`--trace` is passed; tests toggle it around builds).
void set_enabled(bool on) noexcept;

/// Registration: idempotent name -> id lookup (same name => same id).
/// Allocates and locks — do it once per site via a function-local static,
/// never inside a hot loop. Throws std::length_error if a fixed capacity
/// (see obs.cpp) is exhausted.
[[nodiscard]] MetricId counter_id(const std::string& name);
[[nodiscard]] MetricId gauge_id(const std::string& name);
[[nodiscard]] MetricId histogram_id(const std::string& name);
[[nodiscard]] MetricId span_id(const std::string& name);

/// Monotonically accumulating value (edges added, messages delivered, ...).
inline void counter_add(MetricId id, std::int64_t delta) noexcept {
  if (enabled()) detail::counter_add_slow(id, delta);
}

/// Last-write-wins level (current region count, configured threads, ...).
/// Scrapes take the max across threads so a snapshot is order-independent.
inline void gauge_set(MetricId id, std::int64_t value) noexcept {
  if (enabled()) detail::gauge_set_slow(id, value);
}

/// Log-bucketed distribution (base sqrt(2): quantiles carry <= 2^(1/4)
/// relative bucketing error). Values < 0 clamp to the zero bucket.
inline void histogram_record(MetricId id, std::int64_t value) noexcept {
  if (enabled()) detail::histogram_record_slow(id, value);
}

/// RAII scoped timer. Construction arms only when `enabled()`; destruction
/// bumps the span's count/total-ns slots and appends one Chrome trace event
/// to the owning thread's fixed buffer (silently counted as dropped when
/// full). Disarmed cost: one load + branch at each end.
class Span {
 public:
  explicit Span(MetricId id) noexcept : id_(enabled() ? id : -1) {
    if (id_ >= 0) start_ns_ = detail::now_ns();
  }
  ~Span() {
    if (id_ >= 0) detail::span_end_slow(id_, start_ns_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  MetricId id_;
  std::int64_t start_ns_ = 0;
};

/// Name the calling thread's trace track ("main", "worker 3", ...).
/// Unconditional (works before enablement) and cheap; call once per thread.
void set_thread_label(const char* label) noexcept;

struct HistogramSummary {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;  ///< bucket geometric midpoints — see class comment.
  double p90 = 0.0;
  double p99 = 0.0;
};

struct SpanStat {
  std::string name;
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
};

/// A scrape: every registered metric, aggregated across all threads that
/// ever recorded (live + retired), name-sorted within each section.
struct Snapshot {
  bool obs_enabled = false;
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;
  std::vector<SpanStat> spans;
};

[[nodiscard]] Snapshot snapshot();

/// Span aggregates only (cheap scrape for before/after phase diffing —
/// the registry's BuildResult::phase_breakdown uses this).
[[nodiscard]] std::vector<SpanStat> span_totals();

/// The snapshot as a JSON object ({"enabled":..., "counters":{...},
/// "gauges":{...}, "histograms":{...}, "spans":{...}}) — shared by
/// `--obs-json` and the bench `obs` meta block.
[[nodiscard]] std::string to_json(const Snapshot& snap);

/// Chrome trace event JSON: {"traceEvents":[...]} with one thread_name
/// metadata event per track followed by complete ("ph":"X") events sorted
/// by start timestamp (microseconds, globally monotone). Loadable in
/// chrome://tracing and Perfetto.
[[nodiscard]] std::string trace_json();

/// Zero every counter/gauge/histogram/span slot and drop all buffered and
/// retired trace events. Call only while no instrumented work is running.
void reset() noexcept;

}  // namespace localspan::obs
