#include "mis/luby.hpp"

#include <algorithm>
#include <utility>

#include "obs/obs.hpp"
#include "runtime/network.hpp"
#include "runtime/parallel.hpp"

namespace localspan::mis {

namespace {

constexpr int kMark = 1;
constexpr int kJoin = 2;

enum class State { kActive, kInMis, kOut };

/// Mirror of the SyncNetwork round metrics, so the pool-parallel variant —
/// which never stages a physical message — reports the same net.* shape the
/// simulator would for the identical protocol run.
struct LubyNetMetrics {
  obs::MetricId rounds = obs::counter_id("net.rounds");
  obs::MetricId messages = obs::counter_id("net.messages");
  obs::MetricId bytes = obs::counter_id("net.bytes");
  obs::MetricId round_messages = obs::histogram_id("net.round_messages");
};

const LubyNetMetrics& luby_net_metrics() {
  static const LubyNetMetrics m;
  return m;
}

void record_round(long long delivered) {
  if (!obs::enabled()) return;
  const LubyNetMetrics& m = luby_net_metrics();
  obs::counter_add(m.rounds, 1);
  obs::counter_add(m.messages, delivered);
  obs::counter_add(m.bytes, delivered * static_cast<long long>(sizeof(runtime::Packet)));
  obs::histogram_record(m.round_messages, delivered);
}

}  // namespace

double luby_priority(std::uint64_t seed, int iteration, int node) {
  std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(iteration) + 1) +
                    0xD1B54A32D192ED03ULL * (static_cast<std::uint64_t>(node) + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

std::vector<int> luby_mis(const graph::Graph& g, std::uint64_t seed, LubyStats* stats,
                          runtime::RoundLedger* ledger, const std::string& section) {
  runtime::SyncNetwork net(g, ledger, section);
  return luby_mis_on(net, g, seed, stats);
}

std::vector<int> luby_mis_on(runtime::Network& net, const graph::Graph& g, std::uint64_t seed,
                             LubyStats* stats) {
  const int n = g.n();
  std::vector<State> state(static_cast<std::size_t>(n), State::kActive);
  std::vector<double> my_value(static_cast<std::size_t>(n), 0.0);
  int active = n;
  int iteration = 0;

  while (active > 0) {
    ++iteration;
    // Sub-round 1: undecided nodes broadcast their drawn values.
    for (int v = 0; v < n; ++v) {
      if (state[static_cast<std::size_t>(v)] != State::kActive) continue;
      my_value[static_cast<std::size_t>(v)] = luby_priority(seed, iteration, v);
      net.broadcast(v, {kMark, my_value[static_cast<std::size_t>(v)], v});
    }
    net.end_round();

    // Decide: strict (value, id)-local-minimum among still-active neighbors
    // joins. Only active nodes broadcast marks, so the inbox is exactly the
    // active neighborhood.
    std::vector<char> joining(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      if (state[static_cast<std::size_t>(v)] != State::kActive) continue;
      bool wins = true;
      for (const auto& [from, p] : net.inbox(v)) {
        if (p.kind != kMark) continue;
        if (std::pair(p.value, from) < std::pair(my_value[static_cast<std::size_t>(v)], v)) {
          wins = false;
          break;
        }
      }
      joining[static_cast<std::size_t>(v)] = wins ? 1 : 0;
    }

    // Sub-round 2: winners announce; dominated neighbors retire.
    for (int v = 0; v < n; ++v) {
      if (joining[static_cast<std::size_t>(v)]) net.broadcast(v, {kJoin, 0.0, v});
    }
    net.end_round();
    for (int v = 0; v < n; ++v) {
      if (state[static_cast<std::size_t>(v)] != State::kActive) continue;
      if (joining[static_cast<std::size_t>(v)]) {
        state[static_cast<std::size_t>(v)] = State::kInMis;
        --active;
        continue;
      }
      for (const auto& [from, p] : net.inbox(v)) {
        (void)from;
        if (p.kind == kJoin) {
          state[static_cast<std::size_t>(v)] = State::kOut;
          --active;
          break;
        }
      }
    }
  }

  if (stats != nullptr) {
    stats->iterations = iteration;
    stats->network_rounds = net.rounds();
    stats->messages = net.messages();
  }
  std::vector<int> out;
  for (int v = 0; v < n; ++v) {
    if (state[static_cast<std::size_t>(v)] == State::kInMis) out.push_back(v);
  }
  return out;
}

std::vector<int> luby_mis_parallel(const graph::Graph& g, std::uint64_t seed, LubyStats* stats,
                                   runtime::WorkerPool* pool, runtime::RoundLedger* ledger,
                                   const std::string& section) {
  const int n = g.n();
  std::vector<State> state(static_cast<std::size_t>(n), State::kActive);
  std::vector<char> joining(static_cast<std::size_t>(n), 0);
  std::vector<char> retired(static_cast<std::size_t>(n), 0);
  // scatter_commit plumbs per-worker Dijkstra workspaces; the MIS harvests
  // need none, so the serial fallback slot stays empty (no allocation).
  graph::DijkstraWorkspace no_ws;
  int active = n;
  int iteration = 0;
  long long rounds = 0;
  long long messages = 0;

  while (active > 0) {
    ++iteration;
    long long round1 = 0;  // marks: one message per active half-edge.
    long long round2 = 0;  // join announcements: one per winner half-edge.

    // Pass 1 — decide. Each node's join bit is a pure function of the
    // previous iteration's state and the shared priorities, harvested in
    // parallel into a node-owned slot; the commit tallies the simulator's
    // round-1 message charge (every active node broadcasts its mark).
    runtime::scatter_commit(
        pool, no_ws, n,
        [&](graph::DijkstraWorkspace&, int, int v) {
          if (state[static_cast<std::size_t>(v)] != State::kActive) {
            joining[static_cast<std::size_t>(v)] = 0;
            return;
          }
          const double mine = luby_priority(seed, iteration, v);
          char wins = 1;
          for (const graph::Neighbor& nb : g.neighbors(v)) {
            const int z = nb.to;
            if (state[static_cast<std::size_t>(z)] != State::kActive) continue;
            if (std::pair(luby_priority(seed, iteration, z), z) < std::pair(mine, v)) {
              wins = 0;
              break;
            }
          }
          joining[static_cast<std::size_t>(v)] = wins;
        },
        [&](int v) {
          if (state[static_cast<std::size_t>(v)] == State::kActive) round1 += g.degree(v);
        });

    // Pass 2 — retire. A non-winner retires iff some neighbor joined this
    // iteration (the kJoin inbox test); the commit applies both state
    // transitions in ascending node order and tallies the round-2 charge
    // (every winner broadcasts its announcement).
    runtime::scatter_commit(
        pool, no_ws, n,
        [&](graph::DijkstraWorkspace&, int, int v) {
          retired[static_cast<std::size_t>(v)] = 0;
          if (state[static_cast<std::size_t>(v)] != State::kActive ||
              joining[static_cast<std::size_t>(v)]) {
            return;
          }
          for (const graph::Neighbor& nb : g.neighbors(v)) {
            if (joining[static_cast<std::size_t>(nb.to)]) {
              retired[static_cast<std::size_t>(v)] = 1;
              break;
            }
          }
        },
        [&](int v) {
          if (joining[static_cast<std::size_t>(v)]) {
            round2 += g.degree(v);
            state[static_cast<std::size_t>(v)] = State::kInMis;
            --active;
          } else if (retired[static_cast<std::size_t>(v)]) {
            state[static_cast<std::size_t>(v)] = State::kOut;
            --active;
          }
        });

    rounds += 2;
    messages += round1 + round2;
    record_round(round1);
    record_round(round2);
    if (ledger != nullptr) {
      ledger->charge(section, 1, round1);
      ledger->charge(section, 1, round2);
    }
  }

  if (stats != nullptr) {
    stats->iterations = iteration;
    stats->network_rounds = rounds;
    stats->messages = messages;
  }
  std::vector<int> out;
  for (int v = 0; v < n; ++v) {
    if (state[static_cast<std::size_t>(v)] == State::kInMis) out.push_back(v);
  }
  return out;
}

}  // namespace localspan::mis
