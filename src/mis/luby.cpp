#include "mis/luby.hpp"

#include <algorithm>

#include "runtime/network.hpp"

namespace localspan::mis {

namespace {

constexpr int kMark = 1;
constexpr int kJoin = 2;

/// splitmix64 of the (seed, iteration, node) triple -> uniform double in [0,1).
double node_value(std::uint64_t seed, int iteration, int node) {
  std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(iteration) + 1) +
                    0xD1B54A32D192ED03ULL * (static_cast<std::uint64_t>(node) + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

enum class State { kActive, kInMis, kOut };

}  // namespace

std::vector<int> luby_mis(const graph::Graph& g, std::uint64_t seed, LubyStats* stats,
                          runtime::RoundLedger* ledger, const std::string& section) {
  runtime::SyncNetwork net(g, ledger, section);
  return luby_mis_on(net, g, seed, stats);
}

std::vector<int> luby_mis_on(runtime::Network& net, const graph::Graph& g, std::uint64_t seed,
                             LubyStats* stats) {
  const int n = g.n();
  std::vector<State> state(static_cast<std::size_t>(n), State::kActive);
  std::vector<double> my_value(static_cast<std::size_t>(n), 0.0);
  int active = n;
  int iteration = 0;

  while (active > 0) {
    ++iteration;
    // Sub-round 1: undecided nodes broadcast their drawn values.
    for (int v = 0; v < n; ++v) {
      if (state[static_cast<std::size_t>(v)] != State::kActive) continue;
      my_value[static_cast<std::size_t>(v)] = node_value(seed, iteration, v);
      net.broadcast(v, {kMark, my_value[static_cast<std::size_t>(v)], v});
    }
    net.end_round();

    // Decide: strict (value, id)-local-minimum among still-active neighbors
    // joins. Only active nodes broadcast marks, so the inbox is exactly the
    // active neighborhood.
    std::vector<char> joining(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      if (state[static_cast<std::size_t>(v)] != State::kActive) continue;
      bool wins = true;
      for (const auto& [from, p] : net.inbox(v)) {
        if (p.kind != kMark) continue;
        if (std::pair(p.value, from) < std::pair(my_value[static_cast<std::size_t>(v)], v)) {
          wins = false;
          break;
        }
      }
      joining[static_cast<std::size_t>(v)] = wins ? 1 : 0;
    }

    // Sub-round 2: winners announce; dominated neighbors retire.
    for (int v = 0; v < n; ++v) {
      if (joining[static_cast<std::size_t>(v)]) net.broadcast(v, {kJoin, 0.0, v});
    }
    net.end_round();
    for (int v = 0; v < n; ++v) {
      if (state[static_cast<std::size_t>(v)] != State::kActive) continue;
      if (joining[static_cast<std::size_t>(v)]) {
        state[static_cast<std::size_t>(v)] = State::kInMis;
        --active;
        continue;
      }
      for (const auto& [from, p] : net.inbox(v)) {
        (void)from;
        if (p.kind == kJoin) {
          state[static_cast<std::size_t>(v)] = State::kOut;
          --active;
          break;
        }
      }
    }
  }

  if (stats != nullptr) {
    stats->iterations = iteration;
    stats->network_rounds = net.rounds();
    stats->messages = net.messages();
  }
  std::vector<int> out;
  for (int v = 0; v < n; ++v) {
    if (state[static_cast<std::size_t>(v)] == State::kInMis) out.push_back(v);
  }
  return out;
}

}  // namespace localspan::mis
