#include "mis/mis.hpp"

namespace localspan::mis {

std::vector<int> greedy_mis(const graph::Graph& g) {
  std::vector<char> blocked(static_cast<std::size_t>(g.n()), 0);
  std::vector<int> out;
  for (int v = 0; v < g.n(); ++v) {
    if (blocked[static_cast<std::size_t>(v)]) continue;
    out.push_back(v);
    for (const graph::Neighbor& nb : g.neighbors(v)) blocked[static_cast<std::size_t>(nb.to)] = 1;
  }
  return out;
}

bool is_maximal_independent_set(const graph::Graph& g, const std::vector<int>& set) {
  std::vector<char> in(static_cast<std::size_t>(g.n()), 0);
  for (int v : set) {
    if (v < 0 || v >= g.n()) return false;
    in[static_cast<std::size_t>(v)] = 1;
  }
  for (int v : set) {
    for (const graph::Neighbor& nb : g.neighbors(v)) {
      if (in[static_cast<std::size_t>(nb.to)]) return false;  // not independent
    }
  }
  for (int v = 0; v < g.n(); ++v) {
    if (in[static_cast<std::size_t>(v)]) continue;
    bool dominated = false;
    for (const graph::Neighbor& nb : g.neighbors(v)) {
      if (in[static_cast<std::size_t>(nb.to)]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;  // not maximal
  }
  return true;
}

}  // namespace localspan::mis
