#pragma once
/// \file luby.hpp
/// Luby's randomized distributed MIS, run message-by-message on the
/// synchronous simulator.
///
/// The paper invokes the Kuhn–Moscibroda–Wattenhofer O(log* n) MIS [11] on
/// its derived bounded-growth graphs. KMW is a substantial algorithm in its
/// own right; as documented in DESIGN.md we run the *actual distributed*
/// Luby algorithm (correct MIS, O(log n) rounds w.h.p.) and additionally
/// report the KMW-model round charge (log* n per invocation) so experiment
/// E4 can plot both the measured and the paper-claimed round shapes.

#include <cstdint>

#include "graph/graph.hpp"
#include "mis/mis.hpp"
#include "runtime/ledger.hpp"
#include "runtime/network.hpp"

namespace localspan::runtime {
class WorkerPool;
}

namespace localspan::mis {

struct LubyStats {
  int iterations = 0;         ///< Luby rounds until all nodes decided.
  long long network_rounds = 0;  ///< simulator rounds (2 per iteration).
  long long messages = 0;        ///< total messages exchanged.
};

/// The shared deterministic priority draw: splitmix64 of the
/// (seed, iteration, node) triple mapped to a uniform double in [0, 1).
/// Every Luby variant — synchronous, asynchronous/reliable, and the
/// pool-parallel harvester — consumes exactly this function, so they all
/// break symmetry with identical priorities and produce identical sets.
[[nodiscard]] double luby_priority(std::uint64_t seed, int iteration, int node);

/// Compute an MIS of g with Luby's algorithm over a SyncNetwork. Per
/// iteration every undecided node draws a value (seeded deterministically
/// from (seed, iteration, node)), broadcasts it, joins if it is the strict
/// (value, id)-minimum in its undecided neighborhood, then broadcasts the
/// decision; dominated neighbors retire. Deterministic given `seed`.
///
/// \param ledger optional ledger charged under section `section`.
[[nodiscard]] std::vector<int> luby_mis(const graph::Graph& g, std::uint64_t seed,
                                        LubyStats* stats = nullptr,
                                        runtime::RoundLedger* ledger = nullptr,
                                        const std::string& section = "mis");

/// Transport-generic Luby: the same protocol over any `runtime::Network`
/// implementation. `net` must be freshly constructed over topology `g`.
/// Because every decision depends only on round-boundary inbox contents and
/// the deterministic (seed, iteration, node) value draws, the MIS is
/// bit-identical across transports that deliver the same round semantics —
/// the property `ReliableNetwork` provides over the adversarial simulator.
[[nodiscard]] std::vector<int> luby_mis_on(runtime::Network& net, const graph::Graph& g,
                                           std::uint64_t seed, LubyStats* stats = nullptr);

/// Pool-parallel Luby: the same protocol executed as two harvest/commit
/// passes per iteration on the deterministic runtime instead of message by
/// message on a simulator. Pass 1 harvests, per node, the frozen-state
/// join decision (strict (priority, id)-minimum among still-active
/// neighbors, priorities from luby_priority); pass 2 harvests which nodes a
/// winner retires. Both passes read only the previous iteration's state and
/// commit serially in node order via runtime::scatter_commit, so the result
/// — the set AND the reported stats, which mirror the simulator's message
/// accounting analytically (2 rounds per iteration; active-degree messages
/// in round one, winner-degree in round two) — is **bit-identical to
/// luby_mis(g, seed)** at every thread count. `pool` may be null (serial).
///
/// \param ledger optional ledger charged under section `section` with the
///        same aggregate rounds/messages the synchronous transport charges.
[[nodiscard]] std::vector<int> luby_mis_parallel(const graph::Graph& g, std::uint64_t seed,
                                                 LubyStats* stats = nullptr,
                                                 runtime::WorkerPool* pool = nullptr,
                                                 runtime::RoundLedger* ledger = nullptr,
                                                 const std::string& section = "mis");

}  // namespace localspan::mis
