#pragma once
/// \file mis.hpp
/// Maximal independent sets. Both MIS consumers in the paper (cluster-cover
/// centers §3.2.1, redundant-edge thinning §2.2.5/§3.2.5) only need *some*
/// MIS; the sequential driver uses the deterministic greedy MIS below, the
/// distributed driver runs Luby's algorithm on the simulator (luby.hpp).

#include <vector>

#include "graph/graph.hpp"

namespace localspan::mis {

/// Deterministic greedy MIS: scan vertices in increasing id, add a vertex
/// when none of its neighbors was added. O(n + m), always maximal.
[[nodiscard]] std::vector<int> greedy_mis(const graph::Graph& g);

/// True iff `set` is independent in g and maximal (every vertex outside has
/// a neighbor inside).
[[nodiscard]] bool is_maximal_independent_set(const graph::Graph& g, const std::vector<int>& set);

}  // namespace localspan::mis
