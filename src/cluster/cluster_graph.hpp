#pragma once
/// \file cluster_graph.hpp
/// The Das–Narasimhan cluster graph H_{i-1} (§2.2.3, Fig 2).
///
/// H approximates the partial spanner G'_{i-1} so that the per-edge
/// shortest-path queries of phase i can be answered on paths of O(1) hops
/// (Lemma 8). Vertices of H are all of V; edges are
///   * intra-cluster: {center a, member x}, weight sp_{G'}(a, x);
///   * inter-cluster: {center a, center b} when sp_{G'}(a,b) <= W_{i-1} or
///     some edge of G'_{i-1} crosses the two clusters; weight sp_{G'}(a,b).
/// Lemma 5 bounds every inter-cluster weight by (2δ+1)W_{i-1}; Lemma 7 shows
/// H-path lengths overestimate G'-path lengths by at most (1+6δ)/(1−2δ).

#include "cluster/cover.hpp"
#include "graph/graph.hpp"
#include "graph/sp_workspace.hpp"

namespace localspan::cluster {

/// H plus the structural counters the paper's lemmas bound.
struct ClusterGraph {
  graph::Graph h;          ///< the cluster graph (same vertex ids as G').
  int intra_edges = 0;
  int inter_edges = 0;
  int max_inter_degree = 0;  ///< max inter-cluster edges at a center (Lemma 6).
  double max_inter_weight = 0.0;  ///< max inter-cluster edge weight (Lemma 5).
};

/// Build H_{i-1} from the partial spanner gp and its radius-δW cluster cover.
/// \param w_prev  W_{i-1}, the inter-cluster connectivity threshold.
[[nodiscard]] ClusterGraph build_cluster_graph(const graph::Graph& gp, const ClusterCover& cover,
                                               double w_prev);

/// Output-sensitive variant on a frozen CSR snapshot with a caller-owned
/// workspace: per-center sweeps walk the settled ball (via the SpView
/// touched list) and the precomputed member lists instead of scanning all n
/// vertices per center. Produces the identical cluster graph.
///
/// With a non-null `pool`, the per-center bounded searches (the dominant
/// cost) run in parallel — each center's candidate harvest is a pure
/// function of (gp, cover, center) — and edges are committed sequentially
/// in center order, so H is bit-identical to the serial build at every
/// thread count.
[[nodiscard]] ClusterGraph build_cluster_graph(const graph::CsrView& gp, const ClusterCover& cover,
                                               double w_prev, graph::DijkstraWorkspace& ws,
                                               runtime::WorkerPool* pool = nullptr);

/// Answer one §2.2.4 query on H: sp_H(x, y) truncated at `bound`
/// (returns kInf if it exceeds the bound). If `hops_out` is non-null it
/// receives the hop count of the found path (-1 when none), validating
/// Lemma 8's O(1)-hop claim.
[[nodiscard]] double query_on_h(const graph::Graph& h, int x, int y, double bound,
                                int* hops_out = nullptr);

/// Workspace-backed overload for hot loops (one early-exit bounded search,
/// zero allocation once the workspace is warm).
[[nodiscard]] double query_on_h(graph::DijkstraWorkspace& ws, const graph::Graph& h, int x, int y,
                                double bound, int* hops_out = nullptr);

}  // namespace localspan::cluster
