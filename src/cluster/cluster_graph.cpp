#include "cluster/cluster_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/dijkstra.hpp"

namespace localspan::cluster {

ClusterGraph build_cluster_graph(const graph::Graph& gp, const ClusterCover& cover,
                                 double w_prev) {
  if (w_prev <= 0.0) throw std::invalid_argument("build_cluster_graph: w_prev must be positive");
  const int n = gp.n();
  ClusterGraph cg{graph::Graph(n), 0, 0, 0, 0.0};

  // Intra-cluster edges: center to every (distinct) member.
  for (int v = 0; v < n; ++v) {
    const int a = cover.center_of[static_cast<std::size_t>(v)];
    if (a == v) continue;
    const double w = cover.dist_to_center[static_cast<std::size_t>(v)];
    if (cg.h.add_edge(a, v, std::max(w, 1e-15))) ++cg.intra_edges;
  }

  // Inter-cluster edges. One bounded Dijkstra per center (radius (2δ+1)W per
  // Lemma 5) serves both membership conditions.
  const double reach = (2.0 * cover.radius / w_prev + 1.0) * w_prev + 1e-12;
  std::vector<int> inter_degree(static_cast<std::size_t>(n), 0);
  for (int a : cover.centers) {
    const graph::ShortestPaths sp = graph::dijkstra_bounded(gp, a, reach);

    // Condition (i): centers b with sp(a,b) <= W_{i-1}.
    for (int b : cover.centers) {
      if (b <= a) continue;
      const double d = sp.dist[static_cast<std::size_t>(b)];
      if (d <= w_prev) {
        if (cg.h.add_edge(a, b, d)) {
          ++cg.inter_edges;
          ++inter_degree[static_cast<std::size_t>(a)];
          ++inter_degree[static_cast<std::size_t>(b)];
          cg.max_inter_weight = std::max(cg.max_inter_weight, d);
        }
      }
    }

    // Condition (ii): an edge {u,v} of G' crosses C_a and C_b. Scan edges of
    // members of a's cluster; by Lemma 5, sp(a,b) is within `reach`.
    for (int u = 0; u < n; ++u) {
      if (cover.center_of[static_cast<std::size_t>(u)] != a) continue;
      for (const graph::Neighbor& nb : gp.neighbors(u)) {
        const int b = cover.center_of[static_cast<std::size_t>(nb.to)];
        if (b == a || b < a) continue;  // each unordered center pair once, from min center
        if (cg.h.has_edge(a, b)) continue;
        double d = sp.dist[static_cast<std::size_t>(b)];
        if (d == graph::kInf) {
          // The crossing edge may be longer than W_{i-1} (phase-0 clique
          // edges escape the paper's premise); the cover still guarantees
          // sp(a,b) <= radius + w(u,v) + radius, so a bounded retry always
          // succeeds and H keeps the Lemma 7 approximation quality.
          d = graph::sp_distance(gp, a, b, 2.0 * cover.radius + nb.w + 1e-9);
          if (d == graph::kInf) continue;  // unreachable for a valid cover
        }
        if (cg.h.add_edge(a, b, d)) {
          ++cg.inter_edges;
          ++inter_degree[static_cast<std::size_t>(a)];
          ++inter_degree[static_cast<std::size_t>(b)];
          cg.max_inter_weight = std::max(cg.max_inter_weight, d);
        }
      }
    }
  }
  cg.max_inter_degree = *std::max_element(inter_degree.begin(), inter_degree.end());
  return cg;
}

double query_on_h(const graph::Graph& h, int x, int y, double bound, int* hops_out) {
  const graph::ShortestPaths sp = graph::dijkstra_bounded(h, x, bound);
  const double d = sp.dist[static_cast<std::size_t>(y)];
  if (hops_out != nullptr) *hops_out = d == graph::kInf ? -1 : graph::path_hops(sp, y);
  return d;
}

}  // namespace localspan::cluster
