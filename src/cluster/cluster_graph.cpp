#include "cluster/cluster_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/dijkstra.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

namespace localspan::cluster {

namespace {

struct CgMetrics {
  obs::MetricId centers = obs::counter_id("cg.centers");
  obs::MetricId inter_edges = obs::counter_id("cg.inter_edges");
  obs::MetricId intra_edges = obs::counter_id("cg.intra_edges");
  obs::MetricId retries = obs::counter_id("cg.retries");
};

const CgMetrics& cg_metrics() {
  static const CgMetrics m;
  return m;
}

}  // namespace

ClusterGraph build_cluster_graph(const graph::Graph& gp, const ClusterCover& cover,
                                 double w_prev) {
  graph::DijkstraWorkspace ws(gp.n());
  return build_cluster_graph(graph::CsrView(gp), cover, w_prev, ws);
}

namespace {

/// Per-center candidate harvest for the inter-cluster conditions — a pure
/// function of (gp, cover, center, reach), so it can run on any worker.
/// `cond1` carries (center b, sp(a,b)) pairs already filtered to b > a,
/// b a center, sp <= W_{i-1}, in settle order; `cond2` carries one entry per
/// member-edge crossing into a cluster with center b > a, in scan order,
/// with the distance (kInf => retry with `retry_bound`). State-dependent
/// dedup (has_edge) happens at commit time only.
struct CenterHarvest {
  struct Cond2 {
    int b;
    double d;
    double retry_bound;
  };
  std::vector<std::pair<int, double>> cond1;
  std::vector<Cond2> cond2;

  void harvest(const graph::CsrView& gp, const ClusterCover& cover,
               const std::vector<std::vector<int>>& members, int a, double w_prev, double reach,
               graph::DijkstraWorkspace& ws) {
    cond1.clear();
    cond2.clear();
    const graph::SpView sp = ws.bounded(gp, a, reach);
    for (int v : sp.touched()) {
      if (v <= a || cover.center_of[static_cast<std::size_t>(v)] != v) continue;
      const double d = sp.dist(v);
      if (d <= w_prev) cond1.push_back({v, d});
    }
    for (int u : members[static_cast<std::size_t>(a)]) {
      for (const graph::Neighbor& nb : gp.neighbors(u)) {
        const int b = cover.center_of[static_cast<std::size_t>(nb.to)];
        if (b == a || b < a) continue;  // each unordered center pair once, from min center
        cond2.push_back({b, sp.dist(b), 2.0 * cover.radius + nb.w + 1e-9});
      }
    }
  }
};

}  // namespace

ClusterGraph build_cluster_graph(const graph::CsrView& gp, const ClusterCover& cover,
                                 double w_prev, graph::DijkstraWorkspace& ws,
                                 runtime::WorkerPool* pool) {
  if (w_prev <= 0.0) throw std::invalid_argument("build_cluster_graph: w_prev must be positive");
  const int n = gp.n();
  ClusterGraph cg{graph::Graph(n), 0, 0, 0, 0.0};

  // Intra-cluster edges: center to every (distinct) member.
  for (int v = 0; v < n; ++v) {
    const int a = cover.center_of[static_cast<std::size_t>(v)];
    if (a == v) continue;
    const double w = cover.dist_to_center[static_cast<std::size_t>(v)];
    if (cg.h.add_edge(a, v, std::max(w, 1e-15))) ++cg.intra_edges;
  }

  // Inter-cluster edges. One bounded Dijkstra per center (radius (2δ+1)W per
  // Lemma 5) serves both membership conditions; the per-center sweeps walk
  // the settled ball and the center's member list, never all of V. The
  // searches are independent per center, so with a pool they run in
  // parallel; edges always commit sequentially in center order, making H
  // bit-identical at every thread count.
  const double reach = (2.0 * cover.radius / w_prev + 1.0) * w_prev + 1e-12;
  const std::vector<std::vector<int>> members = cover.members();
  std::vector<int> inter_degree(static_cast<std::size_t>(n), 0);
  const auto add_inter = [&](int a, int b, double d) {
    if (cg.h.add_edge(a, b, d)) {
      ++cg.inter_edges;
      ++inter_degree[static_cast<std::size_t>(a)];
      ++inter_degree[static_cast<std::size_t>(b)];
      cg.max_inter_weight = std::max(cg.max_inter_weight, d);
    }
  };
  // Crossing edges whose sp(a,b) exceeded `reach` (phase-0 clique edges
  // escape the paper's premise) retry with a wider bound after the per-center
  // harvests are done. The cover still guarantees sp(a,b) <= radius + w(u,v)
  // + radius, so a bounded retry always succeeds and H keeps the Lemma 7
  // approximation quality.
  struct Retry {
    int a, b;
    double bound;
  };
  std::vector<Retry> retries;
  const int nc = static_cast<int>(cover.centers.size());
  const auto commit = [&](int a, const CenterHarvest& h) {
    for (const auto& [b, d] : h.cond1) add_inter(a, b, d);
    for (const CenterHarvest::Cond2& c : h.cond2) {
      if (cg.h.has_edge(a, c.b)) continue;
      if (c.d == graph::kInf) {
        retries.push_back({a, c.b, c.retry_bound});
        continue;
      }
      add_inter(a, c.b, c.d);
    }
  };
  if (pool == nullptr || pool->threads() == 1) {
    // Streaming serial path: one reused harvest, no per-center buffering —
    // the dynamic repair path builds H per event and must not regrow
    // scratch once warm within the call.
    CenterHarvest h;
    for (int i = 0; i < nc; ++i) {
      const int a = cover.centers[static_cast<std::size_t>(i)];
      h.harvest(gp, cover, members, a, w_prev, reach, ws);
      commit(a, h);
    }
  } else {
    std::vector<CenterHarvest> harvests(static_cast<std::size_t>(nc));
    pool->for_each(0, nc, [&](int worker, int i) {
      harvests[static_cast<std::size_t>(i)].harvest(
          gp, cover, members, cover.centers[static_cast<std::size_t>(i)], w_prev, reach,
          pool->workspace(worker));
    });
    for (int i = 0; i < nc; ++i) {
      commit(cover.centers[static_cast<std::size_t>(i)], harvests[static_cast<std::size_t>(i)]);
    }
  }
  for (const Retry& r : retries) {
    if (cg.h.has_edge(r.a, r.b)) continue;
    const double d = ws.distance(gp, r.a, r.b, r.bound);
    if (d == graph::kInf) continue;  // unreachable for a valid cover
    add_inter(r.a, r.b, d);
  }
  cg.max_inter_degree = *std::max_element(inter_degree.begin(), inter_degree.end());
  if (obs::enabled()) {
    const CgMetrics& m = cg_metrics();
    obs::counter_add(m.centers, nc);
    obs::counter_add(m.inter_edges, cg.inter_edges);
    obs::counter_add(m.intra_edges, cg.intra_edges);
    obs::counter_add(m.retries, static_cast<std::int64_t>(retries.size()));
  }
  return cg;
}

double query_on_h(const graph::Graph& h, int x, int y, double bound, int* hops_out) {
  graph::DijkstraWorkspace ws(h.n());
  return query_on_h(ws, h, x, y, bound, hops_out);
}

double query_on_h(graph::DijkstraWorkspace& ws, const graph::Graph& h, int x, int y, double bound,
                  int* hops_out) {
  const graph::SpView sp = ws.bounded_to(h, x, y, bound);
  const double d = sp.dist(y);
  if (hops_out != nullptr) *hops_out = sp.path_hops(y);
  return d;
}

}  // namespace localspan::cluster
