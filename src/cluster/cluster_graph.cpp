#include "cluster/cluster_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/dijkstra.hpp"

namespace localspan::cluster {

ClusterGraph build_cluster_graph(const graph::Graph& gp, const ClusterCover& cover,
                                 double w_prev) {
  graph::DijkstraWorkspace ws(gp.n());
  return build_cluster_graph(graph::CsrView(gp), cover, w_prev, ws);
}

ClusterGraph build_cluster_graph(const graph::CsrView& gp, const ClusterCover& cover,
                                 double w_prev, graph::DijkstraWorkspace& ws) {
  if (w_prev <= 0.0) throw std::invalid_argument("build_cluster_graph: w_prev must be positive");
  const int n = gp.n();
  ClusterGraph cg{graph::Graph(n), 0, 0, 0, 0.0};

  // Intra-cluster edges: center to every (distinct) member.
  for (int v = 0; v < n; ++v) {
    const int a = cover.center_of[static_cast<std::size_t>(v)];
    if (a == v) continue;
    const double w = cover.dist_to_center[static_cast<std::size_t>(v)];
    if (cg.h.add_edge(a, v, std::max(w, 1e-15))) ++cg.intra_edges;
  }

  // Inter-cluster edges. One bounded Dijkstra per center (radius (2δ+1)W per
  // Lemma 5) serves both membership conditions; the per-center sweeps walk
  // the settled ball and the center's member list, never all of V.
  const double reach = (2.0 * cover.radius / w_prev + 1.0) * w_prev + 1e-12;
  const std::vector<std::vector<int>> members = cover.members();
  std::vector<int> inter_degree(static_cast<std::size_t>(n), 0);
  const auto add_inter = [&](int a, int b, double d) {
    if (cg.h.add_edge(a, b, d)) {
      ++cg.inter_edges;
      ++inter_degree[static_cast<std::size_t>(a)];
      ++inter_degree[static_cast<std::size_t>(b)];
      cg.max_inter_weight = std::max(cg.max_inter_weight, d);
    }
  };
  // Crossing edges whose sp(a,b) exceeded `reach` (phase-0 clique edges
  // escape the paper's premise) retry with a wider bound after the view is
  // released — see below.
  struct Retry {
    int a, b;
    double bound;
  };
  std::vector<Retry> retries;
  for (int a : cover.centers) {
    const graph::SpView sp = ws.bounded(gp, a, reach);

    // Condition (i): centers b with sp(a,b) <= W_{i-1}.
    for (int v : sp.touched()) {
      if (v <= a || cover.center_of[static_cast<std::size_t>(v)] != v) continue;
      const double d = sp.dist(v);
      if (d <= w_prev) add_inter(a, v, d);
    }

    // Condition (ii): an edge {u,v} of G' crosses C_a and C_b. Scan edges of
    // a's members; by Lemma 5, sp(a,b) is within `reach`.
    for (int u : members[static_cast<std::size_t>(a)]) {
      for (const graph::Neighbor& nb : gp.neighbors(u)) {
        const int b = cover.center_of[static_cast<std::size_t>(nb.to)];
        if (b == a || b < a) continue;  // each unordered center pair once, from min center
        if (cg.h.has_edge(a, b)) continue;
        const double d = sp.dist(b);
        if (d == graph::kInf) {
          // The cover still guarantees sp(a,b) <= radius + w(u,v) + radius,
          // so a bounded retry always succeeds and H keeps the Lemma 7
          // approximation quality. Deferred: the retry reuses the workspace,
          // which would invalidate the view this loop is reading.
          retries.push_back({a, b, 2.0 * cover.radius + nb.w + 1e-9});
          continue;
        }
        add_inter(a, b, d);
      }
    }
  }
  for (const Retry& r : retries) {
    if (cg.h.has_edge(r.a, r.b)) continue;
    const double d = ws.distance(gp, r.a, r.b, r.bound);
    if (d == graph::kInf) continue;  // unreachable for a valid cover
    add_inter(r.a, r.b, d);
  }
  cg.max_inter_degree = *std::max_element(inter_degree.begin(), inter_degree.end());
  return cg;
}

double query_on_h(const graph::Graph& h, int x, int y, double bound, int* hops_out) {
  graph::DijkstraWorkspace ws(h.n());
  return query_on_h(ws, h, x, y, bound, hops_out);
}

double query_on_h(graph::DijkstraWorkspace& ws, const graph::Graph& h, int x, int y, double bound,
                  int* hops_out) {
  const graph::SpView sp = ws.bounded_to(h, x, y, bound);
  const double d = sp.dist(y);
  if (hops_out != nullptr) *hops_out = sp.path_hops(y);
  return d;
}

}  // namespace localspan::cluster
