#pragma once
/// \file cover.hpp
/// Cluster covers (§2.2.1 sequential, §3.2.1 distributed).
///
/// A cluster cover of J with radius ρ is a set of clusters {C_{u1}, ...}
/// such that every cluster has radius ρ (members within shortest-path
/// distance ρ of the center), every vertex belongs to a cluster, and any two
/// centers are more than ρ apart. Our covers additionally *partition* V
/// (each vertex records exactly one owning center), which both constructions
/// below produce naturally and which query-edge selection relies on.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/sp_workspace.hpp"

namespace localspan::runtime {
class WorkerPool;
}  // namespace localspan::runtime

namespace localspan::cluster {

/// A radius-ρ cluster cover of a (partial spanner) graph.
struct ClusterCover {
  double radius = 0.0;
  std::vector<int> center_of;        ///< owning center of each vertex (center_of[c]==c).
  std::vector<double> dist_to_center;  ///< sp_{G'}(center_of[v], v), 0 at centers.
  std::vector<int> centers;          ///< sorted list of distinct centers.

  [[nodiscard]] bool is_center(int v) const {
    return center_of[static_cast<std::size_t>(v)] == v;
  }

  /// Members of each center, keyed by center id (only centers present).
  [[nodiscard]] std::vector<std::vector<int>> members() const;
};

/// Sequential construction (§2.2.1): sweep vertices in id order; each still
/// uncovered vertex becomes a center and absorbs every uncovered vertex
/// within shortest-path distance `radius` in gp (bounded Dijkstra).
[[nodiscard]] ClusterCover sequential_cover(const graph::Graph& gp, double radius);

/// Output-sensitive variant on a frozen CSR snapshot with a caller-owned
/// workspace: each center's absorption sweep walks only the ball the bounded
/// search settled (O(Σ|ball| log |ball|) total instead of O(n · centers)),
/// and the workspace is reused across centers (and phases) so the steady
/// state allocates nothing. Produces the identical cover.
///
/// With a non-null `pool`, candidate-center balls are computed speculatively
/// in parallel waves (each ball is a pure function of (gp, u, radius)) and
/// committed sequentially in vertex-id order, so the cover is bit-identical
/// to the serial sweep at every thread count; candidates absorbed by an
/// earlier center in the same wave are discarded at commit.
[[nodiscard]] ClusterCover sequential_cover(const graph::CsrView& gp, double radius,
                                            graph::DijkstraWorkspace& ws,
                                            runtime::WorkerPool* pool = nullptr);

/// MIS-based construction (§3.2.1): build the proximity graph J on V with
/// {x,y} ∈ J iff sp_gp(x,y) <= radius; an MIS of J (computed by `mis`, which
/// receives J) gives the centers; every other vertex attaches to its
/// highest-id MIS neighbor in J. This is the distributed algorithm's cover;
/// with a deterministic `mis` it is reproducible.
[[nodiscard]] ClusterCover mis_cover(
    const graph::Graph& gp, double radius,
    const std::function<std::vector<int>(const graph::Graph&)>& mis);

/// Validation for tests: coverage, radius bound, center separation
/// (sp between any two centers > radius), and partition consistency.
[[nodiscard]] bool is_valid_cover(const graph::Graph& gp, const ClusterCover& cover);

}  // namespace localspan::cluster
