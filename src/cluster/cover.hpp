#pragma once
/// \file cover.hpp
/// Cluster covers (§2.2.1 sequential, §3.2.1 distributed).
///
/// A cluster cover of J with radius ρ is a set of clusters {C_{u1}, ...}
/// such that every cluster has radius ρ (members within shortest-path
/// distance ρ of the center), every vertex belongs to a cluster, and any two
/// centers are more than ρ apart. Our covers additionally *partition* V
/// (each vertex records exactly one owning center), which both constructions
/// below produce naturally and which query-edge selection relies on.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/sp_workspace.hpp"

namespace localspan::runtime {
class WorkerPool;
}  // namespace localspan::runtime

namespace localspan::cluster {

/// A radius-ρ cluster cover of a (partial spanner) graph.
struct ClusterCover {
  double radius = 0.0;
  std::vector<int> center_of;        ///< owning center of each vertex (center_of[c]==c).
  std::vector<double> dist_to_center;  ///< sp_{G'}(center_of[v], v), 0 at centers.
  std::vector<int> centers;          ///< sorted list of distinct centers.

  [[nodiscard]] bool is_center(int v) const {
    return center_of[static_cast<std::size_t>(v)] == v;
  }

  /// Members of each center, keyed by center id (only centers present).
  [[nodiscard]] std::vector<std::vector<int>> members() const;
};

/// Sequential construction (§2.2.1): sweep vertices in id order; each still
/// uncovered vertex becomes a center and absorbs every uncovered vertex
/// within shortest-path distance `radius` in gp (bounded Dijkstra).
[[nodiscard]] ClusterCover sequential_cover(const graph::Graph& gp, double radius);

/// Output-sensitive variant on a frozen CSR snapshot with a caller-owned
/// workspace: each center's absorption sweep walks only the ball the bounded
/// search settled (O(Σ|ball| log |ball|) total instead of O(n · centers)),
/// and the workspace is reused across centers (and phases) so the steady
/// state allocates nothing. Produces the identical cover.
///
/// With a non-null `pool`, candidate-center balls are computed speculatively
/// in parallel waves (each ball is a pure function of (gp, u, radius)) and
/// committed sequentially in vertex-id order, so the cover is bit-identical
/// to the serial sweep at every thread count; candidates absorbed by an
/// earlier center in the same wave are discarded at commit.
[[nodiscard]] ClusterCover sequential_cover(const graph::CsrView& gp, double radius,
                                            graph::DijkstraWorkspace& ws,
                                            runtime::WorkerPool* pool = nullptr);

/// A geometric stack of cluster covers of one frozen graph: level ℓ is a
/// sequential_cover at radius base_radius · ratio^ℓ. This is the structure
/// the serve-layer routing oracle consumes — each level contributes one
/// landmark-label family, and the stack as a whole answers distance queries
/// with multiplicative stretch (see serve/oracle.hpp for the bound).
struct CoverHierarchy {
  std::vector<double> radii;         ///< radii[ℓ] = base_radius · ratio^ℓ.
  std::vector<ClusterCover> levels;  ///< levels[ℓ] = cover at radii[ℓ].

  /// True when the top level has exactly one cluster per connected
  /// component, i.e. any connected pair shares a top-level center. When
  /// false (max_levels hit first), far pairs may miss every level and the
  /// oracle must fall back to an exact search for them.
  bool complete = false;
};

/// Build the cover stack bottom-up, stopping early once a level has one
/// center per connected component (further doublings cannot coarsen it).
/// Each level is an independent sequential_cover of the same frozen gp, so
/// the per-level sweep parallelizes through `pool` with the bit-identical
/// commit discipline sequential_cover already provides.
///
/// \throws std::invalid_argument for base_radius <= 0, ratio <= 1, or
/// max_levels < 1.
[[nodiscard]] CoverHierarchy cover_hierarchy(const graph::CsrView& gp, double base_radius,
                                             double ratio, int max_levels,
                                             graph::DijkstraWorkspace& ws,
                                             runtime::WorkerPool* pool = nullptr);

/// MIS-based construction (§3.2.1): build the proximity graph J on V with
/// {x,y} ∈ J iff sp_gp(x,y) <= radius; an MIS of J (computed by `mis`, which
/// receives J) gives the centers; every other vertex attaches to its
/// highest-id MIS neighbor in J. This is the distributed algorithm's cover;
/// with a deterministic `mis` it is reproducible.
[[nodiscard]] ClusterCover mis_cover(
    const graph::Graph& gp, double radius,
    const std::function<std::vector<int>(const graph::Graph&)>& mis);

/// Validation for tests: coverage, radius bound, center separation
/// (sp between any two centers > radius), and partition consistency.
[[nodiscard]] bool is_valid_cover(const graph::Graph& gp, const ClusterCover& cover);

}  // namespace localspan::cluster
