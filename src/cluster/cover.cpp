#include "cluster/cover.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graph/dijkstra.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

namespace localspan::cluster {

namespace {

/// cover.centers / cover.ball_size are deterministic at every thread count
/// (committed balls mirror the serial sweep); cover.wave_size and
/// cover.speculation_waste depend on the adaptive wave schedule and are
/// parallel-path diagnostics only.
struct CoverMetrics {
  obs::MetricId centers = obs::counter_id("cover.centers");
  obs::MetricId waste = obs::counter_id("cover.speculation_waste");
  obs::MetricId ball_size = obs::histogram_id("cover.ball_size");
  obs::MetricId wave_size = obs::histogram_id("cover.wave_size");
};

const CoverMetrics& cover_metrics() {
  static const CoverMetrics m;
  return m;
}

}  // namespace

std::vector<std::vector<int>> ClusterCover::members() const {
  std::vector<std::vector<int>> out(center_of.size());
  for (int v = 0; v < static_cast<int>(center_of.size()); ++v) {
    out[static_cast<std::size_t>(center_of[static_cast<std::size_t>(v)])].push_back(v);
  }
  return out;
}

ClusterCover sequential_cover(const graph::Graph& gp, double radius) {
  graph::DijkstraWorkspace ws(gp.n());
  return sequential_cover(graph::CsrView(gp), radius, ws);
}

ClusterCover sequential_cover(const graph::CsrView& gp, double radius,
                              graph::DijkstraWorkspace& ws, runtime::WorkerPool* pool) {
  if (radius < 0.0) throw std::invalid_argument("sequential_cover: negative radius");
  const int n = gp.n();
  ClusterCover cover;
  cover.radius = radius;
  cover.center_of.assign(static_cast<std::size_t>(n), -1);
  cover.dist_to_center.assign(static_cast<std::size_t>(n), graph::kInf);

  if (pool == nullptr || pool->threads() == 1) {
    for (int u = 0; u < n; ++u) {
      if (cover.center_of[static_cast<std::size_t>(u)] != -1) continue;
      const graph::SpView sp = ws.bounded(gp, u, radius);
      cover.centers.push_back(u);
      obs::counter_add(cover_metrics().centers, 1);
      obs::histogram_record(cover_metrics().ball_size,
                            static_cast<std::int64_t>(sp.touched().size()));
      // Every settled vertex is within `radius`; absorb the still-uncovered
      // ones. Walking the touched list keeps the sweep O(|ball|), not O(n).
      for (int v : sp.touched()) {
        if (cover.center_of[static_cast<std::size_t>(v)] != -1) continue;
        cover.center_of[static_cast<std::size_t>(v)] = u;
        cover.dist_to_center[static_cast<std::size_t>(v)] = sp.dist(v);
      }
    }
    return cover;
  }

  // Parallel path: speculative wave ball computation, sequential commit.
  // A candidate's ball depends only on (gp, candidate, radius) — never on
  // the cover state — so harvesting it in parallel and replaying commits in
  // vertex-id order reproduces the serial sweep bit-for-bit. A candidate
  // covered by an earlier commit in the same wave is discarded (its ball is
  // the speculation cost, bounded by the adaptive wave size).
  const int threads = pool->threads();
  int wave_cap = threads;
  const int wave_max = 8 * threads;
  std::vector<int> candidates;
  std::vector<std::vector<std::pair<int, double>>> balls;  // (vertex, dist) in settle order
  int next = 0;
  while (next < n) {
    candidates.clear();
    for (int u = next; u < n && static_cast<int>(candidates.size()) < wave_cap; ++u) {
      if (cover.center_of[static_cast<std::size_t>(u)] == -1) candidates.push_back(u);
    }
    if (candidates.empty()) break;
    const int wave = static_cast<int>(candidates.size());
    if (static_cast<int>(balls.size()) < wave) balls.resize(static_cast<std::size_t>(wave));
    runtime::for_each_with_workspace(
        pool, ws, 0, wave, [&](graph::DijkstraWorkspace& wws, int i) {
          const graph::SpView sp = wws.bounded(gp, candidates[static_cast<std::size_t>(i)], radius);
          std::vector<std::pair<int, double>>& ball = balls[static_cast<std::size_t>(i)];
          ball.clear();
          for (int v : sp.touched()) ball.push_back({v, sp.dist(v)});
        });
    obs::histogram_record(cover_metrics().wave_size, wave);
    int committed = 0;
    for (int i = 0; i < wave; ++i) {
      const int u = candidates[static_cast<std::size_t>(i)];
      if (cover.center_of[static_cast<std::size_t>(u)] != -1) continue;  // absorbed this wave
      cover.centers.push_back(u);
      ++committed;
      obs::counter_add(cover_metrics().centers, 1);
      obs::histogram_record(cover_metrics().ball_size,
                            static_cast<std::int64_t>(balls[static_cast<std::size_t>(i)].size()));
      for (const auto& [v, d] : balls[static_cast<std::size_t>(i)]) {
        if (cover.center_of[static_cast<std::size_t>(v)] != -1) continue;
        cover.center_of[static_cast<std::size_t>(v)] = u;
        cover.dist_to_center[static_cast<std::size_t>(v)] = d;
      }
    }
    obs::counter_add(cover_metrics().waste, wave - committed);
    next = candidates[static_cast<std::size_t>(wave - 1)] + 1;
    // Adaptive waste control: disjoint waves (everything committed) widen the
    // window; overlapping waves shrink it back toward one chunk per worker.
    wave_cap = committed == wave ? std::min(wave_cap * 2, wave_max)
                                 : std::max(threads, wave_cap / 2);
  }
  return cover;
}

namespace {

/// Connected-component count of a frozen CSR snapshot (plain BFS). Local to
/// cover_hierarchy's stopping rule; graph/components.hpp stays Graph-based.
int csr_component_count(const graph::CsrView& gp) {
  const int n = gp.n();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<int> queue;
  int count = 0;
  for (int s = 0; s < n; ++s) {
    if (seen[static_cast<std::size_t>(s)]) continue;
    ++count;
    seen[static_cast<std::size_t>(s)] = 1;
    queue.clear();
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int u = queue[head];
      for (const graph::Neighbor& nb : gp.neighbors(u)) {
        if (!seen[static_cast<std::size_t>(nb.to)]) {
          seen[static_cast<std::size_t>(nb.to)] = 1;
          queue.push_back(nb.to);
        }
      }
    }
  }
  return count;
}

}  // namespace

CoverHierarchy cover_hierarchy(const graph::CsrView& gp, double base_radius, double ratio,
                               int max_levels, graph::DijkstraWorkspace& ws,
                               runtime::WorkerPool* pool) {
  if (base_radius <= 0.0) throw std::invalid_argument("cover_hierarchy: base_radius must be > 0");
  if (ratio <= 1.0) throw std::invalid_argument("cover_hierarchy: ratio must be > 1");
  if (max_levels < 1) throw std::invalid_argument("cover_hierarchy: max_levels must be >= 1");

  CoverHierarchy hier;
  if (gp.n() == 0) {
    hier.complete = true;
    return hier;
  }
  const int components = csr_component_count(gp);
  double radius = base_radius;
  for (int level = 0; level < max_levels; ++level) {
    hier.radii.push_back(radius);
    hier.levels.push_back(sequential_cover(gp, radius, ws, pool));
    if (static_cast<int>(hier.levels.back().centers.size()) == components) {
      hier.complete = true;
      break;
    }
    radius *= ratio;
  }
  return hier;
}

ClusterCover mis_cover(const graph::Graph& gp, double radius,
                       const std::function<std::vector<int>(const graph::Graph&)>& mis) {
  if (radius < 0.0) throw std::invalid_argument("mis_cover: negative radius");
  const int n = gp.n();

  // Proximity graph J: {x,y} iff 0 < sp_gp(x,y) <= radius. Each node learns
  // its J-neighborhood from its local ball (distributed step 1, §3.2.1).
  graph::Graph j(n);
  std::vector<graph::ShortestPaths> balls;
  balls.reserve(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    balls.push_back(graph::dijkstra_bounded(gp, u, radius));
    for (int v = 0; v < u; ++v) {
      if (balls[static_cast<std::size_t>(u)].dist[static_cast<std::size_t>(v)] <= radius) {
        j.add_edge(u, v, 1.0);
      }
    }
  }

  const std::vector<int> independent = mis(j);
  std::vector<char> in_mis(static_cast<std::size_t>(n), 0);
  for (int c : independent) in_mis[static_cast<std::size_t>(c)] = 1;

  ClusterCover cover;
  cover.radius = radius;
  cover.center_of.assign(static_cast<std::size_t>(n), -1);
  cover.dist_to_center.assign(static_cast<std::size_t>(n), graph::kInf);
  for (int c : independent) {
    cover.center_of[static_cast<std::size_t>(c)] = c;
    cover.dist_to_center[static_cast<std::size_t>(c)] = 0.0;
  }
  for (int v = 0; v < n; ++v) {
    if (in_mis[static_cast<std::size_t>(v)]) continue;
    // Attach to the highest-id MIS neighbor in J (paper's tie-break).
    int best = -1;
    for (const graph::Neighbor& nb : j.neighbors(v)) {
      if (in_mis[static_cast<std::size_t>(nb.to)] && nb.to > best) best = nb.to;
    }
    if (best == -1) {
      // Maximality of a correct MIS forbids this.
      throw std::logic_error("mis_cover: vertex with no MIS neighbor (MIS not maximal?)");
    }
    cover.center_of[static_cast<std::size_t>(v)] = best;
    cover.dist_to_center[static_cast<std::size_t>(v)] =
        balls[static_cast<std::size_t>(best)].dist[static_cast<std::size_t>(v)];
  }
  cover.centers = independent;
  std::sort(cover.centers.begin(), cover.centers.end());
  return cover;
}

bool is_valid_cover(const graph::Graph& gp, const ClusterCover& cover) {
  const int n = gp.n();
  if (static_cast<int>(cover.center_of.size()) != n) return false;
  for (int v = 0; v < n; ++v) {
    const int c = cover.center_of[static_cast<std::size_t>(v)];
    if (c < 0 || c >= n) return false;                          // coverage
    if (cover.center_of[static_cast<std::size_t>(c)] != c) return false;  // centers own themselves
    const double d = graph::sp_distance(gp, c, v, cover.radius);
    if (d > cover.radius) return false;  // radius bound (also validates dist_to_center)
    if (std::abs(d - cover.dist_to_center[static_cast<std::size_t>(v)]) > 1e-9) return false;
  }
  for (int a : cover.centers) {
    for (int b : cover.centers) {
      if (a >= b) continue;
      if (graph::sp_distance(gp, a, b, cover.radius) <= cover.radius) return false;  // separation
    }
  }
  return true;
}

}  // namespace localspan::cluster
