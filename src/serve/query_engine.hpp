#pragma once
/// \file query_engine.hpp
/// The serve-layer front end: publishes immutable topology snapshots (one
/// per dynamic-engine commit) and hands reader threads stretch-bounded
/// distance/route queries against the latest one.
///
///   writer thread                         reader threads (T of them)
///   ─────────────                         ──────────────────────────
///   DynamicSpanner::apply_batch(window)   Reader r = engine.reader();
///     └─ commit hook ──► QueryEngine::    r.distance(u, v) / r.route(u, v)
///        publish: freeze CsrView, copy      └─ pin current snapshot
///        positions, build RoutingOracle,       (SnapshotStore::acquire),
///        SnapshotStore::publish (pointer       answer from oracle labels or
///        flip + grace-period reclaim)          exact-Dijkstra fallback, unpin
///
/// Readers never block the writer and the writer never blocks readers; the
/// only synchronization is the snapshot store's epoch protocol. Every
/// reader owns a private `DijkstraWorkspace`, so fallback searches are
/// allocation-free once warm and the workspace's stale-view stamping keeps
/// a query from leaking state into the next.
///
/// Query semantics (see oracle.hpp for the bound's derivation):
///   * distance(u, v): the oracle label estimate when it is trustworthy
///     (finite and above the near threshold) — stretch ≤ stretch_bound();
///     otherwise an exact bounded Dijkstra, whose radius the estimate caps
///     when available. Counted as serve.oracle_hits / serve.oracle_fallbacks.
///   * route(u, v): a label-guided descent — the oracle estimate bounds an
///     early-exit Dijkstra, so the search explores the ellipse the bound
///     carves out instead of a full ball, and returns the exact shortest
///     path on the snapshot.

#include <cstdint>
#include <optional>
#include <vector>

#include "dynamic/dynamic_spanner.hpp"
#include "graph/sp_workspace.hpp"
#include "runtime/parallel.hpp"
#include "serve/snapshot.hpp"

namespace localspan::serve {

struct ServeOptions {
  OracleConfig oracle;
  /// Label-build parallelism for publish (runtime::resolve_threads
  /// semantics: 0 = LOCALSPAN_THREADS default). Labels are bit-identical at
  /// every thread count.
  int threads = 0;
};

/// One snapshot store + publish pipeline. Publishing is single-writer (the
/// thread driving the dynamic engine); readers are arbitrary threads, each
/// holding its own `Reader`. All readers must be destroyed before the
/// engine (they borrow its store).
class QueryEngine {
 public:
  explicit QueryEngine(ServeOptions opts = {});

  /// Build and publish a snapshot of the dynamic engine's current state.
  /// Returns the new epoch. Called manually or through attach().
  std::uint64_t publish(const dynamic::DynamicSpanner& engine);

  /// Publish a static spanner (benches, tests): every vertex active.
  std::uint64_t publish(const graph::Graph& spanner, const std::vector<geom::Point>& points,
                        double stretch_t);

  /// Wire the engine's commit hook to republish here on every window
  /// commit. The hook holds a reference to this QueryEngine — detach (or
  /// destroy the dynamic engine) before destroying this object.
  void attach(dynamic::DynamicSpanner& engine);

  [[nodiscard]] const SnapshotStore& store() const noexcept { return store_; }
  [[nodiscard]] SnapshotStore& store() noexcept { return store_; }

  struct DistanceAnswer {
    double distance = graph::kInf;
    bool via_oracle = false;  ///< answered from labels alone (no search).
  };

  struct RouteAnswer {
    double distance = graph::kInf;
    int hops = -1;
    bool reachable = false;
    bool via_oracle = false;  ///< the search radius came from the oracle.
  };

  /// A reader thread's context: snapshot slot + private search workspace.
  /// Create one per thread (reader()); not thread-safe itself.
  class Reader {
   public:
    explicit Reader(QueryEngine& engine);
    ~Reader();
    Reader(Reader&& o) noexcept;
    Reader& operator=(Reader&&) = delete;
    Reader(const Reader&) = delete;
    Reader& operator=(const Reader&) = delete;

    /// Stretch-bounded distance query against the current snapshot.
    [[nodiscard]] DistanceAnswer distance(int u, int v);

    /// Exact shortest path on the current snapshot, oracle-pruned. When
    /// `path_out` is non-null it receives the vertex sequence u..v
    /// (cleared first; left empty when unreachable).
    [[nodiscard]] RouteAnswer route(int u, int v, std::vector<int>* path_out = nullptr);

    /// Pin the current snapshot explicitly (advanced use: batch several
    /// reads against one consistent topology).
    [[nodiscard]] SnapshotStore::ReadGuard pin() { return engine_->store_.acquire(*slot_); }

   private:
    QueryEngine* engine_ = nullptr;
    ReaderSlot* slot_ = nullptr;
    graph::DijkstraWorkspace ws_;
  };

  /// Register a reader context for the calling (or a soon-to-run) thread.
  [[nodiscard]] Reader reader() { return Reader(*this); }

 private:
  friend class Reader;

  std::uint64_t publish_snapshot(std::unique_ptr<TopologySnapshot> snap);

  ServeOptions opts_;
  SnapshotStore store_;
  graph::DijkstraWorkspace build_ws_;            ///< serial label-build scratch.
  std::optional<runtime::WorkerPool> pool_;      ///< engaged when threads > 1.
};

}  // namespace localspan::serve
