#include "serve/snapshot.hpp"

#include <stdexcept>

namespace localspan::serve {

std::uint64_t SnapshotStore::publish(std::unique_ptr<TopologySnapshot> snap) {
  if (snap == nullptr) throw std::invalid_argument("SnapshotStore::publish: null snapshot");
  std::lock_guard<std::mutex> lock(writer_mutex_);
  snap->epoch = next_epoch_++;
  snap->seal();
  const std::uint64_t epoch = snap->epoch;

  // Pointer first, epoch second: a reader that announced epoch e is then
  // guaranteed to load a snapshot with epoch >= e (see the header protocol).
  const TopologySnapshot* raw = snap.get();
  if (current_owner_ != nullptr) limbo_.push_back(std::move(current_owner_));
  current_owner_ = std::move(snap);
  current_.store(raw, std::memory_order_seq_cst);
  published_epoch_.store(epoch, std::memory_order_seq_cst);

  reclaim_locked();
  return epoch;
}

void SnapshotStore::try_reclaim() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  reclaim_locked();
}

void SnapshotStore::reclaim_locked() {
  if (limbo_.empty()) return;
  std::uint64_t min_pinned = ReaderSlot::kQuiescent;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const auto& slot : slots_) {
      // acquire pairs with the reader's release on guard drop: everything
      // the reader did to a snapshot happens-before a free it permits.
      const std::uint64_t e = slot->epoch_.load(std::memory_order_seq_cst);
      if (e < min_pinned) min_pinned = e;
    }
  }
  // A snapshot with epoch E was retired by the publish of E+1; any reader
  // that could still hold it pins an epoch <= E. Free those strictly below
  // every pin (quiescent slots impose no floor).
  std::size_t kept = 0;
  for (auto& dead : limbo_) {
    if (dead->epoch < min_pinned) {
      ++reclaimed_;
      dead.reset();
    } else {
      limbo_[kept++] = std::move(dead);
    }
  }
  limbo_.resize(kept);
}

ReaderSlot* SnapshotStore::register_reader() {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  for (auto& slot : slots_) {
    if (!slot->registered_) {
      slot->registered_ = true;
      return slot.get();
    }
  }
  slots_.push_back(std::make_unique<ReaderSlot>());
  slots_.back()->registered_ = true;
  return slots_.back().get();
}

void SnapshotStore::unregister_reader(ReaderSlot* slot) {
  if (slot == nullptr) return;
  std::lock_guard<std::mutex> lock(slots_mutex_);
  slot->epoch_.store(ReaderSlot::kQuiescent, std::memory_order_release);
  slot->registered_ = false;  // cell stays allocated for reuse; scans skip quiescent
}

SnapshotStore::ReadGuard SnapshotStore::acquire(ReaderSlot& slot) {
  if (slot.pinned()) {
    throw std::logic_error(
        "SnapshotStore::acquire: slot already pins a snapshot (one guard per reader at a time)");
  }
  const std::uint64_t e = published_epoch_.load(std::memory_order_seq_cst);
  slot.epoch_.store(e, std::memory_order_seq_cst);
  const TopologySnapshot* snap = current_.load(std::memory_order_seq_cst);
  if (snap == nullptr) {
    slot.epoch_.store(ReaderSlot::kQuiescent, std::memory_order_release);
    throw std::logic_error("SnapshotStore::acquire: nothing published yet");
  }
  return ReadGuard(snap, &slot);
}

int SnapshotStore::readers_registered() const {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  int count = 0;
  for (const auto& slot : slots_) {
    if (slot->registered_) ++count;
  }
  return count;
}

int SnapshotStore::readers_pinned() const {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  int count = 0;
  for (const auto& slot : slots_) {
    if (slot->epoch_.load(std::memory_order_seq_cst) != ReaderSlot::kQuiescent) ++count;
  }
  return count;
}

std::size_t SnapshotStore::retired_pending() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return limbo_.size();
}

std::uint64_t SnapshotStore::reclaimed() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return reclaimed_;
}

}  // namespace localspan::serve
