#pragma once
/// \file oracle.hpp
/// Cluster-cover routing oracle: landmark labels per cover level answering
/// stretch-bounded distance queries in ~O(label) time.
///
/// Structure (built per published snapshot, read-only afterwards):
///
///   * A geometric cover hierarchy (cluster::cover_hierarchy) of the frozen
///     spanner: level ℓ is a §2.2.1 sequential cover at radius
///     r_ℓ = r_0 · σ^ℓ, stopping once a level has one cluster per component.
///   * Per level, landmark labels (graph::LandmarkLabels): label_ℓ(v) holds
///     every level-ℓ center within shortest-path distance β·r_ℓ of v, with
///     the exact distance, computed by one bounded Dijkstra per center
///     (radius β·r_ℓ) and committed in ascending-center order — so labels
///     are bit-identical at every thread count.
///
/// Query: estimate(u, v) = min over levels ℓ, min over centers c in
/// label_ℓ(u) ∩ label_ℓ(v) of d(u,c) + d(c,v). Every candidate is the length
/// of a real path, so estimate ≥ d(u,v) always. For the upper bound, let ℓ*
/// be the smallest level with r_ℓ ≥ d(u,v)/(β−1): u's own center c at ℓ*
/// satisfies d(u,c) ≤ r_ℓ* and d(v,c) ≤ d + r_ℓ* ≤ β·r_ℓ*, so c is in both
/// labels and estimate ≤ d + 2·r_ℓ*. For d > (β−1)·r_0 that gives the
/// multiplicative bound
///
///     estimate ≤ (1 + 2σ/(β−1)) · d(u,v)        [stretch_bound()]
///
/// (r_ℓ* < σ·d/(β−1) when ℓ* > 0; the complete-hierarchy top level covers
/// ℓ* past the cap). Pairs at or below the near threshold (β+1)·r_0 — where
/// the additive 2·r_0 term would dominate — are instead answered by an
/// exact bounded Dijkstra whose radius the estimate caps, as are pairs with
/// no shared center (disconnected, or an incomplete hierarchy). The serve
/// QueryEngine implements that fallback and counts it.
///
/// With the defaults σ = 2, β = 2 the declared bound is 5.

#include <cstdint>
#include <vector>

#include "cluster/cover.hpp"
#include "graph/labels.hpp"
#include "graph/sp_workspace.hpp"

namespace localspan::runtime {
class WorkerPool;
}  // namespace localspan::runtime

namespace localspan::serve {

struct OracleConfig {
  /// Base cover radius r_0. <= 0 means auto: the maximum edge weight of the
  /// snapshot (one hop), so level 0 is the finest meaningful scale.
  double base_radius = 0.0;
  double level_ratio = 2.0;  ///< σ: geometric growth of cover radii (> 1).
  double label_reach = 2.0;  ///< β: labels keep centers within β·r_ℓ (>= 2).
  int max_levels = 24;       ///< hierarchy cap; hitting it marks truncated().
};

/// Immutable once built; safe to share across reader threads by const ref.
class RoutingOracle {
 public:
  RoutingOracle() = default;

  /// Build labels for the frozen snapshot `csr`. Single-owner during build;
  /// `ws` is the serial workspace, `pool` (optional) parallelizes the
  /// per-center label searches with deterministic commits.
  void build(const graph::CsrView& csr, const OracleConfig& cfg, graph::DijkstraWorkspace& ws,
             runtime::WorkerPool* pool = nullptr);

  /// Upper-bounding distance estimate, or kInf when u and v share no center
  /// at any level (disconnected, or truncated() and the pair is out of
  /// range). estimate(u, u) == 0.
  [[nodiscard]] double estimate(int u, int v) const;

  /// Declared multiplicative bound 1 + 2σ/(β−1), valid for connected pairs
  /// with d(u,v) > (β−1)·r_0 whenever !truncated().
  [[nodiscard]] double stretch_bound() const noexcept { return stretch_bound_; }

  /// Estimates at or below this ((β+1)·r_0) should be re-answered exactly —
  /// a bounded Dijkstra of that radius, which the estimate caps.
  [[nodiscard]] double near_threshold() const noexcept { return near_threshold_; }

  /// True when max_levels stopped the hierarchy before one-cluster-per-
  /// component; far pairs may then miss every level (estimate == kInf).
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  [[nodiscard]] int levels() const noexcept { return static_cast<int>(labels_.size()); }
  [[nodiscard]] double base_radius() const noexcept { return base_radius_; }
  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] long long total_label_entries() const noexcept;
  [[nodiscard]] const std::vector<graph::LandmarkLabels>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] const std::vector<double>& radii() const noexcept { return radii_; }

  /// Bit-identity witness for the determinism suite.
  bool operator==(const RoutingOracle&) const = default;

 private:
  int n_ = 0;
  double base_radius_ = 0.0;
  double stretch_bound_ = 0.0;
  double near_threshold_ = 0.0;
  bool truncated_ = false;
  std::vector<double> radii_;
  std::vector<graph::LandmarkLabels> labels_;
};

}  // namespace localspan::serve
