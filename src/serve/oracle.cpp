#include "serve/oracle.hpp"

#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

namespace localspan::serve {

namespace {

struct OracleMetrics {
  obs::MetricId build = obs::span_id("serve.oracle_build");
  obs::MetricId entries = obs::counter_id("serve.label_entries");
  obs::MetricId ball = obs::histogram_id("serve.label_ball_size");
};

const OracleMetrics& oracle_metrics() {
  static const OracleMetrics m;
  return m;
}

double max_edge_weight(const graph::CsrView& csr) {
  double wmax = 0.0;
  for (int u = 0; u < csr.n(); ++u) {
    for (const graph::Neighbor& nb : csr.neighbors(u)) {
      if (nb.w > wmax) wmax = nb.w;
    }
  }
  return wmax;
}

}  // namespace

void RoutingOracle::build(const graph::CsrView& csr, const OracleConfig& cfg,
                          graph::DijkstraWorkspace& ws, runtime::WorkerPool* pool) {
  if (cfg.level_ratio <= 1.0) throw std::invalid_argument("RoutingOracle: level_ratio must be > 1");
  if (cfg.label_reach < 2.0) throw std::invalid_argument("RoutingOracle: label_reach must be >= 2");
  if (cfg.max_levels < 1) throw std::invalid_argument("RoutingOracle: max_levels must be >= 1");
  const obs::Span span(oracle_metrics().build);

  n_ = csr.n();
  radii_.clear();
  labels_.clear();
  truncated_ = false;

  double r0 = cfg.base_radius;
  if (r0 <= 0.0) {
    r0 = max_edge_weight(csr);
    if (r0 <= 0.0) r0 = 1.0;  // edgeless snapshot; any positive scale works
  }
  base_radius_ = r0;
  stretch_bound_ = 1.0 + 2.0 * cfg.level_ratio / (cfg.label_reach - 1.0);
  near_threshold_ = (cfg.label_reach + 1.0) * r0;
  if (n_ == 0) return;

  const cluster::CoverHierarchy hier =
      cluster::cover_hierarchy(csr, r0, cfg.level_ratio, cfg.max_levels, ws, pool);
  truncated_ = !hier.complete;
  radii_ = hier.radii;
  labels_.resize(radii_.size());

  // Per level: one bounded Dijkstra per center at radius β·r_ℓ, harvested in
  // parallel, committed in ascending-center order. Because centers are
  // sorted and each commit appends that center's ball to the per-vertex
  // rows, every row ends up sorted by center id — the invariant
  // min_common_distance's merge needs — and the result is bit-identical at
  // every thread count (balls are pure functions of the frozen csr).
  std::vector<std::vector<graph::LabelEntry>> rows(static_cast<std::size_t>(n_));
  std::vector<std::vector<std::pair<int, double>>> balls;
  for (std::size_t level = 0; level < radii_.size(); ++level) {
    for (auto& row : rows) row.clear();
    const std::vector<int>& centers = hier.levels[level].centers;
    const double reach = cfg.label_reach * radii_[level];
    const int count = static_cast<int>(centers.size());
    if (static_cast<int>(balls.size()) < count) balls.resize(static_cast<std::size_t>(count));
    runtime::scatter_commit(
        pool, ws, count,
        [&](graph::DijkstraWorkspace& wws, int /*worker*/, int i) {
          const graph::SpView sp = wws.bounded(csr, centers[static_cast<std::size_t>(i)], reach);
          std::vector<std::pair<int, double>>& ball = balls[static_cast<std::size_t>(i)];
          ball.clear();
          for (int v : sp.touched()) ball.push_back({v, sp.dist(v)});
        },
        [&](int i) {
          const int c = centers[static_cast<std::size_t>(i)];
          obs::histogram_record(oracle_metrics().ball,
                                static_cast<std::int64_t>(balls[static_cast<std::size_t>(i)].size()));
          for (const auto& [v, d] : balls[static_cast<std::size_t>(i)]) {
            rows[static_cast<std::size_t>(v)].push_back({c, d});
          }
        });
    labels_[level].assign(rows);
    obs::counter_add(oracle_metrics().entries, labels_[level].total_entries());
  }
}

double RoutingOracle::estimate(int u, int v) const {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) {
    throw std::invalid_argument("RoutingOracle::estimate: vertex out of range");
  }
  if (u == v) return 0.0;
  double best = graph::kInf;
  for (const graph::LandmarkLabels& lab : labels_) {
    const double via = graph::min_common_distance(lab.at(u), lab.at(v));
    if (via < best) best = via;
  }
  return best;
}

long long RoutingOracle::total_label_entries() const noexcept {
  long long total = 0;
  for (const graph::LandmarkLabels& lab : labels_) total += lab.total_entries();
  return total;
}

}  // namespace localspan::serve
