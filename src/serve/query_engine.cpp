#include "serve/query_engine.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "obs/obs.hpp"

namespace localspan::serve {

namespace {

struct ServeMetrics {
  obs::MetricId queries = obs::counter_id("serve.queries");
  obs::MetricId hits = obs::counter_id("serve.oracle_hits");
  obs::MetricId fallbacks = obs::counter_id("serve.oracle_fallbacks");
  obs::MetricId routes = obs::counter_id("serve.routes");
  obs::MetricId publishes = obs::counter_id("serve.publishes");
  obs::MetricId epoch = obs::gauge_id("serve.snapshot_epoch");
  obs::MetricId readers = obs::gauge_id("serve.readers_live");
  obs::MetricId age = obs::gauge_id("serve.snapshot_age");
  obs::MetricId retired = obs::gauge_id("serve.retired_pending");
  obs::MetricId query_us = obs::histogram_id("serve.query_us");
  obs::MetricId route_us = obs::histogram_id("serve.route_us");
  obs::MetricId publish_us = obs::histogram_id("serve.publish_us");
};

const ServeMetrics& serve_metrics() {
  static const ServeMetrics m;
  return m;
}

using Clock = std::chrono::steady_clock;

std::int64_t micros_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count();
}

/// Oracle estimates upper-bound the true distance in exact arithmetic, but
/// a Dijkstra relaxation sums the same edges in a different order, so the
/// path can land an ulp above the label sum. Searches bounded by an
/// estimate get this relative slack so rounding never prunes the answer.
double search_radius(double est) {
  return est == graph::kInf ? est : est * (1.0 + 1e-9) + 1e-12;
}

void check_pair(const TopologySnapshot& snap, int u, int v) {
  if (u < 0 || u >= snap.n || v < 0 || v >= snap.n) {
    throw std::invalid_argument("QueryEngine: vertex out of range for the current snapshot");
  }
}

}  // namespace

QueryEngine::QueryEngine(ServeOptions opts) : opts_(opts) {
  const int threads = runtime::resolve_threads(opts_.threads);
  if (threads > 1) pool_.emplace(threads);
}

std::uint64_t QueryEngine::publish_snapshot(std::unique_ptr<TopologySnapshot> snap) {
  const auto t0 = Clock::now();
  snap->oracle.build(snap->csr, opts_.oracle, build_ws_, pool_ ? &*pool_ : nullptr);
  const std::uint64_t epoch = store_.publish(std::move(snap));
  if (obs::enabled()) {
    const ServeMetrics& m = serve_metrics();
    obs::counter_add(m.publishes, 1);
    obs::gauge_set(m.epoch, static_cast<std::int64_t>(epoch));
    obs::gauge_set(m.retired, static_cast<std::int64_t>(store_.retired_pending()));
    obs::histogram_record(m.publish_us, micros_since(t0));
  }
  return epoch;
}

std::uint64_t QueryEngine::publish(const dynamic::DynamicSpanner& engine) {
  auto snap = std::make_unique<TopologySnapshot>();
  snap->csr.assign(engine.spanner());
  snap->n = snap->csr.n();
  snap->points = engine.instance().points;
  snap->active.resize(static_cast<std::size_t>(snap->n));
  for (int v = 0; v < snap->n; ++v) {
    snap->active[static_cast<std::size_t>(v)] = engine.is_active(v) ? 1 : 0;
  }
  snap->stretch_t = engine.params().t;
  return publish_snapshot(std::move(snap));
}

std::uint64_t QueryEngine::publish(const graph::Graph& spanner,
                                   const std::vector<geom::Point>& points, double stretch_t) {
  if (static_cast<int>(points.size()) != spanner.n()) {
    throw std::invalid_argument("QueryEngine::publish: points/spanner size mismatch");
  }
  auto snap = std::make_unique<TopologySnapshot>();
  snap->csr.assign(spanner);
  snap->n = snap->csr.n();
  snap->points = points;
  snap->active.assign(static_cast<std::size_t>(snap->n), 1);
  snap->stretch_t = stretch_t;
  return publish_snapshot(std::move(snap));
}

void QueryEngine::attach(dynamic::DynamicSpanner& engine) {
  engine.set_commit_hook(
      [this](const dynamic::DynamicSpanner& committed) { this->publish(committed); });
}

QueryEngine::Reader::Reader(QueryEngine& engine)
    : engine_(&engine), slot_(engine.store_.register_reader()) {
  obs::gauge_set(serve_metrics().readers, engine.store_.readers_registered());
}

QueryEngine::Reader::Reader(Reader&& o) noexcept
    : engine_(o.engine_), slot_(o.slot_), ws_(std::move(o.ws_)) {
  o.engine_ = nullptr;
  o.slot_ = nullptr;
}

QueryEngine::Reader::~Reader() {
  if (engine_ != nullptr && slot_ != nullptr) {
    engine_->store_.unregister_reader(slot_);
    obs::gauge_set(serve_metrics().readers, engine_->store_.readers_registered());
  }
}

QueryEngine::DistanceAnswer QueryEngine::Reader::distance(int u, int v) {
  const bool timed = obs::enabled();
  const auto t0 = timed ? Clock::now() : Clock::time_point{};
  const SnapshotStore::ReadGuard guard = engine_->store_.acquire(*slot_);
  const TopologySnapshot& snap = *guard;
  check_pair(snap, u, v);
  const ServeMetrics& m = serve_metrics();
  obs::counter_add(m.queries, 1);

  DistanceAnswer out;
  if (!snap.active[static_cast<std::size_t>(u)] || !snap.active[static_cast<std::size_t>(v)]) {
    // A parked slot is isolated by construction; no search needed.
    out.via_oracle = true;
    obs::counter_add(m.hits, 1);
  } else {
    const double est = snap.oracle.estimate(u, v);
    if (est == graph::kInf) {
      // No shared landmark (disconnected pair, or a truncated hierarchy):
      // exact early-exit search settles at most u's component.
      out.distance = ws_.distance(snap.csr, u, v);
      obs::counter_add(m.fallbacks, 1);
    } else if (est <= snap.oracle.near_threshold()) {
      // Near pair: the additive 2·r0 slack would dominate, so answer
      // exactly. The estimate caps the search radius — a small ball.
      out.distance = ws_.distance(snap.csr, u, v, search_radius(est));
      obs::counter_add(m.fallbacks, 1);
    } else {
      out.distance = est;
      out.via_oracle = true;
      obs::counter_add(m.hits, 1);
    }
  }
  if (timed) {
    obs::histogram_record(m.query_us, micros_since(t0));
    const std::uint64_t now_epoch = engine_->store_.current_epoch();
    obs::gauge_set(m.age, static_cast<std::int64_t>(now_epoch - snap.epoch));
  }
  return out;
}

QueryEngine::RouteAnswer QueryEngine::Reader::route(int u, int v, std::vector<int>* path_out) {
  const bool timed = obs::enabled();
  const auto t0 = timed ? Clock::now() : Clock::time_point{};
  if (path_out != nullptr) path_out->clear();
  const SnapshotStore::ReadGuard guard = engine_->store_.acquire(*slot_);
  const TopologySnapshot& snap = *guard;
  check_pair(snap, u, v);
  const ServeMetrics& m = serve_metrics();
  obs::counter_add(m.routes, 1);

  RouteAnswer out;
  if (snap.active[static_cast<std::size_t>(u)] && snap.active[static_cast<std::size_t>(v)]) {
    const double est = snap.oracle.estimate(u, v);
    // The estimate upper-bounds the true distance, so an early-exit search
    // bounded by it must settle v (label-guided pruning); without an
    // estimate, fall back to an unbounded early-exit search.
    const graph::SpView view = ws_.bounded_to(snap.csr, u, v, search_radius(est));
    if (est == graph::kInf) obs::counter_add(m.fallbacks, 1);
    if (view.reached(v)) {
      out.distance = view.dist(v);
      out.hops = view.path_hops(v);
      out.reachable = true;
      out.via_oracle = est != graph::kInf;
      if (path_out != nullptr) {
        for (int cur = v; cur != -1; cur = view.parent(cur)) path_out->push_back(cur);
        std::reverse(path_out->begin(), path_out->end());
      }
    }
  }
  if (timed) obs::histogram_record(m.route_us, micros_since(t0));
  return out;
}

}  // namespace localspan::serve
