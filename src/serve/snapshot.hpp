#pragma once
/// \file snapshot.hpp
/// Epoch-published topology snapshots: RCU-style single-writer /
/// multi-reader store with grace-period reclamation.
///
/// A `TopologySnapshot` is an immutable bundle of everything a reader
/// thread needs to answer queries — frozen `CsrView` adjacency, vertex
/// positions, liveness flags and the prebuilt `RoutingOracle` — stamped
/// with a monotonically increasing epoch. The writer (the thread driving
/// `DynamicSpanner`) builds the next snapshot off to the side, then
/// publishes it with one atomic pointer flip; readers that were routing on
/// snapshot N keep doing so undisturbed while new acquisitions see N+1.
///
/// Reclamation protocol (all the cross-thread atomics are seq_cst — the
/// argument below leans on the single total order S over them):
///
///   writer publish:   current_.store(new)  then  published_epoch_.store(e)
///   reader acquire:   e = published_epoch_.load(); slot.store(e);
///                     s = current_.load();  — s->epoch >= e always, because
///                     the pointer is published *before* the epoch.
///   reader release:   slot.store(kQuiescent)   [release]
///   writer reclaim:   min_e = min over slots (acquire loads, quiescent
///                     slots excluded); free limbo snapshot S iff
///                     S.epoch < min_e.
///
/// Safety: suppose the writer frees S while a reader holds it. The reader's
/// pin e satisfies e <= S.epoch (it loaded `published_epoch_` before
/// loading the pointer that yielded S, and epochs only grow), so the
/// reclaim scan cannot have observed the pin — in S the scan's load of the
/// slot precedes the reader's slot.store(e). But then the reader's
/// subsequent current_.load() follows the retirement of S
/// (current_.store(replacement) precedes the scan in S), so it cannot have
/// returned S — contradiction. The release/acquire pairing on the slot
/// additionally gives the happens-before edge TSan needs between the
/// reader's last access to S and the writer's free.
///
/// Reader discipline: one pinned snapshot per `ReaderSlot` at a time
/// (acquire-while-pinned throws, mirroring `DijkstraWorkspace`'s
/// single-owner rule), and any `SpView` a reader derives from a snapshot is
/// epoch-stamped by its workspace, so use-after-release is caught by
/// sp_workspace.hpp's stale-view errors rather than silent corruption.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "geom/point.hpp"
#include "graph/sp_workspace.hpp"
#include "serve/oracle.hpp"

namespace localspan::serve {

/// Immutable after publish; readers access it by const ref only.
struct TopologySnapshot {
  std::uint64_t epoch = 0;  ///< assigned by SnapshotStore::publish.
  int n = 0;
  graph::CsrView csr;              ///< frozen spanner adjacency.
  std::vector<geom::Point> points;  ///< positions at publish time.
  std::vector<char> active;         ///< liveness flag per vertex.
  double stretch_t = 0.0;           ///< spanner stretch target (1 + eps).
  RoutingOracle oracle;

  /// Integrity stamp over the scalar fields, written as the last step of
  /// snapshot construction. The concurrent-publish test recomputes it on
  /// every acquisition: a torn (half-built) snapshot cannot satisfy it.
  std::uint64_t checksum = 0;

  [[nodiscard]] std::uint64_t compute_checksum() const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ epoch;
    h = h * 0x100000001b3ULL ^ static_cast<std::uint64_t>(n);
    h = h * 0x100000001b3ULL ^ static_cast<std::uint64_t>(points.size());
    h = h * 0x100000001b3ULL ^ static_cast<std::uint64_t>(active.size());
    h = h * 0x100000001b3ULL ^ static_cast<std::uint64_t>(oracle.levels());
    h = h * 0x100000001b3ULL ^ static_cast<std::uint64_t>(oracle.total_label_entries());
    return h;
  }
  void seal() noexcept { checksum = compute_checksum(); }
};

/// One registered reader thread's announcement cell.
class ReaderSlot {
 public:
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  [[nodiscard]] bool pinned() const noexcept {
    return epoch_.load(std::memory_order_relaxed) != kQuiescent;
  }

 private:
  friend class SnapshotStore;
  std::atomic<std::uint64_t> epoch_{kQuiescent};
  bool registered_ = false;  ///< guarded by SnapshotStore::slots_mutex_.
};

class SnapshotStore {
 public:
  SnapshotStore() = default;
  /// Joins outstanding ownership: all retired and the current snapshot are
  /// freed. Readers must be gone by now (the owning QueryEngine enforces
  /// this by construction order).
  ~SnapshotStore() = default;

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// RAII pin on one snapshot. Movable, not copyable; destruction (or
  /// release()) marks the slot quiescent again.
  class ReadGuard {
   public:
    ReadGuard() = default;
    ReadGuard(ReadGuard&& o) noexcept : snap_(o.snap_), slot_(o.slot_) {
      o.snap_ = nullptr;
      o.slot_ = nullptr;
    }
    ReadGuard& operator=(ReadGuard&& o) noexcept {
      if (this != &o) {
        release();
        snap_ = o.snap_;
        slot_ = o.slot_;
        o.snap_ = nullptr;
        o.slot_ = nullptr;
      }
      return *this;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() { release(); }

    void release() noexcept {
      if (slot_ != nullptr) {
        slot_->epoch_.store(ReaderSlot::kQuiescent, std::memory_order_release);
        slot_ = nullptr;
      }
      snap_ = nullptr;
    }

    [[nodiscard]] const TopologySnapshot& operator*() const noexcept { return *snap_; }
    [[nodiscard]] const TopologySnapshot* operator->() const noexcept { return snap_; }
    [[nodiscard]] const TopologySnapshot* get() const noexcept { return snap_; }
    [[nodiscard]] explicit operator bool() const noexcept { return snap_ != nullptr; }

   private:
    friend class SnapshotStore;
    ReadGuard(const TopologySnapshot* snap, ReaderSlot* slot) : snap_(snap), slot_(slot) {}
    const TopologySnapshot* snap_ = nullptr;
    ReaderSlot* slot_ = nullptr;
  };

  /// Writer side. Assigns the next epoch, seals the snapshot, flips the
  /// pointer, retires the predecessor and reclaims every retired snapshot
  /// whose grace period has elapsed. Serialized internally (callers may
  /// race, though the repo's engines publish from one thread).
  std::uint64_t publish(std::unique_ptr<TopologySnapshot> snap);

  /// Free retired snapshots no reader can still hold. publish() already
  /// does this; exposed so long reader-idle phases can drain limbo early.
  void try_reclaim();

  /// Reader side. Slots are registered once per reader thread and scanned
  /// by every reclaim, so a thread should hold its slot for its lifetime
  /// (QueryEngine::Reader does).
  [[nodiscard]] ReaderSlot* register_reader();
  void unregister_reader(ReaderSlot* slot);

  /// Pin the current snapshot. \throws std::logic_error before the first
  /// publish, or when `slot` already pins one (reader discipline).
  [[nodiscard]] ReadGuard acquire(ReaderSlot& slot);

  /// Latest published epoch (0 before the first publish).
  [[nodiscard]] std::uint64_t current_epoch() const noexcept {
    return published_epoch_.load(std::memory_order_seq_cst);
  }

  // Introspection (tests, obs export).
  [[nodiscard]] int readers_registered() const;
  [[nodiscard]] int readers_pinned() const;
  [[nodiscard]] std::size_t retired_pending() const;
  [[nodiscard]] std::uint64_t reclaimed() const;

 private:
  void reclaim_locked();  ///< requires writer_mutex_.

  std::atomic<const TopologySnapshot*> current_{nullptr};
  std::atomic<std::uint64_t> published_epoch_{0};

  mutable std::mutex writer_mutex_;  ///< serializes publish/reclaim + guards below.
  std::unique_ptr<TopologySnapshot> current_owner_;
  std::vector<std::unique_ptr<TopologySnapshot>> limbo_;
  std::uint64_t next_epoch_ = 1;
  std::uint64_t reclaimed_ = 0;

  mutable std::mutex slots_mutex_;  ///< guards the slot table (not the atomics in it).
  std::vector<std::unique_ptr<ReaderSlot>> slots_;
};

}  // namespace localspan::serve
