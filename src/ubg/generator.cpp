#include "ubg/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

#include "geom/grid.hpp"

namespace localspan::ubg {

double ball_volume(int dim, double r) {
  if (dim < 1) throw std::invalid_argument("ball_volume: dim must be >= 1");
  const double d = static_cast<double>(dim);
  return std::pow(std::numbers::pi, d / 2.0) * std::pow(r, d) / std::tgamma(d / 2.0 + 1.0);
}

namespace {

double auto_side(const UbgConfig& cfg) {
  // E[#alpha-neighbors] ~= n * vol(alpha) / side^dim = target_degree.
  const double vol = ball_volume(cfg.dim, cfg.alpha);
  const double volume_needed = cfg.n * vol / cfg.target_degree;
  return std::max(1.0, std::pow(volume_needed, 1.0 / cfg.dim));
}

std::vector<geom::Point> place_points(const UbgConfig& cfg, double side) {
  std::mt19937_64 rng(cfg.seed);
  std::uniform_real_distribution<double> unit(0.0, side);
  std::vector<geom::Point> pts;
  pts.reserve(static_cast<std::size_t>(cfg.n));
  switch (cfg.placement) {
    case Placement::kUniform: {
      for (int i = 0; i < cfg.n; ++i) {
        geom::Point p(cfg.dim);
        for (int k = 0; k < cfg.dim; ++k) p[k] = unit(rng);
        pts.push_back(p);
      }
      break;
    }
    case Placement::kClustered: {
      const int hubs = std::max(1, cfg.n / 48);
      std::vector<geom::Point> centers;
      for (int h = 0; h < hubs; ++h) {
        geom::Point c(cfg.dim);
        for (int k = 0; k < cfg.dim; ++k) c[k] = unit(rng);
        centers.push_back(c);
      }
      std::normal_distribution<double> blob(0.0, cfg.alpha);
      std::uniform_int_distribution<int> pick(0, hubs - 1);
      for (int i = 0; i < cfg.n; ++i) {
        const geom::Point& c = centers[static_cast<std::size_t>(pick(rng))];
        geom::Point p(cfg.dim);
        for (int k = 0; k < cfg.dim; ++k) p[k] = std::clamp(c[k] + blob(rng), 0.0, side);
        pts.push_back(p);
      }
      break;
    }
    case Placement::kCorridor: {
      // A strip: full length along axis 0, width 2*alpha in the others.
      const double width = 2.0 * cfg.alpha;
      std::uniform_real_distribution<double> across(0.0, width);
      // Stretch the long axis so total area matches the uniform workload.
      const double length = std::pow(side, cfg.dim) / std::pow(width, cfg.dim - 1);
      std::uniform_real_distribution<double> along(0.0, length);
      for (int i = 0; i < cfg.n; ++i) {
        geom::Point p(cfg.dim);
        p[0] = along(rng);
        for (int k = 1; k < cfg.dim; ++k) p[k] = across(rng);
        pts.push_back(p);
      }
      break;
    }
  }
  return pts;
}

}  // namespace

UbgInstance make_ubg(const UbgConfig& cfg, const GrayZonePolicy& policy) {
  if (cfg.n <= 0) throw std::invalid_argument("make_ubg: n must be positive");
  if (cfg.dim < 2 || cfg.dim > geom::kMaxDim) {
    throw std::invalid_argument("make_ubg: dim out of range");
  }
  if (!(cfg.alpha > 0.0) || cfg.alpha > 1.0) {
    throw std::invalid_argument("make_ubg: alpha must be in (0, 1]");
  }
  if (cfg.side < 0.0) throw std::invalid_argument("make_ubg: negative side");

  UbgInstance inst{cfg, {}, graph::Graph(cfg.n)};
  const double side = cfg.side > 0.0 ? cfg.side : auto_side(cfg);
  inst.config.side = side;
  inst.points = place_points(cfg, side);

  const geom::Grid grid(inst.points, 1.0);
  for (const auto& [u, v] : grid.pairs_within(1.0)) {
    const double d = inst.dist(u, v);
    if (d <= cfg.alpha || policy.connect(u, v, d)) {
      // Zero-distance duplicates would make an illegal zero-weight edge;
      // nudge to a tiny positive weight (coincident radios still talk).
      inst.g.add_edge(u, v, std::max(d, 1e-12));
    }
  }
  return inst;
}

UbgInstance make_ubg(const UbgConfig& cfg) {
  const auto policy = always_connect();
  return make_ubg(cfg, *policy);
}

bool is_valid_ubg(const UbgInstance& inst) {
  const int n = inst.g.n();
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double d = inst.dist(u, v);
      const bool e = inst.g.has_edge(u, v);
      if (d <= inst.config.alpha && !e) return false;
      if (d > 1.0 && e) return false;
    }
  }
  return true;
}

}  // namespace localspan::ubg
