#include "ubg/policy.hpp"

#include <stdexcept>

namespace localspan::ubg {

namespace {

class AlwaysPolicy final : public GrayZonePolicy {
 public:
  bool connect(int, int, double) const override { return true; }
  const char* name() const noexcept override { return "always"; }
};

class NeverPolicy final : public GrayZonePolicy {
 public:
  bool connect(int, int, double) const override { return false; }
  const char* name() const noexcept override { return "never"; }
};

class ProbabilisticPolicy final : public GrayZonePolicy {
 public:
  ProbabilisticPolicy(double p, std::uint64_t seed) : p_(p), seed_(seed) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("probabilistic: p must be in [0,1]");
  }

  bool connect(int u, int v, double) const override {
    // splitmix64 over the (u, v, seed) triple: stable across platforms.
    std::uint64_t x = seed_ ^ (static_cast<std::uint64_t>(u) << 32) ^ static_cast<std::uint64_t>(v);
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    const double unit = static_cast<double>(x >> 11) * 0x1.0p-53;
    return unit < p_;
  }

  const char* name() const noexcept override { return "probabilistic"; }

 private:
  double p_;
  std::uint64_t seed_;
};

class ThresholdPolicy final : public GrayZonePolicy {
 public:
  explicit ThresholdPolicy(double beta) : beta_(beta) {
    if (beta < 0.0 || beta > 1.0) throw std::invalid_argument("threshold: beta must be in [0,1]");
  }

  bool connect(int, int, double dist) const override { return dist <= beta_; }
  const char* name() const noexcept override { return "threshold"; }

 private:
  double beta_;
};

}  // namespace

std::unique_ptr<GrayZonePolicy> always_connect() { return std::make_unique<AlwaysPolicy>(); }
std::unique_ptr<GrayZonePolicy> never_connect() { return std::make_unique<NeverPolicy>(); }
std::unique_ptr<GrayZonePolicy> probabilistic(double p, std::uint64_t seed) {
  return std::make_unique<ProbabilisticPolicy>(p, seed);
}
std::unique_ptr<GrayZonePolicy> threshold(double beta) {
  return std::make_unique<ThresholdPolicy>(beta);
}

}  // namespace localspan::ubg
