#pragma once
/// \file policy.hpp
/// Gray-zone edge policies for the α-quasi unit ball graph model (§1.1).
///
/// The α-UBG model prescribes: |uv| <= α  => edge, |uv| > 1 => no edge, and
/// says *nothing* about pairs in the gray zone (α, 1] — that freedom is how
/// the model captures transmission errors, fading and obstructions. A
/// GrayZonePolicy resolves that freedom. All policies are deterministic
/// functions of (u, v, distance, seed) so instances are reproducible, and
/// symmetric in (u, v) so the resulting graph is undirected.

#include <cstdint>
#include <memory>

namespace localspan::ubg {

/// Decides whether a gray-zone pair is connected.
class GrayZonePolicy {
 public:
  virtual ~GrayZonePolicy() = default;

  /// \param u,v   endpoint ids with u < v guaranteed by the generator.
  /// \param dist  Euclidean distance, in (alpha, 1].
  [[nodiscard]] virtual bool connect(int u, int v, double dist) const = 0;

  /// Human-readable policy name for experiment tables.
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Every gray-zone pair is connected: G is the full unit ball graph (and for
/// alpha = 1 exactly the classical UDG of the literature the paper improves on).
[[nodiscard]] std::unique_ptr<GrayZonePolicy> always_connect();

/// No gray-zone pair is connected: the sparsest admissible α-UBG (an
/// adversary that drops every unstable link).
[[nodiscard]] std::unique_ptr<GrayZonePolicy> never_connect();

/// Pair {u,v} connected with probability p, decided by a seeded hash of
/// (min(u,v), max(u,v)) — symmetric and replayable.
[[nodiscard]] std::unique_ptr<GrayZonePolicy> probabilistic(double p, std::uint64_t seed);

/// Connected iff dist <= beta, for a threshold beta in [alpha, 1]: models a
/// uniform radio range between the pessimistic and optimistic extremes.
[[nodiscard]] std::unique_ptr<GrayZonePolicy> threshold(double beta);

}  // namespace localspan::ubg
