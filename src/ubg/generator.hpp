#pragma once
/// \file generator.hpp
/// α-UBG instance generation (§1.1).
///
/// The paper evaluates nothing empirically, so the workload generator is our
/// substitute for a deployed wireless network: points are placed in a
/// d-dimensional box by one of three deployment models, edges follow the
/// α-UBG rule with a pluggable gray-zone policy, and edge weights are the
/// pairwise Euclidean distances (the only geometric information the
/// algorithm is allowed to use).

#include <cstdint>
#include <vector>

#include "geom/point.hpp"
#include "graph/graph.hpp"
#include "ubg/policy.hpp"

namespace localspan::ubg {

/// Node deployment models.
enum class Placement {
  kUniform,    ///< iid uniform in the box — the standard random network.
  kClustered,  ///< Gaussian blobs around random centers — hotspot deployments.
  kCorridor,   ///< long thin strip — stresses hop diameter and phase count.
};

/// Instance description. `side == 0` auto-sizes the box so that the expected
/// number of α-neighbors per node is `target_degree`.
struct UbgConfig {
  int n = 256;
  int dim = 2;
  double alpha = 0.75;
  double side = 0.0;
  double target_degree = 10.0;
  Placement placement = Placement::kUniform;
  std::uint64_t seed = 1;
};

/// A generated network: node positions plus the α-UBG with Euclidean weights.
struct UbgInstance {
  UbgConfig config;
  std::vector<geom::Point> points;
  graph::Graph g;

  /// Euclidean distance between nodes u and v (convenience accessor used by
  /// all algorithm layers; the model gives algorithms pairwise distances).
  [[nodiscard]] double dist(int u, int v) const {
    return geom::distance(points[static_cast<std::size_t>(u)],
                          points[static_cast<std::size_t>(v)]);
  }
};

/// Generate an instance. \throws std::invalid_argument on invalid config
/// (n <= 0, dim outside [2, kMaxDim], alpha outside (0, 1]).
[[nodiscard]] UbgInstance make_ubg(const UbgConfig& cfg, const GrayZonePolicy& policy);

/// Convenience: uniform placement with the always-connect policy.
[[nodiscard]] UbgInstance make_ubg(const UbgConfig& cfg);

/// Exhaustive O(n^2) verification of the α-UBG model constraints:
/// every pair at distance <= alpha is an edge, no edge spans distance > 1.
/// For test use.
[[nodiscard]] bool is_valid_ubg(const UbgInstance& inst);

/// Volume of the d-dimensional Euclidean ball of radius r (used for box
/// auto-sizing; π^{d/2} r^d / Γ(d/2+1)).
[[nodiscard]] double ball_volume(int dim, double r);

}  // namespace localspan::ubg
