#include "dynamic/churn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <set>

namespace localspan::dynamic {

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kJoin: return "join";
    case EventKind::kLeave: return "leave";
    case EventKind::kMove: return "move";
  }
  return "?";
}

std::string validate_trace(const ChurnTrace& trace, const ubg::UbgInstance& inst) {
  if (trace.dim != inst.config.dim) return "trace dim does not match instance";
  if (trace.alpha != inst.config.alpha) return "trace alpha does not match instance";
  if (std::abs(trace.side - inst.config.side) > 1e-9 * std::max(1.0, inst.config.side)) {
    return "trace box side does not match instance";
  }
  std::vector<char> alive(static_cast<std::size_t>(inst.g.n()), 1);
  double prev_time = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const ChurnEvent& ev = trace.events[i];
    const std::string at = "event " + std::to_string(i) + ": ";
    if (ev.time < prev_time) return at + "time decreases";
    prev_time = ev.time;
    if (ev.node < 0) return at + "negative node id";
    if (ev.kind != EventKind::kLeave && ev.pos.dim() != trace.dim) {
      return at + "position dimension mismatch";
    }
    const auto slot = static_cast<std::size_t>(ev.node);
    switch (ev.kind) {
      case EventKind::kJoin:
        if (slot < alive.size() && alive[slot]) return at + "join of a live node";
        if (slot >= alive.size()) alive.resize(slot + 1, 0);
        alive[slot] = 1;
        break;
      case EventKind::kLeave:
        if (slot >= alive.size() || !alive[slot]) return at + "leave of a dead node";
        alive[slot] = 0;
        break;
      case EventKind::kMove:
        if (slot >= alive.size() || !alive[slot]) return at + "move of a dead node";
        break;
    }
  }
  return {};
}

namespace {

geom::Point uniform_point(std::mt19937_64& rng, int dim, double side) {
  std::uniform_real_distribution<double> coord(0.0, side);
  geom::Point p(dim);
  for (int k = 0; k < dim; ++k) p[k] = coord(rng);
  return p;
}

ChurnTrace trace_shell(const ubg::UbgInstance& inst) {
  return ChurnTrace{inst.config.dim, inst.config.alpha, inst.config.side, {}};
}

}  // namespace

ChurnTrace poisson_churn(const ubg::UbgInstance& inst, const PoissonChurnConfig& cfg) {
  ChurnTrace trace = trace_shell(inst);
  std::mt19937_64 rng(cfg.seed);
  std::exponential_distribution<double> gap(cfg.rate);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // Replay-accurate bookkeeping: which ids are live, which are free.
  std::vector<int> live(static_cast<std::size_t>(inst.g.n()));
  for (int v = 0; v < inst.g.n(); ++v) live[static_cast<std::size_t>(v)] = v;
  std::set<int> free_ids;
  int next_id = inst.g.n();

  double now = 0.0;
  trace.events.reserve(static_cast<std::size_t>(std::max(cfg.events, 0)));
  for (int i = 0; i < cfg.events; ++i) {
    now += gap(rng);
    const bool join = live.empty() || coin(rng) < cfg.join_fraction;
    ChurnEvent ev;
    ev.time = now;
    if (join) {
      ev.kind = EventKind::kJoin;
      if (!free_ids.empty()) {
        ev.node = *free_ids.begin();
        free_ids.erase(free_ids.begin());
      } else {
        ev.node = next_id++;
      }
      ev.pos = uniform_point(rng, trace.dim, trace.side);
      live.push_back(ev.node);
    } else {
      ev.kind = EventKind::kLeave;
      std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
      const std::size_t idx = pick(rng);
      ev.node = live[idx];
      live[idx] = live.back();
      live.pop_back();
      free_ids.insert(ev.node);
      ev.pos = geom::Point(trace.dim);
    }
    trace.events.push_back(ev);
  }
  return trace;
}

ChurnTrace random_waypoint(const ubg::UbgInstance& inst, const WaypointConfig& cfg) {
  ChurnTrace trace = trace_shell(inst);
  std::mt19937_64 rng(cfg.seed);
  const int movers = std::clamp(cfg.movers, 0, inst.g.n());

  // Distinct mover ids: a partial Fisher-Yates over 0..n-1.
  std::vector<int> ids(static_cast<std::size_t>(inst.g.n()));
  for (int v = 0; v < inst.g.n(); ++v) ids[static_cast<std::size_t>(v)] = v;
  for (int k = 0; k < movers; ++k) {
    std::uniform_int_distribution<int> pick(k, inst.g.n() - 1);
    std::swap(ids[static_cast<std::size_t>(k)], ids[static_cast<std::size_t>(pick(rng))]);
  }

  struct Mover {
    int id;
    geom::Point at;
    geom::Point goal;
  };
  std::vector<Mover> state;
  state.reserve(static_cast<std::size_t>(movers));
  for (int k = 0; k < movers; ++k) {
    const int id = ids[static_cast<std::size_t>(k)];
    state.push_back({id, inst.points[static_cast<std::size_t>(id)],
                     uniform_point(rng, trace.dim, trace.side)});
  }

  for (double now = cfg.sample_dt; now <= cfg.duration + 1e-12; now += cfg.sample_dt) {
    for (Mover& m : state) {
      double budget = cfg.speed * cfg.sample_dt;
      while (budget > 0.0) {
        const double to_goal = geom::distance(m.at, m.goal);
        if (to_goal <= budget) {
          m.at = m.goal;
          budget -= to_goal;
          m.goal = uniform_point(rng, trace.dim, trace.side);
          if (to_goal == 0.0) break;  // degenerate waypoint: avoid spinning
        } else {
          const double f = budget / to_goal;
          for (int k = 0; k < trace.dim; ++k) m.at[k] += f * (m.goal[k] - m.at[k]);
          budget = 0.0;
        }
      }
      trace.events.push_back({now, EventKind::kMove, m.id, m.at});
    }
  }
  return trace;
}

ChurnTrace regional_failure(const ubg::UbgInstance& inst, const RegionalFailureConfig& cfg) {
  ChurnTrace trace = trace_shell(inst);
  std::mt19937_64 rng(cfg.seed);
  const geom::Point epicenter = uniform_point(rng, trace.dim, trace.side);
  std::vector<int> hit;
  for (int v = 0; v < inst.g.n(); ++v) {
    if (geom::distance(inst.points[static_cast<std::size_t>(v)], epicenter) <= cfg.radius) {
      hit.push_back(v);
    }
  }
  for (int v : hit) trace.events.push_back({cfg.fail_time, EventKind::kLeave, v, geom::Point(trace.dim)});
  if (cfg.rejoin) {
    for (int v : hit) {
      trace.events.push_back(
          {cfg.rejoin_time, EventKind::kJoin, v, inst.points[static_cast<std::size_t>(v)]});
    }
  }
  return trace;
}

}  // namespace localspan::dynamic
