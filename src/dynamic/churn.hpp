#pragma once
/// \file churn.hpp
/// Dynamic-topology event model: traces of join/leave/move events over an
/// α-UBG deployment, plus deterministic trace generators for the three
/// workload families the evaluation needs — memoryless node churn (Poisson),
/// mobility (random waypoint), and correlated regional failure.
///
/// A trace is a replayable artifact: given the same seed instance, applying
/// the events in order always produces the same topology sequence, so
/// incremental-maintenance runs can be archived, diffed against full
/// recomputation, and replayed in benchmarks. Serialization (JSON and a
/// compact binary format) lives in io/trace_io.hpp.

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "ubg/generator.hpp"

namespace localspan::dynamic {

enum class EventKind {
  kJoin,   ///< a new radio powers on at `pos` (node id assigned by the trace).
  kLeave,  ///< radio `node` powers off / fails.
  kMove,   ///< radio `node` relocates to `pos`.
};

[[nodiscard]] const char* to_string(EventKind k) noexcept;

/// One topology-change event. `node` is the subject id: for joins the trace
/// assigns the id (reusing ids of departed nodes first, then fresh ones), so
/// replays are deterministic and the engine never has to guess slots. `pos`
/// is meaningful for join/move only.
struct ChurnEvent {
  double time = 0.0;
  EventKind kind = EventKind::kJoin;
  int node = 0;
  geom::Point pos = geom::Point(2);

  bool operator==(const ChurnEvent& o) const noexcept {
    return time == o.time && kind == o.kind && node == o.node &&
           (kind == EventKind::kLeave || pos == o.pos);
  }
};

/// A replayable event sequence against a fixed deployment model (dimension,
/// α and box side are recorded so a trace cannot be applied to a mismatched
/// instance by accident). Events are ordered by nondecreasing time.
struct ChurnTrace {
  int dim = 2;
  double alpha = 0.75;
  double side = 0.0;
  std::vector<ChurnEvent> events;

  bool operator==(const ChurnTrace& o) const noexcept {
    return dim == o.dim && alpha == o.alpha && side == o.side && events == o.events;
  }
};

/// Structural sanity check against a seed instance: matching dim/α,
/// nondecreasing times, and event ids valid under replay (leaves and moves
/// reference live nodes, joins reference dead slots or fresh ids).
/// Returns an empty string when valid, else a diagnostic.
[[nodiscard]] std::string validate_trace(const ChurnTrace& trace, const ubg::UbgInstance& inst);

// ---------------------------------------------------------------------------
// Trace generators. All are deterministic functions of (instance, config).
// ---------------------------------------------------------------------------

/// Memoryless churn: exponential inter-arrival times at `rate` events per
/// unit time; each event is a join (uniform position in the deployment box)
/// with probability `join_fraction`, else the departure of a uniformly
/// chosen live node. Joins reuse the lowest departed id before minting new
/// ones, so the id space stays compact.
struct PoissonChurnConfig {
  int events = 64;
  double rate = 4.0;           ///< expected events per unit time.
  double join_fraction = 0.5;  ///< P(join); the rest are leaves.
  std::uint64_t seed = 1;
};
[[nodiscard]] ChurnTrace poisson_churn(const ubg::UbgInstance& inst, const PoissonChurnConfig& cfg);

/// Random waypoint mobility: `movers` distinct nodes each pick a uniform
/// waypoint, travel toward it at `speed` (distance per unit time), and pick
/// a new one on arrival. Positions are sampled every `sample_dt` for
/// `duration` time units and emitted as move events.
struct WaypointConfig {
  int movers = 8;
  double speed = 0.25;
  double sample_dt = 0.25;
  double duration = 8.0;
  std::uint64_t seed = 1;
};
[[nodiscard]] ChurnTrace random_waypoint(const ubg::UbgInstance& inst, const WaypointConfig& cfg);

/// Correlated regional failure: every node within `radius` of a uniformly
/// chosen epicenter fails at `fail_time` (a burst of leaves), and — when
/// `rejoin` is set — powers back on at its original position at
/// `rejoin_time` (a burst of joins). Models localized outages: jamming,
/// power loss, weather cells.
struct RegionalFailureConfig {
  double radius = 1.5;
  double fail_time = 1.0;
  bool rejoin = true;
  double rejoin_time = 2.0;
  std::uint64_t seed = 1;
};
[[nodiscard]] ChurnTrace regional_failure(const ubg::UbgInstance& inst,
                                          const RegionalFailureConfig& cfg);

}  // namespace localspan::dynamic
