#include "dynamic/dynamic_spanner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "graph/dijkstra.hpp"
#include "graph/metrics.hpp"
#include "obs/obs.hpp"

namespace localspan::dynamic {

namespace {

/// Deduplicate a small id set in place.
void sort_unique(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// Engine-level metrics. dyn.ball_size / dyn.regions / dyn.region_ball /
/// dyn.region_events and every counter are deterministic at any thread
/// count; the *_us/_ns series are wall-clock. dyn.region_harvest_us is the
/// per-region harvest cost the flat BatchStats sums away (satellite fix:
/// the batch CLI surfaces its p50/p99).
struct DynMetrics {
  obs::MetricId events = obs::counter_id("dyn.events");
  obs::MetricId batches = obs::counter_id("dyn.batches");
  obs::MetricId fallbacks = obs::counter_id("dyn.fallbacks");
  obs::MetricId edges_added = obs::counter_id("dyn.edges_added");
  obs::MetricId edges_removed = obs::counter_id("dyn.edges_removed");
  obs::MetricId merged_events = obs::counter_id("dyn.merged_events");
  obs::MetricId heap_pushes = obs::counter_id("dyn.heap_pushes");
  obs::MetricId heap_pops = obs::counter_id("dyn.heap_pops");
  obs::MetricId ball_size = obs::histogram_id("dyn.ball_size");
  obs::MetricId certify_scope = obs::histogram_id("dyn.certify_scope");
  obs::MetricId regions = obs::histogram_id("dyn.regions");
  obs::MetricId region_ball = obs::histogram_id("dyn.region_ball");
  obs::MetricId region_events = obs::histogram_id("dyn.region_events");
  obs::MetricId region_harvest_us = obs::histogram_id("dyn.region_harvest_us");
  obs::MetricId apply_span = obs::span_id("dyn.apply");
  obs::MetricId batch_span = obs::span_id("dyn.apply_batch");
  obs::MetricId ball_span = obs::span_id("dyn.ball");
  obs::MetricId rerun_span = obs::span_id("dyn.rerun");
  obs::MetricId splice_span = obs::span_id("dyn.splice");
  obs::MetricId certify_span = obs::span_id("dyn.certify");
  obs::MetricId region_span = obs::span_id("dyn.region_harvest");
  obs::MetricId full_span = obs::span_id("dyn.full_recompute");
};

const DynMetrics& dyn_metrics() {
  static const DynMetrics m;
  return m;
}

/// Drain heap tallies accumulated by engine-level searches (dirty-ball and
/// certify sweeps) into dyn.heap_*; the nested relaxed_greedy runs flush
/// their own workspaces into rg.heap_* at phase boundaries.
void flush_heap_ops(graph::DijkstraWorkspace& ws, runtime::WorkerPool* pool) {
  if (!obs::enabled()) return;
  auto [pushes, pops] = ws.take_heap_ops();
  if (pool != nullptr) {
    for (int w = 0; w < pool->threads(); ++w) {
      const auto [a, b] = pool->workspace(w).take_heap_ops();
      pushes += a;
      pops += b;
    }
  }
  obs::counter_add(dyn_metrics().heap_pushes, pushes);
  obs::counter_add(dyn_metrics().heap_pops, pops);
}

/// Adapts the (optional) user-supplied std::function weight transform to the
/// workspace's template parameter. Only constructed when a transform is
/// actually configured, so the identity path keeps a direct-load relaxation
/// loop with no per-edge indirect call.
struct TransformRef {
  const std::function<double(double)>* fn;
  double operator()(double w) const { return (*fn)(w); }
};

}  // namespace

DynamicSpanner::DynamicSpanner(ubg::UbgInstance inst, const core::Params& params,
                               DynamicOptions opts)
    : inst_(std::move(inst)),
      params_(params),
      opts_(std::move(opts)),
      spanner_(0),
      // Cell side 1.0: connect_radius <= 1, so one adjacent-cell sweep
      // covers every possible radio link.
      grid_(inst_.config.dim, 1.0) {
  params_.validate();
  if (std::abs(params_.alpha - inst_.config.alpha) > 1e-12) {
    throw std::invalid_argument("DynamicSpanner: params.alpha != instance alpha");
  }
  if (opts_.connect_radius < inst_.config.alpha - 1e-12 || opts_.connect_radius > 1.0 + 1e-12) {
    throw std::invalid_argument("DynamicSpanner: connect_radius must be in [alpha, 1]");
  }
  if (opts_.radius_scale < 1.0) {
    throw std::invalid_argument("DynamicSpanner: radius_scale must be >= 1");
  }
  wmax_ = active_weight(1.0);
  if (!(wmax_ > 0.0) || !std::isfinite(wmax_)) {
    throw std::invalid_argument("DynamicSpanner: weight transform must map 1 to a positive weight");
  }
  witness_bound_ = params_.t * wmax_;
  core_radius_ = opts_.radius_scale * (params_.t + 1.0) * wmax_;
  ball_radius_ = core_radius_ + witness_bound_;
  if (opts_.ball_radius_override > 0.0) {
    ball_radius_ = opts_.ball_radius_override;
    core_radius_ = std::max(0.0, ball_radius_ - witness_bound_);
  }
  active_.assign(static_cast<std::size_t>(inst_.g.n()), 1);
  active_count_ = inst_.g.n();
  for (int v = 0; v < inst_.g.n(); ++v) {
    grid_.insert(v, inst_.points[static_cast<std::size_t>(v)]);
  }
  scratch_local_id_.assign(static_cast<std::size_t>(inst_.g.n()), -1);
  scratch_in_core_.assign(static_cast<std::size_t>(inst_.g.n()), 0);
  scratch_in_scope_.assign(static_cast<std::size_t>(inst_.g.n()), 0);
  batch_owner_.assign(static_cast<std::size_t>(inst_.g.n()), -1);
  // Every relaxed_greedy run (local repairs and full recomputes) shares one
  // workspace so the steady state reuses its buffers, unless the caller
  // supplied a workspace of their own.
  if (opts_.greedy.workspace == nullptr) opts_.greedy.workspace = &greedy_ws_;
  // One long-lived worker team serves the local reruns and the certify
  // sweep; spawning it once keeps the per-event steady state thread- and
  // allocation-free. A thread request on the nested greedy options counts
  // too — otherwise every per-event rerun would spawn its own run-local
  // pool, which is exactly what the engine-owned pool exists to prevent.
  const int engine_threads =
      runtime::resolve_threads(opts_.threads > 0 ? opts_.threads : opts_.greedy.threads);
  if (engine_threads > 1 && opts_.greedy.worker_pool == nullptr) {
    pool_.emplace(engine_threads);
    opts_.greedy.worker_pool = &*pool_;
  }
  // Per-worker greedy options for the batch path's concurrent region
  // reruns: each worker repairs its regions with a *serial* relaxed_greedy
  // against its own pool workspace (no nested dispatch). Built once here so
  // a warmed apply_batch never copies the std::function weight transform.
  if (runtime::WorkerPool* const tm = team(); tm != nullptr) {
    worker_greedy_opts_.reserve(static_cast<std::size_t>(tm->threads()));
    for (int w = 0; w < tm->threads(); ++w) {
      core::RelaxedGreedyOptions o = opts_.greedy;
      o.workspace = &tm->workspace(w);
      o.worker_pool = nullptr;
      o.threads = 1;
      worker_greedy_opts_.push_back(std::move(o));
    }
    // Sized eagerly (and kept in step by ensure_slot) rather than lazily
    // inside the harvest: region→worker assignment is dynamic, so lazy
    // growth would leave rarely-hit workers cold and break the
    // zero-allocation steady state nondeterministically.
    worker_local_id_.assign(static_cast<std::size_t>(tm->threads()),
                            std::vector<int>(static_cast<std::size_t>(inst_.g.n()), -1));
    worker_in_core_.assign(static_cast<std::size_t>(tm->threads()),
                           std::vector<char>(static_cast<std::size_t>(inst_.g.n()), 0));
  }
  full_recompute();
}

double DynamicSpanner::active_weight(double len) const {
  return opts_.greedy.weight_transform ? opts_.greedy.weight_transform(len) : len;
}

geom::Point DynamicSpanner::parked_position(int v) const {
  // Dead slots sit on the negative side of axis 0, 2.0 apart — beyond
  // distance 1 of the deployment quadrant and of each other, so the
  // instance stays a valid α-UBG with the slot correctly isolated.
  geom::Point p(inst_.config.dim);
  p[0] = -(2.0 + 2.0 * v);
  return p;
}

bool DynamicSpanner::is_active(int v) const {
  return v >= 0 && v < inst_.g.n() && active_[static_cast<std::size_t>(v)] != 0;
}

void DynamicSpanner::ensure_slot(int v) {
  while (inst_.g.n() <= v) {
    const int id = inst_.g.add_vertex();
    inst_.points.push_back(parked_position(id));
    active_.push_back(0);
    spanner_.add_vertex();
    ++inst_.config.n;
    scratch_local_id_.push_back(-1);
    scratch_in_core_.push_back(0);
    scratch_in_scope_.push_back(0);
    batch_owner_.push_back(-1);
    for (std::vector<int>& ids : worker_local_id_) ids.push_back(-1);
    for (std::vector<char>& flags : worker_in_core_) flags.push_back(0);
  }
}

void DynamicSpanner::connect_neighbors(int node, std::vector<int>* touched) {
  if (opts_.linear_scan_discovery) {
    // Same squared-distance comparison as DynamicGrid::for_neighbors_within,
    // so the two discovery paths agree bit-for-bit on boundary pairs.
    const double r2 = opts_.connect_radius * opts_.connect_radius;
    const geom::Point& at = inst_.points[static_cast<std::size_t>(node)];
    for (int u = 0; u < inst_.g.n(); ++u) {
      if (u == node || !active_[static_cast<std::size_t>(u)]) continue;
      const double d2 = geom::sq_distance(at, inst_.points[static_cast<std::size_t>(u)]);
      if (d2 <= r2) {
        inst_.g.add_edge(node, u, std::max(std::sqrt(d2), 1e-12));
        touched->push_back(u);
      }
    }
    return;
  }
  grid_.for_neighbors_within(inst_.points[static_cast<std::size_t>(node)], opts_.connect_radius,
                             [&](int u, double d) {
                               if (u == node) return;
                               inst_.g.add_edge(node, u, std::max(d, 1e-12));
                               touched->push_back(u);
                             });
}

void DynamicSpanner::check_position(const geom::Point& pos) const {
  if (pos.dim() != inst_.config.dim) {
    throw std::invalid_argument("DynamicSpanner: event position dimension mismatch");
  }
  for (int k = 0; k < pos.dim(); ++k) {
    if (!std::isfinite(pos[k]) || pos[k] < 0.0) {
      throw std::invalid_argument(
          "DynamicSpanner: positions must be finite and non-negative (the deployment quadrant)");
    }
  }
}

void DynamicSpanner::full_recompute() {
  const CommitNotifier notify(*this);
  const obs::Span span(dyn_metrics().full_span);
  spanner_ = core::relaxed_greedy(inst_, params_, opts_.greedy).spanner;
}

std::vector<int> DynamicSpanner::update_ubg(const ChurnEvent& ev, RepairStats* st) {
  std::vector<int> touched;
  update_ubg_into(ev, &st->spanner_edges_removed, &touched);
  return touched;
}

void DynamicSpanner::update_ubg_into(const ChurnEvent& ev, int* spanner_removed,
                                     std::vector<int>* touched) {
  std::vector<int>& old_nbrs = scratch_old_nbrs_;
  old_nbrs.clear();
  switch (ev.kind) {
    case EventKind::kJoin: {
      if (ev.node < 0) throw std::invalid_argument("DynamicSpanner: negative node id");
      if (is_active(ev.node)) throw std::invalid_argument("DynamicSpanner: join of a live node");
      check_position(ev.pos);
      ensure_slot(ev.node);
      const auto slot = static_cast<std::size_t>(ev.node);
      inst_.points[slot] = ev.pos;
      active_[slot] = 1;
      ++active_count_;
      grid_.insert(ev.node, ev.pos);
      touched->push_back(ev.node);
      connect_neighbors(ev.node, touched);
      break;
    }
    case EventKind::kLeave: {
      if (!is_active(ev.node)) throw std::invalid_argument("DynamicSpanner: leave of a dead node");
      for (const graph::Neighbor& nb : inst_.g.neighbors(ev.node)) old_nbrs.push_back(nb.to);
      for (int u : old_nbrs) {
        inst_.g.remove_edge(ev.node, u);
        if (spanner_.remove_edge(ev.node, u)) ++*spanner_removed;
        touched->push_back(u);
      }
      const auto slot = static_cast<std::size_t>(ev.node);
      active_[slot] = 0;
      --active_count_;
      grid_.remove(ev.node);
      inst_.points[slot] = parked_position(ev.node);
      break;
    }
    case EventKind::kMove: {
      if (!is_active(ev.node)) throw std::invalid_argument("DynamicSpanner: move of a dead node");
      check_position(ev.pos);
      // All incident edges are recomputed: lengths changed, so weights must
      // too, and the local rerun re-derives the node's spanner edges anyway.
      for (const graph::Neighbor& nb : inst_.g.neighbors(ev.node)) old_nbrs.push_back(nb.to);
      for (int u : old_nbrs) {
        inst_.g.remove_edge(ev.node, u);
        if (spanner_.remove_edge(ev.node, u)) ++*spanner_removed;
        touched->push_back(u);
      }
      inst_.points[static_cast<std::size_t>(ev.node)] = ev.pos;
      grid_.move(ev.node, ev.pos);
      touched->push_back(ev.node);
      connect_neighbors(ev.node, touched);
      break;
    }
  }
  sort_unique(*touched);
  // Only live vertices seed the dirty ball (a departed node is isolated).
  std::erase_if(*touched, [this](int v) { return !is_active(v); });
}

void DynamicSpanner::repair(const std::vector<int>& touched, RepairStats* st,
                            std::vector<int>* modified) {
  const std::function<double(double)>& tf = opts_.greedy.weight_transform;
  const graph::SpView sp = [&] {
    const obs::Span span(dyn_metrics().ball_span);
    return tf ? ws_.multi_bounded(inst_.g, touched, ball_radius_, TransformRef{&tf})
              : ws_.multi_bounded(inst_.g, touched, ball_radius_);
  }();

  // Scratch reuse: local_id/in_core are event-clean members (-1/0 outside
  // the previous ball, reset below before returning). The ball is exactly
  // the search's touched list — every settled vertex is within the radius —
  // sorted so local ids (and with them the local rerun) stay deterministic.
  std::vector<int>& ball = scratch_ball_;
  ball.assign(sp.touched().begin(), sp.touched().end());
  std::sort(ball.begin(), ball.end());
  std::vector<int>& local_id = scratch_local_id_;
  std::vector<char>& in_core = scratch_in_core_;
  for (std::size_t i = 0; i < ball.size(); ++i) {
    const int v = ball[i];
    local_id[static_cast<std::size_t>(v)] = static_cast<int>(i);
    if (sp.dist(v) <= core_radius_) {
      in_core[static_cast<std::size_t>(v)] = 1;
      ++st->core_size;
    }
  }
  st->ball_size = static_cast<int>(ball.size());
  obs::histogram_record(dyn_metrics().ball_size, st->ball_size);
  flush_heap_ops(ws_, nullptr);

  // The α-UBG induced on B is itself a valid α-UBG over the ball's points,
  // so the whole static pipeline applies to it unchanged.
  ubg::UbgInstance sub{inst_.config, {}, graph::Graph(static_cast<int>(ball.size()))};
  sub.config.n = static_cast<int>(ball.size());
  sub.points.reserve(ball.size());
  for (int v : ball) sub.points.push_back(inst_.points[static_cast<std::size_t>(v)]);
  for (int v : ball) {
    for (const graph::Neighbor& nb : inst_.g.neighbors(v)) {
      if (v < nb.to && local_id[static_cast<std::size_t>(nb.to)] >= 0) {
        sub.g.add_edge(local_id[static_cast<std::size_t>(v)],
                       local_id[static_cast<std::size_t>(nb.to)], nb.w);
        ++st->sub_edges;
      }
    }
  }

  graph::Graph local(0);
  if (sub.g.n() > 0) {
    const obs::Span span(dyn_metrics().rerun_span);
    local = core::relaxed_greedy(sub, params_, opts_.greedy).spanner;
  }

  // Splice. Drop standing edges with both endpoints in the core (the local
  // result replaces them); keep everything crossing the boundary so distant
  // witnesses survive; insert every locally chosen edge. Two-phase: the
  // per-member drop lists only read the frozen pre-splice spanner (every
  // core-internal edge {v, u}, v < u, is harvested at v, so removals at
  // other members never change what a harvest would see), then the
  // removals commit in ball order — bit-identical to the interleaved
  // serial loop at every thread count, on the same engine team the local
  // rerun used.
  {
    const obs::Span span(dyn_metrics().splice_span);
    if (scratch_drop_.size() < ball.size()) scratch_drop_.resize(ball.size());
    runtime::scatter_commit(
        team(), ws_, static_cast<int>(ball.size()),
        [&](graph::DijkstraWorkspace&, int, int i) {
          const int v = ball[static_cast<std::size_t>(i)];
          std::vector<int>& drop = scratch_drop_[static_cast<std::size_t>(i)];
          drop.clear();
          if (!in_core[static_cast<std::size_t>(v)]) return;
          for (const graph::Neighbor& nb : spanner_.neighbors(v)) {
            if (v < nb.to && in_core[static_cast<std::size_t>(nb.to)]) drop.push_back(nb.to);
          }
        },
        [&](int i) {
          const int v = ball[static_cast<std::size_t>(i)];
          for (int u : scratch_drop_[static_cast<std::size_t>(i)]) {
            spanner_.remove_edge(v, u);
            ++st->spanner_edges_removed;
            modified->push_back(v);
            modified->push_back(u);
          }
        });
    for (const graph::Edge& e : local.edges()) {
      const int gu = ball[static_cast<std::size_t>(e.u)];
      const int gv = ball[static_cast<std::size_t>(e.v)];
      if (spanner_.add_edge(gu, gv, e.w)) {
        ++st->spanner_edges_added;
        modified->push_back(gu);
        modified->push_back(gv);
      }
    }
  }

  // Restore the event-clean scratch invariant in O(|ball|).
  for (int v : ball) {
    local_id[static_cast<std::size_t>(v)] = -1;
    in_core[static_cast<std::size_t>(v)] = 0;
  }
}

bool DynamicSpanner::certify(const std::vector<int>& modified, int* scope_size_out) const {
  const obs::Span span(dyn_metrics().certify_span);
  const std::function<double(double)>& tf = opts_.greedy.weight_transform;
  const double scope_radius = witness_bound_ + wmax_;
  // Scratch reuse: in_scope is an event-clean member (all-0 between calls);
  // scoped_ records the entries to reset. An empty `modified` means "certify
  // everything" without materializing the flag array. The disturbed scope
  // is the workspace search's touched list — the per-event cost is
  // O(|scope|), never an all-n walk — and every buffer below is reused, so
  // a warmed-up local certify allocates nothing.
  const bool full_scope = modified.empty();
  std::vector<char>& in_scope = scratch_in_scope_;
  scratch_scoped_.clear();
  if (!full_scope) {
    const graph::SpView sp =
        tf ? ws_.multi_bounded(inst_.g, modified, scope_radius, TransformRef{&tf})
           : ws_.multi_bounded(inst_.g, modified, scope_radius);
    for (int v : sp.touched()) {
      in_scope[static_cast<std::size_t>(v)] = 1;
      scratch_scoped_.push_back(v);
    }
  }
  if (scope_size_out != nullptr) {
    *scope_size_out = full_scope ? inst_.g.n() : static_cast<int>(scratch_scoped_.size());
  }
  const auto scoped = [&](int v) {
    return full_scope || in_scope[static_cast<std::size_t>(v)] != 0;
  };
  const auto reset_scope = [this] {
    for (int v : scratch_scoped_) scratch_in_scope_[static_cast<std::size_t>(v)] = 0;
  };
  // Re-derivation tolerance: witness weights are sums of O(1/wmin) doubles.
  const double slack = 1.0 + 1e-9;
  const auto vertex_ok = [&](graph::DijkstraWorkspace& vws, int u) {
    if (spanner_.degree(u) > opts_.caps.max_degree) return false;
    // One bounded witness search per vertex answers all of its edge checks
    // (batching: the single t·wmax(u) ball costs less than one ball per
    // incident edge, and each edge's own bound is still enforced below).
    double wmax_u = 0.0;
    for (const graph::Neighbor& nb : inst_.g.neighbors(u)) {
      // Each scoped edge once: via its smaller endpoint when both are
      // scoped, else via the scoped one.
      if (scoped(nb.to) && nb.to < u) continue;
      wmax_u = std::max(wmax_u, active_weight(nb.w));
    }
    if (wmax_u == 0.0) return true;
    const graph::SpView sp = vws.bounded(spanner_, u, params_.t * wmax_u * slack);
    for (const graph::Neighbor& nb : inst_.g.neighbors(u)) {
      if (scoped(nb.to) && nb.to < u) continue;
      // spanner_ edge weights are already in active (transformed) units —
      // relaxed_greedy stores transform(len) on every edge it emits — so
      // the witness-path sum below is directly comparable to this bound.
      const double w = active_weight(nb.w);
      const double bound = params_.t * w * slack;
      if (sp.dist(nb.to) > bound) return false;
    }
    return true;
  };
  bool all_ok = true;
  const int scope_count = full_scope ? inst_.g.n() : static_cast<int>(scratch_scoped_.size());
  obs::histogram_record(dyn_metrics().certify_scope, scope_count);
  runtime::WorkerPool* const pool =
      pool_.has_value() ? &*pool_ : opts_.greedy.worker_pool;  // caller-owned pools count too
  if (pool != nullptr && pool->threads() > 1) {
    // Per-vertex checks are independent reads of the frozen spanner/UBG;
    // each worker uses its own workspace and the reduction is a boolean
    // AND, so the verdict matches the serial sweep exactly. The relaxed
    // flag only short-circuits remaining work after a failure.
    std::atomic<bool> ok{true};
    pool->for_each(0, scope_count, [&](int worker, int i) {
      if (!ok.load(std::memory_order_relaxed)) return;
      const int u = full_scope ? i : scratch_scoped_[static_cast<std::size_t>(i)];
      if (!vertex_ok(pool->workspace(worker), u)) ok.store(false, std::memory_order_relaxed);
    });
    all_ok = ok.load(std::memory_order_relaxed);
  } else {
    for (int i = 0; i < scope_count && all_ok; ++i) {
      const int u = full_scope ? i : scratch_scoped_[static_cast<std::size_t>(i)];
      all_ok = vertex_ok(ws_, u);
    }
  }
  reset_scope();
  flush_heap_ops(ws_, pool);
  return all_ok;
}

RepairStats DynamicSpanner::apply(const ChurnEvent& ev) {
  const CommitNotifier notify(*this);
  const obs::Span span(dyn_metrics().apply_span);
  const auto t0 = std::chrono::steady_clock::now();
  RepairStats st;
  st.kind = ev.kind;
  st.node = ev.node;
  st.time = ev.time;

  std::vector<int> modified = update_ubg(ev, &st);
  if (opts_.always_full_recompute) {
    full_recompute();
  } else if (!modified.empty()) {
    std::vector<int> touched = modified;  // D: seeds of the dirty ball
    repair(touched, &st, &modified);
    sort_unique(modified);

    if (opts_.check != CheckLevel::kOff) {
      st.check_ran = true;
      bool ok = opts_.check == CheckLevel::kFull ? certify({}, &st.certify_scope)
                                                 : certify(modified, &st.certify_scope);
      if (ok && opts_.check == CheckLevel::kFull) {
        ok = graph::lightness(inst_.g, spanner_) <= opts_.caps.lightness;
      }
      st.check_passed = ok;
      if (!ok && opts_.allow_fallback) {
        full_recompute();
        st.fell_back = true;
      }
    }
  }

  st.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (obs::enabled()) {
    const DynMetrics& m = dyn_metrics();
    obs::counter_add(m.events, 1);
    obs::counter_add(m.edges_added, st.spanner_edges_added);
    obs::counter_add(m.edges_removed, st.spanner_edges_removed);
    if (st.fell_back) obs::counter_add(m.fallbacks, 1);
  }
  return st;
}

std::vector<RepairStats> DynamicSpanner::apply_all(const ChurnTrace& trace) {
  if (trace.dim != inst_.config.dim) {
    throw std::invalid_argument("DynamicSpanner: trace dim does not match instance");
  }
  if (std::abs(trace.alpha - inst_.config.alpha) > 1e-12) {
    throw std::invalid_argument("DynamicSpanner: trace alpha does not match instance");
  }
  std::vector<RepairStats> out;
  out.reserve(trace.events.size());
  for (const ChurnEvent& ev : trace.events) out.push_back(apply(ev));
  return out;
}

BatchStats DynamicSpanner::apply_batch(std::span<const ChurnEvent> events) {
  const obs::Span batch_span(dyn_metrics().batch_span);
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  BatchStats st;
  st.events = static_cast<int>(events.size());
  region_of_event_.assign(events.size(), -1);
  if (events.empty()) {
    st.seconds = elapsed();
    return st;  // no mutation happened: the commit hook intentionally stays silent
  }
  const CommitNotifier notify(*this);
  const int count = static_cast<int>(events.size());
  if (batch_touched_.size() < events.size()) batch_touched_.resize(events.size());

  try {
    // Phase 1: serial mutation replay in event order. The UBG and the
    // standing spanner receive exactly the mutation sequence a sequential
    // replay would apply — only the repairs are deferred — so the per-event
    // validity rules are identical to apply()'s.
    for (int i = 0; i < count; ++i) {
      std::vector<int>& touched = batch_touched_[static_cast<std::size_t>(i)];
      touched.clear();
      update_ubg_into(events[static_cast<std::size_t>(i)], &st.spanner_edges_removed, &touched);
    }

    if (opts_.always_full_recompute) {
      full_recompute();
      st.seconds = elapsed();
      return st;
    }

    // Seeds a later event deactivated are dropped: balls grow from the
    // *final* topology, where a departed vertex is isolated and parked and
    // its ex-neighbors (touched by its leave) carry the disturbance.
    for (int i = 0; i < count; ++i) {
      std::erase_if(batch_touched_[static_cast<std::size_t>(i)],
                    [this](int v) { return !is_active(v); });
    }

    // Phase 2: the union dirty ball. At a fixed radius, ball(∪ D_i) =
    // ∪ ball(D_i), so ONE multi-source bounded search from every live seed
    // of the window covers every per-event ball — this is the coalescing
    // payoff: a burst of k overlapping events costs one |U|-sized search
    // instead of k of them. The per-event balls are never materialized.
    runtime::WorkerPool* const tm = team();
    const std::function<double(double)>& tf = opts_.greedy.weight_transform;
    // The merged modified set doubles as the deduplicated seed list; the
    // commit below appends the splice endpoints (like apply()).
    batch_modified_.clear();
    for (int i = 0; i < count; ++i) {
      const std::vector<int>& seeds = batch_touched_[static_cast<std::size_t>(i)];
      batch_modified_.insert(batch_modified_.end(), seeds.begin(), seeds.end());
    }
    sort_unique(batch_modified_);
    batch_union_.clear();
    int nregions = 0;
    if (!batch_modified_.empty()) {
      const graph::SpView sp = [&] {
        const obs::Span span(dyn_metrics().ball_span);
        return tf ? ws_.multi_bounded(inst_.g, batch_modified_, ball_radius_, TransformRef{&tf})
                  : ws_.multi_bounded(inst_.g, batch_modified_, ball_radius_);
      }();
      batch_union_.assign(sp.touched().begin(), sp.touched().end());
      std::sort(batch_union_.begin(), batch_union_.end());
      obs::histogram_record(dyn_metrics().ball_size,
                            static_cast<std::int64_t>(batch_union_.size()));
      flush_heap_ops(ws_, nullptr);

      // Phase 3: deterministic region partition. Label U's connected
      // components (BFS in ascending node order over the U-induced
      // subgraph), then union-find events sharing a component, in event
      // order. Two overlapping per-event balls always share a component, so
      // this merges at least as much as ball-overlap would — regions stay
      // vertex-disjoint and every event ball stays inside its region, which
      // is all the witness-locality argument needs. The partition is a pure
      // function of the window (no parallel phase feeds it).
      comp_event_.clear();
      for (int u : batch_union_) {
        if (batch_owner_[static_cast<std::size_t>(u)] >= 0) continue;
        const int comp = static_cast<int>(comp_event_.size());
        comp_event_.push_back(-1);
        batch_queue_.clear();
        batch_queue_.push_back(u);
        batch_owner_[static_cast<std::size_t>(u)] = comp;
        while (!batch_queue_.empty()) {
          const int v = batch_queue_.back();
          batch_queue_.pop_back();
          for (const graph::Neighbor& nb : inst_.g.neighbors(v)) {
            if (!sp.reached(nb.to)) continue;  // outside U
            int& owner = batch_owner_[static_cast<std::size_t>(nb.to)];
            if (owner < 0) {
              owner = comp;
              batch_queue_.push_back(nb.to);
            }
          }
        }
      }

      if (batch_uf_.size() < events.size()) {
        batch_uf_.resize(events.size());
        batch_root_region_.resize(events.size());
      }
      for (int i = 0; i < count; ++i) {
        batch_uf_[static_cast<std::size_t>(i)] = i;
        batch_root_region_[static_cast<std::size_t>(i)] = -1;
      }
      const auto find_root = [this](int a) {
        while (batch_uf_[static_cast<std::size_t>(a)] != a) {
          batch_uf_[static_cast<std::size_t>(a)] =
              batch_uf_[static_cast<std::size_t>(batch_uf_[static_cast<std::size_t>(a)])];
          a = batch_uf_[static_cast<std::size_t>(a)];
        }
        return a;
      };
      for (int i = 0; i < count; ++i) {
        for (int s : batch_touched_[static_cast<std::size_t>(i)]) {
          // Seeds are sources of the union search, so they are in U and
          // labeled. The first event touching a component anchors it; later
          // ones union into the anchor.
          int& first = comp_event_[static_cast<std::size_t>(batch_owner_[static_cast<std::size_t>(s)])];
          if (first < 0) {
            first = i;
          } else {
            const int ra = find_root(first);
            const int rb = find_root(i);
            // The smaller root wins, so every class is rooted at its first
            // member event.
            if (ra != rb) batch_uf_[static_cast<std::size_t>(std::max(ra, rb))] = std::min(ra, rb);
          }
        }
      }

      int balled_events = 0;
      for (int i = 0; i < count; ++i) {
        if (batch_touched_[static_cast<std::size_t>(i)].empty()) continue;
        ++balled_events;
        int& region = batch_root_region_[static_cast<std::size_t>(find_root(i))];
        if (region < 0) region = nregions++;
        region_of_event_[static_cast<std::size_t>(i)] = region;
      }
      st.regions = nregions;
      st.merged_events = balled_events - nregions;
      obs::histogram_record(dyn_metrics().regions, nregions);

      if (batch_regions_.size() < static_cast<std::size_t>(nregions)) {
        batch_regions_.resize(static_cast<std::size_t>(nregions));
      }
      for (int r = 0; r < nregions; ++r) {
        RegionScratch& rg = batch_regions_[static_cast<std::size_t>(r)];
        rg.events.clear();
        rg.ball.clear();
        rg.core.clear();
        rg.sub_edges = 0;
        rg.drops.clear();
        rg.adds.clear();
      }
      for (int i = 0; i < count; ++i) {
        const int r = region_of_event_[static_cast<std::size_t>(i)];
        if (r < 0) continue;
        batch_regions_[static_cast<std::size_t>(r)].events.push_back(i);
      }
      // Component -> region, then one ascending pass over U fills every
      // region's ball (already sorted) and core (dist is the union search's
      // min-over-seeds; the minimizing seed lies in the same component, so
      // the per-region core is exact).
      comp_region_.assign(comp_event_.size(), -1);
      for (std::size_t c = 0; c < comp_event_.size(); ++c) {
        if (comp_event_[c] >= 0) {
          comp_region_[c] = region_of_event_[static_cast<std::size_t>(comp_event_[c])];
        }
      }
      for (int v : batch_union_) {
        const int comp = batch_owner_[static_cast<std::size_t>(v)];
        batch_owner_[static_cast<std::size_t>(v)] = -1;  // stamp reset, same pass
        const int r = comp_region_[static_cast<std::size_t>(comp)];
        if (r < 0) continue;
        RegionScratch& rg = batch_regions_[static_cast<std::size_t>(r)];
        rg.ball.push_back(v);
        if (sp.dist(v) <= core_radius_) rg.core.push_back(v);
      }
      for (int r = 0; r < nregions; ++r) {
        RegionScratch& rg = batch_regions_[static_cast<std::size_t>(r)];
        st.ball_union += static_cast<int>(rg.ball.size());
        st.max_region_ball = std::max(st.max_region_ball, static_cast<int>(rg.ball.size()));
      }
    }

    // Phases 4+5, one scatter/commit: harvest every region's splice in
    // parallel, then commit serially in region order. Regions are
    // vertex-disjoint and all reads (final UBG, pre-commit spanner) are
    // frozen until the commit phase, so the harvested drops/adds are
    // schedule-independent; with the serial in-order commit the result is
    // bit-identical at every thread count.
    // Per-region harvest times (satellite fix: the flat BatchStats sums them
    // away). Enabled-mode only — the disabled path stays alloc-free.
    const bool obs_on = obs::enabled();
    std::vector<std::int64_t> harvest_us;
    if (obs_on) harvest_us.assign(static_cast<std::size_t>(nregions), 0);
    const auto harvest_region = [&](int r, std::vector<int>& local_id, std::vector<char>& in_core,
                                    const core::RelaxedGreedyOptions& gopts) {
      const obs::Span span(dyn_metrics().region_span);
      const auto h0 = std::chrono::steady_clock::now();
      RegionScratch& rg = batch_regions_[static_cast<std::size_t>(r)];
      const auto n = static_cast<std::size_t>(inst_.g.n());
      if (local_id.size() < n) local_id.resize(n, -1);
      if (in_core.size() < n) in_core.resize(n, 0);
      for (std::size_t j = 0; j < rg.ball.size(); ++j) {
        local_id[static_cast<std::size_t>(rg.ball[j])] = static_cast<int>(j);
      }
      for (int v : rg.core) in_core[static_cast<std::size_t>(v)] = 1;
      int sub_edges = 0;
      for (int v : rg.ball) {
        for (const graph::Neighbor& nb : inst_.g.neighbors(v)) {
          if (v < nb.to && local_id[static_cast<std::size_t>(nb.to)] >= 0) ++sub_edges;
        }
      }
      rg.sub_edges = sub_edges;
      // An edgeless sub-instance repairs to an edgeless spanner, and the
      // standing spanner (a subgraph of the UBG) then has no core-internal
      // edges either — the splice is a no-op and the rerun is skipped. The
      // skip also keys the alloc-free steady state: relaxed_greedy
      // allocates its result graph, this path does not.
      if (sub_edges > 0) {
        ubg::UbgInstance sub{inst_.config, {}, graph::Graph(static_cast<int>(rg.ball.size()))};
        sub.config.n = static_cast<int>(rg.ball.size());
        sub.points.reserve(rg.ball.size());
        for (int v : rg.ball) sub.points.push_back(inst_.points[static_cast<std::size_t>(v)]);
        for (int v : rg.ball) {
          for (const graph::Neighbor& nb : inst_.g.neighbors(v)) {
            if (v < nb.to && local_id[static_cast<std::size_t>(nb.to)] >= 0) {
              sub.g.add_edge(local_id[static_cast<std::size_t>(v)],
                             local_id[static_cast<std::size_t>(nb.to)], nb.w);
            }
          }
        }
        const graph::Graph local = core::relaxed_greedy(sub, params_, gopts).spanner;
        for (int v : rg.ball) {
          if (!in_core[static_cast<std::size_t>(v)]) continue;
          for (const graph::Neighbor& nb : spanner_.neighbors(v)) {
            if (v < nb.to && in_core[static_cast<std::size_t>(nb.to)]) {
              rg.drops.emplace_back(v, nb.to);
            }
          }
        }
        for (const graph::Edge& e : local.edges()) {
          rg.adds.push_back({rg.ball[static_cast<std::size_t>(e.u)],
                             rg.ball[static_cast<std::size_t>(e.v)], e.w});
        }
      }
      for (int v : rg.ball) local_id[static_cast<std::size_t>(v)] = -1;
      for (int v : rg.core) in_core[static_cast<std::size_t>(v)] = 0;
      if (obs_on) {
        harvest_us[static_cast<std::size_t>(r)] = std::chrono::duration_cast<std::chrono::microseconds>(
                                                      std::chrono::steady_clock::now() - h0)
                                                      .count();
      }
    };

    // Region sizes are skewed (one merged burst region next to many
    // singletons), so the harvest is scheduled dynamically; each worker
    // reruns serially with its own workspace — no nested dispatch. With a
    // serial engine, or a single region, the harvest runs on the caller
    // with the engine-level greedy options instead (pool-parallel *inside*
    // the one rerun when a team exists); relaxed_greedy is bit-identical at
    // every thread count, so nothing observable changes.
    const bool parallel_regions = tm != nullptr && tm->threads() > 1 && nregions > 1;
    {
    const obs::Span splice_span(dyn_metrics().splice_span);
    runtime::scatter_commit(
        parallel_regions ? tm : nullptr, ws_, nregions,
        [&](graph::DijkstraWorkspace&, int worker, int r) {
          if (parallel_regions) {
            harvest_region(r, worker_local_id_[static_cast<std::size_t>(worker)],
                           worker_in_core_[static_cast<std::size_t>(worker)],
                           worker_greedy_opts_[static_cast<std::size_t>(worker)]);
          } else {
            harvest_region(r, scratch_local_id_, scratch_in_core_, opts_.greedy);
          }
        },
        [&](int r) {
          RegionScratch& rg = batch_regions_[static_cast<std::size_t>(r)];
          if (obs_on) {
            const DynMetrics& m = dyn_metrics();
            obs::histogram_record(m.region_ball, static_cast<std::int64_t>(rg.ball.size()));
            obs::histogram_record(m.region_events, static_cast<std::int64_t>(rg.events.size()));
            obs::histogram_record(m.region_harvest_us, harvest_us[static_cast<std::size_t>(r)]);
          }
          st.sub_edges += rg.sub_edges;
          for (const auto& [u, v] : rg.drops) {
            spanner_.remove_edge(u, v);
            ++st.spanner_edges_removed;
            batch_modified_.push_back(u);
            batch_modified_.push_back(v);
          }
          for (const graph::Edge& e : rg.adds) {
            if (spanner_.add_edge(e.u, e.v, e.w)) {
              ++st.spanner_edges_added;
              batch_modified_.push_back(e.u);
              batch_modified_.push_back(e.v);
            }
          }
        });
    }
    sort_unique(batch_modified_);

    // Phase 6: one merged-scope certification replaces the per-event
    // passes; on failure the engine falls back exactly like apply().
    if (!batch_modified_.empty() && opts_.check != CheckLevel::kOff) {
      st.check_ran = true;
      bool ok = opts_.check == CheckLevel::kFull ? certify({}, &st.certify_scope)
                                                 : certify(batch_modified_, &st.certify_scope);
      if (ok && opts_.check == CheckLevel::kFull) {
        ok = graph::lightness(inst_.g, spanner_) <= opts_.caps.lightness;
      }
      st.check_passed = ok;
      if (!ok && opts_.allow_fallback) {
        full_recompute();
        st.fell_back = true;
      }
    }
  } catch (...) {
    // A mid-window failure (an event invalid for the evolved topology,
    // above all) leaves already-ingested mutations with their repairs
    // pending; rebuilding restores a certified spanner before the error
    // propagates. The window is not rolled back.
    full_recompute();
    throw;
  }

  st.seconds = elapsed();
  if (obs::enabled()) {
    const DynMetrics& m = dyn_metrics();
    obs::counter_add(m.batches, 1);
    obs::counter_add(m.events, st.events);
    obs::counter_add(m.merged_events, st.merged_events);
    obs::counter_add(m.edges_added, st.spanner_edges_added);
    obs::counter_add(m.edges_removed, st.spanner_edges_removed);
    if (st.fell_back) obs::counter_add(m.fallbacks, 1);
  }
  return st;
}

}  // namespace localspan::dynamic
