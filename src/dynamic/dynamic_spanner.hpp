#pragma once
/// \file dynamic_spanner.hpp
/// Incremental maintenance of the relaxed-greedy spanner under topology
/// churn — the dynamic counterpart of core/relaxed_greedy.hpp.
///
/// The paper's algorithm is local: every decision about an edge {u,v} is a
/// function of an O(1)-radius neighborhood (cluster covers reach δW_{i-1},
/// witness paths reach t·|uv| <= t, and all edge lengths are <= 1). The
/// engine exploits exactly that locality. After an event changes the UBG at
/// a touched vertex set D it
///
///   1. computes the *dirty ball* B = { v : d(v, D) <= R } and its core
///      C = { v : d(v, D) <= K } (weighted distances in the active weight,
///      i.e. through the §1.6 transform when one is configured),
///   2. re-runs the full relaxed-greedy machinery on the α-UBG induced on B,
///   3. splices: drops standing spanner edges with both endpoints in C and
///      inserts every edge of the local result,
///   4. re-certifies the invariants (stretch <= t against every UBG edge
///      whose witness could have been disturbed, degree cap) and falls back
///      to a full recompute if certification fails.
///
/// With wmax = transform(1) (the heaviest possible edge), witness paths
/// weigh at most W = t·wmax, and the radii K = (t+1)·wmax, R = K + W make
/// the splice provably safe: an edge {x,y} whose old witness traversed a
/// dropped edge (a core edge, or a UBG edge incident to D) satisfies
/// d(x,D) <= K + W and d(y,D) <= K + W, so both endpoints lie in B and the
/// local rerun supplies a fresh witness; every other edge keeps its old
/// witness untouched. The step-4 checker therefore acts as a safety net for
/// engineering drift (and as the enforcement point for the degree cap,
/// which the union splice does not re-derive), not as the correctness
/// argument.

#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/params.hpp"
#include "core/relaxed_greedy.hpp"
#include "core/verify.hpp"
#include "dynamic/churn.hpp"
#include "geom/dynamic_grid.hpp"
#include "graph/graph.hpp"
#include "graph/sp_workspace.hpp"
#include "runtime/parallel.hpp"
#include "ubg/generator.hpp"

#include <memory>
#include <optional>

namespace localspan::dynamic {

/// How much re-certification runs after each event.
enum class CheckLevel {
  kOff,    ///< trust the locality argument; no per-event certification.
  kLocal,  ///< certify stretch on every edge a disturbed witness could serve.
  kFull,   ///< certify stretch on all UBG edges plus the lightness cap.
};

struct DynamicOptions {
  /// Passed through to every local rerun and to full recomputes, so the
  /// dynamic spanner honors ablations and the §1.6 weight transform.
  core::RelaxedGreedyOptions greedy;

  /// Deterministic gray-zone rule applied to event-incident pairs: connect
  /// iff distance <= connect_radius, with alpha <= connect_radius <= 1.
  /// (A probabilistic generation-time policy cannot be replayed for nodes it
  /// has never seen; the engine's rule takes over at the churn boundary.)
  double connect_radius = 1.0;

  /// Scales the core radius K (ball radius follows as R = K + t·wmax).
  /// 1.0 is the provably safe minimum; larger trades repair cost for less
  /// splice-boundary drift.
  double radius_scale = 1.0;

  /// Overrides the dirty-ball radius R outright when > 0 — for experiments
  /// on the locality/correctness trade-off and for exercising the fallback
  /// path in tests. The core shrinks to K = max(0, R - t·wmax).
  double ball_radius_override = 0.0;

  CheckLevel check = CheckLevel::kLocal;

  /// Fall back to a full recompute when certification fails. When false the
  /// failure is only recorded in RepairStats (experiment mode).
  bool allow_fallback = true;

  /// Baseline mode: rebuild the spanner from scratch after every event
  /// instead of repairing locally (what the E15 bench races against).
  bool always_full_recompute = false;

  /// Discover event-incident neighbors with the pre-spatial-hash Ω(n)
  /// all-slot scan instead of the maintained DynamicGrid. Kept as the
  /// before/after baseline for E15 and the equivalence test; the two paths
  /// produce identical topologies.
  bool linear_scan_discovery = false;

  /// Degree/lightness caps enforced by the checker (lightness at kFull only).
  core::VerifyCaps caps;

  /// Worker threads for the parallel passes: the local reruns / full
  /// recomputes (threaded through greedy.threads unless the caller set a
  /// pool of their own) and the per-vertex certify sweep. 0 = the process
  /// default (LOCALSPAN_THREADS env, else 1). The maintained spanner is
  /// bit-identical at every thread count; the engine owns one long-lived
  /// pool, so the steady state spawns no threads and the warmed certify
  /// still allocates nothing.
  int threads = 0;
};

/// Per-event repair telemetry (the E15 bench aggregates these).
struct RepairStats {
  EventKind kind = EventKind::kJoin;
  int node = 0;
  double time = 0.0;

  int ball_size = 0;             ///< |B|.
  int core_size = 0;             ///< |C|.
  int sub_edges = 0;             ///< UBG edges induced on B (local rerun size).
  int spanner_edges_removed = 0; ///< dropped: UBG-departed + core replacement.
  int spanner_edges_added = 0;   ///< inserted from the local rerun.
  int certify_scope = 0;         ///< vertices the certification pass visited.

  bool check_ran = false;
  bool check_passed = true;
  bool fell_back = false;

  double seconds = 0.0;  ///< wall time of the whole apply() call.
};

/// Whole-window repair telemetry for apply_batch (the E15 batch sweep
/// aggregates these). Deliberately flat — no heap-owning members — so a
/// warmed batch cycle can return it without allocating.
struct BatchStats {
  int events = 0;          ///< events ingested in this window.
  int regions = 0;         ///< disjoint repair regions after the ball union.
  int merged_events = 0;   ///< events folded into a region opened by an earlier event.
  int ball_union = 0;      ///< total vertices across the (disjoint) region balls.
  int max_region_ball = 0; ///< largest region ball.
  int sub_edges = 0;       ///< UBG edges across all region sub-instances.
  int spanner_edges_removed = 0;  ///< UBG-departed + core replacement drops.
  int spanner_edges_added = 0;    ///< inserted from the local reruns.
  int certify_scope = 0;   ///< vertices the one merged certification pass visited.
  bool check_ran = false;
  bool check_passed = true;
  bool fell_back = false;
  double seconds = 0.0;    ///< wall time of the whole apply_batch() call.
};

/// A standing spanner over a mutable α-UBG instance.
///
/// Node lifecycle: ids are slots. Live slots carry a position inside the
/// deployment box (all coordinates >= 0); dead slots are parked at distinct
/// far-away positions (coordinate 0 negative) so the instance remains a
/// *valid* α-UBG at all times — parked nodes are beyond distance 1 of
/// everything and therefore correctly isolated, and every algorithm in the
/// static stack treats them as trivial components.
class DynamicSpanner {
 public:
  /// Takes ownership of the instance, computes the initial spanner with the
  /// standard static pipeline. \throws std::invalid_argument on parameter
  /// violations (including connect_radius outside [alpha, 1]).
  DynamicSpanner(ubg::UbgInstance inst, const core::Params& params, DynamicOptions opts = {});

  /// Neither copyable nor movable: opts_.greedy.workspace points at this
  /// object's own greedy_ws_, which a defaulted copy/move would silently
  /// re-aim at the source object.
  DynamicSpanner(const DynamicSpanner&) = delete;
  DynamicSpanner& operator=(const DynamicSpanner&) = delete;
  DynamicSpanner(DynamicSpanner&&) = delete;
  DynamicSpanner& operator=(DynamicSpanner&&) = delete;

  /// Apply one event: update the UBG, repair the spanner locally, certify.
  /// \throws std::invalid_argument on an event invalid for the current
  /// topology (join of a live node, leave/move of a dead one, position
  /// outside the deployment quadrant, dimension mismatch).
  RepairStats apply(const ChurnEvent& ev);

  /// Apply a whole trace in order. \throws std::invalid_argument when the
  /// trace header does not match the instance (dim/alpha).
  std::vector<RepairStats> apply_all(const ChurnTrace& trace);

  /// Ingest a whole window of events at once. Semantics match a sequential
  /// replay of the window — the same UBG mutations in the same order, a
  /// certifier-equivalent spanner at the end — but the repair work is
  /// *coalesced*: ONE multi-source bounded search from every seed of the
  /// window computes the union dirty ball U = ∪ ball(D_i) on the final
  /// topology, events are partitioned by the connected components of U
  /// (overlapping balls always share a component, so this refines the
  /// ball-overlap union-find upward — never apart), components touching a
  /// common event are unioned into disjoint repair regions, the regions are
  /// repaired in parallel on the
  /// engine-owned worker team (regions are vertex-disjoint, so their local
  /// reruns read frozen state and are independent by the witness-locality
  /// argument at the top of this file), splices are committed serially in
  /// deterministic region order, and ONE merged-scope certification pass
  /// replaces the per-event passes. The resulting spanner is bit-identical
  /// at every thread count, and a one-event batch is bit-identical to
  /// apply().
  ///
  /// \throws std::invalid_argument on the first event invalid for the
  /// topology at its position in the window (same per-event rules as
  /// apply()). Events before it are already ingested at that point, so the
  /// engine restores a certified state with a full recompute before
  /// rethrowing; the batch is not rolled back.
  BatchStats apply_batch(std::span<const ChurnEvent> events);

  /// Rebuild the spanner from scratch with the static pipeline (also the
  /// certification-failure fallback).
  void full_recompute();

  /// Install a post-commit hook, invoked after every *completed* top-level
  /// mutation — apply() (so once per event under apply_all), apply_batch()
  /// (once per window), or a direct full_recompute() — with the engine in a
  /// consistent state. The serve layer's QueryEngine uses this to republish
  /// an immutable topology snapshot on window commit. The hook runs on the
  /// mutating thread with the engine borrowed const; it must not mutate the
  /// engine and must not throw. It is NOT invoked when a mutation exits by
  /// exception (even though apply_batch restores a certified state before
  /// rethrowing): the read side then simply keeps serving the previous
  /// snapshot, which is exactly the RCU contract.
  void set_commit_hook(std::function<void(const DynamicSpanner&)> hook) {
    commit_hook_ = std::move(hook);
  }

  [[nodiscard]] const ubg::UbgInstance& instance() const noexcept { return inst_; }
  [[nodiscard]] const graph::Graph& spanner() const noexcept { return spanner_; }
  [[nodiscard]] const core::Params& params() const noexcept { return params_; }
  [[nodiscard]] bool is_active(int v) const;
  [[nodiscard]] int active_count() const noexcept { return active_count_; }

  /// The dirty-ball radius R and core radius K in active weight.
  [[nodiscard]] double ball_radius() const noexcept { return ball_radius_; }
  [[nodiscard]] double core_radius() const noexcept { return core_radius_; }

  /// The certification pass alone, scoped to witnesses that can reach
  /// `modified` (empty => certify everything, as CheckLevel::kFull does).
  /// The disturbed scope is enumerated from the workspace search's touched
  /// list, so a local certify costs O(|scope|) — it never walks all n
  /// vertices. If `scope_size_out` is non-null it receives the number of
  /// vertices visited. Exposed for tests and the CLI's final audit.
  /// Allocation-free once the engine's scratch is warm.
  [[nodiscard]] bool certify(const std::vector<int>& modified,
                             int* scope_size_out = nullptr) const;

  /// Region index per event of the most recent apply_batch() window, in
  /// event order (-1: the event touched no live vertex and joined no
  /// region). Region indices number the disjoint repair regions in their
  /// deterministic commit order (ascending first-member-event). Exposed for
  /// the partition-determinism tests; invalidated by the next apply_batch.
  [[nodiscard]] const std::vector<int>& last_region_of_event() const noexcept {
    return region_of_event_;
  }

 private:
  /// Depth-counted RAII around every mutating entry point: the hook fires
  /// exactly once, when the *outermost* mutation completes normally (the
  /// certify-failure path reaches full_recompute() from inside apply() /
  /// apply_batch(), which must not double-fire), and never during stack
  /// unwinding (a hook must not run — let alone throw — mid-propagation).
  struct CommitNotifier {
    explicit CommitNotifier(DynamicSpanner& e) noexcept
        : eng(e), exceptions_on_entry(std::uncaught_exceptions()) {
      ++eng.mutation_depth_;
    }
    ~CommitNotifier() {
      if (--eng.mutation_depth_ == 0 && eng.commit_hook_ &&
          std::uncaught_exceptions() == exceptions_on_entry) {
        eng.commit_hook_(eng);
      }
    }
    CommitNotifier(const CommitNotifier&) = delete;
    CommitNotifier& operator=(const CommitNotifier&) = delete;
    DynamicSpanner& eng;
    int exceptions_on_entry;
  };

  [[nodiscard]] double active_weight(double len) const;
  [[nodiscard]] geom::Point parked_position(int v) const;
  void ensure_slot(int v);
  void check_position(const geom::Point& pos) const;

  /// Add UBG edges between `node` (live, position set) and every live node
  /// within connect_radius, appending the connected partners to `touched`.
  /// Uses the maintained spatial hash unless linear_scan_discovery is set.
  void connect_neighbors(int node, std::vector<int>* touched);

  /// Mutate the UBG (and drop departed spanner edges); returns the touched
  /// live vertex set D, deduplicated.
  std::vector<int> update_ubg(const ChurnEvent& ev, RepairStats* st);

  /// The mutation core shared by apply() and apply_batch(): appends the
  /// touched live vertex set D into `*touched` (which must be empty on
  /// entry) and counts dropped standing-spanner edges into
  /// `*spanner_removed`. Allocation-free once the scratch is warm.
  void update_ubg_into(const ChurnEvent& ev, int* spanner_removed, std::vector<int>* touched);

  void repair(const std::vector<int>& touched, RepairStats* st, std::vector<int>* modified);

  /// The engaged worker team: the engine-owned pool when there is one, else
  /// a caller-supplied pool threaded through the greedy options.
  [[nodiscard]] runtime::WorkerPool* team() const noexcept {
    return pool_.has_value() ? &*pool_ : opts_.greedy.worker_pool;
  }

  ubg::UbgInstance inst_;
  core::Params params_;
  DynamicOptions opts_;
  graph::Graph spanner_;
  std::vector<char> active_;
  int active_count_ = 0;
  geom::DynamicGrid grid_;    ///< spatial hash over the LIVE nodes only.
  double wmax_ = 1.0;         ///< transform(1): heaviest possible edge weight.
  double witness_bound_ = 0;  ///< W = t·wmax.
  double core_radius_ = 0;    ///< K.
  double ball_radius_ = 0;    ///< R = K + W (unless overridden).

  // Repair/certify scratch, reused across events (ROADMAP open item: no
  // O(n) allocation or initialization per event). Entries touched by one
  // event are reset before the next; the certify buffers are mutable
  // because certify() is logically const.
  std::vector<int> scratch_local_id_;          ///< -1 outside the current ball.
  std::vector<char> scratch_in_core_;          ///< 0 outside the current core.
  std::vector<int> scratch_ball_;              ///< current ball members (sorted).
  mutable std::vector<char> scratch_in_scope_; ///< 0 outside the current scope.
  mutable std::vector<int> scratch_scoped_;    ///< scope members (reset list).
  std::vector<int> scratch_old_nbrs_;          ///< update_ubg neighbor snapshot.
  /// Per-ball-member drop lists for the two-phase per-event splice: slot i
  /// holds the core-internal standing edges at ball[i], harvested in
  /// parallel against the frozen spanner and committed in ball order. Outer
  /// vector and inner capacities are reused across events (high-water mark).
  std::vector<std::vector<int>> scratch_drop_;

  // ---- Batch ingestion scratch (apply_batch), reused across windows so a
  // warmed steady-state batch allocates nothing. Indexed per event / per
  // region / per worker; cleared or stamp-reset between windows.
  std::vector<std::vector<int>> batch_touched_;  ///< per-event seed sets D_i.
  std::vector<int> batch_union_;        ///< union dirty ball U (ascending node ids).
  std::vector<int> batch_queue_;        ///< BFS queue for component labeling.
  std::vector<int> batch_owner_;        ///< per-vertex component id within U; -1 clean.
  std::vector<int> comp_event_;         ///< component -> first event touching it.
  std::vector<int> comp_region_;        ///< component -> region index.
  std::vector<int> batch_uf_;           ///< union-find parents over window events.
  std::vector<int> batch_root_region_;  ///< uf root -> region index; -1 unseen.
  std::vector<int> region_of_event_;    ///< last window: event -> region (-1 none).
  /// One disjoint repair region: member events, the union ball/core, and the
  /// harvested splice (drops/adds) awaiting its serial in-order commit.
  struct RegionScratch {
    std::vector<int> events;
    std::vector<int> ball;  ///< sorted; disjoint from every other region's.
    std::vector<int> core;  ///< sorted subset of ball.
    int sub_edges = 0;
    std::vector<std::pair<int, int>> drops;  ///< core-internal standing edges.
    std::vector<graph::Edge> adds;           ///< local rerun edges, global ids.
  };
  std::vector<RegionScratch> batch_regions_;
  std::vector<int> batch_modified_;  ///< merged modified set for the one certify.
  /// Per-worker region-extraction scratch for the parallel harvest (the
  /// serial path reuses scratch_local_id_/scratch_in_core_ instead). Grown
  /// lazily to n inside the harvest, stamp-reset after each region.
  std::vector<std::vector<int>> worker_local_id_;
  std::vector<std::vector<char>> worker_in_core_;
  /// Per-worker relaxed-greedy options for concurrent region reruns: each
  /// points at that worker's pool workspace and is forced serial
  /// (worker_pool = nullptr, threads = 1) so regions never nest dispatches.
  /// Built once at construction; empty when no team is engaged.
  std::vector<core::RelaxedGreedyOptions> worker_greedy_opts_;

  /// Epoch-stamped shortest-path workspace for the dirty-ball, scope and
  /// witness searches; sized once, O(|ball| log |ball|) per search with no
  /// steady-state allocation. Mutable for the same reason as the scratch.
  mutable graph::DijkstraWorkspace ws_;
  /// Workspace handed to relaxed_greedy (local reruns and full recomputes)
  /// via opts_.greedy.workspace, so repeated repairs reuse one set of
  /// search buffers.
  graph::DijkstraWorkspace greedy_ws_;
  /// Long-lived worker team (engaged when the resolved thread count > 1):
  /// handed to relaxed_greedy via opts_.greedy.worker_pool and used by the
  /// certify sweep, so repeated events reuse the same threads and per-worker
  /// workspaces. Mutable because certify() is logically const. Vertex
  /// results are combined with a single boolean AND, so certification is
  /// deterministic at every thread count.
  mutable std::optional<runtime::WorkerPool> pool_;

  /// Post-commit notification (see set_commit_hook / CommitNotifier).
  std::function<void(const DynamicSpanner&)> commit_hook_;
  int mutation_depth_ = 0;
};

}  // namespace localspan::dynamic
