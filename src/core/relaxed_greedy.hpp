#pragma once
/// \file relaxed_greedy.hpp
/// The sequential relaxed greedy algorithm (paper §2) — the paper's core
/// contribution, and the engine the distributed version (§3) drives.
///
/// Differences from classical SEQ-GREEDY that make it distributable:
///   * edges are processed bin-by-bin (BinSchema), in arbitrary order inside
///     a bin, with the spanner updated lazily once per bin;
///   * per-bin shortest-path queries are answered on the Das–Narasimhan
///     cluster graph H_{i-1} built from a δW_{i-1} cluster cover;
///   * θ-cone covered edges are filtered out (Lemma 3) and only one query
///     edge per cluster pair survives (minimizing t·|xy| − sp(a,x) − sp(b,y));
///   * mutually redundant added edges are thinned by an MIS pass (§2.2.5),
///     which restores the leapfrog property the weight proof needs.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cluster/cluster_graph.hpp"
#include "cluster/cover.hpp"
#include "core/bins.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"
#include "graph/soa_points.hpp"
#include "ubg/generator.hpp"

namespace localspan::runtime {
class WorkerPool;
}  // namespace localspan::runtime

namespace localspan::core {

/// Per-phase trace: one row per processed bin, aggregating everything the
/// paper's lemmas bound (experiments E9 and E11 print these).
struct PhaseStats {
  int bin = 0;
  double w_lo = 0.0;  ///< W_{i-1} (0 for the phase-0 row).
  double w_hi = 0.0;  ///< W_i.
  int edges_in_bin = 0;
  int already_in_spanner = 0;
  int covered = 0;     ///< edges filtered by the θ-cone test.
  int candidates = 0;  ///< candidate query edges after filtering.
  int queries = 0;     ///< selected query edges (<=1 per cluster pair).
  int added = 0;       ///< edges whose H-query failed (added to G').
  int removed = 0;     ///< edges removed as mutually redundant.
  int clusters = 0;
  int max_query_edges_per_cluster = 0;  ///< Lemma 4 quantity.
  int max_inter_degree = 0;             ///< Lemma 6 quantity.
  double max_inter_weight = 0.0;        ///< Lemma 5 quantity (<= (2δ+1)W).
  int max_query_hops = 0;               ///< Lemma 8 quantity.
};

/// Knobs shared by the sequential and distributed drivers.
struct RelaxedGreedyOptions {
  /// Redundancy-removal pass on/off (ablation in E12; required for the
  /// Theorem 13 weight proof).
  bool redundancy_removal = true;

  /// θ-cone covered-edge filter on/off (ablation in E12; required for the
  /// Theorem 11 degree proof — without it every candidate edge is queried).
  bool covered_edge_filter = true;

  /// Strictly increasing map from Euclidean length to edge weight with
  /// transform(0+) -> 0; identity for the paper's main setting, c·len^γ for
  /// the §1.6 energy extension. Applied consistently to edge weights and to
  /// every length threshold compared against path weights.
  std::function<double(double)> weight_transform;  // null => identity

  /// Cap on clique size in phase 0 (guards O(k^4) SEQ-GREEDY blowup on
  /// adversarially dense inputs; components larger than this are spanned
  /// with SEQ-GREEDY over the component's UBG edges instead of its clique,
  /// which preserves the spanner property since the clique edges are a
  /// superset). Never triggered by the paper-style workloads.
  int phase0_clique_cap = 512;

  /// Optional caller-owned shortest-path workspace, reused for every bounded
  /// search the run performs (covers, cluster graphs, queries, redundancy
  /// balls). Long-lived engines that invoke relaxed_greedy repeatedly — the
  /// dynamic repair path above all — share one workspace across calls so the
  /// steady state stops allocating scratch. Null => a run-local workspace.
  /// Non-owning; must outlive every relaxed_greedy call it is passed to.
  graph::DijkstraWorkspace* workspace = nullptr;

  /// Worker threads for the embarrassingly parallel passes (cover ball
  /// computation, cluster-graph center sweeps, covered-edge filtering,
  /// H-queries, §2.2.5 redundancy endpoint balls). 0 = the process default
  /// (LOCALSPAN_THREADS env, else 1). The construction is **bit-identical**
  /// at every thread count: parallel phases compute state-independent
  /// per-item results and all commits stay in the serial order
  /// (tests/test_parallel.cpp enforces this across the scenario matrix).
  int threads = 0;

  /// Optional caller-owned worker pool (thread pool + per-worker
  /// workspaces), overriding `threads`. Long-lived engines share one pool
  /// across runs so repeated repairs spawn no threads and allocate no
  /// per-worker scratch. Non-owning; must outlive every call.
  runtime::WorkerPool* worker_pool = nullptr;
};

/// Outcome of a (sequential or distributed) run.
struct RelaxedGreedyResult {
  graph::Graph spanner;
  Params params;
  std::vector<PhaseStats> phases;  ///< phase 0 first, then nonempty bins ascending.
  int phase0_components = 0;
  int nonempty_bins = 0;
  int total_bins = 0;  ///< m+1, including empty ones.
};

/// Run the sequential relaxed greedy algorithm of §2 on an α-UBG instance.
/// \throws std::invalid_argument if params.alpha disagrees with the instance
///         or the parameter set violates the Theorem 10 conditions.
[[nodiscard]] RelaxedGreedyResult relaxed_greedy(const ubg::UbgInstance& inst,
                                                 const Params& params,
                                                 const RelaxedGreedyOptions& opts = {});

namespace detail {

/// Shared per-phase machinery, exposed so the distributed driver (§3) and
/// white-box tests can exercise each §2.2 step in isolation.

/// A bin edge annotated with its active weight.
struct PhaseEdge {
  int u, v;
  double len;  ///< Euclidean length (bins, geometry).
  double w;    ///< active weight (spanner arithmetic).
};

/// §2.2.2 part 1: the θ-cone covered test for one edge (Lemma 3 / Fig 1).
/// True iff some z with {u,z} in gp, |vz| <= α and ∠vuz <= θ exists (or the
/// symmetric condition at v).
[[nodiscard]] bool is_covered_edge(const ubg::UbgInstance& inst, const graph::Graph& gp,
                                   const PhaseEdge& e, double theta);

/// SoA overload of the θ-cone test for the hot filter loops: identical
/// decisions (the SoaPoints kernels are bit-identical to geom::*), but the
/// geometry streams from the flat coordinate lanes instead of one 72-byte
/// Point per probe. `alpha` is the instance's UBG radius.
[[nodiscard]] bool is_covered_edge(const graph::SoaPoints& pts, double alpha,
                                   const graph::Graph& gp, const PhaseEdge& e, double theta);

/// §2.2.2 part 2: keep one query edge per cluster pair, minimizing
/// t·w(x,y) − sp(a,x) − sp(b,y). Returns selected edges; if `per_cluster_max`
/// is non-null it receives the Lemma 4 quantity.
///
/// With a pool, each worker folds its contiguous candidate chunk into a
/// private per-cluster-pair partial minimum and the chunks are merged
/// serially. The winner per pair is the lexicographic minimum by
/// (objective, (u, v)) — a total order — so chunk boundaries cannot change
/// the outcome and the selection is bit-identical at every thread count.
[[nodiscard]] std::vector<PhaseEdge> select_query_edges(const std::vector<PhaseEdge>& candidates,
                                                        const cluster::ClusterCover& cover,
                                                        double t, int* per_cluster_max,
                                                        runtime::WorkerPool* pool = nullptr);

/// §2.2.4: answer all queries on H; returns the edges to add (those with
/// sp_H(x,y) > t·w(x,y)). Updates `max_hops` with the Lemma 8 quantity.
[[nodiscard]] std::vector<PhaseEdge> answer_queries(const graph::Graph& h,
                                                    const std::vector<PhaseEdge>& queries,
                                                    double t, int* max_hops);

/// Workspace-backed overload: one early-exit bounded search per query, no
/// per-query allocation once the workspace is warm. With a pool the
/// per-query searches run in parallel (results committed in query order —
/// bit-identical to serial).
[[nodiscard]] std::vector<PhaseEdge> answer_queries(graph::DijkstraWorkspace& ws,
                                                    const graph::Graph& h,
                                                    const std::vector<PhaseEdge>& queries,
                                                    double t, int* max_hops,
                                                    runtime::WorkerPool* pool = nullptr);

/// §2.2.5: find mutually redundant pairs among `added`, build the conflict
/// graph J (one node per edge participating in >= 1 pair), run `mis` on it
/// and return the indices (into `added`) of edges to REMOVE (non-MIS nodes).
[[nodiscard]] std::vector<int> redundant_edge_removal(
    const graph::Graph& h, const std::vector<PhaseEdge>& added, double t1,
    const std::function<std::vector<int>(const graph::Graph&)>& mis);

[[nodiscard]] std::vector<int> redundant_edge_removal(
    graph::DijkstraWorkspace& ws, const graph::Graph& h, const std::vector<PhaseEdge>& added,
    double t1, const std::function<std::vector<int>(const graph::Graph&)>& mis,
    runtime::WorkerPool* pool = nullptr);

/// The conflict graph J of §2.2.5 alone (for Lemma 20 doubling-dimension
/// experiments): node k = added[k]; edges connect mutually redundant pairs.
[[nodiscard]] graph::Graph redundancy_conflict_graph(const graph::Graph& h,
                                                     const std::vector<PhaseEdge>& added,
                                                     double t1);

/// With a pool the §2.2.5 endpoint-ball harvests (one bounded search per
/// distinct endpoint — the dominant cost) run on the workers; the pair sweep
/// and J construction stay sequential, so J is bit-identical to serial.
[[nodiscard]] graph::Graph redundancy_conflict_graph(graph::DijkstraWorkspace& ws,
                                                     const graph::Graph& h,
                                                     const std::vector<PhaseEdge>& added,
                                                     double t1,
                                                     runtime::WorkerPool* pool = nullptr);

}  // namespace detail

}  // namespace localspan::core
