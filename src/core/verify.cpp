#include "core/verify.hpp"

#include <cmath>
#include <sstream>

#include "graph/components.hpp"
#include "graph/metrics.hpp"

namespace localspan::core {

std::string VerificationReport::summary() const {
  std::ostringstream os;
  os << (ok() ? "PASS" : "FAIL") << ": subgraph=" << (is_subgraph ? "yes" : "NO")
     << " weights=" << (weights_match ? "yes" : "NO") << " stretch=" << measured_stretch << "/"
     << stretch_bound << (stretch_ok ? "" : " [VIOLATED]")
     << " connectivity=" << (connectivity_ok ? "yes" : "NO") << " maxdeg=" << measured_max_degree
     << (degree_ok ? "" : " [OVER CAP]") << " lightness=" << measured_lightness
     << (lightness_ok ? "" : " [OVER CAP]");
  return os.str();
}

VerificationReport verify_spanner(const ubg::UbgInstance& inst, const graph::Graph& topo,
                                  double t, const VerifyCaps& caps) {
  VerificationReport rep;
  rep.stretch_bound = t;
  if (topo.n() != inst.g.n()) return rep;  // everything false

  rep.is_subgraph = true;
  rep.weights_match = true;
  for (const graph::Edge& e : topo.edges()) {
    if (!inst.g.has_edge(e.u, e.v)) {
      rep.is_subgraph = false;
      break;
    }
    if (std::abs(inst.g.edge_weight(e.u, e.v) - e.w) > 1e-9) rep.weights_match = false;
  }

  rep.measured_stretch = graph::max_edge_stretch(inst.g, topo);
  rep.stretch_ok = rep.measured_stretch <= t * (1.0 + 1e-9);

  rep.connectivity_ok = graph::connected_components(inst.g).count ==
                        graph::connected_components(topo).count;

  rep.measured_max_degree = topo.max_degree();
  rep.degree_ok = rep.measured_max_degree <= caps.max_degree;

  rep.measured_lightness = graph::lightness(inst.g, topo);
  rep.lightness_ok = rep.measured_lightness <= caps.lightness;
  return rep;
}

}  // namespace localspan::core
