#include "core/relaxed_greedy.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "core/greedy.hpp"
#include "graph/components.hpp"
#include "graph/dijkstra.hpp"
#include "mis/luby.hpp"
#include "mis/mis.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

namespace localspan::core {

namespace detail {

bool is_covered_edge(const ubg::UbgInstance& inst, const graph::Graph& gp, const PhaseEdge& e,
                     double theta) {
  const double alpha = inst.config.alpha;
  const auto test_side = [&](int u, int v) {
    // Looking for z with {u,z} in G'_{i-1}, |vz| <= alpha, angle vuz <= theta.
    const geom::Point& pu = inst.points[static_cast<std::size_t>(u)];
    const geom::Point& pv = inst.points[static_cast<std::size_t>(v)];
    for (const graph::Neighbor& nb : gp.neighbors(u)) {
      const int z = nb.to;
      if (z == v) continue;
      const geom::Point& pz = inst.points[static_cast<std::size_t>(z)];
      if (geom::distance(pv, pz) > alpha) continue;
      const double duz = geom::distance(pu, pz);
      if (duz == 0.0) continue;                          // degenerate ray
      if (duz > geom::distance(pu, pv)) continue;        // Lemma 3 needs |uz| <= |uv|
      if (geom::angle_at(pu, pv, pz) <= theta) return true;
    }
    return false;
  };
  return test_side(e.u, e.v) || test_side(e.v, e.u);
}

bool is_covered_edge(const graph::SoaPoints& pts, double alpha, const graph::Graph& gp,
                     const PhaseEdge& e, double theta) {
  const auto test_side = [&](int u, int v) {
    for (const graph::Neighbor& nb : gp.neighbors(u)) {
      const int z = nb.to;
      if (z == v) continue;
      if (pts.distance(v, z) > alpha) continue;
      const double duz = pts.distance(u, z);
      if (duz == 0.0) continue;                    // degenerate ray
      if (duz > pts.distance(u, v)) continue;      // Lemma 3 needs |uz| <= |uv|
      if (pts.angle_at(u, v, z) <= theta) return true;
    }
    return false;
  };
  return test_side(e.u, e.v) || test_side(e.v, e.u);
}

std::vector<PhaseEdge> select_query_edges(const std::vector<PhaseEdge>& candidates,
                                          const cluster::ClusterCover& cover, double t,
                                          int* per_cluster_max, runtime::WorkerPool* pool) {
  struct Best {
    double objective;
    PhaseEdge edge;
  };
  // The winner per cluster pair is the lexicographic minimum by
  // (objective, (u, v)) — a total order — so folding any partition of the
  // candidates with this rule and merging with the same rule yields the
  // same map regardless of chunk boundaries or fold order.
  const auto fold = [&](std::map<std::pair<int, int>, Best>& acc, const PhaseEdge& e,
                        double objective) {
    const int ca = cover.center_of[static_cast<std::size_t>(e.u)];
    const int cb = cover.center_of[static_cast<std::size_t>(e.v)];
    const auto key = std::minmax(ca, cb);
    auto it = acc.find(key);
    if (it == acc.end()) {
      acc.emplace(key, Best{objective, e});
    } else if (objective < it->second.objective ||
               (objective == it->second.objective &&
                std::pair(e.u, e.v) < std::pair(it->second.edge.u, it->second.edge.v))) {
      it->second = Best{objective, e};
    }
  };
  const auto objective_of = [&](const PhaseEdge& e) {
    return t * e.w - cover.dist_to_center[static_cast<std::size_t>(e.u)] -
           cover.dist_to_center[static_cast<std::size_t>(e.v)];
  };
  std::map<std::pair<int, int>, Best> best_per_pair;
  if (pool != nullptr && pool->threads() > 1 && candidates.size() > 1) {
    // Harvest: one partial-minimum map per worker over its contiguous chunk
    // (for_each chunks statically, so each worker folds sequentially into
    // its own slot). Commit: merge the partials in worker order.
    std::vector<std::map<std::pair<int, int>, Best>> partial(
        static_cast<std::size_t>(pool->threads()));
    pool->for_each(0, static_cast<int>(candidates.size()), [&](int worker, int i) {
      const PhaseEdge& e = candidates[static_cast<std::size_t>(i)];
      fold(partial[static_cast<std::size_t>(worker)], e, objective_of(e));
    });
    for (const auto& part : partial) {
      for (const auto& [key, b] : part) fold(best_per_pair, b.edge, b.objective);
    }
  } else {
    for (const PhaseEdge& e : candidates) fold(best_per_pair, e, objective_of(e));
  }
  std::vector<PhaseEdge> selected;
  selected.reserve(best_per_pair.size());
  std::unordered_map<int, int> incident;
  for (const auto& [key, b] : best_per_pair) {
    selected.push_back(b.edge);
    ++incident[key.first];
    if (key.second != key.first) ++incident[key.second];
  }
  if (per_cluster_max != nullptr) {
    int mx = 0;
    for (const auto& [c, cnt] : incident) mx = std::max(mx, cnt);
    *per_cluster_max = mx;
  }
  return selected;
}

std::vector<PhaseEdge> answer_queries(const graph::Graph& h, const std::vector<PhaseEdge>& queries,
                                      double t, int* max_hops) {
  graph::DijkstraWorkspace ws(h.n());
  return answer_queries(ws, h, queries, t, max_hops);
}

std::vector<PhaseEdge> answer_queries(graph::DijkstraWorkspace& ws, const graph::Graph& h,
                                      const std::vector<PhaseEdge>& queries, double t,
                                      int* max_hops, runtime::WorkerPool* pool) {
  // Each query is an independent early-exit bounded search on the frozen H;
  // with a pool, answers are harvested in parallel and committed in query
  // order, so to_add and the hop statistic are identical for every thread
  // count (max over ints is order-insensitive anyway). The serial path
  // streams — no per-call answer buffers on the dynamic repair hot path.
  std::vector<PhaseEdge> to_add;
  int worst_hops = 0;
  if (pool == nullptr || pool->threads() == 1) {
    for (const PhaseEdge& q : queries) {
      const double bound = t * q.w;
      int hops = -1;
      const double d = cluster::query_on_h(ws, h, q.u, q.v, bound, &hops);
      if (d <= bound) {
        worst_hops = std::max(worst_hops, hops);  // answered positively on H
      } else {
        to_add.push_back(q);
      }
    }
  } else {
    const int k = static_cast<int>(queries.size());
    std::vector<double> dist(static_cast<std::size_t>(k));
    std::vector<int> hops(static_cast<std::size_t>(k));
    pool->for_each(0, k, [&](int worker, int i) {
      const PhaseEdge& q = queries[static_cast<std::size_t>(i)];
      dist[static_cast<std::size_t>(i)] = cluster::query_on_h(
          pool->workspace(worker), h, q.u, q.v, t * q.w, &hops[static_cast<std::size_t>(i)]);
    });
    for (int i = 0; i < k; ++i) {
      const PhaseEdge& q = queries[static_cast<std::size_t>(i)];
      if (dist[static_cast<std::size_t>(i)] <= t * q.w) {
        worst_hops = std::max(worst_hops, hops[static_cast<std::size_t>(i)]);
      } else {
        to_add.push_back(q);
      }
    }
  }
  if (max_hops != nullptr) *max_hops = worst_hops;
  return to_add;
}

graph::Graph redundancy_conflict_graph(const graph::Graph& h, const std::vector<PhaseEdge>& added,
                                       double t1) {
  graph::DijkstraWorkspace ws(h.n());
  return redundancy_conflict_graph(ws, h, added, t1);
}

graph::Graph redundancy_conflict_graph(graph::DijkstraWorkspace& ws, const graph::Graph& h,
                                       const std::vector<PhaseEdge>& added, double t1,
                                       runtime::WorkerPool* pool) {
  const int k = static_cast<int>(added.size());
  graph::Graph j(k);
  if (k < 2) return j;
  double max_w = 0.0;
  for (const PhaseEdge& e : added) max_w = std::max(max_w, e.w);
  const double bound = t1 * max_w;

  // Index the distinct endpoints of `added` and the edges incident to each.
  std::vector<int> index_of(static_cast<std::size_t>(h.n()), -1);
  std::vector<int> endpoints;
  for (const PhaseEdge& e : added) {
    for (int p : {e.u, e.v}) {
      if (index_of[static_cast<std::size_t>(p)] == -1) {
        index_of[static_cast<std::size_t>(p)] = static_cast<int>(endpoints.size());
        endpoints.push_back(p);
      }
    }
  }
  const int ne = static_cast<int>(endpoints.size());
  std::vector<std::vector<int>> edges_of(static_cast<std::size_t>(ne));
  for (int a = 0; a < k; ++a) {
    edges_of[static_cast<std::size_t>(index_of[static_cast<std::size_t>(added[static_cast<std::size_t>(a)].u)])].push_back(a);
    edges_of[static_cast<std::size_t>(index_of[static_cast<std::size_t>(added[static_cast<std::size_t>(a)].v)])].push_back(a);
  }

  // One bounded search per endpoint, kept *sparse*: only distances to other
  // endpoints survive (harvested from the touched list, so each row costs
  // O(|ball|), not O(k) — and nothing is O(n)). The rows are independent
  // pure functions of (h, endpoint, bound), so with a pool they are
  // harvested in parallel; the pair sweep below reads them in the fixed
  // edge order either way.
  std::vector<std::vector<std::pair<int, double>>> rows(static_cast<std::size_t>(ne));
  runtime::for_each_with_workspace(pool, ws, 0, ne, [&](graph::DijkstraWorkspace& wws, int r) {
    const graph::SpView sp = wws.bounded(h, endpoints[static_cast<std::size_t>(r)], bound);
    for (int v : sp.touched()) {
      const int q = index_of[static_cast<std::size_t>(v)];
      if (q != -1) rows[static_cast<std::size_t>(r)].push_back({q, sp.dist(v)});
    }
  });

  // Enumerate only pairs that can possibly conflict. Both §2.2.5 pairings
  // need sp(e.u, f.u) or sp(e.u, f.v) finite within the bound, so every
  // conflict partner of edge a = {e.u, e.v} has an endpoint in e.u's row —
  // the all-pairs O(k^2) sweep becomes output-sensitive in the ball sizes.
  std::vector<double> du(static_cast<std::size_t>(ne)), dv(static_cast<std::size_t>(ne));
  std::vector<int> du_stamp(static_cast<std::size_t>(ne), -1);
  std::vector<int> dv_stamp(static_cast<std::size_t>(ne), -1);
  std::vector<int> seen(static_cast<std::size_t>(k), -1);
  for (int a = 0; a < k; ++a) {
    const PhaseEdge& e = added[static_cast<std::size_t>(a)];
    const int ru = index_of[static_cast<std::size_t>(e.u)];
    const int rv = index_of[static_cast<std::size_t>(e.v)];
    for (const auto& [q, d] : rows[static_cast<std::size_t>(ru)]) {
      du[static_cast<std::size_t>(q)] = d;
      du_stamp[static_cast<std::size_t>(q)] = a;
    }
    for (const auto& [q, d] : rows[static_cast<std::size_t>(rv)]) {
      dv[static_cast<std::size_t>(q)] = d;
      dv_stamp[static_cast<std::size_t>(q)] = a;
    }
    const auto d_from_u = [&](int q) {
      return du_stamp[static_cast<std::size_t>(q)] == a ? du[static_cast<std::size_t>(q)]
                                                        : graph::kInf;
    };
    const auto d_from_v = [&](int q) {
      return dv_stamp[static_cast<std::size_t>(q)] == a ? dv[static_cast<std::size_t>(q)]
                                                        : graph::kInf;
    };
    for (const auto& [q, dq] : rows[static_cast<std::size_t>(ru)]) {
      for (int b : edges_of[static_cast<std::size_t>(q)]) {
        if (b <= a || seen[static_cast<std::size_t>(b)] == a) continue;
        seen[static_cast<std::size_t>(b)] = a;
        const PhaseEdge& f = added[static_cast<std::size_t>(b)];
        const int fu = index_of[static_cast<std::size_t>(f.u)];
        const int fv = index_of[static_cast<std::size_t>(f.v)];
        // Conditions (i)+(ii) of §2.2.5, tried under both endpoint pairings
        // (sp is symmetric, so each pairing shares one connection sum S).
        const double s1 = d_from_u(fu) + d_from_v(fv);
        const double s2 = d_from_u(fv) + d_from_v(fu);
        const bool pairing1 = s1 + f.w <= t1 * e.w && s1 + e.w <= t1 * f.w;
        const bool pairing2 = s2 + f.w <= t1 * e.w && s2 + e.w <= t1 * f.w;
        if (pairing1 || pairing2) j.add_edge(a, b, 1.0);
      }
    }
  }
  return j;
}

std::vector<int> redundant_edge_removal(
    const graph::Graph& h, const std::vector<PhaseEdge>& added, double t1,
    const std::function<std::vector<int>(const graph::Graph&)>& mis) {
  graph::DijkstraWorkspace ws(h.n());
  return redundant_edge_removal(ws, h, added, t1, mis);
}

std::vector<int> redundant_edge_removal(
    graph::DijkstraWorkspace& ws, const graph::Graph& h, const std::vector<PhaseEdge>& added,
    double t1, const std::function<std::vector<int>(const graph::Graph&)>& mis,
    runtime::WorkerPool* pool) {
  const graph::Graph j = redundancy_conflict_graph(ws, h, added, t1, pool);
  if (j.m() == 0) return {};
  const std::vector<int> keep = mis(j);
  std::vector<char> kept(static_cast<std::size_t>(j.n()), 0);
  for (int v : keep) kept[static_cast<std::size_t>(v)] = 1;
  std::vector<int> remove;
  for (int v = 0; v < j.n(); ++v) {
    // Only nodes participating in a redundant pair are in V(J) per the
    // paper; isolated nodes here correspond to non-participating edges and
    // are always kept.
    if (!kept[static_cast<std::size_t>(v)] && j.degree(v) > 0) remove.push_back(v);
  }
  return remove;
}

}  // namespace detail

namespace {

using detail::PhaseEdge;

/// Per-phase counters (deterministic at every thread count — they mirror
/// the serial-order PhaseStats fields) and phase spans. The span names are
/// the declared phase schema of the relaxed family in builtin_algorithms.
struct RgMetrics {
  obs::MetricId edges_examined = obs::counter_id("rg.edges_examined");
  obs::MetricId edges_already = obs::counter_id("rg.edges_already_in_spanner");
  obs::MetricId edges_covered = obs::counter_id("rg.edges_covered");
  obs::MetricId edges_candidate = obs::counter_id("rg.edges_candidate");
  obs::MetricId queries = obs::counter_id("rg.queries");
  obs::MetricId edges_added = obs::counter_id("rg.edges_added");
  obs::MetricId edges_removed = obs::counter_id("rg.edges_removed");
  obs::MetricId heap_pushes = obs::counter_id("rg.heap_pushes");
  obs::MetricId heap_pops = obs::counter_id("rg.heap_pops");
  obs::MetricId phase0 = obs::span_id("rg.phase0");
  obs::MetricId bins_span = obs::span_id("rg.bins");
  obs::MetricId cover_span = obs::span_id("rg.cover");
  obs::MetricId filter_span = obs::span_id("rg.filter");
  obs::MetricId select_span = obs::span_id("rg.select");
  obs::MetricId cluster_graph_span = obs::span_id("rg.cluster_graph");
  obs::MetricId queries_span = obs::span_id("rg.queries");
  obs::MetricId redundancy_span = obs::span_id("rg.redundancy");
};

const RgMetrics& rg_metrics() {
  static const RgMetrics m;
  return m;
}

/// Drain the plain heap tallies of the run workspace (and each per-worker
/// workspace) into the rg.heap_* counters at a phase boundary.
void flush_heap_ops(graph::DijkstraWorkspace& ws, runtime::WorkerPool* pool) {
  if (!obs::enabled()) return;
  auto [pushes, pops] = ws.take_heap_ops();
  if (pool != nullptr) {
    for (int w = 0; w < pool->threads(); ++w) {
      const auto [a, b] = pool->workspace(w).take_heap_ops();
      pushes += a;
      pops += b;
    }
  }
  obs::counter_add(rg_metrics().heap_pushes, pushes);
  obs::counter_add(rg_metrics().heap_pops, pops);
}

std::function<double(double)> make_transform(const RelaxedGreedyOptions& opts) {
  if (opts.weight_transform) return opts.weight_transform;
  return [](double len) { return len; };
}

/// Phase 0 (§2.1): components of G_0 are cliques (Lemma 1); span each with
/// SEQ-GREEDY and merge. Each component's chosen edge set is a pure function
/// of (members, weights), so with a pool the per-component SEQ-GREEDY runs
/// are harvested in parallel (dynamically scheduled — component sizes are
/// skewed) and the spanner edges committed in component order, bit-identical
/// to the serial path.
PhaseStats process_short_edges(const ubg::UbgInstance& inst, const graph::SoaPoints& pts,
                               const std::vector<graph::Edge>& bin0,
                               const std::function<double(double)>& transform, const Params& params,
                               int clique_cap, graph::Graph& spanner, int* component_count,
                               graph::DijkstraWorkspace& ws, runtime::WorkerPool* pool) {
  PhaseStats st;
  st.bin = 0;
  st.w_hi = params.alpha / inst.g.n();
  st.edges_in_bin = static_cast<int>(bin0.size());
  graph::Graph g0(inst.g.n());
  for (const graph::Edge& e : bin0) g0.add_edge(e.u, e.v, e.w);
  const std::vector<std::vector<int>> groups = graph::connected_components(g0).groups();
  const auto weight = [&](int u, int v) {
    return transform(std::max(pts.distance(u, v), 1e-12));
  };
  std::vector<const std::vector<int>*> work;
  for (const std::vector<int>& members : groups) {
    if (members.size() >= 2) work.push_back(&members);
  }
  std::vector<std::vector<graph::Edge>> chosen(work.size());
  runtime::scatter_commit(
      pool, ws, static_cast<int>(work.size()),
      [&](graph::DijkstraWorkspace&, int, int c) {
        const std::vector<int>& members = *work[static_cast<std::size_t>(c)];
        if (static_cast<int>(members.size()) <= clique_cap) {
          chosen[static_cast<std::size_t>(c)] = seq_greedy_clique(members, weight, params.t);
        } else {
          // Safety valve for adversarially dense components: greedy over the
          // component-internal UBG edges (a superset of spanner needs; see
          // options doc). Edges leaving the component belong to later bins.
          std::vector<char> in_comp(static_cast<std::size_t>(inst.g.n()), 0);
          for (int u : members) in_comp[static_cast<std::size_t>(u)] = 1;
          graph::Graph local(inst.g.n());
          for (int u : members) {
            for (const graph::Neighbor& nb : inst.g.neighbors(u)) {
              if (u < nb.to && in_comp[static_cast<std::size_t>(nb.to)]) {
                local.add_edge(u, nb.to, weight(u, nb.to));
              }
            }
          }
          chosen[static_cast<std::size_t>(c)] = seq_greedy(local, params.t).edges();
        }
      },
      [&](int c) {
        for (const graph::Edge& e : chosen[static_cast<std::size_t>(c)]) {
          if (spanner.add_edge(e.u, e.v, e.w)) ++st.added;
        }
      });
  if (component_count != nullptr) *component_count = static_cast<int>(work.size());
  return st;
}

}  // namespace

RelaxedGreedyResult relaxed_greedy(const ubg::UbgInstance& inst, const Params& params,
                                   const RelaxedGreedyOptions& opts) {
  params.validate();
  if (std::abs(params.alpha - inst.config.alpha) > 1e-12) {
    throw std::invalid_argument("relaxed_greedy: params.alpha != instance alpha");
  }
  const int n = inst.g.n();
  const auto transform = make_transform(opts);

  // Shortest-path scratch for the whole run: one workspace (caller-owned
  // when opts.workspace is set, so repeated runs reuse the same buffers) and
  // one CSR snapshot of G'_{i-1} per phase for the read-heavy cover/cluster
  // passes. The geometry is snapshotted once into flat SoA coordinate lanes
  // for the filter/classify loops (bit-identical kernels — see SoaPoints).
  graph::DijkstraWorkspace run_ws;
  graph::DijkstraWorkspace& ws = opts.workspace != nullptr ? *opts.workspace : run_ws;
  graph::CsrView csr;
  const graph::SoaPoints pts(inst.points);

  // Worker team for the embarrassingly parallel passes: the caller's pool
  // when provided (long-lived engines), else a run-local pool when more than
  // one thread is requested, else the serial path (pool == nullptr). Every
  // result is bit-identical across thread counts — see RelaxedGreedyOptions.
  std::optional<runtime::WorkerPool> run_pool;
  runtime::WorkerPool* pool = opts.worker_pool;
  if (pool == nullptr) {
    const int threads = runtime::resolve_threads(opts.threads);
    if (threads > 1) pool = &run_pool.emplace(threads);
  }

  // Materialize edges with Euclidean lengths and active weights.
  const std::vector<graph::Edge> ge = inst.g.edges();
  std::vector<graph::Edge> weighted;
  std::vector<double> lens;
  weighted.reserve(ge.size());
  lens.reserve(ge.size());
  for (const graph::Edge& e : ge) {
    weighted.push_back({e.u, e.v, transform(e.w)});
    lens.push_back(e.w);  // generator stores Euclidean lengths as weights
  }

  const BinSchema schema(params.alpha, params.r, n);
  const auto bins = [&] {
    const obs::Span span(rg_metrics().bins_span);
    return group_edges_by_bin(weighted, schema, lens, pool);
  }();

  RelaxedGreedyResult result{graph::Graph(n), params, {}, 0, 0,
                             static_cast<int>(bins.size())};

  // Phase 0.
  {
    const obs::Span span(rg_metrics().phase0);
    result.phases.push_back(process_short_edges(inst, pts, bins[0], transform, params,
                                                opts.phase0_clique_cap, result.spanner,
                                                &result.phase0_components, ws, pool));
    obs::counter_add(rg_metrics().edges_examined, result.phases.back().edges_in_bin);
    obs::counter_add(rg_metrics().edges_added, result.phases.back().added);
  }

  // §2.2.5 symmetry breaking: the deterministic pool-parallel Luby MIS, so
  // the redundancy pass — the last serial residue of the pipeline — runs on
  // the same worker team as everything else. The seed is a fixed constant:
  // the sequential algorithm is a deterministic function of the instance,
  // and any MIS of the conflict graph preserves the §2.2.5 guarantees.
  constexpr std::uint64_t kMisSeed = 0x10CA15FA2006ULL;
  const auto mis_fn = [&](const graph::Graph& j) {
    return mis::luby_mis_parallel(j, kMisSeed, nullptr, pool);
  };

  // Phases i >= 1, skipping empty bins (recomputation is from G' alone, so
  // skipping is a pure optimization).
  for (int i = 1; i < static_cast<int>(bins.size()); ++i) {
    const auto& bin = bins[static_cast<std::size_t>(i)];
    if (bin.empty()) continue;
    ++result.nonempty_bins;

    PhaseStats st;
    st.bin = i;
    st.w_lo = schema.W(i - 1);
    st.w_hi = schema.W(i);
    st.edges_in_bin = static_cast<int>(bin.size());

    const double w_prev = transform(schema.W(i - 1));
    const double radius = params.delta * w_prev;

    // (i) cluster cover of G'_{i-1}, on a frozen CSR snapshot of it.
    csr.assign(result.spanner);
    const cluster::ClusterCover cover = [&] {
      const obs::Span span(rg_metrics().cover_span);
      return cluster::sequential_cover(csr, radius, ws, pool);
    }();
    st.clusters = static_cast<int>(cover.centers.size());

    // (ii) covered-edge filter + candidate selection. Each edge's status is
    // a pure function of (inst, G'_{i-1}, edge), so the θ-cone tests run in
    // parallel; candidates are committed in bin order.
    const std::vector<PhaseEdge> candidates = [&] {
      const obs::Span span(rg_metrics().filter_span);
      enum : char { kAlready, kCovered, kCandidate };
      std::vector<char> status(bin.size(), kCandidate);
      std::vector<double> lens(bin.size(), 0.0);  // Euclidean length, computed once
      const auto classify = [&](int i) {
        const graph::Edge& e = bin[static_cast<std::size_t>(i)];
        if (result.spanner.has_edge(e.u, e.v)) {
          status[static_cast<std::size_t>(i)] = kAlready;
          return;
        }
        const double len = pts.distance(e.u, e.v);
        lens[static_cast<std::size_t>(i)] = len;
        if (opts.covered_edge_filter &&
            detail::is_covered_edge(pts, inst.config.alpha, result.spanner, {e.u, e.v, len, e.w},
                                    params.theta)) {
          status[static_cast<std::size_t>(i)] = kCovered;
        }
      };
      if (pool != nullptr && pool->threads() > 1) {
        pool->for_each(0, static_cast<int>(bin.size()), [&](int, int i) { classify(i); });
      } else {
        for (int i = 0; i < static_cast<int>(bin.size()); ++i) classify(i);
      }
      std::vector<PhaseEdge> out;
      for (std::size_t i = 0; i < bin.size(); ++i) {
        const graph::Edge& e = bin[i];
        if (status[i] == kAlready) {
          ++st.already_in_spanner;
        } else if (status[i] == kCovered) {
          ++st.covered;
        } else {
          out.push_back({e.u, e.v, lens[i], e.w});
        }
      }
      return out;
    }();
    st.candidates = static_cast<int>(candidates.size());

    const std::vector<PhaseEdge> queries = [&] {
      const obs::Span span(rg_metrics().select_span);
      return detail::select_query_edges(candidates, cover, params.t,
                                        &st.max_query_edges_per_cluster, pool);
    }();
    st.queries = static_cast<int>(queries.size());

    // (iii) cluster graph of G'_{i-1} (same snapshot as the cover).
    const cluster::ClusterGraph cg = [&] {
      const obs::Span span(rg_metrics().cluster_graph_span);
      return cluster::build_cluster_graph(csr, cover, w_prev, ws, pool);
    }();
    st.max_inter_degree = cg.max_inter_degree;
    st.max_inter_weight = cg.max_inter_weight;

    // (iv) shortest-path queries on H (lazy update: all answered before adds).
    const std::vector<PhaseEdge> to_add = [&] {
      const obs::Span span(rg_metrics().queries_span);
      return detail::answer_queries(ws, cg.h, queries, params.t, &st.max_query_hops, pool);
    }();
    for (const PhaseEdge& e : to_add) result.spanner.add_edge(e.u, e.v, e.w);
    st.added = static_cast<int>(to_add.size());

    // (v) redundant edge removal.
    if (opts.redundancy_removal && to_add.size() >= 2) {
      const obs::Span span(rg_metrics().redundancy_span);
      const std::vector<int> removal =
          detail::redundant_edge_removal(ws, cg.h, to_add, params.t1, mis_fn, pool);
      for (int idx : removal) {
        const PhaseEdge& e = to_add[static_cast<std::size_t>(idx)];
        result.spanner.remove_edge(e.u, e.v);
      }
      st.removed = static_cast<int>(removal.size());
    }

    if (obs::enabled()) {
      const RgMetrics& m = rg_metrics();
      obs::counter_add(m.edges_examined, st.edges_in_bin);
      obs::counter_add(m.edges_already, st.already_in_spanner);
      obs::counter_add(m.edges_covered, st.covered);
      obs::counter_add(m.edges_candidate, st.candidates);
      obs::counter_add(m.queries, st.queries);
      obs::counter_add(m.edges_added, st.added);
      obs::counter_add(m.edges_removed, st.removed);
      flush_heap_ops(ws, pool);
    }

    result.phases.push_back(st);
  }
  return result;
}

}  // namespace localspan::core
