#include "core/greedy.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/dijkstra.hpp"
#include "graph/sp_workspace.hpp"

namespace localspan::core {

graph::Graph seq_greedy(const graph::Graph& g, double t) {
  if (!(t >= 1.0)) throw std::invalid_argument("seq_greedy: t must be >= 1");
  std::vector<graph::Edge> es = g.edges();
  std::sort(es.begin(), es.end(), [](const graph::Edge& a, const graph::Edge& b) {
    if (a.w != b.w) return a.w < b.w;
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  graph::Graph out(g.n());
  graph::DijkstraWorkspace ws(g.n());  // one workspace across all m queries
  for (const graph::Edge& e : es) {
    const double bound = t * e.w;
    if (ws.distance(out, e.u, e.v, bound) > bound) out.add_edge(e.u, e.v, e.w);
  }
  return out;
}

std::vector<graph::Edge> seq_greedy_clique(const std::vector<int>& members,
                                           const std::function<double(int, int)>& weight,
                                           double t) {
  if (!(t >= 1.0)) throw std::invalid_argument("seq_greedy_clique: t must be >= 1");
  const int k = static_cast<int>(members.size());
  graph::Graph local(k);
  // Local clique in member-index space.
  struct LocalEdge {
    int a, b;
    double w;
  };
  std::vector<LocalEdge> es;
  es.reserve(static_cast<std::size_t>(k) * static_cast<std::size_t>(k - 1) / 2);
  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      es.push_back({a, b, weight(members[static_cast<std::size_t>(a)],
                                 members[static_cast<std::size_t>(b)])});
    }
  }
  std::sort(es.begin(), es.end(), [](const LocalEdge& x, const LocalEdge& y) {
    if (x.w != y.w) return x.w < y.w;
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  std::vector<graph::Edge> chosen;
  graph::DijkstraWorkspace ws(k);
  for (const LocalEdge& e : es) {
    const double bound = t * e.w;
    if (ws.distance(local, e.a, e.b, bound) > bound) {
      local.add_edge(e.a, e.b, e.w);
      const int gu = members[static_cast<std::size_t>(e.a)];
      const int gv = members[static_cast<std::size_t>(e.b)];
      chosen.push_back({std::min(gu, gv), std::max(gu, gv), e.w});
    }
  }
  return chosen;
}

}  // namespace localspan::core
