#pragma once
/// \file distributed.hpp
/// The distributed relaxed greedy algorithm (paper §3), executed on the
/// synchronous message-passing simulator with full round/message accounting.
///
/// Per phase (Theorems 16-21):
///   cover      — ball gather (⌈2δW/α⌉ hops) + MIS on the proximity graph J
///                (Luby on the simulator; J-edges span ≤ ⌈2δW/α⌉ G-hops so
///                each J-round costs that many G-rounds) + 1 attach round;
///   select     — cluster heads gather 1+⌈2δW/α⌉ hops            (O(1));
///   clustergraph — gather ⌈2(2δ+1)W/α⌉ hops                     (O(1));
///   query      — brute-force search ⌈2(2δ+1)/α⌉ hops (Theorem 9, O(1));
///   redundancy — constant-hop exchange + MIS on the conflict graph J.
/// Phase 0 (§3.1) costs O(1) rounds: 2 to learn the closed neighborhood
/// topology, 1 to announce chosen spanner edges.
///
/// Alongside the measured rounds (Luby MIS: O(log n) w.h.p.) the driver
/// reports the KMW-model rounds where each MIS invocation is charged
/// log*(n) iterations instead — the paper's O(log n · log* n) bound refers
/// to that model (see DESIGN.md substitutions).

#include <cstdint>

#include "core/relaxed_greedy.hpp"
#include "runtime/async_network.hpp"
#include "runtime/ledger.hpp"
#include "runtime/reliable.hpp"

namespace localspan::core {

/// Transport selection for the message-passing phases (the Luby MIS
/// invocations — every other phase is constant-hop gathers whose rounds are
/// charged analytically to the ledger either way).
enum class NetMode { kSync, kAsync };

struct NetOptions {
  NetMode mode = NetMode::kSync;
  runtime::AdversaryConfig adversary;  ///< fault injection (async mode only).
  runtime::ReliableConfig reliable;    ///< retransmission policy (async mode only).
  bool record_transcript = false;      ///< keep per-delivery replay records.
};

/// Aggregated async-transport outcome across all MIS invocations of a run.
/// Empty (all zeros) in sync mode.
struct AsyncNetSummary {
  runtime::AsyncStats physical;    ///< transport-level frame counters.
  runtime::ReliableStats protocol; ///< delivery-protocol counters.
  double convergence_time = 0.0;   ///< summed final virtual time per invocation.
  int invocations = 0;             ///< MIS runs that used the async transport.
  std::vector<runtime::DeliveryRecord> transcript;  ///< when recorded.
};

/// Round accounting of one phase (one processed bin).
struct PhaseRounds {
  int bin = 0;
  long long cover = 0;
  long long select = 0;
  long long cluster_graph = 0;
  long long query = 0;
  long long redundancy = 0;
  long long mis_rounds_measured = 0;   ///< Luby network rounds × hop factor.
  long long mis_rounds_kmw_model = 0;  ///< log*(n) iterations × hop factor.

  [[nodiscard]] long long total_measured() const noexcept {
    return cover + select + cluster_graph + query + redundancy;
  }
};

/// Network-level outcome of the distributed run.
struct DistributedStats {
  long long rounds_measured = 0;
  long long rounds_kmw_model = 0;
  long long messages = 0;
  int mis_invocations = 0;
  int max_luby_iterations = 0;
  std::vector<PhaseRounds> per_phase;
  AsyncNetSummary async;
};

struct DistributedResult {
  RelaxedGreedyResult base;  ///< spanner + per-phase algorithmic stats.
  DistributedStats net;
  runtime::RoundLedger ledger;
};

/// Run §3's distributed algorithm. Deterministic given `seed` (which drives
/// the Luby MIS draws). The output satisfies the same three properties as
/// the sequential algorithm; it differs edge-wise because cluster centers
/// come from an MIS rather than a sequential sweep.
///
/// With `net.mode == NetMode::kAsync` the MIS protocols run over the
/// adversarial asynchronous transport behind the reliable-delivery layer;
/// because that layer reconstructs exact round semantics, the spanner (and
/// every round/message count) is bit-identical to the sync run for any
/// adversary under which delivery succeeds. A partition that never heals
/// surfaces as `runtime::RetryBudgetExhausted`.
[[nodiscard]] DistributedResult distributed_relaxed_greedy(const ubg::UbgInstance& inst,
                                                           const Params& params,
                                                           const RelaxedGreedyOptions& opts = {},
                                                           std::uint64_t seed = 1,
                                                           const NetOptions& net = {});

}  // namespace localspan::core
