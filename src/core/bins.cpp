#include "core/bins.hpp"

#include <cmath>
#include <stdexcept>

namespace localspan::core {

BinSchema::BinSchema(double alpha, double r, int n) : alpha_(alpha), r_(r), w0_(alpha / n) {
  if (!(r > 1.0)) throw std::invalid_argument("BinSchema: r must be > 1");
  if (n < 1) throw std::invalid_argument("BinSchema: n must be >= 1");
  if (!(alpha > 0.0) || alpha > 1.0) throw std::invalid_argument("BinSchema: alpha in (0,1]");
  m_ = static_cast<int>(std::ceil(std::log(static_cast<double>(n) / alpha_) / std::log(r_)));
}

double BinSchema::W(int i) const {
  if (i < 0) throw std::invalid_argument("BinSchema::W: negative index");
  return std::pow(r_, i) * w0_;
}

int BinSchema::bin_of(double len) const {
  if (!(len > 0.0)) throw std::invalid_argument("BinSchema::bin_of: length must be positive");
  if (len <= w0_) return 0;
  // Initial guess from logs, then fix up floating-point boundary cases so
  // that the invariant W(i-1) < len <= W(i) holds exactly.
  int i = static_cast<int>(std::ceil(std::log(len / w0_) / std::log(r_)));
  if (i < 1) i = 1;
  while (i > 1 && W(i - 1) >= len) --i;
  while (W(i) < len) ++i;
  return i;
}

std::vector<std::vector<graph::Edge>> group_edges_by_bin(
    const std::vector<graph::Edge>& edges, const BinSchema& schema,
    const std::vector<double>& euclidean_len) {
  if (edges.size() != euclidean_len.size()) {
    throw std::invalid_argument("group_edges_by_bin: length array mismatch");
  }
  std::vector<std::vector<graph::Edge>> bins(static_cast<std::size_t>(schema.max_bin()) + 1);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const int b = schema.bin_of(euclidean_len[k]);
    if (b >= static_cast<int>(bins.size())) bins.resize(static_cast<std::size_t>(b) + 1);
    bins[static_cast<std::size_t>(b)].push_back(edges[k]);
  }
  return bins;
}

}  // namespace localspan::core
