#include "core/bins.hpp"

#include <cmath>
#include <stdexcept>

#include "runtime/parallel.hpp"

namespace localspan::core {

BinSchema::BinSchema(double alpha, double r, int n) : alpha_(alpha), r_(r), w0_(alpha / n) {
  if (!(r > 1.0)) throw std::invalid_argument("BinSchema: r must be > 1");
  if (n < 1) throw std::invalid_argument("BinSchema: n must be >= 1");
  if (!(alpha > 0.0) || alpha > 1.0) throw std::invalid_argument("BinSchema: alpha in (0,1]");
  m_ = static_cast<int>(std::ceil(std::log(static_cast<double>(n) / alpha_) / std::log(r_)));
}

double BinSchema::W(int i) const {
  if (i < 0) throw std::invalid_argument("BinSchema::W: negative index");
  return std::pow(r_, i) * w0_;
}

int BinSchema::bin_of(double len) const {
  if (!(len > 0.0)) throw std::invalid_argument("BinSchema::bin_of: length must be positive");
  if (len <= w0_) return 0;
  // Initial guess from logs, then fix up floating-point boundary cases so
  // that the invariant W(i-1) < len <= W(i) holds exactly.
  int i = static_cast<int>(std::ceil(std::log(len / w0_) / std::log(r_)));
  if (i < 1) i = 1;
  while (i > 1 && W(i - 1) >= len) --i;
  while (W(i) < len) ++i;
  return i;
}

std::vector<std::vector<graph::Edge>> group_edges_by_bin(
    const std::vector<graph::Edge>& edges, const BinSchema& schema,
    const std::vector<double>& euclidean_len, runtime::WorkerPool* pool) {
  if (edges.size() != euclidean_len.size()) {
    throw std::invalid_argument("group_edges_by_bin: length array mismatch");
  }
  const int k = static_cast<int>(edges.size());
  std::vector<std::vector<graph::Edge>> bins(static_cast<std::size_t>(schema.max_bin()) + 1);
  if (pool != nullptr && pool->threads() > 1 && k > 1) {
    // Harvest: each edge's bin index is a pure function of (schema, length).
    // Commit: push in edge order, so intra-bin order — which later phases
    // observe — matches the serial path exactly.
    std::vector<int> bin_index(static_cast<std::size_t>(k));
    pool->for_each(0, k, [&](int, int i) {
      bin_index[static_cast<std::size_t>(i)] = schema.bin_of(euclidean_len[static_cast<std::size_t>(i)]);
    });
    for (int i = 0; i < k; ++i) {
      const int b = bin_index[static_cast<std::size_t>(i)];
      if (b >= static_cast<int>(bins.size())) bins.resize(static_cast<std::size_t>(b) + 1);
      bins[static_cast<std::size_t>(b)].push_back(edges[static_cast<std::size_t>(i)]);
    }
  } else {
    for (int i = 0; i < k; ++i) {
      const int b = schema.bin_of(euclidean_len[static_cast<std::size_t>(i)]);
      if (b >= static_cast<int>(bins.size())) bins.resize(static_cast<std::size_t>(b) + 1);
      bins[static_cast<std::size_t>(b)].push_back(edges[static_cast<std::size_t>(i)]);
    }
  }
  return bins;
}

}  // namespace localspan::core
