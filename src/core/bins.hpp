#pragma once
/// \file bins.hpp
/// Geometric length bins (§2): W_i = r^i · α/n, I_0 = (0, α/n],
/// I_i = (W_{i-1}, W_i]. The relaxed greedy algorithm processes one bin per
/// phase in arbitrary intra-bin order — the relaxation that makes a
/// distributed implementation possible.

#include <vector>

#include "graph/graph.hpp"

namespace localspan::runtime {
class WorkerPool;
}

namespace localspan::core {

/// The bin schema for an n-node α-UBG with ratio r.
class BinSchema {
 public:
  /// \throws std::invalid_argument unless r > 1, n >= 1, alpha in (0,1].
  BinSchema(double alpha, double r, int n);

  /// W_i = r^i · α/n (the upper boundary of bin i; W_0 = α/n).
  [[nodiscard]] double W(int i) const;

  /// Bin index of an edge of Euclidean length `len` in (0, 1]:
  /// 0 when len <= α/n, else the unique i >= 1 with W(i-1) < len <= W(i).
  [[nodiscard]] int bin_of(double len) const;

  /// m = ⌈log_r(n/α)⌉: every admissible edge length (<= 1) falls in a bin
  /// with index <= max_bin().
  [[nodiscard]] int max_bin() const noexcept { return m_; }

  [[nodiscard]] double r() const noexcept { return r_; }
  [[nodiscard]] double w0() const noexcept { return w0_; }

 private:
  double alpha_;
  double r_;
  double w0_;
  int m_;
};

/// Edges of g grouped by bin of their *Euclidean length* `len(u,v)` (the
/// paper bins by geometric length even when an alternative weight metric is
/// in force, §1.6). Index = bin; empty bins stay empty and are skipped by
/// the phase loop.
///
/// With a pool, the per-edge bin indices (pure functions of the schema) are
/// harvested in parallel and the edges committed serially in edge order —
/// bin contents are bit-identical at every thread count.
[[nodiscard]] std::vector<std::vector<graph::Edge>> group_edges_by_bin(
    const std::vector<graph::Edge>& edges, const BinSchema& schema,
    const std::vector<double>& euclidean_len, runtime::WorkerPool* pool = nullptr);

}  // namespace localspan::core
