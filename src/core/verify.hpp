#pragma once
/// \file verify.hpp
/// Independent certification of a topology-control output.
///
/// Downstream users should not have to trust the construction: this module
/// re-checks, from scratch and with no shared state with the algorithms,
/// that a proposed topology satisfies the contract of the paper — subgraph
/// of the network, (1+ε)-stretch on every link, connectivity preservation,
/// and (against configurable caps) degree and lightness.

#include <string>

#include "graph/graph.hpp"
#include "ubg/generator.hpp"

namespace localspan::core {

/// Caps for the O(1) guarantees (the theorems do not give explicit
/// constants, so certification takes them as policy).
struct VerifyCaps {
  int max_degree = 64;
  double lightness = 16.0;
};

struct VerificationReport {
  bool is_subgraph = false;
  bool weights_match = false;
  bool stretch_ok = false;
  bool connectivity_ok = false;
  bool degree_ok = false;
  bool lightness_ok = false;

  double measured_stretch = 0.0;
  int measured_max_degree = 0;
  double measured_lightness = 0.0;
  double stretch_bound = 0.0;

  [[nodiscard]] bool ok() const {
    return is_subgraph && weights_match && stretch_ok && connectivity_ok && degree_ok &&
           lightness_ok;
  }

  [[nodiscard]] std::string summary() const;
};

/// Certify `topo` as a t-spanner topology for the instance.
[[nodiscard]] VerificationReport verify_spanner(const ubg::UbgInstance& inst,
                                                const graph::Graph& topo, double t,
                                                const VerifyCaps& caps = {});

}  // namespace localspan::core
