#pragma once
/// \file params.hpp
/// Derivation of the constants the relaxed greedy algorithm runs with.
///
/// The paper's guarantees hold under a web of sufficient conditions:
///   Lemma 3 / §2.2.2 :  0 < θ < π/4,  t >= 1/(cos θ − sin θ)
///   Theorem 10       :  0 < δ <= (t − t1)/4,  1 < t1 < t
///   Theorem 13       :  δ < min{(t−1)/(6+2t), (t−t1)/4},
///                       t_δ = t1(1−2δ)/(1+6δ) > 1,  1 < r < (t_δ+1)/2
/// Given only ε (t = 1+ε), `Params::strict` picks values meeting all of
/// them with safety margins. Because the resulting r is barely above 1 (the
/// price of the worst-case weight proof), `Params::practical` offers an
/// engineering preset with large r and mid-range t1/δ that keeps the
/// *stretch* conditions (Theorem 10) intact while trading away the formal
/// weight constant — experiment E12 quantifies the difference.

#include <string>
#include <vector>

namespace localspan::core {

/// Complete parameterization of the relaxed greedy algorithm.
struct Params {
  double eps = 0.5;    ///< target stretch slack; t = 1 + eps.
  double t = 1.5;      ///< stretch target (> 1).
  double t1 = 0.0;     ///< redundancy stretch, 1 < t1 < t (§2.2.5).
  double delta = 0.0;  ///< cluster radius factor: radius = delta * W_{i-1}.
  double t_delta = 0.0;  ///< t1(1−2δ)/(1+6δ) (Theorem 13).
  double r = 0.0;        ///< geometric bin ratio W_i = r^i · α/n (> 1).
  double theta = 0.0;    ///< covered-edge cone half-angle (Lemma 3).
  double alpha = 0.75;   ///< α of the α-UBG model, in (0, 1].
  bool strict = true;    ///< whether the Theorem-13 sufficient conditions hold.

  /// Theorem-faithful parameters: every sufficient condition of Theorems 10
  /// and 13 satisfied with margin. \throws std::invalid_argument if eps <= 0
  /// or alpha outside (0,1].
  static Params strict_params(double eps, double alpha);

  /// Engineering preset: Theorem 10 (stretch) conditions kept, bin ratio
  /// r = 1.8 for ~10x fewer phases; weight/degree still empirically flat.
  static Params practical_params(double eps, double alpha);

  /// True iff all Theorem 10 stretch-side conditions hold.
  [[nodiscard]] bool satisfies_stretch_conditions() const;

  /// True iff all Theorem 13 weight-side conditions hold too.
  [[nodiscard]] bool satisfies_weight_conditions() const;

  /// Every violated sufficient condition, each named after the inequality it
  /// breaks (stretch-side Theorem 10 / Lemma 3 conditions always; weight-side
  /// Theorem 13 conditions additionally when `strict`). Empty iff validate()
  /// would pass — registry- or caller-supplied parameters fail loudly with
  /// the exact condition in the message.
  [[nodiscard]] std::vector<std::string> violated_conditions() const;

  /// Throws std::invalid_argument naming each violated condition when the
  /// stretch-side conditions fail (running the algorithm would void its
  /// guarantee), or when `strict` and the weight-side conditions fail.
  void validate() const;

  [[nodiscard]] std::string describe() const;
};

/// Iterated logarithm log*(n) base 2 (KMW round model, [11]).
[[nodiscard]] int log_star(double n);

}  // namespace localspan::core
