#include "core/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/greedy.hpp"
#include "graph/components.hpp"
#include "graph/dijkstra.hpp"
#include "graph/soa_points.hpp"
#include "mis/luby.hpp"
#include "runtime/parallel.hpp"

namespace localspan::core {

namespace {

using detail::PhaseEdge;

/// Hops needed in G to explore a Euclidean-scale radius L: on any shortest
/// path, vertices two hops apart are > α apart (else the direct edge would
/// exist in an α-UBG), so a path of length L has at most ⌈2L/α⌉ hops.
long long hops_for(double length, double alpha) {
  return std::max<long long>(1, static_cast<long long>(std::ceil(2.0 * length / alpha)));
}

std::function<double(double)> make_transform(const RelaxedGreedyOptions& opts) {
  if (opts.weight_transform) return opts.weight_transform;
  return [](double len) { return len; };
}

}  // namespace

DistributedResult distributed_relaxed_greedy(const ubg::UbgInstance& inst, const Params& params,
                                             const RelaxedGreedyOptions& opts, std::uint64_t seed,
                                             const NetOptions& net_opts) {
  params.validate();
  if (net_opts.mode == NetMode::kAsync) {
    net_opts.adversary.validate();
    net_opts.reliable.validate();
  }
  if (std::abs(params.alpha - inst.config.alpha) > 1e-12) {
    throw std::invalid_argument("distributed_relaxed_greedy: params.alpha != instance alpha");
  }
  const int n = inst.g.n();
  const long long m_edges = inst.g.m();
  const auto transform = make_transform(opts);
  const int lstar = log_star(static_cast<double>(std::max(2, n)));

  DistributedResult result{{graph::Graph(n), params, {}, 0, 0, 0}, {}, {}};
  graph::Graph& spanner = result.base.spanner;
  runtime::RoundLedger& ledger = result.ledger;

  // Worker team for the simulator's compute spine (binning, MIS, query
  // selection/answering, redundancy balls). The round/message accounting is
  // analytic, so parallel execution changes wall-clock only — every result,
  // including the charged ledger, is bit-identical across thread counts.
  std::optional<runtime::WorkerPool> run_pool;
  runtime::WorkerPool* pool = opts.worker_pool;
  if (pool == nullptr) {
    const int threads = runtime::resolve_threads(opts.threads);
    if (threads > 1) pool = &run_pool.emplace(threads);
  }
  graph::DijkstraWorkspace run_ws;
  graph::DijkstraWorkspace& ws = opts.workspace != nullptr ? *opts.workspace : run_ws;
  const graph::SoaPoints pts(inst.points);

  const std::vector<graph::Edge> ge = inst.g.edges();
  std::vector<graph::Edge> weighted;
  std::vector<double> lens;
  for (const graph::Edge& e : ge) {
    weighted.push_back({e.u, e.v, transform(e.w)});
    lens.push_back(e.w);
  }
  const BinSchema schema(params.alpha, params.r, n);
  const auto bins = group_edges_by_bin(weighted, schema, lens, pool);
  result.base.total_bins = static_cast<int>(bins.size());

  // ---- Phase 0 (§3.1): every node learns its closed neighborhood topology
  // in 2 rounds (adjacency exchange), locally determines its G_0 component
  // (a clique, Lemma 1), runs SEQ-GREEDY on it deterministically, and
  // announces its incident spanner edges in 1 round. We compute the same
  // spanner centrally and charge those 3 rounds.
  {
    PhaseStats st;
    st.bin = 0;
    st.w_hi = params.alpha / n;
    st.edges_in_bin = static_cast<int>(bins[0].size());
    graph::Graph g0(n);
    for (const graph::Edge& e : bins[0]) g0.add_edge(e.u, e.v, e.w);
    const graph::Components comps = graph::connected_components(g0);
    const auto weight = [&](int u, int v) {
      return transform(std::max(pts.distance(u, v), 1e-12));
    };
    for (const std::vector<int>& members : comps.groups()) {
      if (members.size() < 2) continue;
      ++result.base.phase0_components;
      for (const graph::Edge& e : seq_greedy_clique(members, weight, params.t)) {
        if (spanner.add_edge(e.u, e.v, e.w)) ++st.added;
      }
    }
    ledger.charge("phase0", 3, 3 * 2 * m_edges);
    result.base.phases.push_back(st);
  }

  std::uint64_t phase_seed = seed;

  // MIS transport: sync (the pool-parallel harvester, which reproduces the
  // SyncNetwork's round/message accounting analytically and bit-identically
  // — both consume mis::luby_priority) or the adversarial async runtime
  // behind the reliable-delivery layer. Each invocation gets a fresh
  // network over its derived graph J and its own adversary seed (hashed
  // from the base seed and the invocation index), so a whole run replays
  // deterministically while invocations stay decorrelated.
  int async_invocation = 0;
  AsyncNetSummary& async = result.net.async;
  const auto run_mis = [&](const graph::Graph& j, mis::LubyStats* luby, const char* section) {
    if (net_opts.mode == NetMode::kSync) {
      return mis::luby_mis_parallel(j, ++phase_seed, luby, pool, nullptr, section);
    }
    runtime::AdversaryConfig adv = net_opts.adversary;
    adv.seed = adv.seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(++async_invocation);
    runtime::AsyncNetwork anet(j, adv);
    anet.set_record_transcript(net_opts.record_transcript);
    runtime::ReliableNetwork rnet(anet, net_opts.reliable, nullptr, section);
    std::vector<int> out = mis::luby_mis_on(rnet, j, ++phase_seed, luby);

    const runtime::AsyncStats& ps = anet.stats();
    async.physical.posted += ps.posted;
    async.physical.delivered += ps.delivered;
    async.physical.dropped += ps.dropped;
    async.physical.partition_dropped += ps.partition_dropped;
    async.physical.duplicated += ps.duplicated;
    async.physical.reordered += ps.reordered;
    async.physical.straggled += ps.straggled;
    async.physical.timers += ps.timers;
    const runtime::ReliableStats& rs = rnet.stats();
    async.protocol.data_sent += rs.data_sent;
    async.protocol.retransmits += rs.retransmits;
    async.protocol.timeouts += rs.timeouts;
    async.protocol.acks_sent += rs.acks_sent;
    async.protocol.acks_received += rs.acks_received;
    async.protocol.stale_acks += rs.stale_acks;
    async.protocol.dup_suppressed += rs.dup_suppressed;
    async.convergence_time += anet.now();
    ++async.invocations;
    if (net_opts.record_transcript) {
      async.transcript.insert(async.transcript.end(), anet.transcript().begin(),
                              anet.transcript().end());
    }
    return out;
  };

  for (int i = 1; i < static_cast<int>(bins.size()); ++i) {
    const auto& bin = bins[static_cast<std::size_t>(i)];
    if (bin.empty()) continue;
    ++result.base.nonempty_bins;

    PhaseStats st;
    st.bin = i;
    st.w_lo = schema.W(i - 1);
    st.w_hi = schema.W(i);
    st.edges_in_bin = static_cast<int>(bin.size());

    PhaseRounds pr;
    pr.bin = i;

    const double w_eucl = schema.W(i - 1);  // Euclidean-scale W_{i-1}
    const double w_prev = transform(w_eucl);
    const double radius = params.delta * w_prev;

    // ---- (i) cluster cover (§3.2.1): gather + Luby MIS on J + attach.
    const long long k_ball = hops_for(params.delta * w_eucl, params.alpha);
    mis::LubyStats luby1;
    const auto mis_fn = [&](const graph::Graph& j) { return run_mis(j, &luby1, "cover-mis"); };
    const cluster::ClusterCover cover = cluster::mis_cover(spanner, radius, mis_fn);
    st.clusters = static_cast<int>(cover.centers.size());

    pr.cover = k_ball                       // learn the δW ball of G'_{i-1}
               + luby1.network_rounds * k_ball  // each J-round = k_ball G-rounds
               + 1;                             // attach to a center
    pr.mis_rounds_measured += luby1.network_rounds * k_ball;
    pr.mis_rounds_kmw_model += static_cast<long long>(lstar) * k_ball;
    ledger.charge("cover", pr.cover,
                  k_ball * 2 * m_edges + luby1.messages * k_ball + n);
    result.net.mis_invocations += 1;
    result.net.max_luby_iterations = std::max(result.net.max_luby_iterations, luby1.iterations);

    // ---- (ii) query edge selection (§3.2.2): heads gather 1 + 2δW/α hops.
    // The θ-cone tests are pure per-edge functions of (pts, G'_{i-1}), so
    // they harvest in parallel; candidates commit in bin order.
    std::vector<PhaseEdge> candidates;
    {
      enum : char { kAlready, kCovered, kCandidate };
      std::vector<char> status(bin.size(), kCandidate);
      std::vector<double> elen(bin.size(), 0.0);
      const auto classify = [&](int k) {
        const graph::Edge& e = bin[static_cast<std::size_t>(k)];
        if (spanner.has_edge(e.u, e.v)) {
          status[static_cast<std::size_t>(k)] = kAlready;
          return;
        }
        const double len = pts.distance(e.u, e.v);
        elen[static_cast<std::size_t>(k)] = len;
        if (opts.covered_edge_filter &&
            detail::is_covered_edge(pts, inst.config.alpha, spanner, {e.u, e.v, len, e.w},
                                    params.theta)) {
          status[static_cast<std::size_t>(k)] = kCovered;
        }
      };
      if (pool != nullptr && pool->threads() > 1) {
        pool->for_each(0, static_cast<int>(bin.size()), [&](int, int k) { classify(k); });
      } else {
        for (int k = 0; k < static_cast<int>(bin.size()); ++k) classify(k);
      }
      for (std::size_t k = 0; k < bin.size(); ++k) {
        const graph::Edge& e = bin[k];
        if (status[k] == kAlready) {
          ++st.already_in_spanner;
        } else if (status[k] == kCovered) {
          ++st.covered;
        } else {
          candidates.push_back({e.u, e.v, elen[k], e.w});
        }
      }
    }
    st.candidates = static_cast<int>(candidates.size());
    const std::vector<PhaseEdge> queries = detail::select_query_edges(
        candidates, cover, params.t, &st.max_query_edges_per_cluster, pool);
    st.queries = static_cast<int>(queries.size());
    pr.select = k_ball + 1;
    ledger.charge("select", pr.select, (k_ball + 1) * 2 * m_edges);

    // ---- (iii) cluster graph (§3.2.3): gather 2(2δ+1)W/α hops.
    const cluster::ClusterGraph cg = cluster::build_cluster_graph(spanner, cover, w_prev);
    st.max_inter_degree = cg.max_inter_degree;
    st.max_inter_weight = cg.max_inter_weight;
    const long long k_h = hops_for((2.0 * params.delta + 1.0) * w_eucl, params.alpha);
    pr.cluster_graph = k_h;
    ledger.charge("clustergraph", k_h, k_h * 2 * m_edges);

    // ---- (iv) query answering (§3.2.4): Theorem 9 constant-hop search.
    const std::vector<PhaseEdge> to_add =
        detail::answer_queries(ws, cg.h, queries, params.t, &st.max_query_hops, pool);
    for (const PhaseEdge& e : to_add) spanner.add_edge(e.u, e.v, e.w);
    st.added = static_cast<int>(to_add.size());
    const long long k_q = hops_for(2.0 * params.delta + 1.0, params.alpha);
    pr.query = k_q;
    ledger.charge("query", k_q, k_q * 2 * m_edges);

    // ---- (v) redundant edge removal (§3.2.5): constant-hop exchange +
    // Luby MIS on the conflict graph (J-edges span ≤ 2 t1 r W/α G-hops).
    if (opts.redundancy_removal && to_add.size() >= 2) {
      mis::LubyStats luby2;
      const auto mis_fn2 = [&](const graph::Graph& j) {
        return run_mis(j, &luby2, "redundancy-mis");
      };
      const std::vector<int> removal =
          detail::redundant_edge_removal(ws, cg.h, to_add, params.t1, mis_fn2, pool);
      for (int idx : removal) {
        const PhaseEdge& e = to_add[static_cast<std::size_t>(idx)];
        spanner.remove_edge(e.u, e.v);
      }
      st.removed = static_cast<int>(removal.size());
      const long long k_red =
          hops_for(params.t1 * params.r * std::min(w_eucl, 1.0) * params.r, params.alpha);
      pr.redundancy = k_red + luby2.network_rounds * k_red;
      pr.mis_rounds_measured += luby2.network_rounds * k_red;
      pr.mis_rounds_kmw_model += static_cast<long long>(lstar) * k_red;
      ledger.charge("redundancy", pr.redundancy,
                    k_red * 2 * m_edges + luby2.messages * k_red);
      result.net.mis_invocations += 1;
      result.net.max_luby_iterations = std::max(result.net.max_luby_iterations, luby2.iterations);
    }

    // KMW model total for this phase: deterministic steps unchanged, MIS
    // rounds replaced by the log*(n) model.
    result.net.per_phase.push_back(pr);
    result.base.phases.push_back(st);
  }

  result.net.rounds_measured = ledger.rounds();
  result.net.messages = ledger.messages();
  long long kmw = 0;
  for (const PhaseRounds& pr : result.net.per_phase) {
    kmw += pr.total_measured() - pr.mis_rounds_measured + pr.mis_rounds_kmw_model;
  }
  kmw += 3;  // phase 0
  result.net.rounds_kmw_model = kmw;
  return result;
}

}  // namespace localspan::core
