#include "core/params.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "geom/cones.hpp"

namespace localspan::core {

namespace {

void check_inputs(double eps, double alpha) {
  if (!(eps > 0.0)) throw std::invalid_argument("Params: eps must be > 0");
  if (!(alpha > 0.0) || alpha > 1.0) throw std::invalid_argument("Params: alpha must be in (0,1]");
}

/// Feasibility margin for the joint (δ, t1) constraint: we need
/// (1+6δ)/(1−2δ) + 4δ < t so that a t1 with (1+6δ)/(1−2δ) < t1 <= t−4δ exists.
double joint_constraint(double delta) { return (1.0 + 6.0 * delta) / (1.0 - 2.0 * delta) + 4.0 * delta; }

/// One theorem precondition: the predicate's value plus the name reported
/// when it fails. satisfies_*_conditions() and violated_conditions() both
/// evaluate these tables, so the inequalities exist in exactly one place.
struct Condition {
  bool ok;
  const char* name;
};

/// Stretch side: Theorem 10 and the Lemma 3 covered-edge precondition.
std::vector<Condition> stretch_conditions(const Params& p) {
  return {
      {p.t > 1.0, "t > 1 (Theorem 10)"},
      {p.t1 > 1.0, "t1 > 1 (Theorem 10)"},
      {p.t1 < p.t, "t1 < t (Theorem 10)"},
      {p.delta > 0.0, "delta > 0 (Theorem 10)"},
      {p.delta <= (p.t - p.t1) / 4.0, "delta <= (t - t1)/4 (Theorem 10)"},
      {geom::theta_valid_for_stretch(p.theta, p.t),
       "0 < theta < pi/4 and cos(theta) - sin(theta) >= 1/t (Lemma 3)"},
      {p.alpha > 0.0 && p.alpha <= 1.0, "alpha in (0, 1]"},
      {p.r > 1.0, "r > 1 (geometric bin ratio)"},
  };
}

/// Weight side: Theorem 13.
std::vector<Condition> weight_conditions(const Params& p) {
  const double d_cap = std::min((p.t - 1.0) / (6.0 + 2.0 * p.t), (p.t - p.t1) / 4.0);
  const double td = p.t1 * (1.0 - 2.0 * p.delta) / (1.0 + 6.0 * p.delta);
  return {
      {p.delta < d_cap, "delta < min{(t-1)/(6+2t), (t-t1)/4} (Theorem 13 ceiling)"},
      {td > 1.0, "t_delta = t1(1-2*delta)/(1+6*delta) > 1 (Theorem 13)"},
      {p.r < (td + 1.0) / 2.0, "r < (t_delta + 1)/2 (Theorem 13)"},
  };
}

bool all_ok(const std::vector<Condition>& conditions) {
  for (const Condition& c : conditions) {
    if (!c.ok) return false;
  }
  return true;
}

}  // namespace

Params Params::strict_params(double eps, double alpha) {
  check_inputs(eps, alpha);
  Params p;
  p.eps = eps;
  p.t = 1.0 + eps;
  p.alpha = alpha;
  p.strict = true;

  // Largest δ* with joint_constraint(δ*) = t, found by bisection on (0, 0.5).
  double lo = 0.0;
  double hi = 0.49;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    (joint_constraint(mid) < p.t ? lo : hi) = mid;
  }
  p.delta = 0.7 * lo;

  const double t1_lo = (1.0 + 6.0 * p.delta) / (1.0 - 2.0 * p.delta);
  const double t1_hi = p.t - 4.0 * p.delta;
  p.t1 = 0.5 * (t1_lo + t1_hi);

  p.t_delta = p.t1 * (1.0 - 2.0 * p.delta) / (1.0 + 6.0 * p.delta);
  p.r = 1.0 + 0.8 * ((p.t_delta + 1.0) / 2.0 - 1.0);
  p.theta = geom::max_theta_for_stretch(p.t);
  p.validate();
  return p;
}

Params Params::practical_params(double eps, double alpha) {
  check_inputs(eps, alpha);
  Params p;
  p.eps = eps;
  p.t = 1.0 + eps;
  p.alpha = alpha;
  p.strict = false;
  p.t1 = 0.5 * (1.0 + p.t);
  // Keep the Theorem 10 condition δ <= (t−t1)/4 with margin; cap for locality.
  p.delta = std::min(0.08, 0.9 * (p.t - p.t1) / 4.0);
  p.t_delta = p.t1 * (1.0 - 2.0 * p.delta) / (1.0 + 6.0 * p.delta);
  p.r = 1.8;
  p.theta = geom::max_theta_for_stretch(p.t);
  p.validate();
  return p;
}

bool Params::satisfies_stretch_conditions() const { return all_ok(stretch_conditions(*this)); }

bool Params::satisfies_weight_conditions() const {
  return satisfies_stretch_conditions() && all_ok(weight_conditions(*this));
}

std::vector<std::string> Params::violated_conditions() const {
  std::vector<Condition> conditions = stretch_conditions(*this);
  if (strict) {
    const std::vector<Condition> weight = weight_conditions(*this);
    conditions.insert(conditions.end(), weight.begin(), weight.end());
  }
  std::vector<std::string> out;
  for (const Condition& c : conditions) {
    if (!c.ok) out.push_back(c.name);
  }
  return out;
}

void Params::validate() const {
  const std::vector<std::string> violated = violated_conditions();
  if (violated.empty()) return;
  std::string conditions;
  for (const std::string& v : violated) {
    if (!conditions.empty()) conditions += "; ";
    conditions += v;
  }
  throw std::invalid_argument("Params: violated condition(s): " + conditions + " — " + describe());
}

std::string Params::describe() const {
  std::ostringstream os;
  os << "Params{eps=" << eps << ", t=" << t << ", t1=" << t1 << ", delta=" << delta
     << ", t_delta=" << t_delta << ", r=" << r << ", theta=" << theta << ", alpha=" << alpha
     << ", " << (strict ? "strict" : "practical") << "}";
  return os.str();
}

int log_star(double n) {
  int k = 0;
  while (n > 1.0) {
    n = std::log2(n);
    ++k;
    if (k > 64) break;  // defensively bounded; unreachable for finite doubles
  }
  return k;
}

}  // namespace localspan::core
