#pragma once
/// \file greedy.hpp
/// SEQ-GREEDY (paper §1.4): the classical greedy spanner.
///
///   sort edges by non-decreasing weight; for each edge {u,v}, add it to the
///   output iff the partial output has no uv-path of length <= t·w(u,v).
///
/// On complete Euclidean graphs its output is a t-spanner of O(1) degree and
/// O(w(MST)) weight [4]; §2 of the paper extends this to α-UBGs. We use it
/// three ways: to span the phase-0 cliques (§2.1/§3.1), as the strongest
/// quality baseline (it is what the relaxed algorithm approximates), and as
/// the "naive, slow" comparator for the E12 runtime experiment.

#include <functional>

#include "graph/graph.hpp"

namespace localspan::core {

/// Greedy t-spanner of g. Edges are processed in non-decreasing weight order
/// with (u, v) as deterministic tie-break; each path query is a bounded
/// Dijkstra with early exit at t·w(u,v).
/// \throws std::invalid_argument unless t >= 1.
[[nodiscard]] graph::Graph seq_greedy(const graph::Graph& g, double t);

/// Greedy t-spanner of the clique on `members` (global vertex ids) with edge
/// weights from `weight`. Returns the chosen edges as a global-id edge list.
/// This is exactly the PROCESS-SHORT-EDGES step applied to one connected
/// component of G_0 (Lemma 1 guarantees the component is a clique of G).
[[nodiscard]] std::vector<graph::Edge> seq_greedy_clique(
    const std::vector<int>& members, const std::function<double(int, int)>& weight, double t);

}  // namespace localspan::core
