#include "geom/cones.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace localspan::geom {

double max_theta_for_stretch(double t, double margin) {
  if (t <= 1.0) throw std::invalid_argument("max_theta_for_stretch: requires t > 1");
  if (margin <= 0.0 || margin > 1.0) {
    throw std::invalid_argument("max_theta_for_stretch: margin must be in (0,1]");
  }
  const double quarter_pi = std::numbers::pi / 4.0;
  // cos θ − sin θ = √2·cos(θ + π/4) = 1/t  =>  θ = acos(1/(t√2)) − π/4.
  const double theta_star = std::acos(1.0 / (t * std::numbers::sqrt2)) - quarter_pi;
  double theta = margin * theta_star;
  // Clamp inside the open interval (0, π/4) demanded by Lemma 3.
  if (theta >= quarter_pi) theta = 0.999 * quarter_pi;
  return theta;
}

bool theta_valid_for_stretch(double theta, double t) noexcept {
  if (!(theta > 0.0) || !(theta < std::numbers::pi / 4.0)) return false;
  const double denom = std::cos(theta) - std::sin(theta);
  return denom > 0.0 && t >= 1.0 / denom;
}

YaoCones2D::YaoCones2D(int k) : k_(k) {
  if (k < 3) throw std::invalid_argument("YaoCones2D: need at least 3 sectors");
}

int YaoCones2D::sector_of(const Point& apex, const Point& q) const {
  const double dx = q[0] - apex[0];
  const double dy = q[1] - apex[1];
  if (dx == 0.0 && dy == 0.0) {
    throw std::invalid_argument("YaoCones2D::sector_of: q coincides with apex");
  }
  double ang = std::atan2(dy, dx);  // (-π, π]
  if (ang < 0.0) ang += 2.0 * std::numbers::pi;
  int s = static_cast<int>(ang / (2.0 * std::numbers::pi) * k_);
  if (s == k_) s = 0;  // guard against ang == 2π after rounding
  return s;
}

}  // namespace localspan::geom
