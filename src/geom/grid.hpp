#pragma once
/// \file grid.hpp
/// Spatial hash grid over d-dimensional points.
///
/// Building the α-UBG edge set naively costs Θ(n²) distance checks; with
/// points bucketed into axis-aligned cells of side `cell`, all neighbors at
/// distance <= cell of a point lie in the 3^d adjacent cells, giving
/// near-linear construction for the uniform densities used throughout the
/// evaluation. This mirrors the "cells intersecting the unit ball" device in
/// the degree proof (Theorem 11, Fig 4).

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "geom/point.hpp"

namespace localspan::geom {

/// Immutable spatial index over a point set.
class Grid {
 public:
  /// \param points  the indexed points (all of equal dimension).
  /// \param cell    cell side; queries are supported up to this radius.
  /// \throws std::invalid_argument on empty input, mixed dimensions or
  ///         non-positive cell size.
  Grid(const std::vector<Point>& points, double cell);

  /// Invoke `fn(j)` for every point j != i with distance(points[i], points[j])
  /// <= radius. Requires radius <= cell().
  void for_neighbors_within(int i, double radius, const std::function<void(int)>& fn) const;

  /// All unordered pairs {i, j}, i < j, at distance <= radius (<= cell()).
  [[nodiscard]] std::vector<std::pair<int, int>> pairs_within(double radius) const;

  [[nodiscard]] double cell() const noexcept { return cell_; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(points_->size()); }

 private:
  using CellKey = std::uint64_t;

  [[nodiscard]] CellKey key_of(const Point& p) const;
  void neighbor_cells(const Point& p, const std::function<void(CellKey)>& fn) const;

  const std::vector<Point>* points_;
  double cell_;
  int dim_;
  std::unordered_map<CellKey, std::vector<int>> buckets_;
};

}  // namespace localspan::geom
