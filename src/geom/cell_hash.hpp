#pragma once
/// \file cell_hash.hpp
/// Shared cell-key hashing for the spatial indices (geom/grid.hpp,
/// geom/dynamic_grid.hpp): a d-dimensional integer cell coordinate stream is
/// mixed into one 64-bit key. Coordinates may be negative (dynamic slots park
/// departed nodes on the negative side of axis 0); exact collisions across
/// distant cells are tolerable (buckets just merge, and the distance check
/// filters), but the constants below make them vanishingly rare.

#include <cmath>
#include <cstdint>

#include "geom/point.hpp"

namespace localspan::geom::detail {

inline constexpr std::uint64_t kCellHashBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kCellHashMix = 0x9E3779B97F4A7C15ULL;

[[nodiscard]] inline std::uint64_t cell_hash_combine(std::uint64_t h, std::int64_t v) {
  h ^= static_cast<std::uint64_t>(v) + kCellHashMix + (h << 6) + (h >> 2);
  return h;
}

/// Key of the cell containing p (side `cell`, first `dim` coordinates).
[[nodiscard]] inline std::uint64_t cell_key(const Point& p, int dim, double cell) {
  std::uint64_t h = kCellHashBasis;
  for (int k = 0; k < dim; ++k) {
    h = cell_hash_combine(h, static_cast<std::int64_t>(std::floor(p[k] / cell)));
  }
  return h;
}

/// Invoke `fn(key)` for each of the 3^dim cells adjacent to (and including)
/// p's cell — every point within distance `cell` of p lies in one of them.
template <typename Fn>
void for_each_adjacent_cell(const Point& p, int dim, double cell, Fn&& fn) {
  std::array<std::int64_t, kMaxDim> base{};
  for (int k = 0; k < dim; ++k) {
    base[static_cast<std::size_t>(k)] = static_cast<std::int64_t>(std::floor(p[k] / cell));
  }
  std::array<int, kMaxDim> off{};
  off.fill(-1);
  while (true) {
    std::uint64_t h = kCellHashBasis;
    for (int k = 0; k < dim; ++k) {
      h = cell_hash_combine(h, base[static_cast<std::size_t>(k)] + off[static_cast<std::size_t>(k)]);
    }
    fn(h);
    int k = 0;
    for (; k < dim; ++k) {
      auto& o = off[static_cast<std::size_t>(k)];
      if (o < 1) {
        ++o;
        break;
      }
      o = -1;
    }
    if (k == dim) break;
  }
}

}  // namespace localspan::geom::detail
