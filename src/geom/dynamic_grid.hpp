#pragma once
/// \file dynamic_grid.hpp
/// Mutable spatial hash over a changing point set.
///
/// geom/grid.hpp is an immutable index built once per query batch; the
/// dynamic-topology engine needs the opposite trade-off: points join, leave
/// and move one at a time, and each event asks "who is within the connect
/// radius of this position?". DynamicGrid maintains the cell buckets
/// incrementally — insert/remove/move are O(1) expected — so a churn event's
/// neighbor discovery costs the 3^d adjacent cells instead of the Ω(n)
/// all-slot scan it replaces (ROADMAP open item; prerequisite for 10^5+-node
/// churn).
///
/// Ids are the caller's slot ids (non-negative, sparse-friendly: storage is
/// indexed by id, so keep ids dense-ish).

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "geom/cell_hash.hpp"
#include "geom/point.hpp"

namespace localspan::geom {

class DynamicGrid {
 public:
  /// \param dim   point dimension (2..kMaxDim).
  /// \param cell  cell side; queries are supported up to this radius.
  /// \throws std::invalid_argument on bad dimension or non-positive cell.
  DynamicGrid(int dim, double cell);

  /// Index `id` at position p. \throws std::invalid_argument if `id` is
  /// negative, already present, or p's dimension mismatches.
  void insert(int id, const Point& p);

  /// Drop `id`. \throws std::invalid_argument if absent.
  void remove(int id);

  /// Re-index `id` at its new position (equivalent to remove + insert, but
  /// skips the bucket churn when the cell is unchanged).
  void move(int id, const Point& p);

  [[nodiscard]] bool contains(int id) const;
  [[nodiscard]] int size() const noexcept { return count_; }
  [[nodiscard]] double cell() const noexcept { return cell_; }
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// Invoke `fn(id, dist)` for every indexed point within `radius` of p
  /// (including an indexed point at p itself — callers filter their own id).
  /// Requires radius <= cell(). \throws std::invalid_argument otherwise.
  /// Templated on the callback: this is the per-event hot path, so the
  /// capture stays on the stack (no std::function type erasure).
  template <typename Fn>
  void for_neighbors_within(const Point& p, double radius, Fn&& fn) const {
    if (radius > cell_ * (1.0 + 1e-12)) {
      throw std::invalid_argument("DynamicGrid::for_neighbors_within: radius exceeds cell size");
    }
    check_point(p);
    const double r2 = radius * radius;
    detail::for_each_adjacent_cell(p, dim_, cell_, [&](std::uint64_t key) {
      auto it = buckets_.find(key);
      if (it == buckets_.end()) return;
      for (int j : it->second) {
        const double d2 = sq_distance(p, pos_[static_cast<std::size_t>(j)]);
        if (d2 <= r2) fn(j, std::sqrt(d2));
      }
    });
  }

 private:
  void check_point(const Point& p) const;

  int dim_;
  double cell_;
  int count_ = 0;
  std::unordered_map<std::uint64_t, std::vector<int>> buckets_;
  std::vector<char> present_;          // by id
  std::vector<Point> pos_;             // by id (valid while present)
  std::vector<std::uint64_t> key_;     // by id: bucket key (valid while present)
};

}  // namespace localspan::geom
