#pragma once
/// \file cones.hpp
/// θ-cone utilities.
///
/// Two distinct uses in the paper:
///  1. The covered-edge filter (§2.2.2) needs, for a target stretch t, an
///     angle θ with 0 < θ < π/4 and t >= 1/(cos θ − sin θ) (Lemma 3,
///     Czumaj–Zhao). `max_theta_for_stretch` computes the largest such θ.
///  2. The degree proof (Theorem 11, Fig 4) partitions the unit ball into
///     cones; the classical Yao graph baseline (experiment E6) uses the
///     2-dimensional instance of that partition. `YaoCones2D` assigns plane
///     vectors to k equal angular sectors.

#include "geom/point.hpp"

namespace localspan::geom {

/// Largest θ in (0, π/4) satisfying the Czumaj–Zhao precondition
/// t >= 1/(cos θ − sin θ), shrunk by `margin` in (0,1] for strictness.
/// Solving cos θ − sin θ = 1/t gives θ* = acos(1/(t·√2)) − π/4.
///
/// \throws std::invalid_argument unless t > 1.
[[nodiscard]] double max_theta_for_stretch(double t, double margin = 0.9);

/// True iff cos θ − sin θ >= 1/t and 0 < θ < π/4 (Lemma 3 precondition).
[[nodiscard]] bool theta_valid_for_stretch(double theta, double t) noexcept;

/// Partition of the plane around an apex into k equal sectors
/// [2πi/k, 2π(i+1)/k), used by the Yao-graph baseline.
class YaoCones2D {
 public:
  /// \throws std::invalid_argument unless k >= 3.
  explicit YaoCones2D(int k);

  [[nodiscard]] int sectors() const noexcept { return k_; }

  /// Sector index of the direction apex->q; requires q != apex (2-D points).
  [[nodiscard]] int sector_of(const Point& apex, const Point& q) const;

 private:
  int k_;
};

}  // namespace localspan::geom
