#include "geom/grid.hpp"

#include <cmath>
#include <stdexcept>

namespace localspan::geom {

namespace {

// Mix a (dimension, cell-coordinate) stream into a single 64-bit key.
// Coordinates are offset to stay positive for typical workspaces; exact
// collisions across distant cells are tolerable (buckets just merge, and the
// distance check filters), but the constants below make them vanishingly rare.
constexpr std::uint64_t kMix = 0x9E3779B97F4A7C15ULL;

std::uint64_t hash_combine(std::uint64_t h, std::int64_t v) {
  h ^= static_cast<std::uint64_t>(v) + kMix + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

Grid::Grid(const std::vector<Point>& points, double cell)
    : points_(&points), cell_(cell), dim_(points.empty() ? 0 : points.front().dim()) {
  if (points.empty()) throw std::invalid_argument("Grid: empty point set");
  if (cell <= 0.0) throw std::invalid_argument("Grid: cell size must be positive");
  for (const auto& p : points) {
    if (p.dim() != dim_) throw std::invalid_argument("Grid: mixed point dimensions");
  }
  buckets_.reserve(points.size());
  for (int i = 0; i < static_cast<int>(points.size()); ++i) {
    buckets_[key_of(points[static_cast<std::size_t>(i)])].push_back(i);
  }
}

Grid::CellKey Grid::key_of(const Point& p) const {
  std::uint64_t h = 1469598103934665603ULL;
  for (int k = 0; k < dim_; ++k) {
    h = hash_combine(h, static_cast<std::int64_t>(std::floor(p[k] / cell_)));
  }
  return h;
}

void Grid::neighbor_cells(const Point& p, const std::function<void(CellKey)>& fn) const {
  // Enumerate the 3^d cells around p's cell.
  std::array<std::int64_t, kMaxDim> base{};
  for (int k = 0; k < dim_; ++k) base[static_cast<std::size_t>(k)] = static_cast<std::int64_t>(std::floor(p[k] / cell_));
  std::array<int, kMaxDim> off{};
  off.fill(-1);
  while (true) {
    std::uint64_t h = 1469598103934665603ULL;
    for (int k = 0; k < dim_; ++k) {
      h = hash_combine(h, base[static_cast<std::size_t>(k)] + off[static_cast<std::size_t>(k)]);
    }
    fn(h);
    int k = 0;
    for (; k < dim_; ++k) {
      auto& o = off[static_cast<std::size_t>(k)];
      if (o < 1) {
        ++o;
        break;
      }
      o = -1;
    }
    if (k == dim_) break;
  }
}

void Grid::for_neighbors_within(int i, double radius, const std::function<void(int)>& fn) const {
  if (radius > cell_ * (1.0 + 1e-12)) {
    throw std::invalid_argument("Grid::for_neighbors_within: radius exceeds cell size");
  }
  const Point& p = (*points_)[static_cast<std::size_t>(i)];
  const double r2 = radius * radius;
  neighbor_cells(p, [&](CellKey key) {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) return;
    for (int j : it->second) {
      if (j == i) continue;
      if (sq_distance(p, (*points_)[static_cast<std::size_t>(j)]) <= r2) fn(j);
    }
  });
}

std::vector<std::pair<int, int>> Grid::pairs_within(double radius) const {
  std::vector<std::pair<int, int>> out;
  for (int i = 0; i < size(); ++i) {
    for_neighbors_within(i, radius, [&](int j) {
      if (i < j) out.emplace_back(i, j);
    });
  }
  return out;
}

}  // namespace localspan::geom
