#include "geom/grid.hpp"

#include <cmath>
#include <stdexcept>

#include "geom/cell_hash.hpp"

namespace localspan::geom {

Grid::Grid(const std::vector<Point>& points, double cell)
    : points_(&points), cell_(cell), dim_(points.empty() ? 0 : points.front().dim()) {
  if (points.empty()) throw std::invalid_argument("Grid: empty point set");
  if (cell <= 0.0) throw std::invalid_argument("Grid: cell size must be positive");
  for (const auto& p : points) {
    if (p.dim() != dim_) throw std::invalid_argument("Grid: mixed point dimensions");
  }
  buckets_.reserve(points.size());
  for (int i = 0; i < static_cast<int>(points.size()); ++i) {
    buckets_[key_of(points[static_cast<std::size_t>(i)])].push_back(i);
  }
}

Grid::CellKey Grid::key_of(const Point& p) const { return detail::cell_key(p, dim_, cell_); }

void Grid::neighbor_cells(const Point& p, const std::function<void(CellKey)>& fn) const {
  detail::for_each_adjacent_cell(p, dim_, cell_, fn);
}

void Grid::for_neighbors_within(int i, double radius, const std::function<void(int)>& fn) const {
  if (radius > cell_ * (1.0 + 1e-12)) {
    throw std::invalid_argument("Grid::for_neighbors_within: radius exceeds cell size");
  }
  const Point& p = (*points_)[static_cast<std::size_t>(i)];
  const double r2 = radius * radius;
  neighbor_cells(p, [&](CellKey key) {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) return;
    for (int j : it->second) {
      if (j == i) continue;
      if (sq_distance(p, (*points_)[static_cast<std::size_t>(j)]) <= r2) fn(j);
    }
  });
}

std::vector<std::pair<int, int>> Grid::pairs_within(double radius) const {
  std::vector<std::pair<int, int>> out;
  for (int i = 0; i < size(); ++i) {
    for_neighbors_within(i, radius, [&](int j) {
      if (i < j) out.emplace_back(i, j);
    });
  }
  return out;
}

}  // namespace localspan::geom
