#pragma once
/// \file point.hpp
/// d-dimensional Euclidean points for the alpha-UBG network model (paper §1.1).
///
/// The paper works in R^d for any fixed d >= 2. We store coordinates in a
/// fixed-capacity array with a runtime dimension, which keeps the whole
/// library non-templated on d while supporting the d in {2,3,4,...} sweeps
/// of the evaluation (experiment E8).

#include <array>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <stdexcept>

namespace localspan::geom {

/// Maximum supported spatial dimension. The paper needs "any fixed d >= 2";
/// 8 comfortably covers every experiment while keeping points on the stack.
inline constexpr int kMaxDim = 8;

/// A point in d-dimensional Euclidean space (2 <= d <= kMaxDim).
class Point {
 public:
  /// Origin in `dim` dimensions.
  explicit Point(int dim);

  /// From explicit coordinates; dimension is the list size.
  Point(std::initializer_list<double> coords);

  /// Dimension d of the ambient space.
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// Coordinate access (bounds-checked in debug builds only).
  [[nodiscard]] double operator[](int i) const noexcept { return c_[static_cast<std::size_t>(i)]; }
  double& operator[](int i) noexcept { return c_[static_cast<std::size_t>(i)]; }

  bool operator==(const Point& o) const noexcept;
  bool operator!=(const Point& o) const noexcept { return !(*this == o); }

 private:
  std::array<double, kMaxDim> c_{};
  int dim_;
};

/// Euclidean distance |uv| between two points of equal dimension.
[[nodiscard]] double distance(const Point& u, const Point& v) noexcept;

/// Squared Euclidean distance (cheaper; used by the spatial grid).
[[nodiscard]] double sq_distance(const Point& u, const Point& v) noexcept;

/// The angle ∠vuz at apex u formed by rays u->v and u->z, in radians in
/// [0, pi]. Used by the covered-edge test (paper §2.2.2, Lemma 3) where an
/// edge {u,v} is covered when some z has ∠vuz <= theta.
///
/// \throws std::invalid_argument if either ray is degenerate (v == u or z == u).
[[nodiscard]] double angle_at(const Point& u, const Point& v, const Point& z);

std::ostream& operator<<(std::ostream& os, const Point& p);

}  // namespace localspan::geom
