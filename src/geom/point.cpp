#include "geom/point.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace localspan::geom {

Point::Point(int dim) : dim_(dim) {
  if (dim < 2 || dim > kMaxDim) {
    throw std::invalid_argument("Point: dimension must be in [2, kMaxDim]");
  }
}

Point::Point(std::initializer_list<double> coords) : dim_(static_cast<int>(coords.size())) {
  if (dim_ < 2 || dim_ > kMaxDim) {
    throw std::invalid_argument("Point: dimension must be in [2, kMaxDim]");
  }
  std::copy(coords.begin(), coords.end(), c_.begin());
}

bool Point::operator==(const Point& o) const noexcept {
  if (dim_ != o.dim_) return false;
  for (int i = 0; i < dim_; ++i) {
    if (c_[static_cast<std::size_t>(i)] != o.c_[static_cast<std::size_t>(i)]) return false;
  }
  return true;
}

double sq_distance(const Point& u, const Point& v) noexcept {
  double s = 0.0;
  for (int i = 0; i < u.dim(); ++i) {
    const double d = u[i] - v[i];
    s += d * d;
  }
  return s;
}

double distance(const Point& u, const Point& v) noexcept { return std::sqrt(sq_distance(u, v)); }

double angle_at(const Point& u, const Point& v, const Point& z) {
  double dot = 0.0;
  double nv = 0.0;
  double nz = 0.0;
  for (int i = 0; i < u.dim(); ++i) {
    const double a = v[i] - u[i];
    const double b = z[i] - u[i];
    dot += a * b;
    nv += a * a;
    nz += b * b;
  }
  if (nv == 0.0 || nz == 0.0) {
    throw std::invalid_argument("angle_at: degenerate ray (coincident points)");
  }
  const double cosang = std::clamp(dot / std::sqrt(nv * nz), -1.0, 1.0);
  return std::acos(cosang);
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  os << '(';
  for (int i = 0; i < p.dim(); ++i) {
    if (i > 0) os << ", ";
    os << p[i];
  }
  return os << ')';
}

}  // namespace localspan::geom
