#include "geom/dynamic_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geom/cell_hash.hpp"

namespace localspan::geom {

DynamicGrid::DynamicGrid(int dim, double cell) : dim_(dim), cell_(cell) {
  if (dim < 2 || dim > kMaxDim) throw std::invalid_argument("DynamicGrid: bad dimension");
  if (!(cell > 0.0)) throw std::invalid_argument("DynamicGrid: cell size must be positive");
}

void DynamicGrid::check_point(const Point& p) const {
  if (p.dim() != dim_) throw std::invalid_argument("DynamicGrid: point dimension mismatch");
}

bool DynamicGrid::contains(int id) const {
  return id >= 0 && id < static_cast<int>(present_.size()) &&
         present_[static_cast<std::size_t>(id)] != 0;
}

void DynamicGrid::insert(int id, const Point& p) {
  if (id < 0) throw std::invalid_argument("DynamicGrid: negative id");
  check_point(p);
  if (contains(id)) throw std::invalid_argument("DynamicGrid: id already present");
  if (id >= static_cast<int>(present_.size())) {
    present_.resize(static_cast<std::size_t>(id) + 1, 0);
    pos_.resize(static_cast<std::size_t>(id) + 1, Point(dim_));
    key_.resize(static_cast<std::size_t>(id) + 1, 0);
  }
  const std::uint64_t key = detail::cell_key(p, dim_, cell_);
  buckets_[key].push_back(id);
  const auto slot = static_cast<std::size_t>(id);
  present_[slot] = 1;
  pos_[slot] = p;
  key_[slot] = key;
  ++count_;
}

void DynamicGrid::remove(int id) {
  if (!contains(id)) throw std::invalid_argument("DynamicGrid: id not present");
  const auto slot = static_cast<std::size_t>(id);
  auto it = buckets_.find(key_[slot]);
  std::vector<int>& bucket = it->second;
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  if (bucket.empty()) buckets_.erase(it);
  present_[slot] = 0;
  --count_;
}

void DynamicGrid::move(int id, const Point& p) {
  if (!contains(id)) throw std::invalid_argument("DynamicGrid: id not present");
  check_point(p);
  const auto slot = static_cast<std::size_t>(id);
  const std::uint64_t key = detail::cell_key(p, dim_, cell_);
  if (key == key_[slot]) {
    pos_[slot] = p;
    return;
  }
  remove(id);
  insert(id, p);
}

}  // namespace localspan::geom
