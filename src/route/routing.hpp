#pragma once
/// \file routing.hpp
/// Geometric routing on topology-control outputs.
///
/// §1.3 motivates topology control partly by routing: memoryless geometric
/// routing (GPSR [9]) forwards greedily toward the destination and fails at
/// local minima. Spanners change the trade-off: they keep short detours
/// available so greedy progress rarely strands, and when it succeeds the
/// route length is competitive. This module implements greedy and compass
/// forwarding plus a Monte-Carlo evaluation harness (experiment E13).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/sp_workspace.hpp"
#include "ubg/generator.hpp"

namespace localspan::runtime {
class WorkerPool;
}  // namespace localspan::runtime

namespace localspan::route {

/// Forwarding rules.
enum class Forwarding {
  kGreedy,   ///< neighbor geographically closest to the destination.
  kCompass,  ///< neighbor minimizing the angle to the destination ray.
};

/// One routed packet.
struct RouteResult {
  bool delivered = false;
  int hops = 0;
  double length = 0.0;       ///< total Euclidean length of the traversed path.
  std::vector<int> path;     ///< visited vertices, starting at the source.
};

/// Route one packet from s to d over `topo` using the given rule. The packet
/// fails (delivered=false) at a local minimum — a node with no neighbor
/// making progress — or after `max_hops`.
[[nodiscard]] RouteResult route_packet(const ubg::UbgInstance& inst, const graph::Graph& topo,
                                       int s, int d, Forwarding rule, int max_hops = 10000);

/// Same walk on a frozen CSR snapshot — the form the serving read side and
/// the warmed evaluation harness use (identical output; the snapshot just
/// removes the per-vertex pointer chase).
[[nodiscard]] RouteResult route_packet(const ubg::UbgInstance& inst, const graph::CsrView& topo,
                                       int s, int d, Forwarding rule, int max_hops = 10000);

/// Aggregate routing quality over random connected source-destination pairs.
struct RoutingStats {
  int trials = 0;
  int delivered = 0;
  double delivery_rate = 0.0;
  double mean_hops = 0.0;           ///< over delivered packets.
  double mean_route_stretch = 0.0;  ///< route length / shortest-path length in topo.
  double worst_route_stretch = 0.0;
};

/// Warmed evaluation: the caller owns the frozen snapshot and the
/// epoch-stamped workspace, so repeated evaluations (several rules, several
/// topologies, the CLI's spanner-vs-UBG comparison) share buffers and the
/// steady state allocates only per-trial route paths. With a non-null
/// `pool`, candidate pairs are drawn serially from the seed, evaluated in
/// parallel on per-worker workspaces and accepted in draw order — so the
/// stats are bit-identical to the serial sweep at every thread count.
[[nodiscard]] RoutingStats evaluate_routing(const ubg::UbgInstance& inst,
                                            const graph::CsrView& topo, Forwarding rule,
                                            int trials, std::uint64_t seed,
                                            graph::DijkstraWorkspace& ws,
                                            runtime::WorkerPool* pool = nullptr);

/// Convenience form: snapshots `topo` and builds a workspace per call.
[[nodiscard]] RoutingStats evaluate_routing(const ubg::UbgInstance& inst,
                                            const graph::Graph& topo, Forwarding rule,
                                            int trials, std::uint64_t seed);

}  // namespace localspan::route
