#include "route/routing.hpp"

#include <random>
#include <stdexcept>

#include "geom/point.hpp"
#include "graph/dijkstra.hpp"
#include "graph/sp_workspace.hpp"

namespace localspan::route {

RouteResult route_packet(const ubg::UbgInstance& inst, const graph::Graph& topo, int s, int d,
                         Forwarding rule, int max_hops) {
  if (s < 0 || s >= topo.n() || d < 0 || d >= topo.n()) {
    throw std::invalid_argument("route_packet: endpoint out of range");
  }
  RouteResult res;
  res.path.push_back(s);
  int cur = s;
  while (cur != d && res.hops < max_hops) {
    const double here = inst.dist(cur, d);
    int best = -1;
    double best_key = 0.0;
    for (const graph::Neighbor& nb : topo.neighbors(cur)) {
      if (nb.to == d) {
        best = d;
        break;
      }
      double key = 0.0;
      if (rule == Forwarding::kGreedy) {
        key = inst.dist(nb.to, d);
        if (key >= here) continue;  // must make geometric progress
      } else {
        // Compass: smallest angle to the cur->d ray, progress-gated the same
        // way to guarantee termination on arbitrary graphs.
        if (inst.dist(nb.to, d) >= here) continue;
        key = geom::angle_at(inst.points[static_cast<std::size_t>(cur)],
                             inst.points[static_cast<std::size_t>(d)],
                             inst.points[static_cast<std::size_t>(nb.to)]);
      }
      if (best == -1 || key < best_key) {
        best = nb.to;
        best_key = key;
      }
    }
    if (best == -1) return res;  // local minimum: undeliverable by this rule
    res.length += inst.dist(cur, best);
    cur = best;
    res.path.push_back(cur);
    ++res.hops;
  }
  res.delivered = cur == d;
  return res;
}

RoutingStats evaluate_routing(const ubg::UbgInstance& inst, const graph::Graph& topo,
                              Forwarding rule, int trials, std::uint64_t seed) {
  if (trials <= 0) throw std::invalid_argument("evaluate_routing: trials must be positive");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, topo.n() - 1);
  RoutingStats st;
  double hops_sum = 0.0;
  double stretch_sum = 0.0;
  graph::DijkstraWorkspace ws(topo.n());  // reused across trials
  while (st.trials < trials) {
    const int s = pick(rng);
    const int d = pick(rng);
    if (s == d) continue;
    const double sp_sd = ws.distance(topo, s, d);
    if (sp_sd == graph::kInf) continue;  // different components
    ++st.trials;
    const RouteResult r = route_packet(inst, topo, s, d, rule);
    if (!r.delivered) continue;
    ++st.delivered;
    hops_sum += r.hops;
    const double ratio = r.length / sp_sd;
    stretch_sum += ratio;
    st.worst_route_stretch = std::max(st.worst_route_stretch, ratio);
  }
  st.delivery_rate = st.trials > 0 ? static_cast<double>(st.delivered) / st.trials : 0.0;
  if (st.delivered > 0) {
    st.mean_hops = hops_sum / st.delivered;
    st.mean_route_stretch = stretch_sum / st.delivered;
  }
  return st;
}

}  // namespace localspan::route
