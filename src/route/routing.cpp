#include "route/routing.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "geom/point.hpp"
#include "graph/dijkstra.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

namespace localspan::route {

namespace {

struct RouteMetrics {
  obs::MetricId evaluate = obs::span_id("route.evaluate");
  obs::MetricId pairs = obs::counter_id("route.pairs");
  obs::MetricId delivered = obs::counter_id("route.delivered");
  obs::MetricId hops = obs::histogram_id("route.hops");
};

const RouteMetrics& route_metrics() {
  static const RouteMetrics m;
  return m;
}

/// The forwarding walk, shared between the Graph and CsrView entry points
/// (identical code, so identical routes).
template <class G>
RouteResult route_packet_impl(const ubg::UbgInstance& inst, const G& topo, int s, int d,
                              Forwarding rule, int max_hops) {
  if (s < 0 || s >= topo.n() || d < 0 || d >= topo.n()) {
    throw std::invalid_argument("route_packet: endpoint out of range");
  }
  RouteResult res;
  res.path.push_back(s);
  int cur = s;
  while (cur != d && res.hops < max_hops) {
    const double here = inst.dist(cur, d);
    int best = -1;
    double best_key = 0.0;
    for (const graph::Neighbor& nb : topo.neighbors(cur)) {
      if (nb.to == d) {
        best = d;
        break;
      }
      double key = 0.0;
      if (rule == Forwarding::kGreedy) {
        key = inst.dist(nb.to, d);
        if (key >= here) continue;  // must make geometric progress
      } else {
        // Compass: smallest angle to the cur->d ray, progress-gated the same
        // way to guarantee termination on arbitrary graphs.
        if (inst.dist(nb.to, d) >= here) continue;
        key = geom::angle_at(inst.points[static_cast<std::size_t>(cur)],
                             inst.points[static_cast<std::size_t>(d)],
                             inst.points[static_cast<std::size_t>(nb.to)]);
      }
      if (best == -1 || key < best_key) {
        best = nb.to;
        best_key = key;
      }
    }
    if (best == -1) return res;  // local minimum: undeliverable by this rule
    res.length += inst.dist(cur, best);
    cur = best;
    res.path.push_back(cur);
    ++res.hops;
  }
  res.delivered = cur == d;
  return res;
}

}  // namespace

RouteResult route_packet(const ubg::UbgInstance& inst, const graph::Graph& topo, int s, int d,
                         Forwarding rule, int max_hops) {
  return route_packet_impl(inst, topo, s, d, rule, max_hops);
}

RouteResult route_packet(const ubg::UbgInstance& inst, const graph::CsrView& topo, int s, int d,
                         Forwarding rule, int max_hops) {
  return route_packet_impl(inst, topo, s, d, rule, max_hops);
}

RoutingStats evaluate_routing(const ubg::UbgInstance& inst, const graph::CsrView& topo,
                              Forwarding rule, int trials, std::uint64_t seed,
                              graph::DijkstraWorkspace& ws, runtime::WorkerPool* pool) {
  if (trials <= 0) throw std::invalid_argument("evaluate_routing: trials must be positive");
  const obs::Span span(route_metrics().evaluate);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, topo.n() - 1);
  RoutingStats st;
  double hops_sum = 0.0;
  double stretch_sum = 0.0;

  // Candidate pairs are drawn serially from the seed and *accepted* (s != d,
  // connected) in draw order, exactly like the classic one-at-a-time loop;
  // only the per-pair work (one early-exit Dijkstra + the forwarding walk,
  // both pure functions of the frozen snapshot) runs on the pool. Chunks may
  // overshoot the trial budget — surplus results are discarded, which wastes
  // a little speculative work but never changes the accepted prefix.
  struct Trial {
    int s = 0;
    int d = 0;
    double sp = 0.0;
    RouteResult route;
  };
  std::vector<Trial> chunk;
  // Safety valve so a topology with (nearly) no connected pairs terminates
  // instead of spinning forever; st.trials then reports what was found.
  const long long max_draws = 1000LL * trials + 1000;
  long long draws = 0;
  while (st.trials < trials && draws < max_draws) {
    chunk.clear();
    const int want = std::max(32, trials - st.trials);
    while (static_cast<int>(chunk.size()) < want && draws < max_draws) {
      ++draws;
      const int s = pick(rng);
      const int d = pick(rng);
      if (s == d) continue;
      chunk.push_back(Trial{s, d, 0.0, {}});
    }
    if (chunk.empty()) break;
    const int count = static_cast<int>(chunk.size());
    runtime::for_each_with_workspace(
        pool, ws, 0, count, [&](graph::DijkstraWorkspace& wws, int i) {
          Trial& t = chunk[static_cast<std::size_t>(i)];
          t.sp = wws.distance(topo, t.s, t.d);
          t.route = t.sp == graph::kInf ? RouteResult{}
                                        : route_packet_impl(inst, topo, t.s, t.d, rule, 10000);
        });
    for (int i = 0; i < count && st.trials < trials; ++i) {
      const Trial& t = chunk[static_cast<std::size_t>(i)];
      if (t.sp == graph::kInf) continue;  // different components
      ++st.trials;
      if (!t.route.delivered) continue;
      ++st.delivered;
      hops_sum += t.route.hops;
      obs::histogram_record(route_metrics().hops, t.route.hops);
      const double ratio = t.route.length / t.sp;
      stretch_sum += ratio;
      st.worst_route_stretch = std::max(st.worst_route_stretch, ratio);
    }
  }
  obs::counter_add(route_metrics().pairs, st.trials);
  obs::counter_add(route_metrics().delivered, st.delivered);
  st.delivery_rate = st.trials > 0 ? static_cast<double>(st.delivered) / st.trials : 0.0;
  if (st.delivered > 0) {
    st.mean_hops = hops_sum / st.delivered;
    st.mean_route_stretch = stretch_sum / st.delivered;
  }
  return st;
}

RoutingStats evaluate_routing(const ubg::UbgInstance& inst, const graph::Graph& topo,
                              Forwarding rule, int trials, std::uint64_t seed) {
  const graph::CsrView csr(topo);
  graph::DijkstraWorkspace ws(topo.n());
  return evaluate_routing(inst, csr, rule, trials, seed, ws, nullptr);
}

}  // namespace localspan::route
