#pragma once
/// \file union_find.hpp
/// Disjoint-set forest with union by rank and path halving.
/// Substrate for Kruskal's MSF and for connected-component bookkeeping in
/// phase 0 (Lemma 1: components of G_0 induce cliques).

#include <vector>

namespace localspan::graph {

class UnionFind {
 public:
  explicit UnionFind(int n);

  /// Representative of x's set.
  [[nodiscard]] int find(int x);

  /// Merge the sets of a and b. \returns true if they were distinct.
  bool unite(int a, int b);

  [[nodiscard]] bool same(int a, int b) { return find(a) == find(b); }

  /// Number of disjoint sets remaining.
  [[nodiscard]] int components() const noexcept { return components_; }

  /// Size of x's set.
  [[nodiscard]] int size_of(int x);

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
  std::vector<int> size_;
  int components_;
};

}  // namespace localspan::graph
