#pragma once
/// \file components.hpp
/// Connected components. Phase 0 of the relaxed greedy algorithm partitions
/// G_0 = G[E_0] into components (each of which induces a clique of G by
/// Lemma 1) and spans each one independently with SEQ-GREEDY.

#include <vector>

#include "graph/graph.hpp"

namespace localspan::graph {

/// Labeling of each vertex with a component id in [0, count).
struct Components {
  std::vector<int> label;
  int count = 0;

  /// Vertices of each component, grouped (index = component id).
  [[nodiscard]] std::vector<std::vector<int>> groups() const;
};

[[nodiscard]] Components connected_components(const Graph& g);

/// True iff u and v are in the same component of g.
[[nodiscard]] bool connected(const Graph& g, int u, int v);

}  // namespace localspan::graph
