#pragma once
/// \file sp_workspace.hpp
/// Output-sensitive shortest-path machinery: an epoch-stamped Dijkstra
/// workspace plus frozen CSR adjacency snapshots.
///
/// Every shortest-path question in the paper is *radius-bounded* — cluster
/// covers explore to δW_{i-1}, queries to t·|xy|, dynamic repair to the
/// dirty-ball radius R — so the ball a search settles is usually tiny
/// compared to n. The dense `dijkstra*` functions still pay O(n) to
/// allocate and initialize their dist/parent arrays per call, which makes
/// the *memory traffic* global even when the *work* is local. The
/// `DijkstraWorkspace` removes that: dist/parent entries are validated by an
/// epoch stamp, a search touches only the ball it settles, reset is O(1)
/// (bump the epoch), and the heap/touched buffers are reused so a warmed-up
/// workspace performs **zero allocations** per search. A bounded search
/// therefore costs O(|ball| log |ball|), independent of n.
///
/// Searches return a sparse `SpView` (touched-vertex list + O(1) stamped
/// lookup) instead of a dense `ShortestPaths`; the dense functions in
/// dijkstra.hpp survive as the reference implementation the workspace is
/// tested against.
///
/// The priority queue is a d-ary heap with a compile-time arity
/// (`BasicDijkstraWorkspace<Arity>`; the production alias uses 4). A 4-ary
/// heap halves the sift-down depth of a binary heap — fewer dependent
/// cache-missing levels per pop — while the four children of a node share
/// one or two cache lines, so the extra comparisons are nearly free. The
/// pop order among *equal* keys can differ between arities, but every
/// full-drain bounded search settles the exact same ball with the exact
/// same distances regardless of pop order, which the d-ary-vs-binary
/// equivalence suite in tests/test_sp_workspace.cpp pins down.
///
/// `CsrView` complements the workspace for read-heavy passes: a frozen
/// offsets-plus-flat-neighbor-array snapshot of a Graph, so loops that sweep
/// many adjacency lists (metrics, covers, cluster-graph construction) stop
/// chasing one heap pointer per vertex of `vector<vector<Neighbor>>`.
/// `SoaPoints` (soa_points.hpp) does the same for the geometry: positions in
/// a flat structure-of-arrays buffer instead of one 72-byte Point per node.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace localspan::graph {

/// Frozen CSR (compressed sparse row) snapshot of a Graph's adjacency.
/// Neighbor spans are bitwise-identical in content and order to the source
/// graph's at snapshot time; the snapshot does not track later mutations.
class CsrView {
 public:
  CsrView() = default;
  template <class G>
  explicit CsrView(const G& g) {
    assign(g);
  }

  /// Re-snapshot. Reuses the flat buffers (no allocation once capacity has
  /// grown to the workload's high-water mark). Templated over the graph type
  /// so tests can exercise the mutation check with a deterministic stand-in
  /// for a concurrent writer.
  ///
  /// \throws std::logic_error when the graph mutated while the snapshot was
  /// being taken (vertex count or half-edge totals no longer consistent) —
  /// a snapshot of a graph another thread is editing is silently torn
  /// otherwise.
  template <class G>
  void assign(const G& g) {
    const int n = g.n();
    const int m_before = g.m();
    offsets_.clear();
    nbrs_.clear();
    offsets_.reserve(static_cast<std::size_t>(n) + 1);
    offsets_.push_back(0);
    for (int u = 0; u < n; ++u) {
      const std::span<const Neighbor> row = g.neighbors(u);
      nbrs_.insert(nbrs_.end(), row.begin(), row.end());
      offsets_.push_back(static_cast<int>(nbrs_.size()));
    }
    if (g.n() != n || g.m() != m_before ||
        nbrs_.size() != 2 * static_cast<std::size_t>(m_before)) {
      throw std::logic_error("CsrView::assign: graph mutated during snapshot");
    }
  }

  [[nodiscard]] int n() const noexcept { return static_cast<int>(offsets_.size()) - 1; }

  [[nodiscard]] std::span<const Neighbor> neighbors(int u) const {
    const auto i = static_cast<std::size_t>(u);
    return {nbrs_.data() + offsets_[i], nbrs_.data() + offsets_[i + 1]};
  }

 private:
  std::vector<int> offsets_{0};  ///< offsets_[u]..offsets_[u+1] index nbrs_.
  std::vector<Neighbor> nbrs_;
};

/// Identity weight transform — the default, and a distinct *type*, so the
/// relaxation loop compiles to a plain load with no indirect call and no
/// per-edge empty-std::function branch.
struct IdentityWeight {
  double operator()(double w) const noexcept { return w; }
};

namespace detail {

/// The epoch-stamped search state every heap arity shares. Kept outside the
/// `BasicDijkstraWorkspace<Arity>` template so `SpView` can borrow it
/// without itself becoming templated on the arity (views flow through
/// cluster/serve/dynamic code that must not care how the frontier is
/// ordered). The arrays are structure-of-arrays on purpose: a stamped
/// lookup touches only the 4-byte stamp lane, not a padded per-vertex
/// record.
struct SpState {
  std::vector<std::uint32_t> stamp_;  ///< stamp_[v] == epoch_now_ => entry valid.
  std::vector<double> dist_;
  std::vector<int> parent_;
  std::vector<int> touched_;  ///< vertices stamped by the current search.
  std::uint32_t epoch_now_ = 0;
  std::uint64_t token_ = 0;  ///< search counter, invalidates outstanding views.
  int n_ = 0;                ///< vertex count of the current search's graph.

  [[nodiscard]] bool stamped(int v) const {
    return stamp_[static_cast<std::size_t>(v)] == epoch_now_;
  }
};

}  // namespace detail

template <int Arity>
class BasicDijkstraWorkspace;

/// Sparse result of a workspace search. Views borrow the workspace's
/// arrays: a view is valid until the next search on the same workspace
/// (accessors throw std::logic_error afterwards — the error path that
/// catches accidental reuse across searches or graphs).
///
/// For full-drain searches (bounded/multi_bounded/full) every touched
/// vertex is settled, so dist/reached are exact. A target early-exit
/// search (bounded_to, distance) stops as soon as the target settles:
/// reached/dist/touched may then include frontier vertices whose
/// distances are still tentative upper bounds — read only the target and
/// its tree ancestors from such a view.
class SpView {
 public:
  SpView() = default;

  /// Was v settled (within the bound) by this search? (After a target
  /// early-exit search: was v *stamped* — see the class comment.)
  [[nodiscard]] bool reached(int v) const;

  /// sp(sources, v), or kInf if v was not settled within the bound.
  /// (After a target early-exit search, non-ancestors of the target may
  /// report tentative upper bounds — see the class comment.)
  [[nodiscard]] double dist(int v) const;

  /// Parent of v on the shortest-path tree, -1 at sources/unreached.
  [[nodiscard]] int parent(int v) const;

  /// Settled vertices in settle order (sources first). O(|ball|) to scan.
  /// (After a target early-exit search this may include not-yet-settled
  /// frontier vertices — see the class comment.)
  [[nodiscard]] std::span<const int> touched() const;

  /// Hop count of the tree path to v, or -1 if unreached.
  [[nodiscard]] int path_hops(int v) const;

 private:
  template <int Arity>
  friend class BasicDijkstraWorkspace;
  SpView(const detail::SpState* st, std::uint64_t token) : st_(st), token_(token) {}

  void check() const;  ///< throws std::logic_error when the view is stale.

  const detail::SpState* st_ = nullptr;
  std::uint64_t token_ = 0;
};

/// Reusable epoch-stamped state for Dijkstra-shaped searches, with a d-ary
/// heap frontier of compile-time `Arity` (see the file comment for why the
/// production alias is 4-ary).
///
/// One workspace serves any sequence of graphs (it sizes itself to the
/// largest n seen; growth is the only allocation). Typical use: own one
/// per long-lived engine or per algorithm invocation, and thread it through
/// every bounded search on the hot path.
template <int Arity>
class BasicDijkstraWorkspace {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  BasicDijkstraWorkspace() = default;
  /// Pre-size for graphs up to n vertices (optional; searches auto-grow).
  explicit BasicDijkstraWorkspace(int n) { grow(n); }

  /// Single-source search bounded by `radius` (pass kInf for unbounded).
  template <class G>
  SpView bounded(const G& g, int src, double radius) {
    check_radius(radius);
    const int srcs[1] = {src};
    return run(g, srcs, radius, -1, IdentityWeight{});
  }

  /// Single-source search bounded by `radius` that stops as soon as `target`
  /// is settled (the view still answers dist/parent/path_hops for the target
  /// and every vertex settled before it).
  template <class G>
  SpView bounded_to(const G& g, int src, int target, double radius) {
    check_radius(radius);
    if (target < 0 || target >= g.n()) {
      throw std::invalid_argument("dijkstra: target out of range");
    }
    const int srcs[1] = {src};
    return run(g, srcs, radius, target, IdentityWeight{});
  }

  /// Multi-source bounded search; dist(v) = min over sources of sp(s, v).
  template <class G>
  SpView multi_bounded(const G& g, std::span<const int> sources, double radius) {
    check_radius(radius);
    return run(g, sources, radius, -1, IdentityWeight{});
  }

  /// Multi-source bounded search with every stored edge weight mapped
  /// through `weight` before use. `weight` is a template parameter: a
  /// stateless functor inlines into the relaxation loop, and only genuinely
  /// dynamic transforms (e.g. a user-supplied std::function) pay a call.
  template <class G, class WeightFn>
  SpView multi_bounded(const G& g, std::span<const int> sources, double radius,
                       WeightFn&& weight) {
    check_radius(radius);
    return run(g, sources, radius, -1, std::forward<WeightFn>(weight));
  }

  /// sp(u, v), or kInf if it exceeds `bound`. Early-exits once v is settled
  /// or the frontier minimum passes the bound. Semantics match
  /// graph::sp_distance; cost is O(|ball| log |ball|) with no allocation
  /// once warm.
  template <class G>
  double distance(const G& g, int u, int v, double bound = kInf) {
    if (v < 0 || v >= g.n()) throw std::invalid_argument("sp_distance: target out of range");
    if (u == v) return 0.0;
    const int srcs[1] = {u};
    const SpView view = run(g, srcs, bound, v, IdentityWeight{});
    const double d = view.dist(v);
    return d <= bound ? d : kInf;
  }

  /// The number of searches started (SpView staleness token). Test hook.
  [[nodiscard]] std::uint64_t searches() const noexcept { return st_.token_; }

  /// Drain the accumulated heap push/pop tallies since the last take (plain
  /// increments in the hot loop — this header stays observability-agnostic;
  /// callers flush them into obs counters at phase boundaries).
  [[nodiscard]] std::pair<long long, long long> take_heap_ops() noexcept {
    const std::pair<long long, long long> out{heap_pushes_, heap_pops_};
    heap_pushes_ = 0;
    heap_pops_ = 0;
    return out;
  }

  /// Is a search currently running? The workspace is single-owner: two
  /// concurrent searches would silently corrupt each other's stamps, so
  /// run() enforces this with a cheap in-use flag (two relaxed atomic ops
  /// per search) and throws std::logic_error on re-entrant or concurrent
  /// use — e.g. a weight transform that calls back into the same workspace,
  /// or two threads sharing one workspace instead of a per-worker pool.
  [[nodiscard]] bool in_use() const noexcept {
    return in_use_.v.load(std::memory_order_relaxed);
  }

  /// Test hook for the epoch-wraparound path: exhaust the epoch counter so
  /// the next search must rebase every stamp. Production code never needs
  /// this (2^32 searches away); tests cover the rebase with it.
  void debug_exhaust_epochs() noexcept { st_.epoch_now_ = kEpochMax; }

 private:
  struct HeapItem {
    double d;
    int v;
  };

  /// std::atomic is neither copyable nor movable; the flag is per-object
  /// state that must not travel with copies/moves, so this wrapper keeps
  /// the workspace's defaulted special members intact (a copied or moved
  /// workspace starts idle).
  struct InUseFlag {
    std::atomic<bool> v{false};
    InUseFlag() = default;
    InUseFlag(const InUseFlag&) noexcept {}
    InUseFlag& operator=(const InUseFlag&) noexcept { return *this; }
  };

  /// RAII single-owner enforcement around one search.
  struct InUseGuard {
    explicit InUseGuard(InUseFlag& f) : flag(f) {
      if (flag.v.exchange(true, std::memory_order_acquire)) {
        throw std::logic_error(
            "DijkstraWorkspace: concurrent or re-entrant search on a single-owner workspace");
      }
    }
    ~InUseGuard() { flag.v.store(false, std::memory_order_release); }
    InUseGuard(const InUseGuard&) = delete;
    InUseGuard& operator=(const InUseGuard&) = delete;
    InUseFlag& flag;
  };

  static constexpr std::uint32_t kEpochMax = std::numeric_limits<std::uint32_t>::max();

  static void check_radius(double radius) {
    if (radius < 0.0) throw std::invalid_argument("dijkstra: negative radius");
  }

  void grow(int n) {
    if (static_cast<int>(st_.stamp_.size()) < n) {
      st_.stamp_.resize(static_cast<std::size_t>(n), 0);
      st_.dist_.resize(static_cast<std::size_t>(n));
      st_.parent_.resize(static_cast<std::size_t>(n));
    }
  }

  /// O(1) amortized reset: bump the epoch so every stamp goes stale. On the
  /// (rare) counter wrap, rebase all stamps to 0 — O(capacity), once per
  /// 2^32 - 1 searches.
  void begin(int n) {
    ++st_.token_;
    grow(n);
    st_.n_ = n;
    if (st_.epoch_now_ == kEpochMax) {
      std::fill(st_.stamp_.begin(), st_.stamp_.end(), 0);
      st_.epoch_now_ = 0;
    }
    ++st_.epoch_now_;
    st_.touched_.clear();
    heap_.clear();
  }

  void heap_push(double d, int v) {
    ++heap_pushes_;
    heap_.push_back({d, v});
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t up = (i - 1) / static_cast<std::size_t>(Arity);
      if (heap_[up].d <= heap_[i].d) break;
      std::swap(heap_[up], heap_[i]);
      i = up;
    }
  }

  HeapItem heap_pop() {
    ++heap_pops_;
    const HeapItem top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    std::size_t i = 0;
    const std::size_t size = heap_.size();
    while (true) {
      const std::size_t first = static_cast<std::size_t>(Arity) * i + 1;
      if (first >= size) break;
      const std::size_t last = std::min(first + static_cast<std::size_t>(Arity), size);
      // First strict minimum wins, so the lowest-index child breaks ties —
      // the same rule the binary version used (left child on equal keys).
      std::size_t child = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (heap_[c].d < heap_[child].d) child = c;
      }
      if (heap_[i].d <= heap_[child].d) break;
      std::swap(heap_[i], heap_[child]);
      i = child;
    }
    return top;
  }

  template <class G, class WeightFn>
  SpView run(const G& g, std::span<const int> sources, double radius, int target,
             WeightFn&& weight) {
    const InUseGuard guard(in_use_);
    begin(g.n());
    for (int s : sources) {
      if (s < 0 || s >= st_.n_) throw std::invalid_argument("dijkstra: source out of range");
      if (!st_.stamped(s)) {
        const auto i = static_cast<std::size_t>(s);
        st_.stamp_[i] = st_.epoch_now_;
        st_.dist_[i] = 0.0;
        st_.parent_[i] = -1;
        st_.touched_.push_back(s);
        heap_push(0.0, s);
      }
    }
    while (!heap_.empty()) {
      const auto [d, v] = heap_pop();
      if (d > st_.dist_[static_cast<std::size_t>(v)]) continue;  // stale entry
      if (d > radius) break;
      if (v == target) break;
      for (const Neighbor& nb : g.neighbors(v)) {
        const double nd = d + weight(nb.w);
        if (nd > radius) continue;
        const auto to = static_cast<std::size_t>(nb.to);
        if (st_.stamp_[to] != st_.epoch_now_) {
          st_.stamp_[to] = st_.epoch_now_;
          st_.dist_[to] = nd;
          st_.parent_[to] = v;
          st_.touched_.push_back(nb.to);
          heap_push(nd, nb.to);
        } else if (nd < st_.dist_[to]) {
          st_.dist_[to] = nd;
          st_.parent_[to] = v;
          heap_push(nd, nb.to);
        }
      }
    }
    heap_.clear();  // early breaks leave entries behind; keep capacity
    return SpView(&st_, st_.token_);
  }

  detail::SpState st_;
  std::vector<HeapItem> heap_;
  long long heap_pushes_ = 0;  ///< since the last take_heap_ops().
  long long heap_pops_ = 0;
  InUseFlag in_use_;  ///< single-owner enforcement (see in_use()).
};

/// The production workspace: a 4-ary frontier (see the file comment).
using DijkstraWorkspace = BasicDijkstraWorkspace<4>;

inline void SpView::check() const {
  if (st_ == nullptr || token_ != st_->token_) {
    throw std::logic_error("SpView: stale view (the workspace ran a newer search)");
  }
}

inline bool SpView::reached(int v) const {
  check();
  if (v < 0 || v >= st_->n_) throw std::invalid_argument("SpView: vertex out of range");
  return st_->stamped(v);
}

inline double SpView::dist(int v) const { return reached(v) ? st_->dist_[static_cast<std::size_t>(v)] : kInf; }

inline int SpView::parent(int v) const { return reached(v) ? st_->parent_[static_cast<std::size_t>(v)] : -1; }

inline std::span<const int> SpView::touched() const {
  check();
  return st_->touched_;
}

inline int SpView::path_hops(int v) const {
  if (!reached(v)) return -1;
  int hops = 0;
  for (int cur = v; st_->parent_[static_cast<std::size_t>(cur)] != -1;
       cur = st_->parent_[static_cast<std::size_t>(cur)]) {
    ++hops;
  }
  return hops;
}

}  // namespace localspan::graph
