#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace localspan::graph {

Graph::Graph(int n) {
  if (n < 0) throw std::invalid_argument("Graph: negative vertex count");
  adj_.resize(static_cast<std::size_t>(n));
}

int Graph::add_vertex() {
  adj_.emplace_back();
  return n() - 1;
}

void Graph::check_vertex(int u) const {
  if (u < 0 || u >= n()) throw std::invalid_argument("Graph: vertex out of range");
}

bool Graph::add_edge(int u, int v, double w) {
  check_vertex(u);
  check_vertex(v);
  if (u == v) throw std::invalid_argument("Graph: self-loops are not allowed");
  if (!(w > 0.0)) throw std::invalid_argument("Graph: edge weight must be positive");
  if (has_edge(u, v)) return false;
  adj_[static_cast<std::size_t>(u)].push_back({v, w});
  adj_[static_cast<std::size_t>(v)].push_back({u, w});
  ++m_;
  total_weight_ += w;
  return true;
}

bool Graph::remove_edge(int u, int v) {
  check_vertex(u);
  check_vertex(v);
  auto& au = adj_[static_cast<std::size_t>(u)];
  auto it = std::find_if(au.begin(), au.end(), [v](const Neighbor& nb) { return nb.to == v; });
  if (it == au.end()) return false;
  const double w = it->w;
  au.erase(it);
  auto& av = adj_[static_cast<std::size_t>(v)];
  av.erase(std::find_if(av.begin(), av.end(), [u](const Neighbor& nb) { return nb.to == u; }));
  --m_;
  total_weight_ -= w;
  return true;
}

bool Graph::has_edge(int u, int v) const {
  check_vertex(u);
  check_vertex(v);
  const auto& au = adj_[static_cast<std::size_t>(u)];
  return std::any_of(au.begin(), au.end(), [v](const Neighbor& nb) { return nb.to == v; });
}

double Graph::edge_weight(int u, int v) const {
  check_vertex(u);
  check_vertex(v);
  for (const Neighbor& nb : adj_[static_cast<std::size_t>(u)]) {
    if (nb.to == v) return nb.w;
  }
  throw std::invalid_argument("Graph::edge_weight: no such edge");
}

std::span<const Neighbor> Graph::neighbors(int u) const {
  check_vertex(u);
  return adj_[static_cast<std::size_t>(u)];
}

int Graph::degree(int u) const {
  check_vertex(u);
  return static_cast<int>(adj_[static_cast<std::size_t>(u)].size());
}

int Graph::max_degree() const noexcept {
  int d = 0;
  for (const auto& a : adj_) d = std::max(d, static_cast<int>(a.size()));
  return d;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(m_));
  for (int u = 0; u < n(); ++u) {
    for (const Neighbor& nb : adj_[static_cast<std::size_t>(u)]) {
      if (u < nb.to) out.push_back({u, nb.to, nb.w});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Edge& a, const Edge& b) { return a.u != b.u ? a.u < b.u : a.v < b.v; });
  return out;
}

bool Graph::operator==(const Graph& o) const { return n() == o.n() && edges() == o.edges(); }

}  // namespace localspan::graph
