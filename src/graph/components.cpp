#include "graph/components.hpp"

namespace localspan::graph {

std::vector<std::vector<int>> Components::groups() const {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(count));
  for (int v = 0; v < static_cast<int>(label.size()); ++v) {
    out[static_cast<std::size_t>(label[static_cast<std::size_t>(v)])].push_back(v);
  }
  return out;
}

Components connected_components(const Graph& g) {
  Components c;
  c.label.assign(static_cast<std::size_t>(g.n()), -1);
  std::vector<int> stack;
  for (int s = 0; s < g.n(); ++s) {
    if (c.label[static_cast<std::size_t>(s)] != -1) continue;
    const int id = c.count++;
    stack.push_back(s);
    c.label[static_cast<std::size_t>(s)] = id;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (const Neighbor& nb : g.neighbors(v)) {
        if (c.label[static_cast<std::size_t>(nb.to)] == -1) {
          c.label[static_cast<std::size_t>(nb.to)] = id;
          stack.push_back(nb.to);
        }
      }
    }
  }
  return c;
}

bool connected(const Graph& g, int u, int v) {
  const Components c = connected_components(g);
  return c.label[static_cast<std::size_t>(u)] == c.label[static_cast<std::size_t>(v)];
}

}  // namespace localspan::graph
