#pragma once
/// \file metrics.hpp
/// Measurement of the three spanner properties the paper guarantees —
/// stretch (Theorem 10), degree (Theorem 11), weight (Theorem 13) — plus the
/// §1.6 power-cost measure, the (t2,t)-leapfrog property that drives the
/// weight proof, and a doubling-dimension estimator for the derived graphs
/// of Lemmas 15 and 20.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace localspan::runtime {
class WorkerPool;
}  // namespace localspan::runtime

namespace localspan::graph {

/// Max over edges {u,v} of g of sp_sub(u,v)/w(u,v), with per-edge ratios
/// clamped at `cap` (a ratio reported as `cap` means "at least cap", which is
/// all a bounded-stretch validation needs and keeps the measurement cheap).
/// For subgraphs of g this equals the classical spanner stretch factor:
/// sp_sub(u,v) <= t·sp_g(u,v) for all pairs iff it holds for all edges of g.
///
/// `threads` > 1 splits the per-vertex searches over a worker pool (each
/// vertex's worst ratio is independent; max over doubles is exact under any
/// reduction order, so the result is bit-identical to the serial pass);
/// <= 0 uses the process default (LOCALSPAN_THREADS, else 1). A non-null
/// caller-owned `pool` overrides `threads` — repeated-measurement loops
/// reuse one pool instead of spawning threads per call.
[[nodiscard]] double max_edge_stretch(const Graph& g, const Graph& sub, double cap = 64.0,
                                      int threads = 0, runtime::WorkerPool* pool = nullptr);

/// Stretch over `samples` random vertex pairs (ratio of sp_sub to sp_g);
/// pairs disconnected in g are skipped. Cross-validates max_edge_stretch.
/// Samples are grouped by source vertex, so a source drawn k times costs
/// its two unbounded searches once, not k times (the drawn pair set is
/// identical either way). The sample count is 64-bit end-to-end: n=1e5-scale
/// sweeps ask for sample budgets that wrapped 32-bit counters.
/// `threads`/`pool` parallelize the per-source-group searches
/// (bit-identical; same semantics as max_edge_stretch).
[[nodiscard]] double sampled_pair_stretch(const Graph& g, const Graph& sub, std::int64_t samples,
                                          std::uint64_t seed, int threads = 0,
                                          runtime::WorkerPool* pool = nullptr);

/// 0-based index of the q-quantile entry among `count` ascending-sorted
/// samples: min(count-1, ceil(q*count)-1), never below 0. Computed in
/// 64-bit end-to-end — the count*q products of 1e5-scale sweeps (samples ×
/// pairs) overflow 32-bit arithmetic. Returns -1 for count <= 0.
[[nodiscard]] std::int64_t quantile_index(std::int64_t count, double q);

/// Degree distribution summary.
struct DegreeStats {
  int max = 0;
  double mean = 0.0;
  int p99 = 0;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// w(sub) / w(MSF(g)) — the lightness ratio of Theorem 13 (>= 1 for any
/// spanning subgraph; O(1) is the guarantee).
[[nodiscard]] double lightness(const Graph& g, const Graph& sub);

/// Power cost of §1.6: sum over vertices of the heaviest incident edge
/// (transmission power needed to reach the farthest chosen neighbor).
/// Isolated vertices contribute zero.
[[nodiscard]] double power_cost(const Graph& g);

/// Sampled check of the (t2,t)-leapfrog property (paper eq. (6), Fig 4b) on
/// the edge set of `sub` embedded via `pts_dist(u,v)` = Euclidean distance.
/// Draws `trials` random subsets S (2 <= |S| <= 6) of edges and counts
/// violations of
///   t2·|u1v1| < Σ_{i>=2} |u_i v_i| + t·(Σ |v_i u_{i+1}| + |v_s u_1|)
/// where {u1,v1} is the longest edge of S. Returns the violation count.
/// Trial and violation counts are 64-bit end-to-end (32-bit counters wrap
/// at n=1e5-scale sweep budgets).
[[nodiscard]] std::int64_t leapfrog_violations(
    const Graph& sub, const std::function<double(int, int)>& pts_dist, double t2, double t,
    std::int64_t trials, std::uint64_t seed);

/// Greedy estimate of the doubling dimension of a finite metric given by a
/// symmetric distance matrix: log2 of the max, over sampled balls B(x,R), of
/// the number of (R/2)-balls a greedy cover needs. Lemmas 15/20 predict an
/// O(1) result for the derived conflict graphs J.
[[nodiscard]] double doubling_dimension_estimate(const std::vector<std::vector<double>>& dist,
                                                 int ball_samples, std::uint64_t seed);

}  // namespace localspan::graph
