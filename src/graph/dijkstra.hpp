#pragma once
/// \file dijkstra.hpp
/// Shortest-path machinery — the dense reference implementation.
///
/// Every shortest-path question in the paper is *radius-bounded*: cluster
/// covers explore to δW_{i-1} (§2.2.1), cluster-graph construction to
/// (2δ+1)W_{i-1} (Lemma 5), queries to t·|xy| (§2.2.4). We therefore expose
/// bounded Dijkstra variants that stop expanding past the bound — this is
/// both the asymptotic trick of Das–Narasimhan and what keeps the phased
/// algorithm near-linear in practice.
///
/// These functions allocate and initialize O(n) dist/parent arrays per
/// call, which makes the memory traffic global even when the settled ball
/// is tiny. Hot paths use graph::DijkstraWorkspace (sp_workspace.hpp)
/// instead — epoch-stamped scratch with O(1) reset and zero steady-state
/// allocation; the functions here survive as the reference implementation
/// the workspace is tested against (tests/test_sp_workspace.cpp) and as
/// the convenient form for one-shot callers off the hot path.

#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace localspan::graph {

/// Distance value meaning "unreachable (within the bound)".
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Result of a (possibly bounded) single-source run.
struct ShortestPaths {
  std::vector<double> dist;  ///< dist[v] = sp(src, v), kInf if not settled.
  std::vector<int> parent;   ///< parent[v] on a shortest path tree, -1 at roots/unreached.
};

/// Single-source Dijkstra from src over the whole graph.
[[nodiscard]] ShortestPaths dijkstra(const Graph& g, int src);

/// Single-source Dijkstra that settles only vertices with sp(src,v) <= radius.
/// All other vertices report kInf. Cost is proportional to the ball explored.
[[nodiscard]] ShortestPaths dijkstra_bounded(const Graph& g, int src, double radius);

/// sp(u, v), or kInf if it exceeds `bound`. Early-exits as soon as v is
/// settled or the frontier minimum passes the bound.
[[nodiscard]] double sp_distance(const Graph& g, int u, int v, double bound = kInf);

/// Multi-source bounded Dijkstra: dist[v] = min over sources s of sp(s, v),
/// settling only vertices within `radius`. When `weight` is non-null each
/// stored edge weight is mapped through it before use (so the dynamic engine
/// can measure balls in §1.6-transformed weights without copying the graph).
/// Duplicate sources are fine; `parent` marks sources with -1 as usual.
[[nodiscard]] ShortestPaths dijkstra_multi_bounded(
    const Graph& g, std::span<const int> sources, double radius,
    const std::function<double(double)>& weight = {});

/// Vertices within `k` hops of src (unweighted BFS ball), including src.
/// Models the "gather information from <= k hops away" primitive that the
/// distributed algorithm uses throughout §3.
[[nodiscard]] std::vector<int> khop_ball(const Graph& g, int src, int k);

/// Hop count of the shortest *weighted* path realizing dist via `parent`,
/// or -1 if v was not reached. Used to validate Lemma 8 / Theorem 9.
[[nodiscard]] int path_hops(const ShortestPaths& sp, int v);

}  // namespace localspan::graph
