#pragma once
/// \file labels.hpp
/// Flat landmark-label storage for the cluster-cover routing oracle.
///
/// A distance oracle built on the §2 cluster covers stores, for every vertex
/// v and every cover level ℓ, the set of level-ℓ centers within graph
/// distance β·r_ℓ of v together with the exact shortest-path distance to
/// each. A two-vertex distance query is then a sorted-merge intersection of
/// two such label rows — O(|label(u)| + |label(v)|), no graph traversal.
///
/// This header owns only the *container*: a CSR-shaped (offsets + flat
/// entry array) structure, one per cover level, frozen after construction.
/// Rows are sorted by center id (the oracle builder commits per-center
/// results in ascending center order, which produces that invariant for
/// free), so `min_common_distance` is a linear merge.
///
/// Everything here is plain value-semantic data: snapshots of it can be
/// published read-only to concurrent reader threads, and `operator==` gives
/// the bit-identity check the determinism suite runs across thread counts.

#include <span>
#include <vector>

#include "graph/dijkstra.hpp"

namespace localspan::graph {

/// One landmark in a vertex's label: a cover center and the exact
/// shortest-path distance to it (in the spanner the label was built on).
struct LabelEntry {
  int center = -1;
  double dist = 0.0;

  bool operator==(const LabelEntry&) const = default;
};

/// Frozen per-vertex landmark labels for one cover level.
class LandmarkLabels {
 public:
  LandmarkLabels() = default;

  /// Freeze from per-vertex rows. Each rows[v] must already be sorted by
  /// ascending center id (asserted in debug builds by the oracle's tests,
  /// relied on by min_common_distance).
  void assign(const std::vector<std::vector<LabelEntry>>& rows);

  [[nodiscard]] int n() const noexcept { return static_cast<int>(offsets_.size()) - 1; }

  [[nodiscard]] std::span<const LabelEntry> at(int v) const {
    const auto i = static_cast<std::size_t>(v);
    return {entries_.data() + offsets_[i], entries_.data() + offsets_[i + 1]};
  }

  [[nodiscard]] long long total_entries() const noexcept {
    return static_cast<long long>(entries_.size());
  }

  /// Bit-identity across builds (the determinism contract's witness).
  bool operator==(const LandmarkLabels&) const = default;

 private:
  std::vector<int> offsets_{0};
  std::vector<LabelEntry> entries_;
};

/// min over centers c present in both rows of a.dist(c) + b.dist(c); kInf
/// when the rows share no center. Linear merge over the sorted rows.
[[nodiscard]] double min_common_distance(std::span<const LabelEntry> a,
                                         std::span<const LabelEntry> b) noexcept;

}  // namespace localspan::graph
