#include "graph/mst.hpp"

#include <algorithm>

#include "graph/union_find.hpp"

namespace localspan::graph {

Graph minimum_spanning_forest(const Graph& g) {
  std::vector<Edge> es = g.edges();
  std::sort(es.begin(), es.end(), [](const Edge& a, const Edge& b) { return a.w < b.w; });
  UnionFind uf(g.n());
  Graph forest(g.n());
  for (const Edge& e : es) {
    if (uf.unite(e.u, e.v)) forest.add_edge(e.u, e.v, e.w);
  }
  return forest;
}

double msf_weight(const Graph& g) { return minimum_spanning_forest(g).total_weight(); }

}  // namespace localspan::graph
