#pragma once
/// \file soa_points.hpp
/// Structure-of-arrays snapshot of instance geometry for the hot geometric
/// loops (covered-edge filter, candidate classification, dynamic repair).
///
/// A `geom::Point` is a fixed-capacity `array<double, 8>` plus a dimension —
/// 72 bytes per node even in 2-D, so a filter pass that streams `points[u]`
/// touches 9x the useful data and evicts most of each cache line unread.
/// `SoaPoints` repacks the coordinates into one flat dim-strided `double`
/// buffer (16 bytes per 2-D node, 4 nodes per cache line) plus a separate
/// contiguous active-flag lane, so geometric sweeps and liveness checks each
/// stream only the bytes they need.
///
/// The distance/angle kernels replicate the exact accumulation order of
/// geom::point.cpp, so every value they produce is **bit-identical** to the
/// Point-based reference — swapping a hot loop onto SoaPoints is a pure
/// layout change, not a numerical one (pinned by tests/test_sp_workspace.cpp).
///
/// Like `CsrView`, `assign` reuses the flat buffers, so a long-lived
/// snapshot re-taken per phase or per repair allocates nothing once warm;
/// `set` updates one row in place for engines that move nodes.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "geom/point.hpp"

namespace localspan::graph {

class SoaPoints {
 public:
  SoaPoints() = default;
  explicit SoaPoints(const std::vector<geom::Point>& pts) { assign(pts); }

  /// Re-snapshot from a Point array; every node starts active. Buffers are
  /// reused (no allocation once capacity has grown to the high-water mark).
  /// \throws std::invalid_argument on mixed dimensions.
  void assign(const std::vector<geom::Point>& pts) {
    n_ = static_cast<int>(pts.size());
    dim_ = pts.empty() ? 0 : pts.front().dim();
    coords_.clear();
    coords_.reserve(static_cast<std::size_t>(n_) * static_cast<std::size_t>(dim_));
    for (const geom::Point& p : pts) {
      if (p.dim() != dim_) throw std::invalid_argument("SoaPoints: mixed dimensions");
      for (int k = 0; k < dim_; ++k) coords_.push_back(p[k]);
    }
    active_.assign(static_cast<std::size_t>(n_), 1);
  }

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int dim() const noexcept { return dim_; }

  /// Overwrite node v's coordinates in place (dimension must match).
  void set(int v, const geom::Point& p) {
    if (p.dim() != dim_) throw std::invalid_argument("SoaPoints::set: dimension mismatch");
    double* r = row(v);
    for (int k = 0; k < dim_; ++k) r[k] = p[k];
  }

  [[nodiscard]] bool active(int v) const noexcept {
    return active_[static_cast<std::size_t>(v)] != 0;
  }
  void set_active(int v, bool a) noexcept {
    active_[static_cast<std::size_t>(v)] = a ? 1 : 0;
  }

  /// Squared Euclidean distance |uv|^2 — same accumulation order as
  /// geom::sq_distance, so the result is bit-identical.
  [[nodiscard]] double sq_distance(int u, int v) const noexcept {
    const double* a = row(u);
    const double* b = row(v);
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) {
      const double d = a[i] - b[i];
      s += d * d;
    }
    return s;
  }

  /// Euclidean distance |uv|, bit-identical to geom::distance.
  [[nodiscard]] double distance(int u, int v) const noexcept {
    return std::sqrt(sq_distance(u, v));
  }

  /// The angle ∠vuz at apex u, bit-identical to geom::angle_at.
  /// \throws std::invalid_argument if either ray is degenerate.
  [[nodiscard]] double angle_at(int u, int v, int z) const {
    const double* pu = row(u);
    const double* pv = row(v);
    const double* pz = row(z);
    double dot = 0.0;
    double nv = 0.0;
    double nz = 0.0;
    for (int i = 0; i < dim_; ++i) {
      const double a = pv[i] - pu[i];
      const double b = pz[i] - pu[i];
      dot += a * b;
      nv += a * a;
      nz += b * b;
    }
    if (nv == 0.0 || nz == 0.0) {
      throw std::invalid_argument("angle_at: degenerate ray (coincident points)");
    }
    const double cosang = std::clamp(dot / std::sqrt(nv * nz), -1.0, 1.0);
    return std::acos(cosang);
  }

 private:
  [[nodiscard]] const double* row(int v) const noexcept {
    return coords_.data() + static_cast<std::size_t>(v) * static_cast<std::size_t>(dim_);
  }
  [[nodiscard]] double* row(int v) noexcept {
    return coords_.data() + static_cast<std::size_t>(v) * static_cast<std::size_t>(dim_);
  }

  std::vector<double> coords_;        ///< dim-strided coordinate lanes.
  std::vector<std::uint8_t> active_;  ///< separate liveness lane (1 = active).
  int n_ = 0;
  int dim_ = 0;
};

}  // namespace localspan::graph
