#include "graph/labels.hpp"

namespace localspan::graph {

void LandmarkLabels::assign(const std::vector<std::vector<LabelEntry>>& rows) {
  offsets_.clear();
  entries_.clear();
  offsets_.reserve(rows.size() + 1);
  offsets_.push_back(0);
  std::size_t total = 0;
  for (const auto& row : rows) total += row.size();
  entries_.reserve(total);
  for (const auto& row : rows) {
    entries_.insert(entries_.end(), row.begin(), row.end());
    offsets_.push_back(static_cast<int>(entries_.size()));
  }
}

double min_common_distance(std::span<const LabelEntry> a,
                           std::span<const LabelEntry> b) noexcept {
  double best = kInf;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].center < b[j].center) {
      ++i;
    } else if (b[j].center < a[i].center) {
      ++j;
    } else {
      const double via = a[i].dist + b[j].dist;
      if (via < best) best = via;
      ++i;
      ++j;
    }
  }
  return best;
}

}  // namespace localspan::graph
