#pragma once
/// \file graph.hpp
/// Weighted undirected graph — the shared substrate for the input α-UBG G,
/// the partial spanners G'_i, the Das–Narasimhan cluster graph H_{i-1} and
/// the derived conflict graphs J of the paper.
///
/// Adjacency-list representation with value semantics. Edge weights are
/// positive doubles (Euclidean lengths by default; the §1.6 energy extension
/// uses c·|uv|^γ). Parallel edges are rejected, self-loops are illegal.

#include <span>
#include <vector>

namespace localspan::graph {

/// One directed half of an undirected edge as stored in adjacency lists.
struct Neighbor {
  int to;
  double w;
};

/// An undirected edge with endpoints u < v.
struct Edge {
  int u;
  int v;
  double w;

  bool operator==(const Edge& o) const noexcept { return u == o.u && v == o.v && w == o.w; }
};

/// Weighted undirected simple graph on vertices 0..n-1.
class Graph {
 public:
  /// Edgeless graph on n >= 0 vertices.
  explicit Graph(int n = 0);

  [[nodiscard]] int n() const noexcept { return static_cast<int>(adj_.size()); }
  [[nodiscard]] int m() const noexcept { return m_; }

  /// Append an isolated vertex; returns its id (the new n-1). Existing ids
  /// and edges are untouched — the growth primitive for dynamic topologies.
  int add_vertex();

  /// Add undirected edge {u,v} with weight w > 0.
  /// \returns true if added, false if the edge already existed (weight kept).
  /// \throws std::invalid_argument on bad endpoints, self-loop or w <= 0.
  bool add_edge(int u, int v, double w);

  /// Remove undirected edge {u,v}. \returns true if it existed.
  bool remove_edge(int u, int v);

  [[nodiscard]] bool has_edge(int u, int v) const;

  /// Weight of existing edge {u,v}. \throws std::invalid_argument if absent.
  [[nodiscard]] double edge_weight(int u, int v) const;

  [[nodiscard]] std::span<const Neighbor> neighbors(int u) const;
  [[nodiscard]] int degree(int u) const;
  [[nodiscard]] int max_degree() const noexcept;

  /// Sum of all edge weights: w(G) in the paper's notation.
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  /// Materialized edge list, each edge once with u < v, sorted by (u,v).
  [[nodiscard]] std::vector<Edge> edges() const;

  bool operator==(const Graph& o) const;

 private:
  void check_vertex(int u) const;

  std::vector<std::vector<Neighbor>> adj_;
  int m_ = 0;
  double total_weight_ = 0.0;
};

}  // namespace localspan::graph
