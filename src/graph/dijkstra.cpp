#include "graph/dijkstra.hpp"

#include <queue>
#include <stdexcept>

namespace localspan::graph {

namespace {

struct QItem {
  double d;
  int v;
  bool operator>(const QItem& o) const noexcept { return d > o.d; }
};

ShortestPaths run(const Graph& g, int src, double radius, int target) {
  if (src < 0 || src >= g.n()) throw std::invalid_argument("dijkstra: source out of range");
  ShortestPaths sp;
  sp.dist.assign(static_cast<std::size_t>(g.n()), kInf);
  sp.parent.assign(static_cast<std::size_t>(g.n()), -1);
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  sp.dist[static_cast<std::size_t>(src)] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > sp.dist[static_cast<std::size_t>(v)]) continue;  // stale entry
    if (d > radius) break;
    if (v == target) break;
    for (const Neighbor& nb : g.neighbors(v)) {
      const double nd = d + nb.w;
      if (nd > radius) continue;
      if (nd < sp.dist[static_cast<std::size_t>(nb.to)]) {
        sp.dist[static_cast<std::size_t>(nb.to)] = nd;
        sp.parent[static_cast<std::size_t>(nb.to)] = v;
        pq.push({nd, nb.to});
      }
    }
  }
  return sp;
}

}  // namespace

ShortestPaths dijkstra(const Graph& g, int src) { return run(g, src, kInf, -1); }

ShortestPaths dijkstra_bounded(const Graph& g, int src, double radius) {
  if (radius < 0.0) throw std::invalid_argument("dijkstra_bounded: negative radius");
  return run(g, src, radius, -1);
}

double sp_distance(const Graph& g, int u, int v, double bound) {
  if (v < 0 || v >= g.n()) throw std::invalid_argument("sp_distance: target out of range");
  if (u == v) return 0.0;
  const ShortestPaths sp = run(g, u, bound, v);
  const double d = sp.dist[static_cast<std::size_t>(v)];
  return d <= bound ? d : kInf;
}

ShortestPaths dijkstra_multi_bounded(const Graph& g, std::span<const int> sources, double radius,
                                     const std::function<double(double)>& weight) {
  if (radius < 0.0) throw std::invalid_argument("dijkstra_multi_bounded: negative radius");
  ShortestPaths sp;
  sp.dist.assign(static_cast<std::size_t>(g.n()), kInf);
  sp.parent.assign(static_cast<std::size_t>(g.n()), -1);
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  for (int s : sources) {
    if (s < 0 || s >= g.n()) throw std::invalid_argument("dijkstra_multi_bounded: source out of range");
    if (sp.dist[static_cast<std::size_t>(s)] > 0.0) {
      sp.dist[static_cast<std::size_t>(s)] = 0.0;
      pq.push({0.0, s});
    }
  }
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > sp.dist[static_cast<std::size_t>(v)]) continue;  // stale entry
    if (d > radius) break;
    for (const Neighbor& nb : g.neighbors(v)) {
      const double nd = d + (weight ? weight(nb.w) : nb.w);
      if (nd > radius) continue;
      if (nd < sp.dist[static_cast<std::size_t>(nb.to)]) {
        sp.dist[static_cast<std::size_t>(nb.to)] = nd;
        sp.parent[static_cast<std::size_t>(nb.to)] = v;
        pq.push({nd, nb.to});
      }
    }
  }
  return sp;
}

std::vector<int> khop_ball(const Graph& g, int src, int k) {
  if (src < 0 || src >= g.n()) throw std::invalid_argument("khop_ball: source out of range");
  if (k < 0) throw std::invalid_argument("khop_ball: negative hop count");
  std::vector<int> hops(static_cast<std::size_t>(g.n()), -1);
  std::vector<int> ball{src};
  hops[static_cast<std::size_t>(src)] = 0;
  std::size_t head = 0;
  while (head < ball.size()) {
    const int v = ball[head++];
    const int h = hops[static_cast<std::size_t>(v)];
    if (h == k) continue;
    for (const Neighbor& nb : g.neighbors(v)) {
      if (hops[static_cast<std::size_t>(nb.to)] < 0) {
        hops[static_cast<std::size_t>(nb.to)] = h + 1;
        ball.push_back(nb.to);
      }
    }
  }
  return ball;
}

int path_hops(const ShortestPaths& sp, int v) {
  if (v < 0 || v >= static_cast<int>(sp.dist.size())) {
    throw std::invalid_argument("path_hops: vertex out of range");
  }
  if (sp.dist[static_cast<std::size_t>(v)] == kInf) return -1;
  int hops = 0;
  for (int cur = v; sp.parent[static_cast<std::size_t>(cur)] != -1;
       cur = sp.parent[static_cast<std::size_t>(cur)]) {
    ++hops;
  }
  return hops;
}

}  // namespace localspan::graph
