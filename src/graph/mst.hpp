#pragma once
/// \file mst.hpp
/// Minimum spanning forest via Kruskal.
///
/// The paper's lightness guarantee is w(G') = O(w(MST(G))) (Theorem 13) and
/// w(MST) lower-bounds the weight of *any* spanner, so the MSF is both the
/// normalizer of experiment E3 and a baseline row of E6. On disconnected
/// inputs the minimum spanning *forest* plays the MST's role component-wise.

#include "graph/graph.hpp"

namespace localspan::graph {

/// Minimum spanning forest of g (equals the MST when g is connected).
[[nodiscard]] Graph minimum_spanning_forest(const Graph& g);

/// w(MSF(g)) without materializing the forest.
[[nodiscard]] double msf_weight(const Graph& g);

}  // namespace localspan::graph
