#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <random>
#include <stdexcept>

#include "graph/dijkstra.hpp"
#include "graph/mst.hpp"
#include "graph/sp_workspace.hpp"
#include "runtime/parallel.hpp"

namespace localspan::graph {

double max_edge_stretch(const Graph& g, const Graph& sub, double cap, int threads,
                        runtime::WorkerPool* pool) {
  if (g.n() != sub.n()) throw std::invalid_argument("max_edge_stretch: vertex count mismatch");
  if (g.m() == 0) return 1.0;
  // One bounded Dijkstra per vertex answers all incident-edge queries; the
  // workspace + CSR snapshot keep each one O(|ball|) in time AND memory
  // traffic (the dense version allocated a fresh O(n) result per vertex —
  // O(n^2) traffic for a linear-size answer). The per-vertex passes are
  // independent; the parallel reduction is max over doubles, which is exact
  // under any order, so every thread count returns the identical value.
  const CsrView sub_csr(sub);
  const auto vertex_worst = [&](DijkstraWorkspace& ws, int u) {
    double max_w = 0.0;
    for (const Neighbor& nb : g.neighbors(u)) max_w = std::max(max_w, nb.w);
    if (max_w == 0.0) return 1.0;
    const SpView sp = ws.bounded(sub_csr, u, cap * max_w);
    double worst = 1.0;
    for (const Neighbor& nb : g.neighbors(u)) {
      if (nb.to < u) continue;  // each edge once
      const double d = sp.dist(nb.to);
      const double ratio = d == kInf ? cap : std::min(cap, d / nb.w);
      worst = std::max(worst, ratio);
    }
    return worst;
  };
  std::optional<runtime::WorkerPool> local_pool;
  if (pool == nullptr) {
    const int nthreads = runtime::resolve_threads(threads);
    if (nthreads > 1) pool = &local_pool.emplace(nthreads);
  }
  if (pool == nullptr || pool->threads() == 1) {
    DijkstraWorkspace ws(g.n());
    double worst = 1.0;
    for (int u = 0; u < g.n(); ++u) worst = std::max(worst, vertex_worst(ws, u));
    return worst;
  }
  std::vector<double> per_worker(static_cast<std::size_t>(pool->threads()), 1.0);
  pool->for_each(0, g.n(), [&](int worker, int u) {
    double& worst = per_worker[static_cast<std::size_t>(worker)];
    worst = std::max(worst, vertex_worst(pool->workspace(worker), u));
  });
  double worst = 1.0;
  for (double w : per_worker) worst = std::max(worst, w);
  return worst;
}

double sampled_pair_stretch(const Graph& g, const Graph& sub, std::int64_t samples,
                            std::uint64_t seed, int threads, runtime::WorkerPool* pool) {
  if (g.n() != sub.n()) throw std::invalid_argument("sampled_pair_stretch: vertex count mismatch");
  if (g.n() < 2 || samples <= 0) return 1.0;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, g.n() - 1);
  // Draw the pair set first (identical sequence to the historical
  // per-sample draw), then group by source so a source sampled more than
  // once pays for its two unbounded searches exactly once.
  struct Sample {
    int u, v;
  };
  std::vector<Sample> pairs;
  pairs.reserve(static_cast<std::size_t>(samples));
  for (std::int64_t s = 0; s < samples; ++s) {
    const int u = pick(rng);
    int v = pick(rng);
    if (v == u) v = (v + 1) % g.n();
    pairs.push_back({u, v});
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const Sample& a, const Sample& b) { return a.u < b.u; });
  // Source-group boundaries, so groups can be processed independently (and,
  // with threads, in parallel: each group's worst ratio depends only on the
  // two frozen graphs; the max reduction is exact under any order).
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  for (std::size_t i = 0; i < pairs.size();) {
    std::size_t end = i;
    while (end < pairs.size() && pairs[end].u == pairs[i].u) ++end;
    groups.push_back({i, end});
    i = end;
  }
  const auto group_worst = [&](DijkstraWorkspace& ws, std::vector<double>& dg_run,
                               std::size_t begin, std::size_t end) {
    const int u = pairs[begin].u;
    dg_run.clear();
    {
      const SpView in_g = ws.bounded(g, u, kInf);
      for (std::size_t s = begin; s < end; ++s) dg_run.push_back(in_g.dist(pairs[s].v));
    }
    const SpView in_sub = ws.bounded(sub, u, kInf);
    double worst = 1.0;
    for (std::size_t s = begin; s < end; ++s) {
      const double dg = dg_run[s - begin];
      if (dg == kInf || dg == 0.0) continue;
      const double ds = in_sub.dist(pairs[s].v);
      worst = std::max(worst, ds == kInf ? kInf : ds / dg);
    }
    return worst;
  };
  std::optional<runtime::WorkerPool> local_pool;
  if (pool == nullptr) {
    const int nthreads = runtime::resolve_threads(threads);
    if (nthreads > 1) pool = &local_pool.emplace(nthreads);
  }
  if (pool == nullptr || pool->threads() == 1) {
    DijkstraWorkspace ws(g.n());
    std::vector<double> dg_run;  // dist-in-g per pair of the current source run
    double worst = 1.0;
    for (const auto& [begin, end] : groups) {
      worst = std::max(worst, group_worst(ws, dg_run, begin, end));
    }
    return worst;
  }
  std::vector<double> per_worker(static_cast<std::size_t>(pool->threads()), 1.0);
  std::vector<std::vector<double>> dg_runs(static_cast<std::size_t>(pool->threads()));
  pool->for_each(0, static_cast<int>(groups.size()), [&](int worker, int i) {
    const auto& [begin, end] = groups[static_cast<std::size_t>(i)];
    double& worst = per_worker[static_cast<std::size_t>(worker)];
    worst = std::max(worst, group_worst(pool->workspace(worker),
                                        dg_runs[static_cast<std::size_t>(worker)], begin, end));
  });
  double worst = 1.0;
  for (double w : per_worker) worst = std::max(worst, w);
  return worst;
}

std::int64_t quantile_index(std::int64_t count, double q) {
  if (count <= 0) return -1;
  const auto raw = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count))) - 1;
  return std::min(count - 1, std::max<std::int64_t>(0, raw));
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats st;
  if (g.n() == 0) return st;
  std::vector<int> deg(static_cast<std::size_t>(g.n()));
  long long sum = 0;
  for (int v = 0; v < g.n(); ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
    sum += deg[static_cast<std::size_t>(v)];
  }
  std::sort(deg.begin(), deg.end());
  st.max = deg.back();
  st.mean = static_cast<double>(sum) / g.n();
  st.p99 = deg[static_cast<std::size_t>(
      std::max<std::int64_t>(0, quantile_index(static_cast<std::int64_t>(deg.size()), 0.99)))];
  return st;
}

double lightness(const Graph& g, const Graph& sub) {
  const double base = msf_weight(g);
  if (base == 0.0) return sub.total_weight() == 0.0 ? 1.0 : kInf;
  return sub.total_weight() / base;
}

double power_cost(const Graph& g) {
  double total = 0.0;
  for (int v = 0; v < g.n(); ++v) {
    double mx = 0.0;
    for (const Neighbor& nb : g.neighbors(v)) mx = std::max(mx, nb.w);
    total += mx;
  }
  return total;
}

namespace {

/// RHS of the leapfrog inequality (paper eq. (6)) for one concrete cyclic
/// arrangement: oriented edges (a_i, b_i), i = 0..s-1, with edge 0 the
/// distinguished longest edge.
double leapfrog_rhs(const std::vector<std::pair<int, int>>& arr,
                    const std::function<double(int, int)>& pts_dist, double t) {
  double mids = 0.0;
  double links = 0.0;
  for (std::size_t i = 1; i < arr.size(); ++i) mids += pts_dist(arr[i].first, arr[i].second);
  for (std::size_t i = 0; i + 1 < arr.size(); ++i) {
    links += pts_dist(arr[i].second, arr[i + 1].first);
  }
  links += pts_dist(arr.back().second, arr[0].first);
  return mids + t * links;
}

}  // namespace

std::int64_t leapfrog_violations(const Graph& sub, const std::function<double(int, int)>& pts_dist,
                                 double t2, double t, std::int64_t trials, std::uint64_t seed) {
  const std::vector<Edge> es = sub.edges();
  if (es.size() < 2) return 0;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, es.size() - 1);
  std::uniform_int_distribution<int> subset_size(2, 6);
  std::int64_t violations = 0;
  for (std::int64_t trial = 0; trial < trials; ++trial) {
    const int s = std::min<int>(subset_size(rng), static_cast<int>(es.size()));
    std::vector<Edge> sset;
    while (static_cast<int>(sset.size()) < s) {
      const Edge& e = es[pick(rng)];
      const bool dup = std::any_of(sset.begin(), sset.end(), [&](const Edge& f) {
        return f.u == e.u && f.v == e.v;
      });
      if (!dup) sset.push_back(e);
    }
    // The property quantifies over arbitrary labelings: eq. (6) must hold
    // for EVERY ordering/orientation with the longest edge distinguished.
    // Minimize the RHS over sampled arrangements; a violation is found when
    // some arrangement has t2·|u1v1| >= RHS.
    auto longest = std::max_element(sset.begin(), sset.end(), [&](const Edge& a, const Edge& b) {
      return pts_dist(a.u, a.v) < pts_dist(b.u, b.v);
    });
    std::iter_swap(sset.begin(), longest);
    const double lhs = t2 * pts_dist(sset[0].u, sset[0].v);
    double min_rhs = kInf;
    std::vector<int> order(sset.size() - 1);
    for (std::size_t i = 0; i + 1 < sset.size(); ++i) order[i] = static_cast<int>(i + 1);
    const int arrangement_samples = 64;
    std::vector<std::pair<int, int>> arr(sset.size());
    for (int a = 0; a < arrangement_samples; ++a) {
      std::shuffle(order.begin(), order.end(), rng);
      const std::uint64_t flips = rng();
      arr[0] = (flips & 1) ? std::pair(sset[0].v, sset[0].u) : std::pair(sset[0].u, sset[0].v);
      for (std::size_t i = 0; i < order.size(); ++i) {
        const Edge& e = sset[static_cast<std::size_t>(order[i])];
        arr[i + 1] = (flips >> (i + 1)) & 1 ? std::pair(e.v, e.u) : std::pair(e.u, e.v);
      }
      min_rhs = std::min(min_rhs, leapfrog_rhs(arr, pts_dist, t));
      if (lhs >= min_rhs) break;
    }
    if (lhs >= min_rhs) ++violations;
  }
  return violations;
}

double doubling_dimension_estimate(const std::vector<std::vector<double>>& dist, int ball_samples,
                                   std::uint64_t seed) {
  const int n = static_cast<int>(dist.size());
  if (n == 0) return 0.0;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, n - 1);
  int worst_cover = 1;
  for (int s = 0; s < ball_samples; ++s) {
    const int x = pick(rng);
    // Radius: distance to a random other point (spreads scales).
    const int y = pick(rng);
    const double radius = dist[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)];
    if (radius <= 0.0 || radius == kInf) continue;
    std::vector<int> ball;
    for (int v = 0; v < n; ++v) {
      if (dist[static_cast<std::size_t>(x)][static_cast<std::size_t>(v)] <= radius) ball.push_back(v);
    }
    // Greedy cover of the ball with radius/2 balls.
    std::vector<bool> covered(ball.size(), false);
    int centers = 0;
    for (std::size_t i = 0; i < ball.size(); ++i) {
      if (covered[i]) continue;
      ++centers;
      const int c = ball[i];
      for (std::size_t j = 0; j < ball.size(); ++j) {
        if (dist[static_cast<std::size_t>(c)][static_cast<std::size_t>(ball[j])] <= radius / 2.0) {
          covered[j] = true;
        }
      }
    }
    worst_cover = std::max(worst_cover, centers);
  }
  return std::log2(static_cast<double>(worst_cover));
}

}  // namespace localspan::graph
