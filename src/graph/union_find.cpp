#include "graph/union_find.hpp"

#include <numeric>
#include <stdexcept>

namespace localspan::graph {

UnionFind::UnionFind(int n)
    : parent_(static_cast<std::size_t>(n)),
      rank_(static_cast<std::size_t>(n), 0),
      size_(static_cast<std::size_t>(n), 1),
      components_(n) {
  if (n < 0) throw std::invalid_argument("UnionFind: negative size");
  std::iota(parent_.begin(), parent_.end(), 0);
}

int UnionFind::find(int x) {
  if (x < 0 || x >= static_cast<int>(parent_.size())) {
    throw std::invalid_argument("UnionFind::find: out of range");
  }
  while (parent_[static_cast<std::size_t>(x)] != x) {
    auto& p = parent_[static_cast<std::size_t>(x)];
    p = parent_[static_cast<std::size_t>(p)];  // path halving
    x = p;
  }
  return x;
}

bool UnionFind::unite(int a, int b) {
  int ra = find(a);
  int rb = find(b);
  if (ra == rb) return false;
  if (rank_[static_cast<std::size_t>(ra)] < rank_[static_cast<std::size_t>(rb)]) std::swap(ra, rb);
  parent_[static_cast<std::size_t>(rb)] = ra;
  size_[static_cast<std::size_t>(ra)] += size_[static_cast<std::size_t>(rb)];
  if (rank_[static_cast<std::size_t>(ra)] == rank_[static_cast<std::size_t>(rb)]) {
    ++rank_[static_cast<std::size_t>(ra)];
  }
  --components_;
  return true;
}

int UnionFind::size_of(int x) { return size_[static_cast<std::size_t>(find(x))]; }

}  // namespace localspan::graph
