#include "api/spanner_algorithm.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "geom/grid.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "obs/obs.hpp"

namespace localspan::api {

namespace {

/// Verification tolerance shared with the dynamic certifier: measured
/// quantities are sums of O(1/wmin) doubles re-derived independently.
constexpr double kSlack = 1.0 + 1e-9;

[[nodiscard]] std::string join_keys(const std::vector<OptionSpec>& schema) {
  if (schema.empty()) return "(none)";
  std::string out;
  for (const OptionSpec& spec : schema) {
    if (!out.empty()) out += ", ";
    out += spec.key;
  }
  return out;
}

}  // namespace

int parse_int(const std::string& what, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    throw std::invalid_argument(what + ": expected an integer, got '" + value + "'");
  }
  if (errno == ERANGE || v < INT_MIN || v > INT_MAX) {
    throw std::invalid_argument(what + ": integer out of range: '" + value + "'");
  }
  return static_cast<int>(v);
}

double parse_double(const std::string& what, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size()) {
    throw std::invalid_argument(what + ": expected a number, got '" + value + "'");
  }
  if (errno == ERANGE && std::abs(v) == HUGE_VAL) {
    throw std::invalid_argument(what + ": number out of range: '" + value + "'");
  }
  return v;
}

const char* to_string(OptionType t) noexcept {
  switch (t) {
    case OptionType::kInt: return "int";
    case OptionType::kDouble: return "double";
    case OptionType::kBool: return "bool";
    case OptionType::kString: return "string";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

Options Options::parse(const std::vector<std::string>& kv_items) {
  Options out;
  for (const std::string& item : kv_items) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("option '" + item + "' is not of the form key=value");
    }
    const std::string key = item.substr(0, eq);
    if (out.has(key)) {
      throw std::invalid_argument("option '" + key + "' given more than once");
    }
    out.set(key, item.substr(eq + 1));
  }
  return out;
}

void Options::set(const std::string& key, const std::string& value) {
  if (key.empty()) throw std::invalid_argument("Options: empty option key");
  values_[key] = value;
}

bool Options::has(const std::string& key) const { return values_.contains(key); }

int Options::get_int(const std::string& key, int dflt) const {
  auto it = values_.find(key);
  return it == values_.end() ? dflt : parse_int("option " + key, it->second);
}

double Options::get_double(const std::string& key, double dflt) const {
  auto it = values_.find(key);
  return it == values_.end() ? dflt : parse_double("option " + key, it->second);
}

bool Options::get_bool(const std::string& key, bool dflt) const {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("option " + key + ": expected a boolean (true/false), got '" + v +
                              "'");
}

std::string Options::get_string(const std::string& key, const std::string& dflt) const {
  auto it = values_.find(key);
  return it == values_.end() ? dflt : it->second;
}

void Options::validate_against(const std::vector<OptionSpec>& schema,
                               const std::string& algo) const {
  for (const auto& [key, value] : values_) {
    const auto spec = std::find_if(schema.begin(), schema.end(),
                                   [&](const OptionSpec& s) { return s.key == key; });
    if (spec == schema.end()) {
      throw std::invalid_argument("algorithm '" + algo + "' does not accept option '" + key +
                                  "' (known options: " + join_keys(schema) + ")");
    }
    // Type-check by round-tripping through the typed accessor.
    switch (spec->type) {
      case OptionType::kInt: static_cast<void>(get_int(key, 0)); break;
      case OptionType::kDouble: static_cast<void>(get_double(key, 0.0)); break;
      case OptionType::kBool: static_cast<void>(get_bool(key, false)); break;
      case OptionType::kString: break;
    }
    static_cast<void>(value);
  }
}

// ---------------------------------------------------------------------------
// Guarantees
// ---------------------------------------------------------------------------

std::string Guarantees::describe() const {
  std::string out;
  const auto append = [&out](const std::string& part) {
    if (!out.empty()) out += ' ';
    out += part;
  };
  if (subgraph) append("subgraph");
  if (stretch > 0.0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "stretch<=%.2f", stretch);
    append(buf);
  }
  if (max_degree > 0) append("deg<=" + std::to_string(max_degree));
  if (lightness > 0.0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "light<=%.0f", lightness);
    append(buf);
  }
  if (connectivity) append("conn");
  return out.empty() ? "-" : out;
}

// ---------------------------------------------------------------------------
// AlgorithmRegistry
// ---------------------------------------------------------------------------

void AlgorithmRegistry::add(std::unique_ptr<SpannerAlgorithm> algo) {
  if (!algo) throw std::invalid_argument("AlgorithmRegistry: null algorithm");
  const std::string name = algo->info().name;
  if (name.empty()) throw std::invalid_argument("AlgorithmRegistry: empty algorithm name");
  if (algos_.contains(name)) {
    throw std::invalid_argument("AlgorithmRegistry: duplicate algorithm '" + name + "'");
  }
  algos_[name] = std::move(algo);
}

bool AlgorithmRegistry::contains(const std::string& name) const { return algos_.contains(name); }

const SpannerAlgorithm& AlgorithmRegistry::at(const std::string& name) const {
  auto it = algos_.find(name);
  if (it == algos_.end()) {
    std::string known;
    for (const auto& [key, value] : algos_) {
      if (!known.empty()) known += ", ";
      known += key;
      static_cast<void>(value);
    }
    throw std::invalid_argument("unknown algorithm '" + name + "' (available: " + known + ")");
  }
  return *it->second;
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(algos_.size());
  for (const auto& [key, value] : algos_) {
    out.push_back(key);
    static_cast<void>(value);
  }
  return out;  // std::map iteration order is already sorted.
}

BuildResult AlgorithmRegistry::build(const std::string& name, const BuildRequest& req,
                                     bool measure) const {
  const SpannerAlgorithm& algo = at(name);
  const AlgorithmInfo& info = algo.info();
  req.options.validate_against(info.options, info.name);
  if (info.caps.dim2_only && req.inst.config.dim != 2) {
    throw std::invalid_argument("algorithm '" + name + "' is defined for dim == 2 only (instance has dim " +
                                std::to_string(req.inst.config.dim) + ")");
  }
  if (info.caps.uses_params) req.params.validate();

  // Declaration and the metric reference are request-derived measurement
  // inputs — both stay outside the timed window.
  const Guarantees guarantees = algo.guarantees(req);
  std::optional<graph::Graph> metric_reference = algo.metric_reference(req);

  // Phase accounting rides the obs layer: diff the global span totals
  // around the timed call and filter to the algorithm's declared schema.
  // The "construct" span wraps every algorithm, so even opaque baselines
  // report a one-row breakdown through the same pipeline.
  const bool obs_on = obs::enabled();
  std::vector<obs::SpanStat> spans_before;
  if (obs_on) spans_before = obs::span_totals();

  const auto t0 = std::chrono::steady_clock::now();
  Construction c = [&] {
    static const obs::MetricId construct_span = obs::span_id("construct");
    const obs::Span span(construct_span);
    return algo.construct(req);
  }();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  BuildResult res{std::move(c.spanner), seconds,       {},
                  guarantees,           std::move(c.phases), std::move(metric_reference),
                  {}};
  if (obs_on) {
    const std::vector<obs::SpanStat> spans_after = obs::span_totals();
    const auto totals_of = [](const std::vector<obs::SpanStat>& stats, const std::string& name) {
      for (const obs::SpanStat& s : stats) {
        if (s.name == name) return std::pair<std::int64_t, std::int64_t>{s.count, s.total_ns};
      }
      return std::pair<std::int64_t, std::int64_t>{0, 0};
    };
    const std::vector<std::string> fallback{"construct"};
    const std::vector<std::string>& declared = info.phases.empty() ? fallback : info.phases;
    for (const std::string& phase : declared) {
      const auto [count0, ns0] = totals_of(spans_before, phase);
      const auto [count1, ns1] = totals_of(spans_after, phase);
      if (count1 > count0) {
        res.phase_breakdown.push_back({phase, count1 - count0, (ns1 - ns0) * 1e-9});
      }
    }
  }
  const graph::Graph& ref = res.metric_reference ? *res.metric_reference : req.inst.g;
  res.metrics.edges = res.spanner.m();
  res.metrics.edges_per_node =
      res.spanner.n() > 0 ? static_cast<double>(res.spanner.m()) / res.spanner.n() : 0.0;
  res.metrics.max_degree = res.spanner.max_degree();
  if (measure) {
    // The stretch pass dominates measurement; run it on the same worker
    // count the construction was asked for (only meaningful for algorithms
    // whose schema declares a `threads` option — the value is 0 otherwise,
    // which defers to the LOCALSPAN_THREADS default). Bit-identical at
    // every thread count.
    int measure_threads = 0;
    for (const OptionSpec& spec : info.options) {
      if (spec.key == "threads") {
        measure_threads = req.options.get_int("threads", 0);
        break;
      }
    }
    res.metrics.stretch = graph::max_edge_stretch(ref, res.spanner, 64.0, measure_threads);
    res.metrics.lightness = graph::lightness(ref, res.spanner);
    const double ref_power = graph::power_cost(ref);
    res.metrics.power_ratio = ref_power > 0.0 ? graph::power_cost(res.spanner) / ref_power : 0.0;
  }
  return res;
}

const AlgorithmRegistry& registry() {
  // Intentionally leaked: built once, immutable afterwards, alive for the
  // whole process (no destruction-order hazards for static consumers).
  static const AlgorithmRegistry* reg = [] {
    auto* r = new AlgorithmRegistry();
    register_builtin_algorithms(*r);
    return r;
  }();
  return *reg;
}

// ---------------------------------------------------------------------------
// Guarantee checking (shared by tests and the CLI)
// ---------------------------------------------------------------------------

std::string check_guarantees(const ubg::UbgInstance& inst, const BuildResult& result) {
  const Guarantees& g = result.guarantees;
  char buf[160];
  if (g.subgraph) {
    for (const graph::Edge& e : result.spanner.edges()) {
      if (!inst.g.has_edge(e.u, e.v)) {
        std::snprintf(buf, sizeof(buf), "declared subgraph, but edge {%d,%d} is not in G", e.u,
                      e.v);
        return buf;
      }
    }
  }
  if (g.connectivity) {
    const int want = graph::connected_components(inst.g).count;
    const int got = graph::connected_components(result.spanner).count;
    if (want != got) {
      std::snprintf(buf, sizeof(buf),
                    "declared connectivity, but components differ (G: %d, output: %d)", want, got);
      return buf;
    }
  }
  if (g.stretch > 0.0 && result.metrics.stretch > g.stretch * kSlack) {
    std::snprintf(buf, sizeof(buf), "declared stretch <= %.4f, measured %.4f", g.stretch,
                  result.metrics.stretch);
    return buf;
  }
  if (g.max_degree > 0 && result.metrics.max_degree > g.max_degree) {
    std::snprintf(buf, sizeof(buf), "declared max degree <= %d, measured %d", g.max_degree,
                  result.metrics.max_degree);
    return buf;
  }
  if (g.lightness > 0.0 && result.metrics.lightness > g.lightness * kSlack) {
    std::snprintf(buf, sizeof(buf), "declared lightness <= %.2f, measured %.4f", g.lightness,
                  result.metrics.lightness);
    return buf;
  }
  return {};
}

bool gray_zone_closed(const ubg::UbgInstance& inst) {
  if (inst.g.n() == 0) return true;
  // Every pair at distance <= 1 must be an edge; count pairs via the spatial
  // grid (near-linear for the evaluation densities) and compare against m.
  const geom::Grid grid(inst.points, 1.0);
  int pairs = 0;
  for (int i = 0; i < inst.g.n(); ++i) {
    bool missing = false;
    grid.for_neighbors_within(i, 1.0, [&](int j) {
      if (i < j) {
        ++pairs;
        if (!inst.g.has_edge(i, j)) missing = true;
      }
    });
    if (missing) return false;
  }
  return pairs == inst.g.m();
}

}  // namespace localspan::api
