#pragma once
/// \file spanner_algorithm.hpp
/// The unified topology-control build API.
///
/// Every construction in the repo — the paper's relaxed greedy algorithm
/// (sequential and distributed), classical SEQ-GREEDY, the Yao/Θ/Gabriel/RNG
/// baselines, the §1.6 fault-tolerance and energy extensions, and the trivial
/// MST / max-power reference topologies — sits behind one polymorphic
/// `SpannerAlgorithm` interface keyed by name in the `AlgorithmRegistry`
/// (following the taxonomy argument of Brust–Rothkugel and the
/// algorithm-family construction of Kluge et al.): a `BuildRequest`
/// (instance + core::Params + generic option map) goes in, a `BuildResult`
/// (spanner, timings, uniform quality metrics, declared guarantees, optional
/// phase trace) comes out. The CLI, the E6 comparison bench and the
/// scenario-matrix API test all drive constructions exclusively through this
/// layer, so adding an algorithm means writing one adapter and registering
/// it — every consumer picks it up by name.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/relaxed_greedy.hpp"
#include "graph/graph.hpp"
#include "ubg/generator.hpp"

namespace localspan::api {

/// Type of one algorithm option (schemas are self-describing for --algo
/// list, the README table generator and typed validation).
enum class OptionType { kInt, kDouble, kBool, kString };

[[nodiscard]] const char* to_string(OptionType t) noexcept;

/// Strict numeric parsing shared by Options and the CLI flag parser: the
/// whole string must parse and the value must fit the target type — trailing
/// garbage, empty strings and out-of-range magnitudes all throw
/// std::invalid_argument naming `what` (e.g. "option k" or "--eps").
[[nodiscard]] int parse_int(const std::string& what, const std::string& value);
[[nodiscard]] double parse_double(const std::string& what, const std::string& value);

/// One entry of an algorithm's option schema.
struct OptionSpec {
  std::string key;
  OptionType type = OptionType::kString;
  std::string default_value;  ///< textual default, as accepted by Options.
  std::string description;
};

/// Generic key/value option map with typed accessors. Values are carried as
/// strings (the CLI's `--opt k=9` form); typed getters parse on access and
/// throw std::invalid_argument on malformed values. Keys unknown to an
/// algorithm's schema are rejected up front by validate_against — a typo'd
/// option can never be silently ignored.
class Options {
 public:
  Options() = default;

  /// Parse one "key=value" item (the CLI form). \throws std::invalid_argument
  /// when '=' is missing or the key is empty.
  static Options parse(const std::vector<std::string>& kv_items);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  /// Typed accessors: return the stored value parsed as the requested type,
  /// or `dflt` when the key is absent. \throws std::invalid_argument when a
  /// stored value does not parse as the requested type (full-string match).
  [[nodiscard]] int get_int(const std::string& key, int dflt) const;
  [[nodiscard]] double get_double(const std::string& key, double dflt) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool dflt) const;
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& dflt) const;

  /// Reject unknown keys and type-check every provided value against the
  /// schema. \throws std::invalid_argument naming the offending key and the
  /// known options of `algo`.
  void validate_against(const std::vector<OptionSpec>& schema, const std::string& algo) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const noexcept {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Capability flags a consumer can dispatch on without knowing the
/// algorithm (the registry enforces dim2_only before construction).
struct Capabilities {
  bool dim2_only = false;     ///< construction defined for dim == 2 only.
  bool needs_k = false;       ///< consumes a structural `k` option (cones / faults).
  bool uses_params = true;    ///< output depends on core::Params (t, θ, δ, ...).
  bool randomized = false;    ///< consumes a `seed` option (deterministic given it).
  bool distributed = false;   ///< message-passing construction: accepts the
                              ///< `net` option family (--net async, fault knobs).
};

/// The guarantees an algorithm declares for a concrete request. Zero /
/// false means "not guaranteed" — the scenario-matrix API test checks
/// exactly the declared subset against independent measurements.
struct Guarantees {
  bool subgraph = true;        ///< output edges are edges of the input graph.
  bool connectivity = false;   ///< component structure of G preserved.
  double stretch = 0.0;        ///< > 0: max edge stretch <= this (build metric).
  int max_degree = 0;          ///< > 0: maximum degree <= this (policy cap).
  double lightness = 0.0;      ///< > 0: w(G')/w(MSF) <= this (policy cap).

  /// Compact rendering for --algo list / bench tables, e.g.
  /// "stretch<=1.50 deg<=64 light<=16 conn" or "subgraph".
  [[nodiscard]] std::string describe() const;
};

/// Self-description: everything the CLI enumeration, the README table and
/// the registry's validation need, with no construction run.
struct AlgorithmInfo {
  std::string name;                  ///< registry key, e.g. "relaxed-dist".
  std::string summary;               ///< one-line description.
  std::string reference;             ///< paper / source attribution.
  std::vector<OptionSpec> options;   ///< accepted options with defaults.
  Capabilities caps;
  /// The obs span names this algorithm's construction emits — ONE shared
  /// phase schema for every consumer (the registry diffs obs::span_totals()
  /// around construct() and reports exactly these, in this order). Empty
  /// means the construction is opaque: {"construct"} only. The API test
  /// fails when a declared phase never fires on a covered scenario.
  std::vector<std::string> phases;
};

/// Input to one build: a generated instance, the paper's parameterization
/// and the algorithm-specific options. The instance must outlive the call.
struct BuildRequest {
  const ubg::UbgInstance& inst;
  core::Params params;
  Options options;
};

/// Uniform quality record measured by the registry (against the algorithm's
/// metric reference graph — the input α-UBG, or its energy reweighting for
/// transformed-metric constructions).
struct QualityMetrics {
  int edges = 0;
  double edges_per_node = 0.0;
  int max_degree = 0;
  double stretch = 0.0;      ///< max edge stretch, capped at 64.
  double lightness = 0.0;    ///< w(G')/w(MSF(reference)).
  double power_ratio = 0.0;  ///< power_cost(G') / power_cost(reference).
};

/// What an adapter's construct() returns; the registry wraps it into the
/// user-facing BuildResult (timing + uniform metrics). Guarantees and the
/// metric reference are declared via their own virtuals so that the timed
/// construct() call contains construction work only.
struct Construction {
  graph::Graph spanner;
  std::vector<core::PhaseStats> phases;  ///< optional per-phase trace.
};

/// One phase of a build, as measured by the obs layer (name is the obs span
/// name; count is how many times the span fired during construct()).
struct PhaseCost {
  std::string name;
  std::int64_t count = 0;
  double seconds = 0.0;
};

/// Outcome of AlgorithmRegistry::build.
struct BuildResult {
  graph::Graph spanner;
  double seconds = 0.0;  ///< wall time of construction only (no measurement).
  QualityMetrics metrics;
  Guarantees guarantees;
  std::vector<core::PhaseStats> phases;
  /// The graph `metrics` were measured against when it is not the input UBG
  /// (transformed-metric constructions) — consumers verifying the result
  /// independently must compare against this same reference.
  std::optional<graph::Graph> metric_reference;
  /// Per-phase wall costs in AlgorithmInfo::phases order, populated only
  /// when obs::enabled(): the registry diffs obs::span_totals() around the
  /// construct() call and filters to the declared schema, so every
  /// algorithm reports phases through the same pipeline. Phases that did
  /// not fire (e.g. every bin empty) are omitted.
  std::vector<PhaseCost> phase_breakdown;
};

/// A named topology-control construction. Implementations are stateless;
/// every per-request knob arrives via BuildRequest.
class SpannerAlgorithm {
 public:
  virtual ~SpannerAlgorithm() = default;

  [[nodiscard]] virtual const AlgorithmInfo& info() const = 0;

  /// The guarantees declared for this concrete request. Purely
  /// request-derived (never depends on the construction's output) and run
  /// outside the timed window — predicates like gray_zone_closed are free to
  /// scan the instance here without skewing BuildResult::seconds.
  [[nodiscard]] virtual Guarantees guarantees(const BuildRequest& req) const = 0;

  /// The graph quality metrics are measured against, when it is not the
  /// input UBG itself (e.g. the energy reweighting for transformed-metric
  /// constructions). Run outside the timed window.
  [[nodiscard]] virtual std::optional<graph::Graph> metric_reference(const BuildRequest&) const {
    return std::nullopt;
  }

  /// Run the construction. The registry has already validated options and
  /// capabilities when this is called; only this call is timed into
  /// BuildResult::seconds. \throws std::invalid_argument on request values
  /// outside the algorithm's domain.
  [[nodiscard]] virtual Construction construct(const BuildRequest& req) const = 0;
};

/// String-keyed registry over every known construction. The global instance
/// (`registry()`) is pre-populated with all built-in algorithms.
class AlgorithmRegistry {
 public:
  AlgorithmRegistry() = default;
  AlgorithmRegistry(const AlgorithmRegistry&) = delete;
  AlgorithmRegistry& operator=(const AlgorithmRegistry&) = delete;

  /// \throws std::invalid_argument on a duplicate or empty name.
  void add(std::unique_ptr<SpannerAlgorithm> algo);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// \throws std::invalid_argument naming the available algorithms when
  /// `name` is unknown.
  [[nodiscard]] const SpannerAlgorithm& at(const std::string& name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] int size() const noexcept { return static_cast<int>(algos_.size()); }

  /// The one entry point every consumer builds through: resolves `name`,
  /// rejects unknown options (and dim-2-only algorithms on higher-dimensional
  /// instances), validates params, times the construction and measures the
  /// uniform quality metrics. Pass measure=false when the caller discards
  /// the metrics (e.g. it only wants the spanner): the superlinear
  /// measurements (stretch, lightness, power) are skipped and left zero, and
  /// check_guarantees must not be applied to such a result. \throws
  /// std::invalid_argument on any validation failure.
  [[nodiscard]] BuildResult build(const std::string& name, const BuildRequest& req,
                                  bool measure = true) const;

 private:
  std::map<std::string, std::unique_ptr<SpannerAlgorithm>> algos_;
};

/// The process-wide registry, populated with the built-in algorithms on
/// first use (thread-safe via static-local initialization).
[[nodiscard]] const AlgorithmRegistry& registry();

/// Register every built-in construction into `reg` (exposed so tests can
/// build private registries).
void register_builtin_algorithms(AlgorithmRegistry& reg);

/// Check `result`'s declared guarantees against independent measurements on
/// `inst`. Returns an empty string when every declared guarantee holds, else
/// a description of the first violation. Shared by tests and the CLI.
[[nodiscard]] std::string check_guarantees(const ubg::UbgInstance& inst, const BuildResult& result);

/// True iff every node pair at distance <= 1 is a G-edge (the instance is a
/// "closed" UDG — always-connect gray zone). Proximity-graph baselines
/// (Gabriel, RNG, Yao, Θ) only preserve connectivity on closed instances,
/// so their adapters condition that declared guarantee on this predicate.
[[nodiscard]] bool gray_zone_closed(const ubg::UbgInstance& inst);

}  // namespace localspan::api
