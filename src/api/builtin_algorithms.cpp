/// \file builtin_algorithms.cpp
/// Adapters registering every construction in the repo behind the unified
/// SpannerAlgorithm interface. Each adapter is self-describing (name, option
/// schema with defaults, capability flags) and declares, per request, exactly
/// the guarantees its construction carries — the scenario-matrix API test
/// enforces the declared subset and nothing more.
///
/// Guarantee policy constants follow core/verify.hpp: the paper's theorems
/// give O(1) bounds without explicit constants, so certification (and thus
/// declaration) uses the repo-wide policy caps VerifyCaps{64, 16.0}.

#include <stdexcept>

#include "api/spanner_algorithm.hpp"
#include "baseline/gabriel.hpp"
#include "baseline/rng_graph.hpp"
#include "baseline/yao.hpp"
#include "core/distributed.hpp"
#include "core/greedy.hpp"
#include "core/relaxed_greedy.hpp"
#include "core/verify.hpp"
#include "ext/energy.hpp"
#include "ext/fault_tolerant.hpp"
#include "graph/mst.hpp"

namespace localspan::api {

namespace {

const core::VerifyCaps kPolicyCaps{};

/// Shared by every adapter with a parallel construction path. 0 defers to
/// the LOCALSPAN_THREADS env default (1 when unset); any value produces a
/// bit-identical topology (tests/test_parallel.cpp enforces this).
const OptionSpec kThreadsSpec{
    "threads", OptionType::kInt, "0",
    "worker threads for the parallel passes (0 = LOCALSPAN_THREADS env, else 1); "
    "output is bit-identical for every value"};

/// The relaxed-greedy family declares the paper's three properties: stretch
/// always (Theorem 10 holds for both presets), the degree cap only with the
/// covered-edge filter on (Theorem 11 needs it), the lightness cap only when
/// the Theorem 13 weight conditions hold AND redundancy removal ran.
[[nodiscard]] Guarantees relaxed_guarantees(const BuildRequest& req,
                                            const core::RelaxedGreedyOptions& opts) {
  Guarantees g;
  g.connectivity = true;
  g.stretch = req.params.t;
  if (opts.covered_edge_filter) g.max_degree = kPolicyCaps.max_degree;
  if (opts.redundancy_removal && req.params.satisfies_weight_conditions()) {
    g.lightness = kPolicyCaps.lightness;
  }
  return g;
}

[[nodiscard]] core::RelaxedGreedyOptions relaxed_options(const BuildRequest& req) {
  core::RelaxedGreedyOptions opts;
  opts.redundancy_removal = req.options.get_bool("redundancy", true);
  opts.covered_edge_filter = req.options.get_bool("covered-filter", true);
  // Only present for algorithms whose schema declares kThreadsSpec (the
  // registry rejects it elsewhere); get_int's default keeps the rest serial.
  opts.threads = req.options.get_int("threads", 0);
  return opts;
}

const std::vector<OptionSpec> kRelaxedOptionSchema{
    {"redundancy", OptionType::kBool, "true", "run the §2.2.5 redundant-edge-removal pass"},
    {"covered-filter", OptionType::kBool, "true", "run the §2.2.2 θ-cone covered-edge filter"},
};

/// Phase schema of core::relaxed_greedy (the obs span names its per-bin
/// pipeline emits). Declared by every adapter that calls it directly;
/// the distributed simulator runs its own pipeline and stays opaque.
const std::vector<std::string> kRelaxedPhaseSchema{
    "construct", "rg.bins",          "rg.phase0",  "rg.cover",      "rg.filter",
    "rg.select", "rg.cluster_graph", "rg.queries", "rg.redundancy"};

class RelaxedAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "relaxed",
        "sequential relaxed greedy spanner (the paper's core algorithm)",
        "Damian-Pandit-Pemmaraju PODC'06 §2",
        [] {
          std::vector<OptionSpec> opts = kRelaxedOptionSchema;
          opts.push_back(kThreadsSpec);
          return opts;
        }(),
        {},
        kRelaxedPhaseSchema};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest& req) const override {
    return relaxed_guarantees(req, relaxed_options(req));
  }

  Construction construct(const BuildRequest& req) const override {
    core::RelaxedGreedyResult r = core::relaxed_greedy(req.inst, req.params, relaxed_options(req));
    return {std::move(r.spanner), std::move(r.phases)};
  }
};

/// Parse the `net` option family into core::NetOptions. Fault knobs are only
/// meaningful on the async transport, so any of them under net=sync is a
/// hard error (the no-effect rejection policy every CLI surface follows).
[[nodiscard]] core::NetOptions distributed_net_options(const BuildRequest& req) {
  core::NetOptions net;
  const std::string mode = req.options.get_string("net", "sync");
  if (mode == "sync") {
    net.mode = core::NetMode::kSync;
  } else if (mode == "async") {
    net.mode = core::NetMode::kAsync;
  } else {
    throw std::invalid_argument("relaxed-dist: option net must be 'sync' or 'async', got '" +
                                mode + "'");
  }
  if (net.mode == core::NetMode::kSync) {
    for (const char* knob : {"loss", "dup", "reorder", "straggle", "partition", "net-seed",
                             "retries", "net-transcript"}) {
      if (req.options.has(knob)) {
        throw std::invalid_argument(std::string("relaxed-dist: option ") + knob +
                                    " has no effect under net=sync (pass net=async)");
      }
    }
    return net;
  }
  runtime::AdversaryConfig& adv = net.adversary;
  adv.seed = static_cast<std::uint64_t>(req.options.get_int("net-seed", 1));
  adv.drop_prob = req.options.get_double("loss", 0.0);
  adv.dup_prob = req.options.get_double("dup", 0.0);
  adv.reorder_prob = req.options.get_double("reorder", 0.0);
  adv.straggler_fraction = req.options.get_double("straggle", 0.0);
  const std::string part = req.options.get_string("partition", "");
  if (!part.empty()) {
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument(
          "relaxed-dist: option partition must be 'START:HEAL' virtual times "
          "(HEAL <= START means the cut never heals)");
    }
    runtime::AdversaryConfig::Partition p;
    p.start = parse_double("option partition (start)", part.substr(0, colon));
    p.heal = parse_double("option partition (heal)", part.substr(colon + 1));
    p.side_seed = adv.seed;
    adv.partitions.push_back(p);
  }
  net.reliable.max_attempts = req.options.get_int("retries", 24);
  net.record_transcript = req.options.get_bool("net-transcript", false);
  adv.validate();
  net.reliable.validate();
  return net;
}

class DistributedAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "relaxed-dist",
        "distributed relaxed greedy on the message-passing simulator (sync or adversarial async)",
        "Damian-Pandit-Pemmaraju PODC'06 §3",
        [] {
          std::vector<OptionSpec> opts = kRelaxedOptionSchema;
          opts.push_back(kThreadsSpec);
          opts.push_back({"seed", OptionType::kInt, "1", "seed for the Luby MIS draws"});
          opts.push_back({"net", OptionType::kString, "sync",
                          "transport: sync (lockstep rounds) or async (adversarial event queue)"});
          opts.push_back({"loss", OptionType::kDouble, "0", "async: per-transmission drop probability"});
          opts.push_back({"dup", OptionType::kDouble, "0", "async: per-transmission duplication probability"});
          opts.push_back({"reorder", OptionType::kDouble, "0",
                          "async: probability of a heavy-tail reordering delay"});
          opts.push_back({"straggle", OptionType::kDouble, "0",
                          "async: fraction of nodes with 8x link latency"});
          opts.push_back({"partition", OptionType::kString, "",
                          "async: 'START:HEAL' timed partition (HEAL <= START never heals)"});
          opts.push_back({"net-seed", OptionType::kInt, "1", "async: adversary seed"});
          opts.push_back({"retries", OptionType::kInt, "24",
                          "async: per-message retry budget before RetryBudgetExhausted"});
          opts.push_back({"net-transcript", OptionType::kBool, "false",
                          "async: record the per-delivery replay transcript"});
          return opts;
        }(),
        {.dim2_only = false, .needs_k = false, .uses_params = true, .randomized = true,
         .distributed = true},
        {}};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest& req) const override {
    return relaxed_guarantees(req, relaxed_options(req));
  }

  Construction construct(const BuildRequest& req) const override {
    const core::RelaxedGreedyOptions opts = relaxed_options(req);
    const auto seed = static_cast<std::uint64_t>(req.options.get_int("seed", 1));
    const core::NetOptions net = distributed_net_options(req);
    core::DistributedResult r =
        core::distributed_relaxed_greedy(req.inst, req.params, opts, seed, net);
    return {std::move(r.base.spanner), std::move(r.base.phases)};
  }
};

class GreedyAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "greedy",
        "classical SEQ-GREEDY t-spanner (strongest quality baseline)",
        "Althoefer et al. [4], paper §1.4",
        {},
        {},
        {}};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest& req) const override {
    Guarantees g;
    g.connectivity = true;
    g.stretch = req.params.t;
    g.max_degree = kPolicyCaps.max_degree;
    g.lightness = kPolicyCaps.lightness;
    return g;
  }

  Construction construct(const BuildRequest& req) const override {
    return {core::seq_greedy(req.inst.g, req.params.t), {}};
  }
};

/// Yao and Θ keep one G-neighbor per cone. On a *closed* instance (every
/// pair at distance <= 1 is an edge) with k >= 7 cones the classical
/// shorter-edge induction applies and connectivity is preserved; on general
/// α-UBGs the witness edge may be missing, so only subgraph is declared.
[[nodiscard]] Guarantees cone_guarantees(const BuildRequest& req, int k) {
  Guarantees g;
  g.connectivity = k >= 7 && gray_zone_closed(req.inst);
  return g;
}

class YaoAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "yao",
        "symmetrized Yao graph: nearest G-neighbor per cone",
        "Yao [20], paper §1.3",
        {{"k", OptionType::kInt, "8", "number of cones (>= 3)"}},
        {.dim2_only = true, .needs_k = true, .uses_params = false, .randomized = false},
        {}};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest& req) const override {
    return cone_guarantees(req, req.options.get_int("k", 8));
  }

  Construction construct(const BuildRequest& req) const override {
    return {baseline::yao_graph(req.inst, req.options.get_int("k", 8)), {}};
  }
};

class ThetaAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "theta",
        "Θ-graph: nearest projection onto the cone bisector per cone",
        "theta-graph sibling of Yao [20]; Lemma 3 analysis",
        {{"k", OptionType::kInt, "8", "number of cones (>= 3)"}},
        {.dim2_only = true, .needs_k = true, .uses_params = false, .randomized = false},
        {}};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest& req) const override {
    return cone_guarantees(req, req.options.get_int("k", 8));
  }

  Construction construct(const BuildRequest& req) const override {
    return {baseline::theta_graph(req.inst, req.options.get_int("k", 8)), {}};
  }
};

class GabrielAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "gabriel",
        "Gabriel graph: drop edges with a witness inside the diameter ball",
        "planar-backbone family, paper §1.3 [13-15]",
        {},
        {.dim2_only = false, .needs_k = false, .uses_params = false, .randomized = false},
        {}};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest& req) const override {
    Guarantees g;
    g.connectivity = gray_zone_closed(req.inst);
    return g;
  }

  Construction construct(const BuildRequest& req) const override {
    return {baseline::gabriel_graph(req.inst), {}};
  }
};

class RngAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "rng",
        "relative neighborhood graph (the XTC topology)",
        "XTC [19], paper §1.3",
        {},
        {.dim2_only = false, .needs_k = false, .uses_params = false, .randomized = false},
        {}};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest& req) const override {
    Guarantees g;
    g.connectivity = gray_zone_closed(req.inst);
    return g;
  }

  Construction construct(const BuildRequest& req) const override {
    return {baseline::relative_neighborhood_graph(req.inst), {}};
  }
};

class EdgeFaultTolerantAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "ft-edge",
        "greedy k-edge fault-tolerant t-spanner",
        "paper §1.6 ext. 1, Czumaj-Zhao [2]",
        {{"k", OptionType::kInt, "1", "number of edge faults tolerated (>= 0)"}, kThreadsSpec},
        {.dim2_only = false, .needs_k = true, .uses_params = true, .randomized = false},
        {}};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest& req) const override {
    Guarantees g;
    g.connectivity = true;
    g.stretch = req.params.t;
    return g;
  }

  Construction construct(const BuildRequest& req) const override {
    return {ext::fault_tolerant_greedy(req.inst.g, req.params.t, req.options.get_int("k", 1),
                                       req.options.get_int("threads", 0)),
            {}};
  }
};

class VertexFaultTolerantAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "ft-vertex",
        "greedy k-vertex fault-tolerant t-spanner (denser, stronger guarantee)",
        "paper §1.6 ext. 1, Czumaj-Zhao [2]",
        {{"k", OptionType::kInt, "1", "number of vertex faults tolerated (>= 0)"}, kThreadsSpec},
        {.dim2_only = false, .needs_k = true, .uses_params = true, .randomized = false},
        {}};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest& req) const override {
    Guarantees g;
    g.connectivity = true;
    g.stretch = req.params.t;
    return g;
  }

  Construction construct(const BuildRequest& req) const override {
    return {ext::fault_tolerant_greedy_vertex(req.inst.g, req.params.t,
                                              req.options.get_int("k", 1),
                                              req.options.get_int("threads", 0)),
            {}};
  }
};

class EnergyAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "energy",
        "relaxed greedy under energy weights c*len^gamma (metrics vs the reweighted graph)",
        "paper §1.6 ext. 2-3",
        [] {
          std::vector<OptionSpec> opts = kRelaxedOptionSchema;
          opts.push_back({"c", OptionType::kDouble, "1.0", "energy cost scale (> 0)"});
          opts.push_back({"gamma", OptionType::kDouble, "2.0", "path-loss exponent (>= 1)"});
          opts.push_back(kThreadsSpec);
          return opts;
        }(),
        {},
        kRelaxedPhaseSchema};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest& req) const override {
    return relaxed_guarantees(req, relaxed_options(req));
  }

  // Guarantees hold in the energy metric; measure against the reweighted
  // input graph accordingly.
  std::optional<graph::Graph> metric_reference(const BuildRequest& req) const override {
    return ext::energy_reweight(req.inst, req.inst.g, req.options.get_double("c", 1.0),
                                req.options.get_double("gamma", 2.0));
  }

  Construction construct(const BuildRequest& req) const override {
    core::RelaxedGreedyOptions opts = relaxed_options(req);
    opts.weight_transform = ext::energy_transform(req.options.get_double("c", 1.0),
                                                  req.options.get_double("gamma", 2.0));
    core::RelaxedGreedyResult r = core::relaxed_greedy(req.inst, req.params, opts);
    return {std::move(r.spanner), std::move(r.phases)};
  }
};

class MstAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "mst",
        "minimum spanning forest (weight lower bound; unbounded stretch)",
        "Kruskal; E6 reference row",
        {},
        {.dim2_only = false, .needs_k = false, .uses_params = false, .randomized = false},
        {}};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest&) const override {
    Guarantees g;
    g.connectivity = true;
    g.lightness = 1.0;  // the MSF is the lightness normalizer itself.
    return g;
  }

  Construction construct(const BuildRequest& req) const override {
    return {graph::minimum_spanning_forest(req.inst.g), {}};
  }
};

class MaxPowerAlgorithm final : public SpannerAlgorithm {
 public:
  const AlgorithmInfo& info() const override {
    static const AlgorithmInfo kInfo{
        "maxpower",
        "no topology control: the full α-UBG itself (stretch-1 reference)",
        "E6 reference row",
        {},
        {.dim2_only = false, .needs_k = false, .uses_params = false, .randomized = false},
        {}};
    return kInfo;
  }

  Guarantees guarantees(const BuildRequest&) const override {
    Guarantees g;
    g.connectivity = true;
    g.stretch = 1.0;
    return g;
  }

  Construction construct(const BuildRequest& req) const override { return {req.inst.g, {}}; }
};

}  // namespace

void register_builtin_algorithms(AlgorithmRegistry& reg) {
  reg.add(std::make_unique<RelaxedAlgorithm>());
  reg.add(std::make_unique<DistributedAlgorithm>());
  reg.add(std::make_unique<GreedyAlgorithm>());
  reg.add(std::make_unique<YaoAlgorithm>());
  reg.add(std::make_unique<ThetaAlgorithm>());
  reg.add(std::make_unique<GabrielAlgorithm>());
  reg.add(std::make_unique<RngAlgorithm>());
  reg.add(std::make_unique<EdgeFaultTolerantAlgorithm>());
  reg.add(std::make_unique<VertexFaultTolerantAlgorithm>());
  reg.add(std::make_unique<EnergyAlgorithm>());
  reg.add(std::make_unique<MstAlgorithm>());
  reg.add(std::make_unique<MaxPowerAlgorithm>());
}

}  // namespace localspan::api
