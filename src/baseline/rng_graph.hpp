#pragma once
/// \file rng_graph.hpp
/// Relative Neighborhood Graph baseline (sparser sibling of the Gabriel
/// graph; the XTC algorithm of [19] computes exactly this topology).
///
/// Edge {u,v} survives iff no witness w has max(|uw|, |vw|) < |uv| — i.e.
/// nobody is strictly closer to both endpoints than they are to each other.
/// RNG ⊆ Gabriel; even sparser, even worse stretch. E6 baseline row.

#include "graph/graph.hpp"
#include "ubg/generator.hpp"

namespace localspan::baseline {

[[nodiscard]] graph::Graph relative_neighborhood_graph(const ubg::UbgInstance& inst);

}  // namespace localspan::baseline
