#pragma once
/// \file gabriel.hpp
/// Gabriel graph baseline (the planar-topology family of §1.3: [13][14][15]).
///
/// Edge {u,v} of G survives iff no third node lies strictly inside the ball
/// with diameter uv. Intersected with a UDG this is the classical planar
/// backbone used for geometric routing; it keeps connectivity and planarity
/// (d=2) but has unbounded stretch and degree in the worst case — the E6
/// table quantifies where it loses to the spanner.

#include "graph/graph.hpp"
#include "ubg/generator.hpp"

namespace localspan::baseline {

[[nodiscard]] graph::Graph gabriel_graph(const ubg::UbgInstance& inst);

}  // namespace localspan::baseline
