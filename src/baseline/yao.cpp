#include "baseline/yao.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "geom/cones.hpp"

namespace localspan::baseline {

graph::Graph yao_graph(const ubg::UbgInstance& inst, int k) {
  if (inst.config.dim != 2) throw std::invalid_argument("yao_graph: defined for dim == 2");
  const geom::YaoCones2D cones(k);
  const int n = inst.g.n();
  graph::Graph out(n);
  for (int u = 0; u < n; ++u) {
    // Nearest G-neighbor per cone (ties by id for determinism).
    std::vector<int> best(static_cast<std::size_t>(k), -1);
    std::vector<double> best_d(static_cast<std::size_t>(k), 0.0);
    for (const graph::Neighbor& nb : inst.g.neighbors(u)) {
      // A coincident neighbor has no direction: keep the edge outright (it
      // is trivially the nearest in "its" cone; clustered deployments clamp
      // points to the box and can collide exactly).
      if (geom::sq_distance(inst.points[static_cast<std::size_t>(u)],
                            inst.points[static_cast<std::size_t>(nb.to)]) == 0.0) {
        out.add_edge(u, nb.to, nb.w);
        continue;
      }
      const int s = cones.sector_of(inst.points[static_cast<std::size_t>(u)],
                                    inst.points[static_cast<std::size_t>(nb.to)]);
      const auto si = static_cast<std::size_t>(s);
      if (best[si] == -1 || nb.w < best_d[si] || (nb.w == best_d[si] && nb.to < best[si])) {
        best[si] = nb.to;
        best_d[si] = nb.w;
      }
    }
    for (int s = 0; s < k; ++s) {
      const auto si = static_cast<std::size_t>(s);
      if (best[si] != -1) out.add_edge(u, best[si], best_d[si]);
    }
  }
  return out;
}

graph::Graph theta_graph(const ubg::UbgInstance& inst, int k) {
  if (inst.config.dim != 2) throw std::invalid_argument("theta_graph: defined for dim == 2");
  const geom::YaoCones2D cones(k);
  const int n = inst.g.n();
  graph::Graph out(n);
  const double sector = 2.0 * std::numbers::pi / k;
  for (int u = 0; u < n; ++u) {
    std::vector<int> best(static_cast<std::size_t>(k), -1);
    std::vector<double> best_proj(static_cast<std::size_t>(k), 0.0);
    const auto& pu = inst.points[static_cast<std::size_t>(u)];
    for (const graph::Neighbor& nb : inst.g.neighbors(u)) {
      const auto& pv = inst.points[static_cast<std::size_t>(nb.to)];
      if (geom::sq_distance(pu, pv) == 0.0) {  // no direction: keep outright
        out.add_edge(u, nb.to, nb.w);
        continue;
      }
      const int s = cones.sector_of(pu, pv);
      // Projection of u->v onto the sector bisector direction.
      const double bisector = (s + 0.5) * sector;
      const double proj = (pv[0] - pu[0]) * std::cos(bisector) +
                          (pv[1] - pu[1]) * std::sin(bisector);
      const auto si = static_cast<std::size_t>(s);
      if (best[si] == -1 || proj < best_proj[si] ||
          (proj == best_proj[si] && nb.to < best[si])) {
        best[si] = nb.to;
        best_proj[si] = proj;
      }
    }
    for (int s = 0; s < k; ++s) {
      const auto si = static_cast<std::size_t>(s);
      if (best[si] != -1) out.add_edge(u, best[si], inst.dist(u, best[si]));
    }
  }
  return out;
}

}  // namespace localspan::baseline
