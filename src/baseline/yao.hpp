#pragma once
/// \file yao.hpp
/// Yao graph baseline (Yao [20], used by the degree proof of Theorem 11).
///
/// Around every node the plane is split into k equal cones; the node keeps
/// an edge to its nearest G-neighbor in each cone. The classical topology-
/// control baseline: bounded out-degree by construction, stretch
/// ~1/(cos(2π/k) − sin(2π/k)) on dense UDGs, but no weight guarantee —
/// exactly the gap the paper's algorithm closes (experiment E6).
/// Defined here for d = 2 (the classical construction).

#include "graph/graph.hpp"
#include "ubg/generator.hpp"

namespace localspan::baseline {

/// Build the (symmetrized) Yao graph over the instance's UBG edges: each
/// node marks its nearest neighbor per cone; an edge survives if either
/// endpoint marked it. \throws std::invalid_argument unless dim == 2, k >= 3.
[[nodiscard]] graph::Graph yao_graph(const ubg::UbgInstance& inst, int k);

/// The Θ-graph sibling: per cone, keep the neighbor whose PROJECTION onto
/// the cone's bisector is nearest (the classical theta-graph rule, which
/// admits the standard 1/(cos θ − sin θ) stretch analysis underpinning
/// Lemma 3). Same preconditions as yao_graph.
[[nodiscard]] graph::Graph theta_graph(const ubg::UbgInstance& inst, int k);

}  // namespace localspan::baseline
