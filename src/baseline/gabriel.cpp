#include "baseline/gabriel.hpp"

#include "geom/grid.hpp"

namespace localspan::baseline {

graph::Graph gabriel_graph(const ubg::UbgInstance& inst) {
  const int n = inst.g.n();
  graph::Graph out(n);
  const geom::Grid grid(inst.points, 1.0);
  for (const graph::Edge& e : inst.g.edges()) {
    const geom::Point& pu = inst.points[static_cast<std::size_t>(e.u)];
    const geom::Point& pv = inst.points[static_cast<std::size_t>(e.v)];
    geom::Point mid(pu.dim());
    for (int kk = 0; kk < pu.dim(); ++kk) mid[kk] = 0.5 * (pu[kk] + pv[kk]);
    const double r2 = geom::sq_distance(pu, pv) / 4.0;
    bool blocked = false;
    // Any witness strictly inside the diameter ball lies within |uv|/2 <= 1/2
    // of the midpoint; enumerate grid candidates around the closer endpoint.
    grid.for_neighbors_within(e.u, 1.0, [&](int w) {
      if (blocked || w == e.v) return;
      if (geom::sq_distance(mid, inst.points[static_cast<std::size_t>(w)]) < r2 * (1.0 - 1e-12)) {
        blocked = true;
      }
    });
    if (!blocked) out.add_edge(e.u, e.v, e.w);
  }
  return out;
}

}  // namespace localspan::baseline
