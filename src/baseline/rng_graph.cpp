#include "baseline/rng_graph.hpp"

#include <algorithm>

#include "geom/grid.hpp"

namespace localspan::baseline {

graph::Graph relative_neighborhood_graph(const ubg::UbgInstance& inst) {
  const int n = inst.g.n();
  graph::Graph out(n);
  const geom::Grid grid(inst.points, 1.0);
  for (const graph::Edge& e : inst.g.edges()) {
    const geom::Point& pu = inst.points[static_cast<std::size_t>(e.u)];
    const geom::Point& pv = inst.points[static_cast<std::size_t>(e.v)];
    const double duv = e.w;
    bool blocked = false;
    // A witness has |uw| < |uv| <= 1, so it is grid-reachable from u.
    grid.for_neighbors_within(e.u, 1.0, [&](int w) {
      if (blocked || w == e.v) return;
      const geom::Point& pw = inst.points[static_cast<std::size_t>(w)];
      const double lune = std::max(geom::distance(pu, pw), geom::distance(pv, pw));
      if (lune < duv * (1.0 - 1e-12)) blocked = true;
    });
    if (!blocked) out.add_edge(e.u, e.v, e.w);
  }
  return out;
}

}  // namespace localspan::baseline
