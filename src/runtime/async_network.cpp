#include "runtime/async_network.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace localspan::runtime {

namespace {

/// splitmix64 finalizer — the same hashing idiom as mis/luby.cpp's
/// node_value, so every draw is a pure function of (seed, counter, salt).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t h) {
  // 53 mantissa bits -> uniform [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void check_prob(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("AdversaryConfig: ") + name +
                                " must be a probability in [0, 1]");
  }
}

void check_nonneg(double x, const char* name) {
  if (!(x >= 0.0) || !std::isfinite(x)) {
    throw std::invalid_argument(std::string("AdversaryConfig: ") + name +
                                " must be finite and >= 0");
  }
}

std::string fmt2(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", x);
  return buf;
}

}  // namespace

void AdversaryConfig::validate() const {
  check_nonneg(base_latency, "base_latency");
  check_nonneg(jitter, "jitter");
  check_prob(drop_prob, "drop_prob");
  check_prob(dup_prob, "dup_prob");
  check_prob(reorder_prob, "reorder_prob");
  check_nonneg(reorder_spread, "reorder_spread");
  check_prob(straggler_fraction, "straggler_fraction");
  if (!(straggler_factor >= 1.0) || !std::isfinite(straggler_factor)) {
    throw std::invalid_argument("AdversaryConfig: straggler_factor must be finite and >= 1");
  }
  if (base_latency <= 0.0 && jitter <= 0.0) {
    throw std::invalid_argument(
        "AdversaryConfig: base_latency and jitter cannot both be zero "
        "(zero-latency delivery collapses virtual time)");
  }
  for (const Partition& p : partitions) {
    check_nonneg(p.start, "partition.start");
    check_nonneg(p.heal, "partition.heal");
  }
}

std::string AdversaryConfig::describe() const {
  std::string s = "loss=" + fmt2(drop_prob) + " dup=" + fmt2(dup_prob) +
                  " reorder=" + fmt2(reorder_prob) + " straggle=" + fmt2(straggler_fraction);
  if (!partitions.empty()) s += " partition=" + std::to_string(partitions.size());
  return s;
}

namespace {

/// net.async.* observability: physical-transport view of the simulation.
struct AsyncMetrics {
  obs::MetricId posted = obs::counter_id("net.async.posted");
  obs::MetricId delivered = obs::counter_id("net.async.delivered");
  obs::MetricId dropped = obs::counter_id("net.async.dropped");
  obs::MetricId partition_dropped = obs::counter_id("net.async.partition_dropped");
  obs::MetricId duplicated = obs::counter_id("net.async.duplicated");
  obs::MetricId reordered = obs::counter_id("net.async.reordered");
  obs::MetricId straggled = obs::counter_id("net.async.straggled");
  obs::MetricId in_flight = obs::gauge_id("net.async.in_flight");
  obs::MetricId latency = obs::histogram_id("net.async.delivery_latency_x1000");
};

const AsyncMetrics& async_metrics() {
  static const AsyncMetrics m;
  return m;
}

}  // namespace

AsyncNetwork::AsyncNetwork(const graph::Graph& topo, AdversaryConfig cfg)
    : topo_(topo), cfg_(std::move(cfg)) {
  cfg_.validate();
}

double AsyncNetwork::draw(std::uint64_t salt) {
  return to_unit(mix64(cfg_.seed ^ mix64(draw_counter_++ ^ mix64(salt))));
}

bool AsyncNetwork::is_straggler(int v) const {
  if (cfg_.straggler_fraction <= 0.0) return false;
  const std::uint64_t h = mix64(cfg_.seed ^ mix64(0x5742414cULL ^ static_cast<std::uint64_t>(v)));
  return to_unit(h) < cfg_.straggler_fraction;
}

bool AsyncNetwork::partitioned(int a, int b, double t) const {
  for (const AdversaryConfig::Partition& p : cfg_.partitions) {
    const bool active = p.heal > p.start ? (t >= p.start && t < p.heal) : (t >= p.start);
    if (!active) continue;
    const auto side = [&](int v) {
      return mix64(p.side_seed ^ mix64(0x50415254ULL ^ static_cast<std::uint64_t>(v))) & 1ULL;
    };
    if (side(a) != side(b)) return true;
  }
  return false;
}

void AsyncNetwork::enqueue_delivery(double latency, int from, int to, const Frame& f) {
  AsyncEvent ev;
  ev.time = now_ + latency;
  ev.posted_at = now_;
  ev.kind = AsyncEventKind::kDeliver;
  ev.from = from;
  ev.to = to;
  ev.frame = f;
  queue_.push(QueuedEvent{ev.time, order_++, ev});
  if (obs::enabled()) {
    obs::gauge_set(async_metrics().in_flight,
                   static_cast<long long>(queue_.size()));
  }
}

void AsyncNetwork::post(int from, int to, const Frame& f) {
  const int n = topo_.n();
  detail::check_vertex(n, from, "AsyncNetwork::post");
  detail::check_vertex(n, to, "AsyncNetwork::post");
  detail::check_packet(f.payload, "AsyncNetwork::post");
  if (!topo_.has_edge(from, to)) {
    throw std::invalid_argument("AsyncNetwork::post: recipients must be topology neighbors");
  }

  ++stats_.posted;
  const bool obs_on = obs::enabled();
  if (obs_on) obs::counter_add(async_metrics().posted, 1);

  // The adversary decides the transmission's fate at post time, in a fixed
  // draw order (partition, drop, latency, reorder, dup) so transcripts are
  // reproducible bit-for-bit from (seed, post sequence).
  if (partitioned(from, to, now_)) {
    ++stats_.partition_dropped;
    if (obs_on) obs::counter_add(async_metrics().partition_dropped, 1);
    return;
  }
  if (cfg_.drop_prob > 0.0 && draw(0xD09ULL) < cfg_.drop_prob) {
    ++stats_.dropped;
    if (obs_on) obs::counter_add(async_metrics().dropped, 1);
    return;
  }

  double latency = cfg_.base_latency + cfg_.jitter * draw(0x1A77ULL);
  if (cfg_.reorder_prob > 0.0 && draw(0x0EDEULL) < cfg_.reorder_prob) {
    latency += cfg_.reorder_spread * draw(0x0EDFULL);
    ++stats_.reordered;
    if (obs_on) obs::counter_add(async_metrics().reordered, 1);
  }
  if (is_straggler(from) || is_straggler(to)) {
    latency *= cfg_.straggler_factor;
    ++stats_.straggled;
    if (obs_on) obs::counter_add(async_metrics().straggled, 1);
  }
  enqueue_delivery(latency, from, to, f);

  if (cfg_.dup_prob > 0.0 && draw(0xD0BULL) < cfg_.dup_prob) {
    // The duplicate takes an independent latency draw, so it may arrive
    // before or after the original — both orderings must be handled.
    double dup_latency = cfg_.base_latency + cfg_.jitter * draw(0xD0CULL);
    if (is_straggler(from) || is_straggler(to)) dup_latency *= cfg_.straggler_factor;
    ++stats_.duplicated;
    if (obs_on) obs::counter_add(async_metrics().duplicated, 1);
    enqueue_delivery(dup_latency, from, to, f);
  }
}

void AsyncNetwork::schedule_timer(double delay, std::uint64_t cookie) {
  if (!(delay >= 0.0) || !std::isfinite(delay)) {
    throw std::invalid_argument("AsyncNetwork::schedule_timer: delay must be finite and >= 0");
  }
  AsyncEvent ev;
  ev.time = now_ + delay;
  ev.kind = AsyncEventKind::kTimer;
  ev.cookie = cookie;
  queue_.push(QueuedEvent{ev.time, order_++, ev});
  ++stats_.timers;
}

bool AsyncNetwork::next(AsyncEvent& out) {
  if (queue_.empty()) return false;
  const QueuedEvent qe = queue_.top();
  queue_.pop();
  now_ = qe.time;
  out = qe.event;
  if (out.kind == AsyncEventKind::kDeliver) {
    ++stats_.delivered;
    if (obs::enabled()) {
      const AsyncMetrics& m = async_metrics();
      obs::counter_add(m.delivered, 1);
      obs::gauge_set(m.in_flight, static_cast<long long>(queue_.size()));
      // Histograms take integer samples; record latency in milli-units.
      obs::histogram_record(m.latency,
                            static_cast<long long>((out.time - out.posted_at) * 1000.0));
    }
    if (record_transcript_) {
      transcript_.push_back(
          DeliveryRecord{out.time, out.from, out.to, out.frame.type, out.frame.seq});
    }
  }
  return true;
}

}  // namespace localspan::runtime
