#pragma once
/// \file ledger.hpp
/// Round/message accounting for the synchronous message-passing model of
/// §1.1: time is divided into rounds; per round every node may exchange one
/// message with each neighbor and compute arbitrarily. The ledger is the
/// single source of truth for the E4 experiment (round complexity).

#include <map>
#include <string>

namespace localspan::runtime {

/// Accumulates rounds and messages, per named algorithm section.
class RoundLedger {
 public:
  /// Charge `rounds` communication rounds and `messages` messages to a section.
  void charge(const std::string& section, long long rounds, long long messages);

  [[nodiscard]] long long rounds() const noexcept { return rounds_; }
  [[nodiscard]] long long messages() const noexcept { return messages_; }
  [[nodiscard]] const std::map<std::string, long long>& rounds_by_section() const noexcept {
    return section_rounds_;
  }

 private:
  long long rounds_ = 0;
  long long messages_ = 0;
  std::map<std::string, long long> section_rounds_;
};

}  // namespace localspan::runtime
