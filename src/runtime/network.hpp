#pragma once
/// \file network.hpp
/// A synchronous message-passing network simulator (the model of §1.1).
///
/// Nodes stage messages to neighbors during a round; `end_round()` delivers
/// them simultaneously and charges the ledger. Only topology neighbors can
/// talk — exactly the LOCAL-model constraint. Algorithms that run on derived
/// graphs (the conflict graphs J of §3.2.1/§3.2.5, whose "edges" are
/// constant-hop paths of G) instantiate a SyncNetwork over the derived
/// topology and scale the charged rounds by the hop factor.

#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/ledger.hpp"

namespace localspan::runtime {

/// Wire format: a small tagged value, enough for the MIS and gather
/// protocols the paper's algorithm needs (message size O(log n) as required).
struct Packet {
  int kind = 0;
  double value = 0.0;
  int from_payload = 0;  ///< optional secondary field (ids etc.).
};

class SyncNetwork {
 public:
  /// \param topo   communication topology (must outlive the network).
  /// \param ledger ledger charged one round per end_round(); may be null.
  /// \param section ledger section name for charges.
  SyncNetwork(const graph::Graph& topo, RoundLedger* ledger, std::string section);

  /// Stage a message for delivery at the end of this round.
  /// \throws std::invalid_argument if {from,to} is not an edge of the topology.
  void send(int from, int to, const Packet& p);

  /// Stage the same message to every neighbor of `from`.
  void broadcast(int from, const Packet& p);

  /// Deliver all staged messages; increments the round counter.
  void end_round();

  /// Messages delivered to v in the previous round, as (sender, packet).
  [[nodiscard]] const std::vector<std::pair<int, Packet>>& inbox(int v) const;

  [[nodiscard]] long long rounds() const noexcept { return rounds_; }
  [[nodiscard]] long long messages() const noexcept { return messages_; }

 private:
  const graph::Graph& topo_;
  RoundLedger* ledger_;
  std::string section_;
  std::vector<std::vector<std::pair<int, Packet>>> inbox_;
  std::vector<std::vector<std::pair<int, Packet>>> outbox_;
  long long rounds_ = 0;
  long long messages_ = 0;
};

}  // namespace localspan::runtime
