#pragma once
/// \file network.hpp
/// Message-passing network runtimes (the model of §1.1).
///
/// `Network` is the round-structured transport interface every distributed
/// protocol in the repo is written against: stage messages to topology
/// neighbors, `end_round()` to make them visible, read them back via
/// `inbox()`. Two implementations exist:
///
///   - `SyncNetwork` (this file): the lockstep synchronous simulator —
///     `end_round()` delivers every staged message simultaneously and charges
///     the ledger, exactly the LOCAL-model constraint of §1.1.
///   - `runtime::ReliableNetwork` (reliable.hpp): the same round semantics
///     reconstructed on top of the adversarial discrete-event simulator
///     (async_network.hpp) via a per-link sequencing + ack/retry protocol, so
///     protocols written for synchronous semantics run unmodified under
///     message loss, duplication, reordering and partitions.
///
/// Only topology neighbors can talk. Algorithms that run on derived graphs
/// (the conflict graphs J of §3.2.1/§3.2.5, whose "edges" are constant-hop
/// paths of G) instantiate a network over the derived topology and scale the
/// charged rounds by the hop factor.

#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/ledger.hpp"

namespace localspan::runtime {

/// Wire format: a small tagged value, enough for the MIS and gather
/// protocols the paper's algorithm needs (message size O(log n) as required).
struct Packet {
  int kind = 0;
  double value = 0.0;
  int from_payload = 0;  ///< optional secondary field (ids etc.).
};

namespace detail {
/// Shared transport validation: vertex ids must index the topology and
/// payload values must be finite (a NaN smuggled through a comparison-based
/// protocol like Luby's poisons every decision downstream).
/// \throws std::invalid_argument on an out-of-range id.
void check_vertex(int n, int v, const char* who);
/// \throws std::domain_error on a non-finite Packet::value.
void check_packet(const Packet& p, const char* who);
}  // namespace detail

/// Round-structured message transport. Inbox contents become visible at the
/// round boundary; within a round, every staged message is addressed to a
/// topology neighbor of its sender.
class Network {
 public:
  virtual ~Network() = default;

  /// Stage a message for delivery at the end of this round.
  /// \throws std::invalid_argument if an id is out of range or {from,to} is
  ///         not an edge of the topology.
  /// \throws std::domain_error if the packet value is non-finite.
  virtual void send(int from, int to, const Packet& p) = 0;

  /// Stage the same message to every neighbor of `from`.
  virtual void broadcast(int from, const Packet& p) = 0;

  /// Deliver all staged messages; increments the round counter.
  virtual void end_round() = 0;

  /// Messages delivered to v in the previous round, as (sender, packet).
  [[nodiscard]] virtual const std::vector<std::pair<int, Packet>>& inbox(int v) const = 0;

  [[nodiscard]] virtual long long rounds() const noexcept = 0;
  [[nodiscard]] virtual long long messages() const noexcept = 0;
};

class SyncNetwork final : public Network {
 public:
  /// \param topo   communication topology (must outlive the network).
  /// \param ledger ledger charged one round per end_round(); may be null.
  /// \param section ledger section name for charges.
  SyncNetwork(const graph::Graph& topo, RoundLedger* ledger, std::string section);

  void send(int from, int to, const Packet& p) override;
  void broadcast(int from, const Packet& p) override;
  void end_round() override;
  [[nodiscard]] const std::vector<std::pair<int, Packet>>& inbox(int v) const override;

  [[nodiscard]] long long rounds() const noexcept override { return rounds_; }
  [[nodiscard]] long long messages() const noexcept override { return messages_; }

 private:
  const graph::Graph& topo_;
  RoundLedger* ledger_;
  std::string section_;
  std::vector<std::vector<std::pair<int, Packet>>> inbox_;
  std::vector<std::vector<std::pair<int, Packet>>> outbox_;
  long long rounds_ = 0;
  long long messages_ = 0;
};

}  // namespace localspan::runtime
