#include "runtime/reliable.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/obs.hpp"

namespace localspan::runtime {

namespace {

enum FrameType : int { kData = 1, kAck = 2 };

struct ReliableMetrics {
  obs::MetricId retries = obs::counter_id("net.async.retries");
  obs::MetricId timeouts = obs::counter_id("net.async.timeouts");
  obs::MetricId acks = obs::counter_id("net.async.acks");
  obs::MetricId dup_suppressed = obs::counter_id("net.async.dup_suppressed");
};

const ReliableMetrics& reliable_metrics() {
  static const ReliableMetrics m;
  return m;
}

}  // namespace

void ReliableConfig::validate() const {
  if (!(rto > 0.0) || !std::isfinite(rto)) {
    throw std::invalid_argument("ReliableConfig: rto must be finite and > 0");
  }
  if (!(backoff >= 1.0) || !std::isfinite(backoff)) {
    throw std::invalid_argument("ReliableConfig: backoff must be finite and >= 1");
  }
  if (!(rto_max >= rto) || !std::isfinite(rto_max)) {
    throw std::invalid_argument("ReliableConfig: rto_max must be finite and >= rto");
  }
  if (max_attempts < 1) {
    throw std::invalid_argument("ReliableConfig: max_attempts must be >= 1");
  }
}

RetryBudgetExhausted::RetryBudgetExhausted(int from, int to, std::uint64_t seq, int attempts)
    : ReliableDeliveryError("ReliableNetwork: message " + std::to_string(from) + " -> " +
                            std::to_string(to) + " seq " + std::to_string(seq) +
                            " exhausted its retry budget after " + std::to_string(attempts) +
                            " attempts (partition never healed?)"),
      from_(from),
      to_(to),
      seq_(seq),
      attempts_(attempts) {}

bool ReliableNetwork::ReceiverLink::seen(std::uint64_t seq) const {
  return seq <= floor || ahead.count(seq) != 0;
}

void ReliableNetwork::ReceiverLink::mark(std::uint64_t seq) {
  if (seq == floor + 1) {
    ++floor;
    // Absorb any out-of-order arrivals that became contiguous.
    auto it = ahead.begin();
    while (it != ahead.end() && *it == floor + 1) {
      ++floor;
      it = ahead.erase(it);
    }
  } else if (seq > floor) {
    ahead.insert(seq);
  }
}

ReliableNetwork::ReliableNetwork(AsyncNetwork& net, ReliableConfig cfg, RoundLedger* ledger,
                                 std::string section)
    : net_(net),
      cfg_(cfg),
      ledger_(ledger),
      section_(std::move(section)),
      staging_(static_cast<std::size_t>(net.topology().n())),
      staging_seq_(static_cast<std::size_t>(net.topology().n())),
      inbox_(static_cast<std::size_t>(net.topology().n())) {
  cfg_.validate();
}

void ReliableNetwork::send(int from, int to, const Packet& p) {
  const int n = net_.topology().n();
  detail::check_vertex(n, from, "ReliableNetwork::send");
  detail::check_vertex(n, to, "ReliableNetwork::send");
  detail::check_packet(p, "ReliableNetwork::send");
  if (!net_.topology().has_edge(from, to)) {
    throw std::invalid_argument("ReliableNetwork::send: recipients must be topology neighbors");
  }
  Pending pend;
  pend.from = from;
  pend.to = to;
  pend.frame.type = kData;
  pend.frame.seq = ++send_seq_[link_key(from, to)];
  pend.frame.payload = p;
  pend.rto = cfg_.rto;
  pending_.push_back(pend);
}

void ReliableNetwork::broadcast(int from, const Packet& p) {
  detail::check_vertex(net_.topology().n(), from, "ReliableNetwork::broadcast");
  detail::check_packet(p, "ReliableNetwork::broadcast");
  for (const graph::Neighbor& nb : net_.topology().neighbors(from)) {
    Pending pend;
    pend.from = from;
    pend.to = nb.to;
    pend.frame.type = kData;
    pend.frame.seq = ++send_seq_[link_key(from, nb.to)];
    pend.frame.payload = p;
    pend.rto = cfg_.rto;
    pending_.push_back(pend);
  }
}

void ReliableNetwork::transmit(Pending& p, std::size_t index) {
  ++p.attempts;
  net_.post(p.from, p.to, p.frame);
  // One outstanding timer per unacked message; stale timers are ignored via
  // the epoch encoded in the cookie (high 32 bits = round being delivered).
  const std::uint64_t cookie =
      (static_cast<std::uint64_t>(rounds_ + 1) << 32) | static_cast<std::uint64_t>(index);
  net_.schedule_timer(p.rto, cookie);
  p.rto = std::min(p.rto * cfg_.backoff, cfg_.rto_max);
}

void ReliableNetwork::handle_data(const AsyncEvent& ev) {
  // Always ACK, even a duplicate: the ACK that retired the original copy may
  // itself have been lost, and the sender is still retransmitting.
  Frame ack;
  ack.type = kAck;
  ack.seq = ev.frame.seq;
  ack.payload = Packet{};
  net_.post(ev.to, ev.from, ack);
  ++stats_.acks_sent;
  if (obs::enabled()) obs::counter_add(reliable_metrics().acks, 1);

  ReceiverLink& link = recv_[link_key(ev.from, ev.to)];
  if (link.seen(ev.frame.seq)) {
    ++stats_.dup_suppressed;
    if (obs::enabled()) obs::counter_add(reliable_metrics().dup_suppressed, 1);
    return;
  }
  link.mark(ev.frame.seq);
  // Fresh DATA always belongs to the round in flight: every earlier round
  // reached quiescence, which implies all its sequences were seen.
  staging_[static_cast<std::size_t>(ev.to)].emplace_back(ev.from, ev.frame.payload);
  staging_seq_[static_cast<std::size_t>(ev.to)].push_back(ev.frame.seq);
}

void ReliableNetwork::handle_ack(const AsyncEvent& ev) {
  // The ACK travels receiver → sender, so the DATA link it retires is
  // (ev.to, ev.from): ev.from is acking DATA it received from ev.to.
  const auto it = awaiting_.find({link_key(ev.to, ev.from), ev.frame.seq});
  if (it == awaiting_.end() || pending_[it->second].acked) {
    ++stats_.stale_acks;
    return;
  }
  pending_[it->second].acked = true;
  --unacked_;
  ++stats_.acks_received;
}

void ReliableNetwork::handle_timer(std::uint64_t cookie) {
  const std::uint64_t epoch = cookie >> 32;
  if (epoch != static_cast<std::uint64_t>(rounds_ + 1)) return;  // stale round.
  const std::size_t index = static_cast<std::size_t>(cookie & 0xFFFFFFFFULL);
  Pending& p = pending_[index];
  if (p.acked) return;  // retired while the timer was in flight.
  ++stats_.timeouts;
  if (obs::enabled()) obs::counter_add(reliable_metrics().timeouts, 1);
  if (p.attempts >= cfg_.max_attempts) {
    throw RetryBudgetExhausted(p.from, p.to, p.frame.seq, p.attempts);
  }
  ++stats_.retransmits;
  if (obs::enabled()) obs::counter_add(reliable_metrics().retries, 1);
  transmit(p, index);
}

void ReliableNetwork::end_round() {
  // Launch every staged message, then drive the event loop to quiescence.
  awaiting_.clear();
  unacked_ = pending_.size();
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    Pending& p = pending_[i];
    awaiting_[{link_key(p.from, p.to), p.frame.seq}] = i;
    ++stats_.data_sent;
    transmit(p, i);
  }

  AsyncEvent ev;
  while (unacked_ > 0) {
    if (!net_.next(ev)) {
      // Unreachable by construction (an unacked message always has a timer
      // outstanding), but guard against protocol bugs with a typed error.
      throw ReliableDeliveryError(
          "ReliableNetwork: event queue drained with unacked messages outstanding");
    }
    if (ev.kind == AsyncEventKind::kTimer) {
      handle_timer(ev.cookie);
    } else if (ev.frame.type == kData) {
      handle_data(ev);
    } else {
      handle_ack(ev);
    }
  }

  // Quiescence: publish this round's arrivals in (sender, sequence) order —
  // exactly the SyncNetwork staging order for ascending-sender protocols.
  const long long delivered = static_cast<long long>(pending_.size());
  for (std::size_t v = 0; v < staging_.size(); ++v) {
    auto& msgs = staging_[v];
    auto& seqs = staging_seq_[v];
    std::vector<std::size_t> order(msgs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (msgs[a].first != msgs[b].first) return msgs[a].first < msgs[b].first;
      return seqs[a] < seqs[b];
    });
    auto& box = inbox_[v];
    box.clear();
    box.reserve(order.size());
    for (std::size_t idx : order) box.push_back(msgs[idx]);
    msgs.clear();
    seqs.clear();
  }
  pending_.clear();
  awaiting_.clear();

  ++rounds_;
  messages_ += delivered;
  if (ledger_ != nullptr) ledger_->charge(section_, 1, delivered);
}

const std::vector<std::pair<int, Packet>>& ReliableNetwork::inbox(int v) const {
  detail::check_vertex(static_cast<int>(inbox_.size()), v, "ReliableNetwork::inbox");
  return inbox_[static_cast<std::size_t>(v)];
}

}  // namespace localspan::runtime
