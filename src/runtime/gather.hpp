#pragma once
/// \file gather.hpp
/// Message-level k-hop topology gathering.
///
/// Every step of §3 begins with "node u gathers information from nodes at
/// most k hops away". The distributed driver charges this at the model level
/// (k rounds, degree-proportional messages); this module implements the
/// actual flooding protocol on the SyncNetwork so that the charged model can
/// be validated against a real execution (and so tests can observe per-node
/// views): each node starts knowing its incident edges and, for k rounds,
/// forwards every newly learned edge record to all neighbors. A record is
/// (u, v, w) — O(log n) bits, so message counts are records transferred,
/// matching the model's message-size discipline.

#include <vector>

#include "graph/graph.hpp"
#include "runtime/ledger.hpp"

namespace localspan::runtime {

/// Execute the k-round flooding protocol on topology g. Returns, for each
/// node, its learned view: a graph over the full id space containing every
/// edge with at least one endpoint within k hops of the node.
/// Charges `ledger` (if non-null) k rounds and one message per record
/// transferred, under section `section`.
[[nodiscard]] std::vector<graph::Graph> khop_views(const graph::Graph& g, int k,
                                                   RoundLedger* ledger = nullptr,
                                                   const std::string& section = "gather");

}  // namespace localspan::runtime
