#pragma once
/// \file parallel.hpp
/// A small deterministic task runtime for the embarrassingly parallel hot
/// loops of the construction pipeline.
///
/// The paper's algorithm is *local* by design: per-center cover sweeps,
/// per-edge redundancy ball harvests and per-vertex certification are
/// independent computations (the structure incremental/asynchronous
/// topology-control work exploits — Kluge et al., Koyuncu–Jafarkhani). The
/// runtime turns that locality into multicore speedup without giving up the
/// repo's determinism contract:
///
///   * `ThreadPool` — a fixed-size pool. `for_each(begin, end, fn)` splits
///     the index range into one *contiguous, statically computed* chunk per
///     worker (worker t always gets chunk t); the calling thread executes
///     chunk 0. Dispatch is a function pointer + context pointer, so a
///     warmed-up `for_each` performs **zero heap allocations** — the
///     property the counting-allocator suites enforce end-to-end.
///   * `WorkerPool` — a `ThreadPool` plus one `graph::DijkstraWorkspace`
///     per worker, so every retrofitted search loop hands each worker its
///     own epoch-stamped scratch and the zero-steady-state-allocation
///     property of PR 4 survives parallel execution.
///
/// Determinism contract: every parallel consumer in the repo computes
/// *state-independent* per-item results in the parallel phase and commits
/// them in the serial item order (or reduces with an order-insensitive
/// exact operation like max on doubles or AND on bools). Results are
/// therefore **bit-identical** for every thread count, which
/// `tests/test_parallel.cpp` asserts across the scenario matrix.
///
/// Thread-count resolution: explicit request > `LOCALSPAN_THREADS` env
/// default > 1. A request of 0 means "use the default"; the default is 1
/// when the env var is unset, so nothing parallelizes unless asked to.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "graph/sp_workspace.hpp"

namespace localspan::runtime {

/// std::thread::hardware_concurrency(), never below 1.
[[nodiscard]] int hardware_threads() noexcept;

/// The process default: LOCALSPAN_THREADS when set to a positive integer
/// (clamped to [1, 256]), else 1. Read once and cached.
[[nodiscard]] int default_threads() noexcept;

/// Resolve a requested thread count: > 0 is used as given (clamped to
/// [1, 256]); <= 0 means "use default_threads()".
[[nodiscard]] int resolve_threads(int requested) noexcept;

/// Fixed-size thread pool with deterministic static chunking.
///
/// Single-client: one `for_each` at a time, issued from one owner thread
/// (the repo's consumers never nest dispatches). Worker t executes the t-th
/// contiguous chunk of the range; the caller doubles as worker 0. An
/// exception thrown by `fn` is captured and rethrown on the calling thread
/// (the lowest-index worker's exception wins, deterministically).
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is worker 0).
  /// \throws std::invalid_argument when threads < 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Run fn(worker, i) for every i in [begin, end), worker in [0, threads).
  /// Allocation-free once the pool exists; blocks until every chunk is done.
  template <class Fn>
  void for_each(int begin, int end, Fn&& fn) {
    if (end - begin <= 0) return;
    if (threads_ == 1) {
      for (int i = begin; i < end; ++i) fn(0, i);
      return;
    }
    using F = std::remove_reference_t<Fn>;
    dispatch(
        [](void* ctx, int worker, int b, int e) {
          F& f = *static_cast<F*>(ctx);  // F carries Fn's const qualification
          for (int i = b; i < e; ++i) f(worker, i);
        },
        const_cast<void*>(static_cast<const void*>(&fn)), begin, end);
  }

  /// Run fn(worker, i) for every i in [begin, end) with *dynamic* scheduling:
  /// workers pull the next index from a shared atomic counter instead of
  /// owning a static chunk. Use for skewed per-item costs (variable-size
  /// dirty-region repairs), where static chunking would idle most of the
  /// pool behind one expensive item. The item→worker assignment is NOT
  /// deterministic, so fn must compute a state-independent result into an
  /// item-owned slot; with serial in-order commits afterwards the observable
  /// outcome stays bit-identical at every thread count. Unlike for_each,
  /// error attribution across workers is schedule-dependent (an exception is
  /// still rethrown on the caller, but which one wins is not deterministic).
  template <class Fn>
  void for_each_dynamic(int begin, int end, Fn&& fn) {
    if (end - begin <= 0) return;
    if (threads_ == 1) {
      for (int i = begin; i < end; ++i) fn(0, i);
      return;
    }
    using F = std::remove_reference_t<Fn>;
    struct Ctx {
      F* fn;
      std::atomic<int>* next;
      int end;
    };
    next_item_.store(begin, std::memory_order_relaxed);
    Ctx ctx{&fn, &next_item_, end};
    dispatch(
        [](void* c, int worker, int, int) {
          Ctx& x = *static_cast<Ctx*>(c);
          while (true) {
            const int i = x.next->fetch_add(1, std::memory_order_relaxed);
            if (i >= x.end) return;
            (*x.fn)(worker, i);
          }
        },
        &ctx, begin, end);
  }

 private:
  using TaskFn = void (*)(void* ctx, int worker, int chunk_begin, int chunk_end);

  /// Worker t's contiguous chunk of [begin, end).
  [[nodiscard]] std::pair<int, int> chunk(int begin, int end, int worker) const noexcept;

  void dispatch(TaskFn fn, void* ctx, int begin, int end);
  void worker_loop(int worker);

  int threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  TaskFn task_fn_ = nullptr;
  void* task_ctx_ = nullptr;
  int task_begin_ = 0;
  int task_end_ = 0;
  std::uint64_t generation_ = 0;  ///< bumped per dispatch; workers wait on it.
  int unfinished_ = 0;
  bool stop_ = false;
  std::atomic<int> next_item_{0};  ///< work counter for for_each_dynamic.
  std::vector<std::exception_ptr> errors_;  ///< one slot per worker.
};

/// A thread pool plus per-worker shortest-path workspaces — the resource
/// bundle every retrofitted search loop consumes. Workspaces are as
/// long-lived as the pool, so repeated parallel passes (the dynamic engine's
/// per-event certify above all) reuse warm buffers and allocate nothing.
class WorkerPool {
 public:
  explicit WorkerPool(int threads) : pool_(threads), workspaces_(pool_.threads()) {}

  [[nodiscard]] int threads() const noexcept { return pool_.threads(); }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

  /// Worker `worker`'s private workspace (index 0 is the calling thread's).
  [[nodiscard]] graph::DijkstraWorkspace& workspace(int worker) {
    return workspaces_[static_cast<std::size_t>(worker)];
  }

  template <class Fn>
  void for_each(int begin, int end, Fn&& fn) {
    pool_.for_each(begin, end, std::forward<Fn>(fn));
  }

  template <class Fn>
  void for_each_dynamic(int begin, int end, Fn&& fn) {
    pool_.for_each_dynamic(begin, end, std::forward<Fn>(fn));
  }

 private:
  ThreadPool pool_;
  std::vector<graph::DijkstraWorkspace> workspaces_;
};

/// Run fn(workspace, i) over [begin, end): on `pool`'s workers with their
/// private workspaces when a pool is provided, else serially on `serial_ws`.
/// Both paths call the identical fn, so consumers written against this
/// helper are bit-identical at every thread count by construction (fn must
/// compute a state-independent result per item; commit order is the
/// caller's).
template <class Fn>
void for_each_with_workspace(WorkerPool* pool, graph::DijkstraWorkspace& serial_ws, int begin,
                             int end, Fn&& fn) {
  if (pool == nullptr || pool->threads() == 1 || end - begin <= 1) {
    for (int i = begin; i < end; ++i) fn(serial_ws, i);
  } else {
    pool->for_each(begin, end,
                   [&](int worker, int i) { fn(pool->workspace(worker), i); });
  }
}

/// Scatter/commit for variable-size item work (the batched-churn region
/// repair above all). `harvest(workspace, worker, i)` computes a
/// state-independent result for item i into an item-owned slot; items are
/// scheduled *dynamically* because their costs are skewed (one big repair
/// region next to many tiny ones) and static chunking would serialize the
/// pool behind the big one. `commit(i)` then runs serially in item order on
/// the calling thread. Because harvests only read frozen state and the
/// commit order is fixed, the combined effect is bit-identical at every
/// thread count even though the parallel execution order is not.
template <class Harvest, class Commit>
void scatter_commit(WorkerPool* pool, graph::DijkstraWorkspace& serial_ws, int count,
                    Harvest&& harvest, Commit&& commit) {
  if (pool == nullptr || pool->threads() == 1 || count <= 1) {
    for (int i = 0; i < count; ++i) harvest(serial_ws, 0, i);
  } else {
    pool->for_each_dynamic(
        0, count, [&](int worker, int i) { harvest(pool->workspace(worker), worker, i); });
  }
  for (int i = 0; i < count; ++i) commit(i);
}

}  // namespace localspan::runtime
