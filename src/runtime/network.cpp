#include "runtime/network.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"

namespace localspan::runtime {

namespace detail {

void check_vertex(int n, int v, const char* who) {
  if (v < 0 || v >= n) {
    throw std::invalid_argument(std::string(who) + ": vertex id " + std::to_string(v) +
                                " out of range [0, " + std::to_string(n) + ")");
  }
}

void check_packet(const Packet& p, const char* who) {
  if (!std::isfinite(p.value)) {
    throw std::domain_error(std::string(who) + ": Packet::value must be finite");
  }
}

}  // namespace detail

namespace {

/// The paper's communication measure: messages/bytes per synchronous round.
struct NetMetrics {
  obs::MetricId rounds = obs::counter_id("net.rounds");
  obs::MetricId messages = obs::counter_id("net.messages");
  obs::MetricId bytes = obs::counter_id("net.bytes");
  obs::MetricId round_messages = obs::histogram_id("net.round_messages");
};

const NetMetrics& net_metrics() {
  static const NetMetrics m;
  return m;
}

}  // namespace

SyncNetwork::SyncNetwork(const graph::Graph& topo, RoundLedger* ledger, std::string section)
    : topo_(topo),
      ledger_(ledger),
      section_(std::move(section)),
      inbox_(static_cast<std::size_t>(topo.n())),
      outbox_(static_cast<std::size_t>(topo.n())) {}

void SyncNetwork::send(int from, int to, const Packet& p) {
  detail::check_vertex(topo_.n(), from, "SyncNetwork::send");
  detail::check_vertex(topo_.n(), to, "SyncNetwork::send");
  detail::check_packet(p, "SyncNetwork::send");
  if (!topo_.has_edge(from, to)) {
    throw std::invalid_argument("SyncNetwork::send: recipients must be topology neighbors");
  }
  outbox_[static_cast<std::size_t>(to)].emplace_back(from, p);
}

void SyncNetwork::broadcast(int from, const Packet& p) {
  detail::check_vertex(topo_.n(), from, "SyncNetwork::broadcast");
  detail::check_packet(p, "SyncNetwork::broadcast");
  for (const graph::Neighbor& nb : topo_.neighbors(from)) {
    outbox_[static_cast<std::size_t>(nb.to)].emplace_back(from, p);
  }
}

void SyncNetwork::end_round() {
  long long delivered = 0;
  for (std::size_t v = 0; v < outbox_.size(); ++v) {
    delivered += static_cast<long long>(outbox_[v].size());
    inbox_[v] = std::move(outbox_[v]);
    outbox_[v].clear();
  }
  ++rounds_;
  messages_ += delivered;
  if (obs::enabled()) {
    const NetMetrics& m = net_metrics();
    obs::counter_add(m.rounds, 1);
    obs::counter_add(m.messages, delivered);
    obs::counter_add(m.bytes, delivered * static_cast<long long>(sizeof(Packet)));
    obs::histogram_record(m.round_messages, delivered);
  }
  if (ledger_ != nullptr) ledger_->charge(section_, 1, delivered);
}

const std::vector<std::pair<int, Packet>>& SyncNetwork::inbox(int v) const {
  detail::check_vertex(static_cast<int>(inbox_.size()), v, "SyncNetwork::inbox");
  return inbox_[static_cast<std::size_t>(v)];
}

}  // namespace localspan::runtime
