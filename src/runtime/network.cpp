#include "runtime/network.hpp"

#include <stdexcept>

namespace localspan::runtime {

SyncNetwork::SyncNetwork(const graph::Graph& topo, RoundLedger* ledger, std::string section)
    : topo_(topo),
      ledger_(ledger),
      section_(std::move(section)),
      inbox_(static_cast<std::size_t>(topo.n())),
      outbox_(static_cast<std::size_t>(topo.n())) {}

void SyncNetwork::send(int from, int to, const Packet& p) {
  if (!topo_.has_edge(from, to)) {
    throw std::invalid_argument("SyncNetwork::send: recipients must be topology neighbors");
  }
  outbox_[static_cast<std::size_t>(to)].emplace_back(from, p);
}

void SyncNetwork::broadcast(int from, const Packet& p) {
  for (const graph::Neighbor& nb : topo_.neighbors(from)) {
    outbox_[static_cast<std::size_t>(nb.to)].emplace_back(from, p);
  }
}

void SyncNetwork::end_round() {
  long long delivered = 0;
  for (std::size_t v = 0; v < outbox_.size(); ++v) {
    delivered += static_cast<long long>(outbox_[v].size());
    inbox_[v] = std::move(outbox_[v]);
    outbox_[v].clear();
  }
  ++rounds_;
  messages_ += delivered;
  if (ledger_ != nullptr) ledger_->charge(section_, 1, delivered);
}

const std::vector<std::pair<int, Packet>>& SyncNetwork::inbox(int v) const {
  if (v < 0 || v >= static_cast<int>(inbox_.size())) {
    throw std::invalid_argument("SyncNetwork::inbox: vertex out of range");
  }
  return inbox_[static_cast<std::size_t>(v)];
}

}  // namespace localspan::runtime
