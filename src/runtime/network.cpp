#include "runtime/network.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace localspan::runtime {

namespace {

/// The paper's communication measure: messages/bytes per synchronous round.
struct NetMetrics {
  obs::MetricId rounds = obs::counter_id("net.rounds");
  obs::MetricId messages = obs::counter_id("net.messages");
  obs::MetricId bytes = obs::counter_id("net.bytes");
  obs::MetricId round_messages = obs::histogram_id("net.round_messages");
};

const NetMetrics& net_metrics() {
  static const NetMetrics m;
  return m;
}

}  // namespace

SyncNetwork::SyncNetwork(const graph::Graph& topo, RoundLedger* ledger, std::string section)
    : topo_(topo),
      ledger_(ledger),
      section_(std::move(section)),
      inbox_(static_cast<std::size_t>(topo.n())),
      outbox_(static_cast<std::size_t>(topo.n())) {}

void SyncNetwork::send(int from, int to, const Packet& p) {
  if (!topo_.has_edge(from, to)) {
    throw std::invalid_argument("SyncNetwork::send: recipients must be topology neighbors");
  }
  outbox_[static_cast<std::size_t>(to)].emplace_back(from, p);
}

void SyncNetwork::broadcast(int from, const Packet& p) {
  for (const graph::Neighbor& nb : topo_.neighbors(from)) {
    outbox_[static_cast<std::size_t>(nb.to)].emplace_back(from, p);
  }
}

void SyncNetwork::end_round() {
  long long delivered = 0;
  for (std::size_t v = 0; v < outbox_.size(); ++v) {
    delivered += static_cast<long long>(outbox_[v].size());
    inbox_[v] = std::move(outbox_[v]);
    outbox_[v].clear();
  }
  ++rounds_;
  messages_ += delivered;
  if (obs::enabled()) {
    const NetMetrics& m = net_metrics();
    obs::counter_add(m.rounds, 1);
    obs::counter_add(m.messages, delivered);
    obs::counter_add(m.bytes, delivered * static_cast<long long>(sizeof(Packet)));
    obs::histogram_record(m.round_messages, delivered);
  }
  if (ledger_ != nullptr) ledger_->charge(section_, 1, delivered);
}

const std::vector<std::pair<int, Packet>>& SyncNetwork::inbox(int v) const {
  if (v < 0 || v >= static_cast<int>(inbox_.size())) {
    throw std::invalid_argument("SyncNetwork::inbox: vertex out of range");
  }
  return inbox_[static_cast<std::size_t>(v)];
}

}  // namespace localspan::runtime
