#include "runtime/gather.hpp"

#include <stdexcept>

namespace localspan::runtime {

std::vector<graph::Graph> khop_views(const graph::Graph& g, int k, RoundLedger* ledger,
                                     const std::string& section) {
  if (k < 0) throw std::invalid_argument("khop_views: negative hop count");
  const int n = g.n();
  std::vector<graph::Graph> view(static_cast<std::size_t>(n), graph::Graph(n));
  // fresh[v]: records v learned last round and must forward this round.
  std::vector<std::vector<graph::Edge>> fresh(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    for (const graph::Neighbor& nb : g.neighbors(v)) {
      if (view[static_cast<std::size_t>(v)].add_edge(v, nb.to, nb.w)) {
        fresh[static_cast<std::size_t>(v)].push_back(
            {std::min(v, nb.to), std::max(v, nb.to), nb.w});
      }
    }
  }
  for (int round = 0; round < k; ++round) {
    std::vector<std::vector<graph::Edge>> next(static_cast<std::size_t>(n));
    long long records = 0;
    for (int v = 0; v < n; ++v) {
      if (fresh[static_cast<std::size_t>(v)].empty()) continue;
      for (const graph::Neighbor& nb : g.neighbors(v)) {
        records += static_cast<long long>(fresh[static_cast<std::size_t>(v)].size());
        for (const graph::Edge& rec : fresh[static_cast<std::size_t>(v)]) {
          if (view[static_cast<std::size_t>(nb.to)].add_edge(rec.u, rec.v, rec.w)) {
            next[static_cast<std::size_t>(nb.to)].push_back(rec);
          }
        }
      }
    }
    fresh = std::move(next);
    if (ledger != nullptr) ledger->charge(section, 1, records);
  }
  return view;
}

}  // namespace localspan::runtime
