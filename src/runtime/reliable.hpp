#pragma once
/// \file reliable.hpp
/// Reliable round delivery over the adversarial asynchronous network.
///
/// `ReliableNetwork` implements the `Network` interface on top of
/// `AsyncNetwork`, so protocols written for `SyncNetwork` semantics run
/// unmodified under message loss, duplication, reordering, stragglers and
/// healing partitions. The protocol is classical stop-and-wait-per-message:
///
///   - every staged message gets a per-link (sender → receiver) sequence
///     number; the receiver suppresses duplicates with a contiguous floor +
///     out-of-order seen set and ACKs every DATA it sees (including dups,
///     because the previous ACK may have been lost);
///   - the sender retransmits unacked DATA on a timer with exponential
///     backoff (`rto`, ×`backoff` per attempt, capped at `rto_max`) and a
///     hard retry budget (`max_attempts`), whose exhaustion is the typed
///     `RetryBudgetExhausted` error — the only way a run fails to terminate
///     cleanly, and it only happens under a partition that never heals;
///   - `end_round()` drains the event queue until quiescence (every staged
///     message of the round acked), which is the termination detector: a
///     round ends exactly when nothing in it can still make progress.
///
/// Bit-identity with `SyncNetwork` is by construction: the round inbox is
/// sorted by (sender, link sequence), which equals the synchronous staging
/// order for protocols that stage in ascending sender order (Luby does), and
/// `rounds()`/`messages()` count application-level rounds and messages, not
/// physical frames — so ledger charges and downstream decisions are exactly
/// those of the synchronous run.

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/async_network.hpp"
#include "runtime/ledger.hpp"
#include "runtime/network.hpp"

namespace localspan::runtime {

/// Retransmission policy knobs.
struct ReliableConfig {
  double rto = 4.0;       ///< initial retransmission timeout (virtual time).
  double backoff = 2.0;   ///< rto multiplier per failed attempt.
  double rto_max = 64.0;  ///< backoff cap.
  int max_attempts = 24;  ///< transmissions per message before giving up.

  /// \throws std::invalid_argument naming the first out-of-domain knob.
  void validate() const;
};

/// Base class for delivery-protocol failures.
class ReliableDeliveryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown from `end_round()` when a message exhausts its retry budget —
/// under the fault matrix this means a partition that never healed.
class RetryBudgetExhausted : public ReliableDeliveryError {
 public:
  RetryBudgetExhausted(int from, int to, std::uint64_t seq, int attempts);

  int from() const noexcept { return from_; }
  int to() const noexcept { return to_; }
  std::uint64_t seq() const noexcept { return seq_; }
  int attempts() const noexcept { return attempts_; }

 private:
  int from_;
  int to_;
  std::uint64_t seq_;
  int attempts_;
};

/// Protocol-level counters (the physical-transport view lives in
/// `AsyncNetwork::stats()`).
struct ReliableStats {
  long long data_sent = 0;       ///< first transmissions (== app messages).
  long long retransmits = 0;     ///< timer-driven resends.
  long long timeouts = 0;        ///< timer fires that found an unacked message.
  long long acks_sent = 0;       ///< ACK frames posted (incl. re-ACKs of dups).
  long long acks_received = 0;   ///< ACKs that retired a pending message.
  long long stale_acks = 0;      ///< duplicate/late ACKs ignored.
  long long dup_suppressed = 0;  ///< duplicate DATA discarded at the receiver.
};

class ReliableNetwork final : public Network {
 public:
  /// \param net    adversarial transport (must outlive this object).
  /// \param ledger charged one round per end_round(), like SyncNetwork.
  /// \throws std::invalid_argument when cfg fails validation.
  ReliableNetwork(AsyncNetwork& net, ReliableConfig cfg, RoundLedger* ledger,
                  std::string section);

  void send(int from, int to, const Packet& p) override;
  void broadcast(int from, const Packet& p) override;

  /// Run the delivery protocol to quiescence for this round's staged
  /// messages, then publish them to the inboxes in (sender, sequence) order.
  /// \throws RetryBudgetExhausted if any message runs out of attempts.
  void end_round() override;

  [[nodiscard]] const std::vector<std::pair<int, Packet>>& inbox(int v) const override;

  [[nodiscard]] long long rounds() const noexcept override { return rounds_; }
  [[nodiscard]] long long messages() const noexcept override { return messages_; }

  [[nodiscard]] const ReliableStats& stats() const noexcept { return stats_; }
  [[nodiscard]] AsyncNetwork& transport() noexcept { return net_; }

 private:
  struct Pending {
    int from = -1;
    int to = -1;
    Frame frame;
    double rto = 0.0;
    int attempts = 0;
    bool acked = false;
  };
  struct ReceiverLink {
    std::uint64_t floor = 0;        ///< highest contiguous sequence seen.
    std::set<std::uint64_t> ahead;  ///< out-of-order sequences above floor.
    [[nodiscard]] bool seen(std::uint64_t seq) const;
    void mark(std::uint64_t seq);
  };

  static std::uint64_t link_key(int from, int to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
  }
  void transmit(Pending& p, std::size_t index);
  void handle_data(const AsyncEvent& ev);
  void handle_ack(const AsyncEvent& ev);
  void handle_timer(std::uint64_t cookie);

  AsyncNetwork& net_;
  ReliableConfig cfg_;
  RoundLedger* ledger_;
  std::string section_;

  // Persistent across rounds: link sequence counters and receiver dup state
  // (late duplicates from round r must still be recognized in round r+1).
  std::unordered_map<std::uint64_t, std::uint64_t> send_seq_;
  std::unordered_map<std::uint64_t, ReceiverLink> recv_;

  // Per-round protocol state.
  std::vector<Pending> pending_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> awaiting_;  ///< (link, seq) → index.
  std::size_t unacked_ = 0;
  std::vector<std::vector<std::pair<int, Packet>>> staging_;  ///< receiver → arrived this round.
  std::vector<std::vector<std::uint64_t>> staging_seq_;       ///< parallel: link seq per arrival.

  std::vector<std::vector<std::pair<int, Packet>>> inbox_;
  long long rounds_ = 0;
  long long messages_ = 0;
  ReliableStats stats_;
};

}  // namespace localspan::runtime
