#pragma once
/// \file async_network.hpp
/// Adversarial asynchronous network: a discrete-event message simulator.
///
/// The LOCAL-model analysis of §1.1 assumes lockstep synchronous rounds; the
/// regime that matters for real ad-hoc deployments is asynchrony with delay,
/// loss and reordering (Koyuncu–Jafarkhani, "Asynchronous Local Construction
/// of Bounded-Degree Network Topologies"). This simulator models that regime
/// as a priority queue of timestamped events in virtual time: every physical
/// transmission (`post`) is scheduled for delivery after an adversary-drawn
/// latency, and a composable `AdversaryConfig` injects faults on the way —
/// probabilistic drop, duplication, heavy-tail reorder delays, straggler
/// nodes whose links are uniformly slow, and timed network partitions that
/// heal.
///
/// Everything is **deterministic under seed**: every random draw is a
/// counter-keyed splitmix64 hash of (seed, transmission index), and events
/// are totally ordered by (virtual time, schedule order), so the same seed
/// replays the exact same delivery transcript — the property the fault-matrix
/// tests and `bench_e17_async` rely on. The simulator is transport only; the
/// reliable-delivery protocol that reconstructs synchronous round semantics
/// on top of it lives in reliable.hpp.

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/network.hpp"

namespace localspan::runtime {

/// Composable fault-injection configuration. All probabilities are per
/// physical transmission; latencies are in virtual time units (one unit ~
/// the LOCAL model's round length).
struct AdversaryConfig {
  std::uint64_t seed = 1;

  double base_latency = 1.0;  ///< latency floor for every delivery.
  double jitter = 0.5;        ///< uniform extra latency in [0, jitter).

  double drop_prob = 0.0;  ///< P(transmission silently lost).
  double dup_prob = 0.0;   ///< P(a second, independently delayed copy).

  /// With probability reorder_prob a transmission draws an extra uniform
  /// delay in [0, reorder_spread) — a heavy tail that overtakes later sends.
  double reorder_prob = 0.0;
  double reorder_spread = 4.0;

  /// A seeded straggler_fraction of nodes have every incident transmission's
  /// latency multiplied by straggler_factor.
  double straggler_fraction = 0.0;
  double straggler_factor = 8.0;

  /// Transmissions posted while [start, heal) is active and the endpoints
  /// hash to different sides are dropped. heal <= start means "never heals"
  /// (a permanent cut — useful for exercising retry-budget exhaustion).
  struct Partition {
    double start = 0.0;
    double heal = 0.0;
    std::uint64_t side_seed = 1;
  };
  std::vector<Partition> partitions;

  /// \throws std::invalid_argument naming the first out-of-domain knob
  /// (probabilities outside [0,1], negative latencies/spreads, ...).
  void validate() const;

  /// Compact human-readable rendering for reports and bench tables, e.g.
  /// "loss=0.20 dup=0.10 reorder=0.30 straggle=0.10 partition=1".
  [[nodiscard]] std::string describe() const;
};

/// A physical frame: the reliable layer's protocol header (type + per-link
/// sequence number) around the application payload. The simulator never
/// interprets these fields; they exist so transcripts are self-describing.
struct Frame {
  int type = 0;
  std::uint64_t seq = 0;
  Packet payload;
};

enum class AsyncEventKind { kDeliver, kTimer };

/// One dequeued event: a frame delivery or a protocol timer firing.
struct AsyncEvent {
  double time = 0.0;       ///< virtual delivery/fire time.
  double posted_at = 0.0;  ///< virtual time the frame was posted (latency = time - posted_at).
  AsyncEventKind kind = AsyncEventKind::kDeliver;
  int from = -1;
  int to = -1;
  Frame frame;
  std::uint64_t cookie = 0;  ///< timer owner token (opaque to the simulator).
};

/// Plain counters, maintained whether or not the obs layer is enabled (the
/// obs `net.async.*` metrics mirror them when it is).
struct AsyncStats {
  long long posted = 0;             ///< post() calls (incl. retransmissions).
  long long delivered = 0;          ///< frames handed to a receiver.
  long long dropped = 0;            ///< random-loss drops.
  long long partition_dropped = 0;  ///< drops from an active partition cut.
  long long duplicated = 0;         ///< extra copies scheduled.
  long long reordered = 0;          ///< heavy-tail delays drawn.
  long long straggled = 0;          ///< latencies inflated by a straggler.
  long long timers = 0;             ///< timer events scheduled.
};

/// One delivery, as recorded in the replay transcript.
struct DeliveryRecord {
  double time = 0.0;
  int from = -1;
  int to = -1;
  int type = 0;
  std::uint64_t seq = 0;

  friend bool operator==(const DeliveryRecord&, const DeliveryRecord&) = default;
};

/// The discrete-event simulator. Single-threaded by design: determinism is
/// the whole point, and the protocols above it are round-structured anyway.
class AsyncNetwork {
 public:
  /// \param topo communication topology (must outlive the network).
  /// \throws std::invalid_argument when cfg fails validation.
  AsyncNetwork(const graph::Graph& topo, AdversaryConfig cfg);

  /// Post a physical transmission at the current virtual time. The adversary
  /// decides its fate immediately (drop / delay / duplicate); surviving
  /// copies are enqueued for delivery.
  /// \throws std::invalid_argument on out-of-range ids or a non-edge.
  /// \throws std::domain_error on a non-finite payload value.
  void post(int from, int to, const Frame& f);

  /// Schedule a protocol timer `delay` after the current virtual time.
  void schedule_timer(double delay, std::uint64_t cookie);

  /// Pop the next event in (time, schedule-order) order into `out` and
  /// advance the virtual clock. Returns false when the queue is empty.
  bool next(AsyncEvent& out);

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] const graph::Graph& topology() const noexcept { return topo_; }
  [[nodiscard]] const AdversaryConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const AsyncStats& stats() const noexcept { return stats_; }

  /// Deterministic adversary state, exposed for tests and reports.
  [[nodiscard]] bool is_straggler(int v) const;
  [[nodiscard]] bool partitioned(int a, int b, double t) const;

  /// Transcript recording (off by default): every delivery is appended so
  /// deterministic replay can be asserted record-for-record.
  void set_record_transcript(bool on) { record_transcript_ = on; }
  [[nodiscard]] const std::vector<DeliveryRecord>& transcript() const noexcept {
    return transcript_;
  }

 private:
  struct QueuedEvent {
    double time;
    std::uint64_t order;  ///< monotone schedule counter: deterministic ties.
    AsyncEvent event;
  };
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.order > b.order;
    }
  };

  void enqueue_delivery(double latency, int from, int to, const Frame& f);
  [[nodiscard]] double draw(std::uint64_t salt);  ///< uniform [0,1) from (seed, counter, salt).

  const graph::Graph& topo_;
  AdversaryConfig cfg_;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t order_ = 0;
  std::uint64_t draw_counter_ = 0;
  AsyncStats stats_;
  bool record_transcript_ = false;
  std::vector<DeliveryRecord> transcript_;
};

}  // namespace localspan::runtime
