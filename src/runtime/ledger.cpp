#include "runtime/ledger.hpp"

#include <stdexcept>

namespace localspan::runtime {

void RoundLedger::charge(const std::string& section, long long rounds, long long messages) {
  if (rounds < 0 || messages < 0) throw std::invalid_argument("RoundLedger: negative charge");
  rounds_ += rounds;
  messages_ += messages;
  section_rounds_[section] += rounds;
}

}  // namespace localspan::runtime
