#include "runtime/parallel.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/obs.hpp"

namespace localspan::runtime {

namespace {

constexpr int kMaxThreads = 256;

/// Registered once on first use (allocates); every later probe is slab-only.
struct PoolMetrics {
  obs::MetricId dispatches = obs::counter_id("pool.dispatches");
  obs::MetricId tasks = obs::counter_id("pool.tasks");
  obs::MetricId idle_ns = obs::counter_id("pool.idle_ns");
  obs::MetricId chunk = obs::span_id("pool.chunk");
};

const PoolMetrics& pool_metrics() {
  static const PoolMetrics m;
  return m;
}

std::int64_t mono_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int clamp_threads(long v) noexcept {
  if (v < 1) return 1;
  if (v > kMaxThreads) return kMaxThreads;
  return static_cast<int>(v);
}

int read_env_default() noexcept {
  const char* env = std::getenv("LOCALSPAN_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1) return 1;  // malformed => serial
  return clamp_threads(v);
}

}  // namespace

int hardware_threads() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : clamp_threads(static_cast<long>(hc));
}

int default_threads() noexcept {
  static const int cached = read_env_default();
  return cached;
}

int resolve_threads(int requested) noexcept {
  return requested > 0 ? clamp_threads(requested) : default_threads();
}

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  if (threads < 1) throw std::invalid_argument("ThreadPool: threads must be >= 1");
  errors_.resize(static_cast<std::size_t>(threads_));
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  try {
    for (int t = 1; t < threads_; ++t) {
      workers_.emplace_back([this, t] { worker_loop(t); });
    }
  } catch (...) {
    // A spawn failure mid-loop (thread-limited container) must not unwind
    // into ~vector<std::thread> with joinable threads — that would
    // std::terminate. Shut the spawned workers down and propagate.
    {
      const std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
      cv_start_.notify_all();
    }
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
    cv_start_.notify_all();
  }
  for (std::thread& w : workers_) w.join();
}

std::pair<int, int> ThreadPool::chunk(int begin, int end, int worker) const noexcept {
  const auto total = static_cast<long long>(end) - begin;
  const int lo = begin + static_cast<int>(total * worker / threads_);
  const int hi = begin + static_cast<int>(total * (worker + 1) / threads_);
  return {lo, hi};
}

void ThreadPool::dispatch(TaskFn fn, void* ctx, int begin, int end) {
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    task_fn_ = fn;
    task_ctx_ = ctx;
    task_begin_ = begin;
    task_end_ = end;
    unfinished_ = threads_ - 1;
    ++generation_;
    cv_start_.notify_all();
  }
  obs::counter_add(pool_metrics().dispatches, 1);
  // The calling thread is worker 0.
  try {
    const auto [lo, hi] = chunk(begin, end, 0);
    if (lo < hi) {
      const obs::Span span(pool_metrics().chunk);
      obs::counter_add(pool_metrics().tasks, 1);
      fn(ctx, 0, lo, hi);
    }
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lk(mutex_);
    cv_done_.wait(lk, [this] { return unfinished_ == 0; });
    task_fn_ = nullptr;
    task_ctx_ = nullptr;
  }
  // Deterministic error propagation: the lowest worker index wins.
  for (std::exception_ptr& err : errors_) {
    if (err) {
      const std::exception_ptr first = err;
      for (std::exception_ptr& e : errors_) e = nullptr;
      std::rethrow_exception(first);
    }
  }
}

void ThreadPool::worker_loop(int worker) {
  {
    char label[32];
    std::snprintf(label, sizeof(label), "worker %d", worker);
    obs::set_thread_label(label);  // unconditional: named even if obs is
                                   // enabled only after the pool spawned.
  }
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mutex_);
  while (true) {
    const bool timing = obs::enabled();
    const std::int64_t idle_t0 = timing ? mono_ns() : 0;
    cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (timing) obs::counter_add(pool_metrics().idle_ns, mono_ns() - idle_t0);
    if (stop_) return;
    seen = generation_;
    const TaskFn fn = task_fn_;
    void* ctx = task_ctx_;
    const int begin = task_begin_;
    const int end = task_end_;
    lk.unlock();
    std::exception_ptr err;
    try {
      const auto [lo, hi] = chunk(begin, end, worker);
      if (lo < hi) {
        const obs::Span span(pool_metrics().chunk);
        obs::counter_add(pool_metrics().tasks, 1);
        fn(ctx, worker, lo, hi);
      }
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    if (err) errors_[static_cast<std::size_t>(worker)] = err;
    if (--unfinished_ == 0) cv_done_.notify_one();
  }
}

}  // namespace localspan::runtime
