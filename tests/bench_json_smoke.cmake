# CTest script: run one bench binary and validate its BENCH_<id>.json
# artifact (exists, parses as JSON, has the stable schema fields).
#   cmake -DBENCH=<binary> -DBENCH_ID=<id> -DWORK_DIR=<dir> -P bench_json_smoke.cmake

if(NOT DEFINED BENCH OR NOT DEFINED BENCH_ID OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DBENCH=<bin> -DBENCH_ID=<id> -DWORK_DIR=<dir> -P bench_json_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${BENCH}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

set(artifact "${WORK_DIR}/BENCH_${BENCH_ID}.json")
if(NOT EXISTS "${artifact}")
  message(FATAL_ERROR "bench did not write ${artifact}")
endif()

file(READ "${artifact}" payload)

# string(JSON ...) raises a hard error on malformed JSON — exactly what we
# want from a validity smoke test.
string(JSON bench_field GET "${payload}" "bench")
if(NOT bench_field STREQUAL "${BENCH_ID}")
  message(FATAL_ERROR "bench field is '${bench_field}', expected '${BENCH_ID}'")
endif()
string(JSON schema_version GET "${payload}" "schema_version")
if(NOT schema_version EQUAL 1)
  message(FATAL_ERROR "unexpected schema_version '${schema_version}'")
endif()
string(JSON n_tables LENGTH "${payload}" "tables")
if(n_tables LESS 1)
  message(FATAL_ERROR "no tables in ${artifact}")
endif()
string(JSON n_cols LENGTH "${payload}" "tables" 0 "columns")
string(JSON n_rows LENGTH "${payload}" "tables" 0 "rows")
if(n_cols LESS 1 OR n_rows LESS 1)
  message(FATAL_ERROR "first table is empty (${n_cols} cols x ${n_rows} rows)")
endif()

message(STATUS "bench_json_smoke: BENCH_${BENCH_ID}.json valid (${n_tables} tables, ${n_cols}x${n_rows})")
