# CTest script: run one bench binary and validate its BENCH_<id>.json
# artifact (exists, parses as JSON, has the stable schema fields). When
# -DCOLLECT=<tools/collect_bench.cmake> is given, additionally aggregate the
# work dir into BENCH_SUMMARY.json and validate the summary.
#   cmake -DBENCH=<binary> -DBENCH_ID=<id> -DWORK_DIR=<dir> [-DCOLLECT=<script>]
#         -P bench_json_smoke.cmake

if(NOT DEFINED BENCH OR NOT DEFINED BENCH_ID OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DBENCH=<bin> -DBENCH_ID=<id> -DWORK_DIR=<dir> -P bench_json_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${BENCH}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

set(artifact "${WORK_DIR}/BENCH_${BENCH_ID}.json")
if(NOT EXISTS "${artifact}")
  message(FATAL_ERROR "bench did not write ${artifact}")
endif()

file(READ "${artifact}" payload)

# string(JSON ...) raises a hard error on malformed JSON — exactly what we
# want from a validity smoke test.
string(JSON bench_field GET "${payload}" "bench")
if(NOT bench_field STREQUAL "${BENCH_ID}")
  message(FATAL_ERROR "bench field is '${bench_field}', expected '${BENCH_ID}'")
endif()
string(JSON schema_version GET "${payload}" "schema_version")
if(NOT schema_version EQUAL 1)
  message(FATAL_ERROR "unexpected schema_version '${schema_version}'")
endif()
string(JSON n_tables LENGTH "${payload}" "tables")
if(n_tables LESS 1)
  message(FATAL_ERROR "no tables in ${artifact}")
endif()
string(JSON n_cols LENGTH "${payload}" "tables" 0 "columns")
string(JSON n_rows LENGTH "${payload}" "tables" 0 "rows")
if(n_cols LESS 1 OR n_rows LESS 1)
  message(FATAL_ERROR "first table is empty (${n_cols} cols x ${n_rows} rows)")
endif()

message(STATUS "bench_json_smoke: BENCH_${BENCH_ID}.json valid (${n_tables} tables, ${n_cols}x${n_rows})")

if(DEFINED COLLECT)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" "-DDIR=${WORK_DIR}" -P "${COLLECT}"
    RESULT_VARIABLE crc
    OUTPUT_VARIABLE cout
    ERROR_VARIABLE cerr)
  if(NOT crc EQUAL 0)
    message(FATAL_ERROR "collect_bench failed (${crc})\nstdout:\n${cout}\nstderr:\n${cerr}")
  endif()
  set(summary_file "${WORK_DIR}/BENCH_SUMMARY.json")
  if(NOT EXISTS "${summary_file}")
    message(FATAL_ERROR "collect_bench did not write ${summary_file}")
  endif()
  file(READ "${summary_file}" summary)
  string(JSON summary_version GET "${summary}" "schema_version")
  if(NOT summary_version EQUAL 1)
    message(FATAL_ERROR "unexpected summary schema_version '${summary_version}'")
  endif()
  string(JSON summary_count GET "${summary}" "count")
  string(JSON n_benches LENGTH "${summary}" "benches")
  if(summary_count LESS 1 OR NOT n_benches EQUAL summary_count)
    message(FATAL_ERROR "summary count mismatch: count=${summary_count}, benches=${n_benches}")
  endif()
  string(JSON first_id GET "${summary}" "benches" 0 "bench")
  if(NOT first_id STREQUAL "${BENCH_ID}")
    message(FATAL_ERROR "summary first bench is '${first_id}', expected '${BENCH_ID}'")
  endif()
  message(STATUS "bench_json_smoke: BENCH_SUMMARY.json valid (${summary_count} benches)")
endif()
