# CTest script: run one bench binary and validate its BENCH_<id>.json
# artifact (exists, parses as JSON, has the stable schema fields). When
# -DCOLLECT=<tools/collect_bench.cmake> is given, additionally aggregate the
# work dir into BENCH_SUMMARY.json and validate the summary.
#   cmake -DBENCH=<binary> -DBENCH_ID=<id> -DWORK_DIR=<dir> [-DCOLLECT=<script>]
#         -P bench_json_smoke.cmake

if(NOT DEFINED BENCH OR NOT DEFINED BENCH_ID OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DBENCH=<bin> -DBENCH_ID=<id> -DWORK_DIR=<dir> -P bench_json_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${BENCH}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

set(artifact "${WORK_DIR}/BENCH_${BENCH_ID}.json")
if(NOT EXISTS "${artifact}")
  message(FATAL_ERROR "bench did not write ${artifact}")
endif()

file(READ "${artifact}" payload)

# string(JSON ...) raises a hard error on malformed JSON — exactly what we
# want from a validity smoke test.
string(JSON bench_field GET "${payload}" "bench")
if(NOT bench_field STREQUAL "${BENCH_ID}")
  message(FATAL_ERROR "bench field is '${bench_field}', expected '${BENCH_ID}'")
endif()
string(JSON schema_version GET "${payload}" "schema_version")
if(NOT schema_version EQUAL 1)
  message(FATAL_ERROR "unexpected schema_version '${schema_version}'")
endif()
string(JSON n_tables LENGTH "${payload}" "tables")
if(n_tables LESS 1)
  message(FATAL_ERROR "no tables in ${artifact}")
endif()
string(JSON n_cols LENGTH "${payload}" "tables" 0 "columns")
string(JSON n_rows LENGTH "${payload}" "tables" 0 "rows")
if(n_cols LESS 1 OR n_rows LESS 1)
  message(FATAL_ERROR "first table is empty (${n_cols} cols x ${n_rows} rows)")
endif()

message(STATUS "bench_json_smoke: BENCH_${BENCH_ID}.json valid (${n_tables} tables, ${n_cols}x${n_rows})")

# E15 serial-residue guard: the relaxed-greedy pipeline is fully pool-backed
# — every rg.* phase span the run records must be one of the declared
# harvest/commit phases, and all of them must have fired. A new rg.* span
# outside this set means someone added a serial phase to the hot path.
if(BENCH_ID STREQUAL "E15")
  set(parallel_spans "rg.phase0" "rg.bins" "rg.cover" "rg.filter" "rg.select"
    "rg.cluster_graph" "rg.queries" "rg.redundancy")
  string(JSON n_spans ERROR_VARIABLE sp_err LENGTH "${payload}" "obs" "spans")
  if(NOT sp_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "E15 artifact lacks the obs spans block: ${sp_err}")
  endif()
  math(EXPR last_span "${n_spans} - 1")
  set(rg_seen "")
  foreach(s_idx RANGE ${last_span})
    string(JSON span_name MEMBER "${payload}" "obs" "spans" ${s_idx})
    if(NOT span_name MATCHES "^rg\\.")
      continue()
    endif()
    list(FIND parallel_spans "${span_name}" par_idx)
    if(par_idx EQUAL -1)
      message(FATAL_ERROR "E15 obs block records serial-residue phase '${span_name}' — "
        "every rg.* phase must run on the worker pool (harvest/commit)")
    endif()
    string(JSON span_count GET "${payload}" "obs" "spans" "${span_name}" "count")
    if(span_count GREATER 0)
      list(APPEND rg_seen "${span_name}")
    endif()
  endforeach()
  list(LENGTH parallel_spans n_expected)
  list(LENGTH rg_seen n_rg)
  if(NOT n_rg EQUAL n_expected)
    message(FATAL_ERROR "E15 obs block fired ${n_rg}/${n_expected} pool-backed rg.* phases "
      "(${rg_seen}) — a declared parallel phase went silent")
  endif()
  message(STATUS "bench_json_smoke: E15 rg.* spans all pool-backed (${n_rg}/${n_expected})")
endif()

if(DEFINED COLLECT)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" "-DDIR=${WORK_DIR}" -P "${COLLECT}"
    RESULT_VARIABLE crc
    OUTPUT_VARIABLE cout
    ERROR_VARIABLE cerr)
  if(NOT crc EQUAL 0)
    message(FATAL_ERROR "collect_bench failed (${crc})\nstdout:\n${cout}\nstderr:\n${cerr}")
  endif()
  set(summary_file "${WORK_DIR}/BENCH_SUMMARY.json")
  if(NOT EXISTS "${summary_file}")
    message(FATAL_ERROR "collect_bench did not write ${summary_file}")
  endif()
  file(READ "${summary_file}" summary)
  string(JSON summary_version GET "${summary}" "schema_version")
  if(NOT summary_version EQUAL 1)
    message(FATAL_ERROR "unexpected summary schema_version '${summary_version}'")
  endif()
  string(JSON summary_count GET "${summary}" "count")
  string(JSON n_benches LENGTH "${summary}" "benches")
  if(summary_count LESS 1 OR NOT n_benches EQUAL summary_count)
    message(FATAL_ERROR "summary count mismatch: count=${summary_count}, benches=${n_benches}")
  endif()
  string(JSON first_id GET "${summary}" "benches" 0 "bench")
  if(NOT first_id STREQUAL "${BENCH_ID}")
    message(FATAL_ERROR "summary first bench is '${first_id}', expected '${BENCH_ID}'")
  endif()
  message(STATUS "bench_json_smoke: BENCH_SUMMARY.json valid (${summary_count} benches)")
endif()
