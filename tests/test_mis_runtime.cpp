// Tests for the MIS algorithms (greedy + Luby-on-simulator) and the
// synchronous network runtime (§1.1 model, §3 substrate).
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <random>

#include "mis/luby.hpp"
#include "mis/mis.hpp"
#include "runtime/ledger.hpp"
#include "runtime/network.hpp"
#include "runtime/parallel.hpp"

namespace gr = localspan::graph;
namespace ms = localspan::mis;
namespace rt = localspan::runtime;

namespace {

gr::Graph random_graph(int n, double p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  gr::Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (unit(rng) < p) g.add_edge(u, v, 1.0);
    }
  }
  return g;
}

}  // namespace

TEST(GreedyMis, ValidOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const gr::Graph g = random_graph(120, 0.08, seed);
    const auto set = ms::greedy_mis(g);
    EXPECT_TRUE(ms::is_maximal_independent_set(g, set));
  }
}

TEST(GreedyMis, EdgeCases) {
  const gr::Graph empty(0);
  EXPECT_TRUE(ms::greedy_mis(empty).empty());
  const gr::Graph isolated(5);
  EXPECT_EQ(ms::greedy_mis(isolated).size(), 5u);  // all isolated vertices
  gr::Graph k2(2);
  k2.add_edge(0, 1, 1.0);
  EXPECT_EQ(ms::greedy_mis(k2).size(), 1u);
}

TEST(MisVerifier, RejectsBadSets) {
  gr::Graph path(3);
  path.add_edge(0, 1, 1.0);
  path.add_edge(1, 2, 1.0);
  EXPECT_TRUE(ms::is_maximal_independent_set(path, {0, 2}));
  EXPECT_TRUE(ms::is_maximal_independent_set(path, {1}));
  EXPECT_FALSE(ms::is_maximal_independent_set(path, {0, 1}));  // not independent
  EXPECT_FALSE(ms::is_maximal_independent_set(path, {0}));     // not maximal
  EXPECT_FALSE(ms::is_maximal_independent_set(path, {7}));     // out of range
}

class LubySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LubySeeds, ProducesAValidMis) {
  const gr::Graph g = random_graph(150, 0.06, GetParam());
  ms::LubyStats stats;
  const auto set = ms::luby_mis(g, GetParam(), &stats);
  EXPECT_TRUE(ms::is_maximal_independent_set(g, set));
  EXPECT_GT(stats.iterations, 0);
  EXPECT_EQ(stats.network_rounds, 2ll * stats.iterations);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, LubySeeds, ::testing::Values(1, 7, 42, 1337, 99999));

TEST(Luby, DeterministicPerSeed) {
  const gr::Graph g = random_graph(100, 0.1, 5);
  EXPECT_EQ(ms::luby_mis(g, 11), ms::luby_mis(g, 11));
  // Different seeds usually give different sets on a dense enough graph.
  EXPECT_NE(ms::luby_mis(g, 11), ms::luby_mis(g, 12));
}

TEST(Luby, IterationsGrowSlowly) {
  // O(log n) w.h.p.: even at n=800 the iteration count stays tiny.
  const gr::Graph g = random_graph(800, 0.01, 9);
  ms::LubyStats stats;
  const auto set = ms::luby_mis(g, 3, &stats);
  EXPECT_TRUE(ms::is_maximal_independent_set(g, set));
  EXPECT_LE(stats.iterations, 6 * static_cast<int>(std::log2(800)));
}

TEST(Luby, HandlesEdgelessAndEmptyGraphs) {
  ms::LubyStats stats;
  EXPECT_EQ(ms::luby_mis(gr::Graph(6), 1, &stats).size(), 6u);
  EXPECT_EQ(stats.iterations, 1);
  EXPECT_TRUE(ms::luby_mis(gr::Graph(0), 1).empty());
}

TEST(Luby, ChargesLedger) {
  const gr::Graph g = random_graph(60, 0.1, 2);
  rt::RoundLedger ledger;
  static_cast<void>(ms::luby_mis(g, 5, nullptr, &ledger, "test-mis"));
  EXPECT_GT(ledger.rounds(), 0);
  EXPECT_GT(ledger.messages(), 0);
  EXPECT_EQ(ledger.rounds_by_section().at("test-mis"), ledger.rounds());
}

// ---------------------------------------------------------------------------
// Pool-parallel Luby: the harvest/commit variant must reproduce the
// simulator-driven run exactly — set, stats, and ledger charges — at every
// thread count, because both consume mis::luby_priority and the parallel
// passes read only frozen previous-iteration state.
// ---------------------------------------------------------------------------

TEST(LubyParallel, MatchesSimulatorSetStatsAndLedger) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    const gr::Graph g = random_graph(150, 0.06, seed);
    ms::LubyStats net_stats;
    rt::RoundLedger net_ledger;
    const auto expected = ms::luby_mis(g, seed, &net_stats, &net_ledger, "mis");
    for (int threads : {0, 2, 4}) {  // 0 = serial fallback, no pool
      std::optional<rt::WorkerPool> pool;
      if (threads > 0) pool.emplace(threads);
      ms::LubyStats stats;
      rt::RoundLedger ledger;
      const auto got = ms::luby_mis_parallel(g, seed, &stats,
                                             pool ? &*pool : nullptr, &ledger, "mis");
      EXPECT_EQ(expected, got) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(net_stats.iterations, stats.iterations);
      EXPECT_EQ(net_stats.network_rounds, stats.network_rounds);
      EXPECT_EQ(net_stats.messages, stats.messages);
      EXPECT_EQ(net_ledger.rounds(), ledger.rounds());
      EXPECT_EQ(net_ledger.messages(), ledger.messages());
      EXPECT_EQ(net_ledger.rounds_by_section().at("mis"),
                ledger.rounds_by_section().at("mis"));
    }
  }
}

TEST(LubyParallel, SharesThePriorityDrawWithTheSimulator) {
  // The symmetry-breaking draw is one shared helper; spot-check determinism
  // and range so a drive-by refactor of either consumer cannot fork it.
  for (int it : {1, 2, 9}) {
    for (int node : {0, 3, 149}) {
      const double p = ms::luby_priority(77, it, node);
      EXPECT_EQ(p, ms::luby_priority(77, it, node));
      EXPECT_GE(p, 0.0);
      EXPECT_LT(p, 1.0);
    }
  }
  EXPECT_NE(ms::luby_priority(77, 1, 0), ms::luby_priority(78, 1, 0));
  EXPECT_NE(ms::luby_priority(77, 1, 0), ms::luby_priority(77, 2, 0));
  EXPECT_NE(ms::luby_priority(77, 1, 0), ms::luby_priority(77, 1, 1));
}

TEST(LubyParallel, HandlesEdgelessAndEmptyGraphs) {
  ms::LubyStats stats;
  EXPECT_EQ(ms::luby_mis_parallel(gr::Graph(6), 1, &stats).size(), 6u);
  EXPECT_EQ(stats.iterations, 1);
  EXPECT_EQ(stats.messages, 0);
  EXPECT_TRUE(ms::luby_mis_parallel(gr::Graph(0), 1).empty());
}

TEST(Ledger, AccumulatesPerSection) {
  rt::RoundLedger ledger;
  ledger.charge("a", 3, 10);
  ledger.charge("b", 2, 5);
  ledger.charge("a", 1, 1);
  EXPECT_EQ(ledger.rounds(), 6);
  EXPECT_EQ(ledger.messages(), 16);
  EXPECT_EQ(ledger.rounds_by_section().at("a"), 4);
  EXPECT_EQ(ledger.rounds_by_section().at("b"), 2);
  EXPECT_THROW(ledger.charge("c", -1, 0), std::invalid_argument);
}

TEST(SyncNetwork, DeliversAtRoundBoundary) {
  gr::Graph topo(3);
  topo.add_edge(0, 1, 1.0);
  topo.add_edge(1, 2, 1.0);
  rt::RoundLedger ledger;
  rt::SyncNetwork net(topo, &ledger, "test");
  net.send(0, 1, {42, 3.14, 0});
  EXPECT_TRUE(net.inbox(1).empty());  // nothing before the round ends
  net.end_round();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].first, 0);
  EXPECT_EQ(net.inbox(1)[0].second.kind, 42);
  EXPECT_EQ(ledger.rounds(), 1);
  EXPECT_EQ(ledger.messages(), 1);
  net.end_round();
  EXPECT_TRUE(net.inbox(1).empty());  // inboxes are per-round
}

TEST(SyncNetwork, BroadcastReachesAllNeighbors) {
  gr::Graph topo(4);
  topo.add_edge(0, 1, 1.0);
  topo.add_edge(0, 2, 1.0);
  topo.add_edge(0, 3, 1.0);
  rt::SyncNetwork net(topo, nullptr, "test");
  net.broadcast(0, {1, 0.0, 0});
  net.end_round();
  for (int v = 1; v <= 3; ++v) EXPECT_EQ(net.inbox(v).size(), 1u);
  EXPECT_EQ(net.messages(), 3);
}

TEST(SyncNetwork, EnforcesTopology) {
  gr::Graph topo(3);
  topo.add_edge(0, 1, 1.0);
  rt::SyncNetwork net(topo, nullptr, "test");
  EXPECT_THROW(net.send(0, 2, {}), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(net.inbox(9)), std::invalid_argument);
}
