# Observability smoke test for localspan_cli, run as a CTest script:
#   cmake -DCLI=<path> -DWORK_DIR=<dir> -P cli_obs_smoke.cmake
#
# Drives the demo-mode batched dynamic pipeline with --trace/--obs-json and
# validates the exported artifacts with CMake's JSON parser: the Chrome
# trace must carry events on at least two distinct thread tracks (main +
# pool workers), and the metrics snapshot must carry the dyn.* counters the
# batch path is instrumented with.

if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<localspan_cli> -DWORK_DIR=<dir> -P cli_obs_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${CLI}" dynamic --batch --threads 2 --n 512 --events 64
          --trace obs_trace.json --obs-json obs_stats.json
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "localspan_cli dynamic --batch exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT out MATCHES "final audit: PASS")
  message(FATAL_ERROR "dynamic --batch did not pass its final audit:\n${out}")
endif()
if(NOT out MATCHES "per-region harvest:")
  message(FATAL_ERROR "dynamic --batch did not print per-region obs stats:\n${out}")
endif()

foreach(artifact obs_trace.json obs_stats.json)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "dynamic --batch did not create ${artifact}")
  endif()
endforeach()

# --- Chrome trace: parseable, with >= 2 distinct tids among the X events ---
file(READ "${WORK_DIR}/obs_trace.json" trace)
string(JSON n_events ERROR_VARIABLE ev_err LENGTH "${trace}" "traceEvents")
if(NOT ev_err STREQUAL "NOTFOUND")
  message(FATAL_ERROR "obs_trace.json has no traceEvents array: ${ev_err}")
endif()
if(n_events LESS 2)
  message(FATAL_ERROR "obs_trace.json has only ${n_events} trace events")
endif()
# CMake's string(JSON) reparses the whole document per GET, so scanning a
# many-thousand-event trace is quadratic; the first few hundred events
# already contain the metadata block and events from every track.
set(scan_cap 400)
math(EXPR last_event "${n_events} - 1")
if(last_event GREATER ${scan_cap})
  set(last_event ${scan_cap})
endif()
set(tids "")
set(x_events 0)
set(meta_events 0)
foreach(idx RANGE ${last_event})
  string(JSON ph GET "${trace}" "traceEvents" ${idx} "ph")
  string(JSON tid GET "${trace}" "traceEvents" ${idx} "tid")
  if(ph STREQUAL "X")
    math(EXPR x_events "${x_events} + 1")
    list(APPEND tids "${tid}")
    string(JSON dur GET "${trace}" "traceEvents" ${idx} "dur")
    if(dur LESS 0)
      message(FATAL_ERROR "obs_trace.json event ${idx} has negative duration ${dur}")
    endif()
  elseif(ph STREQUAL "M")
    math(EXPR meta_events "${meta_events} + 1")
  endif()
endforeach()
list(REMOVE_DUPLICATES tids)
list(LENGTH tids n_tracks)
if(x_events LESS 1)
  message(FATAL_ERROR "obs_trace.json has no complete (ph=X) events")
endif()
if(n_tracks LESS 2)
  message(FATAL_ERROR "obs_trace.json spans only ${n_tracks} thread track(s) — expected the "
    "main thread plus at least one pool worker at --threads 2")
endif()
if(meta_events LESS n_tracks)
  message(FATAL_ERROR "obs_trace.json has ${meta_events} thread_name metadata events for "
    "${n_tracks} tracks")
endif()

# --- Metrics snapshot: dyn.* counters and the per-region histograms -------
file(READ "${WORK_DIR}/obs_stats.json" stats)
string(JSON stats_enabled GET "${stats}" "enabled")
if(NOT stats_enabled STREQUAL "ON" AND NOT stats_enabled STREQUAL "true")
  message(FATAL_ERROR "obs_stats.json says enabled=${stats_enabled}")
endif()
foreach(counter dyn.events dyn.batches dyn.edges_added)
  string(JSON val ERROR_VARIABLE c_err GET "${stats}" "counters" "${counter}")
  if(NOT c_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "obs_stats.json lacks counter '${counter}'")
  endif()
  if(val LESS 1)
    message(FATAL_ERROR "obs_stats.json counter ${counter} is ${val}, expected >= 1")
  endif()
endforeach()
foreach(hist dyn.regions dyn.region_ball dyn.region_harvest_us)
  string(JSON hcount ERROR_VARIABLE h_err GET "${stats}" "histograms" "${hist}" "count")
  if(NOT h_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "obs_stats.json lacks histogram '${hist}'")
  endif()
  if(hcount LESS 1)
    message(FATAL_ERROR "obs_stats.json histogram ${hist} is empty")
  endif()
endforeach()
string(JSON batch_count GET "${stats}" "spans" "dyn.apply_batch" "count")
if(batch_count LESS 1)
  message(FATAL_ERROR "obs_stats.json has no dyn.apply_batch span")
endif()

message(STATUS "cli_obs_smoke: trace has ${x_events} events on ${n_tracks} tracks; all checks passed")
