// Tests for the synchronous message-passing simulator (runtime/network.hpp):
// error paths, inbox lifecycle between rounds, and round/message accounting.
#include <gtest/gtest.h>

#include <limits>

#include "graph/graph.hpp"
#include "runtime/ledger.hpp"
#include "runtime/network.hpp"

namespace gr = localspan::graph;
namespace rt = localspan::runtime;

namespace {

/// A 4-path 0-1-2-3: enough topology for neighbor/non-neighbor cases.
gr::Graph path4() {
  gr::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  return g;
}

}  // namespace

TEST(SyncNetwork, SendOnNonEdgeThrows) {
  const gr::Graph g = path4();
  rt::SyncNetwork net(g, nullptr, "test");
  EXPECT_THROW(net.send(0, 2, {}), std::invalid_argument);  // not an edge
  EXPECT_THROW(net.send(0, 3, {}), std::invalid_argument);
  EXPECT_THROW(net.send(0, 0, {}), std::invalid_argument);  // self-message
  // The LOCAL-model constraint rejects before staging: nothing delivered.
  net.end_round();
  EXPECT_EQ(net.messages(), 0);
  EXPECT_TRUE(net.inbox(2).empty());
}

TEST(SyncNetwork, InboxOutOfRangeThrows) {
  const gr::Graph g = path4();
  rt::SyncNetwork net(g, nullptr, "test");
  EXPECT_THROW(static_cast<void>(net.inbox(-1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(net.inbox(4)), std::invalid_argument);
}

TEST(SyncNetwork, SendOutOfRangeIdsThrow) {
  const gr::Graph g = path4();
  rt::SyncNetwork net(g, nullptr, "test");
  EXPECT_THROW(net.send(-1, 1, {}), std::invalid_argument);
  EXPECT_THROW(net.send(0, 4, {}), std::invalid_argument);
  EXPECT_THROW(net.send(4, 0, {}), std::invalid_argument);
  EXPECT_THROW(net.send(0, 1000000, {}), std::invalid_argument);
  // Rejected before staging: nothing is delivered.
  net.end_round();
  EXPECT_EQ(net.messages(), 0);
}

TEST(SyncNetwork, BroadcastOutOfRangeIdThrows) {
  const gr::Graph g = path4();
  rt::SyncNetwork net(g, nullptr, "test");
  EXPECT_THROW(net.broadcast(-1, {}), std::invalid_argument);
  EXPECT_THROW(net.broadcast(4, {}), std::invalid_argument);
  net.end_round();
  EXPECT_EQ(net.messages(), 0);
}

TEST(SyncNetwork, NonFinitePacketValueThrows) {
  const gr::Graph g = path4();
  rt::SyncNetwork net(g, nullptr, "test");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // A NaN value smuggled through a comparison-based protocol (Luby's strict
  // minimum) would poison every downstream decision — typed rejection.
  EXPECT_THROW(net.send(0, 1, {1, nan, 0}), std::domain_error);
  EXPECT_THROW(net.send(0, 1, {1, inf, 0}), std::domain_error);
  EXPECT_THROW(net.send(0, 1, {1, -inf, 0}), std::domain_error);
  EXPECT_THROW(net.broadcast(1, {1, nan, 0}), std::domain_error);
  net.end_round();
  EXPECT_EQ(net.messages(), 0);
  // Finite values still pass.
  net.send(0, 1, {1, 0.0, 0});
  net.end_round();
  EXPECT_EQ(net.messages(), 1);
}

TEST(SyncNetwork, DeliveryAndInboxClearingBetweenRounds) {
  const gr::Graph g = path4();
  rt::SyncNetwork net(g, nullptr, "test");

  // Round 1: 0 -> 1 and 2 -> 1.
  net.send(0, 1, {7, 0.5, 42});
  net.send(2, 1, {8, 1.5, 43});
  // Nothing is visible before the round barrier.
  EXPECT_TRUE(net.inbox(1).empty());
  net.end_round();

  const auto& inbox1 = net.inbox(1);
  ASSERT_EQ(inbox1.size(), 2u);
  EXPECT_EQ(inbox1[0].first, 0);
  EXPECT_EQ(inbox1[0].second.kind, 7);
  EXPECT_DOUBLE_EQ(inbox1[0].second.value, 0.5);
  EXPECT_EQ(inbox1[0].second.from_payload, 42);
  EXPECT_EQ(inbox1[1].first, 2);

  // Round 2 with no sends: last round's inbox must be cleared, not leak.
  net.end_round();
  EXPECT_TRUE(net.inbox(1).empty());

  // Round 3: a fresh send replaces, not appends.
  net.send(1, 2, {9, 0.0, 0});
  net.end_round();
  ASSERT_EQ(net.inbox(2).size(), 1u);
  EXPECT_EQ(net.inbox(2)[0].second.kind, 9);
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(SyncNetwork, BroadcastReachesExactlyTheNeighbors) {
  const gr::Graph g = path4();
  rt::SyncNetwork net(g, nullptr, "test");
  net.broadcast(1, {3, 0.25, 1});
  net.end_round();
  ASSERT_EQ(net.inbox(0).size(), 1u);
  ASSERT_EQ(net.inbox(2).size(), 1u);
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_TRUE(net.inbox(3).empty());
  EXPECT_EQ(net.messages(), 2);
}

TEST(SyncNetwork, RoundAndMessageCountersAccumulate) {
  const gr::Graph g = path4();
  rt::SyncNetwork net(g, nullptr, "test");
  EXPECT_EQ(net.rounds(), 0);
  EXPECT_EQ(net.messages(), 0);

  net.send(0, 1, {});
  net.end_round();
  EXPECT_EQ(net.rounds(), 1);
  EXPECT_EQ(net.messages(), 1);

  // Empty rounds still count as rounds (synchronous time advances).
  net.end_round();
  EXPECT_EQ(net.rounds(), 2);
  EXPECT_EQ(net.messages(), 1);

  net.broadcast(2, {});
  net.send(3, 2, {});
  net.end_round();
  EXPECT_EQ(net.rounds(), 3);
  EXPECT_EQ(net.messages(), 4);
}

TEST(SyncNetwork, LedgerChargedPerSection) {
  const gr::Graph g = path4();
  rt::RoundLedger ledger;
  {
    rt::SyncNetwork net(g, &ledger, "phase-a");
    net.send(0, 1, {});
    net.end_round();
    net.end_round();
  }
  {
    rt::SyncNetwork net(g, &ledger, "phase-b");
    net.broadcast(1, {});
    net.end_round();
  }
  EXPECT_EQ(ledger.rounds(), 3);
  EXPECT_EQ(ledger.messages(), 3);
  ASSERT_EQ(ledger.rounds_by_section().size(), 2u);
  EXPECT_EQ(ledger.rounds_by_section().at("phase-a"), 2);
  EXPECT_EQ(ledger.rounds_by_section().at("phase-b"), 1);
}
