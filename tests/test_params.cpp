// Tests for parameter derivation (Theorem 10/13 constraint satisfaction),
// boundary values of the validation conditions (named-violation messages),
// and the geometric bin schema of §2.
#include <gtest/gtest.h>

#include <algorithm>
#include <numbers>

#include "core/bins.hpp"
#include "core/params.hpp"

namespace core = localspan::core;

namespace {

/// The std::invalid_argument raised by p.validate(), or "" if none.
std::string validation_message(const core::Params& p) {
  try {
    p.validate();
    return {};
  } catch (const std::invalid_argument& ex) {
    return ex.what();
  }
}

}  // namespace

class StrictParams : public ::testing::TestWithParam<double> {};

TEST_P(StrictParams, SatisfyEveryTheoremCondition) {
  const double eps = GetParam();
  const core::Params p = core::Params::strict_params(eps, 0.75);
  EXPECT_TRUE(p.satisfies_stretch_conditions()) << p.describe();
  EXPECT_TRUE(p.satisfies_weight_conditions()) << p.describe();
  // Spot-check the raw inequalities from the paper.
  EXPECT_GT(p.t1, 1.0);
  EXPECT_LT(p.t1, p.t);
  EXPECT_GT(p.delta, 0.0);
  EXPECT_LE(p.delta, (p.t - p.t1) / 4.0);
  EXPECT_LT(p.delta, (p.t - 1.0) / (6.0 + 2.0 * p.t));
  const double td = p.t1 * (1.0 - 2.0 * p.delta) / (1.0 + 6.0 * p.delta);
  EXPECT_NEAR(td, p.t_delta, 1e-12);
  EXPECT_GT(p.t_delta, 1.0);
  EXPECT_GT(p.r, 1.0);
  EXPECT_LT(p.r, (p.t_delta + 1.0) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, StrictParams,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0));

class PracticalParams : public ::testing::TestWithParam<double> {};

TEST_P(PracticalParams, KeepStretchConditions) {
  const core::Params p = core::Params::practical_params(GetParam(), 0.75);
  EXPECT_TRUE(p.satisfies_stretch_conditions()) << p.describe();
  EXPECT_GT(p.r, core::Params::strict_params(GetParam(), 0.75).r);  // fewer bins
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, PracticalParams, ::testing::Values(0.1, 0.25, 0.5, 1.0, 2.0));

TEST(Params, RejectsBadInputs) {
  EXPECT_THROW(core::Params::strict_params(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(core::Params::strict_params(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(core::Params::strict_params(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(core::Params::strict_params(0.5, 1.5), std::invalid_argument);
}

TEST(Params, ValidateCatchesTampering) {
  core::Params p = core::Params::strict_params(0.5, 0.75);
  p.delta = 0.4;  // way past every bound
  EXPECT_THROW(p.validate(), std::invalid_argument);
  core::Params q = core::Params::strict_params(0.5, 0.75);
  q.t1 = q.t + 0.1;
  EXPECT_THROW(q.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Boundary values of the sufficient conditions. Registry- or caller-supplied
// parameter sets must fail loudly, with the violated condition named in the
// message (not just the parameter dump).
// ---------------------------------------------------------------------------

TEST(ParamsBoundaries, ThetaAtPiOverFourIsRejectedByName) {
  core::Params p = core::Params::strict_params(0.5, 0.75);
  p.theta = std::numbers::pi / 4.0;  // the Lemma 3 interval is open at pi/4
  EXPECT_FALSE(p.satisfies_stretch_conditions());
  const std::string msg = validation_message(p);
  EXPECT_NE(msg.find("theta"), std::string::npos) << msg;
  EXPECT_NE(msg.find("Lemma 3"), std::string::npos) << msg;
}

TEST(ParamsBoundaries, ThetaAboveTheStretchBoundIsRejected) {
  core::Params p = core::Params::practical_params(0.5, 0.75);
  // cos(theta) - sin(theta) >= 1/t fails well before pi/4 for small t.
  p.theta = 0.999 * std::numbers::pi / 4.0;
  EXPECT_FALSE(p.satisfies_stretch_conditions());
  EXPECT_NE(validation_message(p).find("cos(theta) - sin(theta) >= 1/t"), std::string::npos);
}

TEST(ParamsBoundaries, DeltaAtTheTheorem13CeilingIsRejectedByName) {
  core::Params p = core::Params::strict_params(0.5, 0.75);
  const double ceiling = std::min((p.t - 1.0) / (6.0 + 2.0 * p.t), (p.t - p.t1) / 4.0);
  p.delta = ceiling;  // Theorem 13 requires strict inequality
  EXPECT_FALSE(p.satisfies_weight_conditions());
  const std::string msg = validation_message(p);
  EXPECT_NE(msg.find("delta"), std::string::npos) << msg;
  EXPECT_NE(msg.find("Theorem 13"), std::string::npos) << msg;
}

TEST(ParamsBoundaries, DeltaAtTheStretchCeilingIsAccepted) {
  // The Theorem 10 bound delta <= (t - t1)/4 is inclusive: the practical
  // preset (no weight-side requirements) must accept the exact boundary.
  core::Params p = core::Params::practical_params(0.5, 0.75);
  p.delta = (p.t - p.t1) / 4.0;
  EXPECT_TRUE(p.satisfies_stretch_conditions());
  EXPECT_NO_THROW(p.validate());
}

TEST(ParamsBoundaries, T1ReachingTIsRejectedByName) {
  core::Params p = core::Params::practical_params(0.5, 0.75);
  p.t1 = p.t;  // 1 < t1 < t is open at t
  EXPECT_FALSE(p.satisfies_stretch_conditions());
  EXPECT_NE(validation_message(p).find("t1 < t"), std::string::npos);
}

TEST(ParamsBoundaries, T1ApproachingTStarvesDelta) {
  // As t1 -> t the delta budget (t - t1)/4 collapses below any fixed delta;
  // the violated condition must name the delta/t1 coupling.
  core::Params p = core::Params::practical_params(0.5, 0.75);
  p.t1 = p.t - 1e-12;
  EXPECT_FALSE(p.satisfies_stretch_conditions());
  EXPECT_NE(validation_message(p).find("delta <= (t - t1)/4"), std::string::npos);
}

TEST(ParamsBoundaries, EveryViolationIsListed) {
  core::Params p;  // default-constructed: t1 = delta = theta = r = 0
  const std::vector<std::string> violated = p.violated_conditions();
  EXPECT_GE(violated.size(), 4u);
  const std::string msg = validation_message(p);
  for (const std::string& v : violated) {
    EXPECT_NE(msg.find(v), std::string::npos) << "message misses: " << v;
  }
  EXPECT_TRUE(core::Params::strict_params(0.5, 0.75).violated_conditions().empty());
}

TEST(Params, DescribeMentionsMode) {
  EXPECT_NE(core::Params::strict_params(0.5, 0.75).describe().find("strict"), std::string::npos);
  EXPECT_NE(core::Params::practical_params(0.5, 0.75).describe().find("practical"),
            std::string::npos);
}

TEST(LogStar, KnownValues) {
  EXPECT_EQ(core::log_star(1.0), 0);
  EXPECT_EQ(core::log_star(2.0), 1);
  EXPECT_EQ(core::log_star(4.0), 2);
  EXPECT_EQ(core::log_star(16.0), 3);
  EXPECT_EQ(core::log_star(65536.0), 4);
  EXPECT_EQ(core::log_star(1e9), 5);
}

TEST(Bins, BoundariesAreExact) {
  const core::BinSchema schema(0.5, 2.0, 100);  // w0 = 0.005
  EXPECT_DOUBLE_EQ(schema.w0(), 0.005);
  EXPECT_EQ(schema.bin_of(0.005), 0);
  EXPECT_EQ(schema.bin_of(0.0049), 0);
  EXPECT_EQ(schema.bin_of(0.0051), 1);
  EXPECT_EQ(schema.bin_of(0.01), 1);    // W_1 = 0.01, I_1 = (0.005, 0.01]
  EXPECT_EQ(schema.bin_of(0.0101), 2);  // just over W_1
}

TEST(Bins, InvariantHoldsForRandomLengths) {
  const core::BinSchema schema(0.75, 1.07, 4096);
  for (int k = 1; k <= 2000; ++k) {
    const double len = k / 2000.0;
    const int b = schema.bin_of(len);
    ASSERT_GE(b, 0);
    if (b == 0) {
      EXPECT_LE(len, schema.w0());
    } else {
      EXPECT_GT(len, schema.W(b - 1)) << len;
      EXPECT_LE(len, schema.W(b)) << len;
    }
  }
}

TEST(Bins, MaxBinCoversUnitLengths) {
  for (double r : {1.02, 1.5, 2.0}) {
    for (int n : {10, 1000, 100000}) {
      const core::BinSchema schema(0.6, r, n);
      EXPECT_LE(schema.bin_of(1.0), schema.max_bin()) << "r=" << r << " n=" << n;
    }
  }
}

TEST(Bins, GrowLogarithmicallyWithN) {
  const core::BinSchema s1(0.75, 1.5, 1 << 8);
  const core::BinSchema s2(0.75, 1.5, 1 << 16);
  // m = ceil(log_r(n/alpha)): doubling the exponent roughly doubles m.
  EXPECT_NEAR(static_cast<double>(s2.max_bin()) / s1.max_bin(), 2.0, 0.35);
}

TEST(Bins, RejectsBadInputs) {
  EXPECT_THROW(core::BinSchema(0.5, 1.0, 100), std::invalid_argument);
  EXPECT_THROW(core::BinSchema(0.5, 2.0, 0), std::invalid_argument);
  EXPECT_THROW(core::BinSchema(1.5, 2.0, 100), std::invalid_argument);
  const core::BinSchema s(0.5, 2.0, 100);
  EXPECT_THROW(static_cast<void>(s.bin_of(0.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(s.W(-1)), std::invalid_argument);
}

TEST(Bins, GroupingPartitionsEdges) {
  const core::BinSchema schema(0.5, 1.3, 64);
  std::vector<localspan::graph::Edge> edges;
  std::vector<double> lens;
  for (int k = 1; k <= 50; ++k) {
    edges.push_back({0, k, k / 50.0});
    lens.push_back(k / 50.0);
  }
  const auto bins = core::group_edges_by_bin(edges, schema, lens);
  std::size_t total = 0;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    for (const auto& e : bins[i]) {
      EXPECT_EQ(schema.bin_of(e.w), static_cast<int>(i));
    }
    total += bins[i].size();
  }
  EXPECT_EQ(total, edges.size());
  EXPECT_THROW(static_cast<void>(core::group_edges_by_bin(edges, schema, {})),
               std::invalid_argument);
}
