// Tests for the distributed relaxed greedy algorithm (§3): same three
// spanner properties as the sequential algorithm plus round accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "core/distributed.hpp"
#include "core/verify.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "scenario_matrix.hpp"
#include "ubg/generator.hpp"

namespace core = localspan::core;
namespace gr = localspan::graph;
namespace ti = localspan::testinfra;
namespace ub = localspan::ubg;

namespace {

ub::UbgInstance instance(std::uint64_t seed, int n = 150, double alpha = 0.75) {
  ub::UbgConfig cfg;
  cfg.n = n;
  cfg.alpha = alpha;
  cfg.seed = seed;
  return ub::make_ubg(cfg);
}

}  // namespace

struct DistCase {
  double eps;
  double alpha;
  std::uint64_t seed;
};

class DistributedEndToEnd : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedEndToEnd, ThreePropertiesHold) {
  const auto& c = GetParam();
  const auto inst = instance(c.seed, 140, c.alpha);
  const core::Params params = core::Params::practical_params(c.eps, c.alpha);
  const auto result = core::distributed_relaxed_greedy(inst, params, {}, c.seed);
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.base.spanner), params.t * (1.0 + 1e-9));
  EXPECT_LE(result.base.spanner.max_degree(), 48);
  EXPECT_LE(gr::lightness(inst.g, result.base.spanner), 8.0);
  for (const gr::Edge& e : result.base.spanner.edges()) {
    EXPECT_TRUE(inst.g.has_edge(e.u, e.v));
  }
  EXPECT_EQ(gr::connected_components(inst.g).count,
            gr::connected_components(result.base.spanner).count);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistributedEndToEnd,
                         ::testing::Values(DistCase{0.5, 0.75, 1}, DistCase{0.25, 0.75, 2},
                                           DistCase{1.0, 0.6, 3}, DistCase{0.5, 0.5, 4},
                                           DistCase{0.5, 1.0, 5}));

// Scenario matrix (trimmed grid): the distributed driver must pass the full
// verifier on every (dim, placement, n) cell of the shared matrix.
class DistributedScenarioMatrix : public ::testing::TestWithParam<ti::Scenario> {};

TEST_P(DistributedScenarioMatrix, VerifierPassesAcrossTheMatrix) {
  const ti::Scenario& sc = GetParam();
  const auto inst = sc.make();
  const core::Params params = core::Params::practical_params(0.5, sc.alpha);
  const auto result = core::distributed_relaxed_greedy(inst, params, {}, sc.seed);
  EXPECT_TRUE(core::verify_spanner(inst, result.base.spanner, params.t).ok()) << sc.name();
  EXPECT_GT(result.net.rounds_measured, 0) << sc.name();
}

INSTANTIATE_TEST_SUITE_P(Matrix, DistributedScenarioMatrix,
                         ::testing::ValuesIn(ti::smoke_matrix()), ti::ScenarioName{});

TEST(Distributed, StrictParamsAlsoWork) {
  const auto inst = instance(9, 100);
  const core::Params params = core::Params::strict_params(0.5, 0.75);
  const auto result = core::distributed_relaxed_greedy(inst, params, {}, 9);
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.base.spanner), params.t * (1.0 + 1e-9));
}

TEST(Distributed, DeterministicPerSeed) {
  const auto inst = instance(11, 120);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  const auto r1 = core::distributed_relaxed_greedy(inst, params, {}, 77);
  const auto r2 = core::distributed_relaxed_greedy(inst, params, {}, 77);
  EXPECT_EQ(r1.base.spanner, r2.base.spanner);
  EXPECT_EQ(r1.net.rounds_measured, r2.net.rounds_measured);
  EXPECT_EQ(r1.net.messages, r2.net.messages);
}

TEST(Distributed, RoundAccountingIsConsistent) {
  const auto inst = instance(13, 120);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  const auto result = core::distributed_relaxed_greedy(inst, params, {}, 5);
  EXPECT_GT(result.net.rounds_measured, 0);
  EXPECT_GT(result.net.messages, 0);
  EXPECT_EQ(result.net.per_phase.size(),
            result.base.phases.size() - 1);  // one entry per nonempty bin
  long long sum = 3;                         // phase 0
  for (const core::PhaseRounds& pr : result.net.per_phase) {
    EXPECT_GT(pr.cover, 0);
    EXPECT_GT(pr.select, 0);
    EXPECT_GT(pr.cluster_graph, 0);
    EXPECT_GT(pr.query, 0);
    EXPECT_GE(pr.redundancy, 0);
    sum += pr.total_measured();
  }
  EXPECT_EQ(sum, result.net.rounds_measured);
  // The ledger agrees with the stats.
  EXPECT_EQ(result.ledger.rounds(), result.net.rounds_measured);
  EXPECT_EQ(result.ledger.messages(), result.net.messages);
}

TEST(Distributed, KmwModelIsPolylog) {
  // The KMW-model rounds should be within a polylog factor of log n * log* n
  // times the number of phases; sanity-check the scale.
  const auto inst = instance(15, 200);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  const auto result = core::distributed_relaxed_greedy(inst, params, {}, 5);
  EXPECT_GT(result.net.rounds_kmw_model, 0);
  const double n = 200;
  const double budget =
      80.0 * std::log2(n) * core::log_star(n);  // generous constant
  EXPECT_LE(static_cast<double>(result.net.rounds_kmw_model), budget);
}

TEST(Distributed, MisInvocationsArePerPhaseBounded) {
  const auto inst = instance(17, 120);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  const auto result = core::distributed_relaxed_greedy(inst, params, {}, 3);
  // At most two MIS runs per nonempty phase (cover + redundancy).
  EXPECT_LE(result.net.mis_invocations, 2 * result.base.nonempty_bins);
  EXPECT_GE(result.net.mis_invocations, result.base.nonempty_bins);
  EXPECT_GT(result.net.max_luby_iterations, 0);
}

TEST(Distributed, DisabledRedundancySkipsThoseRounds) {
  const auto inst = instance(19, 120);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  core::RelaxedGreedyOptions opts;
  opts.redundancy_removal = false;
  const auto result = core::distributed_relaxed_greedy(inst, params, opts, 3);
  for (const core::PhaseRounds& pr : result.net.per_phase) EXPECT_EQ(pr.redundancy, 0);
  for (const core::PhaseStats& st : result.base.phases) EXPECT_EQ(st.removed, 0);
}

TEST(Distributed, RejectsAlphaMismatch) {
  const auto inst = instance(21, 60, 0.75);
  const core::Params params = core::Params::practical_params(0.5, 0.6);
  EXPECT_THROW(static_cast<void>(core::distributed_relaxed_greedy(inst, params)),
               std::invalid_argument);
}

TEST(Distributed, SmallAndSparseInstances) {
  // n=2 with a single edge; phase 0 or a single bin, must not crash.
  ub::UbgConfig cfg;
  cfg.n = 2;
  cfg.alpha = 1.0;
  cfg.side = 0.5;
  cfg.seed = 1;
  const auto inst = ub::make_ubg(cfg);
  const core::Params params = core::Params::practical_params(0.5, 1.0);
  const auto result = core::distributed_relaxed_greedy(inst, params, {}, 1);
  EXPECT_EQ(result.base.spanner.m(), inst.g.m());  // nothing to prune at n=2
}
