// Tests for the adversarial asynchronous runtime (runtime/async_network.hpp)
// and the reliable-delivery layer (runtime/reliable.hpp): config validation,
// deterministic replay, round-semantics reconstruction, the fault-matrix
// bit-identity claim for the distributed construction, and the
// retry-budget-exhaustion error path.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <tuple>
#include <vector>

#include "core/distributed.hpp"
#include "graph/graph.hpp"
#include "mis/luby.hpp"
#include "obs/obs.hpp"
#include "runtime/async_network.hpp"
#include "runtime/network.hpp"
#include "runtime/reliable.hpp"
#include "scenario_matrix.hpp"

namespace core = localspan::core;
namespace gr = localspan::graph;
namespace mis = localspan::mis;
namespace obs = localspan::obs;
namespace rt = localspan::runtime;
namespace ti = localspan::testinfra;

namespace {

gr::Graph path4() {
  gr::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  return g;
}

/// The fault matrix: every adversary shape the robustness claim covers.
/// Latency/jitter stay at defaults so virtual time is always meaningful.
struct FaultPreset {
  const char* name;
  rt::AdversaryConfig cfg;
};

std::vector<FaultPreset> fault_presets() {
  std::vector<FaultPreset> out;
  {
    rt::AdversaryConfig c;  // pure asynchrony: latency + jitter only.
    out.push_back({"jitter", c});
  }
  {
    rt::AdversaryConfig c;
    c.drop_prob = 0.2;
    out.push_back({"loss02", c});
  }
  {
    rt::AdversaryConfig c;
    c.dup_prob = 0.3;
    c.reorder_prob = 0.5;
    out.push_back({"dupreorder", c});
  }
  {
    rt::AdversaryConfig c;
    c.straggler_fraction = 0.2;
    c.straggler_factor = 8.0;
    out.push_back({"straggler", c});
  }
  {
    rt::AdversaryConfig c;
    c.partitions.push_back({2.0, 12.0, 7});  // heals within the rto schedule.
    out.push_back({"healpartition", c});
  }
  {
    rt::AdversaryConfig c;
    c.drop_prob = 0.1;
    c.dup_prob = 0.1;
    c.reorder_prob = 0.2;
    c.straggler_fraction = 0.1;
    c.partitions.push_back({3.0, 20.0, 11});
    out.push_back({"combined", c});
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------------------

TEST(AdversaryConfig, RejectsOutOfDomainKnobs) {
  rt::AdversaryConfig c;
  c.drop_prob = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.dup_prob = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.base_latency = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.base_latency = 0.0;
  c.jitter = 0.0;  // zero-latency delivery collapses virtual time.
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.straggler_factor = 0.5;  // a "straggler" that speeds links up is a typo.
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.reorder_spread = std::numeric_limits<double>::infinity();
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  EXPECT_NO_THROW(c.validate());
}

TEST(ReliableConfig, RejectsOutOfDomainKnobs) {
  rt::ReliableConfig c;
  c.rto = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.backoff = 0.5;  // backoff < 1 would retransmit faster and faster.
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.rto_max = 1.0;  // below rto.
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.max_attempts = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  EXPECT_NO_THROW(c.validate());
}

// ---------------------------------------------------------------------------
// AsyncNetwork transport semantics.
// ---------------------------------------------------------------------------

TEST(AsyncNetwork, PostValidatesLikeTheSyncTransport) {
  const gr::Graph g = path4();
  rt::AsyncNetwork net(g, {});
  EXPECT_THROW(net.post(0, 2, {}), std::invalid_argument);   // not an edge
  EXPECT_THROW(net.post(-1, 1, {}), std::invalid_argument);  // out of range
  EXPECT_THROW(net.post(0, 4, {}), std::invalid_argument);
  rt::Frame bad;
  bad.payload.value = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(net.post(0, 1, bad), std::domain_error);
  EXPECT_EQ(net.stats().posted, 0);
  EXPECT_TRUE(net.idle());
}

TEST(AsyncNetwork, EventsPopInVirtualTimeOrder) {
  const gr::Graph g = path4();
  rt::AdversaryConfig cfg;
  cfg.reorder_prob = 1.0;  // heavy-tail delays guarantee out-of-post-order.
  cfg.reorder_spread = 16.0;
  rt::AsyncNetwork net(g, cfg);
  for (int i = 0; i < 32; ++i) net.post(1, 2, rt::Frame{1, static_cast<std::uint64_t>(i), {}});
  double last = -1.0;
  rt::AsyncEvent ev;
  int delivered = 0;
  while (net.next(ev)) {
    EXPECT_GE(ev.time, last);
    EXPECT_DOUBLE_EQ(ev.time, net.now());
    last = ev.time;
    ++delivered;
  }
  EXPECT_EQ(delivered, 32);
  EXPECT_EQ(net.stats().delivered, 32);
}

TEST(AsyncNetwork, DropAndDuplicateAccounting) {
  const gr::Graph g = path4();
  {
    rt::AdversaryConfig cfg;
    cfg.drop_prob = 1.0;
    rt::AsyncNetwork net(g, cfg);
    for (int i = 0; i < 16; ++i) net.post(0, 1, {});
    EXPECT_EQ(net.stats().dropped, 16);
    EXPECT_TRUE(net.idle());  // everything lost, nothing in flight.
  }
  {
    rt::AdversaryConfig cfg;
    cfg.dup_prob = 1.0;
    rt::AsyncNetwork net(g, cfg);
    for (int i = 0; i < 16; ++i) net.post(0, 1, {});
    EXPECT_EQ(net.stats().duplicated, 16);
    rt::AsyncEvent ev;
    int seen = 0;
    while (net.next(ev)) ++seen;
    EXPECT_EQ(seen, 32);  // every frame delivered twice.
  }
}

TEST(AsyncNetwork, PermanentPartitionDropsCrossTraffic) {
  const gr::Graph g = path4();
  rt::AdversaryConfig cfg;
  cfg.partitions.push_back({0.0, 0.0, 3});  // heal <= start: never heals.
  rt::AsyncNetwork net(g, cfg);
  int cross = 0;
  for (const gr::Edge& e : g.edges()) {
    if (net.partitioned(e.u, e.v, 0.0)) ++cross;
    EXPECT_EQ(net.partitioned(e.u, e.v, 0.0), net.partitioned(e.v, e.u, 0.0));
    net.post(e.u, e.v, {});
  }
  EXPECT_EQ(net.stats().partition_dropped, cross);
  EXPECT_EQ(net.stats().posted, g.m());
}

TEST(AsyncNetwork, SameSeedReplaysTheExactTranscript) {
  const gr::Graph g = path4();
  rt::AdversaryConfig cfg;
  cfg.seed = 42;
  cfg.drop_prob = 0.2;
  cfg.dup_prob = 0.3;
  cfg.reorder_prob = 0.4;
  cfg.straggler_fraction = 0.3;

  const auto run = [&](std::uint64_t seed) {
    rt::AdversaryConfig c = cfg;
    c.seed = seed;
    rt::AsyncNetwork net(g, c);
    net.set_record_transcript(true);
    for (int i = 0; i < 64; ++i) {
      net.post(i % 3, i % 3 + 1, rt::Frame{1, static_cast<std::uint64_t>(i), {1, 0.5, i}});
    }
    rt::AsyncEvent ev;
    while (net.next(ev)) {
    }
    return net.transcript();
  };

  const auto a = run(42);
  const auto b = run(42);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b);  // record-for-record identical replay.
  // A different seed draws a different fault pattern (on 64 transmissions a
  // collision of every drop/dup/latency draw is astronomically unlikely).
  const auto c = run(43);
  EXPECT_FALSE(a == c);
}

// ---------------------------------------------------------------------------
// ReliableNetwork: round semantics over the adversarial transport.
// ---------------------------------------------------------------------------

TEST(ReliableNetwork, ValidatesLikeTheSyncTransport) {
  const gr::Graph g = path4();
  rt::AsyncNetwork anet(g, {});
  rt::ReliableNetwork net(anet, {}, nullptr, "test");
  EXPECT_THROW(net.send(0, 2, {}), std::invalid_argument);
  EXPECT_THROW(net.send(0, 9, {}), std::invalid_argument);
  EXPECT_THROW(net.broadcast(-1, {}), std::invalid_argument);
  EXPECT_THROW(net.send(0, 1, {1, std::numeric_limits<double>::quiet_NaN(), 0}),
               std::domain_error);
  EXPECT_THROW(static_cast<void>(net.inbox(4)), std::invalid_argument);
  net.end_round();
  EXPECT_EQ(net.messages(), 0);
}

TEST(ReliableNetwork, InboxMatchesSyncNetworkUnderFaults) {
  const gr::Graph g = path4();
  rt::AdversaryConfig cfg;
  cfg.drop_prob = 0.2;
  cfg.dup_prob = 0.3;
  cfg.reorder_prob = 0.5;
  rt::AsyncNetwork anet(g, cfg);
  rt::ReliableNetwork rel(anet, {}, nullptr, "test");
  rt::SyncNetwork sync(g, nullptr, "test");

  for (int round = 0; round < 8; ++round) {
    // Ascending-sender staging, like every protocol in the repo.
    for (int v = 0; v < g.n(); ++v) {
      sync.broadcast(v, {round, 0.25 * v, v});
      rel.broadcast(v, {round, 0.25 * v, v});
    }
    sync.end_round();
    rel.end_round();
    for (int v = 0; v < g.n(); ++v) {
      const auto& sin = sync.inbox(v);
      const auto& rin = rel.inbox(v);
      ASSERT_EQ(sin.size(), rin.size()) << "round " << round << " node " << v;
      for (std::size_t i = 0; i < sin.size(); ++i) {
        EXPECT_EQ(sin[i].first, rin[i].first);
        EXPECT_EQ(sin[i].second.kind, rin[i].second.kind);
        EXPECT_DOUBLE_EQ(sin[i].second.value, rin[i].second.value);
        EXPECT_EQ(sin[i].second.from_payload, rin[i].second.from_payload);
      }
    }
    EXPECT_EQ(sync.rounds(), rel.rounds());
    EXPECT_EQ(sync.messages(), rel.messages());
  }
  // The adversary actually fired: retransmissions and suppressed dups exist.
  EXPECT_GT(anet.stats().dropped + anet.stats().duplicated, 0);
  EXPECT_GT(rel.stats().acks_received, 0);
}

TEST(ReliableNetwork, LedgerChargedLikeSync) {
  const gr::Graph g = path4();
  rt::RoundLedger sync_ledger;
  rt::RoundLedger rel_ledger;
  {
    rt::SyncNetwork net(g, &sync_ledger, "mis");
    net.broadcast(0, {});
    net.end_round();
    net.end_round();
  }
  {
    rt::AdversaryConfig cfg;
    cfg.drop_prob = 0.3;
    rt::AsyncNetwork anet(g, cfg);
    rt::ReliableNetwork net(anet, {}, &rel_ledger, "mis");
    net.broadcast(0, {});
    net.end_round();
    net.end_round();
  }
  EXPECT_EQ(sync_ledger.rounds(), rel_ledger.rounds());
  EXPECT_EQ(sync_ledger.messages(), rel_ledger.messages());
}

TEST(ReliableNetwork, RetryBudgetExhaustedOnPermanentPartition) {
  const gr::Graph g = path4();
  // Find a side seed that actually cuts an edge of the path (the bisection
  // sides are hashed, so scan deterministically).
  for (std::uint64_t side_seed = 1; side_seed < 64; ++side_seed) {
    rt::AdversaryConfig cfg;
    cfg.partitions.push_back({0.0, 0.0, side_seed});  // never heals.
    rt::AsyncNetwork probe(g, cfg);
    const gr::Edge* cut = nullptr;
    const auto edges = g.edges();
    for (const gr::Edge& e : edges) {
      if (probe.partitioned(e.u, e.v, 0.0)) {
        cut = &e;
        break;
      }
    }
    if (cut == nullptr) continue;

    rt::AsyncNetwork anet(g, cfg);
    rt::ReliableConfig rel_cfg;
    rel_cfg.max_attempts = 4;  // small budget: fail fast.
    rt::ReliableNetwork net(anet, rel_cfg, nullptr, "test");
    net.send(cut->u, cut->v, {1, 0.0, 0});
    try {
      net.end_round();
      FAIL() << "expected RetryBudgetExhausted";
    } catch (const rt::RetryBudgetExhausted& e) {
      EXPECT_EQ(e.from(), cut->u);
      EXPECT_EQ(e.to(), cut->v);
      EXPECT_EQ(e.attempts(), 4);
      EXPECT_NE(std::string(e.what()).find("retry budget"), std::string::npos);
    }
    // Every transmission died at the cut, none randomly.
    EXPECT_EQ(anet.stats().partition_dropped, 4);
    EXPECT_EQ(anet.stats().dropped, 0);
    return;
  }
  FAIL() << "no side seed in [1, 64) cut the 4-path; hash bisection broken?";
}

// ---------------------------------------------------------------------------
// Transport-generic Luby MIS: bit-identity across the fault matrix on the
// full standard scenario matrix (cheap: one MIS per cell x preset).
// ---------------------------------------------------------------------------

using MisCell = std::tuple<ti::Scenario, int>;

class AsyncMisFaultMatrix : public ::testing::TestWithParam<MisCell> {};

TEST_P(AsyncMisFaultMatrix, MisBitIdenticalToSync) {
  const auto& [sc, preset_idx] = GetParam();
  const FaultPreset preset = fault_presets()[static_cast<std::size_t>(preset_idx)];
  const auto inst = sc.make();

  mis::LubyStats sync_stats;
  const std::vector<int> sync_mis = mis::luby_mis(inst.g, sc.seed + 77, &sync_stats);

  rt::AdversaryConfig adv = preset.cfg;
  adv.seed = sc.seed * 1000003ULL + static_cast<std::uint64_t>(preset_idx);
  rt::AsyncNetwork anet(inst.g, adv);
  rt::ReliableNetwork rel(anet, {}, nullptr, "mis");
  mis::LubyStats async_stats;
  const std::vector<int> async_mis = mis::luby_mis_on(rel, inst.g, sc.seed + 77, &async_stats);

  EXPECT_EQ(sync_mis, async_mis) << sc.name() << " " << preset.name;
  EXPECT_EQ(sync_stats.iterations, async_stats.iterations);
  EXPECT_EQ(sync_stats.network_rounds, async_stats.network_rounds);
  EXPECT_EQ(sync_stats.messages, async_stats.messages);
}

struct MisCellName {
  std::string operator()(const ::testing::TestParamInfo<MisCell>& info) const {
    const auto& [sc, preset_idx] = info.param;
    return sc.name() + "_" + fault_presets()[static_cast<std::size_t>(preset_idx)].name;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Matrix, AsyncMisFaultMatrix,
    ::testing::Combine(::testing::ValuesIn(ti::standard_matrix()),
                       ::testing::Range(0, static_cast<int>(fault_presets().size()))),
    MisCellName{});

// ---------------------------------------------------------------------------
// End-to-end: relaxed-dist on the async runtime terminates and emits a
// spanner bit-identical to the synchronous build, for every fault preset.
// ---------------------------------------------------------------------------

namespace {

/// Sync reference per scenario, built once (the fault presets all compare
/// against the same synchronous construction).
const core::DistributedResult& sync_reference(const ti::Scenario& sc) {
  static std::map<std::string, core::DistributedResult> cache;
  auto it = cache.find(sc.name());
  if (it == cache.end()) {
    const auto inst = sc.make();
    const core::Params params = core::Params::practical_params(0.5, sc.alpha);
    it = cache.emplace(sc.name(), core::distributed_relaxed_greedy(inst, params, {}, sc.seed))
             .first;
  }
  return it->second;
}

}  // namespace

class AsyncDistFaultMatrix : public ::testing::TestWithParam<MisCell> {};

TEST_P(AsyncDistFaultMatrix, SpannerBitIdenticalToSync) {
  const auto& [sc, preset_idx] = GetParam();
  const FaultPreset preset = fault_presets()[static_cast<std::size_t>(preset_idx)];
  const auto inst = sc.make();
  const core::Params params = core::Params::practical_params(0.5, sc.alpha);

  core::NetOptions net;
  net.mode = core::NetMode::kAsync;
  net.adversary = preset.cfg;
  net.adversary.seed = sc.seed * 7919ULL + static_cast<std::uint64_t>(preset_idx);

  const core::DistributedResult async_r =
      core::distributed_relaxed_greedy(inst, params, {}, sc.seed, net);
  const core::DistributedResult& sync_r = sync_reference(sc);

  // Terminated (or we would not be here) and bit-identical: same edges, same
  // round/message accounting, same per-phase charges.
  EXPECT_TRUE(sync_r.base.spanner == async_r.base.spanner) << sc.name() << " " << preset.name;
  EXPECT_EQ(sync_r.net.rounds_measured, async_r.net.rounds_measured);
  EXPECT_EQ(sync_r.net.rounds_kmw_model, async_r.net.rounds_kmw_model);
  EXPECT_EQ(sync_r.net.messages, async_r.net.messages);
  EXPECT_EQ(sync_r.net.mis_invocations, async_r.net.mis_invocations);
  // The async transport really ran: physical traffic at least the app DATA.
  EXPECT_GT(async_r.net.async.invocations, 0);
  EXPECT_GE(async_r.net.async.physical.posted, async_r.net.async.protocol.data_sent);
  EXPECT_GT(async_r.net.async.convergence_time, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AsyncDistFaultMatrix,
    ::testing::Combine(::testing::ValuesIn(ti::smoke_matrix()),
                       ::testing::Range(0, static_cast<int>(fault_presets().size()))),
    MisCellName{});

// ---------------------------------------------------------------------------
// Deterministic replay: same seed => identical delivery transcript and
// identical net.async.* observability snapshot.
// ---------------------------------------------------------------------------

namespace {

struct AsyncRun {
  std::vector<rt::DeliveryRecord> transcript;
  std::vector<std::pair<std::string, std::int64_t>> net_counters;
  gr::Graph spanner{0};
};

AsyncRun run_async_once(const ti::Scenario& sc, const rt::AdversaryConfig& adv) {
  const auto inst = sc.make();
  const core::Params params = core::Params::practical_params(0.5, sc.alpha);
  core::NetOptions net;
  net.mode = core::NetMode::kAsync;
  net.adversary = adv;
  net.record_transcript = true;

  obs::reset();
  obs::set_enabled(true);
  core::DistributedResult r = core::distributed_relaxed_greedy(inst, params, {}, sc.seed, net);
  const obs::Snapshot snap = obs::snapshot();
  obs::set_enabled(false);
  obs::reset();

  AsyncRun out;
  out.transcript = std::move(r.net.async.transcript);
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("net.async.", 0) == 0) out.net_counters.emplace_back(name, value);
  }
  out.spanner = std::move(r.base.spanner);
  return out;
}

}  // namespace

TEST(AsyncReplay, SameSeedSameTranscriptAndObsSnapshot) {
  ti::Scenario sc;
  sc.n = 96;
  rt::AdversaryConfig adv;
  adv.seed = 5;
  adv.drop_prob = 0.15;
  adv.dup_prob = 0.1;
  adv.reorder_prob = 0.25;
  adv.straggler_fraction = 0.1;

  const AsyncRun a = run_async_once(sc, adv);
  const AsyncRun b = run_async_once(sc, adv);
  ASSERT_FALSE(a.transcript.empty());
  EXPECT_TRUE(a.transcript == b.transcript);
  EXPECT_EQ(a.net_counters, b.net_counters);
  EXPECT_TRUE(a.spanner == b.spanner);

  // A different adversary seed produces different traffic but — the
  // robustness claim — the identical spanner.
  rt::AdversaryConfig adv2 = adv;
  adv2.seed = 6;
  const AsyncRun c = run_async_once(sc, adv2);
  EXPECT_FALSE(a.transcript == c.transcript);
  EXPECT_TRUE(a.spanner == c.spanner);
}
