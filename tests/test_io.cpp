// Tests for instance serialization, DOT and CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "io/serialize.hpp"
#include "ubg/generator.hpp"

namespace io = localspan::io;
namespace ub = localspan::ubg;
namespace gr = localspan::graph;

namespace {

ub::UbgInstance sample(std::uint64_t seed, int dim = 2,
                       ub::Placement placement = ub::Placement::kUniform) {
  ub::UbgConfig cfg;
  cfg.n = 80;
  cfg.dim = dim;
  cfg.alpha = 0.7;
  cfg.placement = placement;
  cfg.seed = seed;
  return ub::make_ubg(cfg);
}

}  // namespace

TEST(Serialize, RoundTripIsExact) {
  const ub::UbgInstance inst = sample(3);
  std::stringstream ss;
  io::write_instance(ss, inst);
  const ub::UbgInstance back = io::read_instance(ss);
  EXPECT_EQ(back.config.n, inst.config.n);
  EXPECT_EQ(back.config.dim, inst.config.dim);
  EXPECT_DOUBLE_EQ(back.config.alpha, inst.config.alpha);
  EXPECT_DOUBLE_EQ(back.config.side, inst.config.side);
  EXPECT_EQ(back.config.seed, inst.config.seed);
  ASSERT_EQ(back.points.size(), inst.points.size());
  for (std::size_t i = 0; i < back.points.size(); ++i) {
    EXPECT_EQ(back.points[i], inst.points[i]) << i;  // bitwise-equal doubles
  }
  EXPECT_EQ(back.g, inst.g);
}

TEST(Serialize, RoundTripHigherDimAndPlacements) {
  for (int dim : {3, 4}) {
    const ub::UbgInstance inst = sample(5, dim, ub::Placement::kClustered);
    std::stringstream ss;
    io::write_instance(ss, inst);
    const ub::UbgInstance back = io::read_instance(ss);
    EXPECT_EQ(back.g, inst.g);
    EXPECT_EQ(back.config.placement, inst.config.placement);
  }
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(static_cast<void>(io::read_instance(empty)), std::runtime_error);
  std::stringstream wrong_magic("other-format v1\n");
  EXPECT_THROW(static_cast<void>(io::read_instance(wrong_magic)), std::runtime_error);
  std::stringstream wrong_version("localspan-instance v99\n");
  EXPECT_THROW(static_cast<void>(io::read_instance(wrong_version)), std::runtime_error);
  std::stringstream truncated("localspan-instance v1\n10 2 0.7");
  EXPECT_THROW(static_cast<void>(io::read_instance(truncated)), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const ub::UbgInstance inst = sample(7);
  const std::string path =
      (std::filesystem::temp_directory_path() / "localspan_io_test.lsi").string();
  io::save_instance(path, inst);
  const ub::UbgInstance back = io::load_instance(path);
  EXPECT_EQ(back.g, inst.g);
  std::remove(path.c_str());
  EXPECT_THROW(static_cast<void>(io::load_instance("/nonexistent/nowhere.lsi")),
               std::runtime_error);
}

TEST(Dot, ContainsNodesAndHighlights) {
  const ub::UbgInstance inst = sample(9);
  gr::Graph highlight(inst.g.n());
  const gr::Edge first = inst.g.edges().front();
  highlight.add_edge(first.u, first.v, first.w);
  std::stringstream ss;
  io::write_dot(ss, inst, inst.g, &highlight);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("graph localspan {"), std::string::npos);
  EXPECT_NE(dot.find("pos="), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("color=gray80"), std::string::npos);
  // Every vertex declared.
  for (int v = 0; v < inst.g.n(); ++v) {
    EXPECT_NE(dot.find("  " + std::to_string(v) + " ["), std::string::npos) << v;
  }
}

TEST(Csv, HeaderAndRows) {
  gr::Graph g(3);
  g.add_edge(0, 1, 0.25);
  g.add_edge(1, 2, 0.5);
  std::stringstream ss;
  io::write_edge_csv(ss, g);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "u,v,weight");
  int rows = 0;
  while (std::getline(ss, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 2);
}
