// Tests for instance serialization, DOT and CSV export.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>

#include "geom/point.hpp"
#include "io/serialize.hpp"
#include "ubg/generator.hpp"

namespace io = localspan::io;
namespace ub = localspan::ubg;
namespace gr = localspan::graph;

namespace {

ub::UbgInstance sample(std::uint64_t seed, int dim = 2,
                       ub::Placement placement = ub::Placement::kUniform) {
  ub::UbgConfig cfg;
  cfg.n = 80;
  cfg.dim = dim;
  cfg.alpha = 0.7;
  cfg.placement = placement;
  cfg.seed = seed;
  return ub::make_ubg(cfg);
}

}  // namespace

TEST(Serialize, RoundTripIsExact) {
  const ub::UbgInstance inst = sample(3);
  std::stringstream ss;
  io::write_instance(ss, inst);
  const ub::UbgInstance back = io::read_instance(ss);
  EXPECT_EQ(back.config.n, inst.config.n);
  EXPECT_EQ(back.config.dim, inst.config.dim);
  EXPECT_DOUBLE_EQ(back.config.alpha, inst.config.alpha);
  EXPECT_DOUBLE_EQ(back.config.side, inst.config.side);
  EXPECT_EQ(back.config.seed, inst.config.seed);
  ASSERT_EQ(back.points.size(), inst.points.size());
  for (std::size_t i = 0; i < back.points.size(); ++i) {
    EXPECT_EQ(back.points[i], inst.points[i]) << i;  // bitwise-equal doubles
  }
  EXPECT_EQ(back.g, inst.g);
}

TEST(Serialize, RoundTripHigherDimAndPlacements) {
  for (int dim : {3, 4}) {
    const ub::UbgInstance inst = sample(5, dim, ub::Placement::kClustered);
    std::stringstream ss;
    io::write_instance(ss, inst);
    const ub::UbgInstance back = io::read_instance(ss);
    EXPECT_EQ(back.g, inst.g);
    EXPECT_EQ(back.config.placement, inst.config.placement);
  }
}

TEST(Serialize, RoundTripsExtremeCoordinatesBitwise) {
  // The read path parses with std::from_chars; denormals, signed zeros and
  // max-magnitude doubles must survive a write/read cycle bitwise (the
  // writer's max_digits10 precision guarantees a recoverable text form).
  ub::UbgConfig cfg;
  cfg.n = 4;
  cfg.dim = 2;
  cfg.alpha = 0.7;
  ub::UbgInstance inst{cfg, {}, gr::Graph(4)};
  const double denormal = std::numeric_limits<double>::denorm_min();
  const double tiny = std::numeric_limits<double>::min() / 4.0;  // also subnormal
  const double huge = std::numeric_limits<double>::max();
  localspan::geom::Point p0(2), p1(2), p2(2), p3(2);
  p0[0] = 0.0;
  p0[1] = -0.0;
  p1[0] = denormal;
  p1[1] = -denormal;
  p2[0] = tiny;
  p2[1] = huge;
  p3[0] = -huge;
  p3[1] = 1.0;
  inst.points = {p0, p1, p2, p3};
  inst.g.add_edge(0, 3, denormal);

  std::stringstream ss;
  io::write_instance(ss, inst);
  const ub::UbgInstance back = io::read_instance(ss);
  ASSERT_EQ(back.points.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 2; ++k) {
      const double want = inst.points[static_cast<std::size_t>(i)][k];
      const double got = back.points[static_cast<std::size_t>(i)][k];
      EXPECT_EQ(std::memcmp(&want, &got, sizeof(double)), 0)
          << "point " << i << " coord " << k << ": " << want << " vs " << got;
    }
  }
  EXPECT_EQ(std::signbit(back.points[0][1]), true) << "-0.0 lost its sign";
  EXPECT_EQ(back.g, inst.g);
}

TEST(Serialize, RejectsPartialNumberTokens) {
  // Stream extraction accepted "1.5x" as 1.5 and left "x" behind; the
  // from_chars read path must reject any token that does not parse fully.
  const ub::UbgInstance inst = sample(3);
  std::stringstream ss;
  io::write_instance(ss, inst);
  std::string text = ss.str();
  // Corrupt the first coordinate line (line 3) by appending garbage to its
  // first token.
  std::size_t pos = 0;
  for (int nl = 0; nl < 2; ++nl) pos = text.find('\n', pos) + 1;
  const std::size_t sp = text.find(' ', pos);
  text.insert(sp, "x");
  std::stringstream corrupted(text);
  EXPECT_THROW(static_cast<void>(io::read_instance(corrupted)), std::runtime_error);
  // Hex prefixes and empty exponents are partial parses too.
  std::stringstream hexish("localspan-instance v1\n0x10 2 0.7 4.0 10.0 0 1\n");
  EXPECT_THROW(static_cast<void>(io::read_instance(hexish)), std::runtime_error);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(static_cast<void>(io::read_instance(empty)), std::runtime_error);
  std::stringstream wrong_magic("other-format v1\n");
  EXPECT_THROW(static_cast<void>(io::read_instance(wrong_magic)), std::runtime_error);
  std::stringstream wrong_version("localspan-instance v99\n");
  EXPECT_THROW(static_cast<void>(io::read_instance(wrong_version)), std::runtime_error);
  std::stringstream truncated("localspan-instance v1\n10 2 0.7");
  EXPECT_THROW(static_cast<void>(io::read_instance(truncated)), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const ub::UbgInstance inst = sample(7);
  const std::string path =
      (std::filesystem::temp_directory_path() / "localspan_io_test.lsi").string();
  io::save_instance(path, inst);
  const ub::UbgInstance back = io::load_instance(path);
  EXPECT_EQ(back.g, inst.g);
  std::remove(path.c_str());
  EXPECT_THROW(static_cast<void>(io::load_instance("/nonexistent/nowhere.lsi")),
               std::runtime_error);
}

TEST(Dot, ContainsNodesAndHighlights) {
  const ub::UbgInstance inst = sample(9);
  gr::Graph highlight(inst.g.n());
  const gr::Edge first = inst.g.edges().front();
  highlight.add_edge(first.u, first.v, first.w);
  std::stringstream ss;
  io::write_dot(ss, inst, inst.g, &highlight);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("graph localspan {"), std::string::npos);
  EXPECT_NE(dot.find("pos="), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("color=gray80"), std::string::npos);
  // Every vertex declared.
  for (int v = 0; v < inst.g.n(); ++v) {
    EXPECT_NE(dot.find("  " + std::to_string(v) + " ["), std::string::npos) << v;
  }
}

TEST(Csv, HeaderAndRows) {
  gr::Graph g(3);
  g.add_edge(0, 1, 0.25);
  g.add_edge(1, 2, 0.5);
  std::stringstream ss;
  io::write_edge_csv(ss, g);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "u,v,weight");
  int rows = 0;
  while (std::getline(ss, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 2);
}
