/// Tests for the query-serving subsystem (src/serve/): the epoch-published
/// snapshot store's lifecycle and grace-period reclamation, concurrent
/// readers against live publishes (the TSan-audited leg), routing-oracle
/// stretch equivalence against exact Dijkstra across the scenario matrix,
/// bit-identity of oracle labels at every thread count, the dynamic-engine
/// commit hook, and route-path validity.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <random>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/dynamic_spanner.hpp"
#include "graph/sp_workspace.hpp"
#include "runtime/parallel.hpp"
#include "scenario_matrix.hpp"
#include "serve/oracle.hpp"
#include "serve/query_engine.hpp"
#include "serve/snapshot.hpp"

namespace gr = localspan::graph;
namespace sv = localspan::serve;
namespace dyn = localspan::dynamic;
using localspan::core::Params;
using localspan::runtime::WorkerPool;
using localspan::testinfra::Scenario;
using localspan::testinfra::ScenarioName;
using localspan::ubg::UbgInstance;

namespace {

std::unique_ptr<sv::TopologySnapshot> make_snapshot(const gr::Graph& g,
                                                    const std::vector<localspan::geom::Point>& pts,
                                                    double stretch_t = 1.5) {
  auto snap = std::make_unique<sv::TopologySnapshot>();
  snap->csr.assign(g);
  snap->n = g.n();
  snap->points = pts;
  snap->active.assign(static_cast<std::size_t>(g.n()), 1);
  snap->stretch_t = stretch_t;
  gr::DijkstraWorkspace ws(g.n());
  snap->oracle.build(snap->csr, sv::OracleConfig{}, ws);
  return snap;
}

/// A path graph 0-1-2-...-(n-1) with unit weights; distances are |u - v|.
gr::Graph path_graph(int n) {
  gr::Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 1.0);
  return g;
}

std::vector<localspan::geom::Point> dummy_points(int n) {
  std::vector<localspan::geom::Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    localspan::geom::Point p(2);
    p[0] = static_cast<double>(v);
    p[1] = 0.0;
    pts.push_back(p);
  }
  return pts;
}

// ---------------------------------------------------------------------------
// Snapshot store lifecycle.
// ---------------------------------------------------------------------------

TEST(SnapshotStore, AcquireBeforePublishThrows) {
  sv::SnapshotStore store;
  sv::ReaderSlot* slot = store.register_reader();
  EXPECT_THROW(static_cast<void>(store.acquire(*slot)), std::logic_error);
  store.unregister_reader(slot);
}

TEST(SnapshotStore, EpochsAreMonotoneAndGuardSeesSealedSnapshot) {
  sv::SnapshotStore store;
  const gr::Graph g = path_graph(8);
  const auto pts = dummy_points(8);
  const std::uint64_t e1 = store.publish(make_snapshot(g, pts));
  const std::uint64_t e2 = store.publish(make_snapshot(g, pts));
  EXPECT_LT(e1, e2);
  EXPECT_EQ(store.current_epoch(), e2);

  sv::ReaderSlot* slot = store.register_reader();
  {
    const sv::SnapshotStore::ReadGuard guard = store.acquire(*slot);
    EXPECT_EQ(guard->epoch, e2);
    EXPECT_EQ(guard->checksum, guard->compute_checksum());
    EXPECT_TRUE(slot->pinned());
    // Reader discipline: one pin per slot at a time.
    EXPECT_THROW(static_cast<void>(store.acquire(*slot)), std::logic_error);
  }
  EXPECT_FALSE(slot->pinned());
  store.unregister_reader(slot);
}

TEST(SnapshotStore, PinnedSnapshotBlocksReclaimUntilReleased) {
  sv::SnapshotStore store;
  const gr::Graph g = path_graph(8);
  const auto pts = dummy_points(8);
  store.publish(make_snapshot(g, pts));

  sv::ReaderSlot* slot = store.register_reader();
  sv::SnapshotStore::ReadGuard guard = store.acquire(*slot);
  const std::uint64_t pinned_epoch = guard->epoch;

  // Two newer publishes retire epoch 1 and then epoch 2; the pin on epoch 1
  // must keep it (and only it needs keeping — epoch 2 has no readers, but
  // its epoch is >= the pin so the conservative scan keeps it too).
  store.publish(make_snapshot(g, pts));
  store.publish(make_snapshot(g, pts));
  EXPECT_EQ(store.retired_pending(), 2u);
  store.try_reclaim();
  EXPECT_EQ(store.retired_pending(), 2u);

  // The pinned snapshot is still fully valid while newer epochs exist.
  EXPECT_EQ(guard->epoch, pinned_epoch);
  EXPECT_EQ(guard->checksum, guard->compute_checksum());
  gr::DijkstraWorkspace ws(guard->n);
  EXPECT_DOUBLE_EQ(ws.distance(guard->csr, 0, 7), 7.0);

  guard.release();
  store.try_reclaim();
  EXPECT_EQ(store.retired_pending(), 0u);
  EXPECT_EQ(store.reclaimed(), 2u);
  store.unregister_reader(slot);
}

TEST(SnapshotStore, ReaderRegistrationReusesSlots) {
  sv::SnapshotStore store;
  sv::ReaderSlot* a = store.register_reader();
  sv::ReaderSlot* b = store.register_reader();
  EXPECT_EQ(store.readers_registered(), 2);
  store.unregister_reader(a);
  EXPECT_EQ(store.readers_registered(), 1);
  sv::ReaderSlot* c = store.register_reader();  // reuses a's cell
  EXPECT_EQ(store.readers_registered(), 2);
  store.unregister_reader(b);
  store.unregister_reader(c);
  EXPECT_EQ(store.readers_registered(), 0);
}

// ---------------------------------------------------------------------------
// Concurrent readers during publish/retire. Run under TSan in CI: the
// checksum recomputation would catch a half-built snapshot, a stale pin a
// use-after-free, and TSan any missing happens-before edge.
// ---------------------------------------------------------------------------

TEST(SnapshotStoreConcurrency, ReadersSurviveLivePublishAndReclaim) {
  const Scenario sc{2, localspan::ubg::Placement::kUniform, 0.75, 96, 3};
  const UbgInstance inst = sc.make();
  sv::QueryEngine qe;
  qe.publish(inst.g, inst.points, 1.5);

  constexpr int kReaders = 4;
  constexpr int kPublishes = 24;
  constexpr int kQueriesPerReader = 400;
  std::atomic<bool> stop{false};
  std::atomic<long long> checked{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int k = 0; k < kReaders; ++k) {
    readers.emplace_back([&, k] {
      sv::QueryEngine::Reader reader = qe.reader();
      std::mt19937_64 rng(1234u + static_cast<unsigned>(k));
      std::uniform_int_distribution<int> pick(0, inst.g.n() - 1);
      for (int q = 0; q < kQueriesPerReader; ++q) {
        {
          const sv::SnapshotStore::ReadGuard guard = reader.pin();
          ASSERT_EQ(guard->checksum, guard->compute_checksum());
          ASSERT_GE(guard->epoch, 1u);
        }
        const int s = pick(rng);
        const int d = pick(rng);
        const sv::QueryEngine::DistanceAnswer a = reader.distance(s, d == s ? (s + 1) % inst.g.n() : d);
        ASSERT_GE(a.distance, 0.0);
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The writer republishes the same topology over and over; every publish
  // retires the predecessor and reclaims what the grace period allows.
  for (int p = 0; p < kPublishes; ++p) {
    qe.publish(inst.g, inst.points, 1.5);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(checked.load(), static_cast<long long>(kReaders) * kQueriesPerReader);
  // With no readers pinned, one final publish drains every retired epoch.
  qe.store().try_reclaim();
  EXPECT_EQ(qe.store().retired_pending(), 0u);
  EXPECT_EQ(qe.store().readers_pinned(), 0);
}

// ---------------------------------------------------------------------------
// Oracle correctness: served distances vs exact Dijkstra across the matrix.
// ---------------------------------------------------------------------------

class ServeScenarioTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ServeScenarioTest, ServedDistancesMatchExactWithinDeclaredStretch) {
  const UbgInstance inst = GetParam().make();
  sv::QueryEngine qe;
  qe.publish(inst.g, inst.points, 1.5);
  sv::QueryEngine::Reader reader = qe.reader();

  double bound = 0.0;
  bool bound_holds = false;
  {
    const sv::SnapshotStore::ReadGuard snap = reader.pin();
    bound = snap->oracle.stretch_bound();
    bound_holds = !snap->oracle.truncated();
    EXPECT_GT(bound, 1.0);
  }
  EXPECT_TRUE(bound_holds);  // 24 levels is ample for these diameters

  const gr::CsrView csr(inst.g);
  gr::DijkstraWorkspace exact_ws(inst.g.n());
  std::mt19937_64 rng(GetParam().seed * 77u + 5u);
  std::uniform_int_distribution<int> pick(0, inst.g.n() - 1);
  for (int i = 0; i < 200; ++i) {
    const int s = pick(rng);
    int d = pick(rng);
    if (s == d) d = (d + 1) % inst.g.n();
    const double exact = exact_ws.distance(csr, s, d);
    const sv::QueryEngine::DistanceAnswer served = reader.distance(s, d);
    if (exact == gr::kInf) {
      EXPECT_EQ(served.distance, gr::kInf) << "pair " << s << "," << d;
      continue;
    }
    const double tol = 1e-9 * std::max(1.0, exact);
    EXPECT_GE(served.distance, exact - tol) << "pair " << s << "," << d;
    if (bound_holds) {
      EXPECT_LE(served.distance, bound * exact + tol) << "pair " << s << "," << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ServeScenarioTest,
                         ::testing::ValuesIn(localspan::testinfra::standard_matrix()),
                         ScenarioName());

TEST(RoutingOracle, EstimateIsExactOnAPath) {
  // On a unit path the oracle's candidate d(u,c)+d(c,v) is exact whenever c
  // lies between u and v, which a complete hierarchy guarantees for some
  // level; the near-pair fallback covers the rest. So every served distance
  // is exact, not just bounded.
  const int n = 64;
  const gr::Graph g = path_graph(n);
  sv::QueryEngine qe;
  qe.publish(g, dummy_points(n), 1.5);
  sv::QueryEngine::Reader reader = qe.reader();
  for (int u = 0; u < n; u += 7) {
    for (int v = u + 1; v < n; v += 5) {
      const sv::QueryEngine::DistanceAnswer a = reader.distance(u, v);
      EXPECT_GE(a.distance, static_cast<double>(v - u) - 1e-9);
      EXPECT_LE(a.distance, 5.0 * (v - u) + 1e-9);
    }
  }
}

TEST(RoutingOracle, DisconnectedPairsReportInf) {
  gr::Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);  // second component; 5 isolated
  sv::QueryEngine qe;
  qe.publish(g, dummy_points(6), 1.5);
  sv::QueryEngine::Reader reader = qe.reader();
  EXPECT_EQ(reader.distance(0, 3).distance, gr::kInf);
  EXPECT_EQ(reader.distance(2, 5).distance, gr::kInf);
  EXPECT_DOUBLE_EQ(reader.distance(0, 2).distance, 2.0);
  EXPECT_FALSE(reader.route(0, 3).reachable);
}

TEST(RoutingOracle, ConfigValidation) {
  const gr::Graph g = path_graph(4);
  const gr::CsrView csr(g);
  gr::DijkstraWorkspace ws(4);
  sv::RoutingOracle oracle;
  sv::OracleConfig bad;
  bad.level_ratio = 1.0;
  EXPECT_THROW(oracle.build(csr, bad, ws), std::invalid_argument);
  bad = {};
  bad.label_reach = 1.5;
  EXPECT_THROW(oracle.build(csr, bad, ws), std::invalid_argument);
  bad = {};
  bad.max_levels = 0;
  EXPECT_THROW(oracle.build(csr, bad, ws), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Determinism: oracle labels are bit-identical at every thread count.
// ---------------------------------------------------------------------------

TEST(RoutingOracleDeterminism, LabelsBitIdenticalAcrossThreadCounts) {
  const Scenario sc{2, localspan::ubg::Placement::kClustered, 0.75, 128, 9};
  const UbgInstance inst = sc.make();
  const gr::CsrView csr(inst.g);

  gr::DijkstraWorkspace ws(inst.g.n());
  sv::RoutingOracle serial;
  serial.build(csr, sv::OracleConfig{}, ws);
  ASSERT_GT(serial.levels(), 0);
  ASSERT_GT(serial.total_label_entries(), 0);

  for (int threads : {2, 4}) {
    WorkerPool pool(threads);
    sv::RoutingOracle parallel;
    parallel.build(csr, sv::OracleConfig{}, ws, &pool);
    EXPECT_EQ(serial, parallel) << "thread count " << threads;
  }
}

// ---------------------------------------------------------------------------
// Dynamic-engine integration: the commit hook republishes per window.
// ---------------------------------------------------------------------------

TEST(QueryEngineDynamic, CommitHookPublishesOncePerWindow) {
  const Scenario sc{2, localspan::ubg::Placement::kUniform, 0.75, 96, 1};
  UbgInstance inst = sc.make();
  dyn::PoissonChurnConfig pc;
  pc.events = 48;
  pc.seed = 1;
  const dyn::ChurnTrace trace = dyn::poisson_churn(inst, pc);
  const Params params = Params::practical_params(0.5, inst.config.alpha);

  dyn::DynamicSpanner engine(std::move(inst), params, {});
  sv::QueryEngine qe;
  qe.attach(engine);
  const std::uint64_t e0 = qe.publish(engine);
  EXPECT_EQ(e0, 1u);

  // An empty window commits nothing, so nothing is published.
  engine.apply_batch(std::span<const dyn::ChurnEvent>{});
  EXPECT_EQ(qe.store().current_epoch(), e0);

  std::uint64_t prev = e0;
  int windows = 0;
  for (std::size_t i = 0; i < trace.events.size(); i += 16) {
    const std::size_t len = std::min<std::size_t>(16, trace.events.size() - i);
    engine.apply_batch(std::span<const dyn::ChurnEvent>(trace.events.data() + i, len));
    ++windows;
    EXPECT_EQ(qe.store().current_epoch(), prev + 1) << "window " << windows;
    prev = qe.store().current_epoch();
  }
  EXPECT_GT(windows, 1);

  // Served answers on the final snapshot agree with exact Dijkstra on the
  // engine's final spanner.
  sv::QueryEngine::Reader reader = qe.reader();
  const gr::CsrView csr(engine.spanner());
  gr::DijkstraWorkspace exact_ws(engine.spanner().n());
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int> pick(0, engine.spanner().n() - 1);
  for (int i = 0; i < 100; ++i) {
    const int s = pick(rng);
    int d = pick(rng);
    if (s == d) d = (d + 1) % engine.spanner().n();
    if (!engine.is_active(s) || !engine.is_active(d)) {
      EXPECT_EQ(reader.distance(s, d).distance, gr::kInf);
      continue;
    }
    const double exact = exact_ws.distance(csr, s, d);
    const sv::QueryEngine::DistanceAnswer served = reader.distance(s, d);
    if (exact == gr::kInf) {
      EXPECT_EQ(served.distance, gr::kInf);
    } else {
      const double tol = 1e-9 * std::max(1.0, exact);
      EXPECT_GE(served.distance, exact - tol);
      EXPECT_LE(served.distance, 5.0 * exact + tol);
    }
  }
}

// ---------------------------------------------------------------------------
// Route answers: exact on the snapshot, with a valid vertex path.
// ---------------------------------------------------------------------------

TEST(QueryEngineRoute, RoutePathsAreValidAndExact) {
  const Scenario sc{2, localspan::ubg::Placement::kUniform, 0.75, 96, 2};
  const UbgInstance inst = sc.make();
  sv::QueryEngine qe;
  qe.publish(inst.g, inst.points, 1.5);
  sv::QueryEngine::Reader reader = qe.reader();

  const gr::CsrView csr(inst.g);
  gr::DijkstraWorkspace exact_ws(inst.g.n());
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> pick(0, inst.g.n() - 1);
  std::vector<int> path;
  int reachable = 0;
  for (int i = 0; i < 100; ++i) {
    const int s = pick(rng);
    int d = pick(rng);
    if (s == d) d = (d + 1) % inst.g.n();
    const double exact = exact_ws.distance(csr, s, d);
    const sv::QueryEngine::RouteAnswer a = reader.route(s, d, &path);
    if (exact == gr::kInf) {
      EXPECT_FALSE(a.reachable);
      EXPECT_TRUE(path.empty());
      continue;
    }
    ++reachable;
    ASSERT_TRUE(a.reachable) << "pair " << s << "," << d;
    EXPECT_NEAR(a.distance, exact, 1e-9 * std::max(1.0, exact));
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), d);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, a.hops);
    double walked = 0.0;
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      ASSERT_TRUE(inst.g.has_edge(path[j], path[j + 1]))
          << "path hop " << path[j] << "->" << path[j + 1] << " is not an edge";
      walked += inst.g.edge_weight(path[j], path[j + 1]);
    }
    EXPECT_NEAR(walked, exact, 1e-9 * std::max(1.0, exact));
  }
  EXPECT_GT(reachable, 0);
}

TEST(QueryEngine, PublishRejectsSizeMismatch) {
  sv::QueryEngine qe;
  EXPECT_THROW(qe.publish(path_graph(4), dummy_points(3), 1.5), std::invalid_argument);
}

}  // namespace
