// End-to-end and white-box tests for the sequential relaxed greedy algorithm
// (§2) — the paper's Theorems 2, 10, 11, 13 as executable properties.
#include <gtest/gtest.h>

#include <cmath>

#include "core/greedy.hpp"
#include "core/relaxed_greedy.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "graph/mst.hpp"
#include "mis/mis.hpp"
#include "scenario_matrix.hpp"
#include "ubg/generator.hpp"

namespace core = localspan::core;
namespace gr = localspan::graph;
namespace ti = localspan::testinfra;
namespace ub = localspan::ubg;

namespace {

ub::UbgInstance instance(std::uint64_t seed, int n = 180, double alpha = 0.75, int dim = 2,
                         ub::Placement placement = ub::Placement::kUniform) {
  ub::UbgConfig cfg;
  cfg.n = n;
  cfg.alpha = alpha;
  cfg.dim = dim;
  cfg.placement = placement;
  cfg.seed = seed;
  return ub::make_ubg(cfg);
}

}  // namespace

// ---------------------------------------------------------------------------
// End-to-end properties, swept over (eps, alpha, seed) with TEST_P.

struct EndToEndCase {
  double eps;
  double alpha;
  std::uint64_t seed;
  bool strict;
};

class RelaxedEndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(RelaxedEndToEnd, ThreeSpannerPropertiesHold) {
  const auto& c = GetParam();
  const auto inst = instance(c.seed, 160, c.alpha);
  const core::Params params = c.strict ? core::Params::strict_params(c.eps, c.alpha)
                                       : core::Params::practical_params(c.eps, c.alpha);
  const auto result = core::relaxed_greedy(inst, params);

  // Theorem 10: (1+eps)-stretch over every edge of G.
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.spanner), params.t * (1.0 + 1e-9))
      << params.describe();

  // Output is a subgraph of G (all additions are G edges; Lemma 1 covers
  // the phase-0 clique edges).
  for (const gr::Edge& e : result.spanner.edges()) {
    EXPECT_TRUE(inst.g.has_edge(e.u, e.v));
  }

  // Theorem 11: bounded degree (generous constant; E2 tracks flatness in n).
  EXPECT_LE(result.spanner.max_degree(), 40) << params.describe();

  // Theorem 13: lightness bounded (generous constant; E3 tracks it in n).
  EXPECT_LE(gr::lightness(inst.g, result.spanner), 8.0) << params.describe();

  // Connectivity preserved (t-spanner of each component).
  EXPECT_EQ(gr::connected_components(inst.g).count,
            gr::connected_components(result.spanner).count);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RelaxedEndToEnd,
    ::testing::Values(EndToEndCase{0.5, 0.75, 1, true}, EndToEndCase{0.5, 0.75, 2, true},
                      EndToEndCase{0.25, 0.75, 3, true}, EndToEndCase{1.0, 0.75, 4, true},
                      EndToEndCase{0.5, 0.5, 5, true}, EndToEndCase{0.5, 1.0, 6, true},
                      EndToEndCase{0.5, 0.75, 7, false}, EndToEndCase{0.25, 0.6, 8, false},
                      EndToEndCase{2.0, 0.75, 9, true}, EndToEndCase{1.0, 0.4, 10, false}));

// Scenario matrix: the shared (dim x placement x alpha x n x seed) grid from
// scenario_matrix.hpp. Every cell must satisfy the full spanner contract.
class RelaxedScenarioMatrix : public ::testing::TestWithParam<ti::Scenario> {};

TEST_P(RelaxedScenarioMatrix, SpannerContractHoldsAcrossTheMatrix) {
  const ti::Scenario& sc = GetParam();
  const auto inst = sc.make();
  const core::Params params = core::Params::practical_params(0.5, sc.alpha);
  const auto result = core::relaxed_greedy(inst, params);
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.spanner), params.t * (1.0 + 1e-9))
      << sc.name();
  EXPECT_EQ(gr::connected_components(inst.g).count,
            gr::connected_components(result.spanner).count)
      << sc.name();
  for (const gr::Edge& e : result.spanner.edges()) {
    ASSERT_TRUE(inst.g.has_edge(e.u, e.v)) << sc.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, RelaxedScenarioMatrix,
                         ::testing::ValuesIn(ti::standard_matrix()), ti::ScenarioName{});

// Cross-product sweep: dimension x placement x gray-zone policy. Every cell
// must satisfy the exact stretch bound — the paper's guarantee is
// unconditional over the alpha-UBG model class.
struct ModelCase {
  int dim;
  ub::Placement placement;
  int policy;  // 0 always, 1 never, 2 probabilistic
};

class RelaxedModelSweep : public ::testing::TestWithParam<ModelCase> {};

TEST_P(RelaxedModelSweep, StretchHoldsAcrossTheModelClass) {
  const ModelCase& c = GetParam();
  ub::UbgConfig cfg;
  cfg.n = 120;
  cfg.dim = c.dim;
  cfg.alpha = 0.7;
  cfg.placement = c.placement;
  cfg.seed = 99;
  std::unique_ptr<ub::GrayZonePolicy> policy;
  if (c.policy == 0) policy = ub::always_connect();
  if (c.policy == 1) policy = ub::never_connect();
  if (c.policy == 2) policy = ub::probabilistic(0.5, 7);
  const auto inst = ub::make_ubg(cfg, *policy);
  const core::Params params = core::Params::practical_params(0.5, 0.7);
  const auto result = core::relaxed_greedy(inst, params);
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.spanner), params.t * (1.0 + 1e-9));
  EXPECT_EQ(gr::connected_components(inst.g).count,
            gr::connected_components(result.spanner).count);
}

INSTANTIATE_TEST_SUITE_P(
    ModelCross, RelaxedModelSweep,
    ::testing::Values(ModelCase{2, ub::Placement::kUniform, 1},
                      ModelCase{2, ub::Placement::kClustered, 2},
                      ModelCase{2, ub::Placement::kCorridor, 0},
                      ModelCase{3, ub::Placement::kUniform, 2},
                      ModelCase{3, ub::Placement::kClustered, 0},
                      ModelCase{3, ub::Placement::kCorridor, 1},
                      ModelCase{4, ub::Placement::kUniform, 0},
                      ModelCase{4, ub::Placement::kClustered, 1},
                      ModelCase{4, ub::Placement::kCorridor, 2}));

TEST(RelaxedGreedy, WorksInThreeDimensions) {
  const auto inst = instance(21, 150, 0.7, 3);
  const core::Params params = core::Params::practical_params(0.5, 0.7);
  const auto result = core::relaxed_greedy(inst, params);
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.spanner), params.t * (1.0 + 1e-9));
  EXPECT_LE(result.spanner.max_degree(), 60);
}

TEST(RelaxedGreedy, WorksOnCorridorPlacement) {
  const auto inst = instance(22, 150, 0.75, 2, ub::Placement::kCorridor);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  const auto result = core::relaxed_greedy(inst, params);
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.spanner), params.t * (1.0 + 1e-9));
}

TEST(RelaxedGreedy, WorksOnClusteredPlacement) {
  const auto inst = instance(23, 150, 0.75, 2, ub::Placement::kClustered);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  const auto result = core::relaxed_greedy(inst, params);
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.spanner), params.t * (1.0 + 1e-9));
}

TEST(RelaxedGreedy, GrayZonePoliciesAllSatisfyStretch) {
  ub::UbgConfig cfg;
  cfg.n = 150;
  cfg.alpha = 0.6;
  cfg.seed = 31;
  const core::Params params = core::Params::practical_params(0.5, 0.6);
  for (int which = 0; which < 3; ++which) {
    std::unique_ptr<ub::GrayZonePolicy> policy;
    if (which == 0) policy = ub::never_connect();
    if (which == 1) policy = ub::probabilistic(0.5, 11);
    if (which == 2) policy = ub::threshold(0.8);
    const auto inst = ub::make_ubg(cfg, *policy);
    const auto result = core::relaxed_greedy(inst, params);
    EXPECT_LE(gr::max_edge_stretch(inst.g, result.spanner), params.t * (1.0 + 1e-9))
        << policy->name();
  }
}

TEST(RelaxedGreedy, DeterministicAcrossRuns) {
  const auto inst = instance(41);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  const auto r1 = core::relaxed_greedy(inst, params);
  const auto r2 = core::relaxed_greedy(inst, params);
  EXPECT_EQ(r1.spanner, r2.spanner);
}

TEST(RelaxedGreedy, RejectsAlphaMismatch) {
  const auto inst = instance(42, 50, 0.75);
  const core::Params params = core::Params::practical_params(0.5, 0.6);
  EXPECT_THROW(static_cast<void>(core::relaxed_greedy(inst, params)), std::invalid_argument);
}

TEST(RelaxedGreedy, PhaseStatsAreConsistent) {
  const auto inst = instance(43);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  const auto result = core::relaxed_greedy(inst, params);
  ASSERT_FALSE(result.phases.empty());
  EXPECT_EQ(result.phases.front().bin, 0);
  int added_total = 0;
  for (std::size_t i = 1; i < result.phases.size(); ++i) {
    const core::PhaseStats& st = result.phases[i];
    EXPECT_GT(st.edges_in_bin, 0);  // empty bins are skipped
    EXPECT_EQ(st.edges_in_bin, st.already_in_spanner + st.covered + st.candidates);
    EXPECT_LE(st.queries, st.candidates);
    EXPECT_LE(st.added, st.queries);
    EXPECT_LE(st.removed, st.added);
    EXPECT_GT(st.clusters, 0);
    EXPECT_GT(st.w_hi, st.w_lo);
    EXPECT_GT(result.phases[i].bin, result.phases[i - 1].bin);  // ascending
    added_total += st.added - st.removed;
  }
  EXPECT_EQ(result.spanner.m(), added_total + result.phases.front().added);
  EXPECT_EQ(result.nonempty_bins, static_cast<int>(result.phases.size()) - 1);
}

TEST(RelaxedGreedy, PhaseCountIsLogarithmic) {
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  const auto small = core::relaxed_greedy(instance(44, 100), params);
  const auto large = core::relaxed_greedy(instance(44, 400), params);
  // total bins m = ceil(log_r(n/alpha)) grows logarithmically.
  const double expect_small = std::ceil(std::log(100 / 0.75) / std::log(params.r));
  const double expect_large = std::ceil(std::log(400 / 0.75) / std::log(params.r));
  EXPECT_EQ(small.total_bins, static_cast<int>(expect_small) + 1);
  EXPECT_EQ(large.total_bins, static_cast<int>(expect_large) + 1);
}

TEST(RelaxedGreedy, RedundancyRemovalAblationOnlyAddsEdges) {
  const auto inst = instance(45);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  core::RelaxedGreedyOptions with;
  core::RelaxedGreedyOptions without;
  without.redundancy_removal = false;
  const auto a = core::relaxed_greedy(inst, params, with);
  const auto b = core::relaxed_greedy(inst, params, without);
  EXPECT_GE(b.spanner.m(), a.spanner.m());
  // Both still t-spanners.
  EXPECT_LE(gr::max_edge_stretch(inst.g, b.spanner), params.t * (1.0 + 1e-9));
}

TEST(RelaxedGreedy, CoveredFilterAblationKeepsGuarantees) {
  const auto inst = instance(48);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  core::RelaxedGreedyOptions no_filter;
  no_filter.covered_edge_filter = false;
  const auto result = core::relaxed_greedy(inst, params, no_filter);
  // Stretch and degree still hold (the filter is a degree-proof device and a
  // work-saver, not a correctness requirement for not-adding decisions).
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.spanner), params.t * (1.0 + 1e-9));
  EXPECT_LE(result.spanner.max_degree(), 40);
  for (const core::PhaseStats& st : result.phases) EXPECT_EQ(st.covered, 0);
}

TEST(RelaxedGreedy, CoveredFilterReducesQueries) {
  const auto inst = instance(49);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  core::RelaxedGreedyOptions no_filter;
  no_filter.covered_edge_filter = false;
  const auto with = core::relaxed_greedy(inst, params);
  const auto without = core::relaxed_greedy(inst, params, no_filter);
  long long queries_with = 0;
  long long queries_without = 0;
  for (const auto& st : with.phases) queries_with += st.queries;
  for (const auto& st : without.phases) queries_without += st.queries;
  EXPECT_LT(queries_with, queries_without);
}

TEST(RelaxedGreedy, LeapfrogPropertySampledOnOutput) {
  // Theorem 13's engine: sampled leapfrog violations of the output should be
  // absent for t2 within the paper's range.
  const auto inst = instance(46);
  const core::Params params = core::Params::strict_params(0.5, 0.75);
  const auto result = core::relaxed_greedy(inst, params);
  const auto dist = [&](int u, int v) { return u == v ? 0.0 : inst.dist(u, v); };
  EXPECT_EQ(gr::leapfrog_violations(result.spanner, dist, 1.05, params.t, 500, 7), 0);
}

TEST(RelaxedGreedy, QualityTracksSeqGreedyAcrossSeeds) {
  // Regression guardrail for the §2 relaxations: with strict parameters the
  // relaxed output must stay within modest factors of classical SEQ-GREEDY
  // (the paper's whole point is that relaxation costs ~nothing in quality).
  const core::Params params = core::Params::strict_params(0.5, 0.75);
  for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
    const auto inst = instance(seed, 140);
    const auto relaxed = core::relaxed_greedy(inst, params);
    const gr::Graph greedy = core::seq_greedy(inst.g, params.t);
    EXPECT_LE(relaxed.spanner.m(), static_cast<int>(1.35 * greedy.m()) + 4) << seed;
    EXPECT_LE(gr::lightness(inst.g, relaxed.spanner),
              1.5 * gr::lightness(inst.g, greedy) + 0.2)
        << seed;
    EXPECT_LE(relaxed.spanner.max_degree(), greedy.max_degree() + 6) << seed;
  }
}

TEST(RelaxedGreedy, Phase0CliqueCapFallbackPath) {
  // A G_0 component bigger than the cap: the fallback spans it with greedy
  // over component-internal UBG edges and the guarantees must still hold.
  ub::UbgInstance inst;
  inst.config.n = 6;
  inst.config.dim = 2;
  inst.config.alpha = 0.75;  // w0 = alpha/n = 0.125
  inst.points = {{0.00, 0.0}, {0.05, 0.0}, {0.00, 0.05}, {0.05, 0.05},  // tiny clump
                 {0.60, 0.0}, {0.60, 0.6}};
  inst.g = gr::Graph(6);
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) {
      const double d = inst.dist(u, v);
      if (d <= 1.0) inst.g.add_edge(u, v, std::max(d, 1e-12));
    }
  }
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  core::RelaxedGreedyOptions opts;
  opts.phase0_clique_cap = 2;  // force the fallback for the 4-clump
  const auto result = core::relaxed_greedy(inst, params, opts);
  EXPECT_EQ(result.phase0_components, 1);
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.spanner), params.t * (1.0 + 1e-9));
  // Fallback must not smuggle in edges that leave the clump in phase 0:
  // every spanner edge inside bin 0 has both endpoints in the clump.
  for (const gr::Edge& e : result.spanner.edges()) {
    if (e.w <= 0.125) {
      EXPECT_LT(e.u, 4);
      EXPECT_LT(e.v, 4);
    }
  }
}

// ---------------------------------------------------------------------------
// White-box tests of the §2.2 phase steps.

TEST(CoveredEdge, DetectsTextbookConfiguration) {
  // z in the θ-cone of u->v, {u,z} already in the spanner, |vz| <= alpha.
  ub::UbgInstance inst;
  inst.config.alpha = 0.75;
  inst.config.dim = 2;
  inst.config.n = 3;
  inst.points = {{0.0, 0.0}, {0.9, 0.0}, {0.45, 0.01}};  // u, v, z (z near uv segment)
  inst.g = gr::Graph(3);
  inst.g.add_edge(0, 1, inst.dist(0, 1));
  inst.g.add_edge(0, 2, inst.dist(0, 2));
  inst.g.add_edge(1, 2, inst.dist(1, 2));
  gr::Graph gp(3);
  gp.add_edge(0, 2, inst.dist(0, 2));  // {u,z} in G'_{i-1}
  const core::detail::PhaseEdge e{0, 1, inst.dist(0, 1), inst.dist(0, 1)};
  EXPECT_TRUE(core::detail::is_covered_edge(inst, gp, e, 0.1));
  // Without the prior edge {u,z} it is not covered.
  EXPECT_FALSE(core::detail::is_covered_edge(inst, gp, {0, 2, inst.dist(0, 2), inst.dist(0, 2)},
                                             0.1));
}

TEST(CoveredEdge, RespectsThetaAndAlphaLimits) {
  ub::UbgInstance inst;
  inst.config.alpha = 0.3;  // small alpha: |vz| too long
  inst.config.dim = 2;
  inst.config.n = 3;
  inst.points = {{0.0, 0.0}, {0.9, 0.0}, {0.45, 0.01}};
  inst.g = gr::Graph(3);
  gr::Graph gp(3);
  gp.add_edge(0, 2, inst.dist(0, 2));
  const core::detail::PhaseEdge e{0, 1, inst.dist(0, 1), inst.dist(0, 1)};
  EXPECT_FALSE(core::detail::is_covered_edge(inst, gp, e, 0.1));  // |vz| = .45 > alpha
  inst.config.alpha = 0.75;
  EXPECT_FALSE(core::detail::is_covered_edge(inst, gp, e, 0.001));  // cone too narrow
}

TEST(CoveredEdge, SymmetricSideWorks) {
  // The witness sits at v's side: {v,z} in G', |uz| <= alpha, angle uvz small.
  ub::UbgInstance inst;
  inst.config.alpha = 0.75;
  inst.config.dim = 2;
  inst.config.n = 3;
  inst.points = {{0.0, 0.0}, {0.9, 0.0}, {0.45, 0.01}};
  inst.g = gr::Graph(3);
  gr::Graph gp(3);
  gp.add_edge(1, 2, inst.dist(1, 2));  // edge at v
  const core::detail::PhaseEdge e{0, 1, inst.dist(0, 1), inst.dist(0, 1)};
  EXPECT_TRUE(core::detail::is_covered_edge(inst, gp, e, 0.1));
}

TEST(QuerySelection, OneEdgePerClusterPair) {
  // Two clusters of two vertices each, three candidate edges across.
  gr::Graph gp(4);
  gp.add_edge(0, 1, 0.05);  // cluster {0,1}
  gp.add_edge(2, 3, 0.05);  // cluster {2,3}
  const auto cover = localspan::cluster::sequential_cover(gp, 0.1);
  ASSERT_EQ(cover.centers.size(), 2u);
  std::vector<core::detail::PhaseEdge> cands{
      {0, 2, 0.5, 0.5}, {1, 3, 0.45, 0.45}, {0, 3, 0.55, 0.55}};
  int per_cluster = 0;
  const auto selected = core::detail::select_query_edges(cands, cover, 1.5, &per_cluster);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(per_cluster, 1);
  // Minimizer of t*w - sp(a,x) - sp(b,y): edge {1,3} has w=.45 and
  // sp-to-center .05 both sides => 0.575; {0,2}: .75; {0,3}: .775.
  EXPECT_EQ(selected[0].u, 1);
  EXPECT_EQ(selected[0].v, 3);
}

TEST(QuerySelection, DistinctPairsKeepDistinctEdges) {
  gr::Graph gp(6);  // three singleton-ish clusters at mutual distance
  const auto cover = localspan::cluster::sequential_cover(gp, 0.0);
  std::vector<core::detail::PhaseEdge> cands{{0, 1, 0.5, 0.5}, {2, 3, 0.5, 0.5}, {4, 5, 0.5, 0.5}};
  int per_cluster = 0;
  const auto selected = core::detail::select_query_edges(cands, cover, 1.5, &per_cluster);
  EXPECT_EQ(selected.size(), 3u);
  EXPECT_EQ(per_cluster, 1);
}

TEST(AnswerQueries, AddsExactlyTheUnreachable) {
  gr::Graph h(4);
  h.add_edge(0, 1, 1.0);
  h.add_edge(1, 2, 1.0);
  // Query {0,2}: H-path of 2.0 <= t*w for w=1.5, t=1.5 (2.25) -> not added.
  // Query {0,3}: no H-path -> added.
  std::vector<core::detail::PhaseEdge> queries{{0, 2, 1.5, 1.5}, {0, 3, 1.5, 1.5}};
  int hops = 0;
  const auto to_add = core::detail::answer_queries(h, queries, 1.5, &hops);
  ASSERT_EQ(to_add.size(), 1u);
  EXPECT_EQ(to_add[0].v, 3);
  EXPECT_EQ(hops, 2);
}

TEST(Redundancy, ParallelCloseEdgesConflict) {
  // Two nearly-parallel edges whose endpoints are joined by tiny H-paths:
  // mutually redundant; exactly one must be removed.
  gr::Graph h(4);
  h.add_edge(0, 2, 0.01);  // u ~ u'
  h.add_edge(1, 3, 0.01);  // v ~ v'
  std::vector<core::detail::PhaseEdge> added{{0, 1, 1.0, 1.0}, {2, 3, 1.0, 1.0}};
  const double t1 = 1.25;
  const gr::Graph j = core::detail::redundancy_conflict_graph(h, added, t1);
  EXPECT_EQ(j.m(), 1);
  const auto removal = core::detail::redundant_edge_removal(
      h, added, t1, [](const gr::Graph& jj) { return localspan::mis::greedy_mis(jj); });
  EXPECT_EQ(removal.size(), 1u);
}

TEST(Redundancy, FarEdgesDoNotConflict) {
  gr::Graph h(4);  // no H connectivity between the pairs
  std::vector<core::detail::PhaseEdge> added{{0, 1, 1.0, 1.0}, {2, 3, 1.0, 1.0}};
  const gr::Graph j = core::detail::redundancy_conflict_graph(h, added, 1.25);
  EXPECT_EQ(j.m(), 0);
  const auto removal = core::detail::redundant_edge_removal(
      h, added, 1.25, [](const gr::Graph& jj) { return localspan::mis::greedy_mis(jj); });
  EXPECT_TRUE(removal.empty());
}

TEST(Redundancy, SwappedPairingIsDetected) {
  // u close to v', v close to u' (the crossed pairing).
  gr::Graph h(4);
  h.add_edge(0, 3, 0.01);  // u ~ v'
  h.add_edge(1, 2, 0.01);  // v ~ u'
  std::vector<core::detail::PhaseEdge> added{{0, 1, 1.0, 1.0}, {2, 3, 1.0, 1.0}};
  const gr::Graph j = core::detail::redundancy_conflict_graph(h, added, 1.25);
  EXPECT_EQ(j.m(), 1);
}

TEST(Redundancy, RemovedEdgesAlwaysKeepACounterpart) {
  // Every removed conflict-graph node must have a kept neighbor (this is what
  // Theorem 10's proof leans on).
  const auto inst = instance(47);
  const core::Params params = core::Params::practical_params(0.25, 0.75);
  // Run and per phase verify via the exposed conflict graph: rebuild is
  // internal, so here we verify the global stretch consequence instead on a
  // low-eps run where removals actually trigger.
  const auto result = core::relaxed_greedy(inst, params);
  int removed = 0;
  for (const auto& st : result.phases) removed += st.removed;
  // The sweep instance is dense enough that some phases remove edges; the
  // spanner property must nevertheless hold (checked exactly).
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.spanner), params.t * (1.0 + 1e-9));
  SUCCEED() << "removed=" << removed;
}
