/// Tests for the epoch-stamped shortest-path workspace and CSR snapshots
/// (graph/sp_workspace.hpp): equivalence against the retained dense
/// reference implementation across the scenario matrix, the
/// epoch-wraparound rebase, the stale-view / reuse-across-graphs error
/// paths, and the zero-allocation steady state (counting allocator).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <new>
#include <stdexcept>
#include <vector>

#include "core/params.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/dynamic_spanner.hpp"
#include "graph/dijkstra.hpp"
#include "graph/sp_workspace.hpp"
#include "scenario_matrix.hpp"

namespace gr = localspan::graph;
using localspan::testinfra::Scenario;
using localspan::testinfra::ScenarioName;

// ---------------------------------------------------------------------------
// Counting allocator: every operator-new in this binary bumps the counter.
// Tests snapshot it around a warmed-up hot path; the infrastructure around
// the window (gtest, streams) may allocate freely.
// ---------------------------------------------------------------------------
namespace {
std::atomic<long long> g_allocs{0};
}  // namespace

// The replacement operator new allocates with std::malloc, so operator
// delete frees with std::free — GCC's new/delete-pair analysis cannot see
// through the replacement and flags the (correct) pairing.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow variants must be replaced too (std::stable_sort's temporary
// buffer allocates through them; a half-replaced set trips ASan's
// alloc-dealloc-mismatch check).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

/// Dense/sparse agreement on one (graph, sources, radius, transform) cell:
/// identical distances everywhere, touched == the settled ball, and a
/// parent tree that reproduces the distances.
void expect_equivalent(
    const gr::Graph& g, const gr::ShortestPaths& dense, const gr::SpView& sp,
    const std::function<double(double)>& weight = [](double w) { return w; }) {
  int settled = 0;
  for (int v = 0; v < g.n(); ++v) {
    EXPECT_EQ(dense.dist[static_cast<std::size_t>(v)], sp.dist(v)) << "vertex " << v;
    if (dense.dist[static_cast<std::size_t>(v)] != gr::kInf) {
      ++settled;
      EXPECT_TRUE(sp.reached(v));
      const int p = sp.parent(v);
      if (p != -1) {
        // The tree edge realizes the distance (parents may differ from the
        // dense run on exact ties; distances never do).
        EXPECT_NEAR(sp.dist(p) + weight(g.edge_weight(p, v)), sp.dist(v), 1e-12);
      }
    } else {
      EXPECT_FALSE(sp.reached(v));
      EXPECT_EQ(sp.parent(v), -1);
    }
  }
  EXPECT_EQ(settled, static_cast<int>(sp.touched().size()));
}

class SpWorkspaceMatrixTest : public ::testing::TestWithParam<Scenario> {};

}  // namespace

TEST_P(SpWorkspaceMatrixTest, BoundedMatchesDenseReference) {
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const gr::Graph& g = inst.g;
  gr::DijkstraWorkspace ws;
  for (const double radius : {0.1, 0.45, gr::kInf}) {
    for (int src : {0, g.n() / 2, g.n() - 1}) {
      const gr::ShortestPaths dense = radius == gr::kInf
                                          ? gr::dijkstra(g, src)
                                          : gr::dijkstra_bounded(g, src, radius);
      const gr::SpView sp = ws.bounded(g, src, radius);
      expect_equivalent(g, dense, sp);
    }
  }
}

TEST_P(SpWorkspaceMatrixTest, MultiSourceMatchesDenseReference) {
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const gr::Graph& g = inst.g;
  gr::DijkstraWorkspace ws;
  const std::vector<int> sources{0, g.n() / 3, g.n() - 1, 0};  // duplicate on purpose
  for (const double radius : {0.2, 0.6}) {
    const gr::ShortestPaths dense = gr::dijkstra_multi_bounded(g, sources, radius);
    const gr::SpView sp = ws.multi_bounded(g, sources, radius);
    expect_equivalent(g, dense, sp);
  }
}

TEST_P(SpWorkspaceMatrixTest, TransformedMatchesDenseReference) {
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const gr::Graph& g = inst.g;
  gr::DijkstraWorkspace ws;
  const auto energy = [](double w) { return w * w; };
  const std::vector<int> sources{0, g.n() - 1};
  const double radius = 0.4;
  const gr::ShortestPaths dense = gr::dijkstra_multi_bounded(g, sources, radius, energy);
  const gr::SpView sp = ws.multi_bounded(g, sources, radius, energy);
  expect_equivalent(g, dense, sp, energy);
}

TEST_P(SpWorkspaceMatrixTest, CsrSearchesMatchGraphSearches) {
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const gr::Graph& g = inst.g;
  const gr::CsrView csr(g);
  ASSERT_EQ(csr.n(), g.n());
  for (int u = 0; u < g.n(); ++u) {
    const auto a = g.neighbors(u);
    const auto b = csr.neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_EQ(a[i].w, b[i].w);
    }
  }
  gr::DijkstraWorkspace ws;
  const gr::ShortestPaths dense = gr::dijkstra_bounded(g, 0, 0.5);
  expect_equivalent(g, dense, ws.bounded(csr, 0, 0.5));
}

TEST_P(SpWorkspaceMatrixTest, DistanceMatchesSpDistance) {
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const gr::Graph& g = inst.g;
  gr::DijkstraWorkspace ws;
  for (const double bound : {0.25, gr::kInf}) {
    for (int v : {0, g.n() / 2, g.n() - 1}) {
      EXPECT_EQ(gr::sp_distance(g, 0, v, bound), ws.distance(g, 0, v, bound));
    }
  }
}

TEST_P(SpWorkspaceMatrixTest, HeapArityDoesNotChangeResults) {
  // The workspace heap is d-ary with a compile-time arity (production uses
  // 4). Arity only reorders pops among equal keys, and every settled vertex
  // relaxes with its final distance, so the settled set and every distance
  // must be bitwise identical between a binary and a 4-ary heap; parents may
  // legitimately differ on exact ties, so they are checked against the dense
  // reference instead of across arities.
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const gr::Graph& g = inst.g;
  gr::BasicDijkstraWorkspace<2> binary;
  gr::BasicDijkstraWorkspace<4> quad;
  for (const double radius : {0.1, 0.45, gr::kInf}) {
    for (int src : {0, g.n() / 2, g.n() - 1}) {
      const gr::ShortestPaths dense = radius == gr::kInf
                                          ? gr::dijkstra(g, src)
                                          : gr::dijkstra_bounded(g, src, radius);
      const gr::SpView b = binary.bounded(g, src, radius);
      const gr::SpView q = quad.bounded(g, src, radius);
      expect_equivalent(g, dense, b);
      expect_equivalent(g, dense, q);
      for (int v = 0; v < g.n(); ++v) {
        EXPECT_EQ(b.dist(v), q.dist(v)) << "vertex " << v;  // bitwise
        EXPECT_EQ(b.reached(v), q.reached(v)) << "vertex " << v;
      }
      EXPECT_EQ(b.touched().size(), q.touched().size());
    }
  }
  const auto energy = [](double w) { return w * w; };
  const std::vector<int> sources{0, g.n() / 3, g.n() - 1};
  const gr::SpView mb = binary.multi_bounded(g, sources, 0.6, energy);
  const gr::SpView mq = quad.multi_bounded(g, sources, 0.6, energy);
  for (int v = 0; v < g.n(); ++v) EXPECT_EQ(mb.dist(v), mq.dist(v)) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(Matrix, SpWorkspaceMatrixTest,
                         ::testing::ValuesIn(localspan::testinfra::standard_matrix()),
                         ScenarioName());

namespace {

/// A fixed 5-vertex path graph 0-1-2-3-4 with unit-ish weights.
gr::Graph path_graph() {
  gr::Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 0.5);
  g.add_edge(2, 3, 2.0);
  g.add_edge(3, 4, 1.5);
  return g;
}

}  // namespace

TEST(SpWorkspace, BoundedToEarlyExitAnswersTarget) {
  const gr::Graph g = path_graph();
  gr::DijkstraWorkspace ws;
  const gr::SpView sp = ws.bounded_to(g, 0, 3, gr::kInf);
  EXPECT_DOUBLE_EQ(sp.dist(3), 3.5);
  EXPECT_EQ(sp.path_hops(3), 3);
  EXPECT_EQ(sp.parent(3), 2);
  // Beyond-bound target: unreached, hops -1 (query_on_h semantics).
  const gr::SpView sp2 = ws.bounded_to(g, 0, 4, 2.0);
  EXPECT_EQ(sp2.dist(4), gr::kInf);
  EXPECT_EQ(sp2.path_hops(4), -1);
}

TEST(SpWorkspace, EpochWraparoundRebasesStamps) {
  const gr::Graph g = path_graph();
  gr::DijkstraWorkspace ws;
  const gr::SpView before = ws.bounded(g, 0, gr::kInf);
  EXPECT_DOUBLE_EQ(before.dist(4), 5.0);
  ws.debug_exhaust_epochs();
  // First search after exhaustion rebases every stamp; results must be
  // exactly the fresh-workspace answers, and stale entries from the
  // pre-wrap search must not leak in (vertex 4 unreached at radius 1).
  const gr::SpView sp = ws.bounded(g, 0, 1.0);
  EXPECT_DOUBLE_EQ(sp.dist(0), 0.0);
  EXPECT_DOUBLE_EQ(sp.dist(1), 1.0);
  EXPECT_EQ(sp.dist(4), gr::kInf);
  EXPECT_FALSE(sp.reached(4));
  // And the epoch counter keeps working for subsequent searches.
  const gr::SpView sp2 = ws.bounded(g, 4, gr::kInf);
  EXPECT_DOUBLE_EQ(sp2.dist(0), 5.0);
}

TEST(SpWorkspace, StaleViewThrowsAfterNewSearch) {
  const gr::Graph g = path_graph();
  gr::DijkstraWorkspace ws;
  const gr::SpView old_view = ws.bounded(g, 0, gr::kInf);
  EXPECT_DOUBLE_EQ(old_view.dist(2), 1.5);
  static_cast<void>(ws.bounded(g, 1, gr::kInf));
  EXPECT_THROW(static_cast<void>(old_view.dist(2)), std::logic_error);
  EXPECT_THROW(static_cast<void>(old_view.touched()), std::logic_error);
  EXPECT_THROW(static_cast<void>(old_view.parent(0)), std::logic_error);
}

TEST(SpWorkspace, ReuseAcrossGraphsIsSafeAndStaleViewsAreCaught) {
  const gr::Graph big = path_graph();
  gr::Graph small(2);
  small.add_edge(0, 1, 3.0);
  gr::DijkstraWorkspace ws;
  const gr::SpView big_view = ws.bounded(big, 0, gr::kInf);
  EXPECT_DOUBLE_EQ(big_view.dist(4), 5.0);
  // Same workspace, different (smaller) graph: correct fresh results...
  const gr::SpView small_view = ws.bounded(small, 0, gr::kInf);
  EXPECT_DOUBLE_EQ(small_view.dist(1), 3.0);
  // ...the big graph's view is stale, not silently reading the small run...
  EXPECT_THROW(static_cast<void>(big_view.dist(4)), std::logic_error);
  // ...and the small view refuses ids beyond the small graph even though
  // the workspace's arrays are still big-graph sized.
  EXPECT_THROW(static_cast<void>(small_view.dist(4)), std::invalid_argument);
  // Back to the big graph: stamps from both earlier searches are stale.
  const gr::SpView again = ws.bounded(big, 4, gr::kInf);
  EXPECT_DOUBLE_EQ(again.dist(0), 5.0);
}

TEST(SpWorkspace, ArgumentErrorsMatchDenseReference) {
  const gr::Graph g = path_graph();
  gr::DijkstraWorkspace ws;
  EXPECT_THROW(static_cast<void>(ws.bounded(g, -1, 1.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(ws.bounded(g, 5, 1.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(ws.bounded(g, 0, -1.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(ws.distance(g, 0, 9)), std::invalid_argument);
  const std::vector<int> bad{0, 7};
  EXPECT_THROW(static_cast<void>(ws.multi_bounded(g, bad, 1.0)), std::invalid_argument);
}

TEST(SpWorkspace, DefaultViewIsInvalid) {
  const gr::SpView view;
  EXPECT_THROW(static_cast<void>(view.dist(0)), std::logic_error);
}

// ---------------------------------------------------------------------------
// Single-owner enforcement: the workspace is documented single-owner; the
// in-use flag turns silent stamp corruption (re-entrant search through a
// weight transform, or two threads sharing one workspace) into a
// std::logic_error at the point of misuse.
// ---------------------------------------------------------------------------

TEST(SpWorkspace, ReentrantSearchThroughWeightTransformThrows) {
  const gr::Graph g = path_graph();
  gr::DijkstraWorkspace ws;
  const std::vector<int> sources{0};
  // A weight transform that calls back into the same workspace mid-search —
  // the one single-threaded way to re-enter run().
  const auto evil = [&](double w) {
    static_cast<void>(ws.bounded(g, 0, 1.0));  // throws: ws is mid-search
    return w;
  };
  EXPECT_THROW(static_cast<void>(ws.multi_bounded(g, sources, gr::kInf, evil)), std::logic_error);
  // The flag is released on unwind: the workspace keeps working.
  EXPECT_FALSE(ws.in_use());
  const gr::SpView sp = ws.bounded(g, 0, gr::kInf);
  EXPECT_DOUBLE_EQ(sp.dist(4), 5.0);
}

TEST(SpWorkspace, InUseFlagDoesNotTravelWithCopies) {
  gr::DijkstraWorkspace ws;
  EXPECT_FALSE(ws.in_use());
  const gr::DijkstraWorkspace copy = ws;  // fresh (idle) flag by design
  EXPECT_FALSE(copy.in_use());
}

// ---------------------------------------------------------------------------
// CsrView mid-snapshot mutation detection. The assign loop snapshots one
// adjacency row at a time; a graph mutated between rows (a concurrent
// writer) yields a torn snapshot whose half-edge totals cannot be
// consistent. The stand-in below mutates deterministically from inside
// neighbors(), simulating exactly the interleaving a racing writer causes.
// ---------------------------------------------------------------------------

namespace {

/// Graph facade that removes edge {0,1} the moment row `mutate_at` is read,
/// after earlier rows (which include 0 and 1) were already copied.
struct MutatingGraph {
  gr::Graph g;
  int mutate_at;

  [[nodiscard]] int n() const { return g.n(); }
  [[nodiscard]] int m() const { return g.m(); }
  [[nodiscard]] std::span<const gr::Neighbor> neighbors(int u) const {
    if (u == mutate_at) const_cast<gr::Graph&>(g).remove_edge(0, 1);
    return g.neighbors(u);
  }
};

}  // namespace

TEST(CsrView, RejectsGraphMutatedMidSnapshot) {
  gr::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  gr::CsrView csr;
  // Rows 0 and 1 are copied with edge {0,1} present; the writer strikes
  // before row 2, so the copied half-edges (2 + from rows 2,3) disagree
  // with the final m — the snapshot is torn and must be rejected.
  const MutatingGraph torn{g, 2};
  EXPECT_THROW(csr.assign(torn), std::logic_error);
  // An untouched graph still snapshots fine afterwards (buffers intact).
  csr.assign(g);
  EXPECT_EQ(csr.n(), 4);
  EXPECT_EQ(csr.neighbors(0).size(), 1u);
}

// ---------------------------------------------------------------------------
// Allocation-freedom (the acceptance criterion of the workspace): after one
// warm-up search, bounded / multi-source / transformed searches allocate
// nothing, and so does a warmed-up DynamicSpanner local certify.
// ---------------------------------------------------------------------------

TEST(SpWorkspaceAlloc, WarmSearchesAllocateNothing) {
  const localspan::ubg::UbgInstance inst =
      Scenario{2, localspan::ubg::Placement::kUniform, 0.75, 256, 3}.make();
  const gr::Graph& g = inst.g;
  gr::DijkstraWorkspace ws;
  const std::vector<int> sources{1, 5, 9};
  const auto energy = [](double w) { return w * w; };
  // Warm-up: grows the stamp/dist/parent arrays and the heap/touched
  // buffers to the high-water mark of exactly the searches counted below
  // (heap depth varies per source, so the warm-up mirrors them).
  static_cast<void>(ws.bounded(g, 2, gr::kInf));
  static_cast<void>(ws.multi_bounded(g, sources, 0.8));
  static_cast<void>(ws.multi_bounded(g, sources, 0.8, energy));
  static_cast<void>(ws.distance(g, 0, g.n() - 1));

  long long allocs = g_allocs.load();
  static_cast<void>(ws.bounded(g, 2, gr::kInf));
  allocs = g_allocs.load() - allocs;
  EXPECT_EQ(allocs, 0) << "warmed bounded search allocated";

  allocs = g_allocs.load();
  static_cast<void>(ws.multi_bounded(g, sources, 0.8));
  allocs = g_allocs.load() - allocs;
  EXPECT_EQ(allocs, 0) << "warmed multi-source search allocated";

  allocs = g_allocs.load();
  static_cast<void>(ws.multi_bounded(g, sources, 0.8, energy));
  allocs = g_allocs.load() - allocs;
  EXPECT_EQ(allocs, 0) << "warmed transformed search allocated";

  allocs = g_allocs.load();
  static_cast<void>(ws.distance(g, 0, g.n() - 1));
  allocs = g_allocs.load() - allocs;
  EXPECT_EQ(allocs, 0) << "warmed distance query allocated";
}

TEST(SpWorkspaceAlloc, WarmSearchesAllocateNothingAtEveryArity) {
  // The 4-ary production heap and the binary reference both keep the
  // zero-steady-state-allocation invariant: arity changes sift fan-out, not
  // buffer ownership.
  const localspan::ubg::UbgInstance inst =
      Scenario{2, localspan::ubg::Placement::kUniform, 0.75, 256, 3}.make();
  const gr::Graph& g = inst.g;
  const std::vector<int> sources{1, 5, 9};
  gr::BasicDijkstraWorkspace<2> binary;
  gr::BasicDijkstraWorkspace<4> quad;
  const auto sweep = [&](auto& ws) {
    static_cast<void>(ws.bounded(g, 2, gr::kInf));
    static_cast<void>(ws.multi_bounded(g, sources, 0.8));
    static_cast<void>(ws.distance(g, 0, g.n() - 1));
  };
  sweep(binary);  // warm-up
  sweep(quad);
  long long allocs = g_allocs.load();
  sweep(binary);
  allocs = g_allocs.load() - allocs;
  EXPECT_EQ(allocs, 0) << "warmed binary-heap searches allocated";
  allocs = g_allocs.load();
  sweep(quad);
  allocs = g_allocs.load() - allocs;
  EXPECT_EQ(allocs, 0) << "warmed 4-ary-heap searches allocated";
}

TEST(SpWorkspaceAlloc, CsrReassignAllocatesNothingOnceGrown) {
  const localspan::ubg::UbgInstance inst =
      Scenario{2, localspan::ubg::Placement::kUniform, 0.75, 128, 3}.make();
  gr::CsrView csr(inst.g);
  const long long before = g_allocs.load();
  csr.assign(inst.g);  // same graph: capacity already fits
  EXPECT_EQ(g_allocs.load() - before, 0);
}

TEST(SpWorkspaceAlloc, WarmDynamicCertifyAllocatesNothing) {
  const localspan::ubg::UbgInstance inst =
      Scenario{2, localspan::ubg::Placement::kUniform, 0.75, 128, 3}.make();
  const localspan::core::Params params = localspan::core::Params::practical_params(0.5, 0.75);
  localspan::dynamic::DynamicSpanner engine(inst, params);
  localspan::dynamic::PoissonChurnConfig cfg;
  cfg.events = 8;
  cfg.seed = 3;
  const localspan::dynamic::ChurnTrace trace = localspan::dynamic::poisson_churn(inst, cfg);
  static_cast<void>(engine.apply_all(trace));  // warm scratch + workspaces
  int live = 0;
  while (live < engine.instance().g.n() && !engine.is_active(live)) ++live;
  ASSERT_LT(live, engine.instance().g.n()) << "no live node after warm-up trace";
  const std::vector<int> modified{live};
  int scope = 0;
  ASSERT_TRUE(engine.certify(modified, &scope));  // warm for this scope size
  const long long before = g_allocs.load();
  const bool ok = engine.certify(modified, &scope);
  const long long allocs = g_allocs.load() - before;
  EXPECT_TRUE(ok);
  EXPECT_EQ(allocs, 0) << "warmed local certify allocated";
  EXPECT_GT(scope, 0);
  EXPECT_LE(scope, engine.instance().g.n());
}
