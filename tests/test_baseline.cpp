// Tests for the topology-control baselines of experiment E6:
// Yao graph, Gabriel graph, Relative Neighborhood Graph.
#include <gtest/gtest.h>

#include "baseline/gabriel.hpp"
#include "baseline/rng_graph.hpp"
#include "baseline/yao.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "graph/mst.hpp"
#include "ubg/generator.hpp"

namespace bl = localspan::baseline;
namespace gr = localspan::graph;
namespace ub = localspan::ubg;

namespace {

ub::UbgInstance udg_instance(std::uint64_t seed, int n = 250) {
  ub::UbgConfig cfg;
  cfg.n = n;
  cfg.alpha = 1.0;  // classical UDG for the baseline identities
  cfg.seed = seed;
  return ub::make_ubg(cfg);
}

}  // namespace

TEST(Yao, SubgraphWithBoundedOutSelection) {
  const auto inst = udg_instance(1);
  const int k = 8;
  const gr::Graph y = bl::yao_graph(inst, k);
  for (const gr::Edge& e : y.edges()) EXPECT_TRUE(inst.g.has_edge(e.u, e.v));
  // Each node selects <= k edges; after symmetrization degree <= 2k… but the
  // selected-out count per node is what the construction bounds. The max
  // total degree stays modest on uniform instances.
  EXPECT_LE(y.max_degree(), 3 * k);
  EXPECT_LE(y.m(), k * y.n());
}

TEST(Yao, PreservesConnectivityOnUdg) {
  const auto inst = udg_instance(2);
  const gr::Graph y = bl::yao_graph(inst, 8);
  EXPECT_EQ(gr::connected_components(inst.g).count, gr::connected_components(y).count);
}

TEST(Yao, MoreConesMeansBetterStretch) {
  const auto inst = udg_instance(3);
  const double s6 = gr::max_edge_stretch(inst.g, bl::yao_graph(inst, 6));
  const double s16 = gr::max_edge_stretch(inst.g, bl::yao_graph(inst, 16));
  EXPECT_LE(s16, s6 + 1e-9);
}

TEST(Yao, RejectsBadInput) {
  const auto inst = udg_instance(4);
  EXPECT_THROW(static_cast<void>(bl::yao_graph(inst, 2)), std::invalid_argument);
  ub::UbgConfig cfg3;
  cfg3.n = 20;
  cfg3.dim = 3;
  cfg3.seed = 5;
  const auto inst3 = ub::make_ubg(cfg3);
  EXPECT_THROW(static_cast<void>(bl::yao_graph(inst3, 6)), std::invalid_argument);
}

TEST(Gabriel, WitnessFreeEdgesOnly) {
  const auto inst = udg_instance(5, 150);
  const gr::Graph gg = bl::gabriel_graph(inst);
  // Verify the Gabriel predicate directly on every kept edge.
  for (const gr::Edge& e : gg.edges()) {
    const auto& pu = inst.points[static_cast<std::size_t>(e.u)];
    const auto& pv = inst.points[static_cast<std::size_t>(e.v)];
    for (int w = 0; w < inst.g.n(); ++w) {
      if (w == e.u || w == e.v) continue;
      localspan::geom::Point mid(pu.dim());
      for (int d = 0; d < pu.dim(); ++d) mid[d] = 0.5 * (pu[d] + pv[d]);
      EXPECT_GE(localspan::geom::sq_distance(mid, inst.points[static_cast<std::size_t>(w)]),
                localspan::geom::sq_distance(pu, pv) / 4.0 * (1.0 - 1e-9));
    }
  }
}

TEST(Gabriel, ContainsTheMsf) {
  // Classical inclusion chain: MST ⊆ RNG ⊆ Gabriel (arguments stay valid
  // intersected with a UDG on connected instances).
  const auto inst = udg_instance(6, 200);
  const gr::Graph gg = bl::gabriel_graph(inst);
  EXPECT_NEAR(gr::msf_weight(inst.g), gr::msf_weight(gg), 1e-9);
  EXPECT_EQ(gr::connected_components(inst.g).count, gr::connected_components(gg).count);
}

TEST(Rng, SubsetOfGabriel) {
  const auto inst = udg_instance(7, 200);
  const gr::Graph gg = bl::gabriel_graph(inst);
  const gr::Graph rng = bl::relative_neighborhood_graph(inst);
  for (const gr::Edge& e : rng.edges()) {
    EXPECT_TRUE(gg.has_edge(e.u, e.v)) << e.u << "," << e.v;
  }
  EXPECT_LE(rng.m(), gg.m());
}

TEST(Rng, LunePredicateHolds) {
  const auto inst = udg_instance(8, 120);
  const gr::Graph rng = bl::relative_neighborhood_graph(inst);
  for (const gr::Edge& e : rng.edges()) {
    for (int w = 0; w < inst.g.n(); ++w) {
      if (w == e.u || w == e.v) continue;
      const double lune = std::max(inst.dist(e.u, w), inst.dist(e.v, w));
      EXPECT_GE(lune, e.w * (1.0 - 1e-9));
    }
  }
}

TEST(Rng, PreservesConnectivity) {
  const auto inst = udg_instance(9, 200);
  const gr::Graph rng = bl::relative_neighborhood_graph(inst);
  EXPECT_EQ(gr::connected_components(inst.g).count, gr::connected_components(rng).count);
  EXPECT_NEAR(gr::msf_weight(inst.g), gr::msf_weight(rng), 1e-9);
}

TEST(Baselines, SparsityOrderingOnUniformInstances) {
  const auto inst = udg_instance(10, 300);
  const int m_rng = bl::relative_neighborhood_graph(inst).m();
  const int m_gg = bl::gabriel_graph(inst).m();
  EXPECT_LE(m_rng, m_gg);
  EXPECT_LE(m_gg, inst.g.m());
}
