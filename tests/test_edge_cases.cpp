// Edge-case coverage for graph/components, graph/mst and core/relaxed_greedy:
// the empty graph, single- and two-node instances at both alpha extremes, and
// disconnected UBG instances — the degenerate inputs a production service must
// survive without special-casing at every call site.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/distributed.hpp"
#include "core/relaxed_greedy.hpp"
#include "core/verify.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "graph/mst.hpp"
#include "scenario_matrix.hpp"
#include "ubg/generator.hpp"

namespace core = localspan::core;
namespace gr = localspan::graph;
namespace ti = localspan::testinfra;
namespace ub = localspan::ubg;

namespace {

/// Two far-apart copies of a scenario cell: a guaranteed-disconnected UBG.
ub::UbgInstance disconnected_instance() {
  const ub::UbgInstance half = ti::Scenario{2, ub::Placement::kUniform, 0.75, 20, 3}.make();
  ub::UbgInstance inst;
  inst.config = half.config;
  inst.config.n = 2 * half.config.n;
  const int n = half.g.n();
  for (int copy = 0; copy < 2; ++copy) {
    const double shift = copy * 1000.0;
    for (const auto& p : half.points) inst.points.push_back({p[0] + shift, p[1]});
  }
  inst.g = gr::Graph(2 * n);
  for (const gr::Edge& e : half.g.edges()) {
    inst.g.add_edge(e.u, e.v, e.w);
    inst.g.add_edge(e.u + n, e.v + n, e.w);
  }
  return inst;
}

}  // namespace

// ---------------------------------------------------------------------------
// graph/components

TEST(ComponentsEdge, EmptyGraph) {
  const gr::Components c = gr::connected_components(gr::Graph(0));
  EXPECT_EQ(c.count, 0);
  EXPECT_TRUE(c.label.empty());
  EXPECT_TRUE(c.groups().empty());
}

TEST(ComponentsEdge, SingleVertex) {
  const gr::Components c = gr::connected_components(gr::Graph(1));
  EXPECT_EQ(c.count, 1);
  ASSERT_EQ(c.label.size(), 1u);
  EXPECT_EQ(c.label[0], 0);
}

TEST(ComponentsEdge, TwoVerticesWithAndWithoutEdge) {
  gr::Graph isolated(2);
  EXPECT_EQ(gr::connected_components(isolated).count, 2);
  EXPECT_FALSE(gr::connected(isolated, 0, 1));

  gr::Graph joined(2);
  joined.add_edge(0, 1, 0.5);
  EXPECT_EQ(gr::connected_components(joined).count, 1);
  EXPECT_TRUE(gr::connected(joined, 0, 1));
}

TEST(ComponentsEdge, DisconnectedUbgLabelsAreConsistent) {
  const auto inst = disconnected_instance();
  const gr::Components c = gr::connected_components(inst.g);
  EXPECT_GE(c.count, 2);
  for (const gr::Edge& e : inst.g.edges()) {
    EXPECT_EQ(c.label[static_cast<std::size_t>(e.u)], c.label[static_cast<std::size_t>(e.v)]);
  }
  // The two halves never share a label.
  const int n_half = inst.g.n() / 2;
  for (int u = 0; u < n_half; ++u) {
    EXPECT_NE(c.label[static_cast<std::size_t>(u)],
              c.label[static_cast<std::size_t>(u + n_half)]);
  }
  // groups() partitions the vertex set.
  std::size_t total = 0;
  for (const auto& grp : c.groups()) total += grp.size();
  EXPECT_EQ(total, static_cast<std::size_t>(inst.g.n()));
}

// ---------------------------------------------------------------------------
// graph/mst

TEST(MstEdge, EmptyGraph) {
  const gr::Graph f = gr::minimum_spanning_forest(gr::Graph(0));
  EXPECT_EQ(f.n(), 0);
  EXPECT_EQ(f.m(), 0);
  EXPECT_DOUBLE_EQ(gr::msf_weight(gr::Graph(0)), 0.0);
}

TEST(MstEdge, SingleAndTwoVertices) {
  EXPECT_EQ(gr::minimum_spanning_forest(gr::Graph(1)).m(), 0);

  gr::Graph pair(2);
  pair.add_edge(0, 1, 2.5);
  const gr::Graph f = gr::minimum_spanning_forest(pair);
  EXPECT_EQ(f.m(), 1);
  EXPECT_DOUBLE_EQ(gr::msf_weight(pair), 2.5);
}

TEST(MstEdge, ForestSizeOnDisconnectedUbg) {
  const auto inst = disconnected_instance();
  const gr::Components c = gr::connected_components(inst.g);
  const gr::Graph f = gr::minimum_spanning_forest(inst.g);
  // A spanning forest has exactly n - #components edges.
  EXPECT_EQ(f.m(), inst.g.n() - c.count);
  EXPECT_DOUBLE_EQ(gr::msf_weight(inst.g), f.total_weight());
  // The forest preserves the component structure exactly.
  EXPECT_EQ(gr::connected_components(f).count, c.count);
}

// ---------------------------------------------------------------------------
// core/relaxed_greedy

TEST(RelaxedEdge, EmptyInstanceIsRejected) {
  // The documented BinSchema contract requires n >= 1; a zero-node instance
  // must fail loudly with invalid_argument, not crash.
  ub::UbgInstance inst;
  inst.config.n = 0;
  inst.config.alpha = 0.75;
  inst.g = gr::Graph(0);
  const core::Params params = core::Params::practical_params(0.5, 0.75);
  EXPECT_THROW(static_cast<void>(core::relaxed_greedy(inst, params)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(core::distributed_relaxed_greedy(inst, params, {}, 1)),
               std::invalid_argument);
}

TEST(RelaxedEdge, SingleNodeAtAlphaExtremes) {
  for (double alpha : {0.05, 1.0}) {
    ub::UbgConfig cfg;
    cfg.n = 1;
    cfg.alpha = alpha;
    cfg.seed = 5;
    const auto inst = ub::make_ubg(cfg);
    const core::Params params = core::Params::practical_params(0.5, alpha);
    const auto result = core::relaxed_greedy(inst, params);
    EXPECT_EQ(result.spanner.n(), 1);
    EXPECT_EQ(result.spanner.m(), 0);
    EXPECT_TRUE(core::verify_spanner(inst, result.spanner, params.t).ok()) << alpha;
  }
}

TEST(RelaxedEdge, TwoNodesAtAlphaExtremes) {
  for (double alpha : {0.05, 1.0}) {
    for (bool adjacent : {false, true}) {
      ub::UbgInstance inst;
      inst.config.n = 2;
      inst.config.dim = 2;
      inst.config.alpha = alpha;
      // Within alpha-range (forced edge) or beyond max range (no edge).
      const double d = adjacent ? 0.9 * alpha : 2.0;
      inst.points = {{0.0, 0.0}, {d, 0.0}};
      inst.g = gr::Graph(2);
      if (adjacent) inst.g.add_edge(0, 1, d);
      const core::Params params = core::Params::practical_params(0.5, alpha);
      const auto result = core::relaxed_greedy(inst, params);
      EXPECT_EQ(result.spanner.m(), adjacent ? 1 : 0) << "alpha=" << alpha;
      EXPECT_TRUE(core::verify_spanner(inst, result.spanner, params.t).ok())
          << "alpha=" << alpha << " adjacent=" << adjacent;
    }
  }
}

TEST(RelaxedEdge, DisconnectedUbgSpansEachComponent) {
  const auto inst = disconnected_instance();
  const core::Params params = core::Params::practical_params(0.5, inst.config.alpha);
  const auto result = core::relaxed_greedy(inst, params);
  EXPECT_EQ(gr::connected_components(result.spanner).count,
            gr::connected_components(inst.g).count);
  EXPECT_LE(gr::max_edge_stretch(inst.g, result.spanner), params.t * (1.0 + 1e-9));
  // No edge may bridge the halves (those pairs are not G edges).
  const int n_half = inst.g.n() / 2;
  for (const gr::Edge& e : result.spanner.edges()) {
    EXPECT_EQ(e.u < n_half, e.v < n_half);
  }
}
