# End-to-end smoke test for localspan_cli, run as a CTest script:
#   cmake -DCLI=<path> -DWORK_DIR=<dir> -P cli_smoke.cmake
#
# Drives the full gen -> span -> verify -> route pipeline on a tiny
# instance and checks exit codes plus the shape of stdout and of the
# exported artifacts.

if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<localspan_cli> -DWORK_DIR=<dir> -P cli_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_cli expect_rc out_var)
  execute_process(
    COMMAND "${CLI}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL expect_rc)
    message(FATAL_ERROR "localspan_cli ${ARGN} exited ${rc} (expected ${expect_rc})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# No arguments -> usage text on stderr, exit 1.
run_cli(1 usage_out)

# gen: writes the instance file and reports its size.
run_cli(0 gen_out gen --n 64 --alpha 0.75 --dim 2 --seed 7 --out tiny.lsi)
if(NOT gen_out MATCHES "wrote tiny\\.lsi: n=64, m=[0-9]+, policy=")
  message(FATAL_ERROR "gen output shape mismatch:\n${gen_out}")
endif()
if(NOT EXISTS "${WORK_DIR}/tiny.lsi")
  message(FATAL_ERROR "gen did not create tiny.lsi")
endif()

# span: builds the spanner and exports dot + csv.
run_cli(0 span_out span --in tiny.lsi --eps 0.5 --out-dot tiny.dot --out-csv tiny.csv)
if(NOT span_out MATCHES "spanner: [0-9]+ -> [0-9]+ edges, stretch [0-9.]+ \\(bound 1\\.50\\)")
  message(FATAL_ERROR "span output shape mismatch:\n${span_out}")
endif()
foreach(artifact tiny.dot tiny.csv)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "span did not create ${artifact}")
  endif()
endforeach()

# verify: exit 0 means the spanner passed verification.
run_cli(0 verify_out verify --in tiny.lsi --eps 0.5)

# verify a transformed-metric algorithm: must compare against the reweighted
# reference (not Euclidean weights) and still pass.
run_cli(0 energy_verify_out verify --in tiny.lsi --eps 0.5 --algo energy)
if(NOT energy_verify_out MATCHES "transformed metric")
  message(FATAL_ERROR "verify --algo energy did not report the transformed metric:\n${energy_verify_out}")
endif()

# route: prints delivery/stretch lines for both topologies.
run_cli(0 route_out route --in tiny.lsi --eps 0.5 --trials 50)
if(NOT route_out MATCHES "spanner +greedy routing: delivery [0-9.]+%")
  message(FATAL_ERROR "route output shape mismatch:\n${route_out}")
endif()

# missing input file -> error exit.
run_cli(1 missing_out span --in does_not_exist.lsi --eps 0.5)

# unknown flag -> usage error naming the flag (no silent ignoring).
function(run_cli_err expect_pattern)
  execute_process(
    COMMAND "${CLI}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR "localspan_cli ${ARGN} exited ${rc} (expected 1)\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  if(NOT err MATCHES "${expect_pattern}")
    message(FATAL_ERROR "localspan_cli ${ARGN}: stderr does not match '${expect_pattern}':\n${err}")
  endif()
endfunction()

run_cli_err("unknown flag --bogus" span --in tiny.lsi --eps 0.5 --bogus 1)
run_cli_err("unknown flag --epz" verify --in tiny.lsi --epz 0.5)
run_cli_err("stray argument" gen extra --n 16 --out x.lsi)

# unknown algorithm -> error naming the available ones.
run_cli_err("unknown algorithm 'nope'" span --in tiny.lsi --eps 0.5 --algo nope)

# unknown algorithm option -> rejected by the BuildRequest schema validation.
run_cli_err("does not accept option 'cones'" span --in tiny.lsi --eps 0.5 --algo yao --opt cones=9)

# malformed option value -> typed-accessor rejection.
run_cli_err("expected an integer" span --in tiny.lsi --eps 0.5 --algo yao --opt k=many)

# malformed / out-of-range numeric values -> strict full-string parsing,
# for flag values and option values alike (no silent truncation).
run_cli_err("--eps: expected a number" span --in tiny.lsi --eps 0.5x)
run_cli_err("option k: integer out of range" span --in tiny.lsi --eps 0.5 --algo yao --opt k=4294967304)

# flags the chosen algorithm cannot consume -> rejected, not dropped.
run_cli_err("--strict has no effect" span --in tiny.lsi --eps 0.5 --algo yao --strict)
run_cli_err("--seed has no effect" span --in tiny.lsi --eps 0.5 --algo yao --seed 7)

# repeated option -> rejected rather than silently last-wins.
run_cli_err("option 'k' given more than once" span --in tiny.lsi --eps 0.5 --algo yao --opt k=8 --opt k=12)

# span through a non-default registry algorithm.
run_cli(0 yao_out span --in tiny.lsi --eps 0.5 --algo yao --opt k=9)
if(NOT yao_out MATCHES "spanner: [0-9]+ -> [0-9]+ edges")
  message(FATAL_ERROR "span --algo yao output shape mismatch:\n${yao_out}")
endif()

# --algo list enumerates the registry.
run_cli(0 list_out span --algo list)
if(NOT list_out MATCHES "registered algorithms \\(1?[0-9]+\\):" OR NOT list_out MATCHES "relaxed-dist")
  message(FATAL_ERROR "--algo list output shape mismatch:\n${list_out}")
endif()

# trace: generate a churn trace (JSON and binary) from the instance.
run_cli(0 trace_out trace --in tiny.lsi --model poisson --events 12 --seed 3 --out tiny_churn.json)
if(NOT trace_out MATCHES "wrote tiny_churn\\.json: model=poisson, 12 events")
  message(FATAL_ERROR "trace output shape mismatch:\n${trace_out}")
endif()
run_cli(0 trace_bin_out trace --in tiny.lsi --model failure --radius 1.0 --out tiny_churn.ctb)
foreach(artifact tiny_churn.json tiny_churn.ctb)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "trace did not create ${artifact}")
  endif()
endforeach()

# dynamic: replay the trace with incremental repair; the independent final
# audit must certify the spanner (exit 0).
run_cli(0 dynamic_out dynamic --in tiny.lsi --churn tiny_churn.json --eps 0.5 --quiet
        --out-json tiny_dynamic.json)
if(NOT dynamic_out MATCHES "applied 12 events" OR NOT dynamic_out MATCHES "final audit: PASS")
  message(FATAL_ERROR "dynamic output shape mismatch:\n${dynamic_out}")
endif()
if(NOT EXISTS "${WORK_DIR}/tiny_dynamic.json")
  message(FATAL_ERROR "dynamic did not create tiny_dynamic.json")
endif()

# unknown trace model -> error exit.
run_cli(1 badmodel_out trace --in tiny.lsi --model bogus --out x.json)

message(STATUS "cli_smoke: all checks passed")
