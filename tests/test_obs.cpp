/// Tests for the observability layer (src/obs/): the determinism contract
/// (counter/gauge/histogram-bucket scrapes independent of thread count and
/// interleaving, including slab retirement when threads exit), histogram
/// quantile accuracy under sqrt(2) log-bucketing, the zero-allocation
/// steady state of warmed probes (counting allocator), the single-switch
/// off mode leaving built topologies bit-identical, and the shape of the
/// Chrome-trace / JSON exports.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "core/relaxed_greedy.hpp"
#include "obs/obs.hpp"
#include "ubg/generator.hpp"

namespace obs = localspan::obs;

// ---------------------------------------------------------------------------
// Counting allocator: every operator-new in this binary bumps the counter.
// Tests snapshot it around a warmed-up probe window; the infrastructure
// around the window (gtest, streams) may allocate freely.
// ---------------------------------------------------------------------------
namespace {
std::atomic<long long> g_allocs{0};
}  // namespace

// The replacement operator new allocates with std::malloc, so operator
// delete frees with std::free — GCC's new/delete-pair analysis cannot see
// through the replacement and flags the (correct) pairing.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow variants must be replaced too (a half-replaced set trips
// ASan's alloc-dealloc-mismatch check).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

/// Every test runs with a clean enabled registry and leaves it disabled and
/// empty — obs state is process-global, so hygiene here keeps tests
/// order-independent.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

/// Find a metric by name in a snapshot section; fails the test if absent.
template <typename Section>
const typename Section::value_type::second_type& find_metric(const Section& section,
                                                             const std::string& name) {
  for (const auto& [key, value] : section) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "metric '" << name << "' not in snapshot";
  static const typename Section::value_type::second_type empty{};
  return empty;
}

/// The fixed workload for the determinism test: item i adds (i % 7 + 1) to
/// the counter and records i % 257 into the histogram. Thread t of T handles
/// the items with i % T == t, so every T partitions the identical multiset.
void run_workload_slice(obs::MetricId counter, obs::MetricId hist, int t, int T, int items) {
  for (int i = t; i < items; i += T) {
    obs::counter_add(counter, i % 7 + 1);
    obs::histogram_record(hist, i % 257);
  }
}

}  // namespace

TEST_F(ObsTest, AggregationIsIndependentOfThreadCount) {
  const obs::MetricId counter = obs::counter_id("test.det_counter");
  const obs::MetricId hist = obs::histogram_id("test.det_hist");
  const int items = 4096;

  struct Observed {
    std::int64_t counter_total = 0;
    obs::HistogramSummary hist{};
  };
  std::vector<Observed> per_thread_count;
  for (const int T : {1, 2, 4}) {
    obs::reset();
    // Worker threads exit before the scrape, so this also proves retirement
    // (slab folding) loses nothing.
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(T));
    for (int t = 0; t < T; ++t) {
      workers.emplace_back(run_workload_slice, counter, hist, t, T, items);
    }
    for (std::thread& w : workers) w.join();

    const obs::Snapshot snap = obs::snapshot();
    Observed o;
    o.counter_total = find_metric(snap.counters, "test.det_counter");
    o.hist = find_metric(snap.histograms, "test.det_hist");
    per_thread_count.push_back(o);
  }

  // The serial run is the reference; every parallel partition must scrape to
  // the exact same integers (sums over slabs commute).
  const Observed& ref = per_thread_count.front();
  EXPECT_GT(ref.counter_total, 0);
  EXPECT_EQ(ref.hist.count, items);
  for (std::size_t i = 1; i < per_thread_count.size(); ++i) {
    const Observed& o = per_thread_count[i];
    EXPECT_EQ(o.counter_total, ref.counter_total) << "thread count case " << i;
    EXPECT_EQ(o.hist.count, ref.hist.count);
    EXPECT_EQ(o.hist.sum, ref.hist.sum);
    EXPECT_EQ(o.hist.max, ref.hist.max);
    // Quantiles derive from bucket counts, which are integer sums too.
    EXPECT_EQ(o.hist.p50, ref.hist.p50);
    EXPECT_EQ(o.hist.p90, ref.hist.p90);
    EXPECT_EQ(o.hist.p99, ref.hist.p99);
  }
}

TEST_F(ObsTest, HistogramQuantilesTrackTheSortedReference) {
  const obs::MetricId hist = obs::histogram_id("test.quantile_hist");
  const int count = 1000;
  for (int v = 1; v <= count; ++v) obs::histogram_record(hist, v);

  const obs::HistogramSummary h =
      find_metric(obs::snapshot().histograms, "test.quantile_hist");
  EXPECT_EQ(h.count, count);
  EXPECT_EQ(h.sum, static_cast<std::int64_t>(count) * (count + 1) / 2);
  EXPECT_EQ(h.max, count);
  EXPECT_NEAR(h.mean, 500.5, 1e-9);  // sum/count is exact, not bucketed.
  // Log-bucketing (base sqrt(2)) bounds the relative quantile error by
  // 2^(1/4) ~ 1.19; allow 25% against the exact order statistics.
  EXPECT_NEAR(h.p50, 500.0, 125.0);
  EXPECT_NEAR(h.p90, 900.0, 225.0);
  EXPECT_NEAR(h.p99, 990.0, 250.0);
}

TEST_F(ObsTest, HistogramClampsNegativeValuesToZeroBucket) {
  const obs::MetricId hist = obs::histogram_id("test.negative_hist");
  obs::histogram_record(hist, -42);
  obs::histogram_record(hist, 0);
  const obs::HistogramSummary h =
      find_metric(obs::snapshot().histograms, "test.negative_hist");
  EXPECT_EQ(h.count, 2);
  EXPECT_EQ(h.max, 0);
  EXPECT_EQ(h.p99, 0.0);
}

TEST_F(ObsTest, GaugeScrapesTakeTheMaxAcrossThreads) {
  const obs::MetricId gauge = obs::gauge_id("test.level_gauge");
  std::vector<std::thread> workers;
  for (const std::int64_t level : {5LL, 9LL, 7LL}) {
    workers.emplace_back([gauge, level] { obs::gauge_set(gauge, level); });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(find_metric(obs::snapshot().gauges, "test.level_gauge"), 9);
}

TEST_F(ObsTest, RegistrationIsIdempotent) {
  EXPECT_EQ(obs::counter_id("test.same_name"), obs::counter_id("test.same_name"));
  EXPECT_EQ(obs::histogram_id("test.same_hist"), obs::histogram_id("test.same_hist"));
  EXPECT_EQ(obs::span_id("test.same_span"), obs::span_id("test.same_span"));
}

TEST_F(ObsTest, SpanTotalsCountScopedSections) {
  const obs::MetricId span = obs::span_id("test.scoped_span");
  for (int i = 0; i < 5; ++i) {
    const obs::Span s(span);
  }
  bool found = false;
  for (const obs::SpanStat& st : obs::span_totals()) {
    if (st.name == "test.scoped_span") {
      found = true;
      EXPECT_EQ(st.count, 5);
      EXPECT_GE(st.total_ns, 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, WarmedProbesDoNotAllocate) {
  const obs::MetricId counter = obs::counter_id("test.alloc_counter");
  const obs::MetricId gauge = obs::gauge_id("test.alloc_gauge");
  const obs::MetricId hist = obs::histogram_id("test.alloc_hist");
  const obs::MetricId span = obs::span_id("test.alloc_span");

  const auto fire_all = [&] {
    for (int i = 0; i < 64; ++i) {
      obs::counter_add(counter, 1);
      obs::gauge_set(gauge, i);
      obs::histogram_record(hist, i);
      const obs::Span s(span);
    }
  };
  fire_all();  // warm-up: first touch installs this thread's slab.

  long long before = g_allocs.load();
  fire_all();
  EXPECT_EQ(g_allocs.load() - before, 0)
      << "enabled-mode probes allocated after warm-up";

  obs::set_enabled(false);
  before = g_allocs.load();
  fire_all();
  EXPECT_EQ(g_allocs.load() - before, 0) << "disabled-mode probes allocated";
  obs::set_enabled(true);
}

TEST_F(ObsTest, DisabledModeBuildsBitIdenticalTopology) {
  localspan::ubg::UbgConfig cfg;
  cfg.n = 192;
  cfg.alpha = 0.75;
  cfg.dim = 2;
  cfg.seed = 7;
  const localspan::ubg::UbgInstance inst = localspan::ubg::make_ubg(cfg);
  const localspan::core::Params params = localspan::core::Params::practical_params(0.5, cfg.alpha);

  obs::set_enabled(false);
  const localspan::core::RelaxedGreedyResult off = localspan::core::relaxed_greedy(inst, params);
  obs::set_enabled(true);
  const localspan::core::RelaxedGreedyResult on = localspan::core::relaxed_greedy(inst, params);

  EXPECT_EQ(off.spanner, on.spanner);
  EXPECT_GT(find_metric(obs::snapshot().counters, "rg.edges_examined"), 0);
}

TEST_F(ObsTest, JsonAndTraceExportsAreWellFormed) {
  obs::set_thread_label("test-main");
  const obs::MetricId counter = obs::counter_id("test.json_counter");
  const obs::MetricId span = obs::span_id("test.json_span");
  obs::counter_add(counter, 3);
  {
    const obs::Span s(span);
  }

  const std::string json = obs::to_json(obs::snapshot());
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);

  const std::string trace = obs::trace_json();
  EXPECT_EQ(trace.find("{"), 0u);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("test-main"), std::string::npos);
  EXPECT_NE(trace.find("\"test.json_span\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsTest, ResetZeroesEverything) {
  const obs::MetricId counter = obs::counter_id("test.reset_counter");
  const obs::MetricId hist = obs::histogram_id("test.reset_hist");
  const obs::MetricId span = obs::span_id("test.reset_span");
  obs::counter_add(counter, 11);
  obs::histogram_record(hist, 100);
  {
    const obs::Span s(span);
  }
  obs::reset();

  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(find_metric(snap.counters, "test.reset_counter"), 0);
  EXPECT_EQ(find_metric(snap.histograms, "test.reset_hist").count, 0);
  for (const obs::SpanStat& st : snap.spans) {
    if (st.name == "test.reset_span") {
      EXPECT_EQ(st.count, 0);
    }
  }
  EXPECT_EQ(obs::trace_json().find("\"ph\": \"X\""), std::string::npos);
}
