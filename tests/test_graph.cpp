// Unit tests for the graph substrate: Graph, Dijkstra variants, union-find,
// MSF, components, and the spanner metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "graph/components.hpp"
#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "graph/mst.hpp"
#include "graph/union_find.hpp"

namespace gr = localspan::graph;

namespace {

/// Brute-force all-pairs shortest paths (Floyd-Warshall) for cross-checks.
std::vector<std::vector<double>> floyd_warshall(const gr::Graph& g) {
  const int n = g.n();
  std::vector<std::vector<double>> d(static_cast<std::size_t>(n),
                                     std::vector<double>(static_cast<std::size_t>(n), gr::kInf));
  for (int v = 0; v < n; ++v) d[static_cast<std::size_t>(v)][static_cast<std::size_t>(v)] = 0.0;
  for (const gr::Edge& e : g.edges()) {
    d[static_cast<std::size_t>(e.u)][static_cast<std::size_t>(e.v)] = e.w;
    d[static_cast<std::size_t>(e.v)][static_cast<std::size_t>(e.u)] = e.w;
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const double via = d[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] +
                           d[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
        if (via < d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
          d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = via;
        }
      }
    }
  }
  return d;
}

gr::Graph random_graph(int n, double p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> weight(0.1, 2.0);
  gr::Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (unit(rng) < p) g.add_edge(u, v, weight(rng));
    }
  }
  return g;
}

}  // namespace

TEST(Graph, BasicOperations) {
  gr::Graph g(4);
  EXPECT_EQ(g.n(), 4);
  EXPECT_EQ(g.m(), 0);
  EXPECT_TRUE(g.add_edge(0, 1, 1.5));
  EXPECT_FALSE(g.add_edge(1, 0, 2.0));  // duplicate, weight kept
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 1.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.m(), 1);
  EXPECT_DOUBLE_EQ(g.total_weight(), 1.5);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.m(), 0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 0.0);
}

TEST(Graph, RejectsInvalid) {
  gr::Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(-1, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -2.0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(g.edge_weight(0, 1)), std::invalid_argument);
  EXPECT_THROW(gr::Graph(-1), std::invalid_argument);
}

TEST(Graph, EdgesAreSortedAndUnique) {
  gr::Graph g(5);
  g.add_edge(3, 1, 1.0);
  g.add_edge(0, 4, 2.0);
  g.add_edge(2, 0, 3.0);
  const auto es = g.edges();
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0].u, 0);
  EXPECT_EQ(es[0].v, 2);
  EXPECT_EQ(es[1].u, 0);
  EXPECT_EQ(es[1].v, 4);
  EXPECT_EQ(es[2].u, 1);
  EXPECT_EQ(es[2].v, 3);
}

TEST(Graph, DegreeTracking) {
  gr::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.max_degree(), 3);
  g.remove_edge(0, 2);
  EXPECT_EQ(g.degree(0), 2);
}

TEST(Graph, EqualityIsStructural) {
  gr::Graph a(3);
  a.add_edge(0, 1, 1.0);
  gr::Graph b(3);
  b.add_edge(1, 0, 1.0);
  EXPECT_EQ(a, b);
  b.add_edge(1, 2, 1.0);
  EXPECT_FALSE(a == b);
}

TEST(Dijkstra, MatchesFloydWarshall) {
  const gr::Graph g = random_graph(40, 0.15, 42);
  const auto fw = floyd_warshall(g);
  for (int src = 0; src < g.n(); src += 7) {
    const gr::ShortestPaths sp = gr::dijkstra(g, src);
    for (int v = 0; v < g.n(); ++v) {
      EXPECT_NEAR(sp.dist[static_cast<std::size_t>(v)],
                  fw[static_cast<std::size_t>(src)][static_cast<std::size_t>(v)], 1e-9);
    }
  }
}

TEST(Dijkstra, BoundedStopsAtRadius) {
  const gr::Graph g = random_graph(60, 0.1, 7);
  const auto fw = floyd_warshall(g);
  const double radius = 1.0;
  const gr::ShortestPaths sp = gr::dijkstra_bounded(g, 0, radius);
  for (int v = 0; v < g.n(); ++v) {
    const double truth = fw[0][static_cast<std::size_t>(v)];
    if (truth <= radius) {
      EXPECT_NEAR(sp.dist[static_cast<std::size_t>(v)], truth, 1e-9);
    } else {
      EXPECT_EQ(sp.dist[static_cast<std::size_t>(v)], gr::kInf);
    }
  }
}

TEST(Dijkstra, SpDistanceEarlyExit) {
  gr::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(gr::sp_distance(g, 0, 3), 3.0);
  EXPECT_EQ(gr::sp_distance(g, 0, 3, 2.5), gr::kInf);  // over budget
  EXPECT_DOUBLE_EQ(gr::sp_distance(g, 0, 0), 0.0);
}

TEST(Dijkstra, DisconnectedIsInf) {
  gr::Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_EQ(gr::sp_distance(g, 0, 2), gr::kInf);
}

TEST(Graph, AddVertexGrowsWithoutDisturbingEdges) {
  gr::Graph g(2);
  g.add_edge(0, 1, 0.5);
  EXPECT_EQ(g.add_vertex(), 2);
  EXPECT_EQ(g.add_vertex(), 3);
  EXPECT_EQ(g.n(), 4);
  EXPECT_EQ(g.m(), 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(2), 0);
  g.add_edge(2, 3, 1.0);  // new slots are fully usable
  EXPECT_EQ(g.m(), 2);
}

TEST(Dijkstra, MultiSourceBoundedTakesMinOverSources) {
  const gr::Graph g = random_graph(60, 0.1, 13);
  const auto fw = floyd_warshall(g);
  const std::vector<int> sources{0, 5, 17};
  const double radius = 1.2;
  const gr::ShortestPaths sp = gr::dijkstra_multi_bounded(g, sources, radius);
  for (int v = 0; v < g.n(); ++v) {
    double truth = gr::kInf;
    for (int s : sources) {
      truth = std::min(truth, fw[static_cast<std::size_t>(s)][static_cast<std::size_t>(v)]);
    }
    if (truth <= radius) {
      EXPECT_NEAR(sp.dist[static_cast<std::size_t>(v)], truth, 1e-9) << v;
    } else {
      EXPECT_EQ(sp.dist[static_cast<std::size_t>(v)], gr::kInf) << v;
    }
  }
  // Duplicate sources are legal; bad ones and negative radii are not.
  const std::vector<int> dup{0, 0};
  EXPECT_EQ(gr::dijkstra_multi_bounded(g, dup, 1.0).dist[0], 0.0);
  const std::vector<int> bad{-1};
  EXPECT_THROW(static_cast<void>(gr::dijkstra_multi_bounded(g, bad, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(gr::dijkstra_multi_bounded(g, sources, -1.0)),
               std::invalid_argument);
}

TEST(Dijkstra, MultiSourceHonorsWeightTransform) {
  gr::Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const std::vector<int> src{0};
  // Squared weights: dist(0,2) = 4 + 9 = 13.
  const gr::ShortestPaths sp =
      gr::dijkstra_multi_bounded(g, src, 100.0, [](double w) { return w * w; });
  EXPECT_DOUBLE_EQ(sp.dist[1], 4.0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 13.0);
}

TEST(Dijkstra, ParentsFormShortestTree) {
  const gr::Graph g = random_graph(50, 0.12, 99);
  const gr::ShortestPaths sp = gr::dijkstra(g, 0);
  for (int v = 1; v < g.n(); ++v) {
    const int p = sp.parent[static_cast<std::size_t>(v)];
    if (sp.dist[static_cast<std::size_t>(v)] == gr::kInf) {
      EXPECT_EQ(p, -1);
      continue;
    }
    if (p == -1) continue;  // v unreachable or root
    EXPECT_NEAR(sp.dist[static_cast<std::size_t>(v)],
                sp.dist[static_cast<std::size_t>(p)] + g.edge_weight(p, v), 1e-9);
  }
}

TEST(Dijkstra, KHopBall) {
  gr::Graph g(6);  // path 0-1-2-3-4-5
  for (int i = 0; i < 5; ++i) g.add_edge(i, i + 1, 1.0);
  EXPECT_EQ(gr::khop_ball(g, 0, 0).size(), 1u);
  EXPECT_EQ(gr::khop_ball(g, 0, 2).size(), 3u);
  EXPECT_EQ(gr::khop_ball(g, 2, 2).size(), 5u);
  EXPECT_EQ(gr::khop_ball(g, 0, 99).size(), 6u);
}

TEST(Dijkstra, PathHops) {
  gr::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);  // heavier shortcut
  const gr::ShortestPaths sp = gr::dijkstra(g, 0);
  EXPECT_EQ(gr::path_hops(sp, 2), 2);  // goes the light way
  EXPECT_EQ(gr::path_hops(sp, 0), 0);
  EXPECT_EQ(gr::path_hops(sp, 3), -1);
}

TEST(UnionFind, BasicMerging) {
  gr::UnionFind uf(5);
  EXPECT_EQ(uf.components(), 5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.components(), 4);
  uf.unite(2, 3);
  uf.unite(0, 3);
  EXPECT_TRUE(uf.same(1, 2));
  EXPECT_EQ(uf.size_of(1), 4);
  EXPECT_EQ(uf.size_of(4), 1);
}

TEST(MSF, MatchesBruteForceOnSmallGraphs) {
  // Exhaustive check against all spanning trees via matrix-tree would be
  // heavy; instead compare against a second, independent Prim implementation.
  const gr::Graph g = random_graph(30, 0.25, 5);
  const gr::Graph forest = gr::minimum_spanning_forest(g);
  // Prim from each component.
  double prim_total = 0.0;
  std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
  for (int s = 0; s < g.n(); ++s) {
    if (seen[static_cast<std::size_t>(s)]) continue;
    std::vector<double> best(static_cast<std::size_t>(g.n()), gr::kInf);
    std::vector<char> in(static_cast<std::size_t>(g.n()), 0);
    best[static_cast<std::size_t>(s)] = 0.0;
    while (true) {
      int pick = -1;
      for (int v = 0; v < g.n(); ++v) {
        if (!in[static_cast<std::size_t>(v)] && best[static_cast<std::size_t>(v)] != gr::kInf &&
            (pick == -1 || best[static_cast<std::size_t>(v)] < best[static_cast<std::size_t>(pick)])) {
          pick = v;
        }
      }
      if (pick == -1) break;
      in[static_cast<std::size_t>(pick)] = 1;
      seen[static_cast<std::size_t>(pick)] = 1;
      prim_total += best[static_cast<std::size_t>(pick)];
      for (const gr::Neighbor& nb : g.neighbors(pick)) {
        if (!in[static_cast<std::size_t>(nb.to)]) {
          best[static_cast<std::size_t>(nb.to)] =
              std::min(best[static_cast<std::size_t>(nb.to)], nb.w);
        }
      }
    }
  }
  EXPECT_NEAR(forest.total_weight(), prim_total, 1e-9);
  EXPECT_NEAR(gr::msf_weight(g), prim_total, 1e-9);
}

TEST(MSF, ForestHasRightEdgeCount) {
  const gr::Graph g = random_graph(40, 0.2, 12);
  const gr::Components comps = gr::connected_components(g);
  const gr::Graph forest = gr::minimum_spanning_forest(g);
  EXPECT_EQ(forest.m(), g.n() - comps.count);
}

TEST(MSF, PreservesConnectivity) {
  const gr::Graph g = random_graph(40, 0.2, 13);
  const gr::Graph forest = gr::minimum_spanning_forest(g);
  const gr::Components cg = gr::connected_components(g);
  const gr::Components cf = gr::connected_components(forest);
  EXPECT_EQ(cg.count, cf.count);
  for (int v = 0; v < g.n(); ++v) {
    for (int u = 0; u < v; ++u) {
      EXPECT_EQ(cg.label[static_cast<std::size_t>(u)] == cg.label[static_cast<std::size_t>(v)],
                cf.label[static_cast<std::size_t>(u)] == cf.label[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Components, CountsAndGroups) {
  gr::Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  const gr::Components c = gr::connected_components(g);
  EXPECT_EQ(c.count, 3);  // {0,1,2}, {3,4}, {5}
  const auto groups = c.groups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_TRUE(gr::connected(g, 0, 2));
  EXPECT_FALSE(gr::connected(g, 0, 3));
  EXPECT_FALSE(gr::connected(g, 4, 5));
}

TEST(Metrics, EdgeStretchIdentityAndSubgraph) {
  gr::Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.9);
  EXPECT_DOUBLE_EQ(gr::max_edge_stretch(g, g), 1.0);
  gr::Graph sub(3);
  sub.add_edge(0, 1, 1.0);
  sub.add_edge(1, 2, 1.0);
  // Dropping {0,2} forces the 2-hop detour: stretch 2/1.9.
  EXPECT_NEAR(gr::max_edge_stretch(g, sub), 2.0 / 1.9, 1e-12);
}

TEST(Metrics, EdgeStretchCapsWhenDisconnected) {
  gr::Graph g(2);
  g.add_edge(0, 1, 1.0);
  gr::Graph sub(2);
  EXPECT_DOUBLE_EQ(gr::max_edge_stretch(g, sub, 16.0), 16.0);
}

TEST(Metrics, SampledPairStretchAgrees) {
  const gr::Graph g = random_graph(30, 0.3, 21);
  const gr::Graph forest = gr::minimum_spanning_forest(g);
  const double edge_stretch = gr::max_edge_stretch(g, forest);
  const double pair_stretch = gr::sampled_pair_stretch(g, forest, 300, 17);
  // Pair stretch can't exceed edge stretch (classical spanner lemma).
  EXPECT_LE(pair_stretch, edge_stretch + 1e-9);
}

TEST(Metrics, CountingPathsAreSixtyFourBitEndToEnd) {
  // Regression for the 32-bit counting paths: n=1e5-scale sweeps produce
  // samples-x-pairs budgets beyond INT_MAX. The quantile index is the
  // arithmetic that actually wrapped — ceil(0.99 * 5e9) - 1 is negative in
  // 32-bit — and the sampling entry points must accept 64-bit budgets
  // without truncating them through an int parameter.
  const std::int64_t five_billion = 5'000'000'000LL;
  EXPECT_EQ(gr::quantile_index(five_billion, 0.99), 4'950'000'000LL - 1);
  EXPECT_EQ(gr::quantile_index(five_billion, 1.0), five_billion - 1);
  EXPECT_EQ(gr::quantile_index(100, 0.99), 98);
  EXPECT_EQ(gr::quantile_index(1, 0.99), 0);
  EXPECT_EQ(gr::quantile_index(0, 0.99), -1);
  EXPECT_EQ(gr::quantile_index(five_billion, 0.0), 0);

  // The widened entry points take >INT_MAX budgets verbatim (the early-exit
  // paths keep these instant; an int parameter would have wrapped the value
  // to a negative count and silently measured nothing).
  const gr::Graph tiny(1);
  EXPECT_DOUBLE_EQ(gr::sampled_pair_stretch(tiny, tiny, five_billion, 1), 1.0);
  gr::Graph one_edge(2);
  one_edge.add_edge(0, 1, 1.0);
  const auto dist = [](int, int) { return 1.0; };
  EXPECT_EQ(gr::leapfrog_violations(one_edge, dist, 1.5, 2.0, five_billion, 1), 0);
}

TEST(Metrics, DegreeStats) {
  gr::Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(0, 4, 1.0);
  const gr::DegreeStats st = gr::degree_stats(g);
  EXPECT_EQ(st.max, 4);
  EXPECT_DOUBLE_EQ(st.mean, 8.0 / 5.0);
  EXPECT_EQ(st.p99, 4);
}

TEST(Metrics, LightnessOfMsfIsOne) {
  const gr::Graph g = random_graph(25, 0.3, 31);
  const gr::Graph forest = gr::minimum_spanning_forest(g);
  EXPECT_NEAR(gr::lightness(g, forest), 1.0, 1e-12);
  EXPECT_GE(gr::lightness(g, g), 1.0);
}

TEST(Metrics, PowerCost) {
  gr::Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  // power: node0 -> 2, node1 -> 3, node2 -> 3.
  EXPECT_DOUBLE_EQ(gr::power_cost(g), 8.0);
  EXPECT_DOUBLE_EQ(gr::power_cost(gr::Graph(4)), 0.0);
}

TEST(Metrics, DoublingDimensionOfALineIsLow) {
  // Points on a line: doubling dimension ~1.
  const int n = 64;
  std::vector<std::vector<double>> dist(n, std::vector<double>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = std::abs(i - j);
  }
  const double dd = gr::doubling_dimension_estimate(dist, 40, 3);
  EXPECT_LE(dd, 2.5);
}

TEST(Metrics, LeapfrogDetectsACraftedViolation) {
  // Two parallel unit edges at distance ~0: the subset {e1, e2} violates
  // t2·|e1| < |e2| + t·(tiny links) whenever t2 > 1 + t·epsilon. The sampler
  // must find it.
  gr::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto dist = [](int u, int v) {
    if (u == v) return 0.0;
    // Layout: 0 and 2 coincide (distance 1e-6), 1 and 3 coincide.
    const bool left_u = u == 0 || u == 2;
    const bool left_v = v == 0 || v == 2;
    if (left_u == left_v) return 1e-6;
    return 1.0;
  };
  EXPECT_GT(gr::leapfrog_violations(g, dist, 1.5, 2.0, 500, 3), 0);
}

TEST(Metrics, LeapfrogHoldsOnAnMst) {
  // An MST trivially satisfies leapfrog for t2 close to 1: removing the
  // longest edge of a subset forces a strictly longer connection.
  const gr::Graph g = random_graph(30, 0.3, 41);
  const gr::Graph forest = gr::minimum_spanning_forest(g);
  // Euclidean-free check: use the graph weights as "distances" via a lookup
  // of the edge when present, else a large constant. The MST edges can't be
  // shortcut by other MST edges, so violations should be rare-to-none for
  // t2 = 1.01 with generous t.
  const auto dist = [&](int u, int v) {
    if (u == v) return 0.0;
    if (forest.has_edge(u, v)) return forest.edge_weight(u, v);
    return 10.0;
  };
  EXPECT_EQ(gr::leapfrog_violations(forest, dist, 1.01, 8.0, 200, 9), 0);
}
