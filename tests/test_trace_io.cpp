// Tests for churn-trace serialization: JSON and binary round trips, format
// sniffing, and malformed-input rejection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <sstream>

#include "dynamic/churn.hpp"
#include "io/trace_io.hpp"
#include "ubg/generator.hpp"

namespace dy = localspan::dynamic;
namespace io = localspan::io;
namespace ub = localspan::ubg;

namespace {

dy::ChurnTrace sample_trace(int dim = 2, int events = 32, std::uint64_t seed = 5) {
  ub::UbgConfig cfg;
  cfg.n = 48;
  cfg.dim = dim;
  cfg.alpha = 0.75;
  cfg.seed = seed;
  const ub::UbgInstance inst = ub::make_ubg(cfg);
  dy::PoissonChurnConfig pc;
  pc.events = events;
  pc.seed = seed;
  return dy::poisson_churn(inst, pc);
}

// A syntactically valid trace wrapper around a caller-supplied event list —
// the fixture for the semantic-validation reject cases below.
std::string json_trace(const std::string& events, const std::string& alpha = "0.75",
                       const std::string& side = "5.0") {
  return std::string(R"({"format": "localspan-churn-trace", "version": 1, "dim": 2, "alpha": )") +
         alpha + R"(, "side": )" + side + R"(, "events": [)" + events + "]}";
}

// The reader must throw, and the message must name the actual defect (a
// typed "trace_io: ..." error, not a generic parse failure).
void expect_reject_json(const std::string& text, const std::string& needle) {
  std::stringstream ss(text);
  try {
    static_cast<void>(io::read_trace_json(ss));
    FAIL() << "accepted: " << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got '" << e.what() << "', wanted substring '" << needle << "'";
  }
}

dy::ChurnEvent make_event(dy::EventKind kind, int node, double time, double x, double y) {
  dy::ChurnEvent ev;
  ev.kind = kind;
  ev.node = node;
  ev.time = time;
  ev.pos = localspan::geom::Point(2);
  ev.pos[0] = x;
  ev.pos[1] = y;
  return ev;
}

// Serialize a hand-built (possibly malformed) trace — write_trace_binary
// emits raw doubles without judgement — and require the reader to refuse it.
void expect_reject_binary(const dy::ChurnTrace& trace, const std::string& needle) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_trace_binary(ss, trace);
  try {
    static_cast<void>(io::read_trace_binary(ss));
    FAIL() << "accepted malformed binary trace (wanted '" << needle << "')";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got '" << e.what() << "', wanted substring '" << needle << "'";
  }
}

}  // namespace

TEST(TraceJson, RoundTripIsExact) {
  for (int dim : {2, 3}) {
    const dy::ChurnTrace trace = sample_trace(dim);
    std::stringstream ss;
    io::write_trace_json(ss, trace);
    const dy::ChurnTrace back = io::read_trace_json(ss);
    EXPECT_EQ(back, trace) << "dim=" << dim;  // bitwise doubles via %.17g
  }
}

TEST(TraceJson, EmptyTraceRoundTrips) {
  dy::ChurnTrace trace{2, 0.6, 4.5, {}};
  std::stringstream ss;
  io::write_trace_json(ss, trace);
  EXPECT_EQ(io::read_trace_json(ss), trace);
}

TEST(TraceJson, RejectsGarbage) {
  const auto reject = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW(static_cast<void>(io::read_trace_json(ss)), std::runtime_error) << text;
  };
  reject("");
  reject("not json at all");
  reject("[1, 2, 3]");                                  // wrong top-level type
  reject("{\"format\": \"other\", \"version\": 1}");    // wrong format tag
  reject(R"({"format": "localspan-churn-trace", "version": 99})");  // bad version
  reject(R"({"format": "localspan-churn-trace", "version": 1, "dim": 2,
             "alpha": 0.75, "side": 5.0, "events": [{"t": 0, "kind": "warp",
             "node": 1, "pos": [0, 0]}]})");            // unknown kind
  reject(R"({"format": "localspan-churn-trace", "version": 1, "dim": 2,
             "alpha": 0.75, "side": 5.0, "events": [{"t": 0, "kind": "join",
             "node": 1, "pos": [0.5]}]})");             // pos arity mismatch
  reject(R"({"format": "localspan-churn-trace", "version": 1, "dim": 2,
             "alpha": 0.75, "side": 5.0, "events": []} trailing)");
  // Number forms strtod would take but RFC 8259 forbids.
  for (const char* bad : {"0x10", "+1.5", ".5", "1.", "01", "1e", "nan", "inf"}) {
    reject(std::string(R"({"format": "localspan-churn-trace", "version": 1, "dim": 2,
             "alpha": 0.75, "side": )") +
           bad + ", \"events\": []}");
  }
}

TEST(TraceJson, RejectsSemanticallyInvalidHeaders) {
  expect_reject_json(json_trace("", "1.5"), "alpha out of range");
  expect_reject_json(json_trace("", "0"), "alpha out of range");
  expect_reject_json(json_trace("", "-0.25"), "alpha out of range");
  expect_reject_json(json_trace("", "0.75", "-2.0"), "side must be finite");
}

TEST(TraceJson, RejectsNonMonotoneTimestamps) {
  expect_reject_json(
      json_trace(R"({"t": 1.0, "kind": "join", "node": 1, "pos": [0.5, 0.5]},
                    {"t": 0.5, "kind": "join", "node": 2, "pos": [1.5, 1.5]})"),
      "non-monotone timestamp");
}

TEST(TraceJson, RejectsNegativeNodeIds) {
  expect_reject_json(json_trace(R"({"t": 0, "kind": "join", "node": -3, "pos": [0.5, 0.5]})"),
                     "negative node id");
}

TEST(TraceJson, RejectsOutOfRangeCoordinates) {
  // Above the declared box side.
  expect_reject_json(json_trace(R"({"t": 0, "kind": "join", "node": 1, "pos": [6.0, 0.5]})"),
                     "out of range");
  // Negative coordinate.
  expect_reject_json(json_trace(R"({"t": 0, "kind": "move", "node": 1, "pos": [0.5, -0.5]})"),
                     "out of range");
}

TEST(TraceJson, RejectsDuplicateNodeIds) {
  expect_reject_json(
      json_trace(R"({"t": 0, "kind": "join", "node": 7, "pos": [0.5, 0.5]},
                    {"t": 1, "kind": "join", "node": 7, "pos": [1.5, 1.5]})"),
      "duplicate join of node 7");
}

TEST(TraceJson, RejectsEventsAfterDeparture) {
  expect_reject_json(
      json_trace(R"({"t": 0, "kind": "join", "node": 4, "pos": [0.5, 0.5]},
                    {"t": 1, "kind": "leave", "node": 4},
                    {"t": 2, "kind": "leave", "node": 4})"),
      "after it departed");
  expect_reject_json(
      json_trace(R"({"t": 0, "kind": "join", "node": 4, "pos": [0.5, 0.5]},
                    {"t": 1, "kind": "leave", "node": 4},
                    {"t": 2, "kind": "move", "node": 4, "pos": [1.5, 1.5]})"),
      "after it departed");
}

TEST(TraceJson, AcceptsBoundaryShapedValidTraces) {
  const auto accept = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_NO_THROW(static_cast<void>(io::read_trace_json(ss))) << text;
  };
  // Seed-instance nodes may leave or move without a prior join in the trace.
  accept(json_trace(R"({"t": 0, "kind": "move", "node": 0, "pos": [1.0, 1.0]},
                       {"t": 1, "kind": "leave", "node": 1})"));
  // Equal timestamps are monotone; coordinates may sit exactly on the side.
  accept(json_trace(R"({"t": 2, "kind": "join", "node": 9, "pos": [5.0, 0.0]},
                       {"t": 2, "kind": "join", "node": 10, "pos": [0.0, 5.0]})"));
  // Leave-then-rejoin of the same id is churn, not duplication.
  accept(json_trace(R"({"t": 0, "kind": "join", "node": 3, "pos": [0.5, 0.5]},
                       {"t": 1, "kind": "leave", "node": 3},
                       {"t": 2, "kind": "join", "node": 3, "pos": [0.5, 0.5]})"));
}

TEST(TraceBinary, RoundTripIsExact) {
  for (int dim : {2, 3}) {
    const dy::ChurnTrace trace = sample_trace(dim, 64);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    io::write_trace_binary(ss, trace);
    EXPECT_EQ(io::read_trace_binary(ss), trace) << "dim=" << dim;
  }
}

TEST(TraceBinary, RejectsBadMagicAndTruncation) {
  std::stringstream bad("LSINSTANCE####");
  EXPECT_THROW(static_cast<void>(io::read_trace_binary(bad)), std::runtime_error);

  const dy::ChurnTrace trace = sample_trace();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_trace_binary(ss, trace);
  const std::string full = ss.str();
  // Cut inside the magic, the dim, each header double, the count, the first
  // event, and one byte before the end: every prefix must fail cleanly.
  for (std::size_t cut : {std::size_t{4}, std::size_t{10}, std::size_t{15}, std::size_t{23},
                          std::size_t{31}, std::size_t{41}, full.size() / 2, full.size() - 1}) {
    ASSERT_LT(cut, full.size());
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(static_cast<void>(io::read_trace_binary(truncated)), std::runtime_error)
        << "cut=" << cut;
  }
}

TEST(TraceBinary, RejectsNonFiniteHeaderDoubles) {
  const dy::ChurnTrace trace = sample_trace();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_trace_binary(ss, trace);
  const std::string full = ss.str();
  // Layout: 8-byte magic, int32 dim, double alpha (offset 12), double side
  // (offset 20). take<double> happily returns NaN/inf — the validator must
  // not.
  const auto patched = [&](std::size_t off, double v) {
    std::string bytes = full;
    std::memcpy(&bytes[off], &v, sizeof v);
    return bytes;
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const std::string& bytes :
       {patched(12, nan), patched(12, inf), patched(12, -0.5), patched(20, nan), patched(20, inf),
        patched(20, -1.0)}) {
    std::stringstream in(bytes);
    EXPECT_THROW(static_cast<void>(io::read_trace_binary(in)), std::runtime_error);
  }
}

TEST(TraceBinary, RejectsSemanticallyInvalidEvents) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  dy::ChurnTrace base{2, 0.75, 5.0, {}};

  dy::ChurnTrace t = base;
  t.events = {make_event(dy::EventKind::kJoin, 1, nan, 0.5, 0.5)};
  expect_reject_binary(t, "non-finite timestamp");

  t = base;
  t.events = {make_event(dy::EventKind::kJoin, 1, 1.0, 0.5, 0.5),
              make_event(dy::EventKind::kJoin, 2, 0.5, 1.5, 1.5)};
  expect_reject_binary(t, "non-monotone timestamp");

  t = base;
  t.events = {make_event(dy::EventKind::kJoin, -2, 0.0, 0.5, 0.5)};
  expect_reject_binary(t, "negative node id");

  t = base;
  t.events = {make_event(dy::EventKind::kJoin, 1, 0.0, nan, 0.5)};
  expect_reject_binary(t, "out of range");

  t = base;
  t.events = {make_event(dy::EventKind::kMove, 1, 0.0, 0.5, 7.25)};
  expect_reject_binary(t, "out of range");

  t = base;
  t.events = {make_event(dy::EventKind::kJoin, 6, 0.0, 0.5, 0.5),
              make_event(dy::EventKind::kJoin, 6, 1.0, 1.5, 1.5)};
  expect_reject_binary(t, "duplicate join of node 6");

  t = base;
  t.events = {make_event(dy::EventKind::kJoin, 6, 0.0, 0.5, 0.5),
              make_event(dy::EventKind::kLeave, 6, 1.0, 0.0, 0.0),
              make_event(dy::EventKind::kMove, 6, 2.0, 1.5, 1.5)};
  expect_reject_binary(t, "after it departed");
}

TEST(TraceFiles, ExtensionPicksFormatAndLoadSniffs) {
  const dy::ChurnTrace trace = sample_trace();
  const auto dir = std::filesystem::temp_directory_path();
  const std::string json_path = (dir / "localspan_trace_test.json").string();
  const std::string bin_path = (dir / "localspan_trace_test.ctb").string();

  io::save_trace(json_path, trace);
  io::save_trace(bin_path, trace);

  // Binary artifact is the compact one; JSON is readable text.
  EXPECT_LT(std::filesystem::file_size(bin_path), std::filesystem::file_size(json_path));
  EXPECT_EQ(io::load_trace(json_path), trace);
  EXPECT_EQ(io::load_trace(bin_path), trace);

  std::remove(json_path.c_str());
  std::remove(bin_path.c_str());
  EXPECT_THROW(static_cast<void>(io::load_trace("/nonexistent/trace.json")), std::runtime_error);
}
