// Tests for churn-trace serialization: JSON and binary round trips, format
// sniffing, and malformed-input rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "dynamic/churn.hpp"
#include "io/trace_io.hpp"
#include "ubg/generator.hpp"

namespace dy = localspan::dynamic;
namespace io = localspan::io;
namespace ub = localspan::ubg;

namespace {

dy::ChurnTrace sample_trace(int dim = 2, int events = 32, std::uint64_t seed = 5) {
  ub::UbgConfig cfg;
  cfg.n = 48;
  cfg.dim = dim;
  cfg.alpha = 0.75;
  cfg.seed = seed;
  const ub::UbgInstance inst = ub::make_ubg(cfg);
  dy::PoissonChurnConfig pc;
  pc.events = events;
  pc.seed = seed;
  return dy::poisson_churn(inst, pc);
}

}  // namespace

TEST(TraceJson, RoundTripIsExact) {
  for (int dim : {2, 3}) {
    const dy::ChurnTrace trace = sample_trace(dim);
    std::stringstream ss;
    io::write_trace_json(ss, trace);
    const dy::ChurnTrace back = io::read_trace_json(ss);
    EXPECT_EQ(back, trace) << "dim=" << dim;  // bitwise doubles via %.17g
  }
}

TEST(TraceJson, EmptyTraceRoundTrips) {
  dy::ChurnTrace trace{2, 0.6, 4.5, {}};
  std::stringstream ss;
  io::write_trace_json(ss, trace);
  EXPECT_EQ(io::read_trace_json(ss), trace);
}

TEST(TraceJson, RejectsGarbage) {
  const auto reject = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW(static_cast<void>(io::read_trace_json(ss)), std::runtime_error) << text;
  };
  reject("");
  reject("not json at all");
  reject("[1, 2, 3]");                                  // wrong top-level type
  reject("{\"format\": \"other\", \"version\": 1}");    // wrong format tag
  reject(R"({"format": "localspan-churn-trace", "version": 99})");  // bad version
  reject(R"({"format": "localspan-churn-trace", "version": 1, "dim": 2,
             "alpha": 0.75, "side": 5.0, "events": [{"t": 0, "kind": "warp",
             "node": 1, "pos": [0, 0]}]})");            // unknown kind
  reject(R"({"format": "localspan-churn-trace", "version": 1, "dim": 2,
             "alpha": 0.75, "side": 5.0, "events": [{"t": 0, "kind": "join",
             "node": 1, "pos": [0.5]}]})");             // pos arity mismatch
  reject(R"({"format": "localspan-churn-trace", "version": 1, "dim": 2,
             "alpha": 0.75, "side": 5.0, "events": []} trailing)");
  // Number forms strtod would take but RFC 8259 forbids.
  for (const char* bad : {"0x10", "+1.5", ".5", "1.", "01", "1e", "nan", "inf"}) {
    reject(std::string(R"({"format": "localspan-churn-trace", "version": 1, "dim": 2,
             "alpha": 0.75, "side": )") +
           bad + ", \"events\": []}");
  }
}

TEST(TraceBinary, RoundTripIsExact) {
  for (int dim : {2, 3}) {
    const dy::ChurnTrace trace = sample_trace(dim, 64);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    io::write_trace_binary(ss, trace);
    EXPECT_EQ(io::read_trace_binary(ss), trace) << "dim=" << dim;
  }
}

TEST(TraceBinary, RejectsBadMagicAndTruncation) {
  std::stringstream bad("LSINSTANCE####");
  EXPECT_THROW(static_cast<void>(io::read_trace_binary(bad)), std::runtime_error);

  const dy::ChurnTrace trace = sample_trace();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_trace_binary(ss, trace);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(static_cast<void>(io::read_trace_binary(truncated)), std::runtime_error);
}

TEST(TraceFiles, ExtensionPicksFormatAndLoadSniffs) {
  const dy::ChurnTrace trace = sample_trace();
  const auto dir = std::filesystem::temp_directory_path();
  const std::string json_path = (dir / "localspan_trace_test.json").string();
  const std::string bin_path = (dir / "localspan_trace_test.ctb").string();

  io::save_trace(json_path, trace);
  io::save_trace(bin_path, trace);

  // Binary artifact is the compact one; JSON is readable text.
  EXPECT_LT(std::filesystem::file_size(bin_path), std::filesystem::file_size(json_path));
  EXPECT_EQ(io::load_trace(json_path), trace);
  EXPECT_EQ(io::load_trace(bin_path), trace);

  std::remove(json_path.c_str());
  std::remove(bin_path.c_str());
  EXPECT_THROW(static_cast<void>(io::load_trace("/nonexistent/trace.json")), std::runtime_error);
}
