// Tests for SEQ-GREEDY (§1.4): the three spanner properties on α-UBGs and
// complete graphs, plus the phase-0 clique helper (§2.1).
#include <gtest/gtest.h>

#include <random>

#include "core/greedy.hpp"
#include "graph/components.hpp"
#include "graph/dijkstra.hpp"
#include "graph/metrics.hpp"
#include "graph/mst.hpp"
#include "ubg/generator.hpp"

namespace core = localspan::core;
namespace gr = localspan::graph;
namespace ub = localspan::ubg;

namespace {

ub::UbgInstance small_instance(std::uint64_t seed, int n = 150, double alpha = 0.75) {
  ub::UbgConfig cfg;
  cfg.n = n;
  cfg.alpha = alpha;
  cfg.seed = seed;
  return ub::make_ubg(cfg);
}

}  // namespace

TEST(SeqGreedy, OutputIsSubgraph) {
  const auto inst = small_instance(1);
  const gr::Graph sp = core::seq_greedy(inst.g, 1.5);
  for (const gr::Edge& e : sp.edges()) {
    EXPECT_TRUE(inst.g.has_edge(e.u, e.v));
    EXPECT_DOUBLE_EQ(inst.g.edge_weight(e.u, e.v), e.w);
  }
}

class SeqGreedyStretch : public ::testing::TestWithParam<double> {};

TEST_P(SeqGreedyStretch, StretchBoundHolds) {
  const double t = GetParam();
  const auto inst = small_instance(7);
  const gr::Graph sp = core::seq_greedy(inst.g, t);
  EXPECT_LE(gr::max_edge_stretch(inst.g, sp), t + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(TSweep, SeqGreedyStretch, ::testing::Values(1.05, 1.1, 1.5, 2.0, 3.0));

TEST(SeqGreedy, SparsifiesDenseInput) {
  const auto inst = small_instance(3);
  const gr::Graph sp = core::seq_greedy(inst.g, 1.5);
  EXPECT_LT(sp.m(), inst.g.m());
  // Linear size: below a generous constant times n.
  EXPECT_LE(sp.m(), 12 * inst.g.n());
}

TEST(SeqGreedy, PreservesConnectivity) {
  const auto inst = small_instance(5);
  const gr::Graph sp = core::seq_greedy(inst.g, 2.0);
  EXPECT_EQ(gr::connected_components(inst.g).count, gr::connected_components(sp).count);
}

TEST(SeqGreedy, ContainsTheMsfForAnyT) {
  // Greedy always keeps an edge whose endpoints were previously disconnected,
  // and processes in weight order: the output contains an MSF.
  const auto inst = small_instance(11);
  const gr::Graph sp = core::seq_greedy(inst.g, 1.2);
  EXPECT_NEAR(gr::msf_weight(inst.g), gr::msf_weight(sp), 1e-9);
}

TEST(SeqGreedy, TEqualOneKeepsForestOnly) {
  // With t = 1 an edge is dropped only when an equally-short path exists;
  // in general position the output is exactly the graph minus nothing
  // shortcuttable — for a triangle with strict inequality all 3 survive.
  gr::Graph tri(3);
  tri.add_edge(0, 1, 1.0);
  tri.add_edge(1, 2, 1.0);
  tri.add_edge(0, 2, 1.5);
  const gr::Graph sp = core::seq_greedy(tri, 1.0);
  EXPECT_EQ(sp.m(), 3);
  // But with a generous t the long edge is shortcut by the two short ones.
  const gr::Graph sp2 = core::seq_greedy(tri, 1.4);
  EXPECT_EQ(sp2.m(), 2);
  EXPECT_FALSE(sp2.has_edge(0, 2));
}

TEST(SeqGreedy, RejectsBadT) {
  gr::Graph g(2);
  EXPECT_THROW(static_cast<void>(core::seq_greedy(g, 0.9)), std::invalid_argument);
}

TEST(SeqGreedy, DeterministicUnderTies) {
  gr::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 1.0);
  const gr::Graph a = core::seq_greedy(g, 2.0);
  const gr::Graph b = core::seq_greedy(g, 2.0);
  EXPECT_EQ(a, b);
}

TEST(SeqGreedyClique, SpansACliqueWithBoundedDegree) {
  // Points clustered in a tiny ball, as a phase-0 component would be.
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> coord(0.0, 0.002);
  std::vector<localspan::geom::Point> pts;
  for (int i = 0; i < 40; ++i) pts.push_back({coord(rng), coord(rng)});
  std::vector<int> members;
  for (int i = 0; i < 40; ++i) members.push_back(i);
  const auto weight = [&](int u, int v) {
    return std::max(1e-12, localspan::geom::distance(pts[static_cast<std::size_t>(u)],
                                                     pts[static_cast<std::size_t>(v)]));
  };
  const double t = 1.5;
  const auto edges = core::seq_greedy_clique(members, weight, t);
  gr::Graph sp(40);
  for (const gr::Edge& e : edges) sp.add_edge(e.u, e.v, e.w);
  // Spanner property over all clique pairs.
  for (int u = 0; u < 40; ++u) {
    for (int v = u + 1; v < 40; ++v) {
      EXPECT_LE(gr::sp_distance(sp, u, v), t * weight(u, v) + 1e-12);
    }
  }
  // Degree O(1): greedy spanners of 2-D point sets stay very sparse.
  EXPECT_LE(sp.max_degree(), 16);
  EXPECT_LT(static_cast<int>(edges.size()), 6 * 40);
}

TEST(SeqGreedyClique, GlobalIdsPreserved) {
  std::vector<int> members{10, 20, 30};
  const auto weight = [](int u, int v) { return static_cast<double>(u + v); };
  const auto edges = core::seq_greedy_clique(members, weight, 1.1);
  for (const gr::Edge& e : edges) {
    EXPECT_TRUE(e.u == 10 || e.u == 20 || e.u == 30);
    EXPECT_TRUE(e.v == 10 || e.v == 20 || e.v == 30);
    EXPECT_LT(e.u, e.v);
  }
  EXPECT_FALSE(edges.empty());
}

TEST(SeqGreedyClique, SingletonAndPair) {
  const auto weight = [](int, int) { return 1.0; };
  EXPECT_TRUE(core::seq_greedy_clique({5}, weight, 1.5).empty());
  const auto pair_edges = core::seq_greedy_clique({3, 9}, weight, 1.5);
  ASSERT_EQ(pair_edges.size(), 1u);
  EXPECT_EQ(pair_edges[0].u, 3);
  EXPECT_EQ(pair_edges[0].v, 9);
}
