// Unit tests for the geometry substrate: points, angles, θ derivation,
// Yao cones, and the spatial hash grid.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "geom/cones.hpp"
#include "geom/grid.hpp"
#include "geom/point.hpp"

namespace g = localspan::geom;

TEST(Point, ConstructionAndAccess) {
  g::Point p{1.0, 2.0, 3.0};
  EXPECT_EQ(p.dim(), 3);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 3.0);
  g::Point origin(4);
  EXPECT_EQ(origin.dim(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(origin[i], 0.0);
}

TEST(Point, RejectsBadDimensions) {
  EXPECT_THROW(g::Point(1), std::invalid_argument);
  EXPECT_THROW(g::Point(g::kMaxDim + 1), std::invalid_argument);
  EXPECT_THROW((g::Point{1.0}), std::invalid_argument);
}

TEST(Point, Equality) {
  EXPECT_EQ((g::Point{1.0, 2.0}), (g::Point{1.0, 2.0}));
  EXPECT_NE((g::Point{1.0, 2.0}), (g::Point{1.0, 2.1}));
  EXPECT_NE((g::Point{1.0, 2.0}), (g::Point{1.0, 2.0, 0.0}));
}

TEST(Distance, KnownValues) {
  EXPECT_DOUBLE_EQ(g::distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(g::sq_distance({0.0, 0.0}, {3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(g::distance({1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}), 0.0);
}

TEST(Distance, SymmetryAndTriangleInequality) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> coord(-5.0, 5.0);
  for (int trial = 0; trial < 200; ++trial) {
    g::Point a{coord(rng), coord(rng), coord(rng)};
    g::Point b{coord(rng), coord(rng), coord(rng)};
    g::Point c{coord(rng), coord(rng), coord(rng)};
    EXPECT_DOUBLE_EQ(g::distance(a, b), g::distance(b, a));
    EXPECT_LE(g::distance(a, c), g::distance(a, b) + g::distance(b, c) + 1e-12);
  }
}

TEST(Angle, RightAngle) {
  EXPECT_NEAR(g::angle_at({0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}), std::numbers::pi / 2, 1e-12);
}

TEST(Angle, CollinearAndOpposite) {
  EXPECT_NEAR(g::angle_at({0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(g::angle_at({0.0, 0.0}, {1.0, 0.0}, {-1.0, 0.0}), std::numbers::pi, 1e-12);
}

TEST(Angle, DegenerateThrows) {
  EXPECT_THROW(static_cast<void>(g::angle_at({0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0})),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(g::angle_at({0.0, 0.0}, {1.0, 0.0}, {0.0, 0.0})),
               std::invalid_argument);
}

TEST(Angle, InHigherDimensions) {
  // 60 degrees in 3-D.
  EXPECT_NEAR(g::angle_at({0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, {0.5, std::sqrt(3.0) / 2.0, 0.0}),
              std::numbers::pi / 3, 1e-12);
}

TEST(Theta, SatisfiesCzumajZhaoPrecondition) {
  for (double t : {1.05, 1.1, 1.25, 1.5, 2.0, 4.0}) {
    const double theta = g::max_theta_for_stretch(t);
    EXPECT_TRUE(g::theta_valid_for_stretch(theta, t)) << "t=" << t << " theta=" << theta;
    EXPECT_GT(theta, 0.0);
    EXPECT_LT(theta, std::numbers::pi / 4);
  }
}

TEST(Theta, MonotoneInT) {
  // Larger stretch budget allows a wider cone.
  EXPECT_LT(g::max_theta_for_stretch(1.1), g::max_theta_for_stretch(1.5));
  EXPECT_LT(g::max_theta_for_stretch(1.5), g::max_theta_for_stretch(3.0));
}

TEST(Theta, RejectsBadInput) {
  EXPECT_THROW(static_cast<void>(g::max_theta_for_stretch(1.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(g::max_theta_for_stretch(0.5)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(g::max_theta_for_stretch(2.0, 0.0)), std::invalid_argument);
}

TEST(Theta, ValidityCheckerRejectsOutOfRange) {
  EXPECT_FALSE(g::theta_valid_for_stretch(0.0, 2.0));
  EXPECT_FALSE(g::theta_valid_for_stretch(std::numbers::pi / 4, 2.0));
  EXPECT_FALSE(g::theta_valid_for_stretch(0.7, 1.05));  // too wide for small t
}

TEST(YaoCones, SectorAssignment) {
  g::YaoCones2D cones(4);
  g::Point o{0.0, 0.0};
  EXPECT_EQ(cones.sector_of(o, {1.0, 0.1}), 0);
  EXPECT_EQ(cones.sector_of(o, {0.1, 1.0}), 0);  // 84 degrees, still sector [0, 90)
  EXPECT_EQ(cones.sector_of(o, {-1.0, 0.1}), 1);
  EXPECT_EQ(cones.sector_of(o, {-0.1, -1.0}), 2);
  EXPECT_EQ(cones.sector_of(o, {1.0, -0.1}), 3);
}

TEST(YaoCones, EveryDirectionLandsInARange) {
  g::YaoCones2D cones(7);
  g::Point o{0.0, 0.0};
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> coord(-1.0, 1.0);
  for (int i = 0; i < 500; ++i) {
    const double x = coord(rng);
    const double y = coord(rng);
    if (x == 0.0 && y == 0.0) continue;
    const int s = cones.sector_of(o, {x, y});
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 7);
  }
}

TEST(YaoCones, RejectsDegenerate) {
  EXPECT_THROW(g::YaoCones2D(2), std::invalid_argument);
  g::YaoCones2D cones(6);
  EXPECT_THROW(static_cast<void>(cones.sector_of({1.0, 1.0}, {1.0, 1.0})), std::invalid_argument);
}

TEST(Grid, FindsExactlyTheCloseNeighbors) {
  std::vector<g::Point> pts;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> coord(0.0, 5.0);
  for (int i = 0; i < 300; ++i) pts.push_back({coord(rng), coord(rng)});
  const g::Grid grid(pts, 1.0);
  // Brute-force cross-check.
  auto got = grid.pairs_within(1.0);
  std::vector<std::pair<int, int>> want;
  for (int i = 0; i < 300; ++i) {
    for (int j = i + 1; j < 300; ++j) {
      if (g::distance(pts[static_cast<std::size_t>(i)], pts[static_cast<std::size_t>(j)]) <= 1.0) {
        want.emplace_back(i, j);
      }
    }
  }
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(Grid, WorksInThreeDimensions) {
  std::vector<g::Point> pts;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> coord(0.0, 3.0);
  for (int i = 0; i < 200; ++i) pts.push_back({coord(rng), coord(rng), coord(rng)});
  const g::Grid grid(pts, 1.0);
  auto got = grid.pairs_within(0.8);
  std::vector<std::pair<int, int>> want;
  for (int i = 0; i < 200; ++i) {
    for (int j = i + 1; j < 200; ++j) {
      if (g::distance(pts[static_cast<std::size_t>(i)], pts[static_cast<std::size_t>(j)]) <= 0.8) {
        want.emplace_back(i, j);
      }
    }
  }
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(Grid, RejectsBadQueries) {
  std::vector<g::Point> pts{{0.0, 0.0}, {1.0, 1.0}};
  const g::Grid grid(pts, 1.0);
  EXPECT_THROW(grid.for_neighbors_within(0, 2.0, [](int) {}), std::invalid_argument);
  EXPECT_THROW(g::Grid(pts, 0.0), std::invalid_argument);
  EXPECT_THROW(g::Grid({}, 1.0), std::invalid_argument);
}

TEST(Grid, NegativeCoordinatesSupported) {
  std::vector<g::Point> pts{{-0.5, -0.5}, {-0.4, -0.45}, {3.0, 3.0}};
  const g::Grid grid(pts, 1.0);
  int count = 0;
  grid.for_neighbors_within(0, 1.0, [&](int j) {
    EXPECT_EQ(j, 1);
    ++count;
  });
  EXPECT_EQ(count, 1);
}
