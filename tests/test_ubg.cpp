// Tests for the α-UBG model: gray-zone policies and instance generation.
#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "ubg/generator.hpp"
#include "ubg/policy.hpp"

namespace ub = localspan::ubg;
namespace gr = localspan::graph;

TEST(Policy, AlwaysAndNever) {
  const auto a = ub::always_connect();
  const auto n = ub::never_connect();
  EXPECT_TRUE(a->connect(1, 2, 0.9));
  EXPECT_FALSE(n->connect(1, 2, 0.9));
  EXPECT_STREQ(a->name(), "always");
  EXPECT_STREQ(n->name(), "never");
}

TEST(Policy, ProbabilisticIsDeterministicPerSeed) {
  const auto p1 = ub::probabilistic(0.5, 123);
  const auto p2 = ub::probabilistic(0.5, 123);
  const auto p3 = ub::probabilistic(0.5, 456);
  int diff = 0;
  for (int u = 0; u < 200; ++u) {
    EXPECT_EQ(p1->connect(u, u + 1, 0.9), p2->connect(u, u + 1, 0.9));
    if (p1->connect(u, u + 1, 0.9) != p3->connect(u, u + 1, 0.9)) ++diff;
  }
  EXPECT_GT(diff, 10);  // different seeds actually differ
}

TEST(Policy, ProbabilisticRespectsExtremes) {
  const auto p0 = ub::probabilistic(0.0, 9);
  const auto p1 = ub::probabilistic(1.0, 9);
  for (int u = 0; u < 100; ++u) {
    EXPECT_FALSE(p0->connect(u, u + 7, 0.8));
    EXPECT_TRUE(p1->connect(u, u + 7, 0.8));
  }
  EXPECT_THROW(ub::probabilistic(1.5, 0), std::invalid_argument);
  EXPECT_THROW(ub::probabilistic(-0.1, 0), std::invalid_argument);
}

TEST(Policy, ProbabilisticHitsRateApproximately) {
  const auto p = ub::probabilistic(0.3, 77);
  int yes = 0;
  const int trials = 5000;
  for (int u = 0; u < trials; ++u) {
    if (p->connect(u, u + 1, 0.9)) ++yes;
  }
  EXPECT_NEAR(static_cast<double>(yes) / trials, 0.3, 0.03);
}

TEST(Policy, Threshold) {
  const auto p = ub::threshold(0.85);
  EXPECT_TRUE(p->connect(0, 1, 0.85));
  EXPECT_FALSE(p->connect(0, 1, 0.86));
  EXPECT_THROW(ub::threshold(1.5), std::invalid_argument);
}

TEST(Generator, ValidatesConfig) {
  ub::UbgConfig cfg;
  cfg.n = 0;
  EXPECT_THROW(static_cast<void>(ub::make_ubg(cfg)), std::invalid_argument);
  cfg.n = 10;
  cfg.alpha = 0.0;
  EXPECT_THROW(static_cast<void>(ub::make_ubg(cfg)), std::invalid_argument);
  cfg.alpha = 1.2;
  EXPECT_THROW(static_cast<void>(ub::make_ubg(cfg)), std::invalid_argument);
  cfg.alpha = 0.5;
  cfg.dim = 1;
  EXPECT_THROW(static_cast<void>(ub::make_ubg(cfg)), std::invalid_argument);
}

TEST(Generator, ModelInvariantsHoldForEveryPolicy) {
  ub::UbgConfig cfg;
  cfg.n = 250;
  cfg.alpha = 0.6;
  cfg.seed = 31;
  for (const auto* which : {"always", "never", "prob", "thresh"}) {
    std::unique_ptr<ub::GrayZonePolicy> policy;
    if (std::string(which) == "always") policy = ub::always_connect();
    if (std::string(which) == "never") policy = ub::never_connect();
    if (std::string(which) == "prob") policy = ub::probabilistic(0.5, 5);
    if (std::string(which) == "thresh") policy = ub::threshold(0.8);
    const ub::UbgInstance inst = ub::make_ubg(cfg, *policy);
    EXPECT_TRUE(ub::is_valid_ubg(inst)) << which;
  }
}

TEST(Generator, AlwaysPolicyDominatesNever) {
  ub::UbgConfig cfg;
  cfg.n = 200;
  cfg.alpha = 0.5;
  cfg.seed = 3;
  const auto a = ub::make_ubg(cfg, *ub::always_connect());
  const auto nv = ub::make_ubg(cfg, *ub::never_connect());
  EXPECT_GT(a.g.m(), nv.g.m());
  // Same placement: every never-edge is an always-edge.
  for (const gr::Edge& e : nv.g.edges()) EXPECT_TRUE(a.g.has_edge(e.u, e.v));
}

TEST(Generator, DeterministicGivenSeed) {
  ub::UbgConfig cfg;
  cfg.n = 150;
  cfg.seed = 77;
  const auto i1 = ub::make_ubg(cfg);
  const auto i2 = ub::make_ubg(cfg);
  EXPECT_EQ(i1.g, i2.g);
  cfg.seed = 78;
  const auto i3 = ub::make_ubg(cfg);
  EXPECT_FALSE(i1.g == i3.g);
}

TEST(Generator, AutoSizingHitsTargetDegree) {
  ub::UbgConfig cfg;
  cfg.n = 800;
  cfg.alpha = 0.7;
  cfg.target_degree = 12.0;
  cfg.seed = 19;
  const auto inst = ub::make_ubg(cfg, *ub::never_connect());
  // Mean degree within a factor ~2 of target (edge effects shrink it).
  const double mean = 2.0 * inst.g.m() / static_cast<double>(inst.g.n());
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 24.0);
}

TEST(Generator, EdgeWeightsAreEuclidean) {
  ub::UbgConfig cfg;
  cfg.n = 100;
  cfg.seed = 8;
  const auto inst = ub::make_ubg(cfg);
  for (const gr::Edge& e : inst.g.edges()) {
    EXPECT_NEAR(e.w, inst.dist(e.u, e.v), 1e-9);
    EXPECT_LE(e.w, 1.0 + 1e-12);
  }
}

TEST(Generator, PlacementsProduceExpectedShapes) {
  ub::UbgConfig cfg;
  cfg.n = 300;
  cfg.seed = 13;
  cfg.placement = ub::Placement::kCorridor;
  const auto corridor = ub::make_ubg(cfg);
  // All points inside the strip of width 2*alpha.
  for (const auto& p : corridor.points) {
    EXPECT_LE(p[1], 2.0 * cfg.alpha + 1e-12);
    EXPECT_GE(p[1], -1e-12);
  }
  cfg.placement = ub::Placement::kClustered;
  const auto clustered = ub::make_ubg(cfg);
  EXPECT_TRUE(ub::is_valid_ubg(clustered));
}

TEST(Generator, HigherDimensions) {
  for (int d : {3, 4}) {
    ub::UbgConfig cfg;
    cfg.n = 150;
    cfg.dim = d;
    cfg.seed = 23;
    const auto inst = ub::make_ubg(cfg);
    EXPECT_TRUE(ub::is_valid_ubg(inst));
    EXPECT_EQ(inst.points.front().dim(), d);
    EXPECT_GT(inst.g.m(), 0);
  }
}

TEST(BallVolume, KnownValues) {
  EXPECT_NEAR(ub::ball_volume(2, 1.0), 3.14159265358979, 1e-9);
  EXPECT_NEAR(ub::ball_volume(3, 1.0), 4.18879020478639, 1e-9);
  EXPECT_NEAR(ub::ball_volume(2, 2.0), 4.0 * 3.14159265358979, 1e-9);
  EXPECT_THROW(static_cast<void>(ub::ball_volume(0, 1.0)), std::invalid_argument);
}
