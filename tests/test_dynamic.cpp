// Tests for the dynamic topology engine: churn trace generators, the
// incremental DynamicSpanner repair loop, and its invariant checker.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/params.hpp"
#include "core/verify.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/dynamic_spanner.hpp"
#include "graph/metrics.hpp"
#include "scenario_matrix.hpp"
#include "ubg/generator.hpp"

namespace co = localspan::core;
namespace dy = localspan::dynamic;
namespace gr = localspan::graph;
namespace ti = localspan::testinfra;
namespace ub = localspan::ubg;

namespace {

ub::UbgInstance small_instance(int n = 64, double alpha = 0.75, std::uint64_t seed = 3) {
  ub::UbgConfig cfg;
  cfg.n = n;
  cfg.alpha = alpha;
  cfg.seed = seed;
  return ub::make_ubg(cfg);
}

co::Params practical(const ub::UbgInstance& inst, double eps = 0.5) {
  return co::Params::practical_params(eps, inst.config.alpha);
}

}  // namespace

// ---------------------------------------------------------------------------
// Trace generators.
// ---------------------------------------------------------------------------

TEST(ChurnGenerators, PoissonIsDeterministicAndValid) {
  const ub::UbgInstance inst = small_instance();
  dy::PoissonChurnConfig cfg;
  cfg.events = 40;
  cfg.seed = 11;
  const dy::ChurnTrace a = dy::poisson_churn(inst, cfg);
  const dy::ChurnTrace b = dy::poisson_churn(inst, cfg);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.events.size(), 40u);
  EXPECT_EQ(dy::validate_trace(a, inst), "");
  cfg.seed = 12;
  EXPECT_FALSE(a == dy::poisson_churn(inst, cfg));
}

TEST(ChurnGenerators, PoissonReusesDepartedIds) {
  const ub::UbgInstance inst = small_instance(16);
  dy::PoissonChurnConfig cfg;
  cfg.events = 200;
  cfg.seed = 7;
  const dy::ChurnTrace trace = dy::poisson_churn(inst, cfg);
  EXPECT_EQ(dy::validate_trace(trace, inst), "");
  int max_id = 0;
  for (const dy::ChurnEvent& ev : trace.events) max_id = std::max(max_id, ev.node);
  // Id compaction: with 50/50 churn on 16 nodes the live count stays modest,
  // so id reuse must keep the slot space far below one-fresh-id-per-join.
  EXPECT_LT(max_id, 16 + 100);
}

TEST(ChurnGenerators, WaypointMovesStayInBoxAndRespectSpeed) {
  const ub::UbgInstance inst = small_instance();
  dy::WaypointConfig cfg;
  cfg.movers = 4;
  cfg.speed = 0.3;
  cfg.sample_dt = 0.5;
  cfg.duration = 4.0;
  cfg.seed = 5;
  const dy::ChurnTrace trace = dy::random_waypoint(inst, cfg);
  EXPECT_EQ(dy::validate_trace(trace, inst), "");
  EXPECT_EQ(trace.events.size(), 4u * 8u);  // movers * (duration / dt)
  std::map<int, localspan::geom::Point> last;
  for (const dy::ChurnEvent& ev : trace.events) {
    ASSERT_EQ(ev.kind, dy::EventKind::kMove);
    for (int k = 0; k < trace.dim; ++k) {
      EXPECT_GE(ev.pos[k], 0.0);
      EXPECT_LE(ev.pos[k], trace.side);
    }
    const auto it = last.find(ev.node);
    const localspan::geom::Point& from =
        it != last.end() ? it->second : inst.points[static_cast<std::size_t>(ev.node)];
    EXPECT_LE(localspan::geom::distance(from, ev.pos), cfg.speed * cfg.sample_dt + 1e-9);
    last.insert_or_assign(ev.node, ev.pos);
  }
}

TEST(ChurnGenerators, RegionalFailureLeavesThenRejoins) {
  const ub::UbgInstance inst = small_instance(128);
  dy::RegionalFailureConfig cfg;
  cfg.radius = 1.5;
  cfg.seed = 9;
  const dy::ChurnTrace trace = dy::regional_failure(inst, cfg);
  EXPECT_EQ(dy::validate_trace(trace, inst), "");
  ASSERT_FALSE(trace.events.empty());
  EXPECT_EQ(trace.events.size() % 2, 0u);  // every failed node rejoins
  const std::size_t half = trace.events.size() / 2;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(trace.events[i].kind,
              i < half ? dy::EventKind::kLeave : dy::EventKind::kJoin);
  }
  // Rejoin restores the original position.
  for (std::size_t i = half; i < trace.events.size(); ++i) {
    const dy::ChurnEvent& ev = trace.events[i];
    EXPECT_EQ(ev.pos, inst.points[static_cast<std::size_t>(ev.node)]);
  }
}

TEST(ChurnValidate, RejectsBadTraces) {
  const ub::UbgInstance inst = small_instance(8);
  dy::ChurnTrace trace{inst.config.dim, inst.config.alpha, inst.config.side, {}};
  trace.events.push_back({1.0, dy::EventKind::kLeave, 0, localspan::geom::Point(2)});
  trace.events.push_back({0.5, dy::EventKind::kJoin, 0, localspan::geom::Point(2)});
  EXPECT_NE(dy::validate_trace(trace, inst), "");  // time decreases

  trace.events.clear();
  trace.events.push_back({0.5, dy::EventKind::kJoin, 1, localspan::geom::Point(2)});
  EXPECT_NE(dy::validate_trace(trace, inst), "");  // join of a live node

  trace.events.clear();
  trace.events.push_back({0.5, dy::EventKind::kMove, 99, localspan::geom::Point(2)});
  EXPECT_NE(dy::validate_trace(trace, inst), "");  // move of an unknown node

  dy::ChurnTrace wrong_dim = trace;
  wrong_dim.dim = 3;
  wrong_dim.events.clear();
  EXPECT_NE(dy::validate_trace(wrong_dim, inst), "");

  dy::ChurnTrace wrong_side = trace;
  wrong_side.events.clear();
  wrong_side.side = inst.config.side * 2.0;
  EXPECT_NE(dy::validate_trace(wrong_side, inst), "");  // mismatched box
}

// ---------------------------------------------------------------------------
// DynamicSpanner event semantics.
// ---------------------------------------------------------------------------

TEST(DynamicSpanner, JoinLeaveMoveMaintainValidUbg) {
  const ub::UbgInstance seed_inst = small_instance(48);
  dy::DynamicSpanner engine(seed_inst, practical(seed_inst));
  EXPECT_EQ(engine.active_count(), 48);

  // Leave node 0: it must end up isolated and inactive.
  auto st = engine.apply({0.1, dy::EventKind::kLeave, 0, localspan::geom::Point(2)});
  EXPECT_EQ(st.kind, dy::EventKind::kLeave);
  EXPECT_FALSE(engine.is_active(0));
  EXPECT_EQ(engine.instance().g.degree(0), 0);
  EXPECT_EQ(engine.active_count(), 47);
  EXPECT_TRUE(ub::is_valid_ubg(engine.instance()));

  // Rejoin at the center of the box: picks up neighbors again.
  localspan::geom::Point center(2);
  center[0] = engine.instance().config.side / 2.0;
  center[1] = engine.instance().config.side / 2.0;
  st = engine.apply({0.2, dy::EventKind::kJoin, 0, center});
  EXPECT_TRUE(engine.is_active(0));
  EXPECT_GT(st.ball_size, 0);
  EXPECT_EQ(engine.active_count(), 48);
  EXPECT_TRUE(ub::is_valid_ubg(engine.instance()));

  // A join beyond the current capacity grows the slot space.
  st = engine.apply({0.3, dy::EventKind::kJoin, 60, center});
  EXPECT_EQ(engine.instance().g.n(), 61);
  EXPECT_EQ(engine.active_count(), 49);
  EXPECT_TRUE(engine.is_active(60));
  EXPECT_FALSE(engine.is_active(55));  // intermediate slots stay dead
  EXPECT_TRUE(ub::is_valid_ubg(engine.instance()));

  // Move node 60 to a corner.
  localspan::geom::Point corner(2);
  st = engine.apply({0.4, dy::EventKind::kMove, 60, corner});
  EXPECT_EQ(engine.instance().points[60], corner);
  EXPECT_TRUE(ub::is_valid_ubg(engine.instance()));

  // Spanner stayed a certified t-spanner throughout (final audit).
  const co::VerificationReport rep =
      co::verify_spanner(engine.instance(), engine.spanner(), engine.params().t);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(DynamicSpanner, RejectsInvalidEvents) {
  const ub::UbgInstance seed_inst = small_instance(16);
  dy::DynamicSpanner engine(seed_inst, practical(seed_inst));
  const localspan::geom::Point p2(2);
  // Join of a live node / leave of a dead one / move of a dead one.
  EXPECT_THROW(engine.apply({0.0, dy::EventKind::kJoin, 3, p2}), std::invalid_argument);
  EXPECT_THROW(engine.apply({0.0, dy::EventKind::kLeave, 99, p2}), std::invalid_argument);
  EXPECT_THROW(engine.apply({0.0, dy::EventKind::kMove, 99, p2}), std::invalid_argument);
  // Dimension mismatch and out-of-quadrant positions.
  EXPECT_THROW(engine.apply({0.0, dy::EventKind::kJoin, 20, localspan::geom::Point(3)}),
               std::invalid_argument);
  localspan::geom::Point neg(2);
  neg[0] = -1.0;
  EXPECT_THROW(engine.apply({0.0, dy::EventKind::kMove, 3, neg}), std::invalid_argument);
  // A failed event must not have mutated the topology.
  EXPECT_EQ(engine.active_count(), 16);
  EXPECT_TRUE(ub::is_valid_ubg(engine.instance()));
}

TEST(DynamicSpanner, TraceHeaderMismatchThrows) {
  const ub::UbgInstance seed_inst = small_instance(16);
  dy::DynamicSpanner engine(seed_inst, practical(seed_inst));
  dy::ChurnTrace trace{3, seed_inst.config.alpha, seed_inst.config.side, {}};
  EXPECT_THROW(engine.apply_all(trace), std::invalid_argument);
  trace.dim = 2;
  trace.alpha = 0.5;
  EXPECT_THROW(engine.apply_all(trace), std::invalid_argument);
}

TEST(DynamicSpanner, FallbackPathTriggersOnImpossibleCaps) {
  const ub::UbgInstance seed_inst = small_instance(48);
  dy::DynamicOptions opts;
  opts.caps.max_degree = 1;  // unsatisfiable: every repair flunks certification
  dy::DynamicSpanner engine(seed_inst, practical(seed_inst), opts);
  const dy::ChurnTrace trace = dy::poisson_churn(seed_inst, {8, 4.0, 0.5, 21});
  bool fell_back = false;
  for (const dy::RepairStats& st : engine.apply_all(trace)) {
    if (st.check_ran) {
      EXPECT_FALSE(st.check_passed);
      EXPECT_TRUE(st.fell_back);
      fell_back = true;
    }
  }
  EXPECT_TRUE(fell_back);
  // Even while flunking the artificial cap, stretch stays certified because
  // every event fell back to the static pipeline.
  const co::VerificationReport rep =
      co::verify_spanner(engine.instance(), engine.spanner(), engine.params().t);
  EXPECT_TRUE(rep.stretch_ok) << rep.summary();
}

TEST(DynamicSpanner, TinyBallOverrideStillEndsCertified) {
  // Shrinking the dirty ball below the provable radius may break witnesses,
  // but the checker + fallback must keep the standing spanner certified.
  const ub::UbgInstance seed_inst = small_instance(64);
  dy::DynamicOptions opts;
  opts.ball_radius_override = 0.5;
  dy::DynamicSpanner engine(seed_inst, practical(seed_inst), opts);
  EXPECT_LT(engine.ball_radius(), engine.core_radius() + engine.params().t);
  const dy::ChurnTrace trace = dy::poisson_churn(seed_inst, {24, 4.0, 0.5, 31});
  engine.apply_all(trace);
  const co::VerificationReport rep =
      co::verify_spanner(engine.instance(), engine.spanner(), engine.params().t);
  EXPECT_TRUE(rep.stretch_ok) << rep.summary();
  EXPECT_TRUE(rep.is_subgraph) << rep.summary();
  EXPECT_TRUE(rep.connectivity_ok) << rep.summary();
}

TEST(DynamicSpanner, BaselineFullRecomputeMatchesStaticPipeline) {
  const ub::UbgInstance seed_inst = small_instance(48);
  dy::DynamicOptions opts;
  opts.always_full_recompute = true;
  opts.check = dy::CheckLevel::kOff;
  dy::DynamicSpanner engine(seed_inst, practical(seed_inst), opts);
  const dy::ChurnTrace trace = dy::poisson_churn(seed_inst, {12, 4.0, 0.5, 17});
  engine.apply_all(trace);
  // The standing spanner must be exactly what the static pipeline computes
  // on the final topology.
  const gr::Graph fresh = co::relaxed_greedy(engine.instance(), engine.params()).spanner;
  EXPECT_EQ(engine.spanner(), fresh);
}

TEST(DynamicSpanner, GridDiscoveryMatchesLinearScan) {
  // The maintained spatial hash must be a pure optimization: the grid and
  // the Ω(n) all-slot scan discover identical neighbor sets, so the UBG and
  // the repaired spanner come out bit-identical over a whole mixed trace.
  const ub::UbgInstance seed_inst = small_instance(72);
  const dy::ChurnTrace trace = dy::poisson_churn(seed_inst, {48, 4.0, 0.5, 23});
  dy::DynamicSpanner hashed(seed_inst, practical(seed_inst));
  dy::DynamicOptions scan_opts;
  scan_opts.linear_scan_discovery = true;
  dy::DynamicSpanner scanned(seed_inst, practical(seed_inst), scan_opts);
  for (const dy::ChurnEvent& ev : trace.events) {
    hashed.apply(ev);
    scanned.apply(ev);
    ASSERT_EQ(hashed.instance().g, scanned.instance().g) << "UBG diverged at t=" << ev.time;
  }
  EXPECT_EQ(hashed.spanner(), scanned.spanner());
  EXPECT_EQ(hashed.active_count(), scanned.active_count());
}

TEST(DynamicSpanner, GridDiscoveryHonorsConnectRadius) {
  // A shrunk connect radius must bound discovered edge lengths identically
  // through the spatial-hash path.
  const ub::UbgInstance seed_inst = small_instance(48);
  dy::DynamicOptions opts;
  opts.connect_radius = 0.8;
  dy::DynamicSpanner engine(seed_inst, practical(seed_inst), opts);
  const dy::ChurnTrace trace = dy::poisson_churn(seed_inst, {24, 4.0, 0.5, 31});
  engine.apply_all(trace);
  for (const gr::Edge& e : engine.instance().g.edges()) {
    // Pre-churn gray-zone edges may span up to 1; edges (re)discovered at
    // event time obey the engine's deterministic rule. Either way nothing
    // exceeds the UBG ceiling.
    EXPECT_LE(e.w, 1.0 + 1e-9);
  }
  EXPECT_TRUE(engine.certify({}));
}

TEST(DynamicSpanner, RadiiFollowTheLocalityBound) {
  const ub::UbgInstance seed_inst = small_instance(32);
  const co::Params params = practical(seed_inst);
  dy::DynamicSpanner engine(seed_inst, params);
  // wmax = 1 (identity transform): K = t+1, R = K + t.
  EXPECT_NEAR(engine.core_radius(), params.t + 1.0, 1e-12);
  EXPECT_NEAR(engine.ball_radius(), 2.0 * params.t + 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// The churn scenario matrix: incremental repair stays certified on every
// trace, matching the full-recompute bound (stretch <= t).
// ---------------------------------------------------------------------------

class DynamicChurnMatrix : public ::testing::TestWithParam<ti::ChurnScenario> {};

TEST_P(DynamicChurnMatrix, IncrementalRepairStaysCertified) {
  const ti::ChurnScenario& sc = GetParam();
  const ub::UbgInstance inst = sc.base.make();
  const dy::ChurnTrace trace = sc.make_trace(inst);
  ASSERT_EQ(dy::validate_trace(trace, inst), "");

  const co::Params params = practical(inst);
  dy::DynamicSpanner engine(inst, params);

  int fallbacks = 0;
  std::size_t applied = 0;
  for (const dy::ChurnEvent& ev : trace.events) {
    const dy::RepairStats st = engine.apply(ev);
    if (st.fell_back) ++fallbacks;
    ++applied;
    // Periodic deep audit: model validity + certified stretch.
    if (applied % 16 == 0) {
      ASSERT_TRUE(ub::is_valid_ubg(engine.instance())) << "event " << applied;
      const co::VerificationReport rep =
          co::verify_spanner(engine.instance(), engine.spanner(), params.t);
      ASSERT_TRUE(rep.stretch_ok) << "event " << applied << ": " << rep.summary();
      ASSERT_TRUE(rep.is_subgraph && rep.weights_match && rep.connectivity_ok)
          << "event " << applied << ": " << rep.summary();
    }
  }

  // Final audit: the incremental spanner meets the same bound the
  // full-recompute spanner is certified against.
  const co::VerificationReport incremental =
      co::verify_spanner(engine.instance(), engine.spanner(), params.t);
  EXPECT_TRUE(incremental.stretch_ok) << incremental.summary();
  EXPECT_TRUE(incremental.is_subgraph && incremental.weights_match &&
              incremental.connectivity_ok)
      << incremental.summary();

  const gr::Graph full = co::relaxed_greedy(engine.instance(), params).spanner;
  const co::VerificationReport recomputed =
      co::verify_spanner(engine.instance(), full, params.t);
  EXPECT_TRUE(recomputed.stretch_ok) << recomputed.summary();
  EXPECT_LE(incremental.measured_stretch, params.t * (1.0 + 1e-9));
  EXPECT_LE(recomputed.measured_stretch, params.t * (1.0 + 1e-9));

  // With the provable radius the per-event checker should never have to
  // bail out to a full recompute.
  EXPECT_EQ(fallbacks, 0);
}

INSTANTIATE_TEST_SUITE_P(Churn, DynamicChurnMatrix,
                         ::testing::ValuesIn(localspan::testinfra::churn_matrix()),
                         ti::ChurnScenarioName());
