# Registry-driven CLI smoke, run as a CTest script:
#   cmake -DCLI=<path> -DWORK_DIR=<dir> -P cli_algo_smoke.cmake
#
# Enumerates the algorithm registry via `span --algo list` and runs
# `span --algo <name>` for every registered algorithm on a small closed
# (always-connect) instance — the CLI checks each build's declared
# guarantees, so this sweep certifies that every registry entry builds AND
# honors its self-description end to end. Runs on every CI matrix leg.

if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<localspan_cli> -DWORK_DIR=<dir> -P cli_algo_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_cli expect_rc out_var)
  execute_process(
    COMMAND "${CLI}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL expect_rc)
    message(FATAL_ERROR "localspan_cli ${ARGN} exited ${rc} (expected ${expect_rc})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_cli(0 gen_out gen --n 48 --alpha 0.75 --dim 2 --seed 11 --out algos.lsi)

# Enumerate the registry. Algorithm rows are "  <name> <summary>".
run_cli(0 list_out span --algo list)
string(REPLACE "\n" ";" list_lines "${list_out}")
set(algos "")
foreach(line IN LISTS list_lines)
  if(line MATCHES "^  ([a-z][a-z0-9-]*) ")
    list(APPEND algos "${CMAKE_MATCH_1}")
  endif()
endforeach()
list(LENGTH algos n_algos)
if(n_algos LESS 9)
  message(FATAL_ERROR "--algo list enumerated only ${n_algos} algorithms:\n${list_out}")
endif()

# Build through every registered algorithm; the CLI exits nonzero if a
# build violates its declared guarantees.
foreach(algo IN LISTS algos)
  run_cli(0 span_out span --in algos.lsi --eps 0.5 --algo "${algo}")
  if(NOT span_out MATCHES "spanner: [0-9]+ -> [0-9]+ edges")
    message(FATAL_ERROR "span --algo ${algo} output shape mismatch:\n${span_out}")
  endif()
  if(NOT span_out MATCHES "declared: ")
    message(FATAL_ERROR "span --algo ${algo} did not report declared guarantees:\n${span_out}")
  endif()
endforeach()

message(STATUS "cli_algo_smoke: ${n_algos} algorithms built and honored their declarations (${algos})")
