/// Tests for the deterministic parallel runtime (runtime/parallel.hpp) and
/// the bit-identical-at-every-thread-count contract of the retrofitted hot
/// loops: ThreadPool/WorkerPool semantics, unit-level equivalence of the
/// parallelized passes (covers, cluster graphs, metrics, fault-tolerant
/// greedy), the registry-level determinism sweep for every algorithm that
/// declares a `threads` option, dynamic-engine determinism under churn, and
/// the counting-allocator steady-state proof re-run at threads=4.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "api/spanner_algorithm.hpp"
#include "cluster/cluster_graph.hpp"
#include "cluster/cover.hpp"
#include "core/params.hpp"
#include "core/relaxed_greedy.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/dynamic_spanner.hpp"
#include "ext/fault_tolerant.hpp"
#include "graph/metrics.hpp"
#include "graph/mst.hpp"
#include "graph/sp_workspace.hpp"
#include "mis/luby.hpp"
#include "runtime/parallel.hpp"
#include "scenario_matrix.hpp"

namespace rt = localspan::runtime;
namespace gr = localspan::graph;
namespace cl = localspan::cluster;
using localspan::testinfra::Scenario;
using localspan::testinfra::ScenarioName;

// ---------------------------------------------------------------------------
// Counting allocator: every operator-new in this binary bumps the counter,
// so windows around warmed-up hot paths measure their true allocation count.
// ---------------------------------------------------------------------------
namespace {
std::atomic<long long> g_allocs{0};
}  // namespace

// The replacement operator new allocates with std::malloc, so operator
// delete frees with std::free — GCC's new/delete-pair analysis cannot see
// through the replacement and flags the (correct) pairing.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow variants must be replaced too: std::stable_sort's temporary
// buffer allocates through them, and a half-replaced set trips ASan's
// alloc-dealloc-mismatch check (default operator new vs our free).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

/// The thread counts the determinism suite sweeps: serial, two workers, and
/// whatever the hardware reports (deduplicated; on a 1-core machine this
/// still exercises the pool dispatch path at 2).
std::vector<int> determinism_thread_counts() {
  std::vector<int> counts{1, 2, rt::hardware_threads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

void expect_same_cover(const cl::ClusterCover& a, const cl::ClusterCover& b) {
  EXPECT_EQ(a.centers, b.centers);
  EXPECT_EQ(a.center_of, b.center_of);
  ASSERT_EQ(a.dist_to_center.size(), b.dist_to_center.size());
  for (std::size_t i = 0; i < a.dist_to_center.size(); ++i) {
    EXPECT_EQ(a.dist_to_center[i], b.dist_to_center[i]) << "vertex " << i;  // bitwise
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ThreadPool / WorkerPool semantics
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 7}) {
    rt::ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.for_each(0, 257, [&](int worker, int i) {
      ASSERT_GE(worker, 0);
      ASSERT_LT(worker, threads);
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, StaticChunkingIsContiguousPerWorker) {
  rt::ThreadPool pool(4);
  std::vector<int> owner(100, -1);
  pool.for_each(0, 100, [&](int worker, int i) { owner[static_cast<std::size_t>(i)] = worker; });
  // Worker ids must be non-decreasing over the index range (contiguous
  // chunks in worker order) and all four workers must own a chunk.
  EXPECT_TRUE(std::is_sorted(owner.begin(), owner.end()));
  EXPECT_EQ(owner.front(), 0);
  EXPECT_EQ(owner.back(), 3);
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  rt::ThreadPool pool(3);
  int calls = 0;
  pool.for_each(5, 5, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> acalls{0};
  pool.for_each(7, 8, [&](int, int i) {
    EXPECT_EQ(i, 7);
    acalls.fetch_add(1);
  });
  EXPECT_EQ(acalls.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  rt::ThreadPool pool(3);
  EXPECT_THROW(pool.for_each(0, 64,
                             [&](int, int i) {
                               if (i == 17) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  // The pool survives a throwing dispatch.
  std::atomic<int> count{0};
  pool.for_each(0, 8, [&](int, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, RejectsNonPositiveThreadCounts) {
  EXPECT_THROW(rt::ThreadPool(0), std::invalid_argument);
  EXPECT_THROW(rt::ThreadPool(-3), std::invalid_argument);
}

TEST(ThreadPool, ResolveThreadsHonorsRequestAndDefault) {
  EXPECT_EQ(rt::resolve_threads(5), 5);
  EXPECT_EQ(rt::resolve_threads(1), 1);
  // 0 and negatives defer to the env default (1 in the test environment
  // unless LOCALSPAN_THREADS is exported, which the suite does not do).
  EXPECT_EQ(rt::resolve_threads(0), rt::default_threads());
  EXPECT_EQ(rt::resolve_threads(-4), rt::default_threads());
  EXPECT_GE(rt::hardware_threads(), 1);
}

TEST(WorkerPool, HandsEachWorkerItsOwnWorkspace) {
  rt::WorkerPool pool(3);
  // Distinct objects per worker slot.
  EXPECT_NE(&pool.workspace(0), &pool.workspace(1));
  EXPECT_NE(&pool.workspace(1), &pool.workspace(2));
  const gr::Graph g = [] {
    gr::Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(2, 3, 1.0);
    return g;
  }();
  std::vector<double> dist(4, -1.0);
  pool.for_each(0, 4, [&](int worker, int i) {
    dist[static_cast<std::size_t>(i)] = pool.workspace(worker).distance(g, 0, i);
  });
  EXPECT_EQ(dist, (std::vector<double>{0.0, 1.0, 2.0, 3.0}));
}

TEST(ThreadPool, WarmForEachAllocatesNothing) {
  rt::ThreadPool pool(4);
  std::atomic<long long> sink{0};
  const auto body = [&](int, int i) { sink.fetch_add(i, std::memory_order_relaxed); };
  pool.for_each(0, 1024, body);  // warm-up
  const long long before = g_allocs.load();
  pool.for_each(0, 1024, body);
  EXPECT_EQ(g_allocs.load() - before, 0) << "warmed parallel_for dispatch allocated";
}

// ---------------------------------------------------------------------------
// Unit-level equivalence of the retrofitted passes
// ---------------------------------------------------------------------------

class ParallelMatrixTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ParallelMatrixTest, CoverMatchesSerialBitForBit) {
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const gr::CsrView csr(inst.g);
  gr::DijkstraWorkspace ws;
  for (const double radius : {0.15, 0.5, 2.0}) {
    const cl::ClusterCover serial = cl::sequential_cover(csr, radius, ws);
    for (int threads : determinism_thread_counts()) {
      if (threads == 1) continue;
      rt::WorkerPool pool(threads);
      const cl::ClusterCover parallel = cl::sequential_cover(csr, radius, ws, &pool);
      expect_same_cover(serial, parallel);
    }
  }
}

TEST_P(ParallelMatrixTest, ClusterGraphMatchesSerialBitForBit) {
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const gr::CsrView csr(inst.g);
  gr::DijkstraWorkspace ws;
  const double radius = 0.3;
  const double w_prev = 0.25;
  const cl::ClusterCover cover = cl::sequential_cover(csr, radius, ws);
  const cl::ClusterGraph serial = cl::build_cluster_graph(csr, cover, w_prev, ws);
  for (int threads : determinism_thread_counts()) {
    if (threads == 1) continue;
    rt::WorkerPool pool(threads);
    const cl::ClusterGraph parallel = cl::build_cluster_graph(csr, cover, w_prev, ws, &pool);
    EXPECT_EQ(serial.h, parallel.h);
    EXPECT_EQ(serial.intra_edges, parallel.intra_edges);
    EXPECT_EQ(serial.inter_edges, parallel.inter_edges);
    EXPECT_EQ(serial.max_inter_degree, parallel.max_inter_degree);
    EXPECT_EQ(serial.max_inter_weight, parallel.max_inter_weight);  // bitwise
  }
}

TEST_P(ParallelMatrixTest, StretchMetricsMatchSerialBitForBit) {
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const gr::Graph mst = localspan::graph::minimum_spanning_forest(inst.g);
  const double serial_edge = gr::max_edge_stretch(inst.g, mst, 64.0, 1);
  const double serial_pair = gr::sampled_pair_stretch(inst.g, mst, 200, 11, 1);
  for (int threads : {2, 4}) {
    EXPECT_EQ(serial_edge, gr::max_edge_stretch(inst.g, mst, 64.0, threads));
    EXPECT_EQ(serial_pair, gr::sampled_pair_stretch(inst.g, mst, 200, 11, threads));
  }
  // A caller-owned pool (the repeated-measurement form) agrees too.
  rt::WorkerPool pool(3);
  EXPECT_EQ(serial_edge, gr::max_edge_stretch(inst.g, mst, 64.0, 0, &pool));
  EXPECT_EQ(serial_pair, gr::sampled_pair_stretch(inst.g, mst, 200, 11, 0, &pool));
}

TEST_P(ParallelMatrixTest, LubyMisMatchesSyncSimulatorAtEveryThreadCount) {
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const std::uint64_t seed = 41;
  localspan::mis::LubyStats serial_stats;
  const std::vector<int> serial = localspan::mis::luby_mis(inst.g, seed, &serial_stats);
  // The pool-parallel harvester must reproduce both the set and the
  // simulator's analytic round/message accounting, at every thread count
  // including the pool-free serial fallback.
  localspan::mis::LubyStats fallback_stats;
  EXPECT_EQ(serial, localspan::mis::luby_mis_parallel(inst.g, seed, &fallback_stats));
  EXPECT_EQ(serial_stats.iterations, fallback_stats.iterations);
  EXPECT_EQ(serial_stats.network_rounds, fallback_stats.network_rounds);
  EXPECT_EQ(serial_stats.messages, fallback_stats.messages);
  for (int threads : {2, 4}) {
    rt::WorkerPool pool(threads);
    localspan::mis::LubyStats stats;
    EXPECT_EQ(serial, localspan::mis::luby_mis_parallel(inst.g, seed, &stats, &pool))
        << threads << " threads";
    EXPECT_EQ(serial_stats.iterations, stats.iterations);
    EXPECT_EQ(serial_stats.network_rounds, stats.network_rounds);
    EXPECT_EQ(serial_stats.messages, stats.messages);
  }
}

TEST_P(ParallelMatrixTest, BinGroupingMatchesSerialBitForBit) {
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const std::vector<gr::Edge> edges = inst.g.edges();
  std::vector<double> lens;
  lens.reserve(edges.size());
  for (const gr::Edge& e : edges) lens.push_back(e.w);
  const localspan::core::BinSchema schema(inst.config.alpha, 2.0, inst.g.n());
  const auto serial = localspan::core::group_edges_by_bin(edges, schema, lens);
  for (int threads : {2, 4}) {
    rt::WorkerPool pool(threads);
    const auto parallel = localspan::core::group_edges_by_bin(edges, schema, lens, &pool);
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    for (std::size_t b = 0; b < serial.size(); ++b) {
      ASSERT_EQ(serial[b].size(), parallel[b].size()) << "bin " << b;
      for (std::size_t k = 0; k < serial[b].size(); ++k) {
        EXPECT_EQ(serial[b][k].u, parallel[b][k].u);
        EXPECT_EQ(serial[b][k].v, parallel[b][k].v);
        EXPECT_EQ(serial[b][k].w, parallel[b][k].w);  // bitwise
      }
    }
  }
}

TEST_P(ParallelMatrixTest, QuerySelectionMatchesSerialBitForBit) {
  namespace cd = localspan::core::detail;
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const gr::CsrView csr(inst.g);
  gr::DijkstraWorkspace ws;
  const cl::ClusterCover cover = cl::sequential_cover(csr, 0.3, ws);
  std::vector<cd::PhaseEdge> candidates;
  for (const gr::Edge& e : inst.g.edges()) candidates.push_back({e.u, e.v, e.w, e.w});
  int serial_max = 0;
  const std::vector<cd::PhaseEdge> serial =
      cd::select_query_edges(candidates, cover, 1.5, &serial_max);
  for (int threads : {2, 4}) {
    rt::WorkerPool pool(threads);
    int parallel_max = 0;
    const std::vector<cd::PhaseEdge> parallel =
        cd::select_query_edges(candidates, cover, 1.5, &parallel_max, &pool);
    EXPECT_EQ(serial_max, parallel_max) << threads << " threads";
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    for (std::size_t k = 0; k < serial.size(); ++k) {
      EXPECT_EQ(serial[k].u, parallel[k].u);
      EXPECT_EQ(serial[k].v, parallel[k].v);
      EXPECT_EQ(serial[k].len, parallel[k].len);  // bitwise
      EXPECT_EQ(serial[k].w, parallel[k].w);      // bitwise
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ParallelMatrixTest,
                         ::testing::ValuesIn(localspan::testinfra::standard_matrix()),
                         ScenarioName());

TEST(ParallelFaultTolerant, MatchesSerialAcrossVariantsAndThreadCounts) {
  const localspan::ubg::UbgInstance inst =
      Scenario{2, localspan::ubg::Placement::kUniform, 0.75, 96, 5}.make();
  for (int k : {0, 1, 2}) {
    const gr::Graph edge_serial = localspan::ext::fault_tolerant_greedy(inst.g, 1.5, k, 1);
    const gr::Graph vert_serial = localspan::ext::fault_tolerant_greedy_vertex(inst.g, 1.5, k, 1);
    for (int threads : {2, 3, 5}) {
      EXPECT_EQ(edge_serial, localspan::ext::fault_tolerant_greedy(inst.g, 1.5, k, threads));
      EXPECT_EQ(vert_serial,
                localspan::ext::fault_tolerant_greedy_vertex(inst.g, 1.5, k, threads));
    }
  }
}

// ---------------------------------------------------------------------------
// Registry-level determinism: every algorithm that declares a `threads`
// option must build a bit-identical topology (and metrics) at threads
// 1 / 2 / hardware across the standard scenario matrix.
// ---------------------------------------------------------------------------

namespace {

std::vector<std::string> threaded_algorithms() {
  std::vector<std::string> out;
  for (const std::string& name : localspan::api::registry().names()) {
    const localspan::api::AlgorithmInfo& info = localspan::api::registry().at(name).info();
    for (const localspan::api::OptionSpec& spec : info.options) {
      if (spec.key == "threads") {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

}  // namespace

TEST(ParallelRegistry, ThreadsOptionIsDeclaredByParallelAlgorithms) {
  const std::vector<std::string> names = threaded_algorithms();
  // The adapters with parallel construction paths; update when one gains one.
  EXPECT_EQ(names, (std::vector<std::string>{"energy", "ft-edge", "ft-vertex", "relaxed",
                                             "relaxed-dist"}));
}

class ParallelRegistryMatrixTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ParallelRegistryMatrixTest, BuildsAreBitIdenticalAcrossThreadCounts) {
  const localspan::ubg::UbgInstance inst = GetParam().make();
  const localspan::core::Params params =
      localspan::core::Params::practical_params(0.5, inst.config.alpha);
  for (const std::string& name : threaded_algorithms()) {
    localspan::api::Options serial_opts;
    serial_opts.set("threads", "1");
    const localspan::api::BuildResult serial = localspan::api::registry().build(
        name, localspan::api::BuildRequest{inst, params, serial_opts});
    for (int threads : determinism_thread_counts()) {
      if (threads == 1) continue;
      localspan::api::Options opts;
      opts.set("threads", std::to_string(threads));
      const localspan::api::BuildResult parallel = localspan::api::registry().build(
          name, localspan::api::BuildRequest{inst, params, opts});
      EXPECT_EQ(serial.spanner, parallel.spanner) << name << " @ " << threads << " threads";
      EXPECT_EQ(serial.metrics.edges, parallel.metrics.edges) << name;
      EXPECT_EQ(serial.metrics.max_degree, parallel.metrics.max_degree) << name;
      EXPECT_EQ(serial.metrics.stretch, parallel.metrics.stretch) << name;      // bitwise
      EXPECT_EQ(serial.metrics.lightness, parallel.metrics.lightness) << name;  // bitwise
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ParallelRegistryMatrixTest,
                         ::testing::ValuesIn(localspan::testinfra::standard_matrix()),
                         ScenarioName());

// ---------------------------------------------------------------------------
// Dynamic engine determinism under churn + the threads=4 allocation proof
// ---------------------------------------------------------------------------

TEST(ParallelDynamic, ChurnMaintenanceIsBitIdenticalAcrossThreadCounts) {
  const localspan::ubg::UbgInstance inst =
      Scenario{2, localspan::ubg::Placement::kUniform, 0.75, 96, 3}.make();
  const localspan::core::Params params = localspan::core::Params::practical_params(0.5, 0.75);
  localspan::dynamic::PoissonChurnConfig cfg;
  cfg.events = 24;
  cfg.seed = 3;
  const localspan::dynamic::ChurnTrace trace = localspan::dynamic::poisson_churn(inst, cfg);

  localspan::dynamic::DynamicOptions serial_opts;
  serial_opts.threads = 1;
  localspan::dynamic::DynamicSpanner serial(inst, params, serial_opts);

  localspan::dynamic::DynamicOptions par_opts;
  par_opts.threads = 4;
  localspan::dynamic::DynamicSpanner parallel(inst, params, par_opts);

  EXPECT_EQ(serial.spanner(), parallel.spanner());
  for (const localspan::dynamic::ChurnEvent& ev : trace.events) {
    const localspan::dynamic::RepairStats a = serial.apply(ev);
    const localspan::dynamic::RepairStats b = parallel.apply(ev);
    EXPECT_EQ(serial.spanner(), parallel.spanner()) << "diverged at t=" << ev.time;
    EXPECT_EQ(a.ball_size, b.ball_size);
    EXPECT_EQ(a.check_passed, b.check_passed);
    EXPECT_EQ(a.fell_back, b.fell_back);
    EXPECT_EQ(a.certify_scope, b.certify_scope);
  }
  EXPECT_EQ(serial.instance().g, parallel.instance().g);
}

/// Per-event repair equivalence across the full churn matrix: with the
/// splice drop-phase now a harvest/commit pass on the engine pool, every
/// single-event repair must still produce the serial spanner bit for bit.
class ParallelChurnMatrixTest
    : public ::testing::TestWithParam<localspan::testinfra::ChurnScenario> {};

TEST_P(ParallelChurnMatrixTest, PerEventRepairMatchesSerialBitForBit) {
  const localspan::testinfra::ChurnScenario& sc = GetParam();
  const localspan::ubg::UbgInstance inst = sc.base.make();
  const localspan::core::Params params =
      localspan::core::Params::practical_params(0.5, sc.base.alpha);
  const localspan::dynamic::ChurnTrace trace = sc.make_trace(inst);

  localspan::dynamic::DynamicOptions serial_opts;
  serial_opts.threads = 1;
  localspan::dynamic::DynamicSpanner serial(inst, params, serial_opts);

  localspan::dynamic::DynamicOptions par_opts;
  par_opts.threads = 4;
  localspan::dynamic::DynamicSpanner parallel(inst, params, par_opts);

  ASSERT_EQ(serial.spanner(), parallel.spanner());
  for (const localspan::dynamic::ChurnEvent& ev : trace.events) {
    const localspan::dynamic::RepairStats a = serial.apply(ev);
    const localspan::dynamic::RepairStats b = parallel.apply(ev);
    ASSERT_EQ(serial.spanner(), parallel.spanner())
        << sc.name() << " diverged at t=" << ev.time;
    EXPECT_EQ(a.ball_size, b.ball_size);
    EXPECT_EQ(a.spanner_edges_removed, b.spanner_edges_removed);
    EXPECT_EQ(a.spanner_edges_added, b.spanner_edges_added);
    EXPECT_EQ(a.fell_back, b.fell_back);
  }
  EXPECT_EQ(serial.instance().g, parallel.instance().g);
}

INSTANTIATE_TEST_SUITE_P(Churn, ParallelChurnMatrixTest,
                         ::testing::ValuesIn(localspan::testinfra::churn_matrix()),
                         localspan::testinfra::ChurnScenarioName());

TEST(ParallelDynamicAlloc, WarmCertifyAllocatesNothingAtFourThreads) {
  const localspan::ubg::UbgInstance inst =
      Scenario{2, localspan::ubg::Placement::kUniform, 0.75, 128, 3}.make();
  const localspan::core::Params params = localspan::core::Params::practical_params(0.5, 0.75);
  localspan::dynamic::DynamicOptions opts;
  opts.threads = 4;
  localspan::dynamic::DynamicSpanner engine(inst, params, opts);
  localspan::dynamic::PoissonChurnConfig cfg;
  cfg.events = 8;
  cfg.seed = 3;
  const localspan::dynamic::ChurnTrace trace = localspan::dynamic::poisson_churn(inst, cfg);
  static_cast<void>(engine.apply_all(trace));  // warm scratch + per-worker workspaces
  int live = 0;
  while (live < engine.instance().g.n() && !engine.is_active(live)) ++live;
  ASSERT_LT(live, engine.instance().g.n()) << "no live node after warm-up trace";
  const std::vector<int> modified{live};
  int scope = 0;
  ASSERT_TRUE(engine.certify(modified, &scope));  // warm for this scope size
  const long long before = g_allocs.load();
  const bool ok = engine.certify(modified, &scope);
  const long long allocs = g_allocs.load() - before;
  EXPECT_TRUE(ok);
  EXPECT_EQ(allocs, 0) << "warmed parallel certify allocated";
  EXPECT_GT(scope, 0);
}
